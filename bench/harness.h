// Shared figure-bench harness: runs DFS-SCC / Ext-SCC / Ext-SCC-Op on a
// freshly generated workload per sweep point, collects the paper's two
// metrics (wall time, number of block I/Os), censors DFS-SCC at an I/O
// budget (printed as INF, like the paper's 24-hour cap), prints an
// aligned table and writes a CSV next to the binary.
#ifndef EXTSCC_BENCH_HARNESS_H_
#define EXTSCC_BENCH_HARNESS_H_

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "baseline/dfs_scc.h"
#include "baseline/em_scc.h"
#include "bench/workloads.h"
#include "core/ext_scc.h"
#include "graph/disk_graph.h"
#include "io/io_context.h"
#include "util/csv.h"
#include "util/timer.h"

namespace extscc::bench {

using WorkloadFactory =
    std::function<graph::DiskGraph(io::IoContext* context)>;

struct AlgoResult {
  bool inf = false;          // censored (I/O budget) or stalled (EM-SCC)
  std::string inf_reason;
  double wall_seconds = 0;   // measured on this machine (page-cached)
  double seconds = 0;        // modeled HDD time (see workloads.h)
  std::uint64_t ios = 0;
  std::uint64_t random_ios = 0;
  std::uint64_t bytes = 0;
  std::uint64_t sccs = 0;
  std::uint32_t levels = 0;  // Ext-SCC contraction levels
  // Parallel-bandwidth view: the busiest device's I/O count (the phase's
  // critical path when devices operate independently) and the per-device
  // breakdown as "name=ios|name=ios" (idle devices omitted).
  std::uint64_t max_dev_ios = 0;
  std::string device_ios;

  void FillFromStats(const io::IoStats& delta, double wall) {
    wall_seconds = wall;
    ios = delta.total_ios();
    random_ios = delta.random_ios();
    bytes = delta.bytes_read + delta.bytes_written;
    seconds = static_cast<double>(bytes) / kSeqBytesPerSecond +
              static_cast<double>(random_ios) * kSeekSeconds;
  }

  void FillFromDeviceStats(
      const std::vector<io::IoContext::DeviceStatsRow>& before,
      const std::vector<io::IoContext::DeviceStatsRow>& after) {
    max_dev_ios = 0;
    device_ios.clear();
    for (std::size_t i = 0; i < after.size(); ++i) {
      const io::IoStats delta = after[i].stats - before[i].stats;
      const std::uint64_t dev_ios = delta.total_ios();
      if (dev_ios == 0) continue;
      max_dev_ios = std::max(max_dev_ios, dev_ios);
      if (!device_ios.empty()) device_ios += '|';
      device_ios += after[i].name + "=" + std::to_string(dev_ios);
    }
  }

  std::string TimeCell() const {
    return inf ? "INF" : util::FormatDouble(seconds, 2);
  }
  std::string IoCell() const {
    return inf ? "INF" : util::FormatCount(ios);
  }
};

struct PointResult {
  std::string point_label;
  AlgoResult ext;     // Ext-SCC (basic)
  AlgoResult ext_op;  // Ext-SCC-Op
  AlgoResult dfs;     // DFS-SCC (censored)
  std::optional<AlgoResult> em;  // EM-SCC when requested
};

// ---- bench flags -----------------------------------------------------
// Opt-in overlap/striping knobs for every machine the benches build.
// All default off so the Aggarwal-Vitter accounting stays the paper's:
//
//  - `--prefetch` (EXTSCC_BENCH_PREFETCH=1): background read-ahead per
//    sequential stream. I/O *counts* are identical either way (the
//    prefetcher only overlaps wall time), so turning it on is only
//    interesting on cold storage where the figure benches' wall column
//    then reflects the read-ahead.
//  - `--sort-threads=N` (EXTSCC_BENCH_SORT_THREADS=N): overlapped run
//    formation — a worker sorts and spills run buffers while the
//    producer fills the next (the write-side twin of --prefetch).
//    Sorted outputs are byte-identical, but unlike --prefetch the I/O
//    *counts* can shift: file sorts halve their run buffers to
//    double-buffer, forming ~2x the runs (SortingWriter stages keep
//    identical geometry). The figure tables stay the paper's only at
//    the default 0.
//  - `--io-threads=N` (EXTSCC_BENCH_IO_THREADS=N): device-parallel I/O
//    — up to N I/O worker threads, one per storage device, keep every
//    sequential stream's read-ahead ring full and double-buffer the
//    merge output. Sorted outputs are byte-identical; like
//    --sort-threads the I/O *counts* can shift slightly (ring
//    reservations change run geometry), so the figure tables stay the
//    paper's only at the default 0.
//  - `--scratch-dirs=a,b,...` (EXTSCC_BENCH_SCRATCH_DIRS=a,b): stripe
//    scratch files round-robin across the listed directories (one per
//    spindle/NVMe namespace).
//  - `--device-model=posix|mem|throttled[:lat_us[:mb_per_s]]|`
//    `faulty[:seed=S,rate=R,...]` (EXTSCC_BENCH_DEVICE_MODEL): what
//    backs the scratch devices — real files, RAM (page-cache-free
//    microbenches), throttled files (simulated spindles so multi-device
//    speedup shows without real hardware), or seeded fault injection
//    (see io/storage.h FaultSpec for the key list — benchmarking the
//    retry/failover machinery under deterministic faults). Block
//    accounting is identical across models; injected retries are
//    counted separately (IoStats read_retries/write_retries), never as
//    model I/Os.
//  - `--placement=rr|spread|striped` (EXTSCC_BENCH_PLACEMENT): scratch
//    device assignment — round-robin (default, byte-identical tables),
//    spread-group (a merge group's runs on distinct devices by
//    construction), or striped (every scratch file's BLOCKS round-robin
//    across the devices, so one sequential stream runs at D× a single
//    device's bandwidth).
inline bool& PrefetchFlag() {
  static bool enabled = false;
  return enabled;
}

inline std::size_t& SortThreadsFlag() {
  static std::size_t threads = 0;
  return threads;
}

inline std::size_t& IoThreadsFlag() {
  static std::size_t threads = 0;
  return threads;
}

inline std::vector<std::string>& ScratchDirsFlag() {
  static std::vector<std::string> dirs;
  return dirs;
}

inline io::DeviceModelSpec& DeviceModelFlag() {
  static io::DeviceModelSpec spec;
  return spec;
}

inline io::PlacementPolicy& PlacementFlag() {
  static io::PlacementPolicy policy = io::PlacementPolicy::kRoundRobin;
  return policy;
}

inline void ParsePlacementOrDie(const char* text) {
  const std::string error = io::ParsePlacementSpec(text, &PlacementFlag());
  if (!error.empty()) {
    std::fprintf(stderr, "%s\n", error.c_str());
    std::exit(2);
  }
}

inline void ParseDeviceModelOrDie(const char* text) {
  const std::string error =
      io::ParseDeviceModelSpec(text, &DeviceModelFlag());
  if (!error.empty()) {
    std::fprintf(stderr, "%s\n", error.c_str());
    std::exit(2);
  }
}

inline void ParseBenchFlags(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--prefetch") == 0) {
      PrefetchFlag() = true;
    } else if (std::strncmp(argv[i], "--sort-threads=", 15) == 0) {
      SortThreadsFlag() =
          static_cast<std::size_t>(std::strtoull(argv[i] + 15, nullptr, 10));
    } else if (std::strncmp(argv[i], "--io-threads=", 13) == 0) {
      IoThreadsFlag() =
          static_cast<std::size_t>(std::strtoull(argv[i] + 13, nullptr, 10));
    } else if (std::strncmp(argv[i], "--scratch-dirs=", 15) == 0) {
      ScratchDirsFlag() = util::SplitCommaList(argv[i] + 15);
    } else if (std::strncmp(argv[i], "--device-model=", 15) == 0) {
      ParseDeviceModelOrDie(argv[i] + 15);
    } else if (std::strncmp(argv[i], "--placement=", 12) == 0) {
      ParsePlacementOrDie(argv[i] + 12);
    } else {
      std::fprintf(stderr,
                   "unknown flag %s (supported: --prefetch, "
                   "--sort-threads=N, --io-threads=N, "
                   "--scratch-dirs=a,b,..., "
                   "--device-model=posix|mem|throttled[:lat_us[:mb_per_s]]"
                   "|faulty[:seed=S,rate=R,...], "
                   "--placement=rr|spread|striped)\n",
                   argv[i]);
      std::exit(2);
    }
  }
  if (const char* env = std::getenv("EXTSCC_BENCH_PREFETCH")) {
    if (env[0] != '\0' && env[0] != '0') PrefetchFlag() = true;
  }
  if (const char* env = std::getenv("EXTSCC_BENCH_SORT_THREADS")) {
    if (env[0] != '\0') {
      SortThreadsFlag() =
          static_cast<std::size_t>(std::strtoull(env, nullptr, 10));
    }
  }
  if (const char* env = std::getenv("EXTSCC_BENCH_IO_THREADS")) {
    if (env[0] != '\0') {
      IoThreadsFlag() =
          static_cast<std::size_t>(std::strtoull(env, nullptr, 10));
    }
  }
  if (const char* env = std::getenv("EXTSCC_BENCH_SCRATCH_DIRS")) {
    if (env[0] != '\0') ScratchDirsFlag() = util::SplitCommaList(env);
  }
  if (const char* env = std::getenv("EXTSCC_BENCH_DEVICE_MODEL")) {
    if (env[0] != '\0') ParseDeviceModelOrDie(env);
  }
  if (const char* env = std::getenv("EXTSCC_BENCH_PLACEMENT")) {
    if (env[0] != '\0') ParsePlacementOrDie(env);
  }
  // Reject a typo'd scratch list here, with the offending directory
  // named, instead of CHECK-failing deep inside the TempFileManager's
  // session-dir creation.
  const std::string error =
      io::ValidateScratchConfig(DeviceModelFlag(), ScratchDirsFlag());
  if (!error.empty()) {
    std::fprintf(stderr, "--scratch-dirs: %s\n", error.c_str());
    std::exit(2);
  }
}

inline std::unique_ptr<io::IoContext> MakeMachine(std::uint64_t memory) {
  io::IoContextOptions options;
  options.block_size = BlockSize();
  options.memory_bytes = memory;
  options.prefetch = PrefetchFlag();
  options.sort_threads = SortThreadsFlag();
  options.io_threads = IoThreadsFlag();
  options.scratch_dirs = ScratchDirsFlag();
  options.device_model = DeviceModelFlag();
  options.scratch_placement = PlacementFlag();
  return std::make_unique<io::IoContext>(options);
}

inline AlgoResult RunExtPoint(const WorkloadFactory& workload,
                              std::uint64_t memory, bool op_mode) {
  auto ctx = MakeMachine(memory);
  const auto g = workload(ctx.get());
  const std::string out = ctx->NewTempPath("scc");
  const io::IoStats before = ctx->stats();
  const auto dev_before = ctx->DeviceStats();
  util::Timer timer;
  auto result = core::RunExtScc(ctx.get(), g, out,
                                op_mode ? core::ExtSccOptions::Optimized()
                                        : core::ExtSccOptions::Basic());
  AlgoResult algo;
  algo.FillFromStats(ctx->stats() - before, timer.ElapsedSeconds());
  algo.FillFromDeviceStats(dev_before, ctx->DeviceStats());
  if (!result.ok()) {
    algo.inf = true;
    algo.inf_reason = result.status().ToString();
    return algo;
  }
  algo.sccs = result.value().num_sccs;
  algo.levels = result.value().num_levels();
  return algo;
}

// DFS-SCC with the INF censoring budget derived from a reference I/O
// count (normally Ext-SCC-Op's on the same point).
inline AlgoResult RunDfsPoint(const WorkloadFactory& workload,
                              std::uint64_t memory,
                              std::uint64_t reference_ios) {
  auto ctx = MakeMachine(memory);
  const auto g = workload(ctx.get());
  ctx->set_io_budget(ctx->stats().total_ios() +
                     reference_ios * kInfBudgetFactor);
  const std::string out = ctx->NewTempPath("scc");
  const io::IoStats before = ctx->stats();
  const auto dev_before = ctx->DeviceStats();
  util::Timer timer;
  auto result = baseline::RunDfsScc(ctx.get(), g, out);
  AlgoResult algo;
  algo.FillFromStats(ctx->stats() - before, timer.ElapsedSeconds());
  algo.FillFromDeviceStats(dev_before, ctx->DeviceStats());
  if (!result.ok()) {
    algo.inf = true;
    algo.inf_reason = result.status().ToString();
    return algo;
  }
  algo.sccs = result.value().num_sccs;
  return algo;
}

inline AlgoResult RunEmPoint(const WorkloadFactory& workload,
                             std::uint64_t memory,
                             std::uint64_t reference_ios) {
  auto ctx = MakeMachine(memory);
  const auto g = workload(ctx.get());
  ctx->set_io_budget(ctx->stats().total_ios() +
                     reference_ios * kInfBudgetFactor);
  const std::string out = ctx->NewTempPath("scc");
  const io::IoStats before = ctx->stats();
  const auto dev_before = ctx->DeviceStats();
  util::Timer timer;
  auto result = baseline::RunEmScc(ctx.get(), g, out);
  AlgoResult algo;
  algo.FillFromStats(ctx->stats() - before, timer.ElapsedSeconds());
  algo.FillFromDeviceStats(dev_before, ctx->DeviceStats());
  if (!result.ok()) {
    algo.inf = true;
    algo.inf_reason = result.status().ToString();
    return algo;
  }
  algo.sccs = result.value().num_sccs;
  return algo;
}

// Runs the three paper algorithms (optionally plus EM-SCC) on one point.
inline PointResult RunPoint(const std::string& label,
                            const WorkloadFactory& workload,
                            std::uint64_t memory, bool include_em = false) {
  PointResult point;
  point.point_label = label;
  std::fprintf(stderr, "  [point %s] Ext-SCC-Op...\n", label.c_str());
  point.ext_op = RunExtPoint(workload, memory, /*op_mode=*/true);
  std::fprintf(stderr, "  [point %s] Ext-SCC...\n", label.c_str());
  point.ext = RunExtPoint(workload, memory, /*op_mode=*/false);
  std::fprintf(stderr, "  [point %s] DFS-SCC (budget %llux)...\n",
               label.c_str(),
               static_cast<unsigned long long>(kInfBudgetFactor));
  point.dfs = RunDfsPoint(workload, memory, point.ext_op.ios);
  if (include_em) {
    std::fprintf(stderr, "  [point %s] EM-SCC...\n", label.c_str());
    point.em = RunEmPoint(workload, memory, point.ext_op.ios);
  }
  return point;
}

// Paper-style output: one time table and one I/O table per figure, plus
// a CSV dump for plotting.
inline void EmitFigure(const std::string& figure, const std::string& x_name,
                       const std::vector<PointResult>& points) {
  const bool with_em = !points.empty() && points.front().em.has_value();
  std::vector<std::string> header{x_name, "Ext-SCC-Op", "Ext-SCC",
                                  "DFS-SCC"};
  if (with_em) header.push_back("EM-SCC");

  util::Table time_table(header);
  util::Table io_table(header);
  util::Table csv({x_name, "algo", "modeled_time_s", "wall_time_s", "ios",
                   "random_ios", "max_dev_ios", "device_ios", "inf",
                   "sccs"});
  for (const auto& p : points) {
    std::vector<std::string> trow{p.point_label, p.ext_op.TimeCell(),
                                  p.ext.TimeCell(), p.dfs.TimeCell()};
    std::vector<std::string> iorow{p.point_label, p.ext_op.IoCell(),
                                   p.ext.IoCell(), p.dfs.IoCell()};
    if (with_em) {
      trow.push_back(p.em->TimeCell());
      iorow.push_back(p.em->IoCell());
    }
    time_table.AddRow(trow);
    io_table.AddRow(iorow);
    const auto add_csv = [&](const char* algo, const AlgoResult& r) {
      csv.AddRow({p.point_label, algo, util::FormatDouble(r.seconds, 4),
                  util::FormatDouble(r.wall_seconds, 4),
                  std::to_string(r.ios), std::to_string(r.random_ios),
                  std::to_string(r.max_dev_ios), r.device_ios,
                  r.inf ? "1" : "0", std::to_string(r.sccs)});
    };
    add_csv("ext_scc_op", p.ext_op);
    add_csv("ext_scc", p.ext);
    add_csv("dfs_scc", p.dfs);
    if (with_em) add_csv("em_scc", *p.em);
  }
  std::printf("\n=== %s — Time (modeled HDD seconds) ===\n%s",
              figure.c_str(), time_table.ToAligned().c_str());
  std::printf("\n=== %s — Number of I/Os ===\n%s", figure.c_str(),
              io_table.ToAligned().c_str());
  const std::string csv_path = figure + ".csv";
  if (csv.WriteCsvFile(csv_path)) {
    std::printf("\n[csv written to %s]\n", csv_path.c_str());
  }
}

}  // namespace extscc::bench

#endif  // EXTSCC_BENCH_HARNESS_H_
