// Shared merge-parallel lab: the spread-placed sorted-run layout and
// the loser-tree drain used by both BM_MergeParallel (bench_micro) and
// bench_merge_parallel. One definition means the two benches measure
// the same workload and their checksums cross-validate.
#ifndef EXTSCC_BENCH_MERGE_LAB_H_
#define EXTSCC_BENCH_MERGE_LAB_H_

#include <algorithm>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "extsort/external_sorter.h"
#include "graph/graph_types.h"
#include "io/io_context.h"
#include "io/record_stream.h"
#include "util/random.h"

namespace extscc::bench {

// Writes `runs` sorted Edge runs of `run_len` records each as ONE
// spread-placed merge group — exactly the layout a kSpreadGroup run
// formation leaves for its merge pass.
inline std::vector<std::string> MakeSpreadMergeRuns(io::IoContext* ctx,
                                                    std::size_t runs,
                                                    std::uint64_t run_len,
                                                    std::uint64_t seed) {
  const std::uint64_t group = ctx->temp_files().NextGroupId();
  std::vector<std::string> paths;
  util::Rng rng(seed);
  for (std::size_t r = 0; r < runs; ++r) {
    std::vector<graph::Edge> values(run_len);
    for (auto& e : values) {
      e.src = static_cast<graph::NodeId>(rng.Uniform(1u << 20));
      e.dst = static_cast<graph::NodeId>(rng.Uniform(1u << 20));
    }
    std::stable_sort(values.begin(), values.end(), graph::EdgeBySrc());
    const io::ScratchFile run =
        ctx->temp_files().NewFile("run", io::Placement::InGroup(group, r));
    io::WriteAllRecords(ctx, run.path, values);
    paths.push_back(run.path);
  }
  return paths;
}

struct MergeDrainResult {
  std::uint64_t records = 0;
  std::uint64_t checksum = 0;  // FNV-1a-style over the merged stream
};

// Drains a loser-tree merge of `runs` into a checksum sink — the shape
// of every fused final merge pass (SortInto), where the consumer sees
// the sorted stream without materializing it.
inline MergeDrainResult DrainMergeChecksum(
    io::IoContext* ctx, const std::vector<std::string>& runs) {
  MergeDrainResult result;
  std::vector<std::unique_ptr<io::PeekableReader<graph::Edge>>> inputs;
  inputs.reserve(runs.size());
  for (const auto& path : runs) {
    inputs.push_back(
        std::make_unique<io::PeekableReader<graph::Edge>>(ctx, path));
  }
  extsort::internal::LoserTree<graph::Edge, graph::EdgeBySrc> tree(
      std::move(inputs), graph::EdgeBySrc());
  auto sink =
      extsort::MakeCallbackSink<graph::Edge>([&result](const graph::Edge& e) {
        result.records += 1;
        result.checksum =
            result.checksum * 1099511628211ull + (e.src ^ (e.dst << 1));
      });
  extsort::internal::DrainMerge(&tree, &sink, graph::EdgeBySrc(),
                                /*dedup=*/false);
  return result;
}

}  // namespace extscc::bench

#endif  // EXTSCC_BENCH_MERGE_LAB_H_
