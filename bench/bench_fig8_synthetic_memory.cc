// Fig. 8 (Exp-2): time and I/Os vs memory size M on the three synthetic
// datasets (Massive-SCC, Large-SCC, Small-SCC). Expected shape (paper):
// DFS-SCC INF everywhere; both Ext-SCC variants fall as M grows with a
// steeper fall at small M; Ext-SCC-Op ~20% below Ext-SCC; the three
// datasets behave alike (SCC structure does not matter, only |V|/|E|).
#include <string>
#include <vector>

#include "bench/harness.h"
#include "gen/synthetic_generator.h"

namespace bench = extscc::bench;

namespace {

extscc::gen::SyntheticParams DatasetParams(const std::string& name) {
  extscc::gen::SyntheticParams params;
  params.num_nodes = bench::DefaultNodes();
  params.avg_degree = bench::kDefaultDegree;
  params.seed = 8;
  if (name == "Massive-SCC") {
    params.sccs = {{1, bench::MassiveSccSize(params.num_nodes)}};
  } else if (name == "Large-SCC") {
    params.sccs = {{bench::kLargeSccCount, bench::LargeSccSize(params.num_nodes)}};
  } else {
    params.sccs = {{bench::SmallSccCount(params.num_nodes), bench::kSmallSccSize}};
  }
  return params;
}

}  // namespace

int main(int argc, char** argv) {
  bench::ParseBenchFlags(argc, argv);
  for (const std::string dataset :
       {"Massive-SCC", "Large-SCC", "Small-SCC"}) {
    std::printf("\nFig. 8 — %s, varying memory size; |V|=%llu, D=%.0f\n",
                dataset.c_str(),
                static_cast<unsigned long long>(bench::DefaultNodes()),
                bench::kDefaultDegree);
    auto workload = [&dataset](extscc::io::IoContext* ctx) {
      return extscc::gen::GenerateSynthetic(ctx, DatasetParams(dataset));
    };
    std::vector<bench::PointResult> points;
    for (const std::uint64_t memory : bench::MemorySweep()) {
      points.push_back(bench::RunPoint(
          std::to_string(memory / 1024) + "K", workload, memory));
    }
    bench::EmitFigure("fig8_memory_" + dataset, "memory", points);
  }
  return 0;
}
