// Fig. 9(e)(f) (Exp-5): time and I/Os vs average SCC size, and
// Fig. 9(g)(h): vs number of SCCs, on Large-SCC. Expected shape (paper):
// flat — with |V| and |E| fixed, the planted SCC structure has no
// significant effect on either Ext-SCC variant.
#include <algorithm>
#include <string>
#include <vector>

#include "bench/harness.h"
#include "gen/synthetic_generator.h"

namespace bench = extscc::bench;

int main(int argc, char** argv) {
  bench::ParseBenchFlags(argc, argv);
  // ---- Fig. 9(e)(f): vary SCC size (paper 4K..12K -> scaled x0.1) -----
  std::printf("Fig. 9(e)(f) — Large-SCC, varying SCC size; |V|=%llu, "
              "D=%.0f, M=%llu KB\n",
              static_cast<unsigned long long>(bench::DefaultNodes()),
              bench::kDefaultDegree,
              static_cast<unsigned long long>(bench::DefaultMemory() / 1024));
  std::vector<bench::PointResult> size_points;
  // Paper sizes 4K..12K on |V|=100M; keep the size/|V| ratios so the
  // sweep stays distinct at any bench scale (bench::Scaled's 64-node
  // floor would collapse small scales to one point).
  for (const std::uint32_t per_mille : {4u, 6u, 8u, 10u, 12u}) {
    const auto size = static_cast<std::uint32_t>(std::max<std::uint64_t>(
        8, bench::DefaultNodes() * per_mille / 1000));
    auto workload = [size](extscc::io::IoContext* ctx) {
      extscc::gen::SyntheticParams params;
      params.num_nodes = bench::DefaultNodes();
      params.avg_degree = bench::kDefaultDegree;
      params.sccs = {{bench::kLargeSccCount, size}};
      params.seed = 11;
      return extscc::gen::GenerateSynthetic(ctx, params);
    };
    size_points.push_back(bench::RunPoint(std::to_string(size), workload,
                                          bench::DefaultMemory()));
  }
  bench::EmitFigure("fig9ef_vary_scc_size", "scc_size", size_points);

  // ---- Fig. 9(g)(h): vary SCC count (paper 30..70) --------------------
  std::printf("\nFig. 9(g)(h) — Large-SCC, varying SCC count\n");
  std::vector<bench::PointResult> count_points;
  for (const std::uint32_t count : {30u, 40u, 50u, 60u, 70u}) {
    auto workload = [count](extscc::io::IoContext* ctx) {
      extscc::gen::SyntheticParams params;
      params.num_nodes = bench::DefaultNodes();
      params.avg_degree = bench::kDefaultDegree;
      params.sccs = {{count, bench::LargeSccSize(params.num_nodes)}};
      params.seed = 12;
      return extscc::gen::GenerateSynthetic(ctx, params);
    };
    count_points.push_back(bench::RunPoint(std::to_string(count), workload,
                                           bench::DefaultMemory()));
  }
  bench::EmitFigure("fig9gh_vary_scc_count", "scc_count", count_points);
  return 0;
}
