// Machine-readable baseline for the device-parallel merge engine:
// merges k pre-sorted runs placed across D simulated devices — once per
// placement policy (spread: whole runs on distinct devices; striped:
// every run's BLOCKS round-robin across the devices) — with the serial
// engine (io_threads=0) and once per requested io_threads setting, on
// both mem-backed and throttled devices. A second phase scans ONE long
// sequential file per configuration: the single-stream case only
// striping can accelerate (spread placement pins a single file to a
// single device). Emits an aligned table (wall + I/O columns per
// setting) and writes BENCH_merge_parallel.json next to the binary, so
// the perf trajectory has comparable points across PRs.
//
// The merged stream drains into a checksum sink — the shape of every
// fused final merge pass (SortInto), where the paper's algorithms
// consume the sorted stream without materializing it. The bench asserts
// what the engine promises: identical block-I/O counts and identical
// output checksums across io_threads settings of one configuration;
// only the wall time moves.
//
//   bench_merge_parallel [--runs=8] [--run-blocks=48] [--devices=2]
//                        [--latency-us=2000] [--mb-per-s=256]
//                        [--io-threads=2[,4,...]]
#include <unistd.h>

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include "bench/merge_lab.h"
#include "graph/graph_types.h"
#include "io/io_context.h"
#include "io/record_stream.h"
#include "util/random.h"
#include "util/timer.h"

namespace {

using namespace extscc;
namespace fs = std::filesystem;

struct Config {
  std::size_t runs = 8;
  std::size_t run_blocks = 48;  // blocks per run (64 KB blocks)
  std::size_t devices = 2;
  std::uint64_t latency_us = 2000;
  std::uint64_t mb_per_s = 256;
  std::vector<std::size_t> io_threads = {2};
};

struct Point {
  std::string model;
  std::string phase;      // "merge" | "scan"
  std::string placement;  // "spread" | "striped"
  std::size_t io_threads = 0;
  double wall_s = 0;
  std::uint64_t total_ios = 0;
  std::uint64_t max_dev_ios = 0;
  std::uint64_t merged_records = 0;
  std::uint64_t checksum = 0;
};

constexpr std::size_t kBlockSize = 64 * 1024;

io::PlacementPolicy PolicyFor(const std::string& placement) {
  return placement == "striped" ? io::PlacementPolicy::kStriped
                                : io::PlacementPolicy::kSpreadGroup;
}

// Scratch parents for the file-backed model, created fresh per process.
std::vector<std::string> MakeScratchParents(std::size_t devices) {
  std::vector<std::string> parents;
  const fs::path base = fs::temp_directory_path() /
                        ("extscc_merge_parallel_" +
                         std::to_string(::getpid()));
  for (std::size_t i = 0; i < devices; ++i) {
    const fs::path dir = base / ("dev" + std::to_string(i));
    fs::create_directories(dir);
    parents.push_back(dir.string());
  }
  return parents;
}

std::unique_ptr<io::IoContext> MakeMachine(
    const Config& config, const std::string& model,
    const std::string& placement, std::size_t io_threads,
    const std::vector<std::string>& parents) {
  io::IoContextOptions options;
  options.block_size = kBlockSize;
  options.memory_bytes = 8ull << 20;
  options.scratch_dirs = parents;
  options.scratch_placement = PolicyFor(placement);
  options.io_threads = io_threads;
  if (model == "mem") {
    options.device_model.model = io::DeviceModel::kMem;
  } else {
    options.device_model.model = io::DeviceModel::kThrottled;
    options.device_model.throttle_latency_us = config.latency_us;
    options.device_model.throttle_mb_per_sec = config.mb_per_s;
  }
  return std::make_unique<io::IoContext>(options);
}

void FillDeviceDeltas(const io::IoContext& ctx, const io::IoStats& before,
                      const std::vector<io::IoContext::DeviceStatsRow>&
                          dev_before,
                      Point* point) {
  const io::IoStats delta = ctx.stats() - before;
  point->total_ios = delta.total_ios();
  const auto dev_after = ctx.DeviceStats();
  for (std::size_t i = 0; i < dev_after.size(); ++i) {
    point->max_dev_ios =
        std::max(point->max_dev_ios,
                 (dev_after[i].stats - dev_before[i].stats).total_ios());
  }
}

Point RunMergePoint(const Config& config, const std::string& model,
                    const std::string& placement, std::size_t io_threads,
                    const std::vector<std::string>& parents) {
  auto ctx = MakeMachine(config, model, placement, io_threads, parents);
  // Run layout and merge drain shared with bench_micro's
  // BM_MergeParallel (bench/merge_lab.h), so the two benches'
  // checksums cross-validate.
  const std::uint64_t run_len =
      config.run_blocks * kBlockSize / sizeof(graph::Edge);
  const auto runs =
      bench::MakeSpreadMergeRuns(ctx.get(), config.runs, run_len, 11);

  const io::IoStats before = ctx->stats();
  const auto dev_before = ctx->DeviceStats();
  Point point;
  point.model = model;
  point.phase = "merge";
  point.placement = placement;
  point.io_threads = io_threads;

  util::Timer timer;
  const bench::MergeDrainResult merged =
      bench::DrainMergeChecksum(ctx.get(), runs);
  point.wall_s = timer.ElapsedSeconds();
  point.merged_records = merged.records;
  point.checksum = merged.checksum;
  FillDeviceDeltas(*ctx, before, dev_before, &point);
  return point;
}

// The single-stream case: one sequential file as long as all the merge
// runs together, drained record by record. Spread placement pins it to
// one device; striped placement is what lets D devices serve it.
Point RunScanPoint(const Config& config, const std::string& model,
                   const std::string& placement, std::size_t io_threads,
                   const std::vector<std::string>& parents) {
  auto ctx = MakeMachine(config, model, placement, io_threads, parents);
  const std::uint64_t n =
      config.runs * config.run_blocks * kBlockSize / sizeof(graph::Edge);
  const std::string path = ctx->NewTempPath("scanfile");
  {
    io::RecordWriter<graph::Edge> writer(ctx.get(), path);
    util::Rng rng(13);
    for (std::uint64_t i = 0; i < n; ++i) {
      graph::Edge e;
      e.src = static_cast<graph::NodeId>(rng.Uniform(1u << 20));
      e.dst = static_cast<graph::NodeId>(rng.Uniform(1u << 20));
      writer.Append(e);
    }
    writer.Finish();
  }

  const io::IoStats before = ctx->stats();
  const auto dev_before = ctx->DeviceStats();
  Point point;
  point.model = model;
  point.phase = "scan";
  point.placement = placement;
  point.io_threads = io_threads;

  util::Timer timer;
  io::RecordReader<graph::Edge> reader(ctx.get(), path);
  graph::Edge e;
  while (reader.Next(&e)) {
    point.merged_records += 1;
    point.checksum =
        point.checksum * 1099511628211ull + (e.src ^ (e.dst << 1));
  }
  point.wall_s = timer.ElapsedSeconds();
  FillDeviceDeltas(*ctx, before, dev_before, &point);
  return point;
}

void WriteJson(const Config& config, const std::vector<Point>& points) {
  std::FILE* f = std::fopen("BENCH_merge_parallel.json", "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write BENCH_merge_parallel.json\n");
    return;
  }
  std::fprintf(f,
               "{\n  \"benchmark\": \"merge_parallel\",\n"
               "  \"block_size\": %zu,\n  \"runs\": %zu,\n"
               "  \"run_blocks\": %zu,\n  \"devices\": %zu,\n"
               "  \"throttle\": {\"latency_us\": %llu, \"mb_per_s\": %llu},\n"
               "  \"points\": [\n",
               kBlockSize, config.runs, config.run_blocks, config.devices,
               static_cast<unsigned long long>(config.latency_us),
               static_cast<unsigned long long>(config.mb_per_s));
  for (std::size_t i = 0; i < points.size(); ++i) {
    const Point& p = points[i];
    std::fprintf(f,
                 "    {\"model\": \"%s\", \"phase\": \"%s\", "
                 "\"placement\": \"%s\", \"io_threads\": %zu, "
                 "\"wall_s\": %.6f, \"total_ios\": %llu, "
                 "\"max_dev_ios\": %llu, \"merged_records\": %llu, "
                 "\"checksum\": %llu}%s\n",
                 p.model.c_str(), p.phase.c_str(), p.placement.c_str(),
                 p.io_threads, p.wall_s,
                 static_cast<unsigned long long>(p.total_ios),
                 static_cast<unsigned long long>(p.max_dev_ios),
                 static_cast<unsigned long long>(p.merged_records),
                 static_cast<unsigned long long>(p.checksum),
                 i + 1 < points.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("\n[json written to BENCH_merge_parallel.json]\n");
}

}  // namespace

int main(int argc, char** argv) {
  Config config;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--runs=", 7) == 0) {
      config.runs = std::strtoull(argv[i] + 7, nullptr, 10);
    } else if (std::strncmp(argv[i], "--run-blocks=", 13) == 0) {
      config.run_blocks = std::strtoull(argv[i] + 13, nullptr, 10);
    } else if (std::strncmp(argv[i], "--devices=", 10) == 0) {
      config.devices = std::strtoull(argv[i] + 10, nullptr, 10);
    } else if (std::strncmp(argv[i], "--latency-us=", 13) == 0) {
      config.latency_us = std::strtoull(argv[i] + 13, nullptr, 10);
    } else if (std::strncmp(argv[i], "--mb-per-s=", 11) == 0) {
      config.mb_per_s = std::strtoull(argv[i] + 11, nullptr, 10);
    } else if (std::strncmp(argv[i], "--io-threads=", 13) == 0) {
      config.io_threads.clear();
      for (const char* p = argv[i] + 13; *p != '\0';) {
        config.io_threads.push_back(std::strtoull(p, nullptr, 10));
        while (*p != '\0' && *p != ',') ++p;
        if (*p == ',') ++p;
      }
    } else {
      std::fprintf(stderr,
                   "usage: bench_merge_parallel [--runs=K] [--run-blocks=N] "
                   "[--devices=D] [--latency-us=L] [--mb-per-s=B] "
                   "[--io-threads=a,b,...]\n");
      return 2;
    }
  }

  const auto parents = MakeScratchParents(config.devices);
  std::vector<Point> points;
  for (const std::string model : {"mem", "throttled"}) {
    for (const std::string placement : {"spread", "striped"}) {
      points.push_back(
          RunMergePoint(config, model, placement, 0, parents));
      for (const std::size_t threads : config.io_threads) {
        points.push_back(
            RunMergePoint(config, model, placement, threads, parents));
      }
      points.push_back(RunScanPoint(config, model, placement, 0, parents));
      for (const std::size_t threads : config.io_threads) {
        points.push_back(
            RunScanPoint(config, model, placement, threads, parents));
      }
    }
  }

  std::printf("\n=== %zu-way merge + single-stream scan, %zu devices, "
              "%zu blocks/run ===\n",
              config.runs, config.devices, config.run_blocks);
  std::printf("%-10s %-7s %-9s %-11s %-10s %-10s %-12s %-9s\n", "model",
              "phase", "placement", "io_threads", "wall_s", "total_ios",
              "max_dev_ios", "speedup");
  for (const Point& p : points) {
    double serial_wall = 0;
    for (const Point& q : points) {
      if (q.model == p.model && q.phase == p.phase &&
          q.placement == p.placement && q.io_threads == 0) {
        serial_wall = q.wall_s;
      }
    }
    std::printf("%-10s %-7s %-9s %-11zu %-10.4f %-10llu %-12llu %-9.2f\n",
                p.model.c_str(), p.phase.c_str(), p.placement.c_str(),
                p.io_threads, p.wall_s,
                static_cast<unsigned long long>(p.total_ios),
                static_cast<unsigned long long>(p.max_dev_ios),
                p.wall_s > 0 ? serial_wall / p.wall_s : 0.0);
  }

  // The engine's promises, enforced: identical counts and identical
  // output checksums across io_threads settings of one configuration
  // (model, phase, placement).
  int rc = 0;
  for (const Point& p : points) {
    for (const Point& q : points) {
      if (p.model != q.model || p.phase != q.phase ||
          p.placement != q.placement) {
        continue;
      }
      if (p.total_ios != q.total_ios || p.checksum != q.checksum ||
          p.merged_records != q.merged_records) {
        std::fprintf(stderr,
                     "MISMATCH: %s/%s/%s io_threads=%zu vs %zu "
                     "(ios %llu/%llu, checksum %llu/%llu)\n",
                     p.model.c_str(), p.phase.c_str(), p.placement.c_str(),
                     p.io_threads, q.io_threads,
                     static_cast<unsigned long long>(p.total_ios),
                     static_cast<unsigned long long>(q.total_ios),
                     static_cast<unsigned long long>(p.checksum),
                     static_cast<unsigned long long>(q.checksum));
        rc = 1;
      }
    }
  }
  WriteJson(config, points);
  std::error_code ec;
  fs::remove_all(fs::path(parents.front()).parent_path(), ec);
  return rc;
}
