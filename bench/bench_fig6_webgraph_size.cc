// Fig. 6 (Exp-1, WEBSPAM-UK2007 stand-in): time and I/Os while the edge
// fraction of the web graph grows from 20% to 100%, fixed default memory.
// Expected shape (paper): DFS-SCC INF everywhere; Ext-SCC and Ext-SCC-Op
// grow with |E|; Ext-SCC-Op consistently below Ext-SCC.
#include <string>
#include <vector>

#include "bench/harness.h"
#include "gen/webgraph_generator.h"

namespace bench = extscc::bench;

int main(int argc, char** argv) {
  bench::ParseBenchFlags(argc, argv);
  std::printf("Fig. 6 — WEBSPAM-UK2007 stand-in, varying graph size "
              "(%% of edges); |V|=%llu, M=%llu KB, B=%zu KB\n",
              static_cast<unsigned long long>(bench::WebGraphNodes()),
              static_cast<unsigned long long>(bench::DefaultMemory() / 1024),
              bench::BlockSize() / 1024);
  std::vector<bench::PointResult> points;
  for (const int percent : {20, 40, 60, 80, 100}) {
    auto workload = [percent](extscc::io::IoContext* ctx) {
      extscc::gen::WebGraphParams params;
      params.num_nodes = bench::WebGraphNodes();
      params.avg_out_degree = bench::kWebGraphOutDegree;
      params.seed = bench::kWebGraphSeed;
      params.edge_fraction = percent / 100.0;
      return extscc::gen::GenerateWebGraph(ctx, params);
    };
    points.push_back(bench::RunPoint(std::to_string(percent) + "%", workload,
                                     bench::DefaultMemory()));
  }
  bench::EmitFigure("fig6_webgraph_size", "edges", points);
  return 0;
}
