// Fig. 9(c)(d) (Exp-4): time and I/Os vs average degree D on Large-SCC.
// Expected shape (paper): both Ext-SCC variants grow with D (more edges
// -> bigger sorts and more iterations); the Ext-SCC-Op gap widens with D
// because the edge-reduction optimizations bite harder on denser graphs.
#include <string>
#include <vector>

#include "bench/harness.h"
#include "gen/synthetic_generator.h"

namespace bench = extscc::bench;

int main(int argc, char** argv) {
  bench::ParseBenchFlags(argc, argv);
  std::printf("Fig. 9(c)(d) — Large-SCC, varying average degree; "
              "|V|=%llu, M=%llu KB\n",
              static_cast<unsigned long long>(bench::DefaultNodes()),
              static_cast<unsigned long long>(bench::DefaultMemory() / 1024));
  std::vector<bench::PointResult> points;
  for (const int degree : {2, 3, 4, 5, 6}) {
    auto workload = [degree](extscc::io::IoContext* ctx) {
      extscc::gen::SyntheticParams params;
      params.num_nodes = bench::DefaultNodes();
      params.avg_degree = degree;
      params.sccs = {{bench::kLargeSccCount, bench::LargeSccSize(params.num_nodes)}};
      params.seed = 10;
      return extscc::gen::GenerateSynthetic(ctx, params);
    };
    points.push_back(bench::RunPoint(std::to_string(degree), workload,
                                     bench::DefaultMemory()));
  }
  bench::EmitFigure("fig9cd_vary_degree", "degree", points);
  return 0;
}
