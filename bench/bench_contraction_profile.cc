// Contraction anatomy (DESIGN.md Ablation-2): per-iteration |V_i|, |E_i|,
// |V_{i+1}|, |E_add| for both Ext-SCC variants on the web graph — the
// observable behind Theorems 5.3/5.4 (bounded new edges; in Op mode
// |E_{i+1}| can even shrink below |E_i|, as §VII promises).
#include <string>

#include "bench/harness.h"
#include "gen/webgraph_generator.h"
#include "util/csv.h"

namespace bench = extscc::bench;

namespace {

void Profile(const char* name, const extscc::core::ExtSccOptions& options) {
  auto ctx = bench::MakeMachine(bench::DefaultMemory());
  extscc::gen::WebGraphParams params;
  params.num_nodes = bench::WebGraphNodes();
  params.avg_out_degree = bench::kWebGraphOutDegree;
  params.seed = bench::kWebGraphSeed;
  const auto g = extscc::gen::GenerateWebGraph(ctx.get(), params);
  const std::string out = ctx->NewTempPath("scc");
  auto result = extscc::core::RunExtScc(ctx.get(), g, out, options);
  if (!result.ok()) {
    std::printf("%s: %s\n", name, result.status().ToString().c_str());
    return;
  }
  extscc::util::Table table({"level", "|V_i|", "|E_i|", "|V_i+1|",
                             "|E_i+1|", "E_add", "type2_skips", "ios",
                             "time_s"});
  for (const auto& it : result.value().iterations) {
    table.AddRow({std::to_string(it.level),
                  extscc::util::FormatCount(it.nodes),
                  extscc::util::FormatCount(it.edges),
                  extscc::util::FormatCount(it.cover_nodes),
                  extscc::util::FormatCount(it.next_edges),
                  extscc::util::FormatCount(it.new_edges),
                  extscc::util::FormatCount(it.type2_skips),
                  extscc::util::FormatCount(it.ios),
                  extscc::util::FormatDouble(it.seconds, 2)});
  }
  std::printf("\n=== contraction profile — %s (web graph, M=%llu KB) ===\n%s",
              name,
              static_cast<unsigned long long>(bench::DefaultMemory() / 1024),
              table.ToAligned().c_str());
  std::printf("semi-external base case: %llu nodes, %llu colouring rounds, "
              "%llu edge scans\n",
              static_cast<unsigned long long>(result.value().semi_nodes),
              static_cast<unsigned long long>(result.value().semi.rounds),
              static_cast<unsigned long long>(result.value().semi.edge_scans));
  table.WriteCsvFile(std::string("contraction_profile_") + name + ".csv");
}

}  // namespace

int main(int argc, char** argv) {
  bench::ParseBenchFlags(argc, argv);
  Profile("ext_scc", extscc::core::ExtSccOptions::Basic());
  Profile("ext_scc_op", extscc::core::ExtSccOptions::Optimized());
  return 0;
}
