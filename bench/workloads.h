// Scaled Table I / §VIII workload definitions shared by every figure
// bench. Scaling rule (DESIGN.md §3): node counts and memory sizes are
// the paper's divided by 1000 (1 paper-"M" unit -> 1 KB here); SCC
// *counts*, average degrees, and all ratios are kept identical, so the
// quantity that drives algorithm behaviour — M / (c·|V|) — matches the
// paper's regime point for point.
//
// Every bench honours EXTSCC_BENCH_SCALE (a positive float) to
// shrink/grow all node counts and memory sizes TOGETHER — the quantity
// that decides algorithm behaviour, M / (c·|V|), is scale-invariant, so
// any scale reproduces the same iteration structure and curve shapes.
// The default is 0.1 (10^4-node graphs, minutes per figure);
// EXTSCC_BENCH_SCALE=1.0 runs the full /1000-of-paper sizes.
#ifndef EXTSCC_BENCH_WORKLOADS_H_
#define EXTSCC_BENCH_WORKLOADS_H_

#include <algorithm>
#include <cstdint>
#include <cstdlib>
#include <string>
#include <vector>

namespace extscc::bench {

inline double BenchScale() {
  if (const char* env = std::getenv("EXTSCC_BENCH_SCALE")) {
    const double v = std::strtod(env, nullptr);
    if (v > 0) return v;
  }
  return 0.1;
}

// ---- modeled disk -----------------------------------------------------
// The paper's time axis comes from a 2007-era SATA disk, where a random
// block access pays a seek that dwarfs the transfer. Wall time on this
// page-cached simulation would hide exactly the effect the paper
// measures, so the benches report *modeled* time from the I/O counters:
//   seq block   : B / 100 MB/s
//   random block: 8 ms seek + B / 100 MB/s
// Measured wall seconds are also recorded in the CSVs.
inline constexpr double kSeqBytesPerSecond = 100.0 * 1024 * 1024;
inline constexpr double kSeekSeconds = 0.008;

inline std::uint64_t Scaled(std::uint64_t base) {
  const auto v = static_cast<std::uint64_t>(base * BenchScale());
  return v < 64 ? 64 : v;
}

// ---- machine ------------------------------------------------------------

// Paper: B = 256 KB on a 3.5 GB box. The block scales with the bench
// scale (clamped to [2 KB, 16 KB]) so the M >= 2B model constraint holds
// across the whole memory sweep at any scale.
inline std::size_t BlockSize() {
  const auto scaled = static_cast<std::size_t>(16.0 * 1024 * BenchScale());
  return std::min<std::size_t>(16 * 1024,
                               std::max<std::size_t>(2 * 1024, scaled));
}

// The paper charges c = 8 bytes/node for 1PB-SCC's stop condition; our
// Semi-SCC backends charge kBytesPerNode = 16. Memory sizes for the
// synthetic sweeps are therefore calibrated by 16/8 = 2 so each sweep
// point lands on the paper's M / (c*|V|) operating point — the quantity
// that decides the number of contraction iterations. (The web-graph
// sweep in WebMemorySweep() is already expressed in 16 B/node units.)
inline constexpr std::uint64_t kMemoryCalibration = 2;

// Paper default M = 400 "M-units" -> 400 KB, calibrated.
inline std::uint64_t DefaultMemory() {
  return Scaled(kMemoryCalibration * 400 * 1024);
}

// ---- synthetic defaults (Table I, scaled /1000) ---------------------------

inline std::uint64_t DefaultNodes() { return Scaled(100'000); }
inline constexpr double kDefaultDegree = 4.0;

// Planted-SCC geometry derives from each point's node count so every
// sweep point is generable: one "massive" SCC of 4% of |V|; 50 "large"
// SCCs of 0.08% of |V| each; |V|/1000 "small" SCCs of 40 nodes. The
// ordering Massive >> Large >> Small and the small planted fractions
// mirror Table I; Exp-5's conclusion (structure does not matter) makes
// the exact constants immaterial.
inline std::uint32_t MassiveSccSize(std::uint64_t nodes) {
  return static_cast<std::uint32_t>(std::max<std::uint64_t>(16, nodes / 25));
}
inline std::uint32_t LargeSccSize(std::uint64_t nodes) {
  return static_cast<std::uint32_t>(std::max<std::uint64_t>(4, nodes / 1250));
}
inline constexpr std::uint32_t kLargeSccCount = 50;
inline constexpr std::uint32_t kSmallSccSize = 40;
inline std::uint32_t SmallSccCount(std::uint64_t nodes) {
  return static_cast<std::uint32_t>(std::max<std::uint64_t>(2, nodes / 1000));
}

// Memory sweep used by Fig. 8 (paper: 200M..600M), calibrated.
inline std::vector<std::uint64_t> MemorySweep() {
  return {Scaled(kMemoryCalibration * 200 * 1024),
          Scaled(kMemoryCalibration * 300 * 1024),
          Scaled(kMemoryCalibration * 400 * 1024),
          Scaled(kMemoryCalibration * 500 * 1024),
          Scaled(kMemoryCalibration * 600 * 1024)};
}

// Node sweep (paper: 25M..200M -> 25K..200K).
inline std::vector<std::uint64_t> NodeSweep() {
  return {Scaled(25'000), Scaled(50'000), Scaled(100'000), Scaled(150'000),
          Scaled(200'000)};
}

// ---- web graph (WEBSPAM-UK2007 stand-in) ----------------------------------

inline std::uint64_t WebGraphNodes() { return Scaled(100'000); }
inline constexpr double kWebGraphOutDegree = 8.0;
inline constexpr std::uint64_t kWebGraphSeed = 20070501;  // UK2007 crawl date

// Fig. 7 memory sweep for the web graph (paper: 400M..1G, with the knee
// where Semi-SCC fits the whole node set: 16 B/node * 100K = 1.6 MB).
inline std::vector<std::uint64_t> WebMemorySweep() {
  return {Scaled(400 * 1024), Scaled(600 * 1024), Scaled(800 * 1024),
          Scaled(1700 * 1024)};
}

// DFS-SCC censoring: the paper allows 24 h per run (its Ext-SCC runs
// take 1-5 h, so the cap sits at roughly 5-20x the winner); we allow
// this factor times the I/Os Ext-SCC-Op needed for the same point.
inline constexpr std::uint64_t kInfBudgetFactor = 8;

}  // namespace extscc::bench

#endif  // EXTSCC_BENCH_WORKLOADS_H_
