// Semi-external algorithm comparison (Section III / DESIGN.md
// Ablation-3, not a paper figure): with the node set in memory, compares
// the three semi-external SCC algorithms this library implements —
//
//   coloring   forward-backward colouring (our Semi-SCC default)
//   br-tree    spanning-tree contraction, the 1PB-SCC [26] family the
//              paper plugs into Ext-SCC
//   semi-dfs   semi-external DFS [23] + Kosaraju (Algorithm 1) — the
//              approach §III argues is NOT optimized for SCCs, because
//              the total postorder pins all nodes until the end
//
// and then re-runs the full external Ext-SCC-Op pipeline with each
// pluggable base case to show the backend does not change the
// contraction structure (levels) and only shifts base-case scans.
#include <algorithm>
#include <cstdio>
#include <string>

#include "baseline/semi_dfs_scc.h"
#include "bench/harness.h"
#include "gen/webgraph_generator.h"
#include "io/record_stream.h"
#include "scc/br_tree_scc.h"
#include "scc/semi_external_scc.h"
#include "util/csv.h"

namespace bench = extscc::bench;

namespace {

using namespace extscc;

graph::DiskGraph WebWorkload(io::IoContext* ctx) {
  gen::WebGraphParams params;
  params.num_nodes = bench::WebGraphNodes();
  params.avg_out_degree = bench::kWebGraphOutDegree;
  params.seed = bench::kWebGraphSeed;
  return gen::GenerateWebGraph(ctx, params);
}

}  // namespace

int main(int argc, char** argv) {
  bench::ParseBenchFlags(argc, argv);
  std::printf("Semi-external backends on the web-graph stand-in; "
              "|V|=%llu\n",
              static_cast<unsigned long long>(bench::WebGraphNodes()));

  // ---- Part 1: pure semi-external (node set fits, M generous) ----------
  // Memory: enough for every backend's per-node state.
  const std::uint64_t semi_memory =
      bench::WebGraphNodes() * baseline::SemiDfsScc::kBytesPerNode * 2;

  util::Table semi_table(
      {"algorithm", "modeled_time_s", "wall_s", "ios", "edge_scans",
       "sccs"});
  util::Table csv({"algorithm", "modeled_time_s", "wall_s", "ios",
                   "edge_scans", "sccs"});

  auto emit = [&](const std::string& name, const io::IoStats& delta,
                  double wall, std::uint64_t scans, std::uint64_t sccs) {
    bench::AlgoResult algo;
    algo.FillFromStats(delta, wall);
    algo.sccs = sccs;
    const std::vector<std::string> row{
        name, util::FormatDouble(algo.seconds, 3),
        util::FormatDouble(wall, 3), util::FormatCount(algo.ios),
        std::to_string(scans), std::to_string(sccs)};
    semi_table.AddRow(row);
    csv.AddRow(row);
  };

  std::uint64_t reference_ios = 0;  // best backend so far, for censoring
  for (const auto backend :
       {scc::SemiSccBackend::kColoring, scc::SemiSccBackend::kBrTree}) {
    const char* name = scc::SemiSccBackendName(backend);
    std::fprintf(stderr, "  [semi] %s...\n", name);
    auto ctx = bench::MakeMachine(semi_memory);
    const auto g = WebWorkload(ctx.get());
    const std::string out = ctx->NewTempPath("scc");
    graph::SccId next = 0;
    const io::IoStats before = ctx->stats();
    util::Timer timer;
    const auto stats = scc::RunSemiScc(backend, ctx.get(), g, out, &next);
    const io::IoStats delta = ctx->stats() - before;
    emit(name, delta, timer.ElapsedSeconds(), stats.edge_scans,
         stats.num_sccs);
    reference_ios = reference_ios == 0
                        ? delta.total_ios()
                        : std::min(reference_ios, delta.total_ios());
  }
  {
    // Semi-DFS gets the same INF censoring the paper applies to runaway
    // baselines: §III's point is precisely that DFS-based semi-external
    // SCC cannot retire nodes early, so its repair scans blow up on
    // web-like graphs.
    std::fprintf(stderr, "  [semi] semi-dfs (budget %llux)...\n",
                 static_cast<unsigned long long>(bench::kInfBudgetFactor));
    auto ctx = bench::MakeMachine(semi_memory);
    const auto g = WebWorkload(ctx.get());
    ctx->set_io_budget(ctx->stats().total_ios() +
                       reference_ios * bench::kInfBudgetFactor);
    const std::string out = ctx->NewTempPath("scc");
    const io::IoStats before = ctx->stats();
    util::Timer timer;
    auto result = baseline::SemiDfsScc::Run(ctx.get(), g, out);
    if (result.ok()) {
      emit("semi-dfs", ctx->stats() - before, timer.ElapsedSeconds(),
           result.value().dfs_passes + result.value().propagate_passes,
           result.value().num_sccs);
    } else {
      const std::vector<std::string> row{"semi-dfs", "INF", "INF", "INF",
                                         "INF", "-"};
      semi_table.AddRow(row);
      csv.AddRow(row);
      std::fprintf(stderr, "    semi-dfs censored: %s\n",
                   result.status().ToString().c_str());
    }
  }
  std::printf("\n=== semi-external algorithms (c*|V| <= M) ===\n%s",
              semi_table.ToAligned().c_str());

  // ---- Part 2: Ext-SCC-Op with each pluggable base case ---------------
  util::Table ext_table(
      {"base case", "modeled_time_s", "ios", "levels", "semi_scans",
       "sccs"});
  for (const auto backend :
       {scc::SemiSccBackend::kColoring, scc::SemiSccBackend::kBrTree}) {
    const char* name = scc::SemiSccBackendName(backend);
    std::fprintf(stderr, "  [ext] base case %s...\n", name);
    auto ctx = bench::MakeMachine(bench::DefaultMemory());
    const auto g = WebWorkload(ctx.get());
    const std::string out = ctx->NewTempPath("scc");
    core::ExtSccOptions options = core::ExtSccOptions::Optimized();
    options.semi_backend = backend;
    const io::IoStats before = ctx->stats();
    util::Timer timer;
    auto result = core::RunExtScc(ctx.get(), g, out, options);
    bench::AlgoResult algo;
    algo.FillFromStats(ctx->stats() - before, timer.ElapsedSeconds());
    if (!result.ok()) {
      ext_table.AddRow({name, "FAIL", "-", "-", "-", "-"});
      continue;
    }
    ext_table.AddRow({name, util::FormatDouble(algo.seconds, 3),
                      util::FormatCount(algo.ios),
                      std::to_string(result.value().num_levels()),
                      std::to_string(result.value().semi.edge_scans),
                      std::to_string(result.value().num_sccs)});
  }
  std::printf("\n=== Ext-SCC-Op with pluggable base case (M=%llu KB) ===\n%s",
              static_cast<unsigned long long>(bench::DefaultMemory() / 1024),
              ext_table.ToAligned().c_str());

  csv.WriteCsvFile("semi_backends.csv");
  std::printf("\n[csv written to semi_backends.csv]\n");
  return 0;
}
