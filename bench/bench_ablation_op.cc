// Ablation of the §VII optimizations (not a paper figure; DESIGN.md
// Ablation-1): starts from Ext-SCC-Basic and enables one optimization at
// a time on the Large-SCC default workload, reporting time, I/Os, levels
// and the final contracted-edge behaviour. Shows where the ~20% Fig. 8
// gap comes from.
#include <string>
#include <vector>

#include "bench/harness.h"
#include "gen/synthetic_generator.h"
#include "util/csv.h"

namespace bench = extscc::bench;

namespace {

struct Variant {
  std::string name;
  extscc::core::ExtSccOptions options;
};

std::vector<Variant> Variants() {
  using Options = extscc::core::ExtSccOptions;
  std::vector<Variant> variants;
  variants.push_back({"basic", Options::Basic()});
  {
    Options o = Options::Basic();
    o.type1_reduction = true;
    variants.push_back({"+type1", o});
  }
  {
    Options o = Options::Basic();
    o.type2_reduction = true;
    variants.push_back({"+type2", o});
  }
  {
    Options o = Options::Basic();
    o.refined_order = true;
    variants.push_back({"+order7.1", o});
  }
  {
    Options o = Options::Basic();
    o.dedup_parallel_edges = true;
    variants.push_back({"+edge-red", o});
  }
  variants.push_back({"op(all)", Options::Optimized()});
  return variants;
}

}  // namespace

int main(int argc, char** argv) {
  bench::ParseBenchFlags(argc, argv);
  std::printf("Ablation — §VII optimizations on Large-SCC; |V|=%llu, "
              "D=%.0f, M=%llu KB\n",
              static_cast<unsigned long long>(bench::DefaultNodes()),
              bench::kDefaultDegree,
              static_cast<unsigned long long>(bench::DefaultMemory() / 1024));
  auto workload = [](extscc::io::IoContext* ctx) {
    extscc::gen::SyntheticParams params;
    params.num_nodes = bench::DefaultNodes();
    params.avg_degree = bench::kDefaultDegree;
    params.sccs = {{bench::kLargeSccCount, bench::LargeSccSize(params.num_nodes)}};
    params.seed = 13;
    return extscc::gen::GenerateSynthetic(ctx, params);
  };

  extscc::util::Table table(
      {"variant", "time_s", "ios", "levels", "sccs"});
  for (const auto& variant : Variants()) {
    std::fprintf(stderr, "  [ablation] %s...\n", variant.name.c_str());
    auto ctx = bench::MakeMachine(bench::DefaultMemory());
    const auto g = workload(ctx.get());
    const std::string out = ctx->NewTempPath("scc");
    const auto before = ctx->stats().total_ios();
    extscc::util::Timer timer;
    auto result = extscc::core::RunExtScc(ctx.get(), g, out,
                                          variant.options);
    const double seconds = timer.ElapsedSeconds();
    const auto ios = ctx->stats().total_ios() - before;
    if (!result.ok()) {
      table.AddRow({variant.name, "FAIL", "-", "-", "-"});
      continue;
    }
    table.AddRow({variant.name, extscc::util::FormatDouble(seconds, 2),
                  extscc::util::FormatCount(ios),
                  std::to_string(result.value().num_levels()),
                  std::to_string(result.value().num_sccs)});
  }
  std::printf("\n=== ablation_op ===\n%s", table.ToAligned().c_str());
  table.WriteCsvFile("ablation_op.csv");
  return 0;
}
