// Fig. 7 (Exp-1, WEBSPAM-UK2007 stand-in): time and I/Os as the memory
// budget M grows. Expected shape (paper): costs fall as M rises, with a
// sharp drop at the final point where c·|V| <= M lets Semi-SCC run
// directly on the input (paper: the 1G point; here: the point above
// 16 B x |V|).
#include <string>
#include <vector>

#include "bench/harness.h"
#include "gen/webgraph_generator.h"

namespace bench = extscc::bench;

int main(int argc, char** argv) {
  bench::ParseBenchFlags(argc, argv);
  std::printf("Fig. 7 — WEBSPAM-UK2007 stand-in, varying memory size; "
              "|V|=%llu, B=%zu KB\n",
              static_cast<unsigned long long>(bench::WebGraphNodes()),
              bench::BlockSize() / 1024);
  auto workload = [](extscc::io::IoContext* ctx) {
    extscc::gen::WebGraphParams params;
    params.num_nodes = bench::WebGraphNodes();
    params.avg_out_degree = bench::kWebGraphOutDegree;
    params.seed = bench::kWebGraphSeed;
    return extscc::gen::GenerateWebGraph(ctx, params);
  };
  std::vector<bench::PointResult> points;
  for (const std::uint64_t memory : bench::WebMemorySweep()) {
    points.push_back(bench::RunPoint(
        std::to_string(memory / 1024) + "K", workload, memory));
  }
  bench::EmitFigure("fig7_webgraph_memory", "memory", points);
  return 0;
}
