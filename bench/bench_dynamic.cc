// Machine-readable baseline for the dynamic subsystem: block I/Os per
// insert batch vs a full re-solve of the union graph, swept across
// batch size on a fig6-sized web graph. Emits an aligned table and
// writes BENCH_dynamic.json next to the binary, so the incremental-
// maintenance trajectory has comparable points across PRs.
//
// Per point: the artifact is built over the graph MINUS the held-out
// edge suffix, the suffix is applied as one update batch (measured),
// and build-index runs over the full union (measured) — the honest
// comparator, since both end at the same byte-identical artifact. A
// delta-only point (duplicate edges) prices the no-rewrite path. The
// device model is RAM-backed, so every count is deterministic.
//
// The acceptance bound this pins: a 1%-of-edges batch must cost at
// most 25% of the full re-solve's block I/Os.
//
//   bench_dynamic [--nodes=20000] [--fractions=0.001,0.005,0.01,0.05]
#include <unistd.h>

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include "dyn/dynamic_index.h"
#include "gen/webgraph_generator.h"
#include "graph/disk_graph.h"
#include "io/io_context.h"
#include "io/record_stream.h"
#include "serve/index_builder.h"
#include "util/timer.h"

namespace {

using namespace extscc;
namespace fs = std::filesystem;

struct Config {
  std::uint64_t nodes = 20000;
  std::vector<double> fractions = {0.001, 0.005, 0.01, 0.05};
};

struct Point {
  std::string kind;  // "structural" or "delta-only"
  double fraction = 0;
  std::uint64_t batch_edges = 0;
  std::uint64_t update_ios = 0;
  std::uint64_t swept_blocks = 0;
  std::uint64_t merge_groups = 0;
  bool rewrote = false;
  std::uint64_t resolve_ios = 0;
  double ratio = 0;  // update_ios / resolve_ios
  double update_wall_s = 0;
};

constexpr std::size_t kBlockSize = 4096;

Point RunPoint(io::IoContext* ctx, const std::vector<graph::Edge>& base,
               const std::vector<graph::Edge>& batch,
               const std::vector<graph::Edge>& union_edges,
               const char* kind, double fraction) {
  Point point;
  point.kind = kind;
  point.fraction = fraction;
  point.batch_edges = batch.size();

  const auto base_g = graph::MakeDiskGraph(ctx, base);
  const std::string artifact = ctx->NewTempPath("dyn_base_artifact");
  auto built = serve::BuildArtifact(ctx, base_g, artifact, {});
  if (!built.ok()) {
    std::fprintf(stderr, "build-index (base) failed: %s\n",
                 built.status().ToString().c_str());
    std::exit(1);
  }

  auto opened = dyn::DynamicSccIndex::Open(ctx, artifact);
  if (!opened.ok()) {
    std::fprintf(stderr, "open failed: %s\n",
                 opened.status().ToString().c_str());
    std::exit(1);
  }
  dyn::DynamicSccIndex index = std::move(opened).value();
  util::Timer timer;
  auto applied = index.ApplyBatch(batch);
  point.update_wall_s = timer.ElapsedSeconds();
  if (!applied.ok()) {
    std::fprintf(stderr, "update failed: %s\n",
                 applied.status().ToString().c_str());
    std::exit(1);
  }
  point.update_ios = applied.value().batch_ios;
  point.swept_blocks = applied.value().swept_blocks;
  point.merge_groups = applied.value().merge_groups;
  point.rewrote = applied.value().rewrote_artifact;

  // The comparator: build-index over the union graph, end to end (the
  // solve plus the artifact write — what a refresh-by-rebuild pays).
  const auto union_g = graph::MakeDiskGraph(ctx, union_edges);
  const std::string rebuilt_path = ctx->NewTempPath("dyn_rebuild_artifact");
  const io::IoStats before = ctx->stats();
  auto rebuilt = serve::BuildArtifact(ctx, union_g, rebuilt_path, {});
  if (!rebuilt.ok()) {
    std::fprintf(stderr, "build-index (union) failed: %s\n",
                 rebuilt.status().ToString().c_str());
    std::exit(1);
  }
  point.resolve_ios = (ctx->stats() - before).total_ios();
  point.ratio = point.resolve_ios > 0
                    ? static_cast<double>(point.update_ios) /
                          static_cast<double>(point.resolve_ios)
                    : 0;
  return point;
}

void WriteJson(const Config& config, std::uint64_t edges,
               const std::vector<Point>& points) {
  std::FILE* f = std::fopen("BENCH_dynamic.json", "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write BENCH_dynamic.json\n");
    return;
  }
  std::fprintf(f,
               "{\n  \"benchmark\": \"dynamic\",\n"
               "  \"block_size\": %zu,\n  \"nodes\": %llu,\n"
               "  \"edges\": %llu,\n  \"points\": [\n",
               kBlockSize, static_cast<unsigned long long>(config.nodes),
               static_cast<unsigned long long>(edges));
  for (std::size_t i = 0; i < points.size(); ++i) {
    const Point& p = points[i];
    std::fprintf(f,
                 "    {\"kind\": \"%s\", \"fraction\": %.4f, "
                 "\"batch_edges\": %llu, \"update_ios\": %llu, "
                 "\"swept_blocks\": %llu, \"merge_groups\": %llu, "
                 "\"rewrote\": %s, \"resolve_ios\": %llu, "
                 "\"ratio\": %.4f, \"update_wall_s\": %.6f}%s\n",
                 p.kind.c_str(), p.fraction,
                 static_cast<unsigned long long>(p.batch_edges),
                 static_cast<unsigned long long>(p.update_ios),
                 static_cast<unsigned long long>(p.swept_blocks),
                 static_cast<unsigned long long>(p.merge_groups),
                 p.rewrote ? "true" : "false",
                 static_cast<unsigned long long>(p.resolve_ios), p.ratio,
                 p.update_wall_s, i + 1 < points.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("\n[json written to BENCH_dynamic.json]\n");
}

std::vector<double> ParseFractionList(const char* text) {
  std::vector<double> out;
  for (const char* p = text; *p != '\0';) {
    out.push_back(std::strtod(p, nullptr));
    while (*p != '\0' && *p != ',') ++p;
    if (*p == ',') ++p;
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  Config config;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--nodes=", 8) == 0) {
      config.nodes = std::strtoull(argv[i] + 8, nullptr, 10);
    } else if (std::strncmp(argv[i], "--fractions=", 12) == 0) {
      config.fractions = ParseFractionList(argv[i] + 12);
    } else {
      std::fprintf(stderr,
                   "usage: bench_dynamic [--nodes=N] "
                   "[--fractions=f1,f2,...]\n");
      return 2;
    }
  }

  const fs::path parent = fs::temp_directory_path() /
                          ("extscc_dynamic_" + std::to_string(::getpid()));
  fs::create_directories(parent);
  io::IoContextOptions options;
  options.block_size = kBlockSize;
  options.memory_bytes = 32ull << 20;
  options.scratch_dirs = {parent.string()};
  options.device_model.model = io::DeviceModel::kMem;
  io::IoContext ctx(options);

  gen::WebGraphParams params;
  params.num_nodes = config.nodes;
  params.seed = 3;
  const auto union_g = gen::GenerateWebGraph(&ctx, params);
  const std::vector<graph::Edge> union_edges =
      io::ReadAllRecords<graph::Edge>(&ctx, union_g.edge_path);

  std::vector<Point> points;
  for (const double fraction : config.fractions) {
    const auto batch_edges = static_cast<std::uint64_t>(
        std::max<double>(1.0, fraction * union_edges.size()));
    // Base = the union minus its edge suffix; batch = that suffix.
    const std::vector<graph::Edge> base(
        union_edges.begin(), union_edges.end() - batch_edges);
    const std::vector<graph::Edge> batch(
        union_edges.end() - batch_edges, union_edges.end());
    points.push_back(RunPoint(&ctx, base, batch, union_edges, "structural",
                              fraction));
  }
  // The no-rewrite path: a 1%-sized batch of edges the artifact has
  // already condensed (duplicates) goes to the delta log only.
  {
    const auto batch_edges = static_cast<std::uint64_t>(
        std::max<double>(1.0, 0.01 * union_edges.size()));
    const std::vector<graph::Edge> batch(
        union_edges.begin(), union_edges.begin() + batch_edges);
    points.push_back(RunPoint(&ctx, union_edges, batch, union_edges,
                              "delta-only", 0.01));
  }
  fs::remove_all(parent);

  std::printf("\n=== dynamic: %llu-node web graph, %zu edges ===\n",
              static_cast<unsigned long long>(config.nodes),
              union_edges.size());
  std::printf("%-12s %-9s %-12s %-11s %-13s %-8s %-12s %-7s\n", "kind",
              "fraction", "batch_edges", "update_ios", "swept_blocks",
              "rewrote", "resolve_ios", "ratio");
  for (const Point& p : points) {
    std::printf("%-12s %-9.4f %-12llu %-11llu %-13llu %-8s %-12llu %-7.4f\n",
                p.kind.c_str(), p.fraction,
                static_cast<unsigned long long>(p.batch_edges),
                static_cast<unsigned long long>(p.update_ios),
                static_cast<unsigned long long>(p.swept_blocks),
                p.rewrote ? "yes" : "no",
                static_cast<unsigned long long>(p.resolve_ios), p.ratio);
  }
  WriteJson(config, union_edges.size(), points);

  // The bound the roadmap pins: a 1%-of-edges structural batch costs at
  // most a quarter of the full re-solve's block I/Os.
  for (const Point& p : points) {
    if (p.kind == "structural" && p.fraction == 0.01 && p.ratio > 0.25) {
      std::fprintf(stderr,
                   "FAIL: 1%% batch used %.1f%% of re-solve I/Os "
                   "(bound 25%%)\n",
                   100.0 * p.ratio);
      return 1;
    }
  }
  return 0;
}
