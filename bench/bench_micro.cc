// Substrate microbenchmarks (google-benchmark): external sort, BRT
// insert/extract, semi-external SCC, vertex-cover selection, and the two
// full algorithms on a small fixed workload. These quantify the building
// blocks the figure benches compose.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "app/bisimulation.h"
#include "app/reachability_index.h"
#include "bench/merge_lab.h"
#include "baseline/buffered_repository_tree.h"
#include "core/ext_scc.h"
#include "gen/rmat_generator.h"
#include "scc/br_tree_scc.h"
#include "core/vertex_cover.h"
#include "extsort/external_sorter.h"
#include "gen/classic_graphs.h"
#include "gen/synthetic_generator.h"
#include "graph/edge_file.h"
#include "graph/disk_graph.h"
#include "io/record_stream.h"
#include "scc/semi_external_scc.h"
#include "scc/tarjan.h"
#include "util/random.h"

namespace {

using namespace extscc;

std::unique_ptr<io::IoContext> MakeCtx(std::uint64_t memory_bytes,
                                       std::size_t block = 16 * 1024) {
  io::IoContextOptions options;
  options.block_size = block;
  options.memory_bytes =
      std::max<std::uint64_t>(memory_bytes, 2 * options.block_size);
  return std::make_unique<io::IoContext>(options);
}

void BM_ExternalSortEdges(benchmark::State& state) {
  const auto count = static_cast<std::uint64_t>(state.range(0));
  auto ctx = MakeCtx(64 << 10);
  const std::string in = ctx->NewTempPath("in");
  {
    util::Rng rng(1);
    io::RecordWriter<graph::Edge> writer(ctx.get(), in);
    for (std::uint64_t i = 0; i < count; ++i) {
      writer.Append(graph::Edge{
          static_cast<graph::NodeId>(rng.Uniform(1u << 20)),
          static_cast<graph::NodeId>(rng.Uniform(1u << 20))});
    }
  }
  for (auto _ : state) {
    const std::string out = ctx->NewTempPath("out");
    extsort::SortFile<graph::Edge, graph::EdgeBySrc>(ctx.get(), in, out,
                                                     graph::EdgeBySrc());
    ctx->temp_files().Remove(out);
  }
  state.SetItemsProcessed(state.iterations() * count);
}
BENCHMARK(BM_ExternalSortEdges)->Arg(10'000)->Arg(100'000)->Arg(500'000);

// ---- sort/scan engine microbenches ---------------------------------------
// These quantify the PR-1 overhaul: tournament loser tree vs the linear
// O(k) scan it replaced, batched vs per-record streaming, and prefetch.

// Faithful replica of the seed's merge stack, kept here as the measured
// baseline: a one-record lookahead reader (the pre-batching
// PeekableReader, which walked the reader's per-record copy path on
// every Pop) under an O(k) linear scan of Peek()s per output record
// (the class the seed shipped under the name "LoserTree").
template <typename T>
class SeedPeekableReader {
 public:
  SeedPeekableReader(io::IoContext* context, const std::string& path)
      : reader_(context, path) {
    has_value_ = reader_.Next(&value_);
  }

  bool has_value() const { return has_value_; }
  const T& Peek() const { return value_; }
  T Pop() {
    T out = value_;
    has_value_ = reader_.Next(&value_);
    return out;
  }

 private:
  io::RecordReader<T> reader_;
  T value_{};
  bool has_value_ = false;
};

template <typename T, typename Less>
class SeedLinearScanMerge {
 public:
  SeedLinearScanMerge(
      std::vector<std::unique_ptr<SeedPeekableReader<T>>> inputs, Less less)
      : inputs_(std::move(inputs)), less_(less) {}

  bool Next(T* out) {
    int best = -1;
    for (int i = 0; i < static_cast<int>(inputs_.size()); ++i) {
      if (!inputs_[i]->has_value()) continue;
      if (best < 0 || less_(inputs_[i]->Peek(), inputs_[best]->Peek())) {
        best = i;
      }
    }
    if (best < 0) return false;
    *out = inputs_[best]->Pop();
    return true;
  }

 private:
  std::vector<std::unique_ptr<SeedPeekableReader<T>>> inputs_;
  Less less_;
};

struct U64Less {
  bool operator()(std::uint64_t a, std::uint64_t b) const { return a < b; }
};

// Keyless twins of the system comparators: same order, no normalized
// key, so run formation takes the std::stable_sort path — the measured
// PR-2 baseline for the radix engine.
struct EdgeBySrcNoKey {
  bool operator()(const graph::Edge& a, const graph::Edge& b) const {
    return graph::EdgeBySrc::KeyOf(a) < graph::EdgeBySrc::KeyOf(b);
  }
};

struct SccByNodeNoKey {
  bool operator()(const graph::SccEntry& a, const graph::SccEntry& b) const {
    return graph::SccEntryByNode::KeyOf(a) < graph::SccEntryByNode::KeyOf(b);
  }
};

// Run-formation throughput in isolation (no merge): FormRuns over an
// input several times the budget, so the loop is exactly the
// fill → sort → spill stage every external sort starts with.
// `sort_threads` 0/1 selects serial vs overlapped sort→spill.
template <typename T, typename Less, typename Gen>
void RunFormationBench(benchmark::State& state, Less less, Gen gen,
                       std::size_t sort_threads) {
  constexpr std::uint64_t kCount = 2'000'000;
  io::IoContextOptions options;
  options.block_size = 64 * 1024;
  options.memory_bytes = 4 << 20;
  options.sort_threads = sort_threads;
  auto ctx = std::make_unique<io::IoContext>(options);
  const std::string in = ctx->NewTempPath("in");
  {
    util::Rng rng(21);
    io::RecordWriter<T> writer(ctx.get(), in);
    for (std::uint64_t i = 0; i < kCount; ++i) writer.Append(gen(rng));
  }
  std::uint64_t num_runs = 0;
  for (auto _ : state) {
    extsort::SortRunInfo info;
    auto formed =
        extsort::internal::FormRuns<T>(ctx.get(), in, less, false, &info);
    num_runs = info.num_runs;
    for (const auto& run : formed.runs) ctx->temp_files().Remove(run);
  }
  state.SetItemsProcessed(state.iterations() * kCount);
  state.SetBytesProcessed(state.iterations() * kCount * sizeof(T));
  state.counters["runs"] = static_cast<double>(num_runs);
}

graph::Edge RandomEdge(util::Rng& rng) {
  return graph::Edge{static_cast<graph::NodeId>(rng.Uniform(1u << 20)),
                     static_cast<graph::NodeId>(rng.Uniform(1u << 20))};
}

graph::SccEntry RandomSccEntry(util::Rng& rng) {
  return graph::SccEntry{static_cast<graph::NodeId>(rng.Uniform(1u << 20)),
                         static_cast<graph::SccId>(rng.Uniform(1u << 16))};
}

// arg0: engine — 0 = stable_sort (keyless baseline), 1 = LSD radix,
// 2 = radix + overlapped sort→spill pipeline (sort_threads=1).
void BM_RunFormation(benchmark::State& state) {
  const int engine = static_cast<int>(state.range(0));
  const bool scc = state.range(1) != 0;
  const std::size_t threads = engine == 2 ? 1 : 0;
  if (scc) {
    if (engine == 0) {
      RunFormationBench<graph::SccEntry>(state, SccByNodeNoKey{},
                                         RandomSccEntry, threads);
    } else {
      RunFormationBench<graph::SccEntry>(state, graph::SccEntryByNode{},
                                         RandomSccEntry, threads);
    }
  } else {
    if (engine == 0) {
      RunFormationBench<graph::Edge>(state, EdgeBySrcNoKey{}, RandomEdge,
                                     threads);
    } else {
      RunFormationBench<graph::Edge>(state, graph::EdgeBySrc{}, RandomEdge,
                                     threads);
    }
  }
}
BENCHMARK(BM_RunFormation)
    ->Args({0, 0})
    ->Args({1, 0})
    ->Args({2, 0})
    ->Args({0, 1})
    ->Args({1, 1})
    ->Args({2, 1})
    ->Unit(benchmark::kMillisecond);

// Writes `runs` sorted runs of `run_len` Edge records each (the
// system's dominant record type); returns paths.
std::vector<std::string> MakeSortedRuns(io::IoContext* ctx, int runs,
                                        std::uint64_t run_len,
                                        std::uint64_t seed) {
  std::vector<std::string> paths;
  util::Rng rng(seed);
  for (int r = 0; r < runs; ++r) {
    std::vector<graph::Edge> values(run_len);
    for (auto& e : values) {
      e.src = static_cast<graph::NodeId>(rng.Uniform(1u << 20));
      e.dst = static_cast<graph::NodeId>(rng.Uniform(1u << 20));
    }
    std::stable_sort(values.begin(), values.end(), graph::EdgeBySrc());
    const std::string path = ctx->NewTempPath("run");
    io::WriteAllRecords(ctx, path, values);
    paths.push_back(path);
  }
  return paths;
}

// k-way merge throughput: the seed engine (linear scan + one-record
// streaming + per-record output) vs the overhauled engine (tournament
// loser tree + batched readers + block-batched output), exactly as each
// SortFile merge pass ran before and after the overhaul.
// arg0: fan-in, arg1: 0 = seed engine, 1 = loser-tree engine.
void BM_MergeKWay(benchmark::State& state) {
  const int fan_in = static_cast<int>(state.range(0));
  const bool loser_tree = state.range(1) != 0;
  constexpr std::uint64_t kRunLen = 64 * 1024;
  auto ctx = MakeCtx(8 << 20, 64 * 1024);
  const auto runs = MakeSortedRuns(ctx.get(), fan_in, kRunLen, 11);
  std::uint64_t merged = 0;
  for (auto _ : state) {
    const std::string out = ctx->NewTempPath("merged");
    io::RecordWriter<graph::Edge> writer(ctx.get(), out);
    if (loser_tree) {
      std::vector<std::unique_ptr<io::PeekableReader<graph::Edge>>> inputs;
      for (const auto& path : runs) {
        inputs.push_back(std::make_unique<io::PeekableReader<graph::Edge>>(
            ctx.get(), path));
      }
      extsort::internal::LoserTree<graph::Edge, graph::EdgeBySrc> merge(
          std::move(inputs), graph::EdgeBySrc());
      extsort::internal::DrainMerge(&merge, &writer, graph::EdgeBySrc(),
                                    /*dedup=*/false);
    } else {
      std::vector<std::unique_ptr<SeedPeekableReader<graph::Edge>>> inputs;
      for (const auto& path : runs) {
        inputs.push_back(
            std::make_unique<SeedPeekableReader<graph::Edge>>(ctx.get(),
                                                              path));
      }
      SeedLinearScanMerge<graph::Edge, graph::EdgeBySrc> merge(
          std::move(inputs), graph::EdgeBySrc());
      graph::Edge e;
      while (merge.Next(&e)) writer.Append(e);
    }
    merged = writer.count();
    writer.Finish();
    ctx->temp_files().Remove(out);
  }
  state.SetItemsProcessed(state.iterations() * merged);
  state.SetBytesProcessed(state.iterations() * merged * sizeof(graph::Edge));
}
BENCHMARK(BM_MergeKWay)
    ->Args({4, 0})
    ->Args({4, 1})
    ->Args({16, 0})
    ->Args({16, 1})
    ->Args({64, 0})
    ->Args({64, 1});

// Device-parallel merge: k spread-placed runs on 2 scratch devices
// drain through the loser tree into a checksum sink — the fused
// final-pass shape (workload shared with bench_merge_parallel via
// bench/merge_lab.h). arg0: io_threads; arg1: 0 = MemDevice scratch,
// 1 = ThrottledDevice (2 ms/op, 256 MB/s — merge reads become
// device-bound and the io_threads speedup approaches the device
// count). On page-cached RAM devices the win is bounded: the scheduler
// mostly offloads the memcpy+decode of read-ahead.
void BM_MergeParallel(benchmark::State& state) {
  const auto io_threads = static_cast<std::size_t>(state.range(0));
  const bool throttled = state.range(1) != 0;
  constexpr int kFanIn = 8;
  constexpr std::uint64_t kRunLen = 64 * 1024;
  io::IoContextOptions options;
  options.block_size = 64 * 1024;
  options.memory_bytes = 8 << 20;
  if (throttled) {
    options.device_model.model = io::DeviceModel::kThrottled;
    options.device_model.throttle_latency_us = 2000;
    options.device_model.throttle_mb_per_sec = 256;
    options.scratch_dirs = {"/tmp", "/tmp"};  // two devices, one backing
  } else {
    options.device_model.model = io::DeviceModel::kMem;
    options.scratch_dirs = {"d0", "d1"};  // under kMem: device count only
  }
  options.scratch_placement = io::PlacementPolicy::kSpreadGroup;
  options.io_threads = io_threads;
  auto ctx = std::make_unique<io::IoContext>(options);
  const auto runs = bench::MakeSpreadMergeRuns(ctx.get(), kFanIn, kRunLen, 13);
  std::uint64_t merged = 0;
  const auto before = ctx->stats();
  for (auto _ : state) {
    const auto result = bench::DrainMergeChecksum(ctx.get(), runs);
    merged = result.records;
    benchmark::DoNotOptimize(result.checksum);
  }
  state.SetItemsProcessed(state.iterations() * merged);
  state.SetBytesProcessed(state.iterations() * merged * sizeof(graph::Edge));
  state.counters["ios"] = static_cast<double>(
      (ctx->stats() - before).total_ios() /
      std::max<std::uint64_t>(1, state.iterations()));
}
BENCHMARK(BM_MergeParallel)
    ->Args({0, 0})
    ->Args({1, 0})
    ->Args({2, 0})
    ->Args({0, 1})
    ->Args({2, 1})
    ->Unit(benchmark::kMillisecond);

// End-to-end external sort throughput with merge-pass count reported
// (arg0: record count, arg1: memory budget KB — smaller budget, more runs).
void BM_SortThroughput(benchmark::State& state) {
  const auto count = static_cast<std::uint64_t>(state.range(0));
  const auto memory_kb = static_cast<std::uint64_t>(state.range(1));
  auto ctx = MakeCtx(memory_kb << 10);
  const std::string in = ctx->NewTempPath("in");
  {
    util::Rng rng(5);
    io::RecordWriter<std::uint64_t> writer(ctx.get(), in);
    for (std::uint64_t i = 0; i < count; ++i) writer.Append(rng.Next());
  }
  std::uint64_t passes = 0;
  std::uint64_t num_runs = 0;
  for (auto _ : state) {
    const std::string out = ctx->NewTempPath("out");
    const auto info = extsort::SortFile<std::uint64_t, U64Less>(
        ctx.get(), in, out, U64Less());
    passes = info.merge_passes;
    num_runs = info.num_runs;
    ctx->temp_files().Remove(out);
  }
  state.SetItemsProcessed(state.iterations() * count);
  state.SetBytesProcessed(state.iterations() * count * sizeof(std::uint64_t));
  state.counters["runs"] = static_cast<double>(num_runs);
  state.counters["merge_passes"] = static_cast<double>(passes);
}
BENCHMARK(BM_SortThroughput)
    ->Args({1'000'000, 64})
    ->Args({1'000'000, 1024})
    ->Args({4'000'000, 1024});

// Fused sort→consumer pipeline vs materialize-then-scan: the same edge
// sort either drains its final merge into a callback sink (SortInto) or
// writes the sorted file and re-reads it once (SortFile + batched scan)
// — the before/after of every fused Ext-SCC stage. The fused form saves
// the full write+read of the sorted output.
// arg0: record count, arg1: 0 = materialized, 1 = fused.
void BM_SortConsume(benchmark::State& state) {
  const auto count = static_cast<std::uint64_t>(state.range(0));
  const bool fused = state.range(1) != 0;
  auto ctx = MakeCtx(256 << 10, 64 * 1024);
  const std::string in = ctx->NewTempPath("in");
  {
    util::Rng rng(9);
    io::RecordWriter<graph::Edge> writer(ctx.get(), in);
    for (std::uint64_t i = 0; i < count; ++i) {
      writer.Append(graph::Edge{
          static_cast<graph::NodeId>(rng.Uniform(1u << 20)),
          static_cast<graph::NodeId>(rng.Uniform(1u << 20))});
    }
  }
  for (auto _ : state) {
    std::uint64_t checksum = 0;
    if (fused) {
      auto sink = extsort::MakeCallbackSink<graph::Edge>(
          [&](const graph::Edge& e) { checksum += e.src ^ (e.dst << 1); });
      extsort::SortInto<graph::Edge>(ctx.get(), in, sink, graph::EdgeBySrc());
    } else {
      const std::string out = ctx->NewTempPath("sorted");
      extsort::SortFile<graph::Edge, graph::EdgeBySrc>(ctx.get(), in, out,
                                                       graph::EdgeBySrc());
      io::ForEachRecord<graph::Edge>(ctx.get(), out, [&](const graph::Edge& e) {
        checksum += e.src ^ (e.dst << 1);
      });
      ctx->temp_files().Remove(out);
    }
    benchmark::DoNotOptimize(checksum);
  }
  state.SetItemsProcessed(state.iterations() * count);
  state.SetBytesProcessed(state.iterations() * count * sizeof(graph::Edge));
}
BENCHMARK(BM_SortConsume)
    ->Args({500'000, 0})
    ->Args({500'000, 1})
    ->Unit(benchmark::kMillisecond);

// Sequential scan throughput: per-record Next vs batched NextBatch vs
// batched with background prefetch (arg: 0/1/2).
void BM_ScanThroughput(benchmark::State& state) {
  const int mode = static_cast<int>(state.range(0));
  io::IoContextOptions options;
  options.block_size = 64 * 1024;
  options.memory_bytes = 4 << 20;
  options.prefetch = mode == 2;
  auto ctx = std::make_unique<io::IoContext>(options);
  constexpr std::uint64_t kCount = 8 * 1024 * 1024;  // 64 MB of u64
  const std::string path = ctx->NewTempPath("scan");
  {
    util::Rng rng(7);
    io::RecordWriter<std::uint64_t> writer(ctx.get(), path);
    for (std::uint64_t i = 0; i < kCount; ++i) writer.Append(rng.Next());
  }
  for (auto _ : state) {
    io::RecordReader<std::uint64_t> reader(ctx.get(), path);
    std::uint64_t checksum = 0;
    if (mode == 0) {
      std::uint64_t v;
      while (reader.Next(&v)) checksum ^= v;
    } else {
      std::vector<std::uint64_t> chunk(
          io::RecordsPerBlock<std::uint64_t>(ctx.get()));
      std::size_t got;
      while ((got = reader.NextBatch(chunk.data(), chunk.size())) > 0) {
        for (std::size_t i = 0; i < got; ++i) checksum ^= chunk[i];
      }
    }
    benchmark::DoNotOptimize(checksum);
  }
  state.SetItemsProcessed(state.iterations() * kCount);
  state.SetBytesProcessed(state.iterations() * kCount *
                          sizeof(std::uint64_t));
}
BENCHMARK(BM_ScanThroughput)->Arg(0)->Arg(1)->Arg(2);

void BM_BrtInsertExtract(benchmark::State& state) {
  const auto keys = static_cast<std::uint32_t>(state.range(0));
  auto ctx = MakeCtx(1 << 20, 4096);
  for (auto _ : state) {
    baseline::BufferedRepositoryTree brt(ctx.get(), keys);
    util::Rng rng(2);
    for (std::uint32_t i = 0; i < 4 * keys; ++i) {
      brt.Insert(static_cast<std::uint32_t>(rng.Uniform(keys)), i);
    }
    for (std::uint32_t k = 0; k < keys; ++k) {
      benchmark::DoNotOptimize(brt.ExtractAll(k));
    }
  }
  state.SetItemsProcessed(state.iterations() * 5 * keys);
}
BENCHMARK(BM_BrtInsertExtract)->Arg(1'000)->Arg(4'000);

void BM_SemiExternalScc(benchmark::State& state) {
  const auto nodes = static_cast<std::uint32_t>(state.range(0));
  auto ctx = MakeCtx(scc::SemiExternalScc::kBytesPerNode * nodes * 2);
  const auto g = graph::MakeDiskGraph(
      ctx.get(), gen::RandomDigraphEdges(nodes, nodes * 4, 3));
  for (auto _ : state) {
    const std::string out = ctx->NewTempPath("scc");
    graph::SccId next = 0;
    scc::SemiExternalScc::Run(ctx.get(), g, out, &next);
    ctx->temp_files().Remove(out);
  }
  state.SetItemsProcessed(state.iterations() * nodes);
}
BENCHMARK(BM_SemiExternalScc)->Arg(1'000)->Arg(10'000);

void BM_InMemoryTarjan(benchmark::State& state) {
  const auto nodes = static_cast<std::uint32_t>(state.range(0));
  const auto edges = gen::RandomDigraphEdges(nodes, nodes * 4, 4);
  graph::Digraph g(edges);
  for (auto _ : state) {
    benchmark::DoNotOptimize(scc::TarjanScc(g));
  }
  state.SetItemsProcessed(state.iterations() * nodes);
}
BENCHMARK(BM_InMemoryTarjan)->Arg(10'000)->Arg(100'000);

void BM_VertexCover(benchmark::State& state) {
  const auto nodes = static_cast<std::uint32_t>(state.range(0));
  auto ctx = MakeCtx(256 << 10);
  const auto g = graph::MakeDiskGraph(
      ctx.get(), gen::RandomDigraphEdges(nodes, nodes * 4, 5));
  const std::string ein = ctx->NewTempPath("ein");
  const std::string eout = ctx->NewTempPath("eout");
  graph::SortEdgesByDst(ctx.get(), g.edge_path, ein);
  graph::SortEdgesBySrc(ctx.get(), g.edge_path, eout);
  for (auto _ : state) {
    auto result =
        core::ComputeVertexCover(ctx.get(), ein, eout, core::CoverOptions{});
    ctx->temp_files().Remove(result.cover_path);
  }
  state.SetItemsProcessed(state.iterations() * nodes);
}
BENCHMARK(BM_VertexCover)->Arg(10'000)->Arg(50'000);

void BM_ExtSccEndToEnd(benchmark::State& state) {
  const bool op = state.range(0) != 0;
  // 20K nodes, budget for 5K: a few contraction levels.
  auto ctx = MakeCtx(scc::SemiExternalScc::kBytesPerNode * 5'000);
  gen::SyntheticParams params;
  params.num_nodes = 20'000;
  params.avg_degree = 3.0;
  params.sccs = {{10, 100}};
  params.seed = 6;
  const auto g = gen::GenerateSynthetic(ctx.get(), params);
  for (auto _ : state) {
    const std::string out = ctx->NewTempPath("scc");
    auto result = core::RunExtScc(ctx.get(), g, out,
                                  op ? core::ExtSccOptions::Optimized()
                                     : core::ExtSccOptions::Basic());
    if (!result.ok()) state.SkipWithError("ext-scc failed");
    ctx->temp_files().Remove(out);
  }
  state.SetItemsProcessed(state.iterations() * params.num_nodes);
}
BENCHMARK(BM_ExtSccEndToEnd)->Arg(0)->Arg(1)->Unit(benchmark::kMillisecond);

// ---- new-module microbenches ---------------------------------------------

// BR-tree vs colouring base case on the same graph (arg: 0 = coloring,
// 1 = br-tree).
void BM_SemiSccBackend(benchmark::State& state) {
  const auto backend = state.range(0) == 0 ? scc::SemiSccBackend::kColoring
                                           : scc::SemiSccBackend::kBrTree;
  auto ctx = MakeCtx(scc::SemiExternalScc::kBytesPerNode * 50'000);
  const auto g = graph::MakeDiskGraph(
      ctx.get(), gen::RandomDigraphEdges(20'000, 80'000, 3));
  for (auto _ : state) {
    const std::string out = ctx->NewTempPath("scc");
    graph::SccId next = 0;
    scc::RunSemiScc(backend, ctx.get(), g, out, &next);
    ctx->temp_files().Remove(out);
  }
  state.SetItemsProcessed(state.iterations() * 20'000);
}
BENCHMARK(BM_SemiSccBackend)->Arg(0)->Arg(1)->Unit(benchmark::kMillisecond);

void BM_RmatGenerate(benchmark::State& state) {
  const auto edges = static_cast<std::uint64_t>(state.range(0));
  auto ctx = MakeCtx(8 << 20);
  gen::RmatParams params;
  params.num_nodes = edges / 4;
  params.num_edges = edges;
  for (auto _ : state) {
    params.seed += 1;  // fresh stream each iteration
    benchmark::DoNotOptimize(gen::GenerateRmat(ctx.get(), params));
  }
  state.SetItemsProcessed(state.iterations() * edges);
}
BENCHMARK(BM_RmatGenerate)->Arg(1 << 14)->Arg(1 << 17)
    ->Unit(benchmark::kMillisecond);

void BM_ReachabilityQuery(benchmark::State& state) {
  auto ctx = MakeCtx(8 << 20);
  const auto g = graph::MakeDiskGraph(
      ctx.get(), gen::RandomDigraphEdges(5'000, 15'000, 7));
  const std::string scc_path = ctx->NewTempPath("scc");
  auto scc = core::RunExtScc(ctx.get(), g, scc_path,
                             core::ExtSccOptions::Optimized());
  if (!scc.ok()) {
    state.SkipWithError("ext-scc failed");
    return;
  }
  auto index = app::ReachabilityIndex::Build(ctx.get(), g, scc_path, {});
  if (!index.ok()) {
    state.SkipWithError("index build failed");
    return;
  }
  const auto nodes = io::ReadAllRecords<graph::NodeId>(ctx.get(),
                                                       g.node_path);
  util::Rng rng(1);
  for (auto _ : state) {
    const auto u = nodes[rng.Uniform(nodes.size())];
    const auto v = nodes[rng.Uniform(nodes.size())];
    benchmark::DoNotOptimize(index.value().Reachable(u, v));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ReachabilityQuery);

void BM_BisimulationDag(benchmark::State& state) {
  const auto n = static_cast<std::uint32_t>(state.range(0));
  auto ctx = MakeCtx(8 << 20);
  const auto dag = graph::MakeDiskGraph(
      ctx.get(), gen::RandomDagEdges(n, 3 * n, 5));
  for (auto _ : state) {
    auto result = app::ExternalBisimulation(ctx.get(), dag);
    if (!result.ok()) {
      state.SkipWithError("bisimulation failed");
      return;
    }
    ctx->temp_files().Remove(result.value().block_path);
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_BisimulationDag)->Arg(1'000)->Arg(4'000)
    ->Unit(benchmark::kMillisecond);

}  // namespace
