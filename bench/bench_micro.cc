// Substrate microbenchmarks (google-benchmark): external sort, BRT
// insert/extract, semi-external SCC, vertex-cover selection, and the two
// full algorithms on a small fixed workload. These quantify the building
// blocks the figure benches compose.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <memory>

#include "app/bisimulation.h"
#include "app/reachability_index.h"
#include "baseline/buffered_repository_tree.h"
#include "core/ext_scc.h"
#include "gen/rmat_generator.h"
#include "scc/br_tree_scc.h"
#include "core/vertex_cover.h"
#include "extsort/external_sorter.h"
#include "gen/classic_graphs.h"
#include "gen/synthetic_generator.h"
#include "graph/edge_file.h"
#include "graph/disk_graph.h"
#include "io/record_stream.h"
#include "scc/semi_external_scc.h"
#include "scc/tarjan.h"
#include "util/random.h"

namespace {

using namespace extscc;

std::unique_ptr<io::IoContext> MakeCtx(std::uint64_t memory_bytes,
                                       std::size_t block = 16 * 1024) {
  io::IoContextOptions options;
  options.block_size = block;
  options.memory_bytes =
      std::max<std::uint64_t>(memory_bytes, 2 * options.block_size);
  return std::make_unique<io::IoContext>(options);
}

void BM_ExternalSortEdges(benchmark::State& state) {
  const auto count = static_cast<std::uint64_t>(state.range(0));
  auto ctx = MakeCtx(64 << 10);
  const std::string in = ctx->NewTempPath("in");
  {
    util::Rng rng(1);
    io::RecordWriter<graph::Edge> writer(ctx.get(), in);
    for (std::uint64_t i = 0; i < count; ++i) {
      writer.Append(graph::Edge{
          static_cast<graph::NodeId>(rng.Uniform(1u << 20)),
          static_cast<graph::NodeId>(rng.Uniform(1u << 20))});
    }
  }
  for (auto _ : state) {
    const std::string out = ctx->NewTempPath("out");
    extsort::SortFile<graph::Edge, graph::EdgeBySrc>(ctx.get(), in, out,
                                                     graph::EdgeBySrc());
    ctx->temp_files().Remove(out);
  }
  state.SetItemsProcessed(state.iterations() * count);
}
BENCHMARK(BM_ExternalSortEdges)->Arg(10'000)->Arg(100'000)->Arg(500'000);

void BM_BrtInsertExtract(benchmark::State& state) {
  const auto keys = static_cast<std::uint32_t>(state.range(0));
  auto ctx = MakeCtx(1 << 20, 4096);
  for (auto _ : state) {
    baseline::BufferedRepositoryTree brt(ctx.get(), keys);
    util::Rng rng(2);
    for (std::uint32_t i = 0; i < 4 * keys; ++i) {
      brt.Insert(static_cast<std::uint32_t>(rng.Uniform(keys)), i);
    }
    for (std::uint32_t k = 0; k < keys; ++k) {
      benchmark::DoNotOptimize(brt.ExtractAll(k));
    }
  }
  state.SetItemsProcessed(state.iterations() * 5 * keys);
}
BENCHMARK(BM_BrtInsertExtract)->Arg(1'000)->Arg(4'000);

void BM_SemiExternalScc(benchmark::State& state) {
  const auto nodes = static_cast<std::uint32_t>(state.range(0));
  auto ctx = MakeCtx(scc::SemiExternalScc::kBytesPerNode * nodes * 2);
  const auto g = graph::MakeDiskGraph(
      ctx.get(), gen::RandomDigraphEdges(nodes, nodes * 4, 3));
  for (auto _ : state) {
    const std::string out = ctx->NewTempPath("scc");
    graph::SccId next = 0;
    scc::SemiExternalScc::Run(ctx.get(), g, out, &next);
    ctx->temp_files().Remove(out);
  }
  state.SetItemsProcessed(state.iterations() * nodes);
}
BENCHMARK(BM_SemiExternalScc)->Arg(1'000)->Arg(10'000);

void BM_InMemoryTarjan(benchmark::State& state) {
  const auto nodes = static_cast<std::uint32_t>(state.range(0));
  const auto edges = gen::RandomDigraphEdges(nodes, nodes * 4, 4);
  graph::Digraph g(edges);
  for (auto _ : state) {
    benchmark::DoNotOptimize(scc::TarjanScc(g));
  }
  state.SetItemsProcessed(state.iterations() * nodes);
}
BENCHMARK(BM_InMemoryTarjan)->Arg(10'000)->Arg(100'000);

void BM_VertexCover(benchmark::State& state) {
  const auto nodes = static_cast<std::uint32_t>(state.range(0));
  auto ctx = MakeCtx(256 << 10);
  const auto g = graph::MakeDiskGraph(
      ctx.get(), gen::RandomDigraphEdges(nodes, nodes * 4, 5));
  const std::string ein = ctx->NewTempPath("ein");
  const std::string eout = ctx->NewTempPath("eout");
  graph::SortEdgesByDst(ctx.get(), g.edge_path, ein);
  graph::SortEdgesBySrc(ctx.get(), g.edge_path, eout);
  for (auto _ : state) {
    auto result =
        core::ComputeVertexCover(ctx.get(), ein, eout, core::CoverOptions{});
    ctx->temp_files().Remove(result.cover_path);
  }
  state.SetItemsProcessed(state.iterations() * nodes);
}
BENCHMARK(BM_VertexCover)->Arg(10'000)->Arg(50'000);

void BM_ExtSccEndToEnd(benchmark::State& state) {
  const bool op = state.range(0) != 0;
  // 20K nodes, budget for 5K: a few contraction levels.
  auto ctx = MakeCtx(scc::SemiExternalScc::kBytesPerNode * 5'000);
  gen::SyntheticParams params;
  params.num_nodes = 20'000;
  params.avg_degree = 3.0;
  params.sccs = {{10, 100}};
  params.seed = 6;
  const auto g = gen::GenerateSynthetic(ctx.get(), params);
  for (auto _ : state) {
    const std::string out = ctx->NewTempPath("scc");
    auto result = core::RunExtScc(ctx.get(), g, out,
                                  op ? core::ExtSccOptions::Optimized()
                                     : core::ExtSccOptions::Basic());
    if (!result.ok()) state.SkipWithError("ext-scc failed");
    ctx->temp_files().Remove(out);
  }
  state.SetItemsProcessed(state.iterations() * params.num_nodes);
}
BENCHMARK(BM_ExtSccEndToEnd)->Arg(0)->Arg(1)->Unit(benchmark::kMillisecond);

// ---- new-module microbenches ---------------------------------------------

// BR-tree vs colouring base case on the same graph (arg: 0 = coloring,
// 1 = br-tree).
void BM_SemiSccBackend(benchmark::State& state) {
  const auto backend = state.range(0) == 0 ? scc::SemiSccBackend::kColoring
                                           : scc::SemiSccBackend::kBrTree;
  auto ctx = MakeCtx(scc::SemiExternalScc::kBytesPerNode * 50'000);
  const auto g = graph::MakeDiskGraph(
      ctx.get(), gen::RandomDigraphEdges(20'000, 80'000, 3));
  for (auto _ : state) {
    const std::string out = ctx->NewTempPath("scc");
    graph::SccId next = 0;
    scc::RunSemiScc(backend, ctx.get(), g, out, &next);
    ctx->temp_files().Remove(out);
  }
  state.SetItemsProcessed(state.iterations() * 20'000);
}
BENCHMARK(BM_SemiSccBackend)->Arg(0)->Arg(1)->Unit(benchmark::kMillisecond);

void BM_RmatGenerate(benchmark::State& state) {
  const auto edges = static_cast<std::uint64_t>(state.range(0));
  auto ctx = MakeCtx(8 << 20);
  gen::RmatParams params;
  params.num_nodes = edges / 4;
  params.num_edges = edges;
  for (auto _ : state) {
    params.seed += 1;  // fresh stream each iteration
    benchmark::DoNotOptimize(gen::GenerateRmat(ctx.get(), params));
  }
  state.SetItemsProcessed(state.iterations() * edges);
}
BENCHMARK(BM_RmatGenerate)->Arg(1 << 14)->Arg(1 << 17)
    ->Unit(benchmark::kMillisecond);

void BM_ReachabilityQuery(benchmark::State& state) {
  auto ctx = MakeCtx(8 << 20);
  const auto g = graph::MakeDiskGraph(
      ctx.get(), gen::RandomDigraphEdges(5'000, 15'000, 7));
  const std::string scc_path = ctx->NewTempPath("scc");
  auto scc = core::RunExtScc(ctx.get(), g, scc_path,
                             core::ExtSccOptions::Optimized());
  if (!scc.ok()) {
    state.SkipWithError("ext-scc failed");
    return;
  }
  auto index = app::ReachabilityIndex::Build(ctx.get(), g, scc_path, {});
  if (!index.ok()) {
    state.SkipWithError("index build failed");
    return;
  }
  const auto nodes = io::ReadAllRecords<graph::NodeId>(ctx.get(),
                                                       g.node_path);
  util::Rng rng(1);
  for (auto _ : state) {
    const auto u = nodes[rng.Uniform(nodes.size())];
    const auto v = nodes[rng.Uniform(nodes.size())];
    benchmark::DoNotOptimize(index.value().Reachable(u, v));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ReachabilityQuery);

void BM_BisimulationDag(benchmark::State& state) {
  const auto n = static_cast<std::uint32_t>(state.range(0));
  auto ctx = MakeCtx(8 << 20);
  const auto dag = graph::MakeDiskGraph(
      ctx.get(), gen::RandomDagEdges(n, 3 * n, 5));
  for (auto _ : state) {
    auto result = app::ExternalBisimulation(ctx.get(), dag);
    if (!result.ok()) {
      state.SkipWithError("bisimulation failed");
      return;
    }
    ctx->temp_files().Remove(result.value().block_path);
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_BisimulationDag)->Arg(1'000)->Arg(4'000)
    ->Unit(benchmark::kMillisecond);

}  // namespace
