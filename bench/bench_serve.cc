// Machine-readable baseline for the serve path: queries/second over one
// immutable artifact, swept across batch size and reader-thread count,
// on RAM-backed and latency/bandwidth-throttled devices. Emits an
// aligned table and writes BENCH_serve.json next to the binary, so the
// serving-throughput trajectory has comparable points across PRs.
//
// The artifact is built once per device model (on that model's device,
// so every sweep block pays the modeled cost) and the SAME query
// workload replays at every grid point — only batch size and thread
// count move, which is exactly the trade the batched sort-sweep engine
// is about: bigger batches amortize the map sweep, more threads overlap
// independent slices.
//
//   bench_serve [--nodes=20000] [--queries=10000]
//               [--batch-sizes=64,512,4096] [--threads=1,2,4]
//               [--latency-us=100] [--mb-per-s=512]
#include <unistd.h>

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include "gen/webgraph_generator.h"
#include "io/io_context.h"
#include "serve/artifact.h"
#include "serve/index_builder.h"
#include "serve/query_engine.h"
#include "serve/service.h"
#include "util/random.h"
#include "util/timer.h"

namespace {

using namespace extscc;
namespace fs = std::filesystem;

struct Config {
  std::uint64_t nodes = 20000;
  std::size_t queries = 10000;
  std::vector<std::size_t> batch_sizes = {64, 512, 4096};
  std::vector<std::size_t> threads = {1, 2, 4};
  std::uint64_t latency_us = 100;
  std::uint64_t mb_per_s = 512;
};

struct Point {
  std::string model;
  std::size_t batch_size = 0;
  std::size_t threads = 0;
  double wall_s = 0;
  double qps = 0;
  std::uint64_t total_ios = 0;
  std::uint64_t swept_blocks = 0;
  std::uint64_t answered_true = 0;  // workload checksum across points
};

constexpr std::size_t kBlockSize = 4096;  // many-block map section

std::unique_ptr<io::IoContext> MakeMachine(const Config& config,
                                           const std::string& model,
                                           const std::string& parent) {
  io::IoContextOptions options;
  options.block_size = kBlockSize;
  options.memory_bytes = 32ull << 20;
  options.scratch_dirs = {parent};
  if (model == "mem") {
    options.device_model.model = io::DeviceModel::kMem;
  } else {
    options.device_model.model = io::DeviceModel::kThrottled;
    options.device_model.throttle_latency_us = config.latency_us;
    options.device_model.throttle_mb_per_sec = config.mb_per_s;
  }
  return std::make_unique<io::IoContext>(options);
}

std::vector<serve::Query> MakeWorkload(const Config& config) {
  util::Rng rng(4242);
  std::vector<serve::Query> queries;
  queries.reserve(config.queries);
  for (std::size_t i = 0; i < config.queries; ++i) {
    serve::Query q;
    const std::uint64_t kind = rng.Uniform(3);
    q.type = kind == 0   ? serve::QueryType::kSameScc
             : kind == 1 ? serve::QueryType::kReachable
                         : serve::QueryType::kSccStat;
    q.u = static_cast<graph::NodeId>(rng.Uniform(config.nodes));
    q.v = static_cast<graph::NodeId>(rng.Uniform(config.nodes));
    queries.push_back(q);
  }
  return queries;
}

Point RunPoint(io::IoContext* ctx, const serve::QueryEngine& engine,
               const std::vector<serve::Query>& workload,
               const std::string& model, std::size_t batch_size,
               std::size_t threads) {
  Point point;
  point.model = model;
  point.batch_size = batch_size;
  point.threads = threads;

  const io::IoStats before = ctx->stats();
  serve::QueryBatchStats stats;
  std::vector<serve::QueryAnswer> answers;
  util::Timer timer;
  for (std::size_t at = 0; at < workload.size(); at += batch_size) {
    const std::size_t n = std::min(batch_size, workload.size() - at);
    const std::vector<serve::Query> batch(workload.begin() + at,
                                          workload.begin() + at + n);
    const util::Status status =
        serve::RunQueries(ctx, engine, batch, threads, &answers, &stats);
    if (!status.ok()) {
      std::fprintf(stderr, "query batch failed: %s\n",
                   status.ToString().c_str());
      std::exit(1);
    }
    for (const serve::QueryAnswer& a : answers) {
      if (a.known && a.result) ++point.answered_true;
    }
  }
  point.wall_s = timer.ElapsedSeconds();
  point.qps = point.wall_s > 0 ? workload.size() / point.wall_s : 0;
  point.total_ios = (ctx->stats() - before).total_ios();
  point.swept_blocks = stats.swept_blocks;
  return point;
}

void WriteJson(const Config& config, std::uint64_t num_sccs,
               const std::vector<Point>& points) {
  std::FILE* f = std::fopen("BENCH_serve.json", "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write BENCH_serve.json\n");
    return;
  }
  std::fprintf(f,
               "{\n  \"benchmark\": \"serve\",\n"
               "  \"block_size\": %zu,\n  \"nodes\": %llu,\n"
               "  \"num_sccs\": %llu,\n  \"queries\": %zu,\n"
               "  \"throttle\": {\"latency_us\": %llu, \"mb_per_s\": %llu},\n"
               "  \"points\": [\n",
               kBlockSize, static_cast<unsigned long long>(config.nodes),
               static_cast<unsigned long long>(num_sccs), config.queries,
               static_cast<unsigned long long>(config.latency_us),
               static_cast<unsigned long long>(config.mb_per_s));
  for (std::size_t i = 0; i < points.size(); ++i) {
    const Point& p = points[i];
    std::fprintf(f,
                 "    {\"model\": \"%s\", \"batch_size\": %zu, "
                 "\"threads\": %zu, \"wall_s\": %.6f, "
                 "\"queries_per_sec\": %.1f, \"total_ios\": %llu, "
                 "\"swept_blocks\": %llu, \"answered_true\": %llu}%s\n",
                 p.model.c_str(), p.batch_size, p.threads, p.wall_s, p.qps,
                 static_cast<unsigned long long>(p.total_ios),
                 static_cast<unsigned long long>(p.swept_blocks),
                 static_cast<unsigned long long>(p.answered_true),
                 i + 1 < points.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("\n[json written to BENCH_serve.json]\n");
}

std::vector<std::size_t> ParseSizeList(const char* text) {
  std::vector<std::size_t> out;
  for (const char* p = text; *p != '\0';) {
    out.push_back(std::strtoull(p, nullptr, 10));
    while (*p != '\0' && *p != ',') ++p;
    if (*p == ',') ++p;
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  Config config;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--nodes=", 8) == 0) {
      config.nodes = std::strtoull(argv[i] + 8, nullptr, 10);
    } else if (std::strncmp(argv[i], "--queries=", 10) == 0) {
      config.queries = std::strtoull(argv[i] + 10, nullptr, 10);
    } else if (std::strncmp(argv[i], "--batch-sizes=", 14) == 0) {
      config.batch_sizes = ParseSizeList(argv[i] + 14);
    } else if (std::strncmp(argv[i], "--threads=", 10) == 0) {
      config.threads = ParseSizeList(argv[i] + 10);
    } else if (std::strncmp(argv[i], "--latency-us=", 13) == 0) {
      config.latency_us = std::strtoull(argv[i] + 13, nullptr, 10);
    } else if (std::strncmp(argv[i], "--mb-per-s=", 11) == 0) {
      config.mb_per_s = std::strtoull(argv[i] + 11, nullptr, 10);
    } else {
      std::fprintf(stderr,
                   "usage: bench_serve [--nodes=N] [--queries=Q] "
                   "[--batch-sizes=a,b,...] [--threads=a,b,...] "
                   "[--latency-us=L] [--mb-per-s=B]\n");
      return 2;
    }
  }

  const fs::path parent = fs::temp_directory_path() /
                          ("extscc_serve_" + std::to_string(::getpid()));
  fs::create_directories(parent);
  const std::vector<serve::Query> workload = MakeWorkload(config);

  std::vector<Point> points;
  std::uint64_t num_sccs = 0;
  for (const std::string model : {"mem", "throttled"}) {
    auto ctx = MakeMachine(config, model, parent.string());
    gen::WebGraphParams params;
    params.num_nodes = config.nodes;
    params.seed = 3;
    const auto g = gen::GenerateWebGraph(ctx.get(), params);
    // The artifact lives on the modeled device: every sweep block pays
    // the model's cost, like production reads would.
    const std::string artifact_path = ctx->NewTempPath("artifact");
    auto built = serve::BuildArtifact(ctx.get(), g, artifact_path, {});
    if (!built.ok()) {
      std::fprintf(stderr, "build-index failed: %s\n",
                   built.status().ToString().c_str());
      return 1;
    }
    num_sccs = built.value().summary.num_sccs;
    auto opened = serve::ArtifactReader::Open(ctx.get(), artifact_path);
    if (!opened.ok()) {
      std::fprintf(stderr, "open failed: %s\n",
                   opened.status().ToString().c_str());
      return 1;
    }
    const serve::ArtifactReader artifact = std::move(opened).value();
    const serve::QueryEngine engine(&artifact);
    for (const std::size_t batch_size : config.batch_sizes) {
      for (const std::size_t threads : config.threads) {
        points.push_back(RunPoint(ctx.get(), engine, workload, model,
                                  batch_size, threads));
      }
    }
  }
  fs::remove_all(parent);

  std::printf("\n=== serve: %llu-node web graph, %llu SCCs, %zu queries "
              "===\n",
              static_cast<unsigned long long>(config.nodes),
              static_cast<unsigned long long>(num_sccs), config.queries);
  std::printf("%-10s %-11s %-8s %-10s %-12s %-10s %-13s\n", "model",
              "batch_size", "threads", "wall_s", "queries/s", "total_ios",
              "swept_blocks");
  for (const Point& p : points) {
    std::printf("%-10s %-11zu %-8zu %-10.4f %-12.1f %-10llu %-13llu\n",
                p.model.c_str(), p.batch_size, p.threads, p.wall_s, p.qps,
                static_cast<unsigned long long>(p.total_ios),
                static_cast<unsigned long long>(p.swept_blocks));
  }
  // The workload verdicts are batch- and thread-invariant; a drift
  // between points means the engine's slicing changed an answer.
  for (const Point& p : points) {
    if (p.model == points.front().model &&
        p.answered_true != points.front().answered_true) {
      std::fprintf(stderr, "verdict drift: %llu vs %llu\n",
                   static_cast<unsigned long long>(p.answered_true),
                   static_cast<unsigned long long>(points.front().answered_true));
      return 1;
    }
  }
  WriteJson(config, num_sccs, points);
  return 0;
}
