// Fig. 9(a)(b) (Exp-3): time and I/Os vs node count |V| on Large-SCC.
// Expected shape (paper): both Ext-SCC variants grow with |V| (more
// contraction iterations + bigger per-iteration sorts); DFS-SCC only
// finishes at the smallest point — and even there is far slower.
#include <string>
#include <vector>

#include "bench/harness.h"
#include "gen/synthetic_generator.h"

namespace bench = extscc::bench;

int main(int argc, char** argv) {
  bench::ParseBenchFlags(argc, argv);
  std::printf("Fig. 9(a)(b) — Large-SCC, varying node count; D=%.0f, "
              "M=%llu KB\n",
              bench::kDefaultDegree,
              static_cast<unsigned long long>(bench::DefaultMemory() / 1024));
  std::vector<bench::PointResult> points;
  for (const std::uint64_t nodes : bench::NodeSweep()) {
    auto workload = [nodes](extscc::io::IoContext* ctx) {
      extscc::gen::SyntheticParams params;
      params.num_nodes = nodes;
      params.avg_degree = bench::kDefaultDegree;
      params.sccs = {{bench::kLargeSccCount, bench::LargeSccSize(params.num_nodes)}};
      params.seed = 9;
      return extscc::gen::GenerateSynthetic(ctx, params);
    };
    points.push_back(bench::RunPoint(std::to_string(nodes / 1000) + "K",
                                     workload, bench::DefaultMemory()));
  }
  bench::EmitFigure("fig9ab_vary_nodes", "|V|", points);
  return 0;
}
