// Web-graph condensation + topological sort — the paper's motivating
// application (1): contract every SCC of a web-scale graph into one node
// and rank the resulting DAG. Everything runs externally: Ext-SCC for the
// labels, sort/merge relabelling for the condensation, external Kahn for
// the ranking.
//
//   $ ./webgraph_condensation [num_nodes] [seed]
#include <algorithm>
#include <cstdio>
#include <cstdlib>

#include "app/scc_stats.h"
#include "core/ext_scc.h"
#include "gen/webgraph_generator.h"
#include "graph/disk_graph.h"
#include "scc/condensation.h"
#include "scc/semi_external_scc.h"

namespace {
using namespace extscc;
}  // namespace

int main(int argc, char** argv) {
  const std::uint64_t num_nodes =
      argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 50'000;
  const std::uint64_t seed =
      argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 7;

  io::IoContextOptions machine;
  machine.block_size = 64 * 1024;
  // A quarter of the node set fits (forces 1+ contraction level), but
  // never below the model's M >= 2B floor.
  machine.memory_bytes = std::max<std::uint64_t>(
      2 * machine.block_size,
      scc::SemiExternalScc::kBytesPerNode * (num_nodes / 4));
  io::IoContext context(machine);

  gen::WebGraphParams params;
  params.num_nodes = num_nodes;
  params.seed = seed;
  std::printf("generating web graph with %llu pages...\n",
              static_cast<unsigned long long>(num_nodes));
  const auto g = gen::GenerateWebGraph(&context, params);
  std::printf("web graph: %s\n", g.Describe().c_str());

  const std::string scc_path = context.NewTempPath("scc");
  auto result = core::RunExtScc(&context, g, scc_path,
                                core::ExtSccOptions::Optimized());
  if (!result.ok()) {
    std::fprintf(stderr, "Ext-SCC failed: %s\n",
                 result.status().ToString().c_str());
    return 1;
  }
  std::printf("Ext-SCC: %llu SCCs in %u contraction level(s), %llu I/Os\n",
              static_cast<unsigned long long>(result.value().num_sccs),
              result.value().num_levels(),
              static_cast<unsigned long long>(result.value().total_ios));

  auto stats = app::ComputeSccStats(&context, scc_path);
  if (stats.ok()) {
    std::printf("SCC statistics: %s\n", stats.value().ToString().c_str());
  }

  const auto cond = scc::BuildCondensation(&context, g, scc_path);
  std::printf("condensation DAG: %s (dropped %llu intra-SCC + %llu "
              "parallel edges)\n",
              cond.dag.Describe().c_str(),
              static_cast<unsigned long long>(cond.intra_scc_edges),
              static_cast<unsigned long long>(cond.parallel_edges));

  auto topo = scc::ExternalTopoSort(&context, cond.dag);
  if (!topo.ok()) {
    std::fprintf(stderr, "topological sort failed: %s\n",
                 topo.status().ToString().c_str());
    return 1;
  }
  std::printf("topological sort: ranked %llu SCC-nodes into %llu levels\n",
              static_cast<unsigned long long>(topo.value().ranked_nodes),
              static_cast<unsigned long long>(topo.value().num_levels));
  std::printf("total block I/Os this session: %llu (%llu random)\n",
              static_cast<unsigned long long>(context.stats().total_ios()),
              static_cast<unsigned long long>(context.stats().random_ios()));
  return 0;
}
