// Full web-graph analysis pipeline — everything the paper's introduction
// says SCC computation enables, end to end on one graph:
//
//   1. Ext-SCC-Op under contraction pressure        (the contribution)
//   2. bow-tie decomposition around the giant SCC   (Broder et al.)
//   3. condensation + external topological sort     (motivation 1)
//   4. external bisimulation on the condensation    (motivation 1, [16])
//   5. GRAIL-style reachability index + sample queries (motivation 2, [25])
//
//   $ ./web_analysis [num_nodes] [seed]
#include <cstdio>
#include <cstdlib>

#include "app/bisimulation.h"
#include "app/bowtie.h"
#include "app/reachability_index.h"
#include "core/ext_scc.h"
#include "gen/webgraph_generator.h"
#include "io/record_stream.h"
#include "scc/condensation.h"
#include "scc/semi_external_scc.h"
#include "util/random.h"

namespace {
using namespace extscc;
}  // namespace

int main(int argc, char** argv) {
  const std::uint64_t num_nodes =
      argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 20'000;
  const std::uint64_t seed =
      argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 2007;

  io::IoContextOptions machine;
  machine.block_size = 16 * 1024;
  machine.memory_bytes = std::max<std::uint64_t>(
      2 * machine.block_size,
      scc::SemiExternalScc::kBytesPerNode * (num_nodes / 4));
  io::IoContext context(machine);

  gen::WebGraphParams params;
  params.num_nodes = num_nodes;
  params.seed = seed;
  const auto g = gen::GenerateWebGraph(&context, params);
  std::printf("web graph: %s (M=%llu KB)\n\n", g.Describe().c_str(),
              static_cast<unsigned long long>(machine.memory_bytes / 1024));

  // ---- 1. SCCs ----------------------------------------------------------
  const std::string scc_path = context.NewTempPath("scc");
  auto scc_result = core::RunExtScc(&context, g, scc_path,
                                    core::ExtSccOptions::Optimized());
  if (!scc_result.ok()) {
    std::fprintf(stderr, "Ext-SCC failed: %s\n",
                 scc_result.status().ToString().c_str());
    return 1;
  }
  std::printf("[1] Ext-SCC-Op: %llu SCCs in %u contraction levels "
              "(%llu I/Os)\n",
              static_cast<unsigned long long>(scc_result.value().num_sccs),
              scc_result.value().num_levels(),
              static_cast<unsigned long long>(
                  scc_result.value().total_ios));

  // ---- 2. bow-tie --------------------------------------------------------
  auto bowtie = app::BowtieDecompose(&context, g, scc_path);
  if (!bowtie.ok()) {
    std::fprintf(stderr, "bow-tie failed: %s\n",
                 bowtie.status().ToString().c_str());
    return 1;
  }
  const auto& bt = bowtie.value();
  std::printf("[2] bow-tie: CORE %llu (SCC #%u), IN %llu, OUT %llu, "
              "OTHER %llu\n",
              static_cast<unsigned long long>(bt.core_size), bt.core_scc,
              static_cast<unsigned long long>(bt.in_size),
              static_cast<unsigned long long>(bt.out_size),
              static_cast<unsigned long long>(bt.other_size));

  // ---- 3. condensation + topological sort --------------------------------
  const auto condensation = scc::BuildCondensation(&context, g, scc_path);
  auto topo = scc::ExternalTopoSort(&context, condensation.dag);
  if (!topo.ok()) {
    std::fprintf(stderr, "topo sort failed: %s\n",
                 topo.status().ToString().c_str());
    return 1;
  }
  std::printf("[3] condensation: %s; topological levels: %llu\n",
              condensation.dag.Describe().c_str(),
              static_cast<unsigned long long>(topo.value().num_levels));

  // ---- 4. bisimulation on the DAG ----------------------------------------
  auto bisim = app::ExternalBisimulation(&context, condensation.dag);
  if (!bisim.ok()) {
    std::fprintf(stderr, "bisimulation failed: %s\n",
                 bisim.status().ToString().c_str());
    return 1;
  }
  std::printf("[4] bisimulation: %llu blocks over %llu DAG nodes "
              "(%.1f%% compression, %llu height levels)\n",
              static_cast<unsigned long long>(bisim.value().num_blocks),
              static_cast<unsigned long long>(condensation.dag.num_nodes),
              100.0 * (1.0 - static_cast<double>(bisim.value().num_blocks) /
                                 static_cast<double>(
                                     condensation.dag.num_nodes)),
              static_cast<unsigned long long>(bisim.value().num_heights));

  // ---- 5. reachability index + sample queries ----------------------------
  auto index = app::ReachabilityIndex::Build(&context, g, scc_path, {});
  if (!index.ok()) {
    std::fprintf(stderr, "reachability index failed: %s\n",
                 index.status().ToString().c_str());
    return 1;
  }
  const auto nodes = io::ReadAllRecords<graph::NodeId>(&context, g.node_path);
  util::Rng rng(seed + 1);
  std::uint64_t reachable = 0;
  const std::uint64_t kQueries = 2000;
  for (std::uint64_t q = 0; q < kQueries; ++q) {
    const auto u = nodes[rng.Uniform(nodes.size())];
    const auto v = nodes[rng.Uniform(nodes.size())];
    if (index.value().Reachable(u, v)) ++reachable;
  }
  const auto& qs = index.value().stats();
  std::printf("[5] reachability: %llu/%llu random pairs reachable "
              "(same-SCC %llu, interval-refuted %llu, DFS fallback %llu)\n",
              static_cast<unsigned long long>(reachable),
              static_cast<unsigned long long>(kQueries),
              static_cast<unsigned long long>(qs.same_scc_hits),
              static_cast<unsigned long long>(qs.interval_refutations),
              static_cast<unsigned long long>(qs.dfs_fallbacks));

  std::puts("\npipeline complete — one external SCC computation fed four "
            "downstream analyses");
  return 0;
}
