// Reachability queries via SCC condensation — the paper's motivating
// application (2): almost every reachability index first contracts the
// input to a DAG by computing SCCs (the paper cites GRAIL [25]).
//
//   $ ./reachability_oracle [num_nodes] [num_queries]
//
// Builds a synthetic graph with planted SCCs, computes SCCs with Ext-SCC
// under contraction pressure, then builds app::ReachabilityIndex — the
// GRAIL-style interval-labelled index over the condensation DAG — and
// answers random reachability queries, cross-checking every answer
// against a direct BFS on the original graph.
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "app/reachability_index.h"
#include "core/ext_scc.h"
#include "gen/synthetic_generator.h"
#include "graph/digraph.h"
#include "io/record_stream.h"
#include "scc/semi_external_scc.h"
#include "util/random.h"

using namespace extscc;

int main(int argc, char** argv) {
  const std::uint64_t num_nodes =
      argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 5'000;
  const std::uint64_t num_queries =
      argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 500;

  io::IoContextOptions machine;
  machine.block_size = 4096;
  // An eighth of the node set fits in memory — forces real contraction
  // levels — but never below the model's M >= 2B floor.
  machine.memory_bytes =
      std::max<std::uint64_t>(2 * machine.block_size,
                              scc::SemiExternalScc::kBytesPerNode *
                                  (num_nodes / 8));
  io::IoContext context(machine);

  gen::SyntheticParams params;
  params.num_nodes = num_nodes;
  params.avg_degree = 2.5;
  params.sccs = {{3, static_cast<std::uint32_t>(num_nodes / 50)},
                 {10, 10}};
  params.seed = 17;
  const auto g = gen::GenerateSynthetic(&context, params);
  std::printf("graph: %s\n", g.Describe().c_str());

  // Step 1: external SCC computation (the expensive, out-of-core step).
  const std::string scc_path = context.NewTempPath("scc");
  auto result = core::RunExtScc(&context, g, scc_path,
                                core::ExtSccOptions::Optimized());
  if (!result.ok()) {
    std::fprintf(stderr, "Ext-SCC failed: %s\n",
                 result.status().ToString().c_str());
    return 1;
  }
  std::printf("Ext-SCC: %llu SCCs, %u levels, %llu I/Os\n",
              static_cast<unsigned long long>(result.value().num_sccs),
              result.value().num_levels(),
              static_cast<unsigned long long>(result.value().total_ios));

  // Step 2: GRAIL-style index over the condensation DAG.
  app::ReachabilityIndexOptions index_options;
  index_options.num_labels = 3;
  index_options.seed = 7;
  auto built =
      app::ReachabilityIndex::Build(&context, g, scc_path, index_options);
  if (!built.ok()) {
    std::fprintf(stderr, "index build failed: %s\n",
                 built.status().ToString().c_str());
    return 1;
  }
  const app::ReachabilityIndex& index = built.value();
  std::printf("condensation DAG: %llu nodes, %llu edges; %u interval "
              "labelings\n",
              static_cast<unsigned long long>(index.stats().dag_nodes),
              static_cast<unsigned long long>(index.stats().dag_edges),
              index_options.num_labels);

  // Step 3: random queries, cross-checked against BFS on the original.
  const auto edges = io::ReadAllRecords<graph::Edge>(&context, g.edge_path);
  const auto nodes =
      io::ReadAllRecords<graph::NodeId>(&context, g.node_path);
  graph::Digraph original(nodes, edges);

  util::Rng rng(99);
  std::uint64_t agree = 0, reachable = 0;
  for (std::uint64_t q = 0; q < num_queries; ++q) {
    const auto u = nodes[rng.Uniform(nodes.size())];
    const auto v = nodes[rng.Uniform(nodes.size())];
    const bool via_index = index.Reachable(u, v);
    const bool direct = graph::BfsReachable(original, original.index_of(u),
                                            original.index_of(v));
    if (direct == via_index) ++agree;
    if (via_index) ++reachable;
  }
  const auto& st = index.stats();
  std::printf("queries: %llu, reachable: %llu, agreement: %llu/%llu\n",
              static_cast<unsigned long long>(num_queries),
              static_cast<unsigned long long>(reachable),
              static_cast<unsigned long long>(agree),
              static_cast<unsigned long long>(num_queries));
  std::printf("index breakdown: same-SCC %llu, interval refutations %llu, "
              "DFS fallbacks %llu\n",
              static_cast<unsigned long long>(st.same_scc_hits),
              static_cast<unsigned long long>(st.interval_refutations),
              static_cast<unsigned long long>(st.dfs_fallbacks));
  if (agree != num_queries) {
    std::puts("MISMATCH between direct BFS and the reachability index!");
    return 1;
  }
  std::puts("all queries agree — SCC condensation + interval labels are "
            "reachability-preserving");
  return 0;
}
