// extscc_tool — command-line front end over the library's public API.
//
//   extscc_tool [--sort-threads=N] [--io-threads=N]
//               [--scratch-dirs=a,b,...]
//               [--device-model=posix|mem|throttled[:...]|faulty[:...]]
//               [--placement=rr|spread|striped] [--checksum-blocks] <command> ...
//
//   extscc_tool generate <kind> <num_nodes> <out.txt> [seed]
//       kind: web | massive | large | small | rmat | cycle | dag
//   extscc_tool solve [--checkpoint-dir=D] [--resume]
//               <edges.txt> <out_labels.txt> [memory_bytes] [basic]
//   extscc_tool verify <edges.txt> <labels.txt>
//   extscc_tool condense <edges.txt> <dag_out.txt> [memory_bytes]
//   extscc_tool build-index [--labels=N] [--seed=S] [--no-bowtie]
//               <edges.txt> <artifact> [memory_bytes]
//   extscc_tool query [--batch-size=N] [--threads=N]
//               <artifact> <batch.txt>
//   extscc_tool serve [--batch-size=N] [--threads=N] <artifact>
//   extscc_tool update [--batch-size=N] --index=<artifact> --edges=<file>
//   extscc_tool fsck [--checkpoint-dir=D] [--dry-run] <artifact>
//
// The serving commands share the artifact + line protocol documented in
// docs/serving.md: build-index solves the graph once and writes a
// versioned, checksummed artifact; query answers a batch file (one
// query per line — `same u v`, `reach u v`, `stat u`; blank line = batch
// boundary) with answers on stdout and batch stats on stderr; serve
// runs the same protocol as a stdin loop, flushing a batch every
// --batch-size lines, on a blank line, and at EOF. update streams an
// edge-insert file ("u v" per line) through the incremental maintainer
// (docs/dynamic.md) in --batch-size chunks: each batch either lands in
// the delta log or atomically publishes a bumped artifact version,
// which a concurrently running serve picks up at its next batch
// boundary.
//
// Global flags (before the command) apply to every machine the tool
// builds: --sort-threads enables overlapped run formation (labels are
// byte-identical; I/O counts can shift because file sorts halve their
// run buffers to double-buffer), --io-threads enables device-parallel
// I/O (up to N worker threads, one per storage device, keep every
// sequential stream's read-ahead full and double-buffer merge output —
// labels byte-identical, counts can shift like --sort-threads),
// --scratch-dirs builds one scratch
// device per listed directory, --device-model selects what backs them
// (real files, RAM, or latency/bandwidth-throttled files), and
// --placement selects how scratch files are assigned to devices
// (round-robin, spread-group placing a merge group's runs on distinct
// devices, or striped round-robining every scratch file's BLOCKS
// across the devices so one sequential stream runs at D× a single
// device's bandwidth). With several devices, `solve` prints the
// per-device I/O breakdown and the critical-path (busiest-device)
// count; under striped placement it also prints the stripe width.
//
// Crash-safety knobs: `solve --checkpoint-dir=D` durably checkpoints
// every completed phase into D so a killed solve restarts from the last
// phase boundary with `--resume` (labels byte-identical to an unkilled
// run); `fsck` validates an artifact, its delta log, and optionally a
// checkpoint directory, repairing what is safely repairable (torn delta
// tails, orphaned *.tmp publishes, unusable checkpoint manifests); the
// global `--crash-at=[tag:]N` arms the seeded crash-point registry
// (io/crash_point.h) so a harness can kill the process deterministically
// at the Nth durability-relevant operation — the process dies with exit
// code 86, and the next run must recover.
//
// Text formats: edge lists are "u v" per line; label files are
// "node scc" per line.
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "core/checkpoint.h"
#include "core/ext_scc.h"
#include "dyn/delta_log.h"
#include "dyn/dynamic_index.h"
#include "gen/classic_graphs.h"
#include "gen/rmat_generator.h"
#include "gen/synthetic_generator.h"
#include "gen/webgraph_generator.h"
#include "graph/disk_graph.h"
#include "graph/graph_io.h"
#include "graph/scc_file.h"
#include "io/crash_point.h"
#include "io/record_stream.h"
#include "io/storage.h"
#include "io/temp_file_manager.h"
#include "scc/condensation.h"
#include "scc/scc_verify.h"
#include "scc/semi_external_scc.h"
#include "serve/artifact.h"
#include "serve/artifact_stage.h"
#include "serve/index_builder.h"
#include "serve/query_engine.h"
#include "serve/service.h"
#include "util/csv.h"
#include "util/status.h"

namespace {

using namespace extscc;

int Usage() {
  std::fprintf(
      stderr,
      "usage: extscc_tool [--sort-threads=N] [--io-threads=N] "
      "[--scratch-dirs=a,b,...] "
      "[--device-model=MODEL] [--placement=rr|spread|striped] "
      "[--checksum-blocks] [--crash-at=[tag:]N] <command> ...\n"
      "  extscc_tool generate <web|massive|large|small|rmat|cycle|dag> "
      "<num_nodes> <out.txt> [seed]\n"
      "  extscc_tool solve [--checkpoint-dir=D] [--resume] "
      "<edges.txt> <labels_out.txt> [memory_bytes] [basic]\n"
      "  extscc_tool verify <edges.txt> <labels.txt>\n"
      "  extscc_tool condense <edges.txt> <dag_out.txt> "
      "[memory_bytes]\n"
      "  extscc_tool build-index [--labels=N] [--seed=S] [--no-bowtie] "
      "<edges.txt> <artifact> [memory_bytes]\n"
      "  extscc_tool query [--batch-size=N] [--threads=N] "
      "<artifact> <batch.txt>\n"
      "  extscc_tool serve [--batch-size=N] [--threads=N] <artifact>\n"
      "  extscc_tool update [--batch-size=N] --index=<artifact> "
      "--edges=<edges.txt>\n"
      "  extscc_tool fsck [--checkpoint-dir=D] [--dry-run] <artifact>\n"
      "query protocol (one per line): same <u> <v> | reach <u> <v> | "
      "stat <u>; blank line flushes the batch\n"
      "device models:\n"
      "  posix | mem | throttled[:lat_us[:mb_per_s]] |\n"
      "  faulty[:key=value,...] — seeded fault injection on scratch I/O;\n"
      "    keys: seed=U64, rate=R (both directions), read_rate=R,\n"
      "    write_rate=R, short=R (torn transfers), corrupt=R (silent\n"
      "    bit flips; pair with --checksum-blocks to detect),\n"
      "    wfail_after=N / rfail_after=N (device dies persistently at\n"
      "    op N), tag=SUBSTR (only paths containing SUBSTR),\n"
      "    device=I (only scratch device I faults), inner=posix|mem\n"
      "exit codes:\n"
      "  0 success (verify: labels match; fsck: everything clean)\n"
      "  1 verify mismatch, or other non-status failure\n"
      "  2 usage error\n"
      "  3 invalid argument    4 not found\n"
      "  5 I/O error           6 resource exhausted (I/O budget)\n"
      "  7 failed precondition 8 data corruption detected\n"
      "  9 unimplemented      10 fsck found repairable damage\n"
      " 86 injected crash (--crash-at fired)\n");
  return 2;
}

// Maps each failure class to its documented exit code (see Usage) and
// reports the status on stderr. Distinct codes let a chaos harness
// assert on HOW a run failed — an injected I/O error (expected, exit 5)
// versus detected corruption (exit 8) versus a wrong answer (verify
// exit 1) — without parsing diagnostics.
int StatusExit(const util::Status& status) {
  std::fprintf(stderr, "%s\n", status.ToString().c_str());
  switch (status.code()) {
    case util::StatusCode::kOk:
      return 0;
    case util::StatusCode::kInvalidArgument:
      return 3;
    case util::StatusCode::kNotFound:
      return 4;
    case util::StatusCode::kIoError:
      return 5;
    case util::StatusCode::kResourceExhausted:
      return 6;
    case util::StatusCode::kFailedPrecondition:
      return 7;
    case util::StatusCode::kCorruption:
      return 8;
    case util::StatusCode::kUnimplemented:
      return 9;
  }
  return 1;
}

// Global flags, parsed (and stripped) ahead of the command word.
std::size_t g_sort_threads = 0;
std::size_t g_io_threads = 0;
std::vector<std::string> g_scratch_dirs;
io::DeviceModelSpec g_device_model;
io::PlacementPolicy g_placement = io::PlacementPolicy::kRoundRobin;
bool g_checksum_blocks = false;

io::IoContext MakeContext(std::uint64_t memory_bytes) {
  io::IoContextOptions options;
  options.block_size = 64 * 1024;
  options.memory_bytes =
      std::max<std::uint64_t>(memory_bytes, 2 * options.block_size);
  options.sort_threads = g_sort_threads;
  options.io_threads = g_io_threads;
  options.scratch_dirs = g_scratch_dirs;
  options.device_model = g_device_model;
  options.scratch_placement = g_placement;
  options.checksum_blocks = g_checksum_blocks;
  return io::IoContext(options);
}

// Per-device I/O breakdown + critical path for one phase (the deltas
// between two DeviceStats snapshots, so the rows sum to the phase's
// headline total and exclude import/read-back traffic), printed by
// `solve` whenever the machine has more than one scratch device or a
// simulated backing.
void PrintDeviceBreakdown(
    const std::vector<io::IoContext::DeviceStatsRow>& before,
    const std::vector<io::IoContext::DeviceStatsRow>& after) {
  if (g_scratch_dirs.size() <= 1 &&
      g_device_model.model == io::DeviceModel::kPosix) {
    return;
  }
  std::string breakdown;
  std::uint64_t critical_path = 0;
  for (std::size_t i = 0; i < after.size(); ++i) {
    const std::uint64_t ios =
        (after[i].stats - before[i].stats).total_ios();
    if (ios == 0) continue;
    critical_path = std::max(critical_path, ios);
    if (!breakdown.empty()) breakdown += ", ";
    breakdown += after[i].name + "=" +
                 std::to_string(static_cast<unsigned long long>(ios));
  }
  std::printf("per-device I/Os: %s; critical path %llu\n", breakdown.c_str(),
              static_cast<unsigned long long>(critical_path));
}

// Striped placement is a per-block fan-out: say how wide the stripes
// actually are. Quarantine or a 1-device machine narrows it to the
// round-robin fallback, in which case the manager's once-per-run note
// goes to stderr instead of a width line. `out` is stdout for solve
// (whose stdout is human-readable) and stderr for the serving commands
// (whose stdout carries the query protocol).
void ReportStripePlacement(io::IoContext* context, std::FILE* out) {
  if (g_placement != io::PlacementPolicy::kStriped) return;
  const std::size_t width = context->temp_files().effective_stripe_width();
  if (width >= 2) {
    std::fprintf(out, "striped scratch placement: stripe width %llu devices\n",
                 static_cast<unsigned long long>(width));
  } else {
    context->temp_files().NoteStripedFallback();
  }
}

// Splits a command's tail into positional arguments and `--flag=value`
// pairs the caller inspects one by one. Unknown flags are a usage
// error, reported by the caller.
struct CommandArgs {
  std::vector<std::string> positional;
  std::vector<std::string> flags;
};

CommandArgs SplitCommandArgs(int argc, char** argv) {
  CommandArgs out;
  for (int i = 2; i < argc; ++i) {
    if (std::strncmp(argv[i], "--", 2) == 0) {
      out.flags.emplace_back(argv[i]);
    } else {
      out.positional.emplace_back(argv[i]);
    }
  }
  return out;
}

bool FlagValue(const std::string& flag, const char* name,
               std::uint64_t* value) {
  const std::size_t len = std::strlen(name);
  if (flag.compare(0, len, name) != 0 || flag.size() <= len ||
      flag[len] != '=') {
    return false;
  }
  *value = std::strtoull(flag.c_str() + len + 1, nullptr, 10);
  return true;
}

bool FlagStringValue(const std::string& flag, const char* name,
                     std::string* value) {
  const std::size_t len = std::strlen(name);
  if (flag.compare(0, len, name) != 0 || flag.size() <= len ||
      flag[len] != '=') {
    return false;
  }
  *value = flag.substr(len + 1);
  return true;
}

int CmdGenerate(int argc, char** argv) {
  if (argc < 5) return Usage();
  const std::string kind = argv[2];
  const std::uint64_t n = std::strtoull(argv[3], nullptr, 10);
  const std::string out_path = argv[4];
  const std::uint64_t seed =
      argc > 5 ? std::strtoull(argv[5], nullptr, 10) : 1;
  auto context = MakeContext(64 << 20);

  graph::DiskGraph g;
  if (kind == "web") {
    gen::WebGraphParams params;
    params.num_nodes = n;
    params.seed = seed;
    g = gen::GenerateWebGraph(&context, params);
  } else if (kind == "massive" || kind == "large" || kind == "small") {
    gen::SyntheticParams params;
    if (kind == "massive") {
      params = gen::MassiveSccParams(n, 4.0, static_cast<std::uint32_t>(n / 250), seed);
    } else if (kind == "large") {
      params = gen::LargeSccParams(n, 4.0, 50,
                                   static_cast<std::uint32_t>(n / 125), seed);
    } else {
      params = gen::SmallSccParams(n, 4.0, static_cast<std::uint32_t>(n / 100),
                                   40, seed);
    }
    g = gen::GenerateSynthetic(&context, params);
  } else if (kind == "rmat") {
    gen::RmatParams params;
    params.num_nodes = n;
    params.num_edges = 4 * n;
    params.seed = seed;
    g = gen::GenerateRmat(&context, params);
  } else if (kind == "cycle") {
    g = graph::MakeDiskGraph(&context,
                             gen::CycleEdges(static_cast<std::uint32_t>(n)));
  } else if (kind == "dag") {
    g = graph::MakeDiskGraph(
        &context,
        gen::RandomDagEdges(static_cast<std::uint32_t>(n), 3 * n, seed));
  } else {
    return Usage();
  }
  const auto status = graph::SaveTextEdgeList(&context, g, out_path);
  if (!status.ok()) return StatusExit(status);
  std::printf("wrote %s: %s\n", out_path.c_str(), g.Describe().c_str());
  return 0;
}

int CmdSolve(int argc, char** argv) {
  const CommandArgs args = SplitCommandArgs(argc, argv);
  std::string checkpoint_dir;
  bool resume = false;
  for (const std::string& flag : args.flags) {
    std::string text;
    if (FlagStringValue(flag, "--checkpoint-dir", &text)) {
      checkpoint_dir = text;
    } else if (flag == "--resume") {
      resume = true;
    } else {
      return Usage();
    }
  }
  if (args.positional.size() < 2 || args.positional.size() > 4) return Usage();
  if (resume && checkpoint_dir.empty()) return Usage();
  const std::string edges_path = args.positional[0];
  const std::string labels_path = args.positional[1];
  const std::uint64_t memory =
      args.positional.size() > 2
          ? std::strtoull(args.positional[2].c_str(), nullptr, 10)
          : (4u << 20);
  const bool basic =
      args.positional.size() > 3 && args.positional[3] == "basic";
  core::ExtSccOptions options = basic ? core::ExtSccOptions::Basic()
                                      : core::ExtSccOptions::Optimized();
  options.checkpoint_dir = checkpoint_dir;
  options.resume = resume;
  if (!checkpoint_dir.empty()) {
    std::error_code ec;
    std::filesystem::create_directories(checkpoint_dir, ec);
    if (ec) {
      return StatusExit(util::Status::IoError(
          "cannot create checkpoint directory " + checkpoint_dir + ": " +
          ec.message()));
    }
  }
  auto context = MakeContext(memory);
  ReportStripePlacement(&context, stdout);
  auto loaded = graph::LoadTextEdgeList(&context, edges_path);
  if (!loaded.ok()) return StatusExit(loaded.status());
  const std::string scc_path = context.NewTempPath("scc");
  const auto dev_before = context.DeviceStats();
  auto result = core::RunExtScc(&context, loaded.value(), scc_path, options);
  const auto dev_after = context.DeviceStats();
  if (!result.ok()) return StatusExit(result.status());
  std::ofstream out(labels_path);
  if (!out) {
    return StatusExit(util::Status::IoError("cannot create " + labels_path));
  }
  io::RecordReader<graph::SccEntry> reader(&context, scc_path);
  graph::SccEntry entry;
  while (reader.Next(&entry)) {
    out << entry.node << ' ' << entry.scc << '\n';
  }
  // A read failure looks like EOF to the loop above; distinguish a
  // complete label file from a truncated one before reporting success.
  if (!reader.status().ok()) return StatusExit(reader.status());
  std::printf("%s: %llu SCCs, %u contraction levels, %llu I/Os, %.2fs\n",
              edges_path.c_str(),
              static_cast<unsigned long long>(result.value().num_sccs),
              result.value().num_levels(),
              static_cast<unsigned long long>(result.value().total_ios),
              result.value().total_seconds);
  PrintDeviceBreakdown(dev_before, dev_after);
  // Transient faults that the retry layer absorbed. Retries are not
  // model I/Os, so a fault-ridden-but-recovered solve prints the same
  // I/O count as a clean one — this line is the only trace it left.
  std::uint64_t read_retries = 0, write_retries = 0;
  for (std::size_t i = 0; i < dev_after.size(); ++i) {
    const io::IoStats delta = dev_after[i].stats - dev_before[i].stats;
    read_retries += delta.read_retries;
    write_retries += delta.write_retries;
  }
  if (read_retries + write_retries > 0) {
    std::printf("I/O retries absorbed: %llu reads, %llu writes\n",
                static_cast<unsigned long long>(read_retries),
                static_cast<unsigned long long>(write_retries));
  }
  // Durability work rides in its own counters (never model I/Os), so a
  // checkpointed run prints the same I/O line as a plain one plus this.
  const io::IoStats& totals = context.stats();
  if (totals.sync_calls + totals.checkpoint_writes + totals.checkpoint_reads >
      0) {
    std::printf(
        "durability: %llu fsyncs, %llu checkpoint writes, "
        "%llu checkpoint reads\n",
        static_cast<unsigned long long>(totals.sync_calls),
        static_cast<unsigned long long>(totals.checkpoint_writes),
        static_cast<unsigned long long>(totals.checkpoint_reads));
  }
  return 0;
}

int CmdVerify(int argc, char** argv) {
  if (argc < 4) return Usage();
  auto context = MakeContext(256 << 20);
  auto loaded = graph::LoadTextEdgeList(&context, argv[2]);
  if (!loaded.ok()) return StatusExit(loaded.status());
  // Parse the label file into an on-disk SCC file.
  const std::string scc_path = context.NewTempPath("labels");
  {
    std::ifstream in(argv[3]);
    if (!in) {
      return StatusExit(util::Status::IoError(std::string("cannot open ") +
                                              argv[3]));
    }
    const std::string staging = context.NewTempPath("labels_raw");
    io::RecordWriter<graph::SccEntry> writer(&context, staging);
    std::uint64_t node, scc;
    while (in >> node >> scc) {
      writer.Append(graph::SccEntry{static_cast<graph::NodeId>(node),
                                    static_cast<graph::SccId>(scc)});
    }
    writer.Finish();
    graph::SortSccFileByNode(&context, staging, scc_path);
  }
  std::string explanation;
  if (scc::VerifySccFile(&context, loaded.value(), scc_path, &explanation)) {
    std::puts("OK: labels match the oracle partition");
    return 0;
  }
  std::printf("MISMATCH: %s\n", explanation.c_str());
  return 1;
}

int CmdCondense(int argc, char** argv) {
  if (argc < 4) return Usage();
  const std::uint64_t memory =
      argc > 4 ? std::strtoull(argv[4], nullptr, 10) : (4u << 20);
  auto context = MakeContext(memory);
  auto loaded = graph::LoadTextEdgeList(&context, argv[2]);
  if (!loaded.ok()) return StatusExit(loaded.status());
  const std::string scc_path = context.NewTempPath("scc");
  auto result = core::RunExtScc(&context, loaded.value(), scc_path,
                                core::ExtSccOptions::Optimized());
  if (!result.ok()) return StatusExit(result.status());
  const auto cond = scc::BuildCondensation(&context, loaded.value(),
                                           scc_path);
  const auto status =
      graph::SaveTextEdgeList(&context, cond.dag, argv[3]);
  if (!status.ok()) return StatusExit(status);
  std::printf("condensation: %s (from %s)\n", cond.dag.Describe().c_str(),
              loaded.value().Describe().c_str());
  return 0;
}

int CmdBuildIndex(int argc, char** argv) {
  const CommandArgs args = SplitCommandArgs(argc, argv);
  serve::BuildArtifactOptions options;
  for (const std::string& flag : args.flags) {
    std::uint64_t value = 0;
    if (FlagValue(flag, "--labels", &value)) {
      options.num_labels = static_cast<std::uint32_t>(value);
    } else if (FlagValue(flag, "--seed", &value)) {
      options.label_seed = value;
    } else if (flag == "--no-bowtie") {
      options.include_bowtie = false;
    } else {
      return Usage();
    }
  }
  if (args.positional.size() < 2 || args.positional.size() > 3) {
    return Usage();
  }
  const std::uint64_t memory =
      args.positional.size() > 2
          ? std::strtoull(args.positional[2].c_str(), nullptr, 10)
          : (64u << 20);
  auto context = MakeContext(memory);
  ReportStripePlacement(&context, stdout);
  auto loaded = graph::LoadTextEdgeList(&context, args.positional[0]);
  if (!loaded.ok()) return StatusExit(loaded.status());
  auto built = serve::BuildArtifact(&context, loaded.value(),
                                    args.positional[1], options);
  if (!built.ok()) return StatusExit(built.status());
  const serve::ArtifactSummary& s = built.value().summary;
  std::printf(
      "built %s: %llu nodes, %llu SCCs, dag %llu/%llu, "
      "%u label rounds, solve %llu I/Os\n",
      args.positional[1].c_str(),
      static_cast<unsigned long long>(s.graph_nodes),
      static_cast<unsigned long long>(s.num_sccs),
      static_cast<unsigned long long>(s.dag_nodes),
      static_cast<unsigned long long>(s.dag_edges),
      s.num_label_rounds,
      static_cast<unsigned long long>(built.value().solve_stats.total_ios));
  if (s.bowtie_computed != 0) {
    std::printf("bow-tie: core=%llu in=%llu out=%llu other=%llu\n",
                static_cast<unsigned long long>(s.core_size),
                static_cast<unsigned long long>(s.in_size),
                static_cast<unsigned long long>(s.out_size),
                static_cast<unsigned long long>(s.other_size));
  }
  return 0;
}

// Shared by `query` and `serve`: run one accumulated batch, print the
// answers in input order, fold the batch stats into the session totals.
// On failure the batch is left intact so serve's refresh-and-retry can
// re-run it against a reopened artifact.
util::Status RunOneBatch(io::IoContext* context,
                         const serve::QueryEngine& engine,
                         std::size_t threads, std::vector<serve::Query>* batch,
                         serve::QueryBatchStats* totals,
                         std::uint64_t* num_batches) {
  if (batch->empty()) return util::Status::Ok();
  std::vector<serve::QueryAnswer> answers;
  RETURN_IF_ERROR(
      serve::RunQueries(context, engine, *batch, threads, &answers, totals));
  for (std::size_t i = 0; i < batch->size(); ++i) {
    std::printf("%s\n",
                serve::FormatAnswer((*batch)[i], answers[i]).c_str());
  }
  batch->clear();
  ++*num_batches;
  return util::Status::Ok();
}

int FlushBatch(io::IoContext* context, const serve::QueryEngine& engine,
               std::size_t threads, std::vector<serve::Query>* batch,
               serve::QueryBatchStats* totals, std::uint64_t* num_batches) {
  const util::Status status =
      RunOneBatch(context, engine, threads, batch, totals, num_batches);
  return status.ok() ? 0 : StatusExit(status);
}

void PrintBatchStats(const serve::QueryBatchStats& totals,
                     std::uint64_t num_batches) {
  std::fprintf(stderr,
               "batches=%llu queries=%llu probes=%llu unknown=%llu "
               "swept_blocks=%llu spill_runs=%llu dfs_fallbacks=%llu\n",
               static_cast<unsigned long long>(num_batches),
               static_cast<unsigned long long>(totals.queries),
               static_cast<unsigned long long>(totals.probes),
               static_cast<unsigned long long>(totals.unknown_nodes),
               static_cast<unsigned long long>(totals.swept_blocks),
               static_cast<unsigned long long>(totals.probe_spill_runs),
               static_cast<unsigned long long>(totals.labels.dfs_fallbacks));
}

struct ServeFlags {
  std::size_t batch_size = 4096;
  std::size_t threads = 1;
  bool ok = true;
};

ServeFlags ParseServeFlags(const std::vector<std::string>& flags) {
  ServeFlags out;
  for (const std::string& flag : flags) {
    std::uint64_t value = 0;
    if (FlagValue(flag, "--batch-size", &value) && value > 0) {
      out.batch_size = static_cast<std::size_t>(value);
    } else if (FlagValue(flag, "--threads", &value)) {
      out.threads = static_cast<std::size_t>(value);
    } else {
      out.ok = false;
    }
  }
  return out;
}

int CmdQuery(int argc, char** argv) {
  const CommandArgs args = SplitCommandArgs(argc, argv);
  const ServeFlags flags = ParseServeFlags(args.flags);
  if (!flags.ok || args.positional.size() != 2) return Usage();
  auto context = MakeContext(64 << 20);
  ReportStripePlacement(&context, stderr);
  // Stage the artifact onto the scratch devices when striping is live,
  // so every map sweep runs at the full multi-device bandwidth.
  auto staged = serve::StageArtifactForServing(&context, args.positional[0]);
  if (!staged.ok()) return StatusExit(staged.status());
  auto opened = serve::ArtifactReader::Open(&context, staged.value().path);
  if (!opened.ok()) return StatusExit(opened.status());
  const serve::ArtifactReader artifact = std::move(opened).value();
  const serve::QueryEngine engine(&artifact);

  std::ifstream in(args.positional[1]);
  if (!in) {
    return StatusExit(util::Status::IoError("cannot open " +
                                            args.positional[1]));
  }
  std::vector<serve::Query> batch;
  serve::QueryBatchStats totals;
  std::uint64_t num_batches = 0;
  std::string line;
  std::uint64_t line_number = 0;
  while (std::getline(in, line)) {
    ++line_number;
    if (line.find_first_not_of(" \t\r") == std::string::npos) {
      // Blank line: explicit batch boundary.
      const int rc = FlushBatch(&context, engine, flags.threads, &batch,
                                &totals, &num_batches);
      if (rc != 0) return rc;
      continue;
    }
    serve::Query query;
    if (!serve::ParseQueryLine(line, &query)) {
      return StatusExit(util::Status::InvalidArgument(
          args.positional[1] + ":" + std::to_string(line_number) +
          ": malformed query: " + line));
    }
    batch.push_back(query);
    if (batch.size() >= flags.batch_size) {
      const int rc = FlushBatch(&context, engine, flags.threads, &batch,
                                &totals, &num_batches);
      if (rc != 0) return rc;
    }
  }
  const int rc = FlushBatch(&context, engine, flags.threads, &batch,
                            &totals, &num_batches);
  if (rc != 0) return rc;
  PrintBatchStats(totals, num_batches);
  return 0;
}

int CmdServe(int argc, char** argv) {
  const CommandArgs args = SplitCommandArgs(argc, argv);
  const ServeFlags flags = ParseServeFlags(args.flags);
  if (!flags.ok || args.positional.size() != 1) return Usage();
  auto context = MakeContext(64 << 20);
  ReportStripePlacement(&context, stderr);
  const std::string source = args.positional[0];

  // The live artifact: reopened (and restaged under striping) whenever
  // an `update` publishes a new data version at the source path. The
  // engine borrows the reader, so both rebuild together.
  std::string active_path;
  bool active_staged = false;
  std::optional<serve::ArtifactReader> artifact;
  std::optional<serve::QueryEngine> engine;
  const auto open_live = [&]() -> util::Status {
    auto staged = serve::StageArtifactForServing(&context, source);
    RETURN_IF_ERROR(staged.status());
    auto opened = serve::ArtifactReader::Open(&context, staged.value().path);
    if (!opened.ok()) {
      if (staged.value().staged) {
        context.temp_files().Remove(staged.value().path);
      }
      return opened.status();
    }
    if (active_staged) context.temp_files().Remove(active_path);
    active_path = staged.value().path;
    active_staged = staged.value().staged;
    engine.reset();
    artifact.emplace(std::move(opened).value());
    engine.emplace(&*artifact);
    return util::Status::Ok();
  };
  const util::Status first_open = open_live();
  if (!first_open.ok()) return StatusExit(first_open);
  std::fprintf(stderr, "serving %s: %llu nodes, %llu SCCs, data version %llu\n",
               source.c_str(),
               static_cast<unsigned long long>(
                   artifact->summary().graph_nodes),
               static_cast<unsigned long long>(artifact->summary().num_sccs),
               static_cast<unsigned long long>(artifact->data_version()));

  const auto note_reloaded = [&]() {
    std::fprintf(stderr,
                 "reloaded %s: data version %llu, %llu nodes, %llu SCCs\n",
                 source.c_str(),
                 static_cast<unsigned long long>(artifact->data_version()),
                 static_cast<unsigned long long>(
                     artifact->summary().graph_nodes),
                 static_cast<unsigned long long>(
                     artifact->summary().num_sccs));
  };
  // Refresh protocol (docs/serving.md): at batch boundaries peek the
  // SOURCE preamble's data version — one block read — and reopen on a
  // bump. Publication is an atomic rename, so the peek sees either the
  // old complete version or the new complete version, never a torn
  // file. Any refresh failure keeps the current artifact serving.
  const auto maybe_refresh = [&]() {
    auto version = serve::PeekArtifactVersion(&context, source);
    if (!version.ok() || version.value() == artifact->data_version()) return;
    const util::Status reopened = open_live();
    if (reopened.ok()) {
      note_reloaded();
    } else {
      std::fprintf(stderr, "refresh of %s failed (%s); still serving "
                           "data version %llu\n",
                   source.c_str(), reopened.ToString().c_str(),
                   static_cast<unsigned long long>(artifact->data_version()));
    }
  };

  std::vector<serve::Query> batch;
  serve::QueryBatchStats totals;
  std::uint64_t num_batches = 0;
  // The refresh peek runs BEFORE the batch, but an update can still
  // publish mid-sweep when serving the source file directly (the map
  // scanner reopens it by path, so the old CRC table meets new bytes
  // and the sweep reports corruption). That failure is the swap itself:
  // reopen the artifact and retry the batch once before treating it as
  // real corruption. A staged (striped) artifact sweeps a private
  // scratch copy and never hits this.
  const auto flush = [&]() -> int {
    maybe_refresh();
    util::Status status = RunOneBatch(&context, *engine, flags.threads,
                                      &batch, &totals, &num_batches);
    if (status.code() == util::StatusCode::kCorruption) {
      const util::Status reopened = open_live();
      if (reopened.ok()) {
        note_reloaded();
        status = RunOneBatch(&context, *engine, flags.threads, &batch,
                             &totals, &num_batches);
      }
    }
    return status.ok() ? 0 : StatusExit(status);
  };
  std::string line;
  while (std::getline(std::cin, line)) {
    if (line.find_first_not_of(" \t\r") == std::string::npos) {
      const int rc = flush();
      if (rc != 0) return rc;
      std::fflush(stdout);
      continue;
    }
    serve::Query query;
    if (!serve::ParseQueryLine(line, &query)) {
      // Interactive loop: a typo must not kill the server. Echo the
      // offending line and keep accumulating.
      std::printf("error %s\n", line.c_str());
      std::fflush(stdout);
      continue;
    }
    batch.push_back(query);
    if (batch.size() >= flags.batch_size) {
      const int rc = flush();
      if (rc != 0) return rc;
      std::fflush(stdout);
    }
  }
  const int rc = flush();
  if (rc != 0) return rc;
  std::fflush(stdout);
  PrintBatchStats(totals, num_batches);
  return 0;
}

int CmdUpdate(int argc, char** argv) {
  const CommandArgs args = SplitCommandArgs(argc, argv);
  std::string index_path, edges_path;
  std::uint64_t batch_size = 65536;
  for (const std::string& flag : args.flags) {
    std::string text;
    std::uint64_t value = 0;
    if (FlagStringValue(flag, "--index", &text)) {
      index_path = text;
    } else if (FlagStringValue(flag, "--edges", &text)) {
      edges_path = text;
    } else if (FlagValue(flag, "--batch-size", &value) && value > 0) {
      batch_size = value;
    } else {
      return Usage();
    }
  }
  if (index_path.empty() || edges_path.empty() || !args.positional.empty()) {
    return Usage();
  }
  auto context = MakeContext(64 << 20);
  ReportStripePlacement(&context, stderr);
  auto opened = dyn::DynamicSccIndex::Open(&context, index_path);
  if (!opened.ok()) return StatusExit(opened.status());
  dyn::DynamicSccIndex index = std::move(opened).value();
  std::ifstream in(edges_path);
  if (!in) {
    return StatusExit(util::Status::IoError("cannot open " + edges_path));
  }

  std::vector<graph::Edge> batch;
  std::uint64_t total_edges = 0, total_ios = 0, rewrites = 0,
                num_batches = 0;
  const auto flush = [&]() -> int {
    if (batch.empty()) return 0;
    auto applied = index.ApplyBatch(batch);
    if (!applied.ok()) return StatusExit(applied.status());
    const dyn::UpdateBatchStats& s = applied.value();
    ++num_batches;
    total_edges += s.edges_in;
    total_ios += s.batch_ios;
    if (s.rewrote_artifact) ++rewrites;
    std::fprintf(stderr,
                 "batch %llu: %llu edges (%llu intra, %llu dup-dag, "
                 "%llu new-dag, %llu new nodes, %llu merges), %s, "
                 "%llu I/Os, version %llu\n",
                 static_cast<unsigned long long>(num_batches),
                 static_cast<unsigned long long>(s.edges_in),
                 static_cast<unsigned long long>(s.intra_scc),
                 static_cast<unsigned long long>(s.duplicate_dag),
                 static_cast<unsigned long long>(s.new_dag_edges),
                 static_cast<unsigned long long>(s.new_nodes),
                 static_cast<unsigned long long>(s.merge_groups),
                 s.rewrote_artifact ? "rewrote artifact" : "delta log",
                 static_cast<unsigned long long>(s.batch_ios),
                 static_cast<unsigned long long>(s.published_version));
    batch.clear();
    return 0;
  };
  std::uint64_t u = 0, v = 0;
  while (in >> u >> v) {
    batch.push_back(graph::Edge{static_cast<graph::NodeId>(u),
                                static_cast<graph::NodeId>(v)});
    if (batch.size() >= batch_size) {
      const int rc = flush();
      if (rc != 0) return rc;
    }
  }
  const int rc = flush();
  if (rc != 0) return rc;
  std::printf(
      "updated %s: %llu edges in %llu batches, %llu rewrites, "
      "data version %llu, %llu pending delta edges, %llu I/Os\n",
      index_path.c_str(), static_cast<unsigned long long>(total_edges),
      static_cast<unsigned long long>(num_batches),
      static_cast<unsigned long long>(rewrites),
      static_cast<unsigned long long>(index.data_version()),
      static_cast<unsigned long long>(index.pending_delta_edges()),
      static_cast<unsigned long long>(total_ios));
  return 0;
}

// fsck: offline consistency check + repair of the serving state for one
// artifact. Checks, in order: the artifact itself (full Open — preamble,
// footer, section checksums — plus a CRC-verified sweep of the node→SCC
// map), orphaned "*.tmp" publishes beside it (a publisher killed between
// write and rename), the delta log (torn tails are truncated to the last
// CRC-valid record, stale logs deleted), and optionally a checkpoint
// directory (a manifest that is corrupt or references missing files is
// removed so the next --resume falls back to a fresh run). Exit codes:
// 0 everything clean, 10 repairable damage found (repaired unless
// --dry-run), otherwise the failure's usual status exit (a torn
// ARTIFACT is unrecoverable by design — rebuild or re-publish — and
// exits 8).
int CmdFsck(int argc, char** argv) {
  const CommandArgs args = SplitCommandArgs(argc, argv);
  std::string checkpoint_dir;
  bool dry_run = false;
  for (const std::string& flag : args.flags) {
    std::string text;
    if (FlagStringValue(flag, "--checkpoint-dir", &text)) {
      checkpoint_dir = text;
    } else if (flag == "--dry-run") {
      dry_run = true;
    } else {
      return Usage();
    }
  }
  if (args.positional.size() != 1) return Usage();
  const std::string artifact_path = args.positional[0];
  auto context = MakeContext(64 << 20);
  bool damage = false;

  const auto file_exists = [&](const std::string& path) {
    std::unique_ptr<io::StorageFile> f;
    return context.ResolveDevice(path)->Open(path, io::OpenMode::kRead, &f)
        .ok();
  };
  const auto reap = [&](const std::string& path, const char* what) {
    if (!file_exists(path)) return;
    damage = true;
    if (dry_run) {
      std::printf("fsck: %s: orphaned %s (would remove)\n", path.c_str(),
                  what);
    } else {
      (void)context.ResolveDevice(path)->Delete(path);
      std::printf("fsck: %s: orphaned %s removed\n", path.c_str(), what);
    }
  };

  // 1. The artifact. Open validates preamble/footer/section checksums
  // and loads the resident sections; the sweep re-reads every node→SCC
  // block against its CRC. A missing artifact is exactly what a crash
  // BEFORE the publish rename leaves behind: reap the stranded .tmp
  // (that is the only damage) and report not-found, so a harness can
  // tell "never published" (4/10) from "published but sick" (5/8).
  if (!file_exists(artifact_path)) {
    reap(artifact_path + ".tmp", "artifact publish");
    reap(dyn::DeltaLogPathFor(artifact_path) + ".tmp", "delta log publish");
    if (damage) {
      std::printf(dry_run ? "fsck: repairable damage found (dry run)\n"
                          : "fsck: damage repaired\n");
      return 10;
    }
    return StatusExit(
        util::Status::NotFound(artifact_path + ": no artifact"));
  }
  auto opened = serve::ArtifactReader::Open(&context, artifact_path);
  if (!opened.ok()) return StatusExit(opened.status());
  const serve::ArtifactReader& artifact = opened.value();
  {
    serve::SccMapScanner scan = artifact.OpenNodeSccScan();
    graph::SccEntry entry;
    std::uint64_t entries = 0;
    while (scan.Next(&entry)) ++entries;
    if (!scan.status().ok()) return StatusExit(scan.status());
    if (entries != artifact.summary().graph_nodes) {
      return StatusExit(util::Status::Corruption(
          artifact_path + ": node->SCC map holds " + std::to_string(entries) +
          " entries, summary says " +
          std::to_string(artifact.summary().graph_nodes)));
    }
    std::printf("fsck: %s: OK (data version %llu, %llu nodes, %llu SCCs)\n",
                artifact_path.c_str(),
                static_cast<unsigned long long>(artifact.data_version()),
                static_cast<unsigned long long>(
                    artifact.summary().graph_nodes),
                static_cast<unsigned long long>(artifact.summary().num_sccs));
  }

  // 2. Orphaned tmp publishes beside the artifact.
  const std::string dlog_path = dyn::DeltaLogPathFor(artifact_path);
  reap(artifact_path + ".tmp", "artifact publish");
  reap(dlog_path + ".tmp", "delta log publish");

  // 3. The delta log.
  {
    auto scan = dyn::ScanDeltaLog(&context, dlog_path,
                                  artifact.data_version());
    if (!scan.ok()) return StatusExit(scan.status());
    if (!scan.value().exists) {
      std::printf("fsck: %s: no delta log (nothing pending)\n",
                  dlog_path.c_str());
    } else if (scan.value().stale) {
      damage = true;
      if (dry_run) {
        std::printf("fsck: %s: stale (edges already folded into the "
                    "artifact; would remove)\n", dlog_path.c_str());
      } else {
        dyn::RemoveDeltaLog(&context, dlog_path);
        std::printf("fsck: %s: stale log removed\n", dlog_path.c_str());
      }
    } else if (scan.value().torn) {
      damage = true;
      if (dry_run) {
        std::printf("fsck: %s: torn tail after %llu intact edges "
                    "(would truncate)\n", dlog_path.c_str(),
                    static_cast<unsigned long long>(scan.value().edges.size()));
      } else {
        bool recovered = false;
        auto repaired = dyn::RecoverDeltaLog(&context, dlog_path,
                                             artifact.data_version(),
                                             &recovered);
        if (!repaired.ok()) return StatusExit(repaired.status());
        std::printf("fsck: %s: torn tail truncated, %llu edges kept\n",
                    dlog_path.c_str(),
                    static_cast<unsigned long long>(repaired.value().size()));
      }
    } else {
      std::printf("fsck: %s: OK (%llu pending edges)\n", dlog_path.c_str(),
                  static_cast<unsigned long long>(scan.value().edges.size()));
    }
  }

  // 4. The checkpoint directory. The manifest's data version binds it
  // to a solve, not to this artifact, so fsck validates structure only.
  if (!checkpoint_dir.empty()) {
    core::CheckpointSession ckpt(&context, checkpoint_dir, 0);
    reap(ckpt.ManifestPath() + ".tmp", "checkpoint manifest publish");
    auto loaded = ckpt.Load();
    if (loaded.ok()) {
      std::printf("fsck: %s: OK (phase %u, %llu levels, %llu expansions)\n",
                  checkpoint_dir.c_str(), loaded.value().phase,
                  static_cast<unsigned long long>(loaded.value().levels_done),
                  static_cast<unsigned long long>(loaded.value().expand_done));
    } else if (loaded.status().code() == util::StatusCode::kNotFound) {
      std::printf("fsck: %s: no checkpoint manifest\n",
                  checkpoint_dir.c_str());
    } else {
      // Corrupt manifest or missing/resized files: not resumable. The
      // safe repair is to drop the manifest so the next solve starts
      // fresh instead of refusing forever.
      damage = true;
      if (dry_run) {
        std::printf("fsck: %s: unusable checkpoint (%s); would remove "
                    "manifest\n", checkpoint_dir.c_str(),
                    loaded.status().ToString().c_str());
      } else {
        (void)context.ResolveDevice(ckpt.ManifestPath())
            ->Delete(ckpt.ManifestPath());
        std::printf("fsck: %s: unusable checkpoint (%s); manifest removed\n",
                    checkpoint_dir.c_str(),
                    loaded.status().ToString().c_str());
      }
    }
  }

  if (!damage) {
    std::printf("fsck: clean\n");
    return 0;
  }
  std::printf(dry_run ? "fsck: repairable damage found (dry run)\n"
                      : "fsck: damage repaired\n");
  return 10;
}

}  // namespace

int main(int argc, char** argv) {
  // An interrupted run (Ctrl-C, job-queue SIGTERM) must not leave
  // gigabytes of scratch runs behind: the handler removes every live
  // filesystem session root before exiting with 128+signo.
  io::InstallScratchSignalCleanup();
  // Strip leading global flags so the Cmd* handlers keep their
  // positional argv layout.
  int first = 1;
  while (first < argc && std::strncmp(argv[first], "--", 2) == 0) {
    if (std::strcmp(argv[first], "--checksum-blocks") == 0) {
      g_checksum_blocks = true;
    } else if (std::strncmp(argv[first], "--sort-threads=", 15) == 0) {
      g_sort_threads = static_cast<std::size_t>(
          std::strtoull(argv[first] + 15, nullptr, 10));
    } else if (std::strncmp(argv[first], "--io-threads=", 13) == 0) {
      g_io_threads = static_cast<std::size_t>(
          std::strtoull(argv[first] + 13, nullptr, 10));
    } else if (std::strncmp(argv[first], "--scratch-dirs=", 15) == 0) {
      g_scratch_dirs = util::SplitCommaList(argv[first] + 15);
    } else if (std::strncmp(argv[first], "--device-model=", 15) == 0) {
      const std::string error =
          io::ParseDeviceModelSpec(argv[first] + 15, &g_device_model);
      if (!error.empty()) {
        std::fprintf(stderr, "%s\n", error.c_str());
        return 2;
      }
    } else if (std::strncmp(argv[first], "--placement=", 12) == 0) {
      const std::string error =
          io::ParsePlacementSpec(argv[first] + 12, &g_placement);
      if (!error.empty()) {
        std::fprintf(stderr, "%s\n", error.c_str());
        return 2;
      }
    } else if (std::strncmp(argv[first], "--crash-at=", 11) == 0) {
      io::CrashSpec spec;
      const std::string error = io::ParseCrashSpec(argv[first] + 11, &spec);
      if (!error.empty()) {
        std::fprintf(stderr, "--crash-at: %s\n", error.c_str());
        return 2;
      }
      io::ArmCrashPoint(spec);
    } else {
      return Usage();
    }
    ++first;
  }
  // Reject a typo'd scratch list up front, naming the bad directory,
  // instead of CHECK-failing deep inside the TempFileManager.
  {
    const std::string error =
        io::ValidateScratchConfig(g_device_model, g_scratch_dirs);
    if (!error.empty()) {
      std::fprintf(stderr, "--scratch-dirs: %s\n", error.c_str());
      return 2;
    }
  }
  for (int i = first; i < argc; ++i) argv[i - first + 1] = argv[i];
  argc -= first - 1;
  if (argc < 2) return Usage();
  const std::string command = argv[1];
  if (command == "generate") return CmdGenerate(argc, argv);
  if (command == "solve") return CmdSolve(argc, argv);
  if (command == "verify") return CmdVerify(argc, argv);
  if (command == "condense") return CmdCondense(argc, argv);
  if (command == "build-index") return CmdBuildIndex(argc, argv);
  if (command == "query") return CmdQuery(argc, argv);
  if (command == "serve") return CmdServe(argc, argv);
  if (command == "update") return CmdUpdate(argc, argv);
  if (command == "fsck") return CmdFsck(argc, argv);
  return Usage();
}
