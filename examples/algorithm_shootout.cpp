// Algorithm shootout: every SCC algorithm in the library on one R-MAT
// graph, with the simulated external-memory machine squeezed so the node
// set does not fit (the paper's regime). Prints the paper's two metrics
// (I/Os and modeled time) per algorithm and cross-checks that all
// successful algorithms produce the same partition.
//
//   $ ./algorithm_shootout [num_nodes] [num_edges] [seed]
//
// Expected shape (the paper's §VIII): Ext-SCC-Op < Ext-SCC << DFS-SCC
// (often censored at the I/O budget, printed INF); EM-SCC may stall with
// partial SCCs split across partitions; the semi-external algorithms are
// fastest but need c*|V| of memory — they are shown with that relaxed
// budget for reference.
#include <cstdio>
#include <cstdlib>
#include <optional>
#include <string>
#include <vector>

#include "baseline/dfs_scc.h"
#include "baseline/em_scc.h"
#include "baseline/semi_dfs_scc.h"
#include "core/ext_scc.h"
#include "gen/rmat_generator.h"
#include "graph/disk_graph.h"
#include "io/io_context.h"
#include "scc/br_tree_scc.h"
#include "scc/scc_verify.h"
#include "scc/semi_external_scc.h"
#include "util/csv.h"
#include "util/timer.h"

namespace {

using namespace extscc;

struct Row {
  std::string name;
  bool ok = false;
  std::string note;
  double seconds = 0;
  std::uint64_t ios = 0;
  std::uint64_t sccs = 0;
};

constexpr std::uint64_t kInfFactor = 16;

graph::DiskGraph MakeGraph(io::IoContext* ctx, std::uint64_t nodes,
                           std::uint64_t edges, std::uint64_t seed) {
  gen::RmatParams params;
  params.num_nodes = nodes;
  params.num_edges = edges;
  params.seed = seed;
  return gen::GenerateRmat(ctx, params);
}

}  // namespace

int main(int argc, char** argv) {
  const std::uint64_t num_nodes =
      argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 20'000;
  const std::uint64_t num_edges =
      argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 80'000;
  const std::uint64_t seed =
      argc > 3 ? std::strtoull(argv[3], nullptr, 10) : 42;

  // The squeezed machine: an eighth of the node set fits.
  io::IoContextOptions machine;
  machine.block_size = 4096;
  machine.memory_bytes = std::max<std::uint64_t>(
      2 * machine.block_size,
      scc::SemiExternalScc::kBytesPerNode * (num_nodes / 8));

  std::printf("R-MAT graph: |V|=%llu |E|=%llu seed=%llu\n",
              static_cast<unsigned long long>(num_nodes),
              static_cast<unsigned long long>(num_edges),
              static_cast<unsigned long long>(seed));
  std::printf("machine: M=%llu KB, B=%zu KB (node set needs %llu KB)\n\n",
              static_cast<unsigned long long>(machine.memory_bytes / 1024),
              machine.block_size / 1024,
              static_cast<unsigned long long>(
                  num_nodes * scc::SemiExternalScc::kBytesPerNode / 1024));

  std::vector<Row> rows;
  std::optional<scc::SccResult> reference;
  std::uint64_t reference_ios = 0;

  auto record = [&](const std::string& name, io::IoContext* ctx,
                    const std::string& out, double wall, bool ok,
                    const std::string& note, std::uint64_t sccs) {
    Row row;
    row.name = name;
    row.ok = ok;
    row.note = note;
    row.seconds = wall;
    row.ios = ctx->stats().total_ios();
    row.sccs = sccs;
    if (ok) {
      auto partition = scc::LoadSccResult(ctx, out);
      if (!reference.has_value()) {
        reference = std::move(partition);
      } else if (!scc::SamePartition(*reference, partition)) {
        row.note = "PARTITION MISMATCH";
        row.ok = false;
      }
    }
    rows.push_back(row);
  };

  // ---- Ext-SCC basic / op / op+brtree ---------------------------------
  for (const auto& [name, options] :
       std::vector<std::pair<std::string, core::ExtSccOptions>>{
           {"Ext-SCC", core::ExtSccOptions::Basic()},
           {"Ext-SCC-Op", core::ExtSccOptions::Optimized()},
           {"Ext-SCC-Op/brtree",
            [] {
              auto o = core::ExtSccOptions::Optimized();
              o.semi_backend = scc::SemiSccBackend::kBrTree;
              return o;
            }()}}) {
    std::fprintf(stderr, "running %s...\n", name.c_str());
    io::IoContext ctx(machine);
    const auto g = MakeGraph(&ctx, num_nodes, num_edges, seed);
    const std::string out = ctx.NewTempPath("scc");
    util::Timer timer;
    auto result = core::RunExtScc(&ctx, g, out, options);
    const bool ok = result.ok();
    record(name, &ctx, out, timer.ElapsedSeconds(), ok,
           ok ? std::to_string(result.value().num_levels()) + " levels"
              : result.status().ToString(),
           ok ? result.value().num_sccs : 0);
    if (name == "Ext-SCC-Op") reference_ios = ctx.stats().total_ios();
  }

  // ---- DFS-SCC (censored like the paper's 24h cap) ---------------------
  {
    std::fprintf(stderr, "running DFS-SCC (budget %llux)...\n",
                 static_cast<unsigned long long>(kInfFactor));
    io::IoContext ctx(machine);
    const auto g = MakeGraph(&ctx, num_nodes, num_edges, seed);
    ctx.set_io_budget(ctx.stats().total_ios() + reference_ios * kInfFactor);
    const std::string out = ctx.NewTempPath("scc");
    util::Timer timer;
    auto result = baseline::RunDfsScc(&ctx, g, out);
    record("DFS-SCC", &ctx, out, timer.ElapsedSeconds(), result.ok(),
           result.ok() ? "" : "INF (I/O budget)",
           result.ok() ? result.value().num_sccs : 0);
  }

  // ---- EM-SCC (may stall) ----------------------------------------------
  {
    std::fprintf(stderr, "running EM-SCC...\n");
    io::IoContext ctx(machine);
    const auto g = MakeGraph(&ctx, num_nodes, num_edges, seed);
    ctx.set_io_budget(ctx.stats().total_ios() + reference_ios * kInfFactor);
    const std::string out = ctx.NewTempPath("scc");
    util::Timer timer;
    auto result = baseline::RunEmScc(&ctx, g, out);
    record("EM-SCC", &ctx, out, timer.ElapsedSeconds(), result.ok(),
           result.ok() ? "" : "stalled/censored",
           result.ok() ? result.value().num_sccs : 0);
  }

  // ---- semi-external (relaxed budget, for reference) -------------------
  io::IoContextOptions roomy = machine;
  roomy.memory_bytes = num_nodes * 64;
  {
    std::fprintf(stderr, "running Semi-SCC (c|V| <= M)...\n");
    io::IoContext ctx(roomy);
    const auto g = MakeGraph(&ctx, num_nodes, num_edges, seed);
    const std::string out = ctx.NewTempPath("scc");
    graph::SccId next = 0;
    util::Timer timer;
    const auto stats = scc::SemiExternalScc::Run(&ctx, g, out, &next);
    record("Semi-SCC*", &ctx, out, timer.ElapsedSeconds(), true,
           "relaxed budget", stats.num_sccs);
  }
  {
    std::fprintf(stderr, "running Semi-DFS-SCC (c|V| <= M)...\n");
    io::IoContext ctx(roomy);
    const auto g = MakeGraph(&ctx, num_nodes, num_edges, seed);
    ctx.set_io_budget(ctx.stats().total_ios() + reference_ios * kInfFactor);
    const std::string out = ctx.NewTempPath("scc");
    util::Timer timer;
    auto result = baseline::SemiDfsScc::Run(&ctx, g, out);
    record("Semi-DFS-SCC*", &ctx, out, timer.ElapsedSeconds(), result.ok(),
           result.ok() ? "relaxed budget" : "INF (I/O budget)",
           result.ok() ? result.value().num_sccs : 0);
  }

  util::Table table({"algorithm", "ok", "wall_s", "ios", "sccs", "note"});
  for (const auto& row : rows) {
    table.AddRow({row.name, row.ok ? "yes" : "no",
                  util::FormatDouble(row.seconds, 2),
                  row.ok ? util::FormatCount(row.ios) : "INF",
                  row.ok ? std::to_string(row.sccs) : "-", row.note});
  }
  std::printf("%s\nalgorithms marked * run with the relaxed semi-external "
              "budget (c|V| <= M)\n",
              table.ToAligned().c_str());

  for (const auto& row : rows) {
    if (row.note == "PARTITION MISMATCH") {
      std::puts("ERROR: partition mismatch between algorithms");
      return 1;
    }
  }
  std::puts("all successful algorithms agree on the SCC partition");
  return 0;
}
