// Quickstart: compute the SCCs of a small directed graph with Ext-SCC.
//
//   $ ./quickstart [path/to/edge_list.txt]
//
// Without an argument it uses the paper's Fig. 1 running example. The
// example shows the three core API steps:
//   1. Create an IoContext (the simulated external-memory machine).
//   2. Obtain a DiskGraph (load a file or build one).
//   3. RunExtScc and consume the (node, scc) output file.
#include <cstdio>
#include <map>
#include <vector>

#include "core/ext_scc.h"
#include "gen/classic_graphs.h"
#include "graph/disk_graph.h"
#include "graph/graph_io.h"
#include "io/record_stream.h"

namespace {

using namespace extscc;  // example code; the library never does this

graph::DiskGraph LoadOrDefault(io::IoContext* context, int argc,
                               char** argv) {
  if (argc > 1) {
    auto loaded = graph::LoadTextEdgeList(context, argv[1]);
    if (!loaded.ok()) {
      std::fprintf(stderr, "failed to load %s: %s\n", argv[1],
                   loaded.status().ToString().c_str());
      std::exit(1);
    }
    return std::move(loaded).value();
  }
  std::puts("no input given — using the paper's Fig. 1 example graph");
  return graph::MakeDiskGraph(context, gen::Fig1Edges());
}

}  // namespace

int main(int argc, char** argv) {
  // 1. The machine: block size B and memory budget M. A small M is chosen
  //    here so the quickstart actually exercises graph contraction.
  io::IoContextOptions machine;
  machine.block_size = 4096;
  machine.memory_bytes = 16 * 1024;
  io::IoContext context(machine);

  // 2. The graph.
  const graph::DiskGraph g = LoadOrDefault(&context, argc, argv);
  std::printf("input graph: %s\n", g.Describe().c_str());

  // 3. Solve. Optimized() enables all of the paper's §VII reductions.
  const std::string scc_path = context.NewTempPath("scc_out");
  auto result = core::RunExtScc(&context, g, scc_path,
                                core::ExtSccOptions::Optimized());
  if (!result.ok()) {
    std::fprintf(stderr, "Ext-SCC failed: %s\n",
                 result.status().ToString().c_str());
    return 1;
  }
  const auto& stats = result.value();
  std::printf("contraction levels : %u\n", stats.num_levels());
  std::printf("SCCs found         : %llu\n",
              static_cast<unsigned long long>(stats.num_sccs));
  std::printf("total block I/Os   : %llu\n",
              static_cast<unsigned long long>(stats.total_ios));

  // Group members per component and print the non-trivial ones.
  std::map<graph::SccId, std::vector<graph::NodeId>> components;
  io::RecordReader<graph::SccEntry> reader(&context, scc_path);
  graph::SccEntry entry;
  while (reader.Next(&entry)) {
    components[entry.scc].push_back(entry.node);
  }
  std::puts("non-trivial SCCs:");
  for (const auto& [scc, members] : components) {
    if (members.size() < 2) continue;
    std::printf("  scc %u:", scc);
    for (const auto v : members) std::printf(" %u", v);
    std::puts("");
  }
  return 0;
}
