// Sorted node-id files (the V_i of the contraction phase) and the
// sequential set operations over them used by Get-E, Expansion and the
// driver: difference (removed batch V_i - V_{i+1}) and sortedness checks.
#ifndef EXTSCC_GRAPH_NODE_FILE_H_
#define EXTSCC_GRAPH_NODE_FILE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "graph/graph_types.h"
#include "io/io_context.h"

namespace extscc::graph {

std::uint64_t CountNodes(io::IoContext* context, const std::string& path);

// Sorts + dedups arbitrary NodeId records into a canonical node file.
void SortNodeFile(io::IoContext* context, const std::string& input,
                  const std::string& output);

// Streams the sorted difference `a - b` into `output`; both inputs must
// be sorted unique node files. Returns the number of emitted nodes.
std::uint64_t NodeFileDifference(io::IoContext* context, const std::string& a,
                                 const std::string& b,
                                 const std::string& output);

// Derives the node file of an edge file: all endpoints, sorted, unique.
// (Isolated nodes obviously cannot be derived; the graph loaders track
// them explicitly.)
void NodesFromEdges(io::IoContext* context, const std::string& edge_path,
                    const std::string& node_output);

// True iff `path` is strictly increasing (a valid node file).
bool IsNodeFileCanonical(io::IoContext* context, const std::string& path);

}  // namespace extscc::graph

#endif  // EXTSCC_GRAPH_NODE_FILE_H_
