#include "graph/graph_io.h"

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "graph/graph_builder.h"
#include "io/record_stream.h"
#include "io/storage.h"
#include "io/temp_file_manager.h"

namespace extscc::graph {

util::Result<DiskGraph> LoadTextEdgeList(io::IoContext* context,
                                         const std::string& text_path) {
  std::ifstream in(text_path);
  if (!in) {
    return util::Status::NotFound("cannot open edge list: " + text_path);
  }
  GraphBuilder builder(context);
  std::string line;
  std::uint64_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty() || line[0] == '#' || line[0] == '%') continue;
    std::istringstream fields(line);
    std::uint64_t src = 0, dst = 0;
    if (!(fields >> src >> dst)) {
      return util::Status::Corruption("malformed line " +
                                      std::to_string(line_no) + " in " +
                                      text_path + ": '" + line + "'");
    }
    if (src > kInvalidNode - 1 || dst > kInvalidNode - 1) {
      return util::Status::InvalidArgument(
          "node id out of 32-bit range at line " + std::to_string(line_no));
    }
    builder.AddEdge(static_cast<NodeId>(src), static_cast<NodeId>(dst));
  }
  return builder.Finish();
}

util::Status SaveTextEdgeList(io::IoContext* context, const DiskGraph& graph,
                              const std::string& text_path) {
  std::ofstream out(text_path);
  if (!out) {
    return util::Status::IoError("cannot create " + text_path);
  }
  io::RecordReader<Edge> reader(context, graph.edge_path);
  Edge e;
  while (reader.Next(&e)) {
    out << e.src << ' ' << e.dst << '\n';
  }
  if (!out) {
    return util::Status::IoError("short write to " + text_path);
  }
  return util::Status::Ok();
}

util::Result<DiskGraph> OpenBinaryEdgeFile(io::IoContext* context,
                                           const std::string& edge_path) {
  // Scratch paths are virtual names only their device can resolve
  // (mem://, striped://); everything else is a real file the
  // filesystem can stat.
  std::uint64_t size = 0;
  if (io::StorageDevice* device =
          context->temp_files().DeviceForPath(edge_path)) {
    std::unique_ptr<io::StorageFile> file;
    const util::Status opened =
        device->Open(edge_path, io::OpenMode::kRead, &file);
    if (!opened.ok()) {
      return util::Status::NotFound("cannot stat edge file: " + edge_path);
    }
    size = file->size_bytes();
  } else {
    std::error_code ec;
    size = std::filesystem::file_size(edge_path, ec);
    if (ec) {
      return util::Status::NotFound("cannot stat edge file: " + edge_path);
    }
  }
  if (size % sizeof(Edge) != 0) {
    return util::Status::Corruption(edge_path +
                                    " is not a whole number of edge records");
  }
  return AssembleDiskGraph(context, edge_path);
}

}  // namespace extscc::graph
