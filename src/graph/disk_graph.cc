#include "graph/disk_graph.h"

#include "graph/edge_file.h"
#include "graph/node_file.h"
#include "io/record_stream.h"

namespace extscc::graph {

DiskGraph MakeDiskGraph(io::IoContext* context, const std::vector<Edge>& edges,
                        const std::vector<NodeId>& extra_nodes) {
  DiskGraph g;
  g.edge_path = context->NewTempPath("edges");
  io::WriteAllRecords(context, g.edge_path, edges);

  const std::string staging = context->NewTempPath("nodestage");
  {
    io::RecordWriter<NodeId> writer(context, staging);
    for (const Edge& e : edges) {
      writer.Append(e.src);
      writer.Append(e.dst);
    }
    for (NodeId v : extra_nodes) writer.Append(v);
    writer.Finish();
  }
  g.node_path = context->NewTempPath("nodes");
  SortNodeFile(context, staging, g.node_path);
  context->temp_files().Remove(staging);

  g.num_nodes = CountNodes(context, g.node_path);
  g.num_edges = edges.size();
  return g;
}

DiskGraph AssembleDiskGraph(io::IoContext* context,
                            const std::string& edge_path) {
  DiskGraph g;
  g.edge_path = edge_path;
  g.node_path = context->NewTempPath("nodes");
  NodesFromEdges(context, edge_path, g.node_path);
  g.num_nodes = CountNodes(context, g.node_path);
  g.num_edges = CountEdges(context, edge_path);
  return g;
}

}  // namespace extscc::graph
