#include "graph/digraph.h"

#include <algorithm>

#include "util/logging.h"

namespace extscc::graph {

Digraph::Digraph(std::vector<NodeId> nodes, const std::vector<Edge>& edges)
    : ids_(std::move(nodes)) {
  ids_.reserve(ids_.size() + 2 * edges.size());
  for (const Edge& e : edges) {
    ids_.push_back(e.src);
    ids_.push_back(e.dst);
  }
  std::sort(ids_.begin(), ids_.end());
  ids_.erase(std::unique(ids_.begin(), ids_.end()), ids_.end());
  Build(edges);
}

Digraph::Digraph(const std::vector<Edge>& edges) : Digraph({}, edges) {}

void Digraph::Build(const std::vector<Edge>& edges) {
  const std::size_t n = ids_.size();
  fwd_offsets_.assign(n + 1, 0);
  rev_offsets_.assign(n + 1, 0);
  for (const Edge& e : edges) {
    fwd_offsets_[index_of(e.src) + 1] += 1;
    rev_offsets_[index_of(e.dst) + 1] += 1;
  }
  for (std::size_t i = 0; i < n; ++i) {
    fwd_offsets_[i + 1] += fwd_offsets_[i];
    rev_offsets_[i + 1] += rev_offsets_[i];
  }
  fwd_targets_.resize(edges.size());
  rev_targets_.resize(edges.size());
  std::vector<std::uint32_t> fwd_fill(n, 0), rev_fill(n, 0);
  for (const Edge& e : edges) {
    const std::size_t s = index_of(e.src);
    const std::size_t d = index_of(e.dst);
    fwd_targets_[fwd_offsets_[s] + fwd_fill[s]++] =
        static_cast<std::uint32_t>(d);
    rev_targets_[rev_offsets_[d] + rev_fill[d]++] =
        static_cast<std::uint32_t>(s);
  }
}

std::size_t Digraph::index_of(NodeId id) const {
  const auto it = std::lower_bound(ids_.begin(), ids_.end(), id);
  if (it == ids_.end() || *it != id) return ids_.size();
  return static_cast<std::size_t>(it - ids_.begin());
}

std::span<const std::uint32_t> Digraph::out_neighbors(
    std::size_t index) const {
  DCHECK_LT(index, num_nodes());
  return {fwd_targets_.data() + fwd_offsets_[index],
          fwd_targets_.data() + fwd_offsets_[index + 1]};
}

std::span<const std::uint32_t> Digraph::in_neighbors(std::size_t index) const {
  DCHECK_LT(index, num_nodes());
  return {rev_targets_.data() + rev_offsets_[index],
          rev_targets_.data() + rev_offsets_[index + 1]};
}

bool BfsReachable(const Digraph& g, std::size_t from_index,
                  std::size_t to_index) {
  CHECK_LT(from_index, g.num_nodes());
  CHECK_LT(to_index, g.num_nodes());
  if (from_index == to_index) return true;
  std::vector<bool> seen(g.num_nodes(), false);
  std::vector<std::size_t> stack{from_index};
  seen[from_index] = true;
  while (!stack.empty()) {
    const std::size_t v = stack.back();
    stack.pop_back();
    for (const std::uint32_t w : g.out_neighbors(v)) {
      if (w == to_index) return true;
      if (!seen[w]) {
        seen[w] = true;
        stack.push_back(w);
      }
    }
  }
  return false;
}

}  // namespace extscc::graph
