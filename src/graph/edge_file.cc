#include "graph/edge_file.h"

#include <utility>
#include <vector>

#include "extsort/external_sorter.h"
#include "io/record_stream.h"

namespace extscc::graph {

std::uint64_t CountEdges(io::IoContext* context, const std::string& path) {
  return io::NumRecordsInFile<Edge>(context, path);
}

void SortEdgesBySrc(io::IoContext* context, const std::string& input,
                    const std::string& output, bool dedup) {
  extsort::SortFile<Edge, EdgeBySrc>(context, input, output, EdgeBySrc(),
                                     dedup);
}

void SortEdgesByDst(io::IoContext* context, const std::string& input,
                    const std::string& output, bool dedup) {
  extsort::SortFile<Edge, EdgeByDst>(context, input, output, EdgeByDst(),
                                     dedup);
}

void ReverseEdges(io::IoContext* context, const std::string& input,
                  const std::string& output) {
  io::RecordReader<Edge> reader(context, input);
  io::RecordWriter<Edge> writer(context, output);
  // Batched: flip each block's worth in place, then append it whole.
  const std::size_t batch = io::RecordsPerBlock<Edge>(context);
  std::vector<Edge> chunk(batch);
  std::size_t got;
  while ((got = reader.NextBatch(chunk.data(), batch)) > 0) {
    for (std::size_t i = 0; i < got; ++i) {
      std::swap(chunk[i].src, chunk[i].dst);
    }
    writer.AppendBatch(chunk.data(), got);
  }
  writer.Finish();
}

void ConcatEdges(io::IoContext* context, const std::string& base,
                 const std::string& extra, const std::string& output) {
  io::RecordWriter<Edge> writer(context, output);
  io::AppendAllRecords<Edge>(context, base, &writer);
  io::AppendAllRecords<Edge>(context, extra, &writer);
  writer.Finish();
}

}  // namespace extscc::graph
