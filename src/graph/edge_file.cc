#include "graph/edge_file.h"

#include "extsort/external_sorter.h"
#include "io/record_stream.h"

namespace extscc::graph {

std::uint64_t CountEdges(io::IoContext* context, const std::string& path) {
  return io::NumRecordsInFile<Edge>(context, path);
}

void SortEdgesBySrc(io::IoContext* context, const std::string& input,
                    const std::string& output, bool dedup) {
  extsort::SortFile<Edge, EdgeBySrc>(context, input, output, EdgeBySrc(),
                                     dedup);
}

void SortEdgesByDst(io::IoContext* context, const std::string& input,
                    const std::string& output, bool dedup) {
  extsort::SortFile<Edge, EdgeByDst>(context, input, output, EdgeByDst(),
                                     dedup);
}

void ReverseEdges(io::IoContext* context, const std::string& input,
                  const std::string& output) {
  io::RecordReader<Edge> reader(context, input);
  io::RecordWriter<Edge> writer(context, output);
  Edge e;
  while (reader.Next(&e)) {
    writer.Append(Edge{e.dst, e.src});
  }
  writer.Finish();
}

void ConcatEdges(io::IoContext* context, const std::string& base,
                 const std::string& extra, const std::string& output) {
  io::RecordWriter<Edge> writer(context, output);
  Edge e;
  {
    io::RecordReader<Edge> reader(context, base);
    while (reader.Next(&e)) writer.Append(e);
  }
  {
    io::RecordReader<Edge> reader(context, extra);
    while (reader.Next(&e)) writer.Append(e);
  }
  writer.Finish();
}

}  // namespace extscc::graph
