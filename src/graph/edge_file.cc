#include "graph/edge_file.h"

#include <utility>
#include <vector>

#include "extsort/external_sorter.h"
#include "io/record_stream.h"

namespace extscc::graph {

std::uint64_t CountEdges(io::IoContext* context, const std::string& path) {
  return io::NumRecordsInFile<Edge>(context, path);
}

void SortEdgesBySrc(io::IoContext* context, const std::string& input,
                    const std::string& output, bool dedup) {
  extsort::SortFile<Edge, EdgeBySrc>(context, input, output, EdgeBySrc(),
                                     dedup);
}

void SortEdgesByDst(io::IoContext* context, const std::string& input,
                    const std::string& output, bool dedup) {
  extsort::SortFile<Edge, EdgeByDst>(context, input, output, EdgeByDst(),
                                     dedup);
}

namespace {

// One ordering with the self-loop filter applied during run formation:
// a batched scan feeds a SortingWriter, so the filtered edge set never
// exists as a file of its own.
template <typename Less>
void SortEdgesDropSelfLoops(io::IoContext* context, const std::string& input,
                            const std::string& output, Less less,
                            bool dedup) {
  extsort::SortingWriter<Edge, Less> sorter(context, less, dedup);
  io::ForEachRecord<Edge>(context, input, [&](const Edge& e) {
    if (e.src != e.dst) sorter.Add(e);
  });
  sorter.FinishInto(output);
}

}  // namespace

void SortEdgesBothOrders(io::IoContext* context, const std::string& input,
                         const std::string& by_dst_output,
                         const std::string& by_src_output, bool dedup,
                         bool drop_self_loops) {
  if (!drop_self_loops) {
    SortEdgesByDst(context, input, by_dst_output, dedup);
    SortEdgesBySrc(context, input, by_src_output, dedup);
    return;
  }
  SortEdgesDropSelfLoops(context, input, by_dst_output, EdgeByDst(), dedup);
  SortEdgesDropSelfLoops(context, input, by_src_output, EdgeBySrc(), dedup);
}

void ReverseEdges(io::IoContext* context, const std::string& input,
                  const std::string& output) {
  io::RecordReader<Edge> reader(context, input);
  io::RecordWriter<Edge> writer(context, output);
  // Batched: flip each block's worth in place, then append it whole.
  const std::size_t batch = io::RecordsPerBlock<Edge>(context);
  std::vector<Edge> chunk(batch);
  std::size_t got;
  while ((got = reader.NextBatch(chunk.data(), batch)) > 0) {
    for (std::size_t i = 0; i < got; ++i) {
      std::swap(chunk[i].src, chunk[i].dst);
    }
    writer.AppendBatch(chunk.data(), got);
  }
  writer.Finish();
}

void ConcatEdges(io::IoContext* context, const std::string& base,
                 const std::string& extra, const std::string& output) {
  io::RecordWriter<Edge> writer(context, output);
  io::AppendAllRecords<Edge>(context, base, &writer);
  io::AppendAllRecords<Edge>(context, extra, &writer);
  writer.Finish();
}

}  // namespace extscc::graph
