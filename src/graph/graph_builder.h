// Streaming graph builder: generators append edges/nodes without ever
// materializing the graph in memory; Finish() canonicalizes the node file
// externally and returns the DiskGraph.
#ifndef EXTSCC_GRAPH_GRAPH_BUILDER_H_
#define EXTSCC_GRAPH_GRAPH_BUILDER_H_

#include <memory>
#include <string>

#include "extsort/external_sorter.h"
#include "graph/disk_graph.h"
#include "graph/graph_types.h"
#include "io/io_context.h"
#include "io/record_stream.h"

namespace extscc::graph {

class GraphBuilder {
 public:
  explicit GraphBuilder(io::IoContext* context);

  // Appends a directed edge; endpoints are registered as nodes.
  void AddEdge(NodeId src, NodeId dst);
  void AddEdge(const Edge& edge) { AddEdge(edge.src, edge.dst); }

  // Registers a node that may otherwise be isolated.
  void AddNode(NodeId node);

  std::uint64_t edges_added() const { return edges_added_; }

  // Sorts/dedups the node side and returns the finished graph.
  // The builder must not be reused afterwards.
  DiskGraph Finish();

 private:
  io::IoContext* context_;
  std::string edge_path_;
  std::unique_ptr<io::RecordWriter<Edge>> edge_writer_;
  // Endpoints accumulate in a sorting writer (sorted runs spill straight
  // from its buffer); Finish() drains it into the canonical node file.
  std::unique_ptr<extsort::SortingWriter<NodeId, NodeIdLess>> node_writer_;
  std::uint64_t edges_added_ = 0;
  bool finished_ = false;
};

}  // namespace extscc::graph

#endif  // EXTSCC_GRAPH_GRAPH_BUILDER_H_
