// In-memory directed graph in CSR form (forward and reverse adjacency),
// over arbitrary (non-contiguous) node ids. Used by the in-memory SCC
// algorithms, the EM-SCC partition step, and as the test oracle. Not used
// anywhere inside Ext-SCC's external phases.
#ifndef EXTSCC_GRAPH_DIGRAPH_H_
#define EXTSCC_GRAPH_DIGRAPH_H_

#include <cstdint>
#include <span>
#include <vector>

#include "graph/graph_types.h"

namespace extscc::graph {

class Digraph {
 public:
  // `nodes` may contain ids not mentioned by any edge (isolated nodes)
  // and is deduplicated; edge endpoints are added implicitly.
  Digraph(std::vector<NodeId> nodes, const std::vector<Edge>& edges);

  // Convenience: nodes derived from edge endpoints only.
  explicit Digraph(const std::vector<Edge>& edges);

  std::size_t num_nodes() const { return ids_.size(); }
  std::size_t num_edges() const { return fwd_targets_.size(); }

  // Dense index <-> external NodeId.
  NodeId id_of(std::size_t index) const { return ids_[index]; }
  // Returns num_nodes() when `id` is not a node of this graph.
  std::size_t index_of(NodeId id) const;

  std::span<const std::uint32_t> out_neighbors(std::size_t index) const;
  std::span<const std::uint32_t> in_neighbors(std::size_t index) const;

  std::uint32_t out_degree(std::size_t index) const {
    return fwd_offsets_[index + 1] - fwd_offsets_[index];
  }
  std::uint32_t in_degree(std::size_t index) const {
    return rev_offsets_[index + 1] - rev_offsets_[index];
  }

  const std::vector<NodeId>& ids() const { return ids_; }

 private:
  void Build(const std::vector<Edge>& edges);

  std::vector<NodeId> ids_;  // sorted unique external ids
  std::vector<std::uint32_t> fwd_offsets_, fwd_targets_;
  std::vector<std::uint32_t> rev_offsets_, rev_targets_;
};

// True iff `from_index` reaches `to_index` along forward edges, by
// direct search — O(V + E), no index structures. The shared reference
// oracle for every reachability checker in examples and tests (the
// thing the GRAIL-style index and the serve path are verified against).
// Both arguments are dense indices (see index_of); a node reaches
// itself by the empty path.
bool BfsReachable(const Digraph& g, std::size_t from_index,
                  std::size_t to_index);

}  // namespace extscc::graph

#endif  // EXTSCC_GRAPH_DIGRAPH_H_
