// SCC-assignment files: (node, scc) records sorted by node id — the
// SCC_i streams that flow through the expansion phase (Algorithm 5).
#ifndef EXTSCC_GRAPH_SCC_FILE_H_
#define EXTSCC_GRAPH_SCC_FILE_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "graph/graph_types.h"
#include "io/io_context.h"

namespace extscc::graph {

std::uint64_t CountSccEntries(io::IoContext* context, const std::string& path);

// Sorts arbitrary SccEntry records by node id into `output`.
void SortSccFileByNode(io::IoContext* context, const std::string& input,
                       const std::string& output);

// Merges two node-sorted SCC files with disjoint node sets into `output`
// (Algorithm 5 lines 5-6: SCC_i = SCC_{i+1} ∪ SCC_del).
void MergeSccFiles(io::IoContext* context, const std::string& a,
                   const std::string& b, const std::string& output);

// Loads an SCC file into a map for verification / small results.
std::unordered_map<NodeId, SccId> ReadSccFile(io::IoContext* context,
                                              const std::string& path);

}  // namespace extscc::graph

#endif  // EXTSCC_GRAPH_SCC_FILE_H_
