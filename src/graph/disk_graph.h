// A DiskGraph is one level G_i of the contraction chain: a canonical
// (sorted unique) node file plus an edge file, with cached counts.
// Levels own scratch paths handed out by the IoContext's temp manager;
// the original input graph may reference user files.
#ifndef EXTSCC_GRAPH_DISK_GRAPH_H_
#define EXTSCC_GRAPH_DISK_GRAPH_H_

#include <cstdint>
#include <string>
#include <vector>

#include "graph/graph_types.h"
#include "io/io_context.h"

namespace extscc::graph {

struct DiskGraph {
  std::string node_path;
  std::string edge_path;
  std::uint64_t num_nodes = 0;
  std::uint64_t num_edges = 0;

  std::string Describe() const { return DescribeGraph(num_nodes, num_edges); }
};

// Materializes a DiskGraph from in-memory vectors (tests, generators for
// small graphs). Node file = sorted unique union of `extra_nodes` and all
// edge endpoints.
DiskGraph MakeDiskGraph(io::IoContext* context, const std::vector<Edge>& edges,
                        const std::vector<NodeId>& extra_nodes = {});

// Builds the canonical node file for an existing edge file (plus optional
// explicit isolated nodes file) and assembles a DiskGraph.
DiskGraph AssembleDiskGraph(io::IoContext* context,
                            const std::string& edge_path);

}  // namespace extscc::graph

#endif  // EXTSCC_GRAPH_DISK_GRAPH_H_
