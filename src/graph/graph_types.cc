#include "graph/graph_types.h"

#include <sstream>

namespace extscc::graph {

std::string DescribeGraph(std::uint64_t num_nodes, std::uint64_t num_edges) {
  std::ostringstream out;
  out << "G(|V|=" << num_nodes << ", |E|=" << num_edges << ")";
  return out.str();
}

}  // namespace extscc::graph
