// User-facing graph loading/saving: whitespace-separated text edge lists
// ("u v" per line, '#' comments) and the library's binary edge format.
// These are the only Status-returning entry points in the graph layer —
// user files may be missing or malformed.
#ifndef EXTSCC_GRAPH_GRAPH_IO_H_
#define EXTSCC_GRAPH_GRAPH_IO_H_

#include <string>

#include "graph/disk_graph.h"
#include "io/io_context.h"
#include "util/status.h"

namespace extscc::graph {

// Parses a text edge list at `text_path` into a DiskGraph backed by
// scratch files of `context`.
util::Result<DiskGraph> LoadTextEdgeList(io::IoContext* context,
                                         const std::string& text_path);

// Writes `graph`'s edges as a text edge list.
util::Status SaveTextEdgeList(io::IoContext* context, const DiskGraph& graph,
                              const std::string& text_path);

// Opens a binary Edge-record file that already exists outside the scratch
// directory and assembles its DiskGraph.
util::Result<DiskGraph> OpenBinaryEdgeFile(io::IoContext* context,
                                           const std::string& edge_path);

}  // namespace extscc::graph

#endif  // EXTSCC_GRAPH_GRAPH_IO_H_
