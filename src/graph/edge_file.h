// Stream operations over edge files: the primitive vocabulary the paper's
// Algorithms 3-5 are phrased in (sorted edge lists E_in / E_out, edge
// reversal, counting). Everything here is sequential scans + external
// sorts only.
#ifndef EXTSCC_GRAPH_EDGE_FILE_H_
#define EXTSCC_GRAPH_EDGE_FILE_H_

#include <cstdint>
#include <string>

#include "graph/graph_types.h"
#include "io/io_context.h"

namespace extscc::graph {

// Number of edges in `path`.
std::uint64_t CountEdges(io::IoContext* context, const std::string& path);

// Writes `input` sorted by (src, dst) to `output` (the paper's E_out).
// When `dedup`, parallel edges collapse to one (§VII edge reduction).
void SortEdgesBySrc(io::IoContext* context, const std::string& input,
                    const std::string& output, bool dedup = false);

// Writes `input` sorted by (dst, src) to `output` (the paper's E_in).
void SortEdgesByDst(io::IoContext* context, const std::string& input,
                    const std::string& output, bool dedup = false);

// Produces both level orderings of `input` in one call: `by_dst_output`
// gets (dst, src) order (E_in) and `by_src_output` gets (src, dst)
// order (E_out). When `drop_self_loops`, self-loops are filtered inline
// during each sort's run formation — the driver's first level uses this
// instead of writing a filtered copy of E only to sort (and delete) it.
void SortEdgesBothOrders(io::IoContext* context, const std::string& input,
                         const std::string& by_dst_output,
                         const std::string& by_src_output,
                         bool dedup = false, bool drop_self_loops = false);

// Streams (u, v) -> (v, u) into `output` (the reversed graph of
// Algorithm 5 line 1 and of Kosaraju's second pass).
void ReverseEdges(io::IoContext* context, const std::string& input,
                  const std::string& output);

// Appends all edges of `extra` to a copy of `base` in `output`
// (E_{i+1} = E_pre ∪ E_add, Algorithm 4 line 12).
void ConcatEdges(io::IoContext* context, const std::string& base,
                 const std::string& extra, const std::string& output);

}  // namespace extscc::graph

#endif  // EXTSCC_GRAPH_EDGE_FILE_H_
