#include "graph/scc_file.h"

#include "extsort/external_sorter.h"
#include "io/record_stream.h"
#include "util/logging.h"

namespace extscc::graph {

std::uint64_t CountSccEntries(io::IoContext* context,
                              const std::string& path) {
  return io::NumRecordsInFile<SccEntry>(context, path);
}

void SortSccFileByNode(io::IoContext* context, const std::string& input,
                       const std::string& output) {
  extsort::SortFile<SccEntry, SccEntryByNode>(context, input, output,
                                              SccEntryByNode());
}

void MergeSccFiles(io::IoContext* context, const std::string& a,
                   const std::string& b, const std::string& output) {
  io::PeekableReader<SccEntry> in_a(context, a);
  io::PeekableReader<SccEntry> in_b(context, b);
  io::RecordWriter<SccEntry> writer(context, output);
  while (in_a.has_value() || in_b.has_value()) {
    if (!in_b.has_value() ||
        (in_a.has_value() && in_a.Peek().node < in_b.Peek().node)) {
      writer.Append(in_a.Pop());
    } else {
      CHECK(!in_a.has_value() || in_a.Peek().node != in_b.Peek().node)
          << "MergeSccFiles inputs must have disjoint node sets";
      writer.Append(in_b.Pop());
    }
  }
  writer.Finish();
}

std::unordered_map<NodeId, SccId> ReadSccFile(io::IoContext* context,
                                              const std::string& path) {
  std::unordered_map<NodeId, SccId> out;
  io::RecordReader<SccEntry> reader(context, path);
  SccEntry entry;
  while (reader.Next(&entry)) {
    out[entry.node] = entry.scc;
  }
  return out;
}

}  // namespace extscc::graph
