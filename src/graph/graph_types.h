// Core on-disk record types for directed graphs.
//
// A graph level G_i is a pair of scratch files: a node file (sorted unique
// NodeId records — nodes need NOT be contiguous, contracted levels are
// subsets) and an edge file (Edge records in arbitrary order unless a
// stage states otherwise). Node ids double as the paper's id(v) total
// order tie-breaker.
#ifndef EXTSCC_GRAPH_GRAPH_TYPES_H_
#define EXTSCC_GRAPH_GRAPH_TYPES_H_

#include <compare>
#include <cstdint>
#include <functional>
#include <string>

#include "extsort/record_traits.h"

namespace extscc::graph {

using NodeId = std::uint32_t;
using SccId = std::uint32_t;

inline constexpr NodeId kInvalidNode = 0xffffffffu;
inline constexpr SccId kInvalidScc = 0xffffffffu;

// Every order below is expressed through its normalized sort key
// (extsort/record_traits.h): `KeyOf` packs the compared fields,
// most-significant first, into one unsigned integer whose natural `<`
// IS the order. The comparators compare keys — a single integer
// compare instead of a branchy field cascade — and run formation
// radix-sorts the key bytes (extsort/radix_sort.h).

// Canonical order of node files (plain id order).
struct NodeIdLess {
  static NodeId KeyOf(NodeId id) { return id; }
  bool operator()(NodeId a, NodeId b) const { return a < b; }
};

// A directed edge (src -> dst).
struct Edge {
  NodeId src = 0;
  NodeId dst = 0;

  friend bool operator==(const Edge&, const Edge&) = default;
};

// Orders by (src, dst) — the paper's E_out layout (grouped by tail).
struct EdgeBySrc {
  static std::uint64_t KeyOf(const Edge& e) {
    return extsort::PackKey64(e.src, e.dst);
  }
  bool operator()(const Edge& a, const Edge& b) const {
    return KeyOf(a) < KeyOf(b);
  }
};

// Orders by (dst, src) — the paper's E_in layout (grouped by head).
struct EdgeByDst {
  static std::uint64_t KeyOf(const Edge& e) {
    return extsort::PackKey64(e.dst, e.src);
  }
  bool operator()(const Edge& a, const Edge& b) const {
    return KeyOf(a) < KeyOf(b);
  }
};

// Node id with full degree information (the paper's V_d entries).
// Degrees are with respect to the level's edge multiset, counting
// parallel edges and self-loops as stored.
struct DegreeEntry {
  NodeId node = 0;
  std::uint32_t deg_in = 0;
  std::uint32_t deg_out = 0;

  std::uint32_t deg() const { return deg_in + deg_out; }
  // deg_in * deg_out is the number of new edges removing this node would
  // create (Section VII's refined operator uses it).
  std::uint64_t fanout_product() const {
    return static_cast<std::uint64_t>(deg_in) *
           static_cast<std::uint64_t>(deg_out);
  }
};

// Orders by node only: the key deliberately omits the degree payload,
// matching the comparator (key-equal entries keep arrival order under
// the stable sorts, exactly as with std::stable_sort).
struct DegreeEntryByNode {
  static NodeId KeyOf(const DegreeEntry& e) { return e.node; }
  bool operator()(const DegreeEntry& a, const DegreeEntry& b) const {
    return KeyOf(a) < KeyOf(b);
  }
};

// SCC assignment of one node (the SCC_i files of Algorithm 5).
struct SccEntry {
  NodeId node = 0;
  SccId scc = 0;

  friend bool operator==(const SccEntry&, const SccEntry&) = default;
};

struct SccEntryByNode {
  static std::uint64_t KeyOf(const SccEntry& e) {
    return extsort::PackKey64(e.node, e.scc);
  }
  bool operator()(const SccEntry& a, const SccEntry& b) const {
    return KeyOf(a) < KeyOf(b);
  }
};

// Orders by (scc, node) — groups each component's members (per-SCC
// statistics, bow-tie classification).
struct SccEntryByScc {
  static std::uint64_t KeyOf(const SccEntry& e) {
    return extsort::PackKey64(e.scc, e.node);
  }
  bool operator()(const SccEntry& a, const SccEntry& b) const {
    return KeyOf(a) < KeyOf(b);
  }
};

// Returns the paper-style "G(V, E)" one-liner for logs.
std::string DescribeGraph(std::uint64_t num_nodes, std::uint64_t num_edges);

}  // namespace extscc::graph

#endif  // EXTSCC_GRAPH_GRAPH_TYPES_H_
