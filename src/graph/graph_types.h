// Core on-disk record types for directed graphs.
//
// A graph level G_i is a pair of scratch files: a node file (sorted unique
// NodeId records — nodes need NOT be contiguous, contracted levels are
// subsets) and an edge file (Edge records in arbitrary order unless a
// stage states otherwise). Node ids double as the paper's id(v) total
// order tie-breaker.
#ifndef EXTSCC_GRAPH_GRAPH_TYPES_H_
#define EXTSCC_GRAPH_GRAPH_TYPES_H_

#include <compare>
#include <cstdint>
#include <functional>
#include <string>

namespace extscc::graph {

using NodeId = std::uint32_t;
using SccId = std::uint32_t;

inline constexpr NodeId kInvalidNode = 0xffffffffu;
inline constexpr SccId kInvalidScc = 0xffffffffu;

// Canonical order of node files (plain id order).
struct NodeIdLess {
  bool operator()(NodeId a, NodeId b) const { return a < b; }
};

// A directed edge (src -> dst).
struct Edge {
  NodeId src = 0;
  NodeId dst = 0;

  friend bool operator==(const Edge&, const Edge&) = default;
};

// Orders by (src, dst) — the paper's E_out layout (grouped by tail).
struct EdgeBySrc {
  bool operator()(const Edge& a, const Edge& b) const {
    if (a.src != b.src) return a.src < b.src;
    return a.dst < b.dst;
  }
};

// Orders by (dst, src) — the paper's E_in layout (grouped by head).
struct EdgeByDst {
  bool operator()(const Edge& a, const Edge& b) const {
    if (a.dst != b.dst) return a.dst < b.dst;
    return a.src < b.src;
  }
};

// Node id with full degree information (the paper's V_d entries).
// Degrees are with respect to the level's edge multiset, counting
// parallel edges and self-loops as stored.
struct DegreeEntry {
  NodeId node = 0;
  std::uint32_t deg_in = 0;
  std::uint32_t deg_out = 0;

  std::uint32_t deg() const { return deg_in + deg_out; }
  // deg_in * deg_out is the number of new edges removing this node would
  // create (Section VII's refined operator uses it).
  std::uint64_t fanout_product() const {
    return static_cast<std::uint64_t>(deg_in) *
           static_cast<std::uint64_t>(deg_out);
  }
};

struct DegreeEntryByNode {
  bool operator()(const DegreeEntry& a, const DegreeEntry& b) const {
    return a.node < b.node;
  }
};

// SCC assignment of one node (the SCC_i files of Algorithm 5).
struct SccEntry {
  NodeId node = 0;
  SccId scc = 0;

  friend bool operator==(const SccEntry&, const SccEntry&) = default;
};

struct SccEntryByNode {
  bool operator()(const SccEntry& a, const SccEntry& b) const {
    if (a.node != b.node) return a.node < b.node;
    return a.scc < b.scc;
  }
};

// Returns the paper-style "G(V, E)" one-liner for logs.
std::string DescribeGraph(std::uint64_t num_nodes, std::uint64_t num_edges);

}  // namespace extscc::graph

#endif  // EXTSCC_GRAPH_GRAPH_TYPES_H_
