#include "graph/graph_builder.h"

#include "graph/node_file.h"
#include "util/logging.h"

namespace extscc::graph {

GraphBuilder::GraphBuilder(io::IoContext* context)
    : context_(context),
      edge_path_(context->NewTempPath("g_edges")),
      edge_writer_(
          std::make_unique<io::RecordWriter<Edge>>(context, edge_path_)),
      node_writer_(std::make_unique<extsort::SortingWriter<NodeId, NodeIdLess>>(
          context, NodeIdLess{}, /*dedup=*/true)) {}

void GraphBuilder::AddEdge(NodeId src, NodeId dst) {
  DCHECK(!finished_);
  edge_writer_->Append(Edge{src, dst});
  node_writer_->Add(src);
  node_writer_->Add(dst);
  ++edges_added_;
}

void GraphBuilder::AddNode(NodeId node) {
  DCHECK(!finished_);
  node_writer_->Add(node);
}

DiskGraph GraphBuilder::Finish() {
  CHECK(!finished_) << "GraphBuilder reused after Finish";
  finished_ = true;
  edge_writer_->Finish();

  DiskGraph g;
  g.edge_path = edge_path_;
  g.node_path = context_->NewTempPath("g_nodes");
  // The endpoint stream sorts/dedups straight out of the add buffer —
  // no staging node file to write and re-read.
  node_writer_->FinishInto(g.node_path);
  g.num_nodes = CountNodes(context_, g.node_path);
  g.num_edges = edges_added_;
  return g;
}

}  // namespace extscc::graph
