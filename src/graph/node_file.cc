#include "graph/node_file.h"

#include "extsort/external_sorter.h"
#include "io/record_stream.h"

namespace extscc::graph {

std::uint64_t CountNodes(io::IoContext* context, const std::string& path) {
  return io::NumRecordsInFile<NodeId>(context, path);
}

void SortNodeFile(io::IoContext* context, const std::string& input,
                  const std::string& output) {
  extsort::SortFile<NodeId, NodeIdLess>(context, input, output, NodeIdLess(),
                                        /*dedup=*/true);
}

std::uint64_t NodeFileDifference(io::IoContext* context, const std::string& a,
                                 const std::string& b,
                                 const std::string& output) {
  io::PeekableReader<NodeId> in_a(context, a);
  io::PeekableReader<NodeId> in_b(context, b);
  io::RecordWriter<NodeId> writer(context, output);
  while (in_a.has_value()) {
    if (!in_b.has_value() || in_a.Peek() < in_b.Peek()) {
      writer.Append(in_a.Pop());
    } else if (in_a.Peek() == in_b.Peek()) {
      in_a.Pop();
      in_b.Pop();
    } else {
      in_b.Pop();
    }
  }
  const std::uint64_t count = writer.count();
  writer.Finish();
  return count;
}

void NodesFromEdges(io::IoContext* context, const std::string& edge_path,
                    const std::string& node_output) {
  // Endpoints stream straight into a sorting writer — the 2|E|-record
  // staging file of the stage-per-file form never exists.
  extsort::SortingWriter<NodeId, NodeIdLess> sorter(context, NodeIdLess{},
                                                    /*dedup=*/true);
  io::ForEachRecord<Edge>(context, edge_path, [&](const Edge& e) {
    sorter.Add(e.src);
    sorter.Add(e.dst);
  });
  sorter.FinishInto(node_output);
}

bool IsNodeFileCanonical(io::IoContext* context, const std::string& path) {
  io::RecordReader<NodeId> reader(context, path);
  NodeId prev = 0;
  NodeId cur;
  bool first = true;
  while (reader.Next(&cur)) {
    if (!first && cur <= prev) return false;
    prev = cur;
    first = false;
  }
  return true;
}

}  // namespace extscc::graph
