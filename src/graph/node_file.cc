#include "graph/node_file.h"

#include "extsort/external_sorter.h"
#include "io/record_stream.h"

namespace extscc::graph {

namespace {
struct NodeLess {
  bool operator()(NodeId a, NodeId b) const { return a < b; }
};
}  // namespace

std::uint64_t CountNodes(io::IoContext* context, const std::string& path) {
  return io::NumRecordsInFile<NodeId>(context, path);
}

void SortNodeFile(io::IoContext* context, const std::string& input,
                  const std::string& output) {
  extsort::SortFile<NodeId, NodeLess>(context, input, output, NodeLess(),
                                      /*dedup=*/true);
}

std::uint64_t NodeFileDifference(io::IoContext* context, const std::string& a,
                                 const std::string& b,
                                 const std::string& output) {
  io::PeekableReader<NodeId> in_a(context, a);
  io::PeekableReader<NodeId> in_b(context, b);
  io::RecordWriter<NodeId> writer(context, output);
  while (in_a.has_value()) {
    if (!in_b.has_value() || in_a.Peek() < in_b.Peek()) {
      writer.Append(in_a.Pop());
    } else if (in_a.Peek() == in_b.Peek()) {
      in_a.Pop();
      in_b.Pop();
    } else {
      in_b.Pop();
    }
  }
  const std::uint64_t count = writer.count();
  writer.Finish();
  return count;
}

void NodesFromEdges(io::IoContext* context, const std::string& edge_path,
                    const std::string& node_output) {
  const std::string staging = context->NewTempPath("endpoints");
  {
    io::RecordReader<Edge> reader(context, edge_path);
    io::RecordWriter<NodeId> writer(context, staging);
    Edge e;
    while (reader.Next(&e)) {
      writer.Append(e.src);
      writer.Append(e.dst);
    }
    writer.Finish();
  }
  SortNodeFile(context, staging, node_output);
  context->temp_files().Remove(staging);
}

bool IsNodeFileCanonical(io::IoContext* context, const std::string& path) {
  io::RecordReader<NodeId> reader(context, path);
  NodeId prev = 0;
  NodeId cur;
  bool first = true;
  while (reader.Next(&cur)) {
    if (!first && cur <= prev) return false;
    prev = cur;
    first = false;
  }
  return true;
}

}  // namespace extscc::graph
