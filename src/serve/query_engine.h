// Batched queries over an open serve artifact: same-SCC membership,
// reachability, and per-component statistics.
//
// The engine answers a batch with the engine's own sort-then-sweep
// idiom instead of one seek per query: every queried endpoint becomes a
// NodeProbe keyed by node id, the probes are sorted (SortingWriter — in
// budget this is a pure in-memory sort), and the whole batch resolves
// its node→SCC lookups in ONE merge sweep of the artifact's node-sorted
// map section. Per-batch block I/O is therefore bounded by the section
// size — sublinear in batch count, countable in IoStats — and
// reachability then resolves on the small resident interval labels with
// zero further I/O.
//
// RunBatch is const and touches only per-call state; one QueryEngine
// over one immutable artifact serves N reader threads concurrently
// (each batch opens its own SccMapScanner / file handle).
//
// A node the artifact never labelled yields known=false — never a
// made-up answer; a corrupt section surfaces as kCorruption for the
// whole batch.
#ifndef EXTSCC_SERVE_QUERY_ENGINE_H_
#define EXTSCC_SERVE_QUERY_ENGINE_H_

#include <cstddef>
#include <cstdint>

#include "app/interval_labels.h"
#include "extsort/record_traits.h"
#include "graph/graph_types.h"
#include "io/io_context.h"
#include "serve/artifact.h"
#include "util/status.h"

namespace extscc::serve {

enum class QueryType : std::uint8_t {
  kSameScc = 0,    // are u and v in the same SCC?
  kReachable = 1,  // does u reach v?
  kSccStat = 2,    // SCC label and size of u
};

struct Query {
  QueryType type = QueryType::kSameScc;
  graph::NodeId u = 0;
  graph::NodeId v = 0;  // unused for kSccStat
};

struct QueryAnswer {
  // Every queried endpoint was labelled at build time. When false the
  // verdict fields are meaningless (and result is false) — unknown
  // nodes are reported, not guessed.
  bool known = false;
  bool result = false;  // same-SCC / reachability verdict
  graph::SccId scc_u = graph::kInvalidScc;
  graph::SccId scc_v = graph::kInvalidScc;
  std::uint64_t scc_size = 0;  // kSccStat: |SCC(u)|
};

struct QueryBatchStats {
  std::uint64_t queries = 0;
  std::uint64_t probes = 0;         // endpoint lookups submitted
  std::uint64_t unknown_nodes = 0;  // queries with an unlabelled endpoint
  std::uint64_t swept_blocks = 0;   // node→SCC blocks read (<= section)
  std::uint64_t probe_spill_runs = 0;  // probe sorts that left memory
  app::IntervalLabelCounters labels;   // reachability breakdown

  QueryBatchStats& operator+=(const QueryBatchStats& other);
};

// One endpoint occurrence of a batch: sorted by node for the sweep,
// slot routes the resolved label back to its query.
struct NodeProbe {
  graph::NodeId node = 0;
  std::uint32_t slot = 0;  // query_index * 2 + (0 for u, 1 for v)
};

struct NodeProbeByNode {
  static std::uint64_t KeyOf(const NodeProbe& p) {
    return extsort::PackKey64(p.node, p.slot);
  }
  bool operator()(const NodeProbe& a, const NodeProbe& b) const {
    return KeyOf(a) < KeyOf(b);
  }
};

class QueryEngine {
 public:
  // The artifact must outlive the engine and is never mutated.
  explicit QueryEngine(const ArtifactReader* artifact)
      : artifact_(artifact) {}

  // Answers queries[0..n) into answers[0..n) (caller-allocated).
  // Thread-safe; each call sorts and sweeps independently.
  util::Status RunBatch(io::IoContext* context, const Query* queries,
                        std::size_t n, QueryAnswer* answers,
                        QueryBatchStats* stats = nullptr) const;

  const ArtifactReader& artifact() const { return *artifact_; }

 private:
  const ArtifactReader* artifact_;
};

}  // namespace extscc::serve

#endif  // EXTSCC_SERVE_QUERY_ENGINE_H_
