#include "serve/artifact.h"

#include <algorithm>
#include <cstring>
#include <utility>

#include "io/checksum.h"
#include "io/crash_point.h"
#include "util/logging.h"

namespace extscc::serve {

namespace {

using graph::Edge;
using graph::NodeId;

// CRC of a header struct whose last field is its u32 crc.
template <typename H>
std::uint32_t HeaderCrc(const H& header) {
  return io::Crc32(&header, sizeof(H) - sizeof(std::uint32_t));
}

std::uint64_t CeilDiv(std::uint64_t a, std::uint64_t b) {
  return (a + b - 1) / b;
}

util::Status ShortRead(const io::BlockFile& file, const char* what) {
  if (!file.status().ok()) return file.status();
  return util::Status::Corruption(std::string("artifact ") + what +
                                  ": short read");
}

}  // namespace

// ---------------------------------------------------------------------------
// ArtifactWriter

ArtifactWriter::ArtifactWriter(io::IoContext* context, const std::string& path,
                               std::uint64_t data_version)
    : context_(context),
      file_(std::make_unique<io::BlockFile>(context, path,
                                            io::OpenMode::kTruncateWrite)),
      buf_(context->block_size(), 0) {
  ArtifactPreamble preamble{};
  std::memcpy(preamble.magic, kArtifactMagic, sizeof(preamble.magic));
  preamble.format_version = kArtifactFormatVersion;
  preamble.block_size = static_cast<std::uint32_t>(context->block_size());
  preamble.data_version = data_version;
  preamble.crc = HeaderCrc(preamble);
  std::memcpy(buf_.data(), &preamble, sizeof(preamble));
  fill_ = sizeof(preamble);
  FlushBlock(/*track_crc=*/false);
}

void ArtifactWriter::FlushBlock(bool track_crc) {
  const std::size_t bs = buf_.size();
  std::memset(buf_.data() + fill_, 0, bs - fill_);
  if (track_crc) block_crcs_.push_back(io::Crc32(buf_.data(), bs));
  file_->WriteBlock(next_block_++, buf_.data(), bs);
  fill_ = 0;
}

void ArtifactWriter::BeginSectionRaw(SectionId id, std::size_t record_size) {
  CHECK(!finished_);
  CHECK(!open_section_.has_value()) << "one section at a time";
  CHECK_EQ(fill_, 0u);  // sections start on fresh block boundaries
  CHECK_GT(record_size, 0u);
  for (const ArtifactSectionEntry& entry : sections_) {
    CHECK_NE(entry.id, static_cast<std::uint32_t>(id))
        << "section written twice";
  }
  ArtifactSectionEntry entry{};
  entry.id = static_cast<std::uint32_t>(id);
  entry.record_size = static_cast<std::uint32_t>(record_size);
  entry.first_block = next_block_;
  open_section_ = entry;
}

void ArtifactWriter::AppendRaw(const void* data, std::size_t n) {
  CHECK(open_section_.has_value()) << "append outside a section";
  const auto* src = static_cast<const unsigned char*>(data);
  open_section_->payload_bytes += n;
  const std::size_t bs = buf_.size();
  while (n > 0) {
    const std::size_t take = std::min(n, bs - fill_);
    std::memcpy(buf_.data() + fill_, src, take);
    fill_ += take;
    src += take;
    n -= take;
    if (fill_ == bs) FlushBlock(/*track_crc=*/true);
  }
}

void ArtifactWriter::EndSection() {
  CHECK(open_section_.has_value());
  if (fill_ > 0) FlushBlock(/*track_crc=*/true);
  ArtifactSectionEntry entry = *open_section_;
  CHECK_EQ(entry.payload_bytes % entry.record_size, 0u)
      << "section payload is not whole records";
  entry.record_count = entry.payload_bytes / entry.record_size;
  sections_.push_back(entry);
  open_section_.reset();
}

util::Status ArtifactWriter::Finish() {
  CHECK(!finished_) << "Finish called twice";
  CHECK(!open_section_.has_value()) << "unfinished section";
  finished_ = true;

  const std::uint64_t meta_first_block = next_block_;
  const std::uint64_t payload_blocks = meta_first_block - 1;
  CHECK_EQ(block_crcs_.size(), payload_blocks);

  // Meta region: the directory, then the payload-block CRC table.
  std::vector<unsigned char> meta(sections_.size() *
                                      sizeof(ArtifactSectionEntry) +
                                  block_crcs_.size() * sizeof(std::uint32_t));
  unsigned char* cursor = meta.data();
  std::memcpy(cursor, sections_.data(),
              sections_.size() * sizeof(ArtifactSectionEntry));
  cursor += sections_.size() * sizeof(ArtifactSectionEntry);
  std::memcpy(cursor, block_crcs_.data(),
              block_crcs_.size() * sizeof(std::uint32_t));
  const std::uint32_t meta_crc = io::Crc32(meta.data(), meta.size());
  for (std::size_t off = 0; off < meta.size();) {
    const std::size_t take = std::min(meta.size() - off, buf_.size() - fill_);
    std::memcpy(buf_.data() + fill_, meta.data() + off, take);
    fill_ += take;
    off += take;
    if (fill_ == buf_.size()) FlushBlock(/*track_crc=*/false);
  }
  if (fill_ > 0) FlushBlock(/*track_crc=*/false);

  ArtifactFooter footer{};
  std::memcpy(footer.magic, kArtifactEndMagic, sizeof(footer.magic));
  footer.format_version = kArtifactFormatVersion;
  footer.block_size = static_cast<std::uint32_t>(buf_.size());
  footer.payload_blocks = payload_blocks;
  footer.meta_first_block = meta_first_block;
  footer.meta_bytes = meta.size();
  for (const ArtifactSectionEntry& entry : sections_) {
    footer.total_records += entry.record_count;
  }
  footer.num_sections = static_cast<std::uint32_t>(sections_.size());
  footer.meta_crc = meta_crc;
  footer.crc = HeaderCrc(footer);
  std::memcpy(buf_.data(), &footer, sizeof(footer));
  fill_ = sizeof(footer);
  FlushBlock(/*track_crc=*/false);

  // Every ArtifactWriter target is a publish destination (a serve
  // artifact or the tmp file about to be renamed over one), so the
  // bytes must be durable before the rename makes them reachable —
  // renaming an unsynced file durably publishes garbage. Counted in
  // sync_calls, never as a model I/O.
  io::CrashPointHit("publish.file.sync");
  RETURN_IF_ERROR(file_->Sync());
  return file_->Close();
}

// ---------------------------------------------------------------------------
// SccMapScanner

SccMapScanner::SccMapScanner(io::IoContext* context, const std::string& path,
                             const ArtifactSectionEntry& section,
                             const std::vector<std::uint32_t>* block_crcs)
    : file_(std::make_unique<io::BlockFile>(context, path,
                                            io::OpenMode::kRead)),
      section_(section),
      block_crcs_(block_crcs),
      block_(context->block_size()),
      next_block_(section.first_block),
      payload_left_(section.payload_bytes) {
  status_ = file_->status();
  if (status_.ok() && payload_left_ > 0) {
    file_->StartSequentialPrefetch(next_block_);
  }
}

bool SccMapScanner::RefillBlock() {
  if (!status_.ok() || payload_left_ == 0) return false;
  const std::size_t bs = block_.size();
  if (file_->ReadBlock(next_block_, block_.data()) != bs) {
    status_ = ShortRead(*file_, "node->SCC section");
    return false;
  }
  const std::uint64_t crc_index = next_block_ - 1;
  if (crc_index >= block_crcs_->size() ||
      io::Crc32(block_.data(), bs) != (*block_crcs_)[crc_index]) {
    status_ = util::Status::Corruption(
        "artifact block " + std::to_string(next_block_) +
        ": checksum mismatch in node->SCC section");
    return false;
  }
  ++blocks_read_;
  ++next_block_;
  block_payload_ = static_cast<std::size_t>(
      std::min<std::uint64_t>(payload_left_, bs));
  payload_left_ -= block_payload_;
  block_pos_ = 0;
  return true;
}

std::size_t SccMapScanner::NextBatch(graph::SccEntry* out, std::size_t max) {
  constexpr std::size_t kRec = sizeof(graph::SccEntry);
  std::size_t produced = 0;
  while (produced < max) {
    if (block_pos_ == block_payload_ && !RefillBlock()) break;
    const std::size_t avail = block_payload_ - block_pos_;
    const std::size_t whole = std::min(max - produced, avail / kRec);
    if (whole == 0) {
      // A record straddling the block boundary: the tail of this block
      // plus the head of the next (possible only when the record size
      // does not divide the block size).
      unsigned char rec[kRec];
      std::size_t have = 0;
      while (have < kRec) {
        if (block_pos_ == block_payload_ && !RefillBlock()) {
          if (status_.ok() && have > 0) {
            status_ = util::Status::Corruption(
                "artifact node->SCC section ends mid-record");
          }
          return produced;
        }
        const std::size_t take = std::min(
            kRec - have, block_payload_ - block_pos_);
        std::memcpy(rec + have, block_.data() + block_pos_, take);
        have += take;
        block_pos_ += take;
      }
      std::memcpy(&out[produced++], rec, kRec);
      continue;
    }
    std::memcpy(&out[produced], block_.data() + block_pos_, whole * kRec);
    produced += whole;
    block_pos_ += whole * kRec;
  }
  return produced;
}

bool SccMapScanner::Next(graph::SccEntry* entry) {
  return NextBatch(entry, 1) == 1;
}

// ---------------------------------------------------------------------------
// ArtifactReader

namespace {

// Reads and CRC-verifies a whole section into `out` (payload bytes
// only, padding stripped).
util::Status ReadSectionBytes(io::BlockFile* file,
                              const ArtifactSectionEntry& entry,
                              const std::vector<std::uint32_t>& block_crcs,
                              std::vector<unsigned char>* out) {
  const std::size_t bs = file->block_size();
  out->resize(static_cast<std::size_t>(entry.payload_bytes));
  std::vector<unsigned char> block(bs);
  std::uint64_t off = 0;
  for (std::uint64_t b = entry.first_block; off < entry.payload_bytes; ++b) {
    if (file->ReadBlock(b, block.data()) != bs) {
      return ShortRead(*file, "section");
    }
    const std::uint64_t crc_index = b - 1;
    if (crc_index >= block_crcs.size() ||
        io::Crc32(block.data(), bs) != block_crcs[crc_index]) {
      return util::Status::Corruption("artifact block " + std::to_string(b) +
                                      ": checksum mismatch");
    }
    const std::size_t take = static_cast<std::size_t>(
        std::min<std::uint64_t>(entry.payload_bytes - off, bs));
    std::memcpy(out->data() + off, block.data(), take);
    off += take;
  }
  return util::Status::Ok();
}

template <typename T>
util::Result<std::vector<T>> ReadSectionRecords(
    io::BlockFile* file, const ArtifactSectionEntry& entry,
    const std::vector<std::uint32_t>& block_crcs) {
  std::vector<unsigned char> bytes;
  RETURN_IF_ERROR(ReadSectionBytes(file, entry, block_crcs, &bytes));
  std::vector<T> records(bytes.size() / sizeof(T));
  std::memcpy(records.data(), bytes.data(), records.size() * sizeof(T));
  return records;
}

// Reads block 0 and validates magic/CRC/version/block size — the part
// of the open protocol that PeekArtifactVersion shares with Open.
// Checksum before version: a flipped version byte is corruption; only
// an intact preamble can be honestly "too new".
util::Result<ArtifactPreamble> ReadPreamble(io::BlockFile* file,
                                            const std::string& path,
                                            std::size_t bs) {
  std::vector<unsigned char> block(bs);
  if (file->ReadBlock(0, block.data()) != bs) {
    return ShortRead(*file, "preamble");
  }
  ArtifactPreamble preamble;
  std::memcpy(&preamble, block.data(), sizeof(preamble));
  if (std::memcmp(preamble.magic, kArtifactMagic, sizeof(kArtifactMagic)) !=
      0) {
    return util::Status::Corruption("not an extscc artifact (bad magic): " +
                                    path);
  }
  if (HeaderCrc(preamble) != preamble.crc) {
    return util::Status::Corruption("artifact preamble checksum mismatch");
  }
  if (preamble.format_version != kArtifactFormatVersion) {
    return util::Status::InvalidArgument(
        "unsupported artifact format version " +
        std::to_string(preamble.format_version) + " (reader supports " +
        std::to_string(kArtifactFormatVersion) + ")");
  }
  if (preamble.block_size != bs) {
    return util::Status::InvalidArgument(
        "artifact block size " + std::to_string(preamble.block_size) +
        " does not match context block size " + std::to_string(bs));
  }
  return preamble;
}

// Expected record sizes per known section id (0 = unknown id, accepted
// for forward compatibility but never loaded).
std::uint32_t ExpectedRecordSize(std::uint32_t id) {
  switch (static_cast<SectionId>(id)) {
    case SectionId::kNodeSccMap:
      return sizeof(graph::SccEntry);
    case SectionId::kDagNodes:
      return sizeof(graph::NodeId);
    case SectionId::kDagEdges:
      return sizeof(graph::Edge);
    case SectionId::kLabelRanks:
    case SectionId::kLabelMins:
      return sizeof(std::uint32_t);
    case SectionId::kSccSizes:
      return sizeof(std::uint64_t);
    case SectionId::kSummary:
      return sizeof(ArtifactSummary);
  }
  return 0;
}

}  // namespace

util::Result<ArtifactReader> ArtifactReader::Open(io::IoContext* context,
                                                  const std::string& path) {
  io::BlockFile file(context, path, io::OpenMode::kRead);
  RETURN_IF_ERROR(file.status());
  const std::size_t bs = context->block_size();
  const std::uint64_t size = file.size_bytes();
  if (size < 2 * bs || size % bs != 0) {
    return util::Status::Corruption(
        "artifact " + path + ": size " + std::to_string(size) +
        " is not a whole number of blocks (truncated?)");
  }
  const std::uint64_t num_blocks = size / bs;
  std::vector<unsigned char> block(bs);

  auto preamble_result = ReadPreamble(&file, path, bs);
  RETURN_IF_ERROR(preamble_result.status());
  const ArtifactPreamble preamble = preamble_result.value();

  // Footer.
  if (file.ReadBlock(num_blocks - 1, block.data()) != bs) {
    return ShortRead(file, "footer");
  }
  ArtifactFooter footer;
  std::memcpy(&footer, block.data(), sizeof(footer));
  if (std::memcmp(footer.magic, kArtifactEndMagic,
                  sizeof(kArtifactEndMagic)) != 0) {
    return util::Status::Corruption(
        "artifact footer magic mismatch (truncated?)");
  }
  if (HeaderCrc(footer) != footer.crc) {
    return util::Status::Corruption("artifact footer checksum mismatch");
  }
  if (footer.format_version != kArtifactFormatVersion ||
      footer.block_size != bs) {
    return util::Status::Corruption(
        "artifact footer disagrees with preamble");
  }
  const std::uint64_t meta_blocks = CeilDiv(footer.meta_bytes, bs);
  if (footer.meta_first_block != footer.payload_blocks + 1 ||
      footer.num_sections > 64 ||
      footer.meta_bytes !=
          footer.num_sections * sizeof(ArtifactSectionEntry) +
              footer.payload_blocks * sizeof(std::uint32_t) ||
      1 + footer.payload_blocks + meta_blocks + 1 != num_blocks) {
    return util::Status::Corruption("artifact geometry is inconsistent");
  }

  // Meta region: section directory + payload-block CRC table.
  std::vector<unsigned char> meta(
      static_cast<std::size_t>(meta_blocks * bs));
  for (std::uint64_t m = 0; m < meta_blocks; ++m) {
    if (file.ReadBlock(footer.meta_first_block + m,
                       meta.data() + m * bs) != bs) {
      return ShortRead(file, "meta region");
    }
  }
  if (io::Crc32(meta.data(), static_cast<std::size_t>(footer.meta_bytes)) !=
      footer.meta_crc) {
    return util::Status::Corruption("artifact meta checksum mismatch");
  }
  std::vector<ArtifactSectionEntry> sections(footer.num_sections);
  std::memcpy(sections.data(), meta.data(),
              sections.size() * sizeof(ArtifactSectionEntry));
  ArtifactReader reader;
  reader.block_crcs_.resize(
      static_cast<std::size_t>(footer.payload_blocks));
  std::memcpy(reader.block_crcs_.data(),
              meta.data() + sections.size() * sizeof(ArtifactSectionEntry),
              reader.block_crcs_.size() * sizeof(std::uint32_t));

  // Directory sanity + lookup.
  const ArtifactSectionEntry* by_id[8] = {};
  for (const ArtifactSectionEntry& entry : sections) {
    const std::uint32_t expected = ExpectedRecordSize(entry.id);
    if (entry.record_size == 0 || entry.record_size > bs ||
        (expected != 0 && entry.record_size != expected) ||
        entry.payload_bytes != entry.record_count * entry.record_size ||
        entry.first_block < 1 ||
        entry.first_block + CeilDiv(entry.payload_bytes, bs) >
            1 + footer.payload_blocks) {
      return util::Status::Corruption("artifact section directory entry " +
                                      std::to_string(entry.id) +
                                      " is inconsistent");
    }
    if (entry.id < 8) {
      if (by_id[entry.id] != nullptr) {
        return util::Status::Corruption("artifact has duplicate section " +
                                        std::to_string(entry.id));
      }
      by_id[entry.id] = &entry;
    }
  }
  auto require = [&](SectionId id) -> const ArtifactSectionEntry* {
    return by_id[static_cast<std::uint32_t>(id)];
  };
  for (const SectionId id :
       {SectionId::kNodeSccMap, SectionId::kDagNodes, SectionId::kDagEdges,
        SectionId::kLabelRanks, SectionId::kLabelMins, SectionId::kSccSizes,
        SectionId::kSummary}) {
    if (require(id) == nullptr) {
      return util::Status::Corruption(
          "artifact is missing section " +
          std::to_string(static_cast<std::uint32_t>(id)));
    }
  }

  // Resident sections.
  {
    const ArtifactSectionEntry& entry = *require(SectionId::kSummary);
    if (entry.record_count != 1) {
      return util::Status::Corruption(
          "artifact summary section must hold exactly one record");
    }
    auto records = ReadSectionRecords<ArtifactSummary>(&file, entry,
                                                       reader.block_crcs_);
    RETURN_IF_ERROR(records.status());
    reader.summary_ = records.value()[0];
  }
  {
    auto sizes = ReadSectionRecords<std::uint64_t>(
        &file, *require(SectionId::kSccSizes), reader.block_crcs_);
    RETURN_IF_ERROR(sizes.status());
    reader.scc_sizes_ = std::move(sizes).value();
  }
  auto dag_nodes = ReadSectionRecords<NodeId>(
      &file, *require(SectionId::kDagNodes), reader.block_crcs_);
  RETURN_IF_ERROR(dag_nodes.status());
  auto dag_edges = ReadSectionRecords<Edge>(
      &file, *require(SectionId::kDagEdges), reader.block_crcs_);
  RETURN_IF_ERROR(dag_edges.status());
  std::vector<std::uint32_t> rank_words, min_words;
  {
    auto ranks = ReadSectionRecords<std::uint32_t>(
        &file, *require(SectionId::kLabelRanks), reader.block_crcs_);
    RETURN_IF_ERROR(ranks.status());
    rank_words = std::move(ranks).value();
    auto mins = ReadSectionRecords<std::uint32_t>(
        &file, *require(SectionId::kLabelMins), reader.block_crcs_);
    RETURN_IF_ERROR(mins.status());
    min_words = std::move(mins).value();
  }
  reader.node_scc_section_ = *require(SectionId::kNodeSccMap);

  // Cross-section consistency: all CRC-valid, but the summary must
  // agree with what the sections actually hold.
  const ArtifactSummary& summary = reader.summary_;
  graph::Digraph dag(std::move(dag_nodes).value(), dag_edges.value());
  const std::uint64_t n = dag.num_nodes();
  const std::uint32_t rounds = summary.num_label_rounds;
  if (summary.num_sccs != reader.scc_sizes_.size() ||
      summary.dag_nodes != n || summary.dag_edges != dag.num_edges() ||
      summary.graph_nodes != reader.node_scc_section_.record_count ||
      rounds == 0 || rank_words.size() != rounds * n ||
      min_words.size() != rounds * n) {
    return util::Status::Corruption(
        "artifact summary disagrees with its sections");
  }
  std::vector<std::vector<std::uint32_t>> ranks(rounds), mins(rounds);
  for (std::uint32_t r = 0; r < rounds; ++r) {
    ranks[r].assign(rank_words.begin() + r * n,
                    rank_words.begin() + (r + 1) * n);
    mins[r].assign(min_words.begin() + r * n,
                   min_words.begin() + (r + 1) * n);
  }
  auto labels = app::IntervalLabels::FromParts(std::move(dag),
                                               std::move(ranks),
                                               std::move(mins));
  if (!labels.ok()) {
    return util::Status::Corruption("artifact interval labels invalid: " +
                                    labels.status().message());
  }
  reader.labels_ = std::move(labels).value();
  reader.context_ = context;
  reader.path_ = path;
  reader.data_version_ = preamble.data_version;
  RETURN_IF_ERROR(file.Close());
  return reader;
}

std::uint64_t ArtifactReader::scc_size(graph::SccId scc) const {
  CHECK_LT(scc, scc_sizes_.size()) << "unknown SCC " << scc;
  return scc_sizes_[scc];
}

SccMapScanner ArtifactReader::OpenNodeSccScan() const {
  return SccMapScanner(context_, path_, node_scc_section_, &block_crcs_);
}

util::Result<std::uint64_t> PeekArtifactVersion(io::IoContext* context,
                                                const std::string& path) {
  io::BlockFile file(context, path, io::OpenMode::kRead);
  RETURN_IF_ERROR(file.status());
  const std::size_t bs = context->block_size();
  if (file.size_bytes() < bs) {
    return util::Status::Corruption("artifact " + path +
                                    ": shorter than one block (truncated?)");
  }
  auto preamble = ReadPreamble(&file, path, bs);
  RETURN_IF_ERROR(preamble.status());
  RETURN_IF_ERROR(file.Close());
  return preamble.value().data_version;
}

}  // namespace extscc::serve
