// Staging a serve artifact onto the scratch devices. The artifact a
// user hands to query/serve/update usually lives on the base device (a
// plain filesystem path), so its section sweeps — the dominant I/O of
// every query batch — run at ONE device's bandwidth no matter how many
// scratch devices --scratch-dirs declared. Under --placement=striped
// the tools fix that by staging: block-copy the artifact into a striped
// scratch file (every block round-robins across the available devices)
// and serve all reads from the copy. One sequential copy buys every
// subsequent sweep D× one device's bandwidth, and per-device accounting
// attributes the sweep I/Os to the member devices like any striped
// stream.
#ifndef EXTSCC_SERVE_ARTIFACT_STAGE_H_
#define EXTSCC_SERVE_ARTIFACT_STAGE_H_

#include <string>

#include "io/io_context.h"
#include "util/status.h"

namespace extscc::serve {

struct StagedArtifact {
  // Where to open the ArtifactReader: the striped scratch copy when
  // staged, else `source` unchanged.
  std::string path;
  bool staged = false;
};

// Stages `source` when the context places scratch striped across >= 2
// available devices (TempFileManager::effective_stripe_width); a no-op
// pass-through otherwise. The copy is a scratch file: it dies with the
// context, and a refreshing server removes the old copy explicitly via
// TempFileManager::Remove after swapping in a new one.
util::Result<StagedArtifact> StageArtifactForServing(
    io::IoContext* context, const std::string& source);

}  // namespace extscc::serve

#endif  // EXTSCC_SERVE_ARTIFACT_STAGE_H_
