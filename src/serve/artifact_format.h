// On-disk layout of the serve artifact — the durable product of one
// Ext-SCC solve (docs/serving.md). A single file of whole blocks at the
// context's block size:
//
//   block 0                    preamble (magic, version, block size)
//   blocks 1 .. P              payload: sections, each starting on a
//                              fresh block boundary, records packed
//                              contiguously inside a section (a record
//                              may straddle two blocks), final block of
//                              a section zero-padded
//   blocks P+1 .. P+m          meta region: the section directory
//                              (ArtifactSectionEntry per section)
//                              followed by one CRC32 per payload block
//   last block                 footer (magic, geometry, meta CRC)
//
// Every byte is covered by some checksum: the preamble and footer carry
// their own CRCs, each payload block (padding included) has an entry in
// the meta CRC table, and the meta region is covered by footer.meta_crc.
// Readers therefore turn any bit flip or truncation into kCorruption
// instead of a wrong answer; an unknown format_version is
// kInvalidArgument (honest "too new", not corruption).
//
// All structs are fixed-layout PODs written natively (the artifact is
// host-endian, like every record file in the engine); each ends in its
// `crc` field with no tail padding, so a struct's CRC is Crc32 over
// sizeof(struct) - 4 leading bytes.
#ifndef EXTSCC_SERVE_ARTIFACT_FORMAT_H_
#define EXTSCC_SERVE_ARTIFACT_FORMAT_H_

#include <cstdint>

namespace extscc::serve {

inline constexpr char kArtifactMagic[8] = {'E', 'X', 'S', 'C',
                                           'C', 'A', 'R', 'T'};
inline constexpr char kArtifactEndMagic[8] = {'E', 'X', 'S', 'C',
                                              'C', 'E', 'N', 'D'};
inline constexpr std::uint32_t kArtifactFormatVersion = 1;

// Section identifiers. Values are stable on disk; new sections append.
enum class SectionId : std::uint32_t {
  kNodeSccMap = 1,  // graph::SccEntry, sorted by node — swept per batch
  kDagNodes = 2,    // graph::NodeId per condensation node (SCC label)
  kDagEdges = 3,    // graph::Edge over SCC labels, sorted by src
  kLabelRanks = 4,  // uint32, rounds x dag_nodes (round-major)
  kLabelMins = 5,   // uint32, rounds x dag_nodes (round-major)
  kSccSizes = 6,    // uint64 per dense SCC label
  kSummary = 7,     // exactly one ArtifactSummary
};

struct ArtifactPreamble {
  char magic[8];  // kArtifactMagic
  std::uint32_t format_version;
  std::uint32_t block_size;
  // Monotonic DATA version of the index: 0 for a fresh build-index,
  // bumped by one on every published incremental update (src/dyn/).
  // Distinct from format_version (the layout revision): a serving
  // process polls this one cheap block-0 read to learn that an update
  // republished the artifact. Was a reserved (always-zero) field before
  // the dynamic subsystem, so pre-existing artifacts read as version 0.
  std::uint64_t data_version;
  std::uint32_t reserved1;
  std::uint32_t crc;  // Crc32 over the preceding 28 bytes
};
static_assert(sizeof(ArtifactPreamble) == 32);

struct ArtifactSectionEntry {
  std::uint32_t id;           // SectionId
  std::uint32_t record_size;  // bytes per record
  std::uint64_t first_block;  // absolute block index (>= 1)
  std::uint64_t payload_bytes;
  std::uint64_t record_count;  // payload_bytes / record_size
};
static_assert(sizeof(ArtifactSectionEntry) == 32);

struct ArtifactFooter {
  char magic[8];  // kArtifactEndMagic
  std::uint32_t format_version;
  std::uint32_t block_size;
  std::uint64_t payload_blocks;    // payload occupies blocks [1, 1 + this)
  std::uint64_t meta_first_block;  // == 1 + payload_blocks
  std::uint64_t meta_bytes;        // directory + payload-block CRC table
  std::uint64_t total_records;     // across all sections (diagnostic)
  std::uint32_t num_sections;
  std::uint32_t meta_crc;  // Crc32 over the meta region's meta_bytes
  std::uint32_t reserved;
  std::uint32_t crc;  // Crc32 over the preceding 60 bytes
};
static_assert(sizeof(ArtifactFooter) == 64);

// The kSummary section's single record: everything a serving process
// reports without touching the payload.
struct ArtifactSummary {
  std::uint64_t graph_nodes;
  std::uint64_t graph_edges;
  std::uint64_t num_sccs;
  std::uint64_t dag_nodes;  // == num_sccs
  std::uint64_t dag_edges;
  std::uint64_t largest_scc_size;
  std::uint64_t num_singletons;
  std::uint64_t label_seed;  // interval-label RNG seed used at build
  // Bow-tie split (Broder): valid when bowtie_computed != 0.
  std::uint64_t core_size;
  std::uint64_t in_size;
  std::uint64_t out_size;
  std::uint64_t other_size;
  std::uint32_t num_label_rounds;
  std::uint32_t largest_scc;  // SccId of the largest component
  std::uint32_t core_scc;     // == largest_scc when bow-tie computed
  std::uint32_t bowtie_computed;
};
static_assert(sizeof(ArtifactSummary) == 112);

}  // namespace extscc::serve

#endif  // EXTSCC_SERVE_ARTIFACT_FORMAT_H_
