// Service surface shared by `extscc_tool query` and `extscc_tool
// serve`: the line protocol and the concurrent batch dispatcher.
//
// Line protocol (one query per line, whitespace-separated):
//   same <u> <v>    are u and v in the same SCC?
//   reach <u> <v>   does u reach v?
//   stat <u>        SCC label and size of u
// Answers echo the query followed by the verdict:
//   same 3 7 true | reach 3 7 false | stat 3 scc=2 size=41
// A node the artifact never saw answers `unknown` instead of a verdict.
//
// Concurrency contract: one immutable artifact, one shared IoContext, N
// reader threads. RunQueries splits a batch into contiguous slices and
// runs QueryEngine::RunBatch on each concurrently — answers land in
// their original positions, so the output is identical to a serial run
// (slicing changes only the sweep count, never a verdict).
#ifndef EXTSCC_SERVE_SERVICE_H_
#define EXTSCC_SERVE_SERVICE_H_

#include <cstddef>
#include <string>
#include <vector>

#include "io/io_context.h"
#include "serve/query_engine.h"
#include "util/status.h"

namespace extscc::serve {

// Parses one protocol line into `query`. False on malformed input
// (unknown verb, wrong arity, non-numeric or out-of-range id); blank
// lines are NOT queries — callers treat them as batch flushes.
bool ParseQueryLine(const std::string& line, Query* query);

// Formats the answer line for `query`.
std::string FormatAnswer(const Query& query, const QueryAnswer& answer);

// Answers queries[0..n) into answers[0..n) using up to `threads`
// concurrent slices (0 and 1 both mean serial). Statuses merge
// first-error-wins in slice order; `stats`, when given, accumulates
// across slices.
util::Status RunQueries(io::IoContext* context, const QueryEngine& engine,
                        const std::vector<Query>& queries,
                        std::size_t threads,
                        std::vector<QueryAnswer>* answers,
                        QueryBatchStats* stats = nullptr);

}  // namespace extscc::serve

#endif  // EXTSCC_SERVE_SERVICE_H_
