// build-index: one Ext-SCC solve persisted as a serve artifact.
//
// Runs the full pipeline — RunExtScc (node→SCC labels), condensation,
// GRAIL-style interval labels, per-SCC sizes, and (optionally) the
// bow-tie decomposition — and streams every product into an
// ArtifactWriter. Solve once, answer query traffic forever after at
// scan bandwidth (query_engine.h).
#ifndef EXTSCC_SERVE_INDEX_BUILDER_H_
#define EXTSCC_SERVE_INDEX_BUILDER_H_

#include <cstdint>
#include <string>

#include "core/ext_scc.h"
#include "graph/disk_graph.h"
#include "io/io_context.h"
#include "serve/artifact_format.h"
#include "util/status.h"

namespace extscc::serve {

struct BuildArtifactOptions {
  core::ExtSccOptions solve = core::ExtSccOptions::Optimized();
  // Interval labeling rounds / RNG seed (see app::IntervalLabels).
  std::uint32_t num_labels = 3;
  std::uint64_t label_seed = 1;
  // Bow-tie decomposition costs extra sequential passes at build time;
  // the artifact stores zeroed bow-tie fields when off (or when the
  // graph is empty).
  bool include_bowtie = true;
  // Data version stamped into the artifact preamble. build-index leaves
  // 0; the dynamic updater's full-rebuild fallback passes old + 1 so a
  // serving process still notices the swap.
  std::uint64_t data_version = 0;
};

struct BuildArtifactResult {
  core::ExtSccStats solve_stats;
  ArtifactSummary summary{};
};

// Solves `g` and writes the artifact to `artifact_path` (any path; its
// storage device is resolved like every other file). Intermediate
// scratch lives and dies in `context`'s temp space.
util::Result<BuildArtifactResult> BuildArtifact(
    io::IoContext* context, const graph::DiskGraph& g,
    const std::string& artifact_path, const BuildArtifactOptions& options);

}  // namespace extscc::serve

#endif  // EXTSCC_SERVE_INDEX_BUILDER_H_
