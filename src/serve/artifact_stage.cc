#include "serve/artifact_stage.h"

#include <vector>

#include "io/block_file.h"
#include "io/temp_file_manager.h"

namespace extscc::serve {

util::Result<StagedArtifact> StageArtifactForServing(
    io::IoContext* context, const std::string& source) {
  io::TempFileManager& temp_files = context->temp_files();
  if (temp_files.effective_stripe_width() == 0) {
    return StagedArtifact{source, /*staged=*/false};
  }

  io::BlockFile in(context, source, io::OpenMode::kRead);
  RETURN_IF_ERROR(in.status());
  const std::size_t bs = in.block_size();
  if (in.size_bytes() == 0 || in.size_bytes() % bs != 0) {
    return util::Status::Corruption(
        "artifact " + source + ": size " + std::to_string(in.size_bytes()) +
        " is not a whole number of blocks (truncated?)");
  }
  const io::ScratchFile staged =
      temp_files.NewFile("artifact_stage", io::Placement::Ungrouped());
  io::BlockFile out(context, staged.path, io::OpenMode::kTruncateWrite);
  RETURN_IF_ERROR(out.status());

  in.StartSequentialPrefetch();
  std::vector<unsigned char> block(bs);
  const std::uint64_t blocks = in.size_bytes() / bs;
  for (std::uint64_t b = 0; b < blocks; ++b) {
    if (in.ReadBlock(b, block.data()) != bs) {
      if (!in.status().ok()) return in.status();
      return util::Status::Corruption("artifact " + source +
                                      ": short read while staging");
    }
    out.WriteBlock(b, block.data(), bs);
  }
  RETURN_IF_ERROR(in.Close());
  RETURN_IF_ERROR(out.Close());
  return StagedArtifact{staged.path, /*staged=*/true};
}

}  // namespace extscc::serve
