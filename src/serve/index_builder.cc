#include "serve/index_builder.h"

#include <algorithm>
#include <utility>
#include <vector>

#include "app/bowtie.h"
#include "app/interval_labels.h"
#include "core/canonical_labels.h"
#include "extsort/record_sink.h"
#include "graph/digraph.h"
#include "graph/graph_types.h"
#include "io/durability.h"
#include "io/record_stream.h"
#include "scc/condensation.h"
#include "serve/artifact.h"
#include "util/logging.h"

namespace extscc::serve {

namespace {

using graph::Edge;
using graph::NodeId;
using graph::SccEntry;

}  // namespace

util::Result<BuildArtifactResult> BuildArtifact(
    io::IoContext* context, const graph::DiskGraph& g,
    const std::string& artifact_path, const BuildArtifactOptions& options) {
  if (options.num_labels == 0) {
    return util::Status::InvalidArgument(
        "artifact needs at least one interval labeling round");
  }
  if (g.num_nodes == 0) {
    return util::Status::InvalidArgument(
        "cannot build a serve artifact over an empty graph");
  }
  BuildArtifactResult result;

  // 1. The expensive out-of-core step: Ext-SCC labels, node-sorted.
  const std::string raw_scc_path = context->NewTempPath("serve_scc");
  {
    auto solved = core::RunExtScc(context, g, raw_scc_path, options.solve);
    RETURN_IF_ERROR(solved.status());
    result.solve_stats = solved.value();
  }
  const std::uint64_t num_sccs = result.solve_stats.num_sccs;

  // 1b. Canonicalize: the solver's label VALUES depend on its internal
  // traversal order, so rewrite them dense-by-first-occurrence in node
  // order. Every artifact section downstream is then a pure function of
  // the graph — the property that lets the incremental updater
  // (src/dyn/) produce artifacts byte-identical to a full re-solve.
  const std::string scc_path = context->NewTempPath("serve_canon");
  RETURN_IF_ERROR(
      core::CanonicalizeLabels(context, raw_scc_path, num_sccs, scc_path));

  // 2. Condensation DAG, loaded resident (small by construction).
  const auto condensation = scc::BuildCondensation(context, g, scc_path);
  const auto dag_node_ids =
      io::ReadAllRecords<NodeId>(context, condensation.dag.node_path);
  const auto dag_edge_list =
      io::ReadAllRecords<Edge>(context, condensation.dag.edge_path);

  // 3. Interval labels over the DAG.
  const app::IntervalLabels labels = app::IntervalLabels::Build(
      graph::Digraph(dag_node_ids, dag_edge_list), options.num_labels,
      options.label_seed);
  const std::size_t dag_n = labels.dag().num_nodes();

  // 4. Per-SCC sizes + summary stats, one scan of the label file
  //    (labels are dense in [0, num_sccs) — RunExtScc's contract).
  std::vector<std::uint64_t> sizes(static_cast<std::size_t>(num_sccs), 0);
  {
    io::RecordReader<SccEntry> reader(context, scc_path);
    SccEntry entry;
    while (reader.Next(&entry)) {
      CHECK_LT(entry.scc, num_sccs) << "SCC label out of range";
      ++sizes[entry.scc];
    }
    RETURN_IF_ERROR(reader.status());
  }

  ArtifactSummary& summary = result.summary;
  summary.graph_nodes = g.num_nodes;
  summary.graph_edges = g.num_edges;
  summary.num_sccs = num_sccs;
  summary.dag_nodes = condensation.dag.num_nodes;
  summary.dag_edges = condensation.dag.num_edges;
  summary.num_label_rounds = options.num_labels;
  summary.label_seed = options.label_seed;
  summary.largest_scc = graph::kInvalidScc;
  summary.core_scc = graph::kInvalidScc;
  for (std::size_t s = 0; s < sizes.size(); ++s) {
    if (sizes[s] > summary.largest_scc_size) {
      summary.largest_scc_size = sizes[s];
      summary.largest_scc = static_cast<graph::SccId>(s);
    }
    if (sizes[s] == 1) ++summary.num_singletons;
  }

  // 5. Bow-tie split around the largest SCC (optional; needs a
  //    non-empty graph).
  if (options.include_bowtie && g.num_nodes > 0) {
    auto bowtie = app::BowtieDecompose(context, g, scc_path);
    RETURN_IF_ERROR(bowtie.status());
    summary.bowtie_computed = 1;
    summary.core_scc = bowtie.value().core_scc;
    summary.core_size = bowtie.value().core_size;
    summary.in_size = bowtie.value().in_size;
    summary.out_size = bowtie.value().out_size;
    summary.other_size = bowtie.value().other_size;
  }

  // 6. Stream everything into "<path>.tmp" and publish by durable
  // rename, so a build killed mid-write can never leave a torn file at
  // the artifact path — the same protocol the dynamic updater uses.
  const std::string tmp_path = artifact_path + ".tmp";
  ArtifactWriter writer(context, tmp_path, options.data_version);
  RETURN_IF_ERROR(writer.status());
  {
    auto sink = writer.BeginSection<SccEntry>(SectionId::kNodeSccMap);
    util::Status read_status;
    const std::uint64_t streamed =
        extsort::SinkAppendAllRecords<SccEntry>(context, scc_path, sink,
                                                &read_status);
    RETURN_IF_ERROR(read_status);
    if (streamed != g.num_nodes) {
      return util::Status::Corruption(
          "solver label file does not cover the graph");
    }
    writer.EndSection();
  }
  {
    auto sink = writer.BeginSection<NodeId>(SectionId::kDagNodes);
    sink.AppendBatch(dag_node_ids.data(), dag_node_ids.size());
    writer.EndSection();
  }
  {
    auto sink = writer.BeginSection<Edge>(SectionId::kDagEdges);
    sink.AppendBatch(dag_edge_list.data(), dag_edge_list.size());
    writer.EndSection();
  }
  {
    auto sink = writer.BeginSection<std::uint32_t>(SectionId::kLabelRanks);
    for (std::uint32_t r = 0; r < options.num_labels; ++r) {
      sink.AppendBatch(labels.ranks(r).data(), dag_n);
    }
    writer.EndSection();
  }
  {
    auto sink = writer.BeginSection<std::uint32_t>(SectionId::kLabelMins);
    for (std::uint32_t r = 0; r < options.num_labels; ++r) {
      sink.AppendBatch(labels.mins(r).data(), dag_n);
    }
    writer.EndSection();
  }
  {
    auto sink = writer.BeginSection<std::uint64_t>(SectionId::kSccSizes);
    sink.AppendBatch(sizes.data(), sizes.size());
    writer.EndSection();
  }
  {
    auto sink = writer.BeginSection<ArtifactSummary>(SectionId::kSummary);
    sink.Append(summary);
    writer.EndSection();
  }
  RETURN_IF_ERROR(writer.Finish());
  const util::Status published =
      io::DurableRename(context, tmp_path, artifact_path);
  if (!published.ok()) {
    (void)context->ResolveDevice(tmp_path)->Delete(tmp_path);
    return published;
  }
  return result;
}

}  // namespace extscc::serve
