#include "serve/service.h"

#include <cstdint>
#include <sstream>
#include <thread>
#include <utility>

#include "util/logging.h"

namespace extscc::serve {

namespace {

// Strict u32 parse: the whole token, no sign, no overflow.
bool ParseNodeId(const std::string& token, graph::NodeId* out) {
  if (token.empty() || token.size() > 10) return false;
  std::uint64_t value = 0;
  for (const char c : token) {
    if (c < '0' || c > '9') return false;
    value = value * 10 + static_cast<std::uint64_t>(c - '0');
  }
  if (value > 0xffffffffull) return false;
  *out = static_cast<graph::NodeId>(value);
  return true;
}

}  // namespace

bool ParseQueryLine(const std::string& line, Query* query) {
  std::istringstream in(line);
  std::string verb, a, b, extra;
  if (!(in >> verb)) return false;
  Query q;
  if (verb == "same" || verb == "reach") {
    q.type = verb == "same" ? QueryType::kSameScc : QueryType::kReachable;
    if (!(in >> a >> b) || (in >> extra)) return false;
    if (!ParseNodeId(a, &q.u) || !ParseNodeId(b, &q.v)) return false;
  } else if (verb == "stat") {
    q.type = QueryType::kSccStat;
    if (!(in >> a) || (in >> extra)) return false;
    if (!ParseNodeId(a, &q.u)) return false;
  } else {
    return false;
  }
  *query = q;
  return true;
}

std::string FormatAnswer(const Query& query, const QueryAnswer& answer) {
  std::string out;
  switch (query.type) {
    case QueryType::kSameScc:
    case QueryType::kReachable:
      out = (query.type == QueryType::kSameScc ? "same " : "reach ") +
            std::to_string(query.u) + " " + std::to_string(query.v) + " ";
      out += answer.known ? (answer.result ? "true" : "false") : "unknown";
      return out;
    case QueryType::kSccStat:
      out = "stat " + std::to_string(query.u) + " ";
      if (!answer.known) return out + "unknown";
      return out + "scc=" + std::to_string(answer.scc_u) +
             " size=" + std::to_string(answer.scc_size);
  }
  return out;  // unreachable
}

util::Status RunQueries(io::IoContext* context, const QueryEngine& engine,
                        const std::vector<Query>& queries,
                        std::size_t threads,
                        std::vector<QueryAnswer>* answers,
                        QueryBatchStats* stats) {
  const std::size_t n = queries.size();
  answers->resize(n);
  const std::size_t workers =
      std::max<std::size_t>(1, std::min(threads, n == 0 ? 1 : n));
  if (workers == 1) {
    return engine.RunBatch(context, queries.data(), n, answers->data(),
                           stats);
  }
  // Contiguous slices; each worker sorts and sweeps its slice
  // independently (the per-device stats and the memory budget are
  // thread-safe underneath).
  std::vector<util::Status> statuses(workers);
  std::vector<QueryBatchStats> worker_stats(workers);
  std::vector<std::thread> pool;
  pool.reserve(workers);
  const std::size_t chunk = (n + workers - 1) / workers;
  for (std::size_t w = 0; w < workers; ++w) {
    const std::size_t begin = w * chunk;
    const std::size_t end = std::min(n, begin + chunk);
    if (begin >= end) break;
    pool.emplace_back([&, w, begin, end] {
      statuses[w] =
          engine.RunBatch(context, queries.data() + begin, end - begin,
                          answers->data() + begin, &worker_stats[w]);
    });
  }
  for (std::thread& t : pool) t.join();
  for (std::size_t w = 0; w < workers; ++w) {
    if (stats != nullptr) *stats += worker_stats[w];
    RETURN_IF_ERROR(statuses[w]);
  }
  return util::Status::Ok();
}

}  // namespace extscc::serve
