#include "serve/query_engine.h"

#include <vector>

#include "extsort/external_sorter.h"
#include "extsort/record_sink.h"
#include "util/logging.h"

namespace extscc::serve {

QueryBatchStats& QueryBatchStats::operator+=(const QueryBatchStats& other) {
  queries += other.queries;
  probes += other.probes;
  unknown_nodes += other.unknown_nodes;
  swept_blocks += other.swept_blocks;
  probe_spill_runs += other.probe_spill_runs;
  labels.queries += other.labels.queries;
  labels.same_scc_hits += other.labels.same_scc_hits;
  labels.interval_refutations += other.labels.interval_refutations;
  labels.dfs_fallbacks += other.labels.dfs_fallbacks;
  return *this;
}

util::Status QueryEngine::RunBatch(io::IoContext* context,
                                   const Query* queries, std::size_t n,
                                   QueryAnswer* answers,
                                   QueryBatchStats* stats) const {
  QueryBatchStats local_stats;
  QueryBatchStats& st = stats != nullptr ? *stats : local_stats;
  st.queries += n;
  if (n == 0) return util::Status::Ok();

  // Probe slots: query i resolves SCC(u) into 2i, SCC(v) into 2i + 1.
  std::vector<graph::SccId> resolved(2 * n, graph::kInvalidScc);
  extsort::SortingWriter<NodeProbe, NodeProbeByNode> sorter(context,
                                                            NodeProbeByNode{});
  for (std::size_t i = 0; i < n; ++i) {
    const Query& q = queries[i];
    sorter.Add({q.u, static_cast<std::uint32_t>(2 * i)});
    ++st.probes;
    if (q.type != QueryType::kSccStat) {
      sorter.Add({q.v, static_cast<std::uint32_t>(2 * i + 1)});
      ++st.probes;
    }
  }

  // One merge sweep: probes drain out of the sort in node order while
  // the scanner walks the node-sorted map section once. The sweep
  // early-exits its reads when the last probe resolves.
  SccMapScanner scanner = artifact_->OpenNodeSccScan();
  graph::SccEntry cur{};
  bool have = scanner.Next(&cur);
  auto sink = extsort::MakeCallbackSink<NodeProbe>([&](const NodeProbe& p) {
    while (have && cur.node < p.node) have = scanner.Next(&cur);
    if (have && cur.node == p.node) resolved[p.slot] = cur.scc;
  });
  auto sort_info = sorter.FinishInto(sink);
  RETURN_IF_ERROR(sort_info.status);
  RETURN_IF_ERROR(scanner.status());
  st.swept_blocks += scanner.blocks_read();
  // An in-budget probe sort stays resident and reports one (or zero)
  // runs; only an overflow spills, and a spill always forms >= 2.
  if (sort_info.num_runs > 1) st.probe_spill_runs += sort_info.num_runs;

  // Resolve the batch on the resident structures — no further I/O.
  const app::IntervalLabels& labels = artifact_->labels();
  for (std::size_t i = 0; i < n; ++i) {
    const Query& q = queries[i];
    QueryAnswer& a = answers[i];
    a = QueryAnswer{};
    a.scc_u = resolved[2 * i];
    a.scc_v = resolved[2 * i + 1];
    switch (q.type) {
      case QueryType::kSccStat:
        a.known = a.scc_u != graph::kInvalidScc;
        a.result = a.known;
        if (a.known) a.scc_size = artifact_->scc_size(a.scc_u);
        break;
      case QueryType::kSameScc:
        a.known = a.scc_u != graph::kInvalidScc &&
                  a.scc_v != graph::kInvalidScc;
        a.result = a.known && a.scc_u == a.scc_v;
        break;
      case QueryType::kReachable:
        a.known = a.scc_u != graph::kInvalidScc &&
                  a.scc_v != graph::kInvalidScc;
        a.result =
            a.known && labels.SccReachable(a.scc_u, a.scc_v, &st.labels);
        break;
    }
    if (!a.known) ++st.unknown_nodes;
  }
  return util::Status::Ok();
}

}  // namespace extscc::serve
