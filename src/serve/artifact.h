// Writer / reader for the serve artifact (artifact_format.h).
//
// ArtifactWriter streams records section by section through sinks that
// satisfy extsort::RecordSinkFor<T> — so solver output flows in via the
// same sink plumbing as every other stage (SinkAppendAllRecords from
// the solver's label file, SortingWriter::FinishInto, ...). All I/O
// goes through BlockFile on whatever StorageDevice the path resolves
// to, so artifact traffic is counted per device like everything else.
//
// ArtifactReader opens read-only, validates preamble/footer/meta
// checksums, and loads the resident sections (condensation DAG,
// interval labels, SCC sizes, summary) into memory; the node→SCC map —
// the one section proportional to |V| — stays on disk and is read by
// SccMapScanner, one sequential CRC-verified sweep per query batch.
// Every scanner owns its own BlockFile, so N reader threads scan one
// immutable artifact concurrently; the reader itself is const after
// Open.
//
// Error contract: wrong magic, bad CRC, truncation, or inconsistent
// geometry → kCorruption; an unsupported format version or mismatched
// block size → kInvalidArgument; device-level failures keep their
// errno-typed codes. Corruption is always detected before a record is
// handed out — never a wrong answer.
#ifndef EXTSCC_SERVE_ARTIFACT_H_
#define EXTSCC_SERVE_ARTIFACT_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "app/interval_labels.h"
#include "extsort/record_sink.h"
#include "graph/graph_types.h"
#include "io/block_file.h"
#include "io/io_context.h"
#include "serve/artifact_format.h"
#include "util/status.h"

namespace extscc::serve {

class ArtifactWriter {
 public:
  // Opens `path` for truncating write on the device the context
  // resolves for it and writes the preamble block. `data_version` is
  // the monotonic data version stamped into the preamble (0 for a
  // fresh build-index; the dynamic updater passes old + 1). Check
  // status() / Finish() for I/O errors.
  ArtifactWriter(io::IoContext* context, const std::string& path,
                 std::uint64_t data_version = 0);

  // Typed append handle for the currently open section; satisfies
  // extsort::RecordSinkFor<T>.
  template <typename T>
  class SectionSink {
   public:
    void Append(const T& record) { writer_->AppendRaw(&record, sizeof(T)); }
    void AppendBatch(const T* records, std::size_t n) {
      writer_->AppendRaw(records, n * sizeof(T));
    }

   private:
    friend class ArtifactWriter;
    explicit SectionSink(ArtifactWriter* writer) : writer_(writer) {}
    ArtifactWriter* writer_;
  };

  // Starts section `id` on a fresh block boundary. One section may be
  // open at a time; every section id at most once per artifact.
  template <typename T>
  SectionSink<T> BeginSection(SectionId id) {
    BeginSectionRaw(id, sizeof(T));
    return SectionSink<T>(this);
  }

  // Closes the open section: zero-pads its final block and records the
  // directory entry.
  void EndSection();

  // Writes the meta region (directory + per-payload-block CRC table)
  // and the footer, then closes the file and returns its final status.
  // Call exactly once, after the last EndSection.
  util::Status Finish();

  // First I/O error of the underlying file (sticky).
  util::Status status() const { return file_->status(); }

 private:
  void BeginSectionRaw(SectionId id, std::size_t record_size);
  void AppendRaw(const void* data, std::size_t n);
  // Flushes buf_ as the next block (zero-padding the tail); payload
  // blocks record their CRC in the table.
  void FlushBlock(bool track_crc);

  io::IoContext* context_;
  std::unique_ptr<io::BlockFile> file_;
  std::vector<unsigned char> buf_;
  std::size_t fill_ = 0;
  std::uint64_t next_block_ = 0;
  std::optional<ArtifactSectionEntry> open_section_;
  std::vector<ArtifactSectionEntry> sections_;
  std::vector<std::uint32_t> block_crcs_;  // payload blocks, in order
  bool finished_ = false;
};

// Streaming CRC-verified reader of the node→SCC section, in node order.
// Obtained from ArtifactReader::OpenNodeSccScan; must not outlive its
// reader. Sequential block reads with read-ahead; a checksum mismatch
// or short read parks kCorruption and ends the stream (error-as-EOF,
// check status()).
class SccMapScanner {
 public:
  // Appends up to `max` entries into `out`; returns the count (0 at end
  // of section or on a parked error).
  std::size_t NextBatch(graph::SccEntry* out, std::size_t max);
  bool Next(graph::SccEntry* entry);

  util::Status status() const { return status_; }

  // Model block reads this scanner has issued (for the sublinearity
  // assertions: one batch sweep costs at most the section's blocks).
  std::uint64_t blocks_read() const { return blocks_read_; }

 private:
  friend class ArtifactReader;
  SccMapScanner(io::IoContext* context, const std::string& path,
                const ArtifactSectionEntry& section,
                const std::vector<std::uint32_t>* block_crcs);

  // Loads the next payload block into block_; false at end/error.
  bool RefillBlock();

  std::unique_ptr<io::BlockFile> file_;
  ArtifactSectionEntry section_;
  const std::vector<std::uint32_t>* block_crcs_;  // owned by the reader
  std::vector<unsigned char> block_;
  std::size_t block_pos_ = 0;
  std::size_t block_payload_ = 0;  // valid payload bytes in block_
  std::uint64_t next_block_;       // absolute next block to read
  std::uint64_t payload_left_;     // section payload bytes not yet staged
  std::uint64_t blocks_read_ = 0;
  util::Status status_;
};

class ArtifactReader {
 public:
  // Opens and fully validates `path`, loading the resident sections.
  // See the error contract above.
  static util::Result<ArtifactReader> Open(io::IoContext* context,
                                           const std::string& path);

  ArtifactReader(ArtifactReader&&) = default;
  ArtifactReader& operator=(ArtifactReader&&) = default;

  const ArtifactSummary& summary() const { return summary_; }
  // Monotonic data version from the preamble (0 = initial build; the
  // dynamic updater bumps it on every published rewrite).
  std::uint64_t data_version() const { return data_version_; }
  // Resident interval labels over the condensation DAG.
  const app::IntervalLabels& labels() const { return labels_; }
  std::uint64_t num_sccs() const { return scc_sizes_.size(); }
  std::uint64_t scc_size(graph::SccId scc) const;

  // Geometry of the on-disk node→SCC map (first_block / payload_bytes /
  // record_count) — the tests' sublinearity bound.
  const ArtifactSectionEntry& node_scc_section() const {
    return node_scc_section_;
  }

  // Fresh sequential scanner over the node→SCC map. Thread-safe to call
  // concurrently; each scanner has its own file handle.
  SccMapScanner OpenNodeSccScan() const;

  const std::string& path() const { return path_; }

 private:
  ArtifactReader() = default;

  io::IoContext* context_ = nullptr;
  std::string path_;
  std::uint64_t data_version_ = 0;
  ArtifactSummary summary_{};
  app::IntervalLabels labels_;
  std::vector<std::uint64_t> scc_sizes_;
  ArtifactSectionEntry node_scc_section_{};
  std::vector<std::uint32_t> block_crcs_;  // payload blocks, in order
};

// Reads and validates ONLY the preamble block of the artifact at
// `path` and returns its data version — the one-block poll a serving
// process issues at batch boundaries to notice a published update
// without paying a full Open. Same error contract as Open (bad
// magic/CRC → kCorruption, unsupported version/block size →
// kInvalidArgument, device errors keep their errno codes).
util::Result<std::uint64_t> PeekArtifactVersion(io::IoContext* context,
                                                const std::string& path);

}  // namespace extscc::serve

#endif  // EXTSCC_SERVE_ARTIFACT_H_
