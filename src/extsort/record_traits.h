// Normalized sort keys for fixed-width record types.
//
// Every hot comparator in the system orders records by a tuple of
// unsigned fields compared most-significant first — (src, dst),
// (dst, src), (node, scc), plain node ids. Each such order can be
// *normalized*: packed into one unsigned integer whose natural `<` is
// exactly the comparator's order (byte-lexicographic over the packed
// big-endian field bytes). A normalized key buys two things:
//
//  1. Run formation can LSD-radix-sort the key bytes (radix_sort.h)
//     instead of calling std::stable_sort's comparator O(n log n)
//     times — the dominant CPU cost of every external sort now that
//     merging is the fast path.
//  2. The comparators themselves become a single integer compare
//     (one subtraction instead of two data-dependent branches), which
//     also shortens the loser tree's per-record dependency chain.
//
// A comparator opts in by exposing a static `KeyOf(record)` returning
// an unsigned integer, with the contract
//
//     less(a, b)  ==  KeyOf(a) < KeyOf(b)      (for all a, b)
//
// i.e. key order IS the comparator order — not merely a prefix of it.
// Orders that ignore trailing record fields (DegreeEntryByNode orders
// by node only) satisfy the contract with a partial key as long as the
// comparator ignores those fields too; stable sorting then preserves
// the arrival order of key-equal records exactly like std::stable_sort.
//
// RecordKeyTraits<Less, T> is the vocabulary consumed by the sorter:
// the primary template auto-detects a nested `Less::KeyOf`; orders
// whose comparator type cannot be modified can specialize the trait
// instead. `RadixSortable<Less, T>` gates the radix path; everything
// else falls back to std::stable_sort with the comparator.
#ifndef EXTSCC_EXTSORT_RECORD_TRAITS_H_
#define EXTSCC_EXTSORT_RECORD_TRAITS_H_

#include <concepts>
#include <cstdint>
#include <type_traits>

namespace extscc::extsort {

// Detects `Less::KeyOf(const T&) -> unsigned integral`.
template <typename Less, typename T>
concept HasKeyOfMember = requires(const T& record) {
  { Less::KeyOf(record) } -> std::unsigned_integral;
};

// The trait the sorter consumes. Specialize for comparator types that
// cannot carry a KeyOf member themselves; the primary template forwards
// to the comparator's own static KeyOf when it has one.
template <typename Less, typename T>
struct RecordKeyTraits {
  static constexpr bool has_key = HasKeyOfMember<Less, T>;

  static constexpr auto KeyOf(const T& record)
    requires HasKeyOfMember<Less, T>
  {
    return Less::KeyOf(record);
  }
};

// True when run formation may radix-sort (T, Less) on the normalized
// key instead of comparison-sorting.
template <typename Less, typename T>
concept RadixSortable =
    std::is_trivially_copyable_v<T> && RecordKeyTraits<Less, T>::has_key &&
    requires(const T& record) {
      { RecordKeyTraits<Less, T>::KeyOf(record) } -> std::unsigned_integral;
    };

// Key type of a radix-sortable pair.
template <typename Less, typename T>
  requires RadixSortable<Less, T>
using RecordKey =
    decltype(RecordKeyTraits<Less, T>::KeyOf(std::declval<const T&>()));

// Packs a (major, minor) u32 pair into the u64 whose natural order is
// the lexicographic (major, minor) order — the normalization used by
// every two-field record order (edges both ways, SCC entries).
constexpr std::uint64_t PackKey64(std::uint32_t major, std::uint32_t minor) {
  return (static_cast<std::uint64_t>(major) << 32) |
         static_cast<std::uint64_t>(minor);
}

}  // namespace extscc::extsort

#endif  // EXTSCC_EXTSORT_RECORD_TRAITS_H_
