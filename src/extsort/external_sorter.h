// External merge sort in the Aggarwal-Vitter model.
//
// Run formation fills an in-memory buffer of at most
// memory.MaxRecordsInMemory(sizeof(T)) records with batched block reads,
// sorts it and spills a run; merging uses a tournament loser tree whose
// fan-in is memory.MergeFanIn(B) (one block buffer per run + one output
// buffer), with as many merge passes as the fan-in requires. Total cost
// is the model's sort(n) = Θ(n/B · log_{M/B}(n/B)) — the paper's
// Algorithms 3–5 are built exclusively from these sorts plus sequential
// scans.
//
// Run formation is stable, but the merge breaks key ties in arbitrary
// run order: the callers never rely on stability, and the comparators
// used by the paper's algorithms are total orders on the whole record
// (equal keys mean identical records), so tie order is unobservable.
// Keeping the tie-break out of the merge shortens the loser tree's
// per-record dependency chain by a comparator evaluation.
//
// When dedup is requested it is applied at every stage — inside each
// in-memory run, during every merge pass, and on the final output — so
// intermediate runs shrink instead of carrying duplicates through each
// merge level (the lazy parallel-edge elimination of §VII benefits most:
// contracted levels produce heavy duplication).
#ifndef EXTSCC_EXTSORT_EXTERNAL_SORTER_H_
#define EXTSCC_EXTSORT_EXTERNAL_SORTER_H_

#include <algorithm>
#include <bit>
#include <cstdint>
#include <cstring>
#include <memory>
#include <string>
#include <type_traits>
#include <utility>
#include <vector>

#include "io/io_context.h"
#include "io/record_stream.h"
#include "util/logging.h"

namespace extscc::extsort {

// Diagnostics exposed for tests and the contraction profiler.
struct SortRunInfo {
  std::uint64_t num_records = 0;
  std::uint64_t num_runs = 0;
  std::uint64_t merge_passes = 0;
};

namespace internal {

// Tournament loser tree over k peekable readers. Implicit layout: the
// positions 1..k-1 are internal nodes storing the *loser* of the match
// played there, positions k..2k-1 are the leaves (player i at k+i), and
// the overall winner is cached in winner_. Popping the winner replays
// exactly one leaf-to-root path — O(log k) comparisons per record,
// instead of the O(k) linear scan this structure replaces. An exhausted
// run becomes a +infinity sentinel (dead flag) and sinks down the tree
// on the next replay, which restructures the tournament without a full
// rebuild.
//
// Two micro-architectural choices matter on the per-record path:
//  - Each node carries its player's current *key* next to the index, so
//    a match is one contiguous node load plus register arithmetic —
//    never a dependent chase through index -> key array -> reader.
//  - The replay swap is branch-free (byte-masked XOR): merge
//    comparisons are data-dependent coin flips, and a conditional swap
//    would eat a branch misprediction per tree level.
template <typename T, typename Less>
class LoserTree {
  static_assert(std::is_trivially_copyable_v<T>,
                "LoserTree players are value-swapped");

 public:
  LoserTree(std::vector<std::unique_ptr<io::PeekableReader<T>>> inputs,
            Less less)
      : inputs_(std::move(inputs)),
        less_(less),
        k_(static_cast<int>(inputs_.size())) {
    if (k_ == 0) return;
    // Parallel leaf-state arrays (key / run index / exhausted) rather
    // than an array of structs: the replay loop then works on scalar
    // locals the compiler keeps in registers.
    std::vector<T> lkey(static_cast<std::size_t>(k_));
    std::vector<std::int32_t> lidx(static_cast<std::size_t>(k_));
    std::vector<std::uint8_t> ldead(static_cast<std::size_t>(k_));
    for (int i = 0; i < k_; ++i) {
      lidx[i] = i;
      if (inputs_[i]->has_value()) {
        lkey[i] = inputs_[i]->Peek();
        ldead[i] = 0;
      } else {
        lkey[i] = T{};
        ldead[i] = 1;
      }
    }
    const std::size_t nodes = static_cast<std::size_t>(std::max(k_, 1));
    node_key_.assign(nodes, T{});
    node_idx_.assign(nodes, 0);
    node_dead_.assign(nodes, 1);
    const int w = k_ == 1 ? 0 : Build(1, lkey, lidx, ldead);
    wkey_ = lkey[w];
    widx_ = lidx[w];
    wdead_ = ldead[w] != 0;
  }

  // Returns false when all inputs are exhausted.
  bool Next(T* out) {
    if (wdead_) return false;
    *out = wkey_;
    // Advance the winning run and replay its leaf's path: the stored
    // losers along it are exactly the players the new value has not yet
    // been compared against. The loop body is branch-free — merge
    // comparisons are data-dependent coin flips, so a conditional swap
    // would eat a branch misprediction per tree level — and each node's
    // key lives next to its index, so a match is independent loads plus
    // register selects, never a chase through an index indirection.
    // Both comparator directions are evaluated unconditionally
    // (comparators here are cheap POD field compares; a dead player's
    // stale key feeds a comparison masked out by the dead bits).
    const int w = widx_;
    if (!inputs_[w]->AdvanceInto(&wkey_)) wdead_ = true;
    T ck = wkey_;
    std::int32_t ci = widx_;
    std::int32_t cd = wdead_ ? 1 : 0;
    T* const nkey = node_key_.data();
    std::int32_t* const nidx = node_idx_.data();
    std::uint8_t* const ndead = node_dead_.data();
    for (int pos = (w + k_) / 2; pos >= 1; pos /= 2) {
      const T ok = nkey[pos];
      const std::int32_t oi = nidx[pos];
      const std::int32_t od = ndead[pos];
      // `other` (the stored loser) beats the climbing player: smaller
      // key (ties resolve to the climber — see the header comment on
      // merge stability), or the climber is exhausted; dead players
      // beat no one.
      const bool ab = less_(ok, ck);
      const bool beats = static_cast<bool>((od == 0) & ((cd != 0) | ab));
      // XOR-mask swaps: the selects must stay arithmetic — the compiler
      // re-materializes ternaries on a computed bool into the very
      // mispredicting branch this loop exists to avoid.
      const std::int32_t m32 = -static_cast<std::int32_t>(beats);
      const std::int32_t di = (oi ^ ci) & m32;
      const std::int32_t dd = (od ^ cd) & m32;
      nidx[pos] = oi ^ di;
      ndead[pos] = static_cast<std::uint8_t>(od ^ dd);
      ci ^= di;
      cd ^= dd;
      const T nk = MaskSelect(beats, ok, ck);  // node keeps the loser
      ck = MaskSelect(beats, ck, ok);          // climber takes the winner
      nkey[pos] = nk;
    }
    wkey_ = ck;
    widx_ = ci;
    wdead_ = cd != 0;
    return true;
  }

 private:
  // Integer type of T's exact size, when one exists — the key select is
  // then a bit-cast XOR mask the compiler cannot turn back into a
  // branch. Covers every hot record type (NodeId, Edge, SccEntry, u64).
  static constexpr bool kHasWordForm =
      sizeof(T) == 1 || sizeof(T) == 2 || sizeof(T) == 4 || sizeof(T) == 8;

  // Returns `swap ? b : a`, branchlessly when T is word-sized.
  static T MaskSelect(bool swap, const T& a, const T& b) {
    if constexpr (kHasWordForm) {
      using U = std::conditional_t<
          sizeof(T) == 1, std::uint8_t,
          std::conditional_t<sizeof(T) == 2, std::uint16_t,
                             std::conditional_t<sizeof(T) == 4, std::uint32_t,
                                                std::uint64_t>>>;
      const U ua = std::bit_cast<U>(a);
      const U ub = std::bit_cast<U>(b);
      const U m = static_cast<U>(-static_cast<U>(swap));
      return std::bit_cast<T>(static_cast<U>(ua ^ ((ua ^ ub) & m)));
    } else {
      return swap ? b : a;  // 12-byte+ records: rare, let it branch
    }
  }
  // Plays the initial matches bottom-up over the leaf arrays; stores
  // losers in the internal nodes, returns the winning leaf. Positions
  // >= k_ are leaves, so the recursion never reads an unset node.
  int Build(int pos, const std::vector<T>& lkey,
            const std::vector<std::int32_t>& lidx,
            const std::vector<std::uint8_t>& ldead) {
    if (pos >= k_) return pos - k_;
    const int a = Build(2 * pos, lkey, lidx, ldead);
    const int b = Build(2 * pos + 1, lkey, lidx, ldead);
    // b beats a: alive, and (a dead, or strictly smaller key).
    const bool b_beats =
        !ldead[b] && (ldead[a] || less_(lkey[b], lkey[a]));
    const int winner = b_beats ? b : a;
    const int loser = b_beats ? a : b;
    node_key_[pos] = lkey[loser];
    node_idx_[pos] = lidx[loser];
    node_dead_[pos] = ldead[loser];
    return winner;
  }

  std::vector<std::unique_ptr<io::PeekableReader<T>>> inputs_;
  Less less_;
  int k_ = 0;
  // Internal nodes 1..k-1 as parallel arrays (loser's key / run / dead).
  std::vector<T> node_key_;
  std::vector<std::int32_t> node_idx_;
  std::vector<std::uint8_t> node_dead_;
  // The cached tournament winner.
  T wkey_{};
  std::int32_t widx_ = 0;
  bool wdead_ = true;
};

// Drains `tree` into `writer`, collapsing equal-under-Less neighbours
// to one when `dedup` (inputs are individually deduped runs, so equal
// records are adjacent in the merged order). Writes land directly in
// the writer's block buffer — no staging block, so a merge's resident
// memory stays at one block per input run plus the output block and
// MergeFanIn can hand every spare block to fan-in.
template <typename T, typename Less>
void DrainMerge(LoserTree<T, Less>* tree, io::RecordWriter<T>* writer,
                Less less, bool dedup) {
  T record;
  if (dedup) {
    bool have_prev = false;
    T prev{};
    while (tree->Next(&record)) {
      if (have_prev && !less(prev, record) && !less(record, prev)) continue;
      prev = record;
      have_prev = true;
      writer->Append(record);
    }
  } else {
    while (tree->Next(&record)) writer->Append(record);
  }
}

}  // namespace internal

// One-shot external sort of `input_path` into `output_path`.
// If `dedup` is true, records equal under Less (neither compares before
// the other) are collapsed to one — used for V_{i+1} dedup (Alg. 3 l.10)
// and the Op-mode lazy parallel-edge elimination (§VII).
template <typename T, typename Less>
SortRunInfo SortFile(io::IoContext* context, const std::string& input_path,
                     const std::string& output_path, Less less,
                     bool dedup = false) {
  SortRunInfo info;
  // --- Run formation -------------------------------------------------
  // Batched block reads fill the run buffer; each run is sorted and, when
  // requested, deduped before it is spilled, so no duplicate ever leaves
  // the first level.
  const std::uint64_t run_capacity =
      context->memory().MaxRecordsInMemory(sizeof(T));
  std::vector<std::string> runs;
  {
    io::RecordReader<T> reader(context, input_path);
    info.num_records = reader.num_records();
    const std::size_t capacity = static_cast<std::size_t>(
        std::min<std::uint64_t>(run_capacity, reader.num_records()));
    std::vector<T> buffer(capacity);
    std::size_t got;
    while (capacity > 0 &&
           (got = reader.NextBatch(buffer.data(), capacity)) > 0) {
      std::stable_sort(buffer.begin(), buffer.begin() + got, less);
      auto end = buffer.begin() + static_cast<std::ptrdiff_t>(got);
      if (dedup) {
        end = std::unique(buffer.begin(), end, [&less](const T& a,
                                                       const T& b) {
          return !less(a, b) && !less(b, a);
        });
      }
      const std::string run_path = context->NewTempPath("sortrun");
      io::RecordWriter<T> writer(context, run_path);
      writer.AppendBatch(buffer.data(),
                         static_cast<std::size_t>(end - buffer.begin()));
      writer.Finish();
      runs.push_back(run_path);
    }
  }
  info.num_runs = runs.size();

  // --- Merge passes ---------------------------------------------------
  const std::uint64_t fan_in =
      context->memory().MergeFanIn(context->block_size());
  while (runs.size() > 1) {
    ++info.merge_passes;
    std::vector<std::string> next_runs;
    for (std::size_t group = 0; group < runs.size(); group += fan_in) {
      const std::size_t end =
          std::min(runs.size(), group + static_cast<std::size_t>(fan_in));
      std::vector<std::unique_ptr<io::PeekableReader<T>>> inputs;
      inputs.reserve(end - group);
      for (std::size_t i = group; i < end; ++i) {
        inputs.push_back(
            std::make_unique<io::PeekableReader<T>>(context, runs[i]));
      }
      const bool last_merge = group == 0 && end == runs.size();
      const std::string out_path =
          last_merge ? output_path : context->NewTempPath("mergerun");
      internal::LoserTree<T, Less> tree(std::move(inputs), less);
      io::RecordWriter<T> writer(context, out_path);
      internal::DrainMerge(&tree, &writer, less, dedup);
      writer.Finish();
      next_runs.push_back(out_path);
      for (std::size_t i = group; i < end; ++i) {
        context->temp_files().Remove(runs[i]);
      }
    }
    runs = std::move(next_runs);
    if (runs.size() == 1 && runs[0] == output_path) {
      return info;
    }
  }

  if (runs.empty()) {
    io::RecordWriter<T> writer(context, output_path);
    writer.Finish();
    return info;
  }
  // Exactly one run straight out of formation: it is already sorted (and
  // already deduped when requested, since a run is one in-memory buffer),
  // so rename it into place instead of paying a full read+write scan.
  // Fall back to a streamed copy if the rename crosses filesystems.
  if (!context->temp_files().Promote(runs[0], output_path)) {
    io::CopyAllRecords<T>(context, runs[0], output_path);
    context->temp_files().Remove(runs[0]);
  }
  return info;
}

// Accumulating variant: Add() records, then FinishInto() sorts them to a
// file. Spills runs as the budget fills, so it never holds more than the
// budget in memory.
template <typename T, typename Less>
class SortingWriter {
 public:
  SortingWriter(io::IoContext* context, Less less, bool dedup = false)
      : context_(context),
        less_(less),
        dedup_(dedup),
        staging_path_(context->NewTempPath("sortstage")),
        staging_(std::make_unique<io::RecordWriter<T>>(context,
                                                       staging_path_)) {}

  void Add(const T& record) { staging_->Append(record); }

  SortRunInfo FinishInto(const std::string& output_path) {
    staging_->Finish();
    SortRunInfo info =
        SortFile<T, Less>(context_, staging_path_, output_path, less_, dedup_);
    context_->temp_files().Remove(staging_path_);
    return info;
  }

 private:
  io::IoContext* context_;
  Less less_;
  bool dedup_;
  std::string staging_path_;
  std::unique_ptr<io::RecordWriter<T>> staging_;
};

// Returns true iff `path` is sorted (and strictly sorted when
// `strictly` — i.e. no duplicates under the order). Test helper.
template <typename T, typename Less>
bool IsFileSorted(io::IoContext* context, const std::string& path, Less less,
                  bool strictly = false) {
  io::RecordReader<T> reader(context, path);
  T prev{};
  T cur;
  bool have_prev = false;
  while (reader.Next(&cur)) {
    if (have_prev) {
      if (less(cur, prev)) return false;
      if (strictly && !less(prev, cur)) return false;
    }
    prev = cur;
    have_prev = true;
  }
  return true;
}

}  // namespace extscc::extsort

#endif  // EXTSCC_EXTSORT_EXTERNAL_SORTER_H_
