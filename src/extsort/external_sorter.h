// External merge sort in the Aggarwal-Vitter model.
//
// Run formation fills an in-memory buffer of at most
// memory.MaxRecordsInMemory(sizeof(T)) records with batched block reads,
// sorts it and spills a run; merging uses a tournament loser tree whose
// fan-in is memory.MergeFanIn(B) (one block buffer per run + one output
// buffer), with as many merge passes as the fan-in requires. Total cost
// is the model's sort(n) = Θ(n/B · log_{M/B}(n/B)) — the paper's
// Algorithms 3–5 are built exclusively from these sorts plus sequential
// scans.
//
// Run formation is stable, but the merge breaks key ties in arbitrary
// run order: the callers never rely on stability, and the comparators
// used by the paper's algorithms are total orders on the whole record
// (equal keys mean identical records), so tie order is unobservable.
// Keeping the tie-break out of the merge shortens the loser tree's
// per-record dependency chain by a comparator evaluation.
//
// When dedup is requested it is applied at every stage — inside each
// in-memory run, during every merge pass, and on the final output — so
// intermediate runs shrink instead of carrying duplicates through each
// merge level (the lazy parallel-edge elimination of §VII benefits most:
// contracted levels produce heavy duplication).
//
// Two entry points share the machinery:
//  - SortFile(input, output): materializes the sorted stream in a file.
//  - SortInto(input, sink): the final merge pass (or the single
//    in-memory run) drains straight into a RecordSink (record_sink.h),
//    fusing "sort, then one sequential scan" stages into one pipeline
//    and deleting the write+read of the would-be intermediate file.
// SortingWriter is the accumulating variant: Add() buffers records and
// spills sorted runs directly from the add buffer (no staging file);
// FinishInto() targets a sink or, as sugar, a path.
#ifndef EXTSCC_EXTSORT_EXTERNAL_SORTER_H_
#define EXTSCC_EXTSORT_EXTERNAL_SORTER_H_

#include <algorithm>
#include <bit>
#include <cstdint>
#include <cstring>
#include <memory>
#include <optional>
#include <string>
#include <type_traits>
#include <utility>
#include <vector>

#include "extsort/radix_sort.h"
#include "extsort/record_sink.h"
#include "extsort/run_pipeline.h"
#include "io/io_context.h"
#include "io/record_stream.h"
#include "util/logging.h"
#include "util/status.h"

namespace extscc::extsort {

// SortRunInfo (diagnostics) lives in run_pipeline.h with the
// run-formation internals.

namespace internal {

// Tournament loser tree over k peekable readers. Implicit layout: the
// positions 1..k-1 are internal nodes storing the *loser* of the match
// played there, positions k..2k-1 are the leaves (player i at k+i), and
// the overall winner is cached in winner_. Popping the winner replays
// exactly one leaf-to-root path — O(log k) comparisons per record,
// instead of the O(k) linear scan this structure replaces. An exhausted
// run becomes a +infinity sentinel (dead flag) and sinks down the tree
// on the next replay, which restructures the tournament without a full
// rebuild.
//
// Two micro-architectural choices matter on the per-record path:
//  - Each node carries its player's current *key* next to the index, so
//    a match is one contiguous node load plus register arithmetic —
//    never a dependent chase through index -> key array -> reader.
//  - The replay swap is branch-free (byte-masked XOR): merge
//    comparisons are data-dependent coin flips, and a conditional swap
//    would eat a branch misprediction per tree level.
template <typename T, typename Less>
class LoserTree {
  static_assert(std::is_trivially_copyable_v<T>,
                "LoserTree players are value-swapped");

 public:
  LoserTree(std::vector<std::unique_ptr<io::PeekableReader<T>>> inputs,
            Less less)
      : inputs_(std::move(inputs)),
        less_(less),
        k_(static_cast<int>(inputs_.size())) {
    if (k_ == 0) return;
    // Parallel leaf-state arrays (key / run index / exhausted) rather
    // than an array of structs: the replay loop then works on scalar
    // locals the compiler keeps in registers.
    std::vector<T> lkey(static_cast<std::size_t>(k_));
    std::vector<std::int32_t> lidx(static_cast<std::size_t>(k_));
    std::vector<std::uint8_t> ldead(static_cast<std::size_t>(k_));
    for (int i = 0; i < k_; ++i) {
      lidx[i] = i;
      if (inputs_[i]->has_value()) {
        lkey[i] = inputs_[i]->Peek();
        ldead[i] = 0;
      } else {
        lkey[i] = T{};
        ldead[i] = 1;
      }
    }
    const std::size_t nodes = static_cast<std::size_t>(std::max(k_, 1));
    node_key_.assign(nodes, T{});
    node_idx_.assign(nodes, 0);
    node_dead_.assign(nodes, 1);
    const int w = k_ == 1 ? 0 : Build(1, lkey, lidx, ldead);
    wkey_ = lkey[w];
    widx_ = lidx[w];
    wdead_ = ldead[w] != 0;
  }

  // Returns false when all inputs are exhausted.
  bool Next(T* out) {
    if (wdead_) return false;
    *out = wkey_;
    // Advance the winning run and replay its leaf's path: the stored
    // losers along it are exactly the players the new value has not yet
    // been compared against. The loop body is branch-free — merge
    // comparisons are data-dependent coin flips, so a conditional swap
    // would eat a branch misprediction per tree level — and each node's
    // key lives next to its index, so a match is independent loads plus
    // register selects, never a chase through an index indirection.
    // Both comparator directions are evaluated unconditionally
    // (comparators here are cheap POD field compares; a dead player's
    // stale key feeds a comparison masked out by the dead bits).
    const int w = widx_;
    if (!inputs_[w]->AdvanceInto(&wkey_)) wdead_ = true;
    T ck = wkey_;
    std::int32_t ci = widx_;
    std::int32_t cd = wdead_ ? 1 : 0;
    T* const nkey = node_key_.data();
    std::int32_t* const nidx = node_idx_.data();
    std::uint8_t* const ndead = node_dead_.data();
    for (int pos = (w + k_) / 2; pos >= 1; pos /= 2) {
      const T ok = nkey[pos];
      const std::int32_t oi = nidx[pos];
      const std::int32_t od = ndead[pos];
      // `other` (the stored loser) beats the climbing player: smaller
      // key (ties resolve to the climber — see the header comment on
      // merge stability), or the climber is exhausted; dead players
      // beat no one.
      const bool ab = less_(ok, ck);
      const bool beats = static_cast<bool>((od == 0) & ((cd != 0) | ab));
      // XOR-mask swaps: the selects must stay arithmetic — the compiler
      // re-materializes ternaries on a computed bool into the very
      // mispredicting branch this loop exists to avoid.
      const std::int32_t m32 = -static_cast<std::int32_t>(beats);
      const std::int32_t di = (oi ^ ci) & m32;
      const std::int32_t dd = (od ^ cd) & m32;
      nidx[pos] = oi ^ di;
      ndead[pos] = static_cast<std::uint8_t>(od ^ dd);
      ci ^= di;
      cd ^= dd;
      const T nk = MaskSelect(beats, ok, ck);  // node keeps the loser
      ck = MaskSelect(beats, ck, ok);          // climber takes the winner
      nkey[pos] = nk;
    }
    wkey_ = ck;
    widx_ = ci;
    wdead_ = cd != 0;
    return true;
  }

 private:
  // Integer type of T's exact size, when one exists — the key select is
  // then a bit-cast XOR mask the compiler cannot turn back into a
  // branch. Covers every hot record type (NodeId, Edge, SccEntry, u64).
  static constexpr bool kHasWordForm =
      sizeof(T) == 1 || sizeof(T) == 2 || sizeof(T) == 4 || sizeof(T) == 8;

  // Returns `swap ? b : a`, branchlessly when T is word-sized.
  static T MaskSelect(bool swap, const T& a, const T& b) {
    if constexpr (kHasWordForm) {
      using U = std::conditional_t<
          sizeof(T) == 1, std::uint8_t,
          std::conditional_t<sizeof(T) == 2, std::uint16_t,
                             std::conditional_t<sizeof(T) == 4, std::uint32_t,
                                                std::uint64_t>>>;
      const U ua = std::bit_cast<U>(a);
      const U ub = std::bit_cast<U>(b);
      const U m = static_cast<U>(-static_cast<U>(swap));
      return std::bit_cast<T>(static_cast<U>(ua ^ ((ua ^ ub) & m)));
    } else {
      return swap ? b : a;  // 12-byte+ records: rare, let it branch
    }
  }
  // Plays the initial matches bottom-up over the leaf arrays; stores
  // losers in the internal nodes, returns the winning leaf. Positions
  // >= k_ are leaves, so the recursion never reads an unset node.
  int Build(int pos, const std::vector<T>& lkey,
            const std::vector<std::int32_t>& lidx,
            const std::vector<std::uint8_t>& ldead) {
    if (pos >= k_) return pos - k_;
    const int a = Build(2 * pos, lkey, lidx, ldead);
    const int b = Build(2 * pos + 1, lkey, lidx, ldead);
    // b beats a: alive, and (a dead, or strictly smaller key).
    const bool b_beats =
        !ldead[b] && (ldead[a] || less_(lkey[b], lkey[a]));
    const int winner = b_beats ? b : a;
    const int loser = b_beats ? a : b;
    node_key_[pos] = lkey[loser];
    node_idx_[pos] = lidx[loser];
    node_dead_[pos] = ldead[loser];
    return winner;
  }

  std::vector<std::unique_ptr<io::PeekableReader<T>>> inputs_;
  Less less_;
  int k_ = 0;
  // Internal nodes 1..k-1 as parallel arrays (loser's key / run / dead).
  std::vector<T> node_key_;
  std::vector<std::int32_t> node_idx_;
  std::vector<std::uint8_t> node_dead_;
  // The cached tournament winner.
  T wkey_{};
  std::int32_t widx_ = 0;
  bool wdead_ = true;
};

// Drains `tree` into `sink` (any RecordSinkFor<T>, including a raw
// io::RecordWriter), collapsing equal-under-Less neighbours to one when
// `dedup` (inputs are individually deduped runs, so equal records are
// adjacent in the merged order). Records land directly in the sink —
// no staging block, so a merge's resident memory stays at one block per
// input run plus the sink's own buffering and MergeFanIn can hand every
// spare block to fan-in.
template <typename T, typename Less, RecordSinkFor<T> S>
void DrainMerge(LoserTree<T, Less>* tree, S* sink, Less less, bool dedup) {
  T record;
  if (dedup) {
    bool have_prev = false;
    T prev{};
    while (tree->Next(&record)) {
      if (have_prev && !less(prev, record) && !less(record, prev)) continue;
      prev = record;
      have_prev = true;
      sink->Append(record);
    }
  } else {
    while (tree->Next(&record)) sink->Append(record);
  }
}

// Run formation over a file. When the entire input fits one run buffer,
// the sorted records stay resident instead of being spilled — SortInto
// then feeds the sink from memory (zero extra I/O beyond the input
// scan) and SortFile writes them once, directly to its output.
template <typename T>
struct RunFormation {
  std::vector<std::string> runs;  // spilled run files, formation order
  std::vector<T> resident;        // the lone in-memory run, iff in_memory
  std::size_t resident_count = 0;
  bool in_memory = false;
};

template <typename T, typename Less>
RunFormation<T> FormRuns(io::IoContext* context,
                         const std::string& input_path, Less less, bool dedup,
                         SortRunInfo* info) {
  RunFormation<T> out;
  // Size the run buffer BEFORE the reader opens: the reader's optional
  // read-ahead ring (prefetch / io_threads) reserves budget, and sizing
  // after it would shrink every run — a geometry change that multiplies
  // runs and merge passes at tight budgets. Sized here, run geometry is
  // identical to the serial engine's; the ring overdraft is absorbed by
  // the clamped reservations downstream.
  const std::uint64_t full_capacity =
      context->memory().MaxRecordsInMemory(sizeof(T));
  io::RecordReader<T> reader(context, input_path);
  info->num_records = reader.num_records();

  // In-memory fast path: the whole input fits one run buffer, sorts
  // resident, and never spills — nothing to overlap, and bit-identical
  // to the serial engine regardless of sort_threads.
  if (info->num_records <= full_capacity) {
    const std::size_t capacity = static_cast<std::size_t>(info->num_records);
    std::vector<T> buffer(capacity);
    std::size_t got;
    if (capacity > 0 && (got = reader.NextBatch(buffer.data(), capacity)) > 0) {
      out.resident_count = SortDedupPrefix(buffer, got, less, dedup);
      out.resident = std::move(buffer);
      out.in_memory = true;
    }
    info->num_runs = out.in_memory ? 1 : 0;
    // A short read here (error-as-EOF) means the resident "run" is a
    // truncated view of the input — carry the reader's failure so the
    // caller does not pass it off as sorted data.
    info->status = reader.status();
    return out;
  }

  // Spilling path. With sort_threads the budget-sized run buffer is
  // split into a double-buffered pair of half-size buffers — the
  // producer fills one while the worker sorts and spills the other —
  // both Reserve()d for the formation's lifetime (the halves always
  // fit: full_capacity was derived from the same availability). Run
  // geometry at sort_threads=0 is exactly the serial engine's.
  const bool overlap = context->sort_threads() > 0 && full_capacity >= 4;
  const std::size_t capacity = static_cast<std::size_t>(
      overlap ? full_capacity / 2 : full_capacity);
  std::optional<io::ScopedReservation> active_hold;
  if (overlap) {
    active_hold.emplace(&context->memory(),
                        static_cast<std::uint64_t>(capacity) * sizeof(T),
                        /*clamp=*/true);
  }
  RunSpillPipeline<T, Less> pipeline(context, less, dedup,
                                     overlap ? capacity : 0);
  std::vector<T> buffer(capacity);
  std::size_t got;
  while ((got = reader.NextBatch(buffer.data(), capacity)) > 0) {
    buffer = pipeline.SubmitAndAcquire(std::move(buffer), got);
    // Recycled buffers keep their size (contents stale, about to be
    // overwritten); only the pipeline's pristine second buffer arrives
    // empty, so this value-initializes at most once per sort.
    if (buffer.size() < capacity) buffer.resize(capacity);
  }
  out.runs = pipeline.Finish();
  info->num_runs = out.runs.size();
  // Input truncation outranks a spill failure: a sort fed bad bytes is
  // wrong even if every run it did form spilled cleanly.
  info->status = reader.status();
  if (info->status.ok()) info->status = pipeline.status();
  return out;
}

// Reserves `blocks` block buffers from the budget for the duration of
// a merge, clamped to what is actually available (fan-in was computed
// from availability, so the clamp only engages when another component
// reserved in between — the merge then proceeds, physically bounded by
// its already-chosen fan-in).
inline io::ScopedReservation ReserveMergeBlocks(io::IoContext* context,
                                                std::size_t blocks) {
  return io::ScopedReservation(
      &context->memory(),
      static_cast<std::uint64_t>(blocks) * context->block_size(),
      /*clamp=*/true);
}

// Merges runs[begin, end) into a fresh scratch file with output
// failover: a persistent output failure (transients were already
// retried inside BlockFile) removes the partial output, quarantines its
// device, and replays the whole group merge to a fresh placement. The
// input runs are deliberately not consumed here — they are the replay
// source, and the caller releases them only after this returns OK — so
// a lost merge output costs one extra group merge, never lost data. On
// recovery the triggering error is absorbed from the context's latch
// (mirroring SpillRun); input-side read failures are not recoverable by
// any output placement (the run's bytes live on the failed device) and
// propagate as-is.
template <typename T, typename Less>
util::Status MergeGroupToFile(io::IoContext* context,
                              const std::vector<std::string>& runs,
                              std::size_t begin, std::size_t end, Less less,
                              bool dedup, const io::Placement& placement,
                              std::string* out_path) {
  io::TempFileManager& temp = context->temp_files();
  const std::size_t max_attempts = temp.devices().size();
  util::Status first_failure;
  for (std::size_t attempt = 0; attempt < max_attempts; ++attempt) {
    std::vector<std::unique_ptr<io::PeekableReader<T>>> inputs;
    // Borrowed views for post-drain status checks: the unique_ptrs move
    // into the tree, which stays in scope until after the checks.
    std::vector<io::PeekableReader<T>*> readers;
    inputs.reserve(end - begin);
    readers.reserve(end - begin);
    for (std::size_t i = begin; i < end; ++i) {
      inputs.push_back(
          std::make_unique<io::PeekableReader<T>>(context, runs[i]));
      readers.push_back(inputs.back().get());
    }
    // One block per input run plus the output writer's block — reserved
    // after the readers open so their optional prefetch rings claim
    // budget first (the clamp absorbs the difference).
    const auto blocks = ReserveMergeBlocks(context, end - begin + 1);
    const io::ScratchFile out = temp.NewFile("mergerun", placement);
    LoserTree<T, Less> tree(std::move(inputs), less);
    // Overlapped output: with io_threads the device write of block N
    // runs on the output device's worker while the tree selects the
    // records of block N+1.
    io::RecordWriter<T> writer(context, out.path, /*overlap_output=*/true);
    DrainMerge(&tree, &writer, less, dedup);
    writer.Finish();
    for (io::PeekableReader<T>* reader : readers) {
      if (!reader->status().ok()) {
        // A dead input looks exhausted to the tree (error-as-EOF), so
        // the output just written is silently truncated — discard it
        // and fail the merge rather than pass truncation off as data.
        temp.Remove(out.path);
        return reader->status();
      }
    }
    const util::Status status = writer.status();
    if (status.ok()) {
      if (!first_failure.ok()) {
        LOG_WARNING << "merge: recovered group output " << out.path
                    << " on a healthy device after: "
                    << first_failure.ToString();
        context->AbsorbIoError(first_failure);
      }
      *out_path = out.path;
      return status;
    }
    // The latch keeps the FIRST error (first-wins), so the absorb above
    // targets first_failure no matter how many devices failed since.
    if (first_failure.ok()) first_failure = status;
    temp.Remove(out.path);
    temp.Quarantine(out.device);
  }
  return first_failure;
}

// Merges `runs` (consuming the files) into `sink`. Intermediate passes
// write temp files as before; the final pass — the only one whose
// output the caller sees — drains into the sink, so a fused consumer
// never pays for a materialized result. A lone run is streamed into the
// sink: that read is the fused stage's one scan of its sorted data.
// Every merge holds a budget reservation for its block buffers, so a
// fused sink that sizes its own structures mid-drain (a downstream
// SortingWriter) sees the honest remainder.
//
// Errors: intermediate-pass output failures fail over per group (see
// MergeGroupToFile); an unrecoverable failure returns early with the
// surviving runs left to TempFileManager session cleanup. The final
// pass cannot replay — the sink has already consumed records — so an
// input failure there propagates; sink-side write failures are the
// caller's to check (FileSink::status()).
template <typename T, typename Less, RecordSinkFor<T> S>
util::Status MergeRunsInto(io::IoContext* context,
                           std::vector<std::string> runs, S& sink, Less less,
                           bool dedup, SortRunInfo* info) {
  if (runs.empty()) return util::Status::Ok();
  const std::size_t fan_in = static_cast<std::size_t>(
      context->memory().MergeFanIn(context->block_size()));
  // Spread placement promises distinct devices per merge group only
  // when the device count covers the fan-in; say so (once per context)
  // instead of silently degrading to shared devices.
  io::MaybeWarnSpreadBelowFanIn(context->temp_files(),
                                std::min(fan_in, runs.size()));
  while (runs.size() > fan_in) {
    ++info->merge_passes;
    std::vector<std::string> next_runs;
    // This pass's outputs form the next pass's merge groups: output j
    // carries Placement::InGroup(pass group, j), so the kSpreadGroup
    // policy keeps any fan-in-sized window of them on distinct devices
    // — the same invariant run formation establishes for pass one.
    const std::uint64_t pass_group = context->temp_files().NextGroupId();
    for (std::size_t group = 0; group < runs.size(); group += fan_in) {
      const std::size_t end = std::min(runs.size(), group + fan_in);
      std::string out_path;
      RETURN_IF_ERROR(MergeGroupToFile<T>(
          context, runs, group, end, less, dedup,
          io::Placement::InGroup(pass_group, next_runs.size()), &out_path));
      next_runs.push_back(std::move(out_path));
      // Released only after the group's output is safely on a healthy
      // device — until then these are the failover's replay source.
      for (std::size_t i = group; i < end; ++i) {
        context->temp_files().Remove(runs[i]);
      }
    }
    runs = std::move(next_runs);
  }
  if (runs.size() == 1) {
    // A single stream's block buffer is within the io layer's
    // unreserved per-stream convention; no merge reservation needed.
    util::Status streamed;
    SinkAppendAllRecords<T>(context, runs[0], sink, &streamed);
    RETURN_IF_ERROR(streamed);
    context->temp_files().Remove(runs[0]);
    return util::Status::Ok();
  }
  ++info->merge_passes;
  std::vector<std::unique_ptr<io::PeekableReader<T>>> inputs;
  std::vector<io::PeekableReader<T>*> readers;
  inputs.reserve(runs.size());
  readers.reserve(runs.size());
  for (const auto& run : runs) {
    inputs.push_back(std::make_unique<io::PeekableReader<T>>(context, run));
    readers.push_back(inputs.back().get());
  }
  // Reserved after the readers open — see the intermediate-pass note.
  const auto blocks = ReserveMergeBlocks(context, runs.size());
  LoserTree<T, Less> tree(std::move(inputs), less);
  DrainMerge(&tree, &sink, less, dedup);
  for (io::PeekableReader<T>* reader : readers) {
    RETURN_IF_ERROR(reader->status());
  }
  for (const auto& run : runs) context->temp_files().Remove(run);
  return util::Status::Ok();
}

}  // namespace internal

// Fused external sort: sorts `input_path` and drains the result into
// `sink` instead of a file. The consumer sees the records in sorted
// order exactly once, during the final merge pass (or straight from the
// run buffer when the input fits in memory), so the stage costs
// sort(n) minus a full write+read of the output versus SortFile + scan.
// If `dedup` is true, records equal under Less (neither compares before
// the other) are collapsed to one.
template <typename T, typename Less, RecordSinkFor<T> S>
SortRunInfo SortInto(io::IoContext* context, const std::string& input_path,
                     S& sink, Less less, bool dedup = false) {
  SortRunInfo info;
  auto formed = internal::FormRuns<T>(context, input_path, less, dedup, &info);
  if (!info.status.ok()) {
    // Dead formation: the runs on disk are an incomplete view of the
    // input, so drop them instead of merging truncation into a result.
    for (const auto& run : formed.runs) context->temp_files().Remove(run);
    return info;
  }
  if (formed.in_memory) {
    // Hold the resident run's bytes as a reservation while the sink
    // consumes it, so a downstream structure that sizes itself
    // mid-drain (a chained SortingWriter) sees the honest remainder.
    io::ScopedReservation resident_hold(&context->memory(),
                                        formed.resident.size() * sizeof(T),
                                        /*clamp=*/true);
    SinkAppendBatch<T>(sink, formed.resident.data(), formed.resident_count);
    return info;
  }
  info.status = internal::MergeRunsInto<T>(context, std::move(formed.runs),
                                           sink, less, dedup, &info);
  return info;
}

// One-shot external sort of `input_path` into `output_path` — the
// materializing adapter over the same run-formation/merge machinery
// (morally SortInto with a FileSink), kept as a first-class entry point
// because it preserves the file-only fast path: an input that fits in
// memory is written once, directly to the output, with no run file or
// re-scan (the old single-run rename-into-place, made stronger).
// If `dedup` is true, records equal under Less (neither compares before
// the other) are collapsed to one — used for V_{i+1} dedup (Alg. 3 l.10)
// and the Op-mode lazy parallel-edge elimination (§VII).
template <typename T, typename Less>
SortRunInfo SortFile(io::IoContext* context, const std::string& input_path,
                     const std::string& output_path, Less less,
                     bool dedup = false) {
  SortRunInfo info;
  auto formed = internal::FormRuns<T>(context, input_path, less, dedup, &info);
  if (!info.status.ok()) {
    for (const auto& run : formed.runs) context->temp_files().Remove(run);
    return info;
  }
  if (formed.in_memory) {
    io::RecordWriter<T> writer(context, output_path);
    writer.AppendBatch(formed.resident.data(), formed.resident_count);
    writer.Finish();
    info.status = writer.status();
    return info;
  }
  if (formed.runs.empty()) {
    io::RecordWriter<T> writer(context, output_path);
    writer.Finish();
    info.status = writer.status();
    return info;
  }
  // Spilled formation always yields >= 2 runs (one run that covers the
  // whole input takes the in-memory branch above), so this is a real
  // merge; MergeRunsInto still handles a lone run for other callers.
  FileSink<T> sink(context, output_path, /*overlap_output=*/true);
  info.status = internal::MergeRunsInto<T>(context, std::move(formed.runs),
                                           sink, less, dedup, &info);
  sink.Finish();
  // The output is the caller's named file, not relocatable scratch —
  // a sink-side failure propagates instead of failing over.
  if (info.status.ok()) info.status = sink.status();
  return info;
}

// Accumulating variant: Add() records, then FinishInto() sorts them into
// a sink or a file. Records buffer in memory up to a budget-derived run
// capacity and spill as sorted (optionally deduped) runs straight from
// the add buffer — there is no staging file, so an input that never
// overflows the buffer reaches a sink with zero I/O and a file with a
// single output write.
//
// Budget discipline: fused pipelines routinely keep two SortingWriters
// alive at once (an upstream sort draining into a consumer that feeds a
// downstream sort), so the add buffer is sized lazily — at the first
// Add(), from *half* of the budget still available — and actually
// Reserve()d from the MemoryBudget until FinishInto releases it (just
// before the final merge, whose fan-in then sees the freed budget).
// Reservations therefore serialize across pipeline stages: a downstream
// writer whose first record arrives while an upstream buffer is live
// sizes itself from the honest remainder, and the stacking that would
// oversubscribe M is bounded by the halving instead of hidden.
//
// With IoContextOptions::sort_threads > 0 the writer double-buffers:
// spills trade the full add buffer to a RunSpillPipeline worker (which
// sorts and spills it off-thread) for an equal-capacity empty buffer,
// so Add() keeps streaming while the previous run writes. The second
// buffer is reserved by the pipeline for the writer's lifetime, clamped
// — when the remaining budget cannot cover it the writer degrades to
// the serial spill with identical run geometry.
template <typename T, typename Less>
class SortingWriter {
 public:
  SortingWriter(io::IoContext* context, Less less, bool dedup = false)
      : context_(context), less_(less), dedup_(dedup) {}

  ~SortingWriter() {
    ReleaseBuffer();
    // A writer abandoned before FinishInto (error-path unwinding) must
    // not strand its spilled runs until IoContext teardown.
    if (pipeline_ != nullptr) {
      for (const auto& run : pipeline_->Finish()) {
        context_->temp_files().Remove(run);
      }
      pipeline_.reset();
    }
  }

  SortingWriter(const SortingWriter&) = delete;
  SortingWriter& operator=(const SortingWriter&) = delete;

  void Add(const T& record) {
    DCHECK(!finished_) << "Add after FinishInto";
    if (capacity_ == 0) ReserveBuffer();
    // Spill lazily, on the overflowing Add: an input of exactly one
    // buffer stays resident and never touches disk.
    if (buffer_.size() >= capacity_) Spill();
    buffer_.push_back(record);
    ++num_added_;
  }

  // Sorts everything added into `sink`. The final merge (or the
  // still-resident buffer) drains straight into the consumer.
  template <RecordSinkFor<T> S>
  SortRunInfo FinishInto(S& sink) {
    DCHECK(!finished_) << "FinishInto called twice";
    finished_ = true;
    SortRunInfo info;
    info.num_records = num_added_;
    if (!spilled_) {
      const std::size_t n =
          internal::SortDedupPrefix(buffer_, buffer_.size(), less_, dedup_);
      info.num_runs = buffer_.empty() ? 0 : 1;
      SinkAppendBatch<T>(sink, buffer_.data(), n);
      ReleaseBuffer();
      pipeline_.reset();
      return info;
    }
    if (!buffer_.empty()) Spill();
    ReleaseBuffer();
    std::vector<std::string> runs = pipeline_->Finish();
    const util::Status spilled = pipeline_->status();
    pipeline_.reset();  // joins the worker, releases the second buffer
    info.num_runs = runs.size();
    if (!spilled.ok()) {
      // An unrecovered spill lost records: the formed runs are an
      // incomplete view of what was Add()ed, so merging them would
      // launder truncation into a sorted result.
      for (const auto& run : runs) context_->temp_files().Remove(run);
      info.status = spilled;
      return info;
    }
    info.status = internal::MergeRunsInto<T>(context_, std::move(runs), sink,
                                             less_, dedup_, &info);
    return info;
  }

  // File sugar: FinishInto over a FileSink. A single-buffer input is one
  // sequential output write — no staging round trip.
  SortRunInfo FinishInto(const std::string& output_path) {
    FileSink<T> sink(context_, output_path, /*overlap_output=*/true);
    SortRunInfo info = FinishInto(sink);
    sink.Finish();
    if (info.status.ok()) info.status = sink.status();
    return info;
  }

 private:
  void ReserveBuffer() {
    // Half of the remaining budget, floored at two blocks' worth of
    // records: block granularity is the model's minimum useful unit
    // (the M >= 2B regime grants every active stream a block, and the
    // io layer's per-stream block buffers are likewise unreserved), and
    // without the floor a tight budget mostly claimed by a sibling
    // (Type-2 dictionary, merge blocks) would collapse this writer into
    // few-record runs that each cost a whole block write. The
    // reservation is clamped to what is actually left, so any overshoot
    // is bounded by ~2 blocks per live writer — never a CHECK-abort.
    capacity_ = static_cast<std::size_t>(std::max<std::uint64_t>(
        2 * io::RecordsPerBlock<T>(context_),
        context_->memory().MaxRecordsInMemory(sizeof(T)) / 2));
    reserved_bytes_ = context_->memory().ReserveUpTo(
        static_cast<std::uint64_t>(capacity_) * sizeof(T));
    // Allocate up front: push_back's geometric growth would otherwise
    // overshoot the reserved bytes by up to 2x.
    buffer_.reserve(capacity_);
    // The spill stage: serial inline at sort_threads=0; otherwise a
    // worker plus a second `capacity_` buffer the pipeline reserves
    // (clamped — a budget that cannot cover it degrades this writer to
    // the serial spill, with the same run geometry either way).
    pipeline_ = std::make_unique<internal::RunSpillPipeline<T, Less>>(
        context_, less_, dedup_, capacity_);
  }

  void Spill() {
    spilled_ = true;
    // Hoisted: as arguments, size() and the move-construction of the
    // by-value parameter would be indeterminately sequenced.
    const std::size_t n = buffer_.size();
    buffer_ = pipeline_->SubmitAndAcquire(std::move(buffer_), n);
    buffer_.clear();  // recycled contents are stale; capacity is kept
  }

  void ReleaseBuffer() {
    std::vector<T>().swap(buffer_);  // return the run buffer eagerly
    if (reserved_bytes_ > 0) {
      context_->memory().Release(reserved_bytes_);
      reserved_bytes_ = 0;
    }
  }

  io::IoContext* context_;
  Less less_;
  bool dedup_;
  std::size_t capacity_ = 0;  // sized (and reserved) at the first Add
  std::uint64_t reserved_bytes_ = 0;
  std::vector<T> buffer_;
  std::unique_ptr<internal::RunSpillPipeline<T, Less>> pipeline_;
  std::uint64_t num_added_ = 0;
  bool spilled_ = false;  // any run left the add buffer
  bool finished_ = false;
};

// Returns true iff `path` is sorted (and strictly sorted when
// `strictly` — i.e. no duplicates under the order). Test helper.
template <typename T, typename Less>
bool IsFileSorted(io::IoContext* context, const std::string& path, Less less,
                  bool strictly = false) {
  io::RecordReader<T> reader(context, path);
  T prev{};
  T cur;
  bool have_prev = false;
  while (reader.Next(&cur)) {
    if (have_prev) {
      if (less(cur, prev)) return false;
      if (strictly && !less(prev, cur)) return false;
    }
    prev = cur;
    have_prev = true;
  }
  return true;
}

}  // namespace extscc::extsort

#endif  // EXTSCC_EXTSORT_EXTERNAL_SORTER_H_
