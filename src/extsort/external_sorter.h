// External merge sort in the Aggarwal-Vitter model.
//
// Run formation fills an in-memory buffer of at most
// memory.MaxRecordsInMemory(sizeof(T)) records, sorts it and spills a run;
// merging uses a loser tree whose fan-in is memory.MergeFanIn(B)
// (one block buffer per run + one output buffer), with as many merge
// passes as the fan-in requires. Total cost is the model's
// sort(n) = Θ(n/B · log_{M/B}(n/B)) — the paper's Algorithms 3–5 are
// built exclusively from these sorts plus sequential scans.
//
// Sorting is stable ties are broken by run order, which the callers never
// rely on; comparators used by the paper's algorithms are total orders.
#ifndef EXTSCC_EXTSORT_EXTERNAL_SORTER_H_
#define EXTSCC_EXTSORT_EXTERNAL_SORTER_H_

#include <algorithm>
#include <memory>
#include <string>
#include <vector>

#include "io/io_context.h"
#include "io/record_stream.h"
#include "util/logging.h"

namespace extscc::extsort {

// Diagnostics exposed for tests and the contraction profiler.
struct SortRunInfo {
  std::uint64_t num_records = 0;
  std::uint64_t num_runs = 0;
  std::uint64_t merge_passes = 0;
};

namespace internal {

// Loser-tree k-way merge over peekable readers; pulls the minimum under
// Less on each Pop. A plain tournament over indices — O(log k) per record.
template <typename T, typename Less>
class LoserTree {
 public:
  LoserTree(std::vector<std::unique_ptr<io::PeekableReader<T>>> inputs,
            Less less)
      : inputs_(std::move(inputs)), less_(less) {}

  // Returns false when all inputs are exhausted.
  bool Next(T* out) {
    int best = -1;
    for (int i = 0; i < static_cast<int>(inputs_.size()); ++i) {
      if (!inputs_[i]->has_value()) continue;
      if (best < 0 || less_(inputs_[i]->Peek(), inputs_[best]->Peek())) {
        best = i;
      }
    }
    if (best < 0) return false;
    *out = inputs_[best]->Pop();
    return true;
  }

 private:
  std::vector<std::unique_ptr<io::PeekableReader<T>>> inputs_;
  Less less_;
};

}  // namespace internal

// One-shot external sort of `input_path` into `output_path`.
// If `dedup` is true, records equal under Less (neither compares before
// the other) are collapsed to one — used for V_{i+1} dedup (Alg. 3 l.10)
// and the Op-mode lazy parallel-edge elimination (§VII).
template <typename T, typename Less>
SortRunInfo SortFile(io::IoContext* context, const std::string& input_path,
                     const std::string& output_path, Less less,
                     bool dedup = false) {
  SortRunInfo info;
  // --- Run formation -------------------------------------------------
  const std::uint64_t run_capacity =
      context->memory().MaxRecordsInMemory(sizeof(T));
  std::vector<std::string> runs;
  {
    io::RecordReader<T> reader(context, input_path);
    std::vector<T> buffer;
    buffer.reserve(static_cast<std::size_t>(
        std::min<std::uint64_t>(run_capacity, reader.num_records() + 1)));
    T record;
    auto spill = [&]() {
      if (buffer.empty()) return;
      std::stable_sort(buffer.begin(), buffer.end(), less);
      const std::string run_path = context->NewTempPath("sortrun");
      io::RecordWriter<T> writer(context, run_path);
      for (const T& r : buffer) writer.Append(r);
      writer.Finish();
      runs.push_back(run_path);
      buffer.clear();
    };
    while (reader.Next(&record)) {
      ++info.num_records;
      buffer.push_back(record);
      if (buffer.size() >= run_capacity) spill();
    }
    spill();
  }
  info.num_runs = runs.size();

  // --- Merge passes ---------------------------------------------------
  const std::uint64_t fan_in =
      context->memory().MergeFanIn(context->block_size());
  while (runs.size() > 1) {
    ++info.merge_passes;
    std::vector<std::string> next_runs;
    for (std::size_t group = 0; group < runs.size(); group += fan_in) {
      const std::size_t end =
          std::min(runs.size(), group + static_cast<std::size_t>(fan_in));
      std::vector<std::unique_ptr<io::PeekableReader<T>>> inputs;
      inputs.reserve(end - group);
      for (std::size_t i = group; i < end; ++i) {
        inputs.push_back(
            std::make_unique<io::PeekableReader<T>>(context, runs[i]));
      }
      const bool last_merge = group == 0 && end == runs.size();
      const std::string out_path =
          last_merge ? output_path : context->NewTempPath("mergerun");
      internal::LoserTree<T, Less> tree(std::move(inputs), less);
      io::RecordWriter<T> writer(context, out_path);
      T record;
      if (dedup && last_merge) {
        bool have_prev = false;
        T prev{};
        while (tree.Next(&record)) {
          if (have_prev && !less(prev, record) && !less(record, prev)) {
            continue;
          }
          writer.Append(record);
          prev = record;
          have_prev = true;
        }
      } else {
        while (tree.Next(&record)) writer.Append(record);
      }
      writer.Finish();
      next_runs.push_back(out_path);
      for (std::size_t i = group; i < end; ++i) {
        context->temp_files().Remove(runs[i]);
      }
    }
    runs = std::move(next_runs);
    if (runs.size() == 1 && runs[0] == output_path) {
      return info;
    }
  }

  // 0 or 1 runs: copy (applying dedup) into output_path.
  io::RecordWriter<T> writer(context, output_path);
  if (!runs.empty()) {
    io::RecordReader<T> reader(context, runs[0]);
    T record;
    bool have_prev = false;
    T prev{};
    while (reader.Next(&record)) {
      if (dedup && have_prev && !less(prev, record) && !less(record, prev)) {
        continue;
      }
      writer.Append(record);
      prev = record;
      have_prev = true;
    }
    context->temp_files().Remove(runs[0]);
  }
  writer.Finish();
  return info;
}

// Accumulating variant: Add() records, then FinishInto() sorts them to a
// file. Spills runs as the budget fills, so it never holds more than the
// budget in memory.
template <typename T, typename Less>
class SortingWriter {
 public:
  SortingWriter(io::IoContext* context, Less less, bool dedup = false)
      : context_(context),
        less_(less),
        dedup_(dedup),
        staging_path_(context->NewTempPath("sortstage")),
        staging_(std::make_unique<io::RecordWriter<T>>(context,
                                                       staging_path_)) {}

  void Add(const T& record) { staging_->Append(record); }

  SortRunInfo FinishInto(const std::string& output_path) {
    staging_->Finish();
    SortRunInfo info =
        SortFile<T, Less>(context_, staging_path_, output_path, less_, dedup_);
    context_->temp_files().Remove(staging_path_);
    return info;
  }

 private:
  io::IoContext* context_;
  Less less_;
  bool dedup_;
  std::string staging_path_;
  std::unique_ptr<io::RecordWriter<T>> staging_;
};

// Returns true iff `path` is sorted (and strictly sorted when
// `strictly` — i.e. no duplicates under the order). Test helper.
template <typename T, typename Less>
bool IsFileSorted(io::IoContext* context, const std::string& path, Less less,
                  bool strictly = false) {
  io::RecordReader<T> reader(context, path);
  T prev{};
  T cur;
  bool have_prev = false;
  while (reader.Next(&cur)) {
    if (have_prev) {
      if (less(cur, prev)) return false;
      if (strictly && !less(prev, cur)) return false;
    }
    prev = cur;
    have_prev = true;
  }
  return true;
}

}  // namespace extscc::extsort

#endif  // EXTSCC_EXTSORT_EXTERNAL_SORTER_H_
