// The sorter is a header template (extsort/external_sorter.h). This
// translation unit only anchors the module in the build.
#include "extsort/external_sorter.h"

#include "extsort/record_sink.h"
