// Record sinks: the consumer half of a fused sort→consumer pipeline.
//
// Every phase of Ext-SCC is "external sort, then one sequential scan".
// Materializing the sorted file only to re-read it once costs a full
// write+read of the dataset per stage; a sink instead receives the
// merged records straight out of the sorter's final pass (or its single
// in-memory run), so the "scan" happens while the sort drains and the
// intermediate file never exists. SortInto / SortingWriter::FinishInto
// (external_sorter.h) accept anything satisfying RecordSinkFor.
//
// A sink's contract:
//  - Append(record) receives records in the sort order of the producing
//    stage (non-decreasing under its Less; strictly increasing when the
//    stage dedups).
//  - AppendBatch(ptr, n) is an optional bulk entry point; BatchingSink
//    below shows the adapter shape, and the provided sinks forward it
//    record-wise unless a faster path exists (FileSink).
//  - The *producer* finishes the sink's downstream resources: sinks here
//    are value types whose destructors flush (FileSink) or do nothing.
#ifndef EXTSCC_EXTSORT_RECORD_SINK_H_
#define EXTSCC_EXTSORT_RECORD_SINK_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "io/io_context.h"
#include "io/record_stream.h"
#include "util/status.h"

namespace extscc::extsort {

// Anything with a per-record Append. The sort drains hot loops through
// AppendBatch when the sink provides one (see SinkAppendBatch below).
template <typename S, typename T>
concept RecordSinkFor = requires(S sink, const T& record) {
  sink.Append(record);
};

template <typename S, typename T>
concept BatchRecordSinkFor =
    RecordSinkFor<S, T> && requires(S sink, const T* records, std::size_t n) {
      sink.AppendBatch(records, n);
    };

// Forwards a contiguous span to `sink`, using its AppendBatch when it
// has one and falling back to per-record Append otherwise.
template <typename T, RecordSinkFor<T> S>
void SinkAppendBatch(S& sink, const T* records, std::size_t n) {
  if constexpr (BatchRecordSinkFor<S, T>) {
    sink.AppendBatch(records, n);
  } else {
    for (std::size_t i = 0; i < n; ++i) sink.Append(records[i]);
  }
}

// Streams every record of `path` into `sink` with block-sized batches,
// preserving the sink's AppendBatch fast path (the sink twin of
// io::ForEachRecord / io::AppendAllRecords). Returns the record count.
// A failed read ends the stream early (error-as-EOF, see block_file.h);
// `status`, when given, receives the reader's final status so callers
// can tell truncation from completion.
template <typename T, RecordSinkFor<T> S>
std::uint64_t SinkAppendAllRecords(io::IoContext* context,
                                   const std::string& path, S& sink,
                                   util::Status* status = nullptr) {
  io::RecordReader<T> reader(context, path);
  const std::size_t batch = io::RecordsPerBlock<T>(context);
  std::vector<T> chunk(batch);
  std::uint64_t total = 0;
  std::size_t got;
  while ((got = reader.NextBatch(chunk.data(), batch)) > 0) {
    SinkAppendBatch<T>(sink, chunk.data(), got);
    total += got;
  }
  if (status != nullptr) *status = reader.status();
  return total;
}

// Materializing sink: records land in a file. SortFile(...) is exactly
// SortInto(...) with this sink, so non-fused callers keep their file
// semantics and I/O accounting.
template <typename T>
class FileSink {
 public:
  // `overlap_output` forwards to RecordWriter: double-buffered writes
  // through the device's I/O worker when io_threads > 0 — the sorter's
  // materializing entry points pass true so the final merge pass writes
  // block N while selecting block N+1.
  FileSink(io::IoContext* context, const std::string& path,
           bool overlap_output = false)
      : writer_(context, path, overlap_output) {}

  void Append(const T& record) { writer_.Append(record); }
  void AppendBatch(const T* records, std::size_t n) {
    writer_.AppendBatch(records, n);
  }

  // Flushes the tail block and closes the file (idempotent — the
  // destructor also finishes).
  void Finish() { writer_.Finish(); }

  // First I/O error of the underlying writer (OK while healthy). Check
  // after Finish(): a sink that swallowed its errors would let a
  // truncated output masquerade as a sorted result.
  util::Status status() const { return writer_.status(); }

  std::uint64_t count() const { return writer_.count(); }

 private:
  io::RecordWriter<T> writer_;
};

// Consumer sink: hands each record to a callable. The adapter for scan
// loops that previously re-read the sorted file.
template <typename T, typename Fn>
class CallbackSink {
 public:
  explicit CallbackSink(Fn fn) : fn_(std::move(fn)) {}

  void Append(const T& record) { fn_(record); }

 private:
  Fn fn_;
};

template <typename T, typename Fn>
CallbackSink<T, Fn> MakeCallbackSink(Fn fn) {
  return CallbackSink<T, Fn>(std::move(fn));
}

// Counts records and otherwise drops them — for stages that only need
// the cardinality of a sorted/deduped stream.
template <typename T>
class CountingSink {
 public:
  void Append(const T&) { ++count_; }
  void AppendBatch(const T*, std::size_t n) { count_ += n; }

  std::uint64_t count() const { return count_; }

 private:
  std::uint64_t count_ = 0;
};

// Duplicates the stream into two downstream sinks (e.g. a FileSink that
// must materialize for a later phase plus a CallbackSink consuming the
// same pass).
template <typename T, typename A, typename B>
class TeeSink {
 public:
  TeeSink(A& a, B& b) : a_(a), b_(b) {}

  void Append(const T& record) {
    a_.Append(record);
    b_.Append(record);
  }
  void AppendBatch(const T* records, std::size_t n) {
    SinkAppendBatch<T>(a_, records, n);
    SinkAppendBatch<T>(b_, records, n);
  }

 private:
  A& a_;
  B& b_;
};

template <typename T, typename A, typename B>
TeeSink<T, A, B> MakeTeeSink(A& a, B& b) {
  return TeeSink<T, A, B>(a, b);
}

}  // namespace extscc::extsort

#endif  // EXTSCC_EXTSORT_RECORD_SINK_H_
