// LSD radix sort over normalized record keys (record_traits.h).
//
// Run formation sorts one budget-sized buffer per run; with a
// normalized key that sort needs no comparisons at all. The sorter here
// is a classic least-significant-byte radix sort with two structural
// optimizations that matter on this system's key distributions:
//
//  - One histogram pre-pass computes the byte histograms of ALL key
//    bytes in a single scan, so each of the up-to-sizeof(Key) scatter
//    passes starts from ready counts.
//  - A pass whose histogram has a single occupied bucket is skipped
//    outright. Node ids are dense small integers (a 10^6-node graph
//    touches 20 of the 64 key bits), so typically 5 of 8 passes on an
//    Edge key vanish — the sort degrades gracefully toward O(n) as the
//    key range shrinks.
//
// Counting-sort passes are stable, so the whole sort is stable: records
// with equal keys keep their arrival order, exactly matching
// std::stable_sort under a comparator that agrees with the key (the
// RecordKeyTraits contract). Run contents are therefore byte-identical
// to the stable_sort path — the radix engine changes CPU time, never
// the I/O model or the output bytes.
//
// Memory: one scratch buffer of n records, alive only during the call —
// the same transient working set std::stable_sort's internal temporary
// buffer already used on this path, so run geometry and the
// MemoryBudget accounting are unchanged.
#ifndef EXTSCC_EXTSORT_RADIX_SORT_H_
#define EXTSCC_EXTSORT_RADIX_SORT_H_

#include <algorithm>
#include <array>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <vector>

#include "extsort/record_traits.h"

namespace extscc::extsort {

// Below this count the histogram setup costs more than the comparison
// sort it replaces; both branches produce the identical stable order.
inline constexpr std::size_t kRadixMinRecords = 128;

// Stable LSD radix sort of buffer[0, n) by the normalized key of Less.
// `scratch` is resized to n and used as the ping-pong buffer; pass a
// reusable vector to amortize the allocation across runs.
template <typename T, typename Less>
  requires RadixSortable<Less, T>
void LsdRadixSort(T* data, std::size_t n, std::vector<T>& scratch) {
  using Traits = RecordKeyTraits<Less, T>;
  using Key = RecordKey<Less, T>;
  constexpr std::size_t kPasses = sizeof(Key);
  if (n < 2) return;
  // u32 histograms: buffers beyond 2^32 records cannot occur under any
  // realistic budget, but degrade rather than overflow if they do.
  if (n < kRadixMinRecords || n > 0xffffffffu) {
    std::stable_sort(data, data + n, Less{});
    return;
  }
  if (scratch.size() < n) scratch.resize(n);

  // Histogram pre-pass: all byte positions in one scan.
  std::array<std::array<std::uint32_t, 256>, kPasses> hist{};
  for (std::size_t i = 0; i < n; ++i) {
    Key key = Traits::KeyOf(data[i]);
    for (std::size_t b = 0; b < kPasses; ++b) {
      ++hist[b][static_cast<std::uint8_t>(key)];
      key >>= 8;
    }
  }

  T* src = data;
  T* dst = scratch.data();
  for (std::size_t b = 0; b < kPasses; ++b) {
    const auto& counts = hist[b];
    // Skip a pass whose byte is constant across the buffer — its
    // scatter would be a full copy that reorders nothing (the common
    // case for high key bytes of dense node-id ranges).
    std::size_t occupied = 0;
    for (std::uint32_t v = 0; v < 256 && occupied <= 1; ++v) {
      if (counts[v] != 0) ++occupied;
    }
    if (occupied <= 1) continue;

    std::array<std::uint32_t, 256> offsets;
    std::uint32_t sum = 0;
    for (std::uint32_t v = 0; v < 256; ++v) {
      offsets[v] = sum;
      sum += counts[v];
    }
    const unsigned shift = static_cast<unsigned>(b * 8);
    for (std::size_t i = 0; i < n; ++i) {
      const auto byte =
          static_cast<std::uint8_t>(Traits::KeyOf(src[i]) >> shift);
      dst[offsets[byte]++] = src[i];
    }
    std::swap(src, dst);
  }
  if (src != data) std::memcpy(data, src, n * sizeof(T));
}

// Stable sort of buffer[0, n) under Less: the radix path when the
// comparator exposes a normalized key, std::stable_sort otherwise.
// The single sort entry point for run formation (run_pipeline.h) —
// both branches produce the identical record order. `scratch` is the
// radix ping-pong buffer; run-spilling loops pass a persistent vector
// so the allocation amortizes across every run of a sort.
template <typename T, typename Less>
void StableSortRecords(T* data, std::size_t n, Less less,
                       std::vector<T>& scratch) {
  if constexpr (RadixSortable<Less, T>) {
    LsdRadixSort<T, Less>(data, n, scratch);
    (void)less;
  } else {
    std::stable_sort(data, data + n, less);
  }
}

// One-shot convenience (resident single-run sorts): transient scratch.
template <typename T, typename Less>
void StableSortRecords(T* data, std::size_t n, Less less) {
  std::vector<T> scratch;
  StableSortRecords(data, n, less, scratch);
}

}  // namespace extscc::extsort

#endif  // EXTSCC_EXTSORT_RADIX_SORT_H_
