// Run-formation internals: buffer sort, run spill, and the overlapped
// sort→spill pipeline.
//
// Serial run formation alternates fill → sort → spill on one thread, so
// the CPU sits idle during spill writes and the disk sits idle during
// the sort — the write-side twin of the problem the read prefetcher
// solves. RunSpillPipeline overlaps them: with
// IoContextOptions::sort_threads > 0 a single background worker sorts
// and spills buffer N while the producer fills buffer N+1 of a
// double-buffered pair. Runs come back in submission order, each run's
// bytes are identical to the serial path's (the buffer sort is stable
// either way), and every spilled block is still counted in IoStats
// (under IoContext::stats_mutex()), so threaded execution changes
// wall-clock overlap — never the sorted output.
//
// Pipeline states, per submitted buffer:
//   FILLING   (producer)  — records accumulate in the active buffer;
//   QUEUED    (hand-off)  — SubmitAndAcquire parked it in the pending
//                           slot and returned the recycled twin;
//   SORT+SPILL (worker)   — SortDedupPrefix + SpillRun off-thread;
//   RECYCLED  (hand-off)  — the emptied buffer becomes the next
//                           acquire's return value.
// At most two buffers exist; SubmitAndAcquire blocks while the worker
// still owns the previous one, so a slow disk backpressures the
// producer instead of queueing unbounded memory.
//
// Budget: the second buffer is Reserve()d from the MemoryBudget for the
// pipeline's lifetime, clamped by availability — when the budget cannot
// cover a second buffer the pipeline silently degrades to the serial
// fill → sort → spill loop (threaded() == false), preserving the
// serial path's exact geometry. sort_threads == 0 never constructs a
// worker at all, so the default engine is bit-identical to the
// single-threaded one.
#ifndef EXTSCC_EXTSORT_RUN_PIPELINE_H_
#define EXTSCC_EXTSORT_RUN_PIPELINE_H_

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "extsort/radix_sort.h"
#include "io/io_context.h"
#include "io/record_stream.h"
#include "util/logging.h"
#include "util/status.h"

namespace extscc::extsort {

// Diagnostics exposed for tests and the contraction profiler.
struct SortRunInfo {
  std::uint64_t num_records = 0;
  std::uint64_t num_runs = 0;
  std::uint64_t merge_passes = 0;
  // First unrecovered I/O error of the sort (OK on success). Callers on
  // the Status-returning driver path propagate it; the info-discarding
  // convenience wrappers leave it to the context's error latch.
  util::Status status;
};

namespace internal {

// Sorts buffer[0, n) — LSD radix on the normalized key when Less has
// one (record_traits.h), std::stable_sort otherwise; both produce the
// identical stable order — and, when `dedup`, collapses
// equal-under-Less neighbours; returns the surviving prefix length.
// `scratch` is the radix ping-pong buffer, persistent across a
// spilling loop's runs.
template <typename T, typename Less>
std::size_t SortDedupPrefix(std::vector<T>& buffer, std::size_t n, Less less,
                            bool dedup, std::vector<T>& scratch) {
  StableSortRecords(buffer.data(), n, less, scratch);
  if (!dedup) return n;
  auto end = std::unique(
      buffer.begin(), buffer.begin() + static_cast<std::ptrdiff_t>(n),
      [&less](const T& a, const T& b) { return !less(a, b) && !less(b, a); });
  return static_cast<std::size_t>(end - buffer.begin());
}

// One-shot convenience (resident single-run sorts): transient scratch.
template <typename T, typename Less>
std::size_t SortDedupPrefix(std::vector<T>& buffer, std::size_t n, Less less,
                            bool dedup) {
  std::vector<T> scratch;
  return SortDedupPrefix(buffer, n, less, dedup, scratch);
}

// Writes records[0, n) (already sorted/deduped) as a run file, placed
// per `placement` — run N of a sort carries Placement::InGroup(sort
// group, N), so the kSpreadGroup policy can put a merge group's runs on
// distinct devices (round-robin striping ignores the placement and is
// byte-identical to the ungrouped engine).
//
// Scratch failover: a persistent write failure (transient faults were
// already retried inside BlockFile) quarantines the failing device,
// removes the partial run, and re-spills the SAME records on the next
// healthy device — the records are still resident in `buffer`, so a
// lost spill costs one extra run write, not a re-sort. On recovery the
// triggering error is absorbed from the context's latch (it was
// handled, the solve must not fail on it); an unrelated latched error
// is left alone. Returns the first failure when every device refuses.
template <typename T>
util::Status SpillRun(io::IoContext* context, const T* records,
                      std::size_t n, const io::Placement& placement,
                      std::string* out_path) {
  io::TempFileManager& temp = context->temp_files();
  const std::size_t max_attempts = temp.devices().size();
  util::Status first_failure;
  for (std::size_t attempt = 0; attempt < max_attempts; ++attempt) {
    const io::ScratchFile run = temp.NewFile("sortrun", placement);
    io::RecordWriter<T> writer(context, run.path);
    writer.AppendBatch(records, n);
    writer.Finish();
    const util::Status status = writer.status();
    if (status.ok()) {
      if (!first_failure.ok()) {
        LOG_WARNING << "SpillRun: recovered run " << run.path
                    << " on a healthy device after: "
                    << first_failure.ToString();
        context->AbsorbIoError(first_failure);
      }
      *out_path = run.path;
      return status;
    }
    // The latch keeps the FIRST error (first-wins), so the absorb above
    // targets first_failure no matter how many devices failed since.
    if (first_failure.ok()) first_failure = status;
    temp.Remove(run.path);  // best effort; a dead device only warns
    temp.Quarantine(run.device);
  }
  return first_failure;
}

// The sort→spill stage of run formation. Owner of the run list; the
// producer repeatedly fills a buffer of `capacity` records and trades
// it through SubmitAndAcquire for an empty one.
template <typename T, typename Less>
class RunSpillPipeline {
 public:
  // Threaded iff the context asks for sort workers AND the budget can
  // hold the second `capacity`-record buffer (reserved here for the
  // pipeline's lifetime). Degrades to inline sort+spill otherwise.
  RunSpillPipeline(io::IoContext* context, Less less, bool dedup,
                   std::size_t capacity)
      : context_(context),
        less_(less),
        dedup_(dedup),
        group_(context->temp_files().NextGroupId()) {
    if (context_->sort_threads() == 0 || capacity == 0) return;
    const std::uint64_t bytes =
        static_cast<std::uint64_t>(capacity) * sizeof(T);
    // All-or-nothing: the pipeline's second buffer is either fully
    // budgeted or the sort stays serial (atomic against other threads
    // reserving in between).
    const std::uint64_t granted = context_->memory().ReserveUpTo(bytes);
    if (granted < bytes) {
      context_->memory().Release(granted);
      return;
    }
    reserved_bytes_ = bytes;
    free_buffer_.reserve(capacity);
    has_free_ = true;
    threaded_ = true;
    worker_ = std::thread([this] { WorkerLoop(); });
  }

  ~RunSpillPipeline() {
    if (threaded_) {
      {
        std::lock_guard<std::mutex> lock(mu_);
        stop_ = true;
      }
      cv_.notify_all();
      worker_.join();
    }
    if (reserved_bytes_ > 0) context_->memory().Release(reserved_bytes_);
    // Abandoned runs (error-path unwinding before Finish) are removed
    // by the owning sorter/writer, which took the run list or dies with
    // the TempFileManager; nothing to clean here.
  }

  RunSpillPipeline(const RunSpillPipeline&) = delete;
  RunSpillPipeline& operator=(const RunSpillPipeline&) = delete;

  bool threaded() const { return threaded_; }

  // Sorts (+dedups) and spills buffer[0, n) as the next run — inline
  // when serial, on the worker when threaded — and returns a recycled
  // buffer of the same capacity for the producer to refill. The
  // returned buffer's size and contents are unspecified (whatever the
  // previous spill left): callers overwrite (FormRuns) or clear()
  // (SortingWriter) rather than paying a value-initializing resize of
  // up to a whole run buffer per spill.
  std::vector<T> SubmitAndAcquire(std::vector<T> buffer, std::size_t n) {
    if (!threaded_) {
      if (!status_.ok()) return buffer;  // sort already failed: drop
      const std::size_t kept =
          SortDedupPrefix(buffer, n, less_, dedup_, serial_scratch_);
      std::string path;
      const util::Status spilled =
          SpillRun(context_, buffer.data(), kept,
                   io::Placement::InGroup(group_, next_member_++), &path);
      if (spilled.ok()) {
        runs_.push_back(std::move(path));
      } else {
        status_ = spilled;
      }
      return buffer;
    }
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait(lock, [this] { return !has_pending_; });
    pending_ = std::move(buffer);
    pending_n_ = n;
    has_pending_ = true;
    cv_.notify_all();
    // Block until the worker hands back the previously spilled buffer:
    // the two-buffer bound is what the reservation above paid for.
    cv_.wait(lock, [this] { return has_free_; });
    has_free_ = false;
    return std::move(free_buffer_);
  }

  // Joins outstanding spills and returns the run paths in submission
  // order (identical to the serial spill order).
  std::vector<std::string> Finish() {
    if (threaded_) {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return !has_pending_ && !busy_; });
    }
    return std::move(runs_);
  }

  // First unrecovered spill failure (every-device-refused), parked here
  // by whichever thread spilled — the worker's errors surface on the
  // producer thread. Check after Finish().
  util::Status status() const {
    std::lock_guard<std::mutex> lock(mu_);
    return status_;
  }

 private:
  void WorkerLoop() {
    // Worker-local radix scratch, persistent across all runs of the
    // sort (the producer-side serial path keeps its own).
    std::vector<T> scratch;
    std::unique_lock<std::mutex> lock(mu_);
    while (true) {
      cv_.wait(lock, [this] { return stop_ || has_pending_; });
      if (!has_pending_) return;  // stop with nothing queued
      std::vector<T> buffer = std::move(pending_);
      const std::size_t n = pending_n_;
      has_pending_ = false;
      busy_ = true;
      const bool dead = !status_.ok();
      lock.unlock();
      cv_.notify_all();
      std::string path;
      util::Status spilled;
      if (!dead) {
        // A failed pipeline still recycles buffers (the producer must
        // not deadlock on a dead worker) but spills nothing further.
        const std::size_t kept =
            SortDedupPrefix(buffer, n, less_, dedup_, scratch);
        spilled = SpillRun(context_, buffer.data(), kept,
                           io::Placement::InGroup(group_, next_member_++),
                           &path);
      }
      lock.lock();
      if (!dead) {
        if (spilled.ok()) {
          runs_.push_back(std::move(path));
        } else if (status_.ok()) {
          status_ = spilled;
        }
      }
      free_buffer_ = std::move(buffer);
      has_free_ = true;
      busy_ = false;
      cv_.notify_all();
      if (stop_ && !has_pending_) return;
    }
  }

  io::IoContext* context_;
  Less less_;
  bool dedup_;
  // Merge-group identity of this sort's runs: group id from the
  // TempFileManager, member = spill ordinal. Only the spilling thread
  // touches next_member_ (the producer when serial, the worker when
  // threaded — never both).
  const std::uint64_t group_;
  std::uint64_t next_member_ = 0;
  bool threaded_ = false;
  std::uint64_t reserved_bytes_ = 0;

  std::thread worker_;
  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::vector<T> pending_;     // filled buffer awaiting the worker
  std::size_t pending_n_ = 0;  // valid prefix of pending_
  bool has_pending_ = false;
  bool busy_ = false;          // worker is sorting/spilling
  std::vector<T> free_buffer_;  // recycled buffer for the producer
  bool has_free_ = false;
  bool stop_ = false;
  std::vector<T> serial_scratch_;  // radix scratch for the inline path

  std::vector<std::string> runs_;  // submission order
  // First unrecovered spill failure; guarded by mu_ when threaded.
  util::Status status_;
};

}  // namespace internal
}  // namespace extscc::extsort

#endif  // EXTSCC_EXTSORT_RUN_PIPELINE_H_
