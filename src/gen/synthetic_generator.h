// Synthetic graphs per the paper's §VIII recipe: "randomly select all
// nodes in SCCs first, add edges among the nodes in an SCC until all
// nodes form an SCC, finally add additional random nodes and edges" —
// parameterized exactly like Table I (Massive-/Large-/Small-SCC presets).
//
// The generator may use real RAM freely (it is workload setup, not a
// measured algorithm); its disk output streams through a GraphBuilder.
#ifndef EXTSCC_GEN_SYNTHETIC_GENERATOR_H_
#define EXTSCC_GEN_SYNTHETIC_GENERATOR_H_

#include <cstdint>
#include <string>
#include <vector>

#include "graph/disk_graph.h"
#include "io/io_context.h"

namespace extscc::gen {

struct PlantedSccSpec {
  std::uint32_t count = 0;  // how many SCCs of this size to plant
  std::uint32_t size = 0;   // nodes per SCC (>= 2 to be a real SCC)
};

struct SyntheticParams {
  std::uint64_t num_nodes = 100'000;
  double avg_degree = 4.0;  // total edges = num_nodes * avg_degree
  std::vector<PlantedSccSpec> sccs;
  std::uint64_t seed = 1;

  // Chord edges added inside each planted SCC beyond its spanning cycle,
  // as a fraction of the SCC size (keeps planted SCC diameters small).
  double intra_chord_factor = 0.5;

  // When false, only the planted cycles/chords are emitted — every SCC
  // size is then exactly known, which the property tests rely on.
  bool extra_random_edges = true;
};

// Table I presets, scaled 1/1000 in node counts (DESIGN.md §3).
// Defaults: |V|=100K, D=4.
SyntheticParams MassiveSccParams(std::uint64_t num_nodes = 100'000,
                                 double avg_degree = 4.0,
                                 std::uint32_t scc_size = 400,
                                 std::uint64_t seed = 1);
SyntheticParams LargeSccParams(std::uint64_t num_nodes = 100'000,
                               double avg_degree = 4.0,
                               std::uint32_t scc_count = 50,
                               std::uint32_t scc_size = 8,
                               std::uint64_t seed = 1);
SyntheticParams SmallSccParams(std::uint64_t num_nodes = 100'000,
                               double avg_degree = 4.0,
                               std::uint32_t scc_count = 10'000 / 100,
                               std::uint32_t scc_size = 40,
                               std::uint64_t seed = 1);

graph::DiskGraph GenerateSynthetic(io::IoContext* context,
                                   const SyntheticParams& params);

}  // namespace extscc::gen

#endif  // EXTSCC_GEN_SYNTHETIC_GENERATOR_H_
