// Small deterministic graphs used by tests and examples, including the
// paper's running example (Fig. 1).
#ifndef EXTSCC_GEN_CLASSIC_GRAPHS_H_
#define EXTSCC_GEN_CLASSIC_GRAPHS_H_

#include <cstdint>
#include <vector>

#include "graph/graph_types.h"
#include "util/random.h"

namespace extscc::gen {

// The 13-node / 20-edge graph of Fig. 1 (Example 2.1): nodes a..m mapped
// to 0..12. SCC1 = {b,c,d,e,f,g} = {1..6}, SCC2 = {i,j,k,l} = {8..11},
// and a (0), h (7), m (12) are singletons.
std::vector<graph::Edge> Fig1Edges();

// Directed cycle 0 -> 1 -> ... -> n-1 -> 0 (one SCC).
std::vector<graph::Edge> CycleEdges(std::uint32_t n);

// Directed path 0 -> 1 -> ... -> n-1 (all singletons).
std::vector<graph::Edge> PathEdges(std::uint32_t n);

// Complete digraph on n nodes without self-loops (one SCC).
std::vector<graph::Edge> CompleteDigraphEdges(std::uint32_t n);

// Uniform random digraph G(n, m); may contain parallel edges and
// self-loops when allow_degenerate is true (stresses the Op-mode
// reductions).
std::vector<graph::Edge> RandomDigraphEdges(std::uint32_t n, std::uint64_t m,
                                            std::uint64_t seed,
                                            bool allow_degenerate = false);

// Random DAG with edges only from lower to higher ids (EM-SCC's Case-2).
std::vector<graph::Edge> RandomDagEdges(std::uint32_t n, std::uint64_t m,
                                        std::uint64_t seed);

// `k` disjoint cycles of length `len` chained by one DAG edge each —
// a stress shape with many same-size SCCs.
std::vector<graph::Edge> CycleChainEdges(std::uint32_t k, std::uint32_t len);

}  // namespace extscc::gen

#endif  // EXTSCC_GEN_CLASSIC_GRAPHS_H_
