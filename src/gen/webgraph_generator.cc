#include "gen/webgraph_generator.h"

#include <vector>

#include "graph/graph_builder.h"
#include "graph/graph_types.h"
#include "util/logging.h"
#include "util/random.h"

namespace extscc::gen {

namespace {

using graph::NodeId;

}  // namespace

graph::DiskGraph GenerateWebGraph(io::IoContext* context,
                                  const WebGraphParams& params) {
  const std::uint64_t n = params.num_nodes;
  CHECK_GT(n, 1u);
  CHECK_GT(params.edge_fraction, 0.0);
  util::Rng rng(params.seed);

  // In-memory copy of the forward adjacency, needed by the copying model
  // (generator-side RAM, not part of any measured algorithm).
  std::vector<std::vector<NodeId>> out_links(n);

  graph::GraphBuilder builder(context);
  // Total-edge cap implementing Fig. 6's edge_fraction.
  const double expected_edges =
      static_cast<double>(n) * params.avg_out_degree *
      (1.0 + params.reciprocal_prob);
  const auto edge_cap = static_cast<std::uint64_t>(
      params.edge_fraction * expected_edges) + 1;
  std::uint64_t emitted = 0;

  auto emit = [&](NodeId u, NodeId v) {
    if (emitted >= edge_cap) return;
    builder.AddEdge(u, v);
    out_links[u].push_back(v);
    ++emitted;
  };

  // Seed 2-cycle so prototypes exist.
  emit(0, 1);
  emit(1, 0);

  for (NodeId t = 2; t < n; ++t) {
    // Out-degree ~ geometric with the requested mean (>= 1).
    std::uint32_t d = 1;
    while (rng.Bernoulli(1.0 - 1.0 / params.avg_out_degree) &&
           d < 4 * params.avg_out_degree) {
      ++d;
    }
    const NodeId prototype = static_cast<NodeId>(rng.Uniform(t));
    for (std::uint32_t k = 0; k < d; ++k) {
      NodeId target;
      if (!out_links[prototype].empty() && rng.Bernoulli(params.copy_prob)) {
        target =
            out_links[prototype][rng.Uniform(out_links[prototype].size())];
      } else {
        // Zipf-biased fresh target: old pages attract more links.
        target = static_cast<NodeId>(rng.Zipf(t, 0.6));
      }
      if (target == t) continue;
      emit(t, target);
      if (rng.Bernoulli(params.reciprocal_prob)) {
        emit(target, t);
      }
    }
  }
  for (NodeId v = 0; v < n; ++v) builder.AddNode(v);
  return builder.Finish();
}

}  // namespace extscc::gen
