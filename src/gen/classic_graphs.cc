#include "gen/classic_graphs.h"

#include "util/logging.h"

namespace extscc::gen {

namespace {
using graph::Edge;
using graph::NodeId;
}  // namespace

std::vector<Edge> Fig1Edges() {
  // a=0 b=1 c=2 d=3 e=4 f=5 g=6 h=7 i=8 j=9 k=10 l=11 m=12.
  // SCC1 ring b->c->d->e->f->g->b plus chords; SCC2 ring i->j->k->l->i
  // plus chords; a feeds b, g feeds h feeds i, k feeds m.
  return {
      {0, 1},                                            // a->b
      {1, 2}, {2, 3}, {3, 4}, {4, 5}, {5, 6}, {6, 1},    // SCC1 ring
      {3, 6}, {5, 2}, {1, 4},                            // SCC1 chords
      {6, 7},                                            // g->h
      {7, 8},                                            // h->i
      {8, 9}, {9, 10}, {10, 11}, {11, 8},                // SCC2 ring
      {9, 8}, {11, 10},                                  // SCC2 chords
      {10, 12},                                          // k->m
      {0, 5},                                            // a->f
  };
}

std::vector<Edge> CycleEdges(std::uint32_t n) {
  CHECK_GT(n, 0u);
  std::vector<Edge> edges;
  edges.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    edges.push_back(Edge{i, (i + 1) % n});
  }
  return edges;
}

std::vector<Edge> PathEdges(std::uint32_t n) {
  std::vector<Edge> edges;
  for (std::uint32_t i = 0; i + 1 < n; ++i) {
    edges.push_back(Edge{i, i + 1});
  }
  return edges;
}

std::vector<Edge> CompleteDigraphEdges(std::uint32_t n) {
  std::vector<Edge> edges;
  edges.reserve(static_cast<std::size_t>(n) * (n - 1));
  for (std::uint32_t u = 0; u < n; ++u) {
    for (std::uint32_t v = 0; v < n; ++v) {
      if (u != v) edges.push_back(Edge{u, v});
    }
  }
  return edges;
}

std::vector<Edge> RandomDigraphEdges(std::uint32_t n, std::uint64_t m,
                                     std::uint64_t seed,
                                     bool allow_degenerate) {
  CHECK_GT(n, 0u);
  util::Rng rng(seed);
  std::vector<Edge> edges;
  edges.reserve(m);
  while (edges.size() < m) {
    const auto u = static_cast<NodeId>(rng.Uniform(n));
    const auto v = static_cast<NodeId>(rng.Uniform(n));
    if (!allow_degenerate && u == v) continue;
    edges.push_back(Edge{u, v});
  }
  return edges;
}

std::vector<Edge> RandomDagEdges(std::uint32_t n, std::uint64_t m,
                                 std::uint64_t seed) {
  CHECK_GT(n, 1u);
  util::Rng rng(seed);
  std::vector<Edge> edges;
  edges.reserve(m);
  while (edges.size() < m) {
    auto u = static_cast<NodeId>(rng.Uniform(n));
    auto v = static_cast<NodeId>(rng.Uniform(n));
    if (u == v) continue;
    if (u > v) std::swap(u, v);
    edges.push_back(Edge{u, v});
  }
  return edges;
}

std::vector<Edge> CycleChainEdges(std::uint32_t k, std::uint32_t len) {
  CHECK_GT(len, 0u);
  std::vector<Edge> edges;
  for (std::uint32_t c = 0; c < k; ++c) {
    const NodeId base = c * len;
    for (std::uint32_t i = 0; i < len; ++i) {
      edges.push_back(Edge{base + i, base + (i + 1) % len});
    }
    if (c + 1 < k) {
      edges.push_back(Edge{base, base + len});  // DAG link to next cycle
    }
  }
  return edges;
}

}  // namespace extscc::gen
