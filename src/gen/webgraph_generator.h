// Web-graph stand-in for WEBSPAM-UK2007 (see DESIGN.md §5): a copying
// model (Kumar et al.) that yields heavy-tailed in-degrees, plus
// probabilistic reciprocal links that grow the bow-tie's giant SCC —
// the two structural features Figs. 6-7 exercise.
#ifndef EXTSCC_GEN_WEBGRAPH_GENERATOR_H_
#define EXTSCC_GEN_WEBGRAPH_GENERATOR_H_

#include <cstdint>

#include "graph/disk_graph.h"
#include "io/io_context.h"

namespace extscc::gen {

struct WebGraphParams {
  std::uint64_t num_nodes = 200'000;
  // Mean out-degree of new pages. UK2007 averages 35; the scaled default
  // keeps bench runtimes sane while preserving the degree distribution
  // shape. Set 35.0 to mimic the original density.
  double avg_out_degree = 8.0;
  // Probability a link copies the prototype page's corresponding link
  // (preferential attachment via copying).
  double copy_prob = 0.5;
  // Probability a link is reciprocated — the knob controlling the giant
  // SCC's relative size.
  double reciprocal_prob = 0.25;
  std::uint64_t seed = 7;

  // When in (0, 1], only the first `edge_fraction` of generated edges is
  // kept — Fig. 6 varies the edge percentage of the same fixed graph.
  double edge_fraction = 1.0;
};

graph::DiskGraph GenerateWebGraph(io::IoContext* context,
                                  const WebGraphParams& params);

}  // namespace extscc::gen

#endif  // EXTSCC_GEN_WEBGRAPH_GENERATOR_H_
