#include "gen/synthetic_generator.h"

#include <algorithm>
#include <numeric>

#include "graph/graph_builder.h"
#include "util/logging.h"
#include "util/random.h"

namespace extscc::gen {

namespace {

using graph::NodeId;

}  // namespace

SyntheticParams MassiveSccParams(std::uint64_t num_nodes, double avg_degree,
                                 std::uint32_t scc_size, std::uint64_t seed) {
  SyntheticParams p;
  p.num_nodes = num_nodes;
  p.avg_degree = avg_degree;
  p.sccs = {{/*count=*/1, /*size=*/scc_size}};
  p.seed = seed;
  return p;
}

SyntheticParams LargeSccParams(std::uint64_t num_nodes, double avg_degree,
                               std::uint32_t scc_count,
                               std::uint32_t scc_size, std::uint64_t seed) {
  SyntheticParams p;
  p.num_nodes = num_nodes;
  p.avg_degree = avg_degree;
  // Paper scale: 50 SCCs of 8K nodes at |V|=100M; scaled: 50 SCCs of
  // `scc_size` (default 8 -> callers pass 80 for the scaled default; the
  // bench workload header picks the actual sweep values).
  p.sccs = {{scc_count, scc_size}};
  p.seed = seed;
  return p;
}

SyntheticParams SmallSccParams(std::uint64_t num_nodes, double avg_degree,
                               std::uint32_t scc_count,
                               std::uint32_t scc_size, std::uint64_t seed) {
  SyntheticParams p;
  p.num_nodes = num_nodes;
  p.avg_degree = avg_degree;
  p.sccs = {{scc_count, scc_size}};
  p.seed = seed;
  return p;
}

graph::DiskGraph GenerateSynthetic(io::IoContext* context,
                                   const SyntheticParams& params) {
  const std::uint64_t n = params.num_nodes;
  CHECK_GT(n, 0u);
  std::uint64_t planted_total = 0;
  for (const auto& spec : params.sccs) {
    planted_total +=
        static_cast<std::uint64_t>(spec.count) * spec.size;
  }
  CHECK_LE(planted_total, n) << "planted SCC nodes exceed |V|";

  util::Rng rng(params.seed);

  // Random selection of planted members: shuffle node ids, carve the
  // prefix into the planted components.
  std::vector<NodeId> ids(n);
  std::iota(ids.begin(), ids.end(), NodeId{0});
  for (std::uint64_t i = n - 1; i > 0; --i) {
    std::swap(ids[i], ids[rng.Uniform(i + 1)]);
  }

  graph::GraphBuilder builder(context);
  std::uint64_t cursor = 0;
  std::uint64_t edges_emitted = 0;
  for (const auto& spec : params.sccs) {
    for (std::uint32_t c = 0; c < spec.count; ++c) {
      const NodeId* members = ids.data() + cursor;
      cursor += spec.size;
      // Spanning cycle: makes the component strongly connected.
      for (std::uint32_t k = 0; k < spec.size; ++k) {
        builder.AddEdge(members[k], members[(k + 1) % spec.size]);
        ++edges_emitted;
      }
      // Chords keep the SCC diameter small (real SCCs are not bare
      // rings) without changing its membership.
      const auto chords = static_cast<std::uint64_t>(
          params.intra_chord_factor * spec.size);
      for (std::uint64_t k = 0; k < chords && spec.size >= 2; ++k) {
        const NodeId u = members[rng.Uniform(spec.size)];
        const NodeId v = members[rng.Uniform(spec.size)];
        if (u == v) continue;
        builder.AddEdge(u, v);
        ++edges_emitted;
      }
    }
  }

  // Every node exists even if no random edge touches it.
  for (NodeId v = 0; v < n; ++v) builder.AddNode(v);

  if (params.extra_random_edges) {
    const auto target =
        static_cast<std::uint64_t>(params.avg_degree * static_cast<double>(n));
    while (edges_emitted < target) {
      const NodeId u = static_cast<NodeId>(rng.Uniform(n));
      const NodeId v = static_cast<NodeId>(rng.Uniform(n));
      if (u == v) continue;
      builder.AddEdge(u, v);
      ++edges_emitted;
    }
  }
  return builder.Finish();
}

}  // namespace extscc::gen
