// R-MAT recursive-matrix generator (Chakrabarti, Zhan, Faloutsos) — a
// standard stress family for external graph algorithms: power-law
// degrees, community structure, and tunable skew from one knob set
// (a, b, c, d). Complements the copying-model web graph (Figs. 6-7) and
// the planted-SCC synthetics (Table I): R-MAT's hub nodes produce the
// adversarial case for the vertex-cover contraction (high-degree nodes
// never leave the cover) and for the E_add cross-product bound of
// Theorem 5.4.
#ifndef EXTSCC_GEN_RMAT_GENERATOR_H_
#define EXTSCC_GEN_RMAT_GENERATOR_H_

#include <cstdint>

#include "graph/disk_graph.h"
#include "io/io_context.h"

namespace extscc::gen {

struct RmatParams {
  // Number of nodes, rounded up internally to the next power of two for
  // the quadrant recursion; edges land only on [0, num_nodes).
  std::uint64_t num_nodes = 1 << 16;
  std::uint64_t num_edges = 1 << 18;

  // Quadrant probabilities; must be positive and sum to ~1. The default
  // (0.57, 0.19, 0.19, 0.05) is the Graph500 parameterization.
  double a = 0.57;
  double b = 0.19;
  double c = 0.19;
  double d = 0.05;

  // Per-level probability perturbation (+-noise * U[-1,1]) that breaks
  // the exact self-similarity, as recommended in the R-MAT paper.
  double noise = 0.1;

  std::uint64_t seed = 42;
};

// Streams `num_edges` R-MAT edges to a scratch edge file and assembles
// the DiskGraph (node file = all of [0, num_nodes), so isolated nodes are
// kept — they are legitimate singleton SCCs). Self-loops are possible in
// the raw R-MAT distribution and are kept; Ext-SCC strips them on input.
graph::DiskGraph GenerateRmat(io::IoContext* context,
                              const RmatParams& params);

}  // namespace extscc::gen

#endif  // EXTSCC_GEN_RMAT_GENERATOR_H_
