#include "gen/rmat_generator.h"

#include <bit>
#include <cmath>

#include "graph/graph_builder.h"
#include "graph/graph_types.h"
#include "util/logging.h"
#include "util/random.h"

namespace extscc::gen {

namespace {

using graph::NodeId;

}  // namespace

graph::DiskGraph GenerateRmat(io::IoContext* context,
                              const RmatParams& params) {
  CHECK_GT(params.num_nodes, 0u);
  CHECK_GT(params.a, 0.0);
  CHECK_GT(params.b, 0.0);
  CHECK_GT(params.c, 0.0);
  CHECK_GT(params.d, 0.0);
  const double sum = params.a + params.b + params.c + params.d;
  CHECK_LT(std::abs(sum - 1.0), 1e-6)
      << "R-MAT quadrant probabilities must sum to 1";
  CHECK_GE(params.noise, 0.0);
  CHECK_LE(params.noise, 0.5);

  const std::uint64_t side = std::bit_ceil(params.num_nodes);
  const int levels = std::countr_zero(side);
  util::Rng rng(params.seed);

  graph::GraphBuilder builder(context);
  // Every node of [0, num_nodes) is a node of the graph even when no
  // edge lands on it (R-MAT's skew leaves many cells cold) — isolated
  // nodes are singleton SCCs and the algorithms must handle them.
  for (std::uint64_t v = 0; v < params.num_nodes; ++v) {
    builder.AddNode(static_cast<NodeId>(v));
  }

  std::uint64_t emitted = 0;
  while (emitted < params.num_edges) {
    std::uint64_t row = 0;
    std::uint64_t col = 0;
    for (int level = 0; level < levels; ++level) {
      // Per-level perturbation (the R-MAT paper's noise) so degree
      // distributions are lognormal-ish rather than strictly fractal.
      auto perturb = [&](double p) {
        return p * (1.0 + params.noise * (2.0 * rng.NextDouble() - 1.0));
      };
      const double pa = perturb(params.a);
      const double pb = perturb(params.b);
      const double pc = perturb(params.c);
      const double pd = perturb(params.d);
      const double r = rng.NextDouble() * (pa + pb + pc + pd);
      row <<= 1;
      col <<= 1;
      if (r < pa) {
        // top-left quadrant
      } else if (r < pa + pb) {
        col |= 1;
      } else if (r < pa + pb + pc) {
        row |= 1;
      } else {
        row |= 1;
        col |= 1;
      }
    }
    if (row >= params.num_nodes || col >= params.num_nodes) continue;
    builder.AddEdge(static_cast<NodeId>(row), static_cast<NodeId>(col));
    ++emitted;
  }
  return builder.Finish();
}

}  // namespace extscc::gen
