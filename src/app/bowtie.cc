#include "app/bowtie.h"

#include <string>

#include "extsort/external_sorter.h"
#include "io/record_stream.h"
#include "util/logging.h"

namespace extscc::app {

namespace {

using graph::Edge;
using graph::NodeId;
using graph::SccEntry;
using graph::SccId;

// The shared keyed orders (graph_types.h) replace the ad-hoc local
// functors, so the closure's node sorts radix-sort too.
using SccEntryByScc = graph::SccEntryByScc;
using NodeIdLess = graph::NodeIdLess;

// Multi-pass reachability closure: grows the node-sorted `seed_path` set
// along `edges_by_src` (sorted by src) until a pass adds nothing.
// Returns the closure path; *passes counts edge scans.
std::string Propagate(io::IoContext* context, const std::string& seed_path,
                      const std::string& edges_by_src,
                      std::uint64_t* passes) {
  std::string reached = seed_path;
  bool grew = true;
  while (grew) {
    ++*passes;
    // frontier-candidates = heads of edges whose tail is reached.
    const std::string candidates = context->NewTempPath("bowtie_cand");
    {
      io::PeekableReader<Edge> edges(context, edges_by_src);
      io::PeekableReader<NodeId> flags(context, reached);
      io::RecordWriter<NodeId> writer(context, candidates);
      while (edges.has_value() && flags.has_value()) {
        if (edges.Peek().src < flags.Peek()) {
          edges.Pop();
        } else if (flags.Peek() < edges.Peek().src) {
          flags.Pop();
        } else {
          writer.Append(edges.Pop().dst);
        }
      }
      writer.Finish();
    }
    const std::string candidates_sorted =
        context->NewTempPath("bowtie_cand_s");
    extsort::SortFile<NodeId, NodeIdLess>(context, candidates,
                                          candidates_sorted, NodeIdLess{},
                                          /*dedup=*/true);
    context->temp_files().Remove(candidates);

    // merged = reached ∪ candidates; grew iff a candidate was new.
    const std::string merged = context->NewTempPath("bowtie_reach");
    grew = false;
    {
      io::PeekableReader<NodeId> a(context, reached);
      io::PeekableReader<NodeId> b(context, candidates_sorted);
      io::RecordWriter<NodeId> writer(context, merged);
      while (a.has_value() || b.has_value()) {
        if (!b.has_value() || (a.has_value() && a.Peek() < b.Peek())) {
          writer.Append(a.Pop());
        } else if (!a.has_value() || b.Peek() < a.Peek()) {
          writer.Append(b.Pop());
          grew = true;
        } else {
          writer.Append(a.Pop());
          b.Pop();
        }
      }
      writer.Finish();
    }
    context->temp_files().Remove(candidates_sorted);
    if (reached != seed_path) context->temp_files().Remove(reached);
    reached = merged;
  }
  return reached;
}

}  // namespace

const char* BowtieRegionName(BowtieRegion region) {
  switch (region) {
    case BowtieRegion::kCore:
      return "CORE";
    case BowtieRegion::kIn:
      return "IN";
    case BowtieRegion::kOut:
      return "OUT";
    case BowtieRegion::kOther:
      return "OTHER";
  }
  return "unknown";
}

util::Result<BowtieResult> BowtieDecompose(io::IoContext* context,
                                           const graph::DiskGraph& g,
                                           const std::string& scc_path) {
  if (g.num_nodes == 0) {
    return util::Status::InvalidArgument("bow-tie of an empty graph");
  }
  if (io::NumRecordsInFile<SccEntry>(context, scc_path) != g.num_nodes) {
    return util::Status::InvalidArgument(
        "SCC file does not label every node of the graph");
  }
  BowtieResult out;

  // ---- core = largest SCC (external: sort by label, run-scan) ---------
  const std::string by_scc = context->NewTempPath("bowtie_by_scc");
  extsort::SortFile<SccEntry, SccEntryByScc>(context, scc_path, by_scc,
                                             SccEntryByScc{});
  {
    io::RecordReader<SccEntry> reader(context, by_scc);
    SccEntry entry;
    SccId run_label = graph::kInvalidScc;
    std::uint64_t run_size = 0;
    auto close_run = [&]() {
      if (run_size > out.core_size) {
        out.core_size = run_size;
        out.core_scc = run_label;
      }
    };
    while (reader.Next(&entry)) {
      if (entry.scc != run_label) {
        close_run();
        run_label = entry.scc;
        run_size = 0;
      }
      ++run_size;
    }
    close_run();
  }
  context->temp_files().Remove(by_scc);

  // ---- seeds: the core's nodes, node-sorted ----------------------------
  const std::string core_nodes = context->NewTempPath("bowtie_core");
  {
    io::RecordReader<SccEntry> reader(context, scc_path);
    io::RecordWriter<NodeId> writer(context, core_nodes);
    SccEntry entry;
    while (reader.Next(&entry)) {
      if (entry.scc == out.core_scc) writer.Append(entry.node);
    }
    writer.Finish();
  }

  // ---- OUT: forward closure over E sorted by src -----------------------
  const std::string eout = context->NewTempPath("bowtie_eout");
  extsort::SortFile<Edge, graph::EdgeBySrc>(context, g.edge_path, eout,
                                            graph::EdgeBySrc{});
  const std::string fwd =
      Propagate(context, core_nodes, eout, &out.forward_passes);
  context->temp_files().Remove(eout);

  // ---- IN: forward closure over reversed E -----------------------------
  const std::string erev = context->NewTempPath("bowtie_erev");
  {
    io::RecordReader<Edge> reader(context, g.edge_path);
    io::RecordWriter<Edge> writer(context, erev);
    Edge e;
    while (reader.Next(&e)) writer.Append(Edge{e.dst, e.src});
    writer.Finish();
  }
  const std::string erev_sorted = context->NewTempPath("bowtie_erev_s");
  extsort::SortFile<Edge, graph::EdgeBySrc>(context, erev, erev_sorted,
                                            graph::EdgeBySrc{});
  context->temp_files().Remove(erev);
  const std::string bwd =
      Propagate(context, core_nodes, erev_sorted, &out.backward_passes);
  context->temp_files().Remove(erev_sorted);

  // ---- classify: merge labels with the two closures --------------------
  out.region_path = context->NewTempPath("bowtie_regions");
  {
    io::RecordReader<SccEntry> labels(context, scc_path);
    io::PeekableReader<NodeId> in_fwd(context, fwd);
    io::PeekableReader<NodeId> in_bwd(context, bwd);
    io::RecordWriter<SccEntry> writer(context, out.region_path);
    SccEntry entry;
    while (labels.Next(&entry)) {
      while (in_fwd.has_value() && in_fwd.Peek() < entry.node) in_fwd.Pop();
      while (in_bwd.has_value() && in_bwd.Peek() < entry.node) in_bwd.Pop();
      const bool forward =
          in_fwd.has_value() && in_fwd.Peek() == entry.node;
      const bool backward =
          in_bwd.has_value() && in_bwd.Peek() == entry.node;
      BowtieRegion region;
      if (entry.scc == out.core_scc) {
        region = BowtieRegion::kCore;
      } else if (backward) {
        region = BowtieRegion::kIn;
        ++out.in_size;
      } else if (forward) {
        region = BowtieRegion::kOut;
        ++out.out_size;
      } else {
        region = BowtieRegion::kOther;
        ++out.other_size;
      }
      writer.Append(
          SccEntry{entry.node, static_cast<SccId>(region)});
    }
    writer.Finish();
  }
  if (fwd != core_nodes) context->temp_files().Remove(fwd);
  if (bwd != core_nodes) context->temp_files().Remove(bwd);
  context->temp_files().Remove(core_nodes);
  return out;
}

DagBowtieSizes BowtieSizesFromDag(const graph::Digraph& dag,
                                  const std::vector<std::uint64_t>& scc_sizes,
                                  std::size_t core_index) {
  CHECK_LT(core_index, dag.num_nodes());
  CHECK_EQ(scc_sizes.size(), dag.num_nodes());
  DagBowtieSizes out;
  out.core_size = scc_sizes[core_index];

  // BFS over the chosen adjacency direction, summing the sizes of the
  // SCCs reached (the core itself excluded). In a DAG nothing but the
  // core can be both ancestor and descendant of it, so the two sweeps
  // count disjoint sets.
  const auto sweep = [&](bool forward) {
    std::uint64_t total = 0;
    std::vector<char> seen(dag.num_nodes(), 0);
    std::vector<std::uint32_t> frontier = {
        static_cast<std::uint32_t>(core_index)};
    seen[core_index] = 1;
    while (!frontier.empty()) {
      std::vector<std::uint32_t> next;
      for (const std::uint32_t at : frontier) {
        const auto neighbors =
            forward ? dag.out_neighbors(at) : dag.in_neighbors(at);
        for (const std::uint32_t to : neighbors) {
          if (seen[to]) continue;
          seen[to] = 1;
          total += scc_sizes[to];
          next.push_back(to);
        }
      }
      frontier = std::move(next);
    }
    return total;
  };
  out.out_size = sweep(/*forward=*/true);
  out.in_size = sweep(/*forward=*/false);

  std::uint64_t all = 0;
  for (const std::uint64_t size : scc_sizes) all += size;
  out.other_size = all - out.core_size - out.in_size - out.out_size;
  return out;
}

}  // namespace extscc::app
