#include "app/bisimulation.h"

#include <map>
#include <utility>
#include <vector>

#include "extsort/external_sorter.h"
#include "io/record_stream.h"
#include "scc/condensation.h"
#include "util/logging.h"

namespace extscc::app {

namespace {

using graph::Edge;
using graph::NodeId;
using graph::SccEntry;
using graph::SccId;

}  // namespace

util::Result<BisimulationResult> ExternalBisimulation(
    io::IoContext* context, const graph::DiskGraph& dag) {
  BisimulationResult out;

  // ---- heights: topological levels of the reversed DAG ----------------
  // rank 0 = sinks of `dag`; height(v) = 1 + max height of successors.
  const std::string reversed_edges = context->NewTempPath("bisim_rev");
  {
    io::RecordReader<Edge> reader(context, dag.edge_path);
    io::RecordWriter<Edge> writer(context, reversed_edges);
    Edge e;
    while (reader.Next(&e)) writer.Append(Edge{e.dst, e.src});
    writer.Finish();
  }
  graph::DiskGraph reversed = dag;
  reversed.edge_path = reversed_edges;
  auto topo = scc::ExternalTopoSort(context, reversed);
  if (!topo.ok()) {
    return util::Status::FailedPrecondition(
        "bisimulation input has a cycle — condense SCCs first (" +
        topo.status().ToString() + ")");
  }
  out.num_heights = topo.value().num_levels;
  const std::string& height_path = topo.value().rank_path;

  // Edge file in E_in layout (sorted by dst) once; re-joined per height.
  const std::string ein = context->NewTempPath("bisim_ein");
  extsort::SortFile<Edge, graph::EdgeByDst>(context, dag.edge_path, ein,
                                            graph::EdgeByDst{});

  // (node, block) assignments accumulated across heights, node-sorted.
  std::string blocks_path = context->NewTempPath("bisim_blocks");
  {
    io::RecordWriter<SccEntry> writer(context, blocks_path);  // empty
    writer.Finish();
  }

  SccId next_block = 0;
  for (std::uint64_t h = 0; h < out.num_heights; ++h) {
    // P = (src, block(dst)) for every edge whose dst is assigned.
    const std::string pairs = context->NewTempPath("bisim_pairs");
    {
      io::PeekableReader<Edge> edges(context, ein);
      io::PeekableReader<SccEntry> blocks(context, blocks_path);
      io::RecordWriter<Edge> writer(context, pairs);  // (src, block) pairs
      while (edges.has_value() && blocks.has_value()) {
        if (edges.Peek().dst < blocks.Peek().node) {
          edges.Pop();
        } else if (blocks.Peek().node < edges.Peek().dst) {
          blocks.Pop();
        } else {
          const Edge e = edges.Pop();
          writer.Append(Edge{e.src, blocks.Peek().scc});
        }
      }
      writer.Finish();
    }
    const std::string pairs_sorted = context->NewTempPath("bisim_pairs_s");
    extsort::SortFile<Edge, graph::EdgeBySrc>(context, pairs, pairs_sorted,
                                              graph::EdgeBySrc{},
                                              /*dedup=*/true);
    context->temp_files().Remove(pairs);

    // Walk height-h nodes (height file is node-sorted, like the pairs),
    // building each node's signature = its sorted distinct successor
    // blocks, and mapping equal signatures to one block id. The
    // dictionary holds only this height's signatures ([16]'s strategy).
    const std::string new_blocks = context->NewTempPath("bisim_newblocks");
    std::uint64_t assigned_this_height = 0;
    {
      io::PeekableReader<SccEntry> heights(context, height_path);
      io::PeekableReader<Edge> sig_pairs(context, pairs_sorted);
      io::RecordWriter<SccEntry> writer(context, new_blocks);
      std::map<std::vector<SccId>, SccId> dictionary;
      std::vector<SccId> signature;
      while (heights.has_value()) {
        const SccEntry node_height = heights.Pop();
        // Advance the pair stream to this node, collecting its signature
        // whether or not it is at height h (pairs of other heights are
        // simply skipped — their signature is rebuilt on their turn).
        signature.clear();
        while (sig_pairs.has_value() &&
               sig_pairs.Peek().src < node_height.node) {
          sig_pairs.Pop();
        }
        while (sig_pairs.has_value() &&
               sig_pairs.Peek().src == node_height.node) {
          signature.push_back(sig_pairs.Pop().dst);
        }
        if (node_height.scc != h) continue;
        // Height 0 = sinks: empty signature, one shared block; the map
        // handles that uniformly.
        const auto [it, inserted] =
            dictionary.emplace(signature, next_block);
        if (inserted) ++next_block;
        writer.Append(SccEntry{node_height.node, it->second});
        ++assigned_this_height;
      }
      writer.Finish();
    }
    context->temp_files().Remove(pairs_sorted);
    CHECK_GT(assigned_this_height, 0u)
        << "every height level of a DAG is non-empty";

    // Merge the new assignments into the node-sorted block file.
    const std::string merged = context->NewTempPath("bisim_blocks_m");
    {
      io::PeekableReader<SccEntry> a(context, blocks_path);
      io::PeekableReader<SccEntry> b(context, new_blocks);
      io::RecordWriter<SccEntry> writer(context, merged);
      while (a.has_value() || b.has_value()) {
        if (!b.has_value() ||
            (a.has_value() && a.Peek().node < b.Peek().node)) {
          writer.Append(a.Pop());
        } else {
          writer.Append(b.Pop());
        }
      }
      writer.Finish();
    }
    context->temp_files().Remove(blocks_path);
    context->temp_files().Remove(new_blocks);
    blocks_path = merged;
  }

  context->temp_files().Remove(ein);
  context->temp_files().Remove(reversed_edges);

  out.block_path = blocks_path;
  out.num_blocks = next_block;
  CHECK_EQ(io::NumRecordsInFile<SccEntry>(context, blocks_path),
           dag.num_nodes)
      << "every DAG node must be assigned a bisimulation block";
  return out;
}

}  // namespace extscc::app
