#include "app/scc_stats.h"

#include <algorithm>
#include <bit>
#include <sstream>

#include "extsort/external_sorter.h"
#include "io/record_stream.h"
#include "util/logging.h"

namespace extscc::app {

namespace {

using graph::SccEntry;
using graph::SccId;

using graph::SccEntryByScc;

// Bucket index for a component of `size`: floor(log2(size)).
std::size_t BucketIndex(std::uint64_t size) {
  DCHECK_GT(size, 0u);
  return static_cast<std::size_t>(std::bit_width(size) - 1);
}

}  // namespace

std::string SccStats::ToString() const {
  std::ostringstream out;
  out << num_components << " SCCs over " << num_nodes << " nodes; largest "
      << largest_size << " (#" << largest_scc << "); " << num_singletons
      << " singletons";
  if (!histogram.empty()) {
    out << "; histogram:";
    for (const auto& bucket : histogram) {
      if (bucket.num_components == 0) continue;
      out << " [" << bucket.lo << "-" << bucket.hi << "]x"
          << bucket.num_components;
    }
  }
  return out.str();
}

util::Result<SccStats> ComputeSccStats(io::IoContext* context,
                                       const std::string& scc_path,
                                       std::uint32_t top_k) {
  SccStats stats;
  const std::string by_scc = context->NewTempPath("sccstats");
  extsort::SortFile<SccEntry, SccEntryByScc>(context, scc_path, by_scc,
                                             SccEntryByScc{});

  io::RecordReader<SccEntry> reader(context, by_scc);
  SccEntry entry;
  SccId run_label = graph::kInvalidScc;
  std::uint64_t run_size = 0;

  auto close_run = [&]() {
    if (run_size == 0) return;
    ++stats.num_components;
    if (run_size == 1) ++stats.num_singletons;
    if (run_size > stats.largest_size) {
      stats.largest_size = run_size;
      stats.largest_scc = run_label;
    }
    // top-k: insertion into a small sorted vector.
    auto& top = stats.top_sizes;
    const auto pos = std::lower_bound(top.begin(), top.end(), run_size,
                                      std::greater<std::uint64_t>());
    if (pos != top.end() || top.size() < top_k) {
      top.insert(pos, run_size);
      if (top.size() > top_k) top.pop_back();
    }
    const std::size_t bucket = BucketIndex(run_size);
    if (stats.histogram.size() <= bucket) {
      const std::size_t old = stats.histogram.size();
      stats.histogram.resize(bucket + 1);
      for (std::size_t b = old; b <= bucket; ++b) {
        stats.histogram[b].lo = 1ull << b;
        stats.histogram[b].hi = (1ull << (b + 1)) - 1;
      }
    }
    ++stats.histogram[bucket].num_components;
    stats.histogram[bucket].num_nodes += run_size;
  };

  while (reader.Next(&entry)) {
    ++stats.num_nodes;
    if (entry.scc != run_label) {
      close_run();
      run_label = entry.scc;
      run_size = 0;
    }
    ++run_size;
  }
  close_run();
  context->temp_files().Remove(by_scc);
  return stats;
}

}  // namespace extscc::app
