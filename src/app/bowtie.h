// Bow-tie decomposition of a directed graph (Broder et al., "Graph
// structure in the Web") — the classic analysis that motivates computing
// the giant SCC of web graphs in the first place: the web decomposes
// into a CORE (the largest SCC), an IN region that reaches the core, an
// OUT region the core reaches, and everything else (tendrils, tubes,
// disconnected islands — grouped as OTHER here).
//
// Downstream consumer of Ext-SCC output: takes the (node, scc) labels,
// finds the largest component externally (sort by label + run scan), and
// classifies every node with multi-pass sequential reachability
// propagation over the edge file (forward for OUT, over reversed edges
// for IN). Everything is sorts and scans; passes are bounded by the
// graph's unweighted eccentricity from the core, which is small for
// web-like graphs (their effective diameter is logarithmic).
#ifndef EXTSCC_APP_BOWTIE_H_
#define EXTSCC_APP_BOWTIE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "graph/digraph.h"
#include "graph/disk_graph.h"
#include "graph/graph_types.h"
#include "io/io_context.h"
#include "util/status.h"

namespace extscc::app {

enum class BowtieRegion : std::uint32_t {
  kCore = 0,   // member of the largest SCC
  kIn = 1,     // reaches the core, not in it
  kOut = 2,    // reachable from the core, not in it
  kOther = 3,  // tendrils, tubes, disconnected components
};

const char* BowtieRegionName(BowtieRegion region);

struct BowtieResult {
  graph::SccId core_scc = graph::kInvalidScc;
  std::uint64_t core_size = 0;
  std::uint64_t in_size = 0;
  std::uint64_t out_size = 0;
  std::uint64_t other_size = 0;
  std::uint64_t forward_passes = 0;   // OUT propagation scans
  std::uint64_t backward_passes = 0;  // IN propagation scans
  // (node, region) records sorted by node id; region values cast from
  // BowtieRegion.
  std::string region_path;
};

// Decomposes `g` around its largest SCC, given the node-sorted
// (node, scc) labels at `scc_path` (as produced by core::RunExtScc).
// Returns InvalidArgument if the label file does not cover the graph,
// or if the graph is empty.
util::Result<BowtieResult> BowtieDecompose(io::IoContext* context,
                                           const graph::DiskGraph& g,
                                           const std::string& scc_path);

// Region sizes only, computed from the condensation DAG instead of the
// edge file: IN is the total size of SCCs that reach `core_index` in
// `dag` (excluding it), OUT the total it reaches, OTHER the rest. A
// node reaches the core iff its SCC does, so this matches
// BowtieDecompose's sizes exactly — at two in-memory BFS traversals
// instead of multi-pass edge scans. The incremental updater's path:
// its resident state is exactly the DAG plus per-SCC sizes.
// `core_index` is the dense index of the core SCC in `dag`, and
// `scc_sizes[i]` the size of the SCC at dense index i.
struct DagBowtieSizes {
  std::uint64_t core_size = 0;
  std::uint64_t in_size = 0;
  std::uint64_t out_size = 0;
  std::uint64_t other_size = 0;
};
DagBowtieSizes BowtieSizesFromDag(const graph::Digraph& dag,
                                  const std::vector<std::uint64_t>& scc_sizes,
                                  std::size_t core_index);

}  // namespace extscc::app

#endif  // EXTSCC_APP_BOWTIE_H_
