// External maximum-bisimulation on a DAG — the paper's motivating
// application (1) (§I): Hellings et al. [16] compute external-memory
// bisimulation partitions assuming the input is a DAG whose nodes are
// stored in (reverse) topological order on disk, "which needs to find
// all SCCs in a preprocessing step". This module is that consumer: feed
// it the condensation produced by Ext-SCC + BuildCondensation.
//
// Two nodes u, v of a DAG are (forward-) bisimilar iff the sets of
// blocks their successors fall into are equal, recursively; the maximum
// bisimulation is the coarsest such partition. On a DAG it is computed
// exactly in one sweep by increasing *height* (distance from the sinks):
// all sinks form one block, and a node's block is determined by the set
// of blocks of its successors, all of which have smaller height. This is
// the rank-based strategy of [16], realized here with the same external
// vocabulary as the core algorithm: per-height signature construction is
// a sort + merge-join of the edge file against the node-block file, and
// heights come from an external topological levelling of the reversed
// DAG.
//
// I/O cost: O(H * sort(|E|)) for height H — condensations of web-like
// graphs are shallow, which is what makes the rank-based approach
// practical (the observation in [16]). Like [16], the signature
// dictionary of the height currently being processed is held in memory;
// everything crossing heights lives in sorted files.
#ifndef EXTSCC_APP_BISIMULATION_H_
#define EXTSCC_APP_BISIMULATION_H_

#include <cstdint>
#include <string>

#include "graph/disk_graph.h"
#include "graph/graph_types.h"
#include "io/io_context.h"
#include "util/status.h"

namespace extscc::app {

struct BisimulationResult {
  // (node, block) records sorted by node id; blocks dense in
  // [0, num_blocks).
  std::string block_path;
  std::uint64_t num_blocks = 0;
  std::uint64_t num_heights = 0;  // DAG height levels processed
};

// Computes the maximum forward bisimulation of `dag`. Returns
// FailedPrecondition if `dag` has a cycle (run Ext-SCC + condensation
// first — exactly the preprocessing [16] assumes).
util::Result<BisimulationResult> ExternalBisimulation(
    io::IoContext* context, const graph::DiskGraph& dag);

}  // namespace extscc::app

#endif  // EXTSCC_APP_BISIMULATION_H_
