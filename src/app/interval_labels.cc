#include "app/interval_labels.h"

#include <algorithm>
#include <utility>

#include "util/logging.h"
#include "util/random.h"

namespace extscc::app {

IntervalLabels::IntervalLabels() : dag_(std::vector<graph::Edge>{}) {}

IntervalLabels IntervalLabels::Build(graph::Digraph dag,
                                     std::uint32_t num_rounds,
                                     std::uint64_t seed) {
  CHECK_GE(num_rounds, 1u);
  IntervalLabels labels;
  labels.dag_ = std::move(dag);
  const std::size_t n = labels.dag_.num_nodes();
  labels.ranks_.assign(num_rounds, {});
  labels.mins_.assign(num_rounds, {});
  util::Rng rng(seed);

  for (std::uint32_t round = 0; round < num_rounds; ++round) {
    auto& rank = labels.ranks_[round];
    auto& min_rank = labels.mins_[round];
    rank.assign(n, 0);
    min_rank.assign(n, 0);
    if (n == 0) continue;

    // Random-order DFS over the DAG: random root order, random child
    // order, post-order ranks. Any DFS post-order is a reverse
    // topological order, which the min-propagation below relies on.
    std::vector<std::uint32_t> order(n);
    for (std::size_t i = 0; i < n; ++i) {
      order[i] = static_cast<std::uint32_t>(i);
    }
    rng.Shuffle(&order);

    std::vector<bool> visited(n, false);
    std::uint32_t clock = 0;
    // Frame: (node, shuffled children, next child slot).
    struct Frame {
      std::uint32_t node;
      std::vector<std::uint32_t> children;
      std::size_t next = 0;
    };
    std::vector<Frame> stack;
    auto shuffled_children = [&](std::uint32_t v) {
      const auto span = labels.dag_.out_neighbors(v);
      std::vector<std::uint32_t> children(span.begin(), span.end());
      rng.Shuffle(&children);
      return children;
    };
    for (const std::uint32_t root : order) {
      if (visited[root]) continue;
      visited[root] = true;
      stack.push_back({root, shuffled_children(root)});
      while (!stack.empty()) {
        Frame& frame = stack.back();
        if (frame.next < frame.children.size()) {
          const std::uint32_t c = frame.children[frame.next++];
          if (!visited[c]) {
            visited[c] = true;
            stack.push_back({c, shuffled_children(c)});
          }
        } else {
          rank[frame.node] = clock++;
          stack.pop_back();
        }
      }
    }
    CHECK_EQ(clock, n);

    // min over everything reachable: process in increasing rank (every
    // out-neighbour has a smaller rank, so its min is already final).
    std::vector<std::uint32_t> by_rank(n);
    for (std::size_t v = 0; v < n; ++v) by_rank[rank[v]] = v;
    for (std::size_t r = 0; r < n; ++r) {
      const std::uint32_t v = by_rank[r];
      std::uint32_t m = rank[v];
      for (const std::uint32_t w : labels.dag_.out_neighbors(v)) {
        DCHECK_LT(rank[w], rank[v]) << "post-order rank must reverse edges";
        m = std::min(m, min_rank[w]);
      }
      min_rank[v] = m;
    }
  }
  return labels;
}

util::Result<IntervalLabels> IntervalLabels::FromParts(
    graph::Digraph dag, std::vector<std::vector<std::uint32_t>> ranks,
    std::vector<std::vector<std::uint32_t>> mins) {
  if (ranks.empty() || ranks.size() != mins.size()) {
    return util::Status::InvalidArgument(
        "interval labels need matching, non-empty rank/min rounds");
  }
  const std::size_t n = dag.num_nodes();
  for (std::size_t r = 0; r < ranks.size(); ++r) {
    if (ranks[r].size() != n || mins[r].size() != n) {
      return util::Status::InvalidArgument(
          "interval label round does not cover every DAG node");
    }
  }
  IntervalLabels labels;
  labels.dag_ = std::move(dag);
  labels.ranks_ = std::move(ranks);
  labels.mins_ = std::move(mins);
  return labels;
}

bool IntervalLabels::IntervalsNest(std::size_t from_idx,
                                   std::size_t to_idx) const {
  for (std::size_t r = 0; r < ranks_.size(); ++r) {
    if (ranks_[r][to_idx] > ranks_[r][from_idx] ||
        mins_[r][to_idx] < mins_[r][from_idx]) {
      return false;
    }
  }
  return true;
}

bool IntervalLabels::SccReachable(graph::SccId from, graph::SccId to,
                                  IntervalLabelCounters* counters) const {
  IntervalLabelCounters local;
  IntervalLabelCounters& c = counters != nullptr ? *counters : local;
  ++c.queries;
  if (from == to) {
    ++c.same_scc_hits;
    return true;
  }
  const std::size_t from_idx = dag_.index_of(from);
  const std::size_t to_idx = dag_.index_of(to);
  CHECK_LT(from_idx, dag_.num_nodes()) << "unknown SCC " << from;
  CHECK_LT(to_idx, dag_.num_nodes()) << "unknown SCC " << to;
  if (!IntervalsNest(from_idx, to_idx)) {
    ++c.interval_refutations;
    return false;
  }
  // Pruned DFS fallback: only descend into children whose intervals
  // still contain the target's.
  ++c.dfs_fallbacks;
  std::vector<std::uint32_t> stack{static_cast<std::uint32_t>(from_idx)};
  std::vector<bool> seen(dag_.num_nodes(), false);
  seen[from_idx] = true;
  while (!stack.empty()) {
    const std::uint32_t v = stack.back();
    stack.pop_back();
    if (v == to_idx) return true;
    for (const std::uint32_t w : dag_.out_neighbors(v)) {
      if (!seen[w] && IntervalsNest(w, to_idx)) {
        seen[w] = true;
        stack.push_back(w);
      }
    }
  }
  return false;
}

}  // namespace extscc::app
