// GRAIL-style randomized interval labels over a condensation DAG
// (Yildirim, Chaoji, Zaki — the paper's [25]): k independent random
// post-order traversals, each assigning node x the interval
// [min-rank-in-subtree(x), rank(x)]. Interval containment is a
// necessary condition for reachability, so any round whose intervals
// do NOT nest refutes a query immediately; nested rounds fall back to
// a pruned DFS.
//
// This is the resident query core shared by app::ReachabilityIndex
// (one-shot pipeline) and the serve artifact (built once, reopened
// many times): it owns the DAG plus the label arrays and nothing else.
// Every query method is const and touches only per-call state, so one
// IntervalLabels may serve concurrent reader threads; callers that
// want the hit/refutation breakdown pass their own counters.
#ifndef EXTSCC_APP_INTERVAL_LABELS_H_
#define EXTSCC_APP_INTERVAL_LABELS_H_

#include <cstdint>
#include <vector>

#include "graph/digraph.h"
#include "graph/graph_types.h"
#include "util/status.h"

namespace extscc::app {

// Per-call query breakdown (the caller owns and aggregates these —
// the labels themselves hold no mutable state).
struct IntervalLabelCounters {
  std::uint64_t queries = 0;
  std::uint64_t same_scc_hits = 0;        // answered by label equality
  std::uint64_t interval_refutations = 0;  // answered by non-nesting
  std::uint64_t dfs_fallbacks = 0;         // needed a pruned DFS
};

class IntervalLabels {
 public:
  // Empty labels over an empty DAG.
  IntervalLabels();

  // Builds `num_rounds` independent random labelings over `dag`
  // (random root order, random child order, post-order ranks).
  // Requires num_rounds >= 1.
  static IntervalLabels Build(graph::Digraph dag, std::uint32_t num_rounds,
                              std::uint64_t seed);

  // Reassembles labels from serialized parts (the serve artifact
  // reader). Each of `ranks` and `mins` must hold num_rounds vectors
  // of dag.num_nodes() entries with num_rounds >= 1; shape mismatches
  // return kInvalidArgument (readers of untrusted bytes map this to
  // their corruption handling).
  static util::Result<IntervalLabels> FromParts(
      graph::Digraph dag, std::vector<std::vector<std::uint32_t>> ranks,
      std::vector<std::vector<std::uint32_t>> mins);

  // True iff SCC `from` reaches SCC `to` in the DAG. Both must be
  // nodes of the DAG (CHECK otherwise). Thread-safe: const, per-call
  // scratch only.
  bool SccReachable(graph::SccId from, graph::SccId to,
                    IntervalLabelCounters* counters = nullptr) const;

  const graph::Digraph& dag() const { return dag_; }
  std::uint32_t num_rounds() const {
    return static_cast<std::uint32_t>(ranks_.size());
  }
  // Serialization accessors: round r's post-order ranks / subtree
  // minima, indexed by dense DAG node index.
  const std::vector<std::uint32_t>& ranks(std::size_t round) const {
    return ranks_[round];
  }
  const std::vector<std::uint32_t>& mins(std::size_t round) const {
    return mins_[round];
  }

 private:
  // Necessary condition for from -> to in every round:
  // [min(to), rank(to)] subset of [min(from), rank(from)].
  bool IntervalsNest(std::size_t from_idx, std::size_t to_idx) const;

  graph::Digraph dag_;
  std::vector<std::vector<std::uint32_t>> ranks_;
  std::vector<std::vector<std::uint32_t>> mins_;
};

}  // namespace extscc::app

#endif  // EXTSCC_APP_INTERVAL_LABELS_H_
