// External SCC statistics — summarises a (node, scc) label file without
// assuming it fits in memory: component count, size histogram by powers
// of two, the largest components, and singleton share. This is the
// report every downstream consumer wants first (how big is the giant
// SCC? how heavy is the singleton tail?), and it doubles as a sanity
// check on generator post-conditions (Table I's planted sizes).
//
// Cost: one external sort of the label file by component plus two
// sequential scans.
#ifndef EXTSCC_APP_SCC_STATS_H_
#define EXTSCC_APP_SCC_STATS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "graph/graph_types.h"
#include "io/io_context.h"
#include "util/status.h"

namespace extscc::app {

struct SccSizeBucket {
  // Sizes in [lo, hi] (inclusive); power-of-two ranges: [1,1], [2,3],
  // [4,7], ...
  std::uint64_t lo = 0;
  std::uint64_t hi = 0;
  std::uint64_t num_components = 0;
  std::uint64_t num_nodes = 0;
};

struct SccStats {
  std::uint64_t num_nodes = 0;
  std::uint64_t num_components = 0;
  std::uint64_t num_singletons = 0;
  std::uint64_t largest_size = 0;
  graph::SccId largest_scc = graph::kInvalidScc;
  // Largest component sizes, descending, at most `top_k` of them.
  std::vector<std::uint64_t> top_sizes;
  std::vector<SccSizeBucket> histogram;  // ascending by size range

  // Paper-style one-block summary for logs and examples.
  std::string ToString() const;
};

// Computes statistics for the label file at `scc_path` (any (node, scc)
// record order; need not be node-sorted). `top_k` bounds the in-memory
// top list (O(top_k) extra memory).
util::Result<SccStats> ComputeSccStats(io::IoContext* context,
                                       const std::string& scc_path,
                                       std::uint32_t top_k = 5);

}  // namespace extscc::app

#endif  // EXTSCC_APP_SCC_STATS_H_
