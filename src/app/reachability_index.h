// Reachability index over the SCC condensation — the paper's motivating
// application (2) (§I): "almost all algorithms to process reachability
// queries over a general directed graph G first convert G into a DAG by
// contracting an SCC into a node".
//
// This module implements that pipeline end to end: Ext-SCC labels
// (computed externally by the caller) + BuildCondensation produce the
// DAG; on the DAG we build GRAIL-style randomized interval labels —
// the shared app::IntervalLabels core (interval_labels.h), which also
// backs the serve artifact. This wrapper adds the node→SCC map and the
// accumulated query-stat counters of the original one-shot pipeline.
//
// The index is in-memory over the *condensation*, which is exactly what
// makes external SCC computation the enabling step: the raw graph may be
// out of core while its DAG of SCCs fits comfortably (the paper's
// WEBSPAM-UK2007 has 106M nodes but far fewer components).
#ifndef EXTSCC_APP_REACHABILITY_INDEX_H_
#define EXTSCC_APP_REACHABILITY_INDEX_H_

#include <cstdint>
#include <string>
#include <vector>

#include "app/interval_labels.h"
#include "graph/digraph.h"
#include "graph/disk_graph.h"
#include "graph/graph_types.h"
#include "io/io_context.h"
#include "util/status.h"

namespace extscc::app {

struct ReachabilityIndexOptions {
  // Number of independent random interval labelings. More labels refute
  // more negative queries without DFS; GRAIL uses 2-5.
  std::uint32_t num_labels = 3;
  std::uint64_t seed = 1;
};

struct ReachabilityIndexStats {
  std::uint64_t dag_nodes = 0;
  std::uint64_t dag_edges = 0;
  // Query counters (mutated by Reachable; reset with ResetQueryStats).
  mutable std::uint64_t queries = 0;
  mutable std::uint64_t same_scc_hits = 0;      // answered by label equality
  mutable std::uint64_t interval_refutations = 0;  // answered by non-nesting
  mutable std::uint64_t dfs_fallbacks = 0;         // needed a pruned DFS
};

class ReachabilityIndex {
 public:
  // Builds the index for graph `g` whose node-sorted (node, scc) labels
  // live at `scc_path` (as produced by core::RunExtScc or any Semi-SCC
  // backend). Reads the condensation with sequential scans/sorts; the
  // DAG itself is then held in memory.
  static util::Result<ReachabilityIndex> Build(
      io::IoContext* context, const graph::DiskGraph& g,
      const std::string& scc_path, const ReachabilityIndexOptions& options);

  // True iff `from` reaches `to` in the original graph. Nodes must have
  // been labelled at build time (CHECK otherwise).
  bool Reachable(graph::NodeId from, graph::NodeId to) const;

  // True iff SCC `from` reaches SCC `to` in the condensation.
  bool SccReachable(graph::SccId from, graph::SccId to) const;

  graph::SccId scc_of(graph::NodeId node) const;
  const ReachabilityIndexStats& stats() const { return stats_; }
  void ResetQueryStats() const;

  // The resident label core (DAG + intervals) — what the serve
  // artifact persists.
  const IntervalLabels& labels() const { return interval_labels_; }

 private:
  ReachabilityIndex() = default;

  std::vector<graph::NodeId> node_ids_;  // sorted; parallel to labels_
  std::vector<graph::SccId> labels_;
  IntervalLabels interval_labels_;
  ReachabilityIndexStats stats_;
};

}  // namespace extscc::app

#endif  // EXTSCC_APP_REACHABILITY_INDEX_H_
