#include "app/reachability_index.h"

#include <algorithm>
#include <utility>

#include "io/record_stream.h"
#include "scc/condensation.h"
#include "util/logging.h"

namespace extscc::app {

namespace {

using graph::Edge;
using graph::NodeId;
using graph::SccId;

}  // namespace

util::Result<ReachabilityIndex> ReachabilityIndex::Build(
    io::IoContext* context, const graph::DiskGraph& g,
    const std::string& scc_path, const ReachabilityIndexOptions& options) {
  if (options.num_labels == 0) {
    return util::Status::InvalidArgument(
        "reachability index needs at least one labeling round");
  }
  ReachabilityIndex index;

  // Node -> SCC map (node-sorted on disk already).
  {
    io::RecordReader<graph::SccEntry> reader(context, scc_path);
    graph::SccEntry entry;
    while (reader.Next(&entry)) {
      index.node_ids_.push_back(entry.node);
      index.labels_.push_back(entry.scc);
    }
  }
  if (index.node_ids_.size() != g.num_nodes) {
    return util::Status::InvalidArgument(
        "SCC file does not label every node of the graph");
  }

  // Condensation DAG (external sorts/scans), then load it in memory —
  // the whole point of condensing: the DAG of SCCs is small even when
  // the input graph is not.
  const auto condensation = scc::BuildCondensation(context, g, scc_path);
  index.stats_.dag_nodes = condensation.dag.num_nodes;
  index.stats_.dag_edges = condensation.dag.num_edges;
  {
    const auto dag_nodes =
        io::ReadAllRecords<NodeId>(context, condensation.dag.node_path);
    const auto dag_edges =
        io::ReadAllRecords<Edge>(context, condensation.dag.edge_path);
    index.interval_labels_ =
        IntervalLabels::Build(graph::Digraph(dag_nodes, dag_edges),
                              options.num_labels, options.seed);
  }
  return index;
}

graph::SccId ReachabilityIndex::scc_of(NodeId node) const {
  const auto it =
      std::lower_bound(node_ids_.begin(), node_ids_.end(), node);
  CHECK(it != node_ids_.end() && *it == node)
      << "node " << node << " was not labelled at index build time";
  return labels_[static_cast<std::size_t>(it - node_ids_.begin())];
}

bool ReachabilityIndex::SccReachable(SccId from, SccId to) const {
  IntervalLabelCounters counters;
  const bool reachable = interval_labels_.SccReachable(from, to, &counters);
  stats_.queries += counters.queries;
  stats_.same_scc_hits += counters.same_scc_hits;
  stats_.interval_refutations += counters.interval_refutations;
  stats_.dfs_fallbacks += counters.dfs_fallbacks;
  return reachable;
}

bool ReachabilityIndex::Reachable(NodeId from, NodeId to) const {
  return SccReachable(scc_of(from), scc_of(to));
}

void ReachabilityIndex::ResetQueryStats() const {
  stats_.queries = 0;
  stats_.same_scc_hits = 0;
  stats_.interval_refutations = 0;
  stats_.dfs_fallbacks = 0;
}

}  // namespace extscc::app
