#include "app/reachability_index.h"

#include <algorithm>
#include <utility>

#include "io/record_stream.h"
#include "scc/condensation.h"
#include "util/logging.h"
#include "util/random.h"

namespace extscc::app {

namespace {

using graph::Edge;
using graph::NodeId;
using graph::SccId;

}  // namespace

util::Result<ReachabilityIndex> ReachabilityIndex::Build(
    io::IoContext* context, const graph::DiskGraph& g,
    const std::string& scc_path, const ReachabilityIndexOptions& options) {
  if (options.num_labels == 0) {
    return util::Status::InvalidArgument(
        "reachability index needs at least one labeling round");
  }
  ReachabilityIndex index;

  // Node -> SCC map (node-sorted on disk already).
  {
    io::RecordReader<graph::SccEntry> reader(context, scc_path);
    graph::SccEntry entry;
    while (reader.Next(&entry)) {
      index.node_ids_.push_back(entry.node);
      index.labels_.push_back(entry.scc);
    }
  }
  if (index.node_ids_.size() != g.num_nodes) {
    return util::Status::InvalidArgument(
        "SCC file does not label every node of the graph");
  }

  // Condensation DAG (external sorts/scans), then load it in memory —
  // the whole point of condensing: the DAG of SCCs is small even when
  // the input graph is not.
  const auto condensation = scc::BuildCondensation(context, g, scc_path);
  index.stats_.dag_nodes = condensation.dag.num_nodes;
  index.stats_.dag_edges = condensation.dag.num_edges;
  {
    const auto dag_nodes =
        io::ReadAllRecords<NodeId>(context, condensation.dag.node_path);
    const auto dag_edges =
        io::ReadAllRecords<Edge>(context, condensation.dag.edge_path);
    index.dag_ = graph::Digraph(dag_nodes, dag_edges);
  }

  const std::size_t n = index.dag_.num_nodes();
  index.ranks_.assign(options.num_labels, {});
  index.mins_.assign(options.num_labels, {});
  util::Rng rng(options.seed);

  for (std::uint32_t round = 0; round < options.num_labels; ++round) {
    auto& rank = index.ranks_[round];
    auto& min_rank = index.mins_[round];
    rank.assign(n, 0);
    min_rank.assign(n, 0);
    if (n == 0) continue;

    // Random-order DFS over the DAG: random root order, random child
    // order, post-order ranks. Any DFS post-order is a reverse
    // topological order, which the min-propagation below relies on.
    std::vector<std::uint32_t> order(n);
    for (std::size_t i = 0; i < n; ++i) {
      order[i] = static_cast<std::uint32_t>(i);
    }
    rng.Shuffle(&order);

    std::vector<bool> visited(n, false);
    std::uint32_t clock = 0;
    // Frame: (node, shuffled children, next child slot).
    struct Frame {
      std::uint32_t node;
      std::vector<std::uint32_t> children;
      std::size_t next = 0;
    };
    std::vector<Frame> stack;
    auto shuffled_children = [&](std::uint32_t v) {
      const auto span = index.dag_.out_neighbors(v);
      std::vector<std::uint32_t> children(span.begin(), span.end());
      rng.Shuffle(&children);
      return children;
    };
    for (const std::uint32_t root : order) {
      if (visited[root]) continue;
      visited[root] = true;
      stack.push_back({root, shuffled_children(root)});
      while (!stack.empty()) {
        Frame& frame = stack.back();
        if (frame.next < frame.children.size()) {
          const std::uint32_t c = frame.children[frame.next++];
          if (!visited[c]) {
            visited[c] = true;
            stack.push_back({c, shuffled_children(c)});
          }
        } else {
          rank[frame.node] = clock++;
          stack.pop_back();
        }
      }
    }
    CHECK_EQ(clock, n);

    // min over everything reachable: process in increasing rank (every
    // out-neighbour has a smaller rank, so its min is already final).
    std::vector<std::uint32_t> by_rank(n);
    for (std::size_t v = 0; v < n; ++v) by_rank[rank[v]] = v;
    for (std::size_t r = 0; r < n; ++r) {
      const std::uint32_t v = by_rank[r];
      std::uint32_t m = rank[v];
      for (const std::uint32_t w : index.dag_.out_neighbors(v)) {
        DCHECK_LT(rank[w], rank[v]) << "post-order rank must reverse edges";
        m = std::min(m, min_rank[w]);
      }
      min_rank[v] = m;
    }
  }
  return index;
}

graph::SccId ReachabilityIndex::scc_of(NodeId node) const {
  const auto it =
      std::lower_bound(node_ids_.begin(), node_ids_.end(), node);
  CHECK(it != node_ids_.end() && *it == node)
      << "node " << node << " was not labelled at index build time";
  return labels_[static_cast<std::size_t>(it - node_ids_.begin())];
}

bool ReachabilityIndex::IntervalsNest(std::size_t from_idx,
                                      std::size_t to_idx) const {
  // Necessary condition for from -> to in every round:
  // [min(to), rank(to)] subset of [min(from), rank(from)].
  for (std::size_t r = 0; r < ranks_.size(); ++r) {
    if (ranks_[r][to_idx] > ranks_[r][from_idx] ||
        mins_[r][to_idx] < mins_[r][from_idx]) {
      return false;
    }
  }
  return true;
}

bool ReachabilityIndex::SccReachable(SccId from, SccId to) const {
  ++stats_.queries;
  if (from == to) {
    ++stats_.same_scc_hits;
    return true;
  }
  const std::size_t from_idx = dag_.index_of(from);
  const std::size_t to_idx = dag_.index_of(to);
  CHECK_LT(from_idx, dag_.num_nodes()) << "unknown SCC " << from;
  CHECK_LT(to_idx, dag_.num_nodes()) << "unknown SCC " << to;
  if (!IntervalsNest(from_idx, to_idx)) {
    ++stats_.interval_refutations;
    return false;
  }
  // Pruned DFS fallback: only descend into children whose intervals
  // still contain the target's.
  ++stats_.dfs_fallbacks;
  std::vector<std::uint32_t> stack{static_cast<std::uint32_t>(from_idx)};
  std::vector<bool> seen(dag_.num_nodes(), false);
  seen[from_idx] = true;
  while (!stack.empty()) {
    const std::uint32_t v = stack.back();
    stack.pop_back();
    if (v == to_idx) return true;
    for (const std::uint32_t w : dag_.out_neighbors(v)) {
      if (!seen[w] && IntervalsNest(w, to_idx)) {
        seen[w] = true;
        stack.push_back(w);
      }
    }
  }
  return false;
}

bool ReachabilityIndex::Reachable(NodeId from, NodeId to) const {
  return SccReachable(scc_of(from), scc_of(to));
}

void ReachabilityIndex::ResetQueryStats() const {
  stats_.queries = 0;
  stats_.same_scc_hits = 0;
  stats_.interval_refutations = 0;
  stats_.dfs_fallbacks = 0;
}

}  // namespace extscc::app
