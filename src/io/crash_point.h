// Deterministic crash injection for crash-consistency testing.
//
// A CrashPoint is a named place in the code where process death is
// *interesting* for durability: just before an fsync, between a rename
// and its parent-directory fsync, between two checkpoint-manifest
// steps. Each call to CrashPointHit(tag) claims the next global
// ordinal (same monotone-ordinal discipline as FaultInjectingDevice's
// op counter, so a given run replays the same sequence every time);
// when the registry is armed with spec "N" or "tag:N", the Nth hit
// (counting only hits whose tag contains the spec's tag substring)
// prints the tag to stderr and dies with _Exit(kCrashExitCode) —
// no destructors, no atexit, no signal-handler cleanup, exactly the
// state a power cut or SIGKILL leaves behind.
//
// The seeded randomness lives in the kill-loop harness
// (tests/crash_test.cc), which draws N from a SplitMix64 stream: the
// registry itself is pure ordinal so any observed failure can be
// replayed with a single --crash-at=N.
//
// Disarmed (the default), a hit is one relaxed atomic increment — the
// production path never branches into crash logic.
#ifndef EXTSCC_IO_CRASH_POINT_H_
#define EXTSCC_IO_CRASH_POINT_H_

#include <cstdint>
#include <string>

namespace extscc::io {

// Exit code of an injected crash: distinct from every code in
// extscc_tool's documented map so harnesses can tell "crashed where I
// asked" from every organic failure.
inline constexpr int kCrashExitCode = 86;

struct CrashSpec {
  // Only hits whose tag contains this substring count ("" = all).
  std::string tag;
  // 1-based: die at the Nth counted hit. 0 = disarmed.
  std::uint64_t ordinal = 0;
};

// Parses "N" or "tag:N" (e.g. "7", "publish.rename:1", "dlog:3").
// Returns "" on success, else an error message naming the bad spec.
std::string ParseCrashSpec(const std::string& text, CrashSpec* out);

// Arms (ordinal >= 1) or disarms (ordinal == 0) the process-wide
// registry. Not thread-safe against in-flight hits; call before
// starting work, the way extscc_tool does from main().
void ArmCrashPoint(const CrashSpec& spec);

// The injection site. Claims an ordinal; if armed and this is the Nth
// matching hit, the process dies here with _Exit(kCrashExitCode).
void CrashPointHit(const char* tag);

// Total hits claimed so far (armed or not) — lets tests size a sweep.
std::uint64_t CrashPointsPassed();

}  // namespace extscc::io

#endif  // EXTSCC_IO_CRASH_POINT_H_
