#include "io/io_context.h"

#include "util/logging.h"

namespace extscc::io {

IoContext::IoContext(const IoContextOptions& options)
    : options_(options),
      memory_(options.memory_bytes),
      temp_files_(options.temp_parent_dir, options.scratch_dirs) {
  CHECK_GE(options.memory_bytes, 2 * options.block_size)
      << "external-memory model requires M >= 2B";
  temp_files_.set_keep_files(options.keep_temp_files);
}

void IoContext::OnIo() {
  if (options_.io_budget > 0 && stats_.total_ios() > options_.io_budget) {
    io_budget_exceeded_.store(true, std::memory_order_relaxed);
  }
}

}  // namespace extscc::io
