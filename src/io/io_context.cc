#include "io/io_context.h"

#include <algorithm>

#include "io/fault_injection.h"
#include "util/logging.h"

namespace extscc::io {

namespace {

// Builds the scratch device set from the options: one device per
// scratch_dirs entry (or a single one under temp_parent_dir), backed
// per the device model. Names are stable ("disk0".., "mem0"..,
// "sim0"..) so per-device stats rows are self-describing.
std::vector<std::unique_ptr<StorageDevice>> BuildScratchDevices(
    const IoContextOptions& options) {
  // Posix shares the TempFileManager convenience ctor's construction
  // path, so the options route and the legacy ctor produce identical
  // device sets by definition.
  if (options.device_model.model == DeviceModel::kPosix) {
    return MakePosixScratchDevices(options.temp_parent_dir,
                                   options.scratch_dirs);
  }
  const std::size_t count = std::max<std::size_t>(
      1, options.scratch_dirs.size());
  std::vector<std::unique_ptr<StorageDevice>> devices;
  devices.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    const std::string parent = options.scratch_dirs.empty()
                                   ? options.temp_parent_dir
                                   : options.scratch_dirs[i];
    const std::string suffix = std::to_string(i);
    if (options.device_model.model == DeviceModel::kMem) {
      devices.push_back(std::make_unique<MemDevice>("mem" + suffix));
    } else if (options.device_model.model == DeviceModel::kFaulty) {
      const FaultSpec& spec = options.device_model.fault;
      const std::string name = "flt" + suffix;
      std::unique_ptr<StorageDevice> inner;
      if (spec.inner == DeviceModel::kMem) {
        inner = std::make_unique<MemDevice>(name + "_mem");
      } else {
        inner = std::make_unique<PosixDevice>(name + "_posix", parent);
      }
      if (spec.device_index >= 0 &&
          static_cast<std::size_t>(spec.device_index) != i) {
        // The spec targets one specific device; its siblings are built
        // clean (the inner device verbatim) — the single-bad-disk
        // failover scenario.
        devices.push_back(std::move(inner));
      } else {
        FaultSpec device_spec = spec;
        // Decorrelate the devices' schedules: with a shared seed every
        // device would fault at the same op ordinals.
        device_spec.seed = spec.seed + i;
        devices.push_back(std::make_unique<FaultInjectingDevice>(
            name, std::move(inner), std::move(device_spec)));
      }
    } else {
      devices.push_back(std::make_unique<ThrottledDevice>(
          "sim" + suffix,
          std::make_unique<PosixDevice>("sim" + suffix + "_posix", parent),
          options.device_model.throttle_latency_us,
          options.device_model.throttle_mb_per_sec));
    }
  }
  return devices;
}

}  // namespace

IoContext::IoContext(const IoContextOptions& options)
    : options_(options),
      memory_(options.memory_bytes),
      temp_files_(BuildScratchDevices(options), options.scratch_placement) {
  CHECK_GE(options.memory_bytes, 2 * options.block_size)
      << "external-memory model requires M >= 2B";
  temp_files_.set_keep_files(options.keep_temp_files);
  // Striped placement needs the physical stride before the first open:
  // block_size, plus the CRC32 trailer when scratch blocks carry one.
  temp_files_.ConfigureStriping(options.block_size, options.checksum_blocks);
  if (options.io_threads > 0) {
    read_scheduler_ = std::make_unique<ReadScheduler>(
        &memory_, options.block_size, options.io_threads,
        options.prefetch_depth);
  }
}

std::vector<IoContext::DeviceStatsRow> IoContext::DeviceStats() const {
  std::vector<DeviceStatsRow> rows;
  const auto scratch = temp_files_.devices();
  rows.reserve(scratch.size() + 1);
  rows.push_back({base_device_.name(), base_device_.stats()});
  for (const StorageDevice* device : scratch) {
    rows.push_back({device->name(), device->stats()});
  }
  return rows;
}

std::uint64_t IoContext::max_per_device_ios() const {
  std::uint64_t max_ios = base_device_.stats().total_ios();
  for (const StorageDevice* device : temp_files_.devices()) {
    max_ios = std::max(max_ios, device->stats().total_ios());
  }
  return max_ios;
}

void IoContext::OnIo() {
  if (options_.io_budget > 0 && stats_.total_ios() > options_.io_budget) {
    io_budget_exceeded_.store(true, std::memory_order_relaxed);
  }
}

void IoContext::RecordIoError(const util::Status& status) {
  if (status.ok()) return;
  std::lock_guard<std::mutex> lock(io_error_mu_);
  if (!io_error_.ok()) return;  // first error wins
  io_error_ = status;
  has_io_error_.store(true, std::memory_order_release);
}

util::Status IoContext::io_error() const {
  std::lock_guard<std::mutex> lock(io_error_mu_);
  return io_error_;
}

bool IoContext::AbsorbIoError(const util::Status& recovered) {
  std::lock_guard<std::mutex> lock(io_error_mu_);
  if (io_error_.ok()) return false;
  if (io_error_.code() != recovered.code() ||
      io_error_.message() != recovered.message()) {
    return false;
  }
  io_error_ = util::Status::Ok();
  has_io_error_.store(false, std::memory_order_release);
  return true;
}

void IoContext::reset_io_error() {
  std::lock_guard<std::mutex> lock(io_error_mu_);
  io_error_ = util::Status::Ok();
  has_io_error_.store(false, std::memory_order_release);
}

}  // namespace extscc::io
