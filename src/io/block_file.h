// Block-granular file abstraction. All disk traffic in the library flows
// through BlockFile so the IoContext can count I/Os in the external-memory
// model: one counted I/O per block read/written, classified sequential or
// random by adjacency to the previous access of the same file+direction.
//
// BlockFile is seated on a StorageDevice (storage.h): the path resolves
// to the device whose session root contains it (the context's default
// PosixDevice for non-scratch paths), raw transfers go through the
// device's StorageFile handle, and every counted I/O lands in the
// device's own IoStats as well as the context aggregate — the basis of
// the per-device accounting and the parallel-bandwidth model.
#ifndef EXTSCC_IO_BLOCK_FILE_H_
#define EXTSCC_IO_BLOCK_FILE_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>

#include "io/storage.h"

namespace extscc::io {

class IoContext;

class BlockFile {
 public:
  // Opens `path` on the device the context resolves for it. CHECK-fails
  // on OS errors for scratch files the library itself created; callers
  // opening user-supplied paths should check Exists() first
  // (graph_io does).
  BlockFile(IoContext* context, const std::string& path, OpenMode mode);
  ~BlockFile();

  BlockFile(const BlockFile&) = delete;
  BlockFile& operator=(const BlockFile&) = delete;

  // Reads block `block_index` into `buf` (must hold block_size bytes).
  // Returns the number of valid bytes (< block_size only for the final,
  // partial block; 0 past EOF). Counts one I/O.
  std::size_t ReadBlock(std::uint64_t block_index, void* buf);

  // Writes `bytes` bytes (<= block_size) at block `block_index`.
  // Counts one I/O.
  void WriteBlock(std::uint64_t block_index, const void* data,
                  std::size_t bytes);

  // Starts a background thread that reads blocks `start_block`..EOF ahead
  // of the consumer into a bounded ring of context()->prefetch_depth()
  // buffers, overlapping disk latency with compute. kRead files only.
  // I/O statistics are still recorded on the consumer thread as each
  // block is consumed by ReadBlock, so the model accounting is identical
  // with and without prefetch. A no-op when the IoContext has prefetch
  // disabled or the MemoryBudget cannot cover the buffers; ReadBlock
  // falls back to a direct device read whenever a request leaves the
  // prefetched sequence (sequential readers never do).
  void StartSequentialPrefetch(std::uint64_t start_block = 0);

  // Logical file size in bytes / in blocks.
  std::uint64_t size_bytes() const { return size_bytes_; }
  std::uint64_t num_blocks() const;

  std::size_t block_size() const { return block_size_; }
  const std::string& path() const { return path_; }
  IoContext* context() const { return context_; }
  StorageDevice* device() const { return device_; }

 private:
  class Prefetcher;

  // Records the model accounting for a consumed read of `block_index`
  // carrying `bytes` payload bytes (shared by the direct and prefetched
  // paths; always runs on the consumer thread).
  void CountRead(std::uint64_t block_index, std::size_t bytes);

  // Uncounted raw read of one block; returns the payload size (0 past
  // EOF). Thread-safe (positional device read) — the prefetch thread
  // uses it directly.
  std::size_t PreadBlock(std::uint64_t block_index, void* buf);

  IoContext* context_;
  std::string path_;
  StorageDevice* device_;
  std::unique_ptr<StorageFile> file_;
  std::size_t block_size_;
  std::uint64_t size_bytes_ = 0;
  // Sequential/random classification state.
  std::int64_t last_read_block_ = -2;
  std::int64_t last_write_block_ = -2;
  std::unique_ptr<Prefetcher> prefetcher_;
};

}  // namespace extscc::io

#endif  // EXTSCC_IO_BLOCK_FILE_H_
