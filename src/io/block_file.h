// Block-granular file abstraction. All disk traffic in the library flows
// through BlockFile so the IoContext can count I/Os in the external-memory
// model: one counted I/O per block read/written, classified sequential or
// random by adjacency to the previous access of the same file+direction.
//
// BlockFile is seated on a StorageDevice (storage.h): the path resolves
// to the device whose session root contains it (the context's default
// PosixDevice for non-scratch paths), raw transfers go through the
// device's StorageFile handle, and every counted I/O lands in the
// device's own IoStats as well as the context aggregate — the basis of
// the per-device accounting and the parallel-bandwidth model.
//
// BlockFile is also the fault-tolerance seam (docs/robustness.md):
// every raw device transfer runs under the context's bounded
// exponential-backoff retry policy (transient faults are retried and
// counted in IoStats::{read,write}_retries — never as model I/Os),
// persistent failures park a sticky per-file status() AND latch the
// context's I/O error (IoContext::RecordIoError), and — when
// IoContextOptions::checksum_blocks is on — scratch blocks carry a
// CRC32 trailer verified on read (mismatch = kCorruption, not
// retried). The block-returning ReadBlock/WriteBlock signatures are
// unchanged: on error they report EOF-shaped results (0 bytes / no-op)
// and the caller observes the failure through status(), so the hot
// loops above stay branch-light and the error still cannot be lost.
#ifndef EXTSCC_IO_BLOCK_FILE_H_
#define EXTSCC_IO_BLOCK_FILE_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>

#include "io/storage.h"
#include "util/status.h"

namespace extscc::io {

class IoContext;
class ReadScheduler;
class ScheduledStream;

class BlockFile {
 public:
  // Opens `path` on the device the context resolves for it. On an open
  // failure the file is constructed dead: status() carries the
  // errno-typed IoError (also latched on the context), reads return 0
  // and writes no-op. Callers opening user-supplied paths should check
  // Exists()/status() (graph_io does).
  BlockFile(IoContext* context, const std::string& path, OpenMode mode);
  ~BlockFile();

  BlockFile(const BlockFile&) = delete;
  BlockFile& operator=(const BlockFile&) = delete;

  // Reads block `block_index` into `buf` (must hold block_size bytes).
  // Returns the number of valid bytes (< block_size only for the final,
  // partial block; 0 past EOF — and 0 on a parked error, see status()).
  // Counts one I/O per successfully consumed block.
  std::size_t ReadBlock(std::uint64_t block_index, void* buf);

  // Writes `bytes` bytes (<= block_size) at block `block_index`.
  // Counts one I/O. A no-op once an error is parked.
  void WriteBlock(std::uint64_t block_index, const void* data,
                  std::size_t bytes);

  // Arranges read-ahead for a sequential scan of blocks
  // `start_block`..EOF. kRead files only. With
  // IoContextOptions::io_threads > 0 the file registers a stream with
  // the context's shared ReadScheduler (one I/O worker per device keeps
  // up to prefetch_depth blocks in flight); otherwise, with
  // IoContextOptions::prefetch, it spawns the legacy per-file prefetch
  // thread. Either way I/O statistics are still recorded on the
  // consumer thread as each block is consumed by ReadBlock, so the
  // model accounting is identical with and without read-ahead. A no-op
  // when both engines are off or the MemoryBudget cannot cover the
  // buffers; ReadBlock falls back to a direct device read whenever a
  // request leaves the sequential order (sequential readers never do).
  void StartSequentialPrefetch(std::uint64_t start_block = 0);

  // Routes subsequent WriteBlock calls through the device's I/O worker
  // with one block in flight (double buffering): the device write of
  // block N overlaps the production of block N+1, and a slow device
  // backpressures the producer. Write statistics are counted on the
  // submitting thread in submission order, so IoStats are identical to
  // the synchronous path. A no-op without a ReadScheduler
  // (io_threads == 0) or when the budget cannot cover the slot. The
  // caller must not read the file until it is closed (the streaming
  // writers never do).
  void EnableOverlappedWrites();

  // Drains any in-flight async write, closes the device handle, and
  // returns the file's final status — the error-checked shutdown the
  // destructor performs unchecked. Idempotent; the file is dead
  // afterwards.
  util::Status Close();

  // Flushes every written block to durable storage (StorageFile::Sync,
  // draining an in-flight overlapped write first). Counted in
  // IoStats::sync_calls — never as a model I/O: an fsync moves no
  // blocks in the Aggarwal-Vitter model. Publish and checkpoint paths
  // call this before the atomic rename; scratch streams never do.
  util::Status Sync();

  // First error this file hit (open failure, exhausted retries,
  // checksum mismatch, failed async write), or OK. Sticky; also
  // latched on the context at record time.
  util::Status status() const;

  // Logical file size in bytes / in blocks (payload only — checksum
  // trailers are invisible above the raw layer).
  std::uint64_t size_bytes() const { return size_bytes_; }
  std::uint64_t num_blocks() const;

  std::size_t block_size() const { return block_size_; }
  const std::string& path() const { return path_; }
  IoContext* context() const { return context_; }
  StorageDevice* device() const { return device_; }

 private:
  class Prefetcher;
  friend class ReadScheduler;  // PreadBlock / RawWriteAt on its workers

  // The stripe member devices when this file lives on a StripedDevice
  // (block b is owned by member b % D), else nullptr. Immutable per
  // open handle.
  const std::vector<StorageDevice*>* StripeDevices() const {
    return file_ != nullptr ? file_->stripe_devices() : nullptr;
  }

  // The device charged for an I/O on `block_index`: the stripe member
  // owning that block, or the file's own device. Keeps per-device rows
  // summing to the aggregate — the StripedDevice's own stats stay zero.
  StorageDevice* StatsDevice(std::uint64_t block_index) const {
    const std::vector<StorageDevice*>* stripe = StripeDevices();
    return stripe != nullptr ? (*stripe)[block_index % stripe->size()]
                             : device_;
  }

  // Records the model accounting for a consumed read of `block_index`
  // carrying `bytes` payload bytes (shared by the direct and prefetched
  // paths; always runs on the consumer thread).
  void CountRead(std::uint64_t block_index, std::size_t bytes);

  // Ditto for a write of `bytes` payload bytes, on the producing thread.
  void CountWrite(std::uint64_t block_index, std::size_t bytes);

  // Uncounted raw read of one block into `buf`; *bytes gets the payload
  // size (0 past EOF). Runs the retry policy and the checksum check.
  // Thread-safe (positional device read, thread-local staging) — the
  // prefetch thread and the scheduler's device workers use it directly.
  util::Status PreadBlock(std::uint64_t block_index, void* buf,
                          std::size_t* bytes);

  // Uncounted raw device write of one block's payload (retry policy and
  // checksum trailer included), used by the scheduler's device workers
  // and the sync write path. Touches no BlockFile state (the submitter
  // already advanced size_bytes_), so it is safe off-thread.
  util::Status RawWriteAt(std::uint64_t block_index, const void* data,
                          std::size_t bytes);

  // Parks `status` as this file's sticky error (first wins) and latches
  // it on the context. Thread-safe; OK is ignored.
  void MarkError(const util::Status& status);

  // Physical byte offset of `block_index` (stride block_size_ + 4 when
  // checksummed).
  std::uint64_t PhysicalOffset(std::uint64_t block_index) const;

  IoContext* context_;
  std::string path_;
  StorageDevice* device_;
  std::unique_ptr<StorageFile> file_;
  std::size_t block_size_;
  std::uint64_t size_bytes_ = 0;
  // Scratch stream with CRC32 trailers (checksum_blocks option).
  bool checksummed_ = false;
  // Sequential/random classification state.
  std::int64_t last_read_block_ = -2;
  std::int64_t last_write_block_ = -2;
  // Sticky first error; guarded by status_mu_ (prefetch/worker threads
  // park errors concurrently with the consumer).
  mutable std::mutex status_mu_;
  util::Status status_;
  std::unique_ptr<Prefetcher> prefetcher_;
  // Scheduler streams (io_threads > 0): read-ahead ring / async writes.
  ScheduledStream* sched_reader_ = nullptr;
  ScheduledStream* sched_writer_ = nullptr;
};

}  // namespace extscc::io

#endif  // EXTSCC_IO_BLOCK_FILE_H_
