#include "io/read_scheduler.h"

#include <algorithm>
#include <cstring>

#include "io/block_file.h"
#include "io/memory_budget.h"
#include "util/logging.h"

namespace extscc::io {

// One ring slot of a stream. State transitions:
//   reader: kEmpty -(worker claims)-> kInFlight -(read done)-> kFilled
//           -(consumer takes)-> kEmpty
//   writer: kEmpty -(producer fills)-> kPending -(worker claims)->
//           kInFlight -(write done)-> kEmpty
// Only the indicated party performs each transition, so a slot's buffer
// is always owned by exactly one thread outside the scheduler mutex:
// kInFlight buffers belong to the worker, kFilled to the consumer,
// kEmpty/kPending(-being-filled) to the producer. Copies in and out of
// the buffer therefore run UNLOCKED; the mutex only orders the state
// flips.
struct StreamSlot {
  enum class State { kEmpty, kPending, kInFlight, kFilled };
  State state = State::kEmpty;
  std::uint64_t block = 0;
  std::size_t bytes = 0;
  // A failed prefetch parks its error here (bytes = 0) and the slot
  // still becomes kFilled: the consumer — not the worker thread — is
  // who surfaces it, on its next TakeBlock. Workers never abort.
  util::Status status;
  std::vector<char> data;
};

class ScheduledStream {
 public:
  BlockFile* file = nullptr;
  // The devices serving this stream: the file's stripe members in
  // stripe order (block b belongs to devices[b % width]), or exactly
  // one entry for a plain single-device file. Every listed device's
  // queue holds a pointer to this stream.
  std::vector<StorageDevice*> devices;
  bool writer = false;
  bool dying = false;
  std::uint64_t reserved_bytes = 0;
  std::vector<StreamSlot> slots;

  // First async-write failure (writer streams; guarded by the scheduler
  // mutex). Surfaced on the producer thread at the next SubmitWrite and
  // at Unregister — a failed device write must reach the BlockFile's
  // sticky status before the file closes.
  util::Status write_status;

  // Reader sequence state. Blocks are CONSUMED strictly in order;
  // block b lives in slot (b % slots.size()). Each member device
  // issues only its own blocks (b % width == member index), stepping
  // its next_issue cursor by width, so members read ahead
  // independently — the window guard in Claim keeps slot reuse sound.
  std::uint64_t end_block = 0;      // first block past EOF
  std::vector<std::uint64_t> next_issue;  // per devices[] entry
  std::uint64_t consume_block = 0;  // next block the consumer may take

  // The consumer (reader) or producer (writer) waits here.
  std::condition_variable cv;

  std::size_t DeviceIndex(const StorageDevice* device) const {
    for (std::size_t i = 0; i < devices.size(); ++i) {
      if (devices[i] == device) return i;
    }
    LOG_FATAL << "ReadScheduler: stream claimed by a device it is not "
                 "registered with";
    return 0;
  }

  // Claims one unit of work that `device` can perform on this stream,
  // flipping the chosen slot to kInFlight. Runs under the scheduler
  // mutex.
  bool Claim(StorageDevice* device, std::size_t* slot_index) {
    const std::size_t width = devices.size();
    const std::size_t di = DeviceIndex(device);
    if (writer) {
      // A pending write must drain even on a dying stream — Unregister
      // waits for exactly that before the file handle closes — but only
      // the member owning the block may execute it.
      for (std::size_t s = 0; s < slots.size(); ++s) {
        if (slots[s].state == StreamSlot::State::kPending &&
            slots[s].block % width == di) {
          slots[s].state = StreamSlot::State::kInFlight;
          *slot_index = s;
          return true;
        }
      }
      return false;
    }
    if (dying) return false;  // new read-ahead would go nowhere
    const std::uint64_t block = next_issue[di];
    if (block >= end_block) return false;
    // Ring window: block b may go in flight only once every earlier
    // occupant of its slot (b - slots.size() and older) was consumed.
    // Members fill out of order, but all blocks below consume_block are
    // already consumed, so the member owning consume_block is never
    // window-blocked — no deadlock.
    if (block >= consume_block + slots.size()) return false;
    StreamSlot& slot = slots[block % slots.size()];
    if (slot.state != StreamSlot::State::kEmpty) return false;
    slot.state = StreamSlot::State::kInFlight;
    slot.block = block;
    next_issue[di] += width;
    *slot_index = static_cast<std::size_t>(block % slots.size());
    return true;
  }

  bool Idle() const {
    for (const StreamSlot& slot : slots) {
      if (slot.state == StreamSlot::State::kInFlight) return false;
      if (writer && slot.state == StreamSlot::State::kPending) return false;
    }
    return true;
  }
};

ReadScheduler::ReadScheduler(MemoryBudget* memory, std::size_t block_size,
                             std::size_t max_workers, std::size_t depth)
    : memory_(memory),
      block_size_(block_size),
      max_workers_(std::max<std::size_t>(1, max_workers)),
      depth_(std::max<std::size_t>(1, depth)) {}

ReadScheduler::~ReadScheduler() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
    DCHECK(streams_.empty())
        << "ReadScheduler destroyed with live streams (a BlockFile "
           "outlived its IoContext)";
    for (auto& worker : workers_) worker->cv.notify_all();
  }
  for (auto& worker : workers_) worker->thread.join();
}

ReadScheduler::DeviceQueue* ReadScheduler::QueueFor(StorageDevice* device) {
  auto it = queues_.find(device);
  if (it != queues_.end()) return it->second.get();
  auto queue = std::make_unique<DeviceQueue>();
  if (workers_.size() < max_workers_) {
    // Dedicated worker for a new device, up to the thread cap.
    auto worker = std::make_unique<Worker>();
    worker->devices.push_back(device);
    queue->worker = worker.get();
    Worker* raw = worker.get();
    workers_.push_back(std::move(worker));
    raw->thread = std::thread([this, raw] { WorkerLoop(raw); });
  } else {
    // Past the cap devices share workers round-robin; reads on shared
    // devices still overlap the consumer, just not each other.
    Worker* worker = workers_[next_shared_worker_++ % workers_.size()].get();
    worker->devices.push_back(device);
    queue->worker = worker;
  }
  DeviceQueue* raw = queue.get();
  queues_.emplace(device, std::move(queue));
  return raw;
}

ScheduledStream* ReadScheduler::AdoptStream(
    std::unique_ptr<ScheduledStream> stream) {
  std::lock_guard<std::mutex> lock(mu_);
  ScheduledStream* raw = stream.get();
  streams_.push_back(std::move(stream));
  // Register with EVERY member device's queue (one queue for plain
  // files): a striped stream is kept full by all its members' workers
  // concurrently.
  for (StorageDevice* device : raw->devices) {
    DeviceQueue* queue = QueueFor(device);
    queue->streams.push_back(raw);
    queue->worker->cv.notify_all();
  }
  return raw;
}

ScheduledStream* ReadScheduler::RegisterReader(BlockFile* file,
                                               std::uint64_t start_block) {
  // Degrade gracefully: take as many ring slots as the budget still
  // covers (never more than depth_, never more than the stream has
  // blocks left to read — a 1-block run must not hold a dead second
  // slot that starves later registrations), and fall back to direct
  // reads when not even one block fits.
  const std::uint64_t blocks_left = file->num_blocks() - start_block;
  const std::uint64_t want =
      std::min<std::uint64_t>(depth_, blocks_left) * block_size_;
  // Atomic claim: reserve first, then size the ring from what was
  // granted (a fractional-block remainder goes straight back).
  const std::uint64_t granted = memory_->ReserveUpTo(want);
  const std::size_t affordable =
      static_cast<std::size_t>(granted / block_size_);
  const std::uint64_t kept =
      static_cast<std::uint64_t>(affordable) * block_size_;
  if (granted > kept) memory_->Release(granted - kept);
  if (affordable == 0) return nullptr;
  auto stream = std::make_unique<ScheduledStream>();
  stream->file = file;
  const std::vector<StorageDevice*>* stripe = file->StripeDevices();
  if (stripe != nullptr) {
    stream->devices = *stripe;
  } else {
    stream->devices.push_back(file->device());
  }
  stream->reserved_bytes = kept;
  stream->slots.resize(affordable);
  for (StreamSlot& slot : stream->slots) slot.data.resize(block_size_);
  stream->end_block = file->num_blocks();
  // Each member starts at its first owned block at or after
  // start_block and steps by the stripe width.
  const std::uint64_t width = stream->devices.size();
  stream->next_issue.resize(width);
  for (std::uint64_t di = 0; di < width; ++di) {
    stream->next_issue[di] =
        start_block + (di + width - start_block % width) % width;
  }
  stream->consume_block = start_block;
  return AdoptStream(std::move(stream));
}

ScheduledStream* ReadScheduler::RegisterWriter(BlockFile* file) {
  // One pending-write slot per stripe member (one for plain files):
  // block b parks in slot b % nslots and only member b % width executes
  // it, so a striped output stream drives all members concurrently.
  // Degrade to fewer slots when the budget is short — nslots < width
  // just means fewer writes in flight, never a wrong route.
  const std::vector<StorageDevice*>* stripe = file->StripeDevices();
  const std::size_t width = stripe != nullptr ? stripe->size() : 1;
  const std::uint64_t want =
      static_cast<std::uint64_t>(width) * block_size_;
  const std::uint64_t granted = memory_->ReserveUpTo(want);
  const std::size_t affordable =
      static_cast<std::size_t>(granted / block_size_);
  const std::uint64_t kept =
      static_cast<std::uint64_t>(affordable) * block_size_;
  if (granted > kept) memory_->Release(granted - kept);
  if (affordable == 0) return nullptr;
  auto stream = std::make_unique<ScheduledStream>();
  stream->file = file;
  if (stripe != nullptr) {
    stream->devices = *stripe;
  } else {
    stream->devices.push_back(file->device());
  }
  stream->writer = true;
  stream->reserved_bytes = kept;
  stream->slots.resize(affordable);
  for (StreamSlot& slot : stream->slots) slot.data.resize(block_size_);
  return AdoptStream(std::move(stream));
}

void ReadScheduler::Unregister(ScheduledStream* stream) {
  std::unique_ptr<ScheduledStream> owned;
  util::Status parked_write;
  {
    std::unique_lock<std::mutex> lock(mu_);
    stream->dying = true;  // workers claim no further reads
    // A pending write must still reach the device (the file is about to
    // be reopened for reading); in-flight ops own their slot buffers.
    stream->cv.wait(lock, [stream] { return stream->Idle(); });
    parked_write = stream->write_status;
    for (StorageDevice* device : stream->devices) {
      DeviceQueue* queue = queues_.at(device).get();
      auto it =
          std::find(queue->streams.begin(), queue->streams.end(), stream);
      DCHECK(it != queue->streams.end());
      queue->streams.erase(it);
      queue->cursor = 0;
    }
    auto it =
        std::find_if(streams_.begin(), streams_.end(),
                     [stream](const auto& s) { return s.get() == stream; });
    DCHECK(it != streams_.end());
    owned = std::move(*it);
    streams_.erase(it);
  }
  // Outside the scheduler lock; the budget is only ever touched by the
  // algorithm thread (the same thread running this Unregister).
  memory_->Release(owned->reserved_bytes);
  // A drained-but-failed final write surfaces now, while the file is
  // still alive: the last chance before the handle closes and the
  // writer's Finish checks status().
  if (!parked_write.ok()) owned->file->MarkError(parked_write);
}

bool ReadScheduler::TakeBlock(ScheduledStream* stream,
                              std::uint64_t block_index, void* buf,
                              std::size_t* bytes) {
  DCHECK(!stream->writer);
  std::unique_lock<std::mutex> lock(mu_);
  // The issue sequence is fixed; anything but the oldest unconsumed
  // block is a seek and ends the stream's scheduler service.
  if (block_index != stream->consume_block) return false;
  if (block_index >= stream->end_block) {
    *bytes = 0;  // past EOF: uncounted, like the direct path
    return true;
  }
  StreamSlot& slot = stream->slots[block_index % stream->slots.size()];
  stream->cv.wait(
      lock, [&slot] { return slot.state == StreamSlot::State::kFilled; });
  DCHECK_EQ(slot.block, block_index);
  if (!slot.status.ok()) {
    // The worker parked a read failure in this slot. Surface it on this
    // (the consumer's) thread as EOF-shaped 0 bytes plus the file's
    // sticky status; the stream is dead from here on.
    const util::Status failed = slot.status;
    slot.status = util::Status::Ok();
    slot.state = StreamSlot::State::kEmpty;
    stream->dying = true;
    stream->consume_block += 1;
    lock.unlock();
    stream->file->MarkError(failed);
    *bytes = 0;
    return true;
  }
  const std::size_t got = slot.bytes;
  // kFilled buffers belong to the consumer: copy unlocked (the payload
  // is a whole block; holding the scheduler mutex across it would
  // serialize every device's hand-off behind this memcpy).
  lock.unlock();
  std::memcpy(buf, slot.data.data(), got);
  lock.lock();
  slot.state = StreamSlot::State::kEmpty;
  stream->consume_block += 1;
  // The freed slot and the advanced window can unblock ANY member's
  // next issue — wake them all (width is small; spurious wakes are one
  // failed claim).
  for (StorageDevice* device : stream->devices) {
    queues_.at(device)->worker->cv.notify_all();
  }
  *bytes = got;
  return true;
}

void ReadScheduler::SubmitWrite(ScheduledStream* stream,
                                std::uint64_t block_index, const void* data,
                                std::size_t bytes) {
  DCHECK(stream->writer);
  DCHECK_LE(bytes, block_size_);
  // Block b parks in slot b % nslots; the per-slot bound is the double
  // buffer (a striped stream has up to one slot per member, so up to
  // width writes overlap). kEmpty slots belong to the producer, so the
  // copy runs unlocked.
  StreamSlot& slot = stream->slots[block_index % stream->slots.size()];
  std::unique_lock<std::mutex> lock(mu_);
  stream->cv.wait(
      lock, [&slot] { return slot.state == StreamSlot::State::kEmpty; });
  if (!stream->write_status.ok()) {
    // A previous async write failed: the file is dead. Park the error
    // on it (this is the producer thread) and drop the new block
    // instead of hammering the device.
    const util::Status failed = stream->write_status;
    lock.unlock();
    stream->file->MarkError(failed);
    return;
  }
  lock.unlock();
  std::memcpy(slot.data.data(), data, bytes);
  slot.block = block_index;
  slot.bytes = bytes;
  lock.lock();
  slot.state = StreamSlot::State::kPending;
  // Only the member owning this block may execute it.
  StorageDevice* owner =
      stream->devices[block_index % stream->devices.size()];
  queues_.at(owner)->worker->cv.notify_all();
}

std::size_t ReadScheduler::num_workers() const {
  std::lock_guard<std::mutex> lock(mu_);
  return workers_.size();
}

bool ReadScheduler::ClaimTaskOnDevice(StorageDevice* device,
                                      DeviceQueue* queue,
                                      ScheduledStream** stream,
                                      std::size_t* slot_index) {
  const std::size_t n = queue->streams.size();
  for (std::size_t i = 0; i < n; ++i) {
    ScheduledStream* candidate = queue->streams[(queue->cursor + i) % n];
    if (!candidate->Claim(device, slot_index)) continue;
    queue->cursor = (queue->cursor + i + 1) % n;  // round-robin fairness
    *stream = candidate;
    return true;
  }
  return false;
}

bool ReadScheduler::ClaimTask(Worker* worker, ScheduledStream** stream,
                              std::size_t* slot_index) {
  const std::size_t n = worker->devices.size();
  for (std::size_t i = 0; i < n; ++i) {
    StorageDevice* device = worker->devices[(worker->cursor + i) % n];
    DeviceQueue* queue = queues_.at(device).get();
    if (ClaimTaskOnDevice(device, queue, stream, slot_index)) {
      worker->cursor = (worker->cursor + i + 1) % n;
      return true;
    }
  }
  return false;
}

void ReadScheduler::WorkerLoop(Worker* worker) {
  std::unique_lock<std::mutex> lock(mu_);
  while (true) {
    ScheduledStream* stream = nullptr;
    std::size_t slot_index = 0;
    if (!ClaimTask(worker, &stream, &slot_index)) {
      if (stop_) return;
      worker->cv.wait(lock);
      continue;
    }
    StreamSlot& slot = stream->slots[slot_index];
    // Device I/O OUTSIDE the scheduler lock — this is both the overlap
    // being bought and the ThrottledDevice-independence discipline: a
    // simulated device sleeping its latency here must not hold anything
    // a different device's worker needs.
    lock.unlock();
    util::Status io_status;
    if (stream->writer) {
      io_status =
          stream->file->RawWriteAt(slot.block, slot.data.data(), slot.bytes);
    } else {
      io_status =
          stream->file->PreadBlock(slot.block, slot.data.data(), &slot.bytes);
    }
    lock.lock();
    // A failed op never aborts the worker (it serves every stream on
    // this device): park the Status where the stream's owner thread
    // will find it — the slot for readers, the stream for writers —
    // and stop issuing further read-ahead on a dead reader.
    if (stream->writer) {
      if (!io_status.ok() && stream->write_status.ok()) {
        stream->write_status = io_status;
      }
      slot.state = StreamSlot::State::kEmpty;
    } else {
      slot.status = io_status;
      if (!io_status.ok()) stream->dying = true;
      slot.state = StreamSlot::State::kFilled;
    }
    stream->cv.notify_all();
  }
}

}  // namespace extscc::io
