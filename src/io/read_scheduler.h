// Shared device-parallel I/O engine behind IoContextOptions::io_threads.
//
// The per-file background prefetcher (block_file.cc) hides device
// latency for ONE stream, but a k-way merge opens k streams — k threads,
// and no notion of which streams share a spindle: two runs on one
// device fight each other while a second device sits idle. The
// ReadScheduler inverts the ownership: I/O worker threads belong to
// *devices*, not files. Every sequential reader registers a stream with
// a small ring of block slots (up to IoContextOptions::prefetch_depth,
// budgeted from the MemoryBudget with graceful degrade), and the worker
// that owns the stream's device keeps the rings of all its streams
// topped up, round-robin. A merge group spread across D devices then
// has D workers reading ahead concurrently — the loser tree drains the
// current block of a run on device A while the next block of a run on
// device B is in flight — which is what converts kSpreadGroup placement
// into wall-clock speedup (ROADMAP: "actually *parallel* merge reads").
//
// The same workers execute asynchronous writes: a writer stream owns a
// single pending-write slot (classic double buffering), so the device
// write of output block N overlaps the selection of block N+1, and a
// write to device A never blocks reads on device B.
//
// Striped streams (kStriped placement, StorageFile::stripe_devices):
// a file whose blocks round-robin across D member devices registers
// with EVERY member's queue. Each member worker issues only the blocks
// its device owns (block % D), so all D workers keep one ring full
// concurrently — a single sequential scan reads at D× one device's
// bandwidth — and a striped writer gets up to D pending-write slots
// (one per member, budget permitting), giving the final merge's output
// D-way write bandwidth. Consumption stays strictly sequential; the
// ring window (no block may go in flight before every prior occupant
// of its slot was consumed) keeps slot reuse single-owner even though
// members fill out of order.
//
// Accounting discipline (identical to the prefetcher): workers move raw
// bytes but never touch IoStats. Reads are counted by the consumer as it
// takes each block, writes by the submitter as it hands a block over, so
// the Aggarwal-Vitter counters — aggregate and per-device — are the same
// as the serial engine's, in the same per-file order.
//
// Locking discipline: one scheduler mutex guards all queue/slot state,
// and NO device I/O ever runs under it — a worker claims a task, drops
// the lock, performs the read/write (this is where ThrottledDevice
// sleeps its simulated time), and re-locks to publish. Distinct devices
// therefore throttle and transfer independently; serializing them under
// a shared lock would silently reduce the engine to the serial one.
#ifndef EXTSCC_IO_READ_SCHEDULER_H_
#define EXTSCC_IO_READ_SCHEDULER_H_

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <vector>

namespace extscc::io {

class BlockFile;
class MemoryBudget;
class StorageDevice;
class ScheduledStream;

class ReadScheduler {
 public:
  // `max_workers` caps the worker-thread count (= io_threads): devices
  // get dedicated workers until the cap, further devices share by
  // round-robin. `depth` is the per-reader ring size in blocks.
  ReadScheduler(MemoryBudget* memory, std::size_t block_size,
                std::size_t max_workers, std::size_t depth);

  // Joins every worker. All streams must have been unregistered (every
  // BlockFile closed) — the IoContext destroys the scheduler first.
  ~ReadScheduler();

  ReadScheduler(const ReadScheduler&) = delete;
  ReadScheduler& operator=(const ReadScheduler&) = delete;

  // Registers a sequential read stream over `file` (kRead, fixed size)
  // starting at `start_block`. Reserves up to `depth` block slots from
  // the budget, degrading to fewer when the budget is short; returns
  // nullptr when not even one slot fits (the caller reads directly).
  // Must be called on the algorithm thread (MemoryBudget is not
  // thread-safe), like every budget reservation in the engine.
  ScheduledStream* RegisterReader(BlockFile* file, std::uint64_t start_block);

  // Registers an asynchronous writer over `file` with one pending-write
  // slot per stripe member (one total for plain files — classic double
  // buffering), degrading to fewer slots when the budget is short.
  // nullptr when not even one slot fits — the caller keeps writing
  // synchronously.
  ScheduledStream* RegisterWriter(BlockFile* file);

  // Drains in-flight work on `stream` (joins a pending write), removes
  // it and releases its budget. Called by ~BlockFile on the owner
  // thread; `stream` is invalid afterwards.
  void Unregister(ScheduledStream* stream);

  // Consumer side of a reader stream. If `block_index` is the next
  // sequential block, blocks until its slot is filled, copies the
  // payload into `buf` and returns true with the payload size in
  // *bytes (0 = past EOF, uncounted by convention). Returns false when
  // the request leaves the sequential order (the caller seeked): the
  // stream is useless from then on — Unregister and read directly.
  bool TakeBlock(ScheduledStream* stream, std::uint64_t block_index,
                 void* buf, std::size_t* bytes);

  // Producer side of a writer stream: hands one block (<= block_size
  // payload bytes) to the device worker. Blocks while the previous
  // write is still in flight — the single-slot bound is the double
  // buffer, and a slow device backpressures the producer instead of
  // queueing unbounded memory. The caller counts the I/O.
  void SubmitWrite(ScheduledStream* stream, std::uint64_t block_index,
                   const void* data, std::size_t bytes);

  // Observability for tests: worker threads spawned so far.
  std::size_t num_workers() const;

 private:
  struct Worker {
    std::thread thread;
    std::condition_variable cv;          // workers wait for work here
    std::vector<StorageDevice*> devices;  // devices this worker serves
    std::size_t cursor = 0;               // round-robin over devices
  };

  // Per-device view: raw pointers into streams_ (a striped stream
  // appears in every member device's queue; the scheduler owns it
  // exactly once).
  struct DeviceQueue {
    Worker* worker = nullptr;
    std::vector<ScheduledStream*> streams;
    std::size_t cursor = 0;  // round-robin over streams
  };

  // All private helpers run under mu_.
  DeviceQueue* QueueFor(StorageDevice* device);
  ScheduledStream* AdoptStream(std::unique_ptr<ScheduledStream> stream);
  bool ClaimTask(Worker* worker, ScheduledStream** stream,
                 std::size_t* slot_index);
  bool ClaimTaskOnDevice(StorageDevice* device, DeviceQueue* queue,
                         ScheduledStream** stream, std::size_t* slot_index);

  void WorkerLoop(Worker* worker);

  MemoryBudget* const memory_;
  const std::size_t block_size_;
  const std::size_t max_workers_;
  const std::size_t depth_;

  mutable std::mutex mu_;
  bool stop_ = false;
  std::vector<std::unique_ptr<Worker>> workers_;
  std::vector<std::unique_ptr<ScheduledStream>> streams_;
  std::unordered_map<StorageDevice*, std::unique_ptr<DeviceQueue>> queues_;
  std::size_t next_shared_worker_ = 0;  // device -> worker round-robin
};

}  // namespace extscc::io

#endif  // EXTSCC_IO_READ_SCHEDULER_H_
