// IoContext bundles the external-memory machine model: block size B,
// memory budget M, the storage devices and scratch-file manager, the I/O
// statistics, and an optional I/O budget used to censor runaway
// algorithms the way the paper censors DFS-SCC at 24 hours ("INF").
#ifndef EXTSCC_IO_IO_CONTEXT_H_
#define EXTSCC_IO_IO_CONTEXT_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "io/io_stats.h"
#include "io/memory_budget.h"
#include "io/read_scheduler.h"
#include "io/storage.h"
#include "io/temp_file_manager.h"

namespace extscc::io {

struct IoContextOptions {
  // Disk block size B in bytes. The paper's testbed uses 256 KB; the
  // scaled default here is 64 KB so block counts stay meaningful on
  // 10^5-10^6-node graphs (see DESIGN.md §3).
  std::size_t block_size = 64 * 1024;

  // Simulated memory size M in bytes. Must satisfy M >= 2 * block_size.
  std::uint64_t memory_bytes = 400 * 1024;

  // 0 = unlimited. When > 0, total_ios() beyond this trips
  // io_budget_exceeded(); long-running algorithms poll it and return
  // ResourceExhausted, which benches print as the paper's INF.
  std::uint64_t io_budget = 0;

  // Background prefetch for sequential streams. Off by default so the
  // Aggarwal-Vitter accounting (io_model_test) is bit-identical; when on,
  // every sequential RecordReader spawns one reader thread that stays up
  // to `prefetch_depth` blocks ahead of the consumer. I/Os are still
  // counted on the consumer thread as blocks are consumed, so the model
  // numbers do not change — only the wall-clock overlap does.
  bool prefetch = false;

  // Blocks each prefetch thread may hold ahead of the consumer (>= 1;
  // 2 = classic double buffering). Each open prefetching stream asks the
  // MemoryBudget for prefetch_depth * block_size bytes and silently runs
  // unprefetched when the budget cannot cover it.
  std::size_t prefetch_depth = 2;

  // Overlapped run formation: when > 0, every run-forming sort (FormRuns
  // behind SortFile/SortInto, SortingWriter) hands full buffers to one
  // background worker that sorts and spills them while the producer
  // fills the other buffer of a double-buffered pair — the write-side
  // twin of the read prefetcher. 0 (the default) keeps run formation
  // serial, so the Aggarwal-Vitter accounting and the run geometry are
  // bit-identical to the single-threaded engine. Values > 1 are
  // reserved and currently behave like 1 (a single worker). Stages
  // degrade to the serial path per sort whenever the MemoryBudget
  // cannot cover a second run buffer.
  std::size_t sort_threads = 0;

  // Device-parallel I/O: when > 0 the context owns a ReadScheduler with
  // up to `io_threads` I/O worker threads — one per active storage
  // device until the cap, shared round-robin past it. Every sequential
  // reader then keeps up to `prefetch_depth` blocks in flight on its
  // device's worker (replacing the per-file prefetch threads), and the
  // sorter's merge output double-buffers one async write. 0 (the
  // default) keeps the serial engine: byte-identical output and
  // identical IoStats, the same discipline as sort_threads/prefetch.
  // With io_threads > 0 the I/O *counts* can shift slightly (ring
  // reservations change run geometry, like prefetch), but sorted
  // outputs stay byte-identical. Streams degrade to direct reads /
  // synchronous writes whenever the MemoryBudget cannot cover their
  // buffers.
  std::size_t io_threads = 0;

  // Scratch directory parent ("" = $TMPDIR or /tmp).
  std::string temp_parent_dir;

  // Multi-disk scratch: when non-empty, one scratch StorageDevice is
  // built per listed parent directory (one entry per spindle/NVMe
  // namespace) and new scratch files are assigned across them by
  // `scratch_placement`, so merge passes read runs from independent
  // devices. Overrides temp_parent_dir. (Under device_model kMem the
  // entries only set the device *count*; the backing is RAM.)
  std::vector<std::string> scratch_dirs;

  // What backs the scratch devices: real files (kPosix, the default),
  // RAM (kMem — page-cache-free tests/microbenches), or
  // latency/bandwidth-throttled files (kThrottled — simulated spindles
  // for the parallel-bandwidth model). The model never changes the
  // block accounting, only where the bytes live and how long they take.
  DeviceModelSpec device_model;

  // Device-assignment policy for scratch files. kRoundRobin (default)
  // stripes by global sequence number — byte-identical paths and device
  // choice to the pre-device engine. kSpreadGroup places a merge
  // group's runs on distinct devices by construction. kStriped
  // round-robins every scratch file's BLOCKS across the devices, so a
  // single sequential stream runs at D× one device's bandwidth (see
  // storage.h).
  PlacementPolicy scratch_placement = PlacementPolicy::kRoundRobin;

  // Keep scratch files on destruction (debugging aid).
  bool keep_temp_files = false;

  // ---- fault tolerance (docs/robustness.md) --------------------------

  // Bounded exponential backoff against transient device faults
  // (IsRetryableIoError). io_retry_attempts is the TOTAL number of
  // device attempts per block op (1 = no retry); the k-th retry sleeps
  // min(io_retry_backoff_initial_us << (k-1), io_retry_backoff_max_us).
  // Retries are counted in IoStats::{read,write}_retries but are NOT
  // model I/Os; a fault-free run takes none, so these defaults leave
  // the Aggarwal-Vitter numbers untouched.
  std::size_t io_retry_attempts = 4;
  std::uint64_t io_retry_backoff_initial_us = 200;
  std::uint64_t io_retry_backoff_max_us = 20'000;

  // Append a CRC32 trailer to every scratch block and verify it on
  // read (mismatch = kCorruption, never retried — re-reading flipped
  // bits re-reads flipped bits). Off by default: checksummed scratch
  // files have a different physical stride (block_size + 4), so the
  // default keeps scratch files byte-identical to the fault-oblivious
  // engine. Applies to scratch streams only (kRead/kTruncateWrite);
  // user-facing graph/label files and random-access kReadWrite files
  // stay raw.
  bool checksum_blocks = false;
};

class IoContext {
 public:
  explicit IoContext(const IoContextOptions& options);

  IoContext(const IoContext&) = delete;
  IoContext& operator=(const IoContext&) = delete;

  std::size_t block_size() const { return options_.block_size; }

  bool prefetch_enabled() const { return options_.prefetch; }
  std::size_t prefetch_depth() const { return options_.prefetch_depth; }
  std::size_t sort_threads() const { return options_.sort_threads; }
  std::size_t io_threads() const { return options_.io_threads; }
  std::size_t io_retry_attempts() const { return options_.io_retry_attempts; }
  std::uint64_t io_retry_backoff_initial_us() const {
    return options_.io_retry_backoff_initial_us;
  }
  std::uint64_t io_retry_backoff_max_us() const {
    return options_.io_retry_backoff_max_us;
  }
  bool checksum_blocks() const { return options_.checksum_blocks; }

  // The device-parallel I/O engine, or nullptr when io_threads == 0
  // (the serial engine). BlockFile is the only caller.
  ReadScheduler* read_scheduler() { return read_scheduler_.get(); }

  // The stats object itself; with sort_threads > 0 a spill worker and
  // the producing thread count I/Os concurrently, so all mutation (and
  // any read racing a live sort) must hold stats_mutex(). BlockFile is
  // the only mutator; callers snapshotting between phases (no sorter
  // live) may read without the lock, as before.
  IoStats& stats() { return stats_; }
  const IoStats& stats() const { return stats_; }
  std::mutex& stats_mutex() { return stats_mu_; }

  MemoryBudget& memory() { return memory_; }
  TempFileManager& temp_files() { return temp_files_; }

  // The device that owns `path`: the scratch device whose session root
  // contains it, or the context's default PosixDevice for non-scratch
  // (user-supplied) paths. Never nullptr.
  StorageDevice* ResolveDevice(const std::string& path) {
    StorageDevice* device = temp_files_.DeviceForPath(path);
    return device != nullptr ? device : &base_device_;
  }

  // Per-device statistics view: the default device first, then the
  // scratch devices in configuration order. Same locking convention as
  // stats(): snapshot between phases, or hold stats_mutex() when a
  // sorter is live.
  struct DeviceStatsRow {
    std::string name;
    IoStats stats;
  };
  std::vector<DeviceStatsRow> DeviceStats() const;

  // Critical-path metric for the parallel-bandwidth model: with devices
  // operating independently, a phase's lower bound is the busiest
  // device's I/O count, not the aggregate.
  std::uint64_t max_per_device_ios() const;

  // Unique scratch path with a descriptive tag ("ein", "run", ...).
  std::string NewTempPath(const std::string& tag) {
    return temp_files_.NewPath(tag);
  }

  // I/O budget censoring.
  void set_io_budget(std::uint64_t budget) { options_.io_budget = budget; }
  std::uint64_t io_budget() const { return options_.io_budget; }
  bool io_budget_exceeded() const {
    return io_budget_exceeded_.load(std::memory_order_relaxed);
  }
  void reset_io_budget_flag() {
    io_budget_exceeded_.store(false, std::memory_order_relaxed);
  }

  // Called by BlockFile after every counted I/O (under stats_mutex()).
  void OnIo();

  // ---- I/O error latch ------------------------------------------------
  // First-wins record of an unrecovered I/O error anywhere in the
  // context (a failed spill worker, a dead prefetch slot, a direct
  // read). The long-running algorithms poll has_io_error() at phase
  // boundaries — the same discipline as io_budget_exceeded() — so an
  // error parked by a background thread surfaces as a typed Status on
  // the driver API instead of a crash or a silent wrong answer.

  // Records `status` if the latch is empty (no-op for OK and for an
  // already-latched context).
  void RecordIoError(const util::Status& status);

  // Lock-free poll.
  bool has_io_error() const {
    return has_io_error_.load(std::memory_order_acquire);
  }

  // Copy of the latched error (OK when the latch is empty).
  util::Status io_error() const;

  // Clears the latch iff the latched error's code and message match
  // `recovered` — the failover path's absorb step: after a quarantined
  // device's lost run is re-formed elsewhere, the error that triggered
  // the failover is consumed so the recovered solve doesn't fail on a
  // stale latch. An error recorded by an UNRELATED failure in the
  // meantime stays latched. Returns true when the latch was cleared.
  bool AbsorbIoError(const util::Status& recovered);

  // Test hook: unconditionally clears the latch.
  void reset_io_error();

 private:
  IoContextOptions options_;
  IoStats stats_;
  std::mutex stats_mu_;
  MemoryBudget memory_;
  // Default device for BlockFile paths outside every scratch root —
  // user-facing graph/label files on the real filesystem.
  PosixDevice base_device_{"base"};
  TempFileManager temp_files_;
  // Atomic: set under stats_mutex() by whichever thread trips the
  // budget, polled lock-free by the algorithm's main loop.
  std::atomic<bool> io_budget_exceeded_{false};
  // I/O error latch: the Status under its own mutex (never held across
  // device I/O), the flag mirroring it for lock-free polling.
  mutable std::mutex io_error_mu_;
  util::Status io_error_;
  std::atomic<bool> has_io_error_{false};
  // Declared last: destroyed first, so the I/O workers are joined while
  // every other member (devices, budget) is still alive.
  std::unique_ptr<ReadScheduler> read_scheduler_;
};

}  // namespace extscc::io

#endif  // EXTSCC_IO_IO_CONTEXT_H_
