// IoContext bundles the external-memory machine model: block size B,
// memory budget M, the scratch-file manager, the I/O statistics, and an
// optional I/O budget used to censor runaway algorithms the way the paper
// censors DFS-SCC at 24 hours ("INF").
#ifndef EXTSCC_IO_IO_CONTEXT_H_
#define EXTSCC_IO_IO_CONTEXT_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "io/io_stats.h"
#include "io/memory_budget.h"
#include "io/temp_file_manager.h"

namespace extscc::io {

struct IoContextOptions {
  // Disk block size B in bytes. The paper's testbed uses 256 KB; the
  // scaled default here is 64 KB so block counts stay meaningful on
  // 10^5-10^6-node graphs (see DESIGN.md §3).
  std::size_t block_size = 64 * 1024;

  // Simulated memory size M in bytes. Must satisfy M >= 2 * block_size.
  std::uint64_t memory_bytes = 400 * 1024;

  // 0 = unlimited. When > 0, total_ios() beyond this trips
  // io_budget_exceeded(); long-running algorithms poll it and return
  // ResourceExhausted, which benches print as the paper's INF.
  std::uint64_t io_budget = 0;

  // Background prefetch for sequential streams. Off by default so the
  // Aggarwal-Vitter accounting (io_model_test) is bit-identical; when on,
  // every sequential RecordReader spawns one reader thread that stays up
  // to `prefetch_depth` blocks ahead of the consumer. I/Os are still
  // counted on the consumer thread as blocks are consumed, so the model
  // numbers do not change — only the wall-clock overlap does.
  bool prefetch = false;

  // Blocks each prefetch thread may hold ahead of the consumer (>= 1;
  // 2 = classic double buffering). Each open prefetching stream asks the
  // MemoryBudget for prefetch_depth * block_size bytes and silently runs
  // unprefetched when the budget cannot cover it.
  std::size_t prefetch_depth = 2;

  // Overlapped run formation: when > 0, every run-forming sort (FormRuns
  // behind SortFile/SortInto, SortingWriter) hands full buffers to one
  // background worker that sorts and spills them while the producer
  // fills the other buffer of a double-buffered pair — the write-side
  // twin of the read prefetcher. 0 (the default) keeps run formation
  // serial, so the Aggarwal-Vitter accounting and the run geometry are
  // bit-identical to the single-threaded engine. Values > 1 are
  // reserved and currently behave like 1 (a single worker). Stages
  // degrade to the serial path per sort whenever the MemoryBudget
  // cannot cover a second run buffer.
  std::size_t sort_threads = 0;

  // Scratch directory parent ("" = $TMPDIR or /tmp).
  std::string temp_parent_dir;

  // Multi-disk scratch striping: when non-empty, the TempFileManager
  // creates one session directory under each listed parent and assigns
  // new scratch files round-robin across them (one entry per
  // spindle/NVMe namespace), so merge passes read runs from independent
  // devices. Overrides temp_parent_dir.
  std::vector<std::string> scratch_dirs;

  // Keep scratch files on destruction (debugging aid).
  bool keep_temp_files = false;
};

class IoContext {
 public:
  explicit IoContext(const IoContextOptions& options);

  IoContext(const IoContext&) = delete;
  IoContext& operator=(const IoContext&) = delete;

  std::size_t block_size() const { return options_.block_size; }

  bool prefetch_enabled() const { return options_.prefetch; }
  std::size_t prefetch_depth() const { return options_.prefetch_depth; }
  std::size_t sort_threads() const { return options_.sort_threads; }

  // The stats object itself; with sort_threads > 0 a spill worker and
  // the producing thread count I/Os concurrently, so all mutation (and
  // any read racing a live sort) must hold stats_mutex(). BlockFile is
  // the only mutator; callers snapshotting between phases (no sorter
  // live) may read without the lock, as before.
  IoStats& stats() { return stats_; }
  const IoStats& stats() const { return stats_; }
  std::mutex& stats_mutex() { return stats_mu_; }

  MemoryBudget& memory() { return memory_; }
  TempFileManager& temp_files() { return temp_files_; }

  // Unique scratch path with a descriptive tag ("ein", "run", ...).
  std::string NewTempPath(const std::string& tag) {
    return temp_files_.NewPath(tag);
  }

  // I/O budget censoring.
  void set_io_budget(std::uint64_t budget) { options_.io_budget = budget; }
  std::uint64_t io_budget() const { return options_.io_budget; }
  bool io_budget_exceeded() const {
    return io_budget_exceeded_.load(std::memory_order_relaxed);
  }
  void reset_io_budget_flag() {
    io_budget_exceeded_.store(false, std::memory_order_relaxed);
  }

  // Called by BlockFile after every counted I/O (under stats_mutex()).
  void OnIo();

 private:
  IoContextOptions options_;
  IoStats stats_;
  std::mutex stats_mu_;
  MemoryBudget memory_;
  TempFileManager temp_files_;
  // Atomic: set under stats_mutex() by whichever thread trips the
  // budget, polled lock-free by the algorithm's main loop.
  std::atomic<bool> io_budget_exceeded_{false};
};

}  // namespace extscc::io

#endif  // EXTSCC_IO_IO_CONTEXT_H_
