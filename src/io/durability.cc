#include "io/durability.h"

#include <mutex>

#include "io/crash_point.h"
#include "io/io_context.h"
#include "io/storage.h"

namespace extscc::io {

std::string ParentDirOf(const std::string& path) {
  const std::size_t slash = path.rfind('/');
  if (slash == std::string::npos) return ".";
  if (slash == 0) return "/";
  return path.substr(0, slash);
}

util::Status DurableRename(IoContext* context, const std::string& from,
                           const std::string& to) {
  StorageDevice* device = context->ResolveDevice(to);
  CrashPointHit("publish.rename");
  RETURN_IF_ERROR(device->Rename(from, to));
  CrashPointHit("publish.dir.sync");
  RETURN_IF_ERROR(device->SyncDir(ParentDirOf(to)));
  {
    std::lock_guard<std::mutex> lock(context->stats_mutex());
    context->stats().sync_calls += 1;
    device->stats().sync_calls += 1;
  }
  return util::Status::Ok();
}

}  // namespace extscc::io
