// The durable-publish primitive shared by every atomic-rename publish
// in the tree (serve artifacts, delta-log rewrites, checkpoint
// manifests): rename(tmp -> final) makes the swap atomic against
// concurrent readers, fsync(parent directory) makes it survive power
// loss. Both halves are CrashPoint sites ("publish.rename" fires
// before the rename, "publish.dir.sync" between the rename and the
// directory fsync), so the kill-loop harness can die in exactly the
// window where a non-durable publish would be lost.
//
// Callers are expected to have Sync()ed the tmp file's *contents*
// first (BlockFile::Sync before Close) — renaming an unsynced file
// durably publishes garbage.
#ifndef EXTSCC_IO_DURABILITY_H_
#define EXTSCC_IO_DURABILITY_H_

#include <string>

#include "util/status.h"

namespace extscc::io {

class IoContext;

// "/a/b/c" -> "/a/b"; a path with no '/' -> "." (the CWD entry the
// rename mutated).
std::string ParentDirOf(const std::string& path);

// Atomically and durably replaces `to` with `from` on the device the
// context resolves for `to`. The directory fsync is counted in
// IoStats::sync_calls (aggregate and device), never as a model I/O.
util::Status DurableRename(IoContext* context, const std::string& from,
                           const std::string& to);

}  // namespace extscc::io

#endif  // EXTSCC_IO_DURABILITY_H_
