// Pluggable storage devices. Every byte the library moves goes through a
// StorageDevice: BlockFile resolves its path to a device at open and
// issues ReadAt/WriteAt against the device's StorageFile handle, counting
// each block transfer both in the IoContext's aggregate IoStats and in
// the device's own IoStats — so layers above can reason about *which*
// device a stream lives on (placement-aware run scheduling, per-device
// accounting, the parallel-bandwidth model of the figure benches).
//
// Three implementations:
//  - PosixDevice: the real filesystem (pread/pwrite), current behavior.
//  - MemDevice: RAM-backed scratch for tests and page-cache-free
//    microbenches. Block accounting is identical to PosixDevice byte for
//    byte; the backing store is ordinary heap memory *outside* the
//    simulated MemoryBudget (it models the disk, not M).
//  - ThrottledDevice: wraps another device and charges simulated
//    per-operation latency plus bandwidth time, so multi-disk speedup is
//    measurable without real spindles. Debt is accumulated and slept in
//    chunks, keeping the distortion of sub-scheduler-quantum sleeps out
//    of the model.
#ifndef EXTSCC_IO_STORAGE_H_
#define EXTSCC_IO_STORAGE_H_

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "io/io_stats.h"
#include "util/status.h"

namespace extscc::io {

// Open modes. kReadWrite supports the random-access structures
// (buffered repository tree, external DFS adjacency fetches).
enum class OpenMode { kRead, kTruncateWrite, kReadWrite };

class StorageDevice;

// An open file on some device. Offsets are byte offsets; BlockFile is
// the only caller and never reads past the size it tracks, so ReadAt
// transfers exactly `bytes` bytes or returns a non-OK Status (a short
// transfer is an errno-carrying IoError, never a crash — the retry and
// failover machinery above decides what survives). Implementations must
// be safe for concurrent ReadAt calls from the prefetch thread
// alongside the consumer.
class StorageFile {
 public:
  virtual ~StorageFile() = default;
  virtual util::Status ReadAt(std::uint64_t offset, void* buf,
                              std::size_t bytes) = 0;
  virtual util::Status WriteAt(std::uint64_t offset, const void* data,
                               std::size_t bytes) = 0;
  // Size of the file at Open time; growth afterwards is tracked by the
  // owning BlockFile.
  virtual std::uint64_t size_bytes() const = 0;

  // Flushes previously written data to durable storage (the fsync /
  // fdatasync family). The default is an Ok no-op: MemDevice's
  // durability domain is process RAM, and the simulated devices have
  // nothing more durable to reach. PosixFile overrides with fdatasync;
  // wrappers delegate (never fault — process-death injection is
  // CrashPoint's job, not the device model's). Only publish and
  // checkpoint paths call this; scratch files never do, which is what
  // keeps the fast path byte-identical.
  virtual util::Status Sync() { return util::Status::Ok(); }

  // Non-null for striped composite files (StripedDevice): the member
  // devices, in stripe order — block b lives on member b % D. BlockFile
  // routes per-block accounting to the owning member and the
  // ReadScheduler registers the stream with every member's worker. The
  // vector is immutable for the life of the handle.
  virtual const std::vector<StorageDevice*>* stripe_devices() const {
    return nullptr;
  }
};

// A scratch/storage backend with its own I/O statistics. stats() follows
// the same locking convention as IoContext::stats(): BlockFile mutates
// it under IoContext::stats_mutex(); readers racing a live sorter must
// hold that mutex, quiesced snapshots may skip it.
class StorageDevice {
 public:
  explicit StorageDevice(std::string name) : name_(std::move(name)) {}
  virtual ~StorageDevice() = default;

  StorageDevice(const StorageDevice&) = delete;
  StorageDevice& operator=(const StorageDevice&) = delete;

  const std::string& name() const { return name_; }
  IoStats& stats() { return stats_; }
  const IoStats& stats() const { return stats_; }

  // Opens `path` on this device into *out, or returns an errno-carrying
  // IoError (NotFound-shaped opens are IoError with sys_errno ENOENT so
  // the caller can tell a vanished scratch file from a dead device).
  // *out is untouched on error.
  virtual util::Status Open(const std::string& path, OpenMode mode,
                            std::unique_ptr<StorageFile>* out) = 0;

  // Deletes the file if it exists (missing files are not an error;
  // failing to delete an existing file is).
  virtual util::Status Delete(const std::string& path) = 0;

  // Atomically renames `from` to `to` on this device, replacing any
  // existing `to` — the publish primitive of the dynamic-update path
  // (src/dyn/): an updated serve artifact is written beside the live
  // one and swapped in with a single rename, so a concurrent reader
  // sees either the old version or the new one, never a torn mix.
  // Missing `from` is an ENOENT-carrying IoError. The base default is
  // kUnimplemented for devices without an atomic swap (StripedDevice:
  // a virtual path's identity is its part registration, which cannot
  // change under a live reader).
  virtual util::Status Rename(const std::string& from, const std::string& to);

  // Flushes the directory entry metadata of `dir` to durable storage —
  // the second half of a durable atomic publish: rename(tmp, final)
  // makes the swap atomic, fsync(parent dir) makes it survive power
  // loss. The base default is an Ok no-op (MemDevice and the simulated
  // wrappers have no directory metadata to harden); PosixDevice opens
  // the directory and fsyncs it.
  virtual util::Status SyncDir(const std::string& dir);

  // Creates and returns a fresh session namespace (a directory on disk
  // devices, a key prefix on MemDevice) for scratch files.
  virtual std::string CreateSessionRoot() = 0;

  // Recursively removes a session root created above.
  virtual void RemoveTree(const std::string& root) = 0;

 private:
  std::string name_;
  IoStats stats_;
};

// Real filesystem. `parent_dir` is where CreateSessionRoot places
// session directories ("" = $TMPDIR or /tmp); Open accepts arbitrary
// filesystem paths, so a parent-less PosixDevice doubles as the default
// device for non-scratch files (user-facing graph/label files).
class PosixDevice : public StorageDevice {
 public:
  explicit PosixDevice(std::string name, std::string parent_dir = "");

  util::Status Open(const std::string& path, OpenMode mode,
                    std::unique_ptr<StorageFile>* out) override;
  util::Status Delete(const std::string& path) override;
  util::Status Rename(const std::string& from, const std::string& to) override;
  util::Status SyncDir(const std::string& dir) override;
  std::string CreateSessionRoot() override;
  void RemoveTree(const std::string& root) override;

 private:
  std::string parent_dir_;
};

// RAM-backed device. Paths are opaque keys ("mem://<name>/s<k>/..." for
// scratch); file contents live in a hash map guarded by a device mutex,
// with per-file locks so a prefetch thread and a spill worker can touch
// different files concurrently.
class MemDevice : public StorageDevice {
 public:
  explicit MemDevice(std::string name);

  util::Status Open(const std::string& path, OpenMode mode,
                    std::unique_ptr<StorageFile>* out) override;
  util::Status Delete(const std::string& path) override;
  util::Status Rename(const std::string& from, const std::string& to) override;
  std::string CreateSessionRoot() override;
  void RemoveTree(const std::string& root) override;

 private:
  struct FileData {
    std::mutex mu;
    std::vector<char> bytes;
  };

  std::mutex mu_;
  std::uint64_t next_session_ = 0;
  std::unordered_map<std::string, std::shared_ptr<FileData>> files_;
};

// Simulated-latency wrapper: delegates storage to `inner` and charges
// `latency_us` per block operation plus transfer time at `mb_per_sec`
// (0 = unlimited bandwidth). The device keeps a virtual busy-until
// clock: each operation reserves the next `cost` span of the device's
// timeline under the per-device mutex, then sleeps to its own end time
// OUTSIDE every lock. Concurrent operations on ONE device therefore
// serialize in simulated time (two readers share the spindle's
// bandwidth), while operations on DISTINCT devices overlap fully — two
// throttled devices sustain twice one device's bandwidth, the property
// the parallel merge-read engine cashes in. Sleeps shorter than a
// scheduler quantum are deferred (the clock simply runs ahead of real
// time until >= 1 ms is owed), so sub-quantum sleep_for slack does not
// distort the simulated rate; oversleep self-corrects because the next
// operation starts from real `now` again.
class ThrottledDevice : public StorageDevice {
 public:
  ThrottledDevice(std::string name, std::unique_ptr<StorageDevice> inner,
                  std::uint64_t latency_us, std::uint64_t mb_per_sec);

  util::Status Open(const std::string& path, OpenMode mode,
                    std::unique_ptr<StorageFile>* out) override;
  util::Status Delete(const std::string& path) override;
  util::Status Rename(const std::string& from, const std::string& to) override;
  util::Status SyncDir(const std::string& dir) override;
  std::string CreateSessionRoot() override;
  void RemoveTree(const std::string& root) override;

  // Charges the simulated cost of one operation moving `bytes` bytes and
  // sleeps it off. Callers must not hold any lock shared with another
  // device's operations (the I/O engine's workers call this with no
  // scheduler lock held) — sleeping under a shared lock would serialize
  // devices that the simulation promises are independent.
  void ChargeOp(std::size_t bytes);

 private:
  std::unique_ptr<StorageDevice> inner_;
  std::uint64_t latency_ns_;
  double ns_per_byte_;
  // Guards the clock state only; never held across a sleep or an inner
  // op. `unslept_` carries sub-quantum cost that was charged but not
  // yet slept across idle re-anchors of the timeline, so a consumer
  // slower than the device still experiences the configured rate.
  std::mutex clock_mu_;
  std::chrono::steady_clock::time_point busy_until_{};
  std::chrono::nanoseconds unslept_{0};
};

// Composite device that stripes each registered file's blocks
// round-robin across a set of member devices at physical-stride
// granularity: block b of a striped file lives at stride offset
// (b / D) * stride of part b % D, so a single sequential stream draws
// bandwidth from all D members at once (the classic parallel-disk
// layout). The TempFileManager owns one StripedDevice under the
// kStriped placement policy, registers a virtual path plus the
// per-member part paths for every new scratch file, and resolves the
// virtual path back to this device; Open then opens every part and
// returns the routing composite.
//
// The stride is the *physical* block stride: block_size payload bytes,
// plus the CRC32 trailer for checksummed scratch streams (mode !=
// kReadWrite when checksum_blocks is on — exactly BlockFile's own
// stride rule, so striping composes with checksums without either
// layer knowing about the other).
//
// Accounting: this device's own IoStats stay ZERO by construction —
// BlockFile charges every block I/O to the member device owning the
// stripe (StorageFile::stripe_devices), so the per-device rows of
// DeviceStats (which list only the members) still sum exactly to the
// aggregate. Failover: a part-level I/O failure notes the failing
// member here; TempFileManager::Quarantine on this device drains that
// set and quarantines the members, and new striped placements exclude
// them.
class StripedDevice : public StorageDevice {
 public:
  explicit StripedDevice(std::string name);

  // Stride geometry; must be set before the first Open (IoContext
  // forwards its block_size/checksum_blocks options at construction
  // via TempFileManager::ConfigureStriping).
  void SetGeometry(std::size_t block_size, bool checksum_blocks);
  bool has_geometry() const;

  // Declares the striped file behind virtual path `path`: part i lives
  // at parts[i] on devices[i] (>= 2 members, all distinct).
  void RegisterFile(const std::string& path,
                    std::vector<StorageDevice*> devices,
                    std::vector<std::string> parts);

  // Records a member whose part I/O failed; TakeFailedDevices drains
  // the (deduplicated) set. The quarantine redirection seam.
  void NoteFailedDevice(StorageDevice* device);
  std::vector<StorageDevice*> TakeFailedDevices();

  util::Status Open(const std::string& path, OpenMode mode,
                    std::unique_ptr<StorageFile>* out) override;
  util::Status Delete(const std::string& path) override;
  std::string CreateSessionRoot() override;
  void RemoveTree(const std::string& root) override;

 private:
  struct StripeInfo {
    std::vector<StorageDevice*> devices;
    std::vector<std::string> parts;
  };

  mutable std::mutex mu_;
  std::size_t block_size_ = 0;
  bool checksum_blocks_ = false;
  std::uint64_t next_session_ = 0;
  std::unordered_map<std::string, StripeInfo> files_;
  std::vector<StorageDevice*> failed_devices_;
};

// One PosixDevice ("disk<i>") per entry of `scratch_parents`, or a
// single one under `parent_dir` ("" = $TMPDIR or /tmp) when the list is
// empty. The one construction path shared by the TempFileManager
// convenience ctor and IoContext's options path, so both produce
// identical device sets (names, parents, order).
std::vector<std::unique_ptr<StorageDevice>> MakePosixScratchDevices(
    const std::string& parent_dir,
    const std::vector<std::string>& scratch_parents);

// Removes session scratch roots under `parent` whose owning process is
// dead, and returns how many were reaped. A root is reapable when its
// name matches the extscc_<pid>_<seq> scheme AND the pid (from the
// root's .pid file when readable, else from the name) no longer exists
// (kill(pid, 0) == ESRCH). Live pids and unparseable names are left
// untouched. Closes the SIGKILL gap of InstallScratchSignalCleanup:
// PosixDevice::CreateSessionRoot calls this before creating the new
// root, so the next run of any tool sharing the scratch parent reclaims
// the space. Best-effort — reaping failures are ignored.
std::size_t ReapOrphanScratchRoots(const std::string& parent);

// ---- placement -------------------------------------------------------

// How the TempFileManager assigns scratch files to devices.
//  - kRoundRobin: by global file sequence number (the PR 3 default,
//    byte-identical paths and device choice).
//  - kSpreadGroup: grouped files (sort runs, merge-pass outputs) land on
//    device (group + member) % num_devices, so any window of up to
//    num_devices consecutive members — in particular the fan-in runs of
//    one merge group — occupies distinct devices by construction.
//    Ungrouped files fall back to round-robin.
//  - kStriped: every scratch file's BLOCKS round-robin across the
//    available devices (StripedDevice), so even a single sequential
//    stream — a long scan, the final merge's output — runs at D× one
//    device's bandwidth. Falls back to round-robin (with a once-per-
//    manager stderr note) when fewer than two devices are available.
enum class PlacementPolicy { kRoundRobin, kSpreadGroup, kStriped };

// Placement request for one scratch file. `group` is a merge-group id
// (one per run-forming sort or merge pass, from
// TempFileManager::NextGroupId()); `member` is the file's ordinal within
// that group.
struct Placement {
  bool grouped = false;
  std::uint64_t group = 0;
  std::uint64_t member = 0;

  static Placement Ungrouped() { return {}; }
  static Placement InGroup(std::uint64_t group, std::uint64_t member) {
    Placement p;
    p.grouped = true;
    p.group = group;
    p.member = member;
    return p;
  }
};

// ---- device-model configuration -------------------------------------

enum class DeviceModel { kPosix, kMem, kThrottled, kFaulty };

// Seeded, deterministic fault schedule for FaultInjectingDevice
// (fault_injection.h). Every decision derives from (seed, device op
// ordinal) alone, so a given configuration injects the same faults at
// the same ops on every run — the property the chaos tests key on.
struct FaultSpec {
  std::uint64_t seed = 1;
  double read_fault_rate = 0.0;   // transient EIO per read op
  double write_fault_rate = 0.0;  // transient EIO per write op
  double short_rate = 0.0;        // torn transfer, then transient EIO
  double corrupt_rate = 0.0;      // silent bit flip in a read payload
  // > 0: from device op ordinal N on, writes fail persistently with
  // ENOSPC (the disk filled up) / reads with EIO (the disk died).
  std::uint64_t fail_writes_after = 0;
  std::uint64_t fail_reads_after = 0;
  // Only paths containing this substring fault ("" = all). Scratch
  // files are named "<seq>_<tag>", so a placement tag like "sortrun"
  // targets exactly the spill path.
  std::string path_tag;
  // >= 0: only scratch device with this index faults (its wrapper gets
  // the schedule; siblings are built clean) — the single-bad-disk
  // failover scenario.
  int device_index = -1;
  // What backs the wrapper: kPosix (default) or kMem.
  DeviceModel inner = DeviceModel::kPosix;
};

struct DeviceModelSpec {
  DeviceModel model = DeviceModel::kPosix;
  // ThrottledDevice parameters (kThrottled only).
  std::uint64_t throttle_latency_us = 100;
  std::uint64_t throttle_mb_per_sec = 1024;
  // FaultInjectingDevice parameters (kFaulty only).
  FaultSpec fault;
};

// Parses "posix" | "mem" | "throttled[:latency_us[:mb_per_s]]" |
// "faulty[:key=value[,key=value...]]" into *out. Returns "" on
// success, else an error message naming the bad spec. Used by the
// --device-model flags and the test-env override. Faulty keys: seed=N,
// rate=R (read and write transient rate), read_rate=R, write_rate=R,
// short=R, corrupt=R, wfail_after=N, rfail_after=N, tag=S, device=N,
// inner=posix|mem.
std::string ParseDeviceModelSpec(const std::string& text,
                                 DeviceModelSpec* out);

// True when `status` is a transient I/O failure worth retrying at the
// BlockFile layer: an errno-carrying IoError whose errno is EIO, EINTR,
// EAGAIN or ETIMEDOUT. ENOSPC, open failures surfaced as ENOENT,
// truncated transfers (no errno) and kCorruption are persistent — they
// propagate (and may quarantine the device) instead of burning retries.
bool IsRetryableIoError(const util::Status& status);

// Parses "rr" | "spread" | "striped" into *out. Returns "" on success,
// else an error message. Shared by the --placement flags of the benches
// and extscc_tool.
std::string ParsePlacementSpec(const std::string& text,
                               PlacementPolicy* out);

// Returns "" when every entry is an existing writable directory, else a
// message naming the first bad entry — so the tools can reject a typo'd
// --scratch-dirs up front instead of CHECK-failing deep inside
// TempFileManager::CreateSessionDir.
std::string ValidateScratchParents(const std::vector<std::string>& parents);

// Front-end policy: validates a --scratch-dirs list against the chosen
// device model. Under kMem the entries only set the device count
// (nothing on disk to validate); every file-backed model requires real
// writable directories. Returns "" or the ValidateScratchParents error.
std::string ValidateScratchConfig(const DeviceModelSpec& model,
                                  const std::vector<std::string>& parents);

class TempFileManager;

// Warns (stderr) when `temp_files` uses kSpreadGroup placement but its
// device count cannot keep a `group_size`-run merge group on distinct
// devices, naming both numbers — once per manager
// (TempFileManager::ClaimSpreadWarning). Called by the sorter's merge
// path instead of degrading silently; a no-op under other placements —
// in particular under kStriped, where every stream spans all devices by
// construction and fan-in coverage is moot — for trivial groups, and
// when the devices cover the fan-in. The whole
// condition lives here so the once-per-context ticket is only consumed
// when a message is actually printed.
void MaybeWarnSpreadBelowFanIn(TempFileManager& temp_files,
                               std::size_t group_size);

}  // namespace extscc::io

#endif  // EXTSCC_IO_STORAGE_H_
