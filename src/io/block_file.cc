#include "io/block_file.h"

#include <algorithm>
#include <condition_variable>
#include <cstring>
#include <mutex>
#include <thread>
#include <vector>

#include "io/io_context.h"
#include "io/read_scheduler.h"
#include "util/logging.h"

namespace extscc::io {

// Background reader for sequential scans. One thread per prefetching
// file keeps up to `depth` blocks decoded ahead of the consumer in a
// ring of slots; the consumer takes the head slot in TakeBlock. Raw
// preads happen on the prefetch thread, but no IoStats are touched here —
// the consumer records the model I/O when it consumes the block, keeping
// the Aggarwal-Vitter counters identical to the unprefetched execution.
class BlockFile::Prefetcher {
 public:
  Prefetcher(BlockFile* file, std::uint64_t start_block, std::size_t depth)
      : file_(file),
        depth_(std::max<std::size_t>(1, depth)),
        next_block_(start_block),
        consume_block_(start_block) {
    file_->context_->memory().Reserve(depth_ * file_->block_size_);
    slots_.resize(depth_);
    for (Slot& slot : slots_) slot.data.resize(file_->block_size_);
    thread_ = std::thread([this] { Run(); });
  }

  ~Prefetcher() {
    {
      std::unique_lock<std::mutex> lock(mu_);
      stop_ = true;
    }
    cv_.notify_all();
    thread_.join();
    file_->context_->memory().Release(depth_ * file_->block_size_);
  }

  // If `block_index` is the next block of the prefetched sequence, blocks
  // until its slot is filled, copies it into `buf` and returns true with
  // the payload size in *bytes. Returns false when the request is off the
  // sequence (caller seeked) — the caller then preads directly.
  bool TakeBlock(std::uint64_t block_index, void* buf, std::size_t* bytes) {
    std::unique_lock<std::mutex> lock(mu_);
    // The sequence the thread produces is fixed; anything not equal to
    // the oldest unconsumed block is a seek.
    if (block_index != consume_block_) return false;
    cv_.wait(lock, [this] { return filled_ > 0 || done_; });
    if (filled_ == 0) {
      // Producer hit EOF before this block: past-EOF read.
      *bytes = 0;
      ++consume_block_;
      return true;
    }
    Slot& slot = slots_[head_];
    DCHECK_EQ(slot.block, block_index);
    std::memcpy(buf, slot.data.data(), slot.bytes);
    *bytes = slot.bytes;
    head_ = (head_ + 1) % depth_;
    --filled_;
    ++consume_block_;
    lock.unlock();
    cv_.notify_all();
    return true;
  }

 private:
  struct Slot {
    std::uint64_t block = 0;
    std::size_t bytes = 0;
    std::vector<char> data;
  };

  void Run() {
    const std::uint64_t end_block = file_->num_blocks();
    while (true) {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stop_ || filled_ < depth_; });
      if (stop_) return;
      if (next_block_ >= end_block) {
        done_ = true;
        lock.unlock();
        cv_.notify_all();
        return;
      }
      const std::uint64_t block = next_block_++;
      Slot& slot = slots_[(head_ + filled_) % depth_];
      lock.unlock();
      // Read outside the lock: this is the latency being hidden.
      slot.block = block;
      slot.bytes = file_->PreadBlock(block, slot.data.data());
      lock.lock();
      ++filled_;
      lock.unlock();
      cv_.notify_all();
    }
  }

  BlockFile* file_;
  const std::size_t depth_;

  std::mutex mu_;
  std::condition_variable cv_;
  std::thread thread_;
  std::vector<Slot> slots_;
  std::size_t head_ = 0;        // oldest filled slot
  std::size_t filled_ = 0;      // filled slot count
  std::uint64_t next_block_ = 0;     // next block the producer reads
  std::uint64_t consume_block_ = 0;  // next block the consumer may take
  bool stop_ = false;
  bool done_ = false;  // producer reached EOF
};

BlockFile::BlockFile(IoContext* context, const std::string& path,
                     OpenMode mode)
    : context_(context),
      path_(path),
      device_(context->ResolveDevice(path)),
      file_(device_->Open(path, mode)),
      block_size_(context->block_size()) {
  size_bytes_ = file_->size_bytes();
  if (mode == OpenMode::kTruncateWrite) {
    std::lock_guard<std::mutex> lock(context_->stats_mutex());
    context_->stats().files_created += 1;
    device_->stats().files_created += 1;
  }
}

BlockFile::~BlockFile() {
  prefetcher_.reset();
  // Unregister drains a pending async write before the handle closes,
  // so a run file reopened for merging sees every submitted block.
  if (sched_reader_ != nullptr) {
    context_->read_scheduler()->Unregister(sched_reader_);
    sched_reader_ = nullptr;
  }
  if (sched_writer_ != nullptr) {
    context_->read_scheduler()->Unregister(sched_writer_);
    sched_writer_ = nullptr;
  }
  file_.reset();
}

std::uint64_t BlockFile::num_blocks() const {
  return (size_bytes_ + block_size_ - 1) / block_size_;
}

void BlockFile::StartSequentialPrefetch(std::uint64_t start_block) {
  if (prefetcher_ != nullptr || sched_reader_ != nullptr) return;
  // The shared scheduler takes precedence over the per-file prefetcher
  // when both engines are enabled: one worker per device replaces one
  // thread per file. Register degrades to nullptr (direct reads) when
  // the budget cannot cover even one ring slot.
  if (ReadScheduler* scheduler = context_->read_scheduler()) {
    if (start_block >= num_blocks()) return;  // nothing to read ahead
    sched_reader_ = scheduler->RegisterReader(this, start_block);
    return;
  }
  if (!context_->prefetch_enabled()) return;
  const std::size_t depth =
      std::max<std::size_t>(1, context_->prefetch_depth());
  // Degrade gracefully to the unprefetched path when the budget cannot
  // cover the ring — Reserve() treats oversubscription as a logic error.
  if (context_->memory().available_bytes() <
      static_cast<std::uint64_t>(depth) * block_size_) {
    return;
  }
  if (start_block >= num_blocks()) return;  // nothing to read ahead
  prefetcher_ = std::make_unique<Prefetcher>(this, start_block, depth);
}

std::size_t BlockFile::PreadBlock(std::uint64_t block_index, void* buf) {
  const std::uint64_t offset = block_index * block_size_;
  if (offset >= size_bytes_) return 0;
  const std::size_t want = static_cast<std::size_t>(
      std::min<std::uint64_t>(block_size_, size_bytes_ - offset));
  file_->ReadAt(offset, buf, want);
  return want;
}

void BlockFile::CountRead(std::uint64_t block_index, std::size_t bytes) {
  // Sequential/random classification is per-file state (one thread per
  // open file); only the shared IoStats needs the context lock — a
  // sort_threads spill worker counts its run writes concurrently with
  // the producer's input reads.
  const bool sequential =
      static_cast<std::int64_t>(block_index) == last_read_block_ + 1;
  last_read_block_ = static_cast<std::int64_t>(block_index);
  std::lock_guard<std::mutex> lock(context_->stats_mutex());
  IoStats& stats = context_->stats();
  IoStats& device_stats = device_->stats();
  if (sequential) {
    stats.sequential_reads += 1;
    device_stats.sequential_reads += 1;
  } else {
    stats.random_reads += 1;
    device_stats.random_reads += 1;
  }
  stats.bytes_read += bytes;
  device_stats.bytes_read += bytes;
  context_->OnIo();
}

void BlockFile::EnableOverlappedWrites() {
  if (sched_writer_ != nullptr) return;
  ReadScheduler* scheduler = context_->read_scheduler();
  if (scheduler == nullptr) return;
  sched_writer_ = scheduler->RegisterWriter(this);  // nullptr: stay sync
}

std::size_t BlockFile::ReadBlock(std::uint64_t block_index, void* buf) {
  DCHECK(sched_writer_ == nullptr)
      << "read from a file with overlapped writes still open";
  if (sched_reader_ != nullptr) {
    std::size_t bytes = 0;
    if (context_->read_scheduler()->TakeBlock(sched_reader_, block_index,
                                              buf, &bytes)) {
      if (bytes == 0) return 0;  // past EOF: uncounted, like direct
      CountRead(block_index, bytes);
      return bytes;
    }
    // Off-sequence request: the stream is no longer sequential, so the
    // read-ahead is useless — drop it and serve directly from here on.
    context_->read_scheduler()->Unregister(sched_reader_);
    sched_reader_ = nullptr;
  }
  if (prefetcher_ != nullptr) {
    std::size_t bytes = 0;
    if (prefetcher_->TakeBlock(block_index, buf, &bytes)) {
      if (bytes == 0) return 0;  // past EOF: uncounted, like the direct path
      CountRead(block_index, bytes);
      return bytes;
    }
    // Off-sequence request: the stream is no longer sequential, so the
    // read-ahead is useless — drop it and serve directly from here on.
    prefetcher_.reset();
  }
  const std::size_t bytes = PreadBlock(block_index, buf);
  if (bytes == 0) return 0;
  CountRead(block_index, bytes);
  return bytes;
}

void BlockFile::CountWrite(std::uint64_t block_index, std::size_t bytes) {
  // Re-writing the same (tail) block counts as sequential append traffic.
  const bool sequential =
      static_cast<std::int64_t>(block_index) == last_write_block_ + 1 ||
      static_cast<std::int64_t>(block_index) == last_write_block_;
  last_write_block_ = static_cast<std::int64_t>(block_index);
  std::lock_guard<std::mutex> lock(context_->stats_mutex());
  IoStats& stats = context_->stats();
  IoStats& device_stats = device_->stats();
  if (sequential) {
    stats.sequential_writes += 1;
    device_stats.sequential_writes += 1;
  } else {
    stats.random_writes += 1;
    device_stats.random_writes += 1;
  }
  stats.bytes_written += bytes;
  device_stats.bytes_written += bytes;
  context_->OnIo();
}

void BlockFile::RawWriteAt(std::uint64_t block_index, const void* data,
                           std::size_t bytes) {
  file_->WriteAt(block_index * block_size_, data, bytes);
}

void BlockFile::WriteBlock(std::uint64_t block_index, const void* data,
                           std::size_t bytes) {
  CHECK_LE(bytes, block_size_);
  const std::uint64_t offset = block_index * block_size_;
  if (sched_writer_ != nullptr) {
    // Advance size_bytes_ BEFORE the hand-off (RawWriteAt's off-thread
    // safety contract), then give the block to the device worker
    // (blocks while the previous write is in flight — the
    // double-buffer bound) and account it here in submission order, so
    // IoStats match the synchronous path.
    size_bytes_ = std::max(size_bytes_, offset + bytes);
    context_->read_scheduler()->SubmitWrite(sched_writer_, block_index,
                                            data, bytes);
    CountWrite(block_index, bytes);
    return;
  }
  // Writing beyond the current final partial block would leave a hole of
  // undefined record data; the streaming writers never do this.
  file_->WriteAt(offset, data, bytes);
  size_bytes_ = std::max(size_bytes_, offset + bytes);
  CountWrite(block_index, bytes);
}

}  // namespace extscc::io
