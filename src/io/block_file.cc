#include "io/block_file.h"

#include <algorithm>
#include <chrono>
#include <condition_variable>
#include <cstring>
#include <thread>
#include <vector>

#include "io/checksum.h"
#include "io/io_context.h"
#include "io/read_scheduler.h"
#include "util/logging.h"

namespace extscc::io {

namespace {

// Bounded exponential backoff around one raw device transfer. Only
// transient errors (IsRetryableIoError) burn attempts; each retry is
// counted in the retry counters of both the context aggregate and the
// device (under stats_mutex), never as a model I/O. Callers hold no
// locks here (the backoff sleeps).
template <typename Op>
util::Status RunWithRetries(IoContext* context, StorageDevice* device,
                            bool is_read, Op&& op) {
  const std::size_t max_attempts =
      std::max<std::size_t>(1, context->io_retry_attempts());
  std::uint64_t backoff_us = context->io_retry_backoff_initial_us();
  for (std::size_t attempt = 1;; ++attempt) {
    util::Status status = op();
    if (status.ok() || attempt >= max_attempts ||
        !IsRetryableIoError(status)) {
      return status;
    }
    {
      std::lock_guard<std::mutex> lock(context->stats_mutex());
      IoStats& stats = context->stats();
      IoStats& device_stats = device->stats();
      if (is_read) {
        stats.read_retries += 1;
        device_stats.read_retries += 1;
      } else {
        stats.write_retries += 1;
        device_stats.write_retries += 1;
      }
    }
    if (backoff_us > 0) {
      std::this_thread::sleep_for(std::chrono::microseconds(backoff_us));
    }
    backoff_us = std::min(std::max<std::uint64_t>(1, backoff_us) * 2,
                          context->io_retry_backoff_max_us());
  }
}

// Payload bytes in a checksummed file whose on-device size is
// `physical`: N full strides carry N full blocks; a trailing partial
// stride carries its bytes minus the trailer. (A partial stride of
// <= 4 bytes is a torn final write; treating its payload as 0 lets the
// reader surface the problem as a short file instead of crashing.)
std::uint64_t LogicalSizeFromPhysical(std::uint64_t physical,
                                      std::size_t block_size) {
  const std::uint64_t stride = block_size + kChecksumTrailerBytes;
  const std::uint64_t full = physical / stride;
  const std::uint64_t rem = physical % stride;
  return full * block_size +
         (rem > kChecksumTrailerBytes ? rem - kChecksumTrailerBytes : 0);
}

// Per-thread staging buffer for checksummed transfers: PreadBlock runs
// concurrently on the consumer, the prefetch thread and the scheduler's
// device workers, so the staging area cannot be per-file state.
std::vector<char>& ChecksumStaging(std::size_t block_size) {
  static thread_local std::vector<char> staging;
  if (staging.size() < block_size + kChecksumTrailerBytes) {
    staging.resize(block_size + kChecksumTrailerBytes);
  }
  return staging;
}

}  // namespace

// Background reader for sequential scans. One thread per prefetching
// file keeps up to `depth` blocks decoded ahead of the consumer in a
// ring of slots; the consumer takes the head slot in TakeBlock. Raw
// preads happen on the prefetch thread, but no IoStats are touched here —
// the consumer records the model I/O when it consumes the block, keeping
// the Aggarwal-Vitter counters identical to the unprefetched execution.
class BlockFile::Prefetcher {
 public:
  // Takes ownership of a budget reservation of depth * block_size bytes
  // already made by the caller (StartSequentialPrefetch reserves
  // atomically so concurrent openers cannot jointly oversubscribe).
  Prefetcher(BlockFile* file, std::uint64_t start_block, std::size_t depth)
      : file_(file),
        depth_(std::max<std::size_t>(1, depth)),
        next_block_(start_block),
        consume_block_(start_block) {
    slots_.resize(depth_);
    for (Slot& slot : slots_) slot.data.resize(file_->block_size_);
    thread_ = std::thread([this] { Run(); });
  }

  ~Prefetcher() {
    {
      std::unique_lock<std::mutex> lock(mu_);
      stop_ = true;
    }
    cv_.notify_all();
    thread_.join();
    file_->context_->memory().Release(depth_ * file_->block_size_);
  }

  // If `block_index` is the next block of the prefetched sequence, blocks
  // until its slot is filled, copies it into `buf` and returns true with
  // the payload size in *bytes. Returns false when the request is off the
  // sequence (caller seeked) — the caller then preads directly.
  bool TakeBlock(std::uint64_t block_index, void* buf, std::size_t* bytes) {
    std::unique_lock<std::mutex> lock(mu_);
    // The sequence the thread produces is fixed; anything not equal to
    // the oldest unconsumed block is a seek.
    if (block_index != consume_block_) return false;
    cv_.wait(lock, [this] { return filled_ > 0 || done_; });
    if (filled_ == 0) {
      // Producer hit EOF — or a parked error (already on the file's
      // sticky status) — before this block. Either way: no bytes.
      *bytes = 0;
      ++consume_block_;
      return true;
    }
    Slot& slot = slots_[head_];
    DCHECK_EQ(slot.block, block_index);
    std::memcpy(buf, slot.data.data(), slot.bytes);
    *bytes = slot.bytes;
    head_ = (head_ + 1) % depth_;
    --filled_;
    ++consume_block_;
    lock.unlock();
    cv_.notify_all();
    return true;
  }

 private:
  struct Slot {
    std::uint64_t block = 0;
    std::size_t bytes = 0;
    std::vector<char> data;
  };

  void Run() {
    const std::uint64_t end_block = file_->num_blocks();
    while (true) {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stop_ || filled_ < depth_; });
      if (stop_) return;
      if (next_block_ >= end_block) {
        done_ = true;
        lock.unlock();
        cv_.notify_all();
        return;
      }
      const std::uint64_t block = next_block_++;
      Slot& slot = slots_[(head_ + filled_) % depth_];
      lock.unlock();
      // Read outside the lock: this is the latency being hidden.
      slot.block = block;
      const util::Status status =
          file_->PreadBlock(block, slot.data.data(), &slot.bytes);
      if (!status.ok()) {
        // Never abort the worker: park the error on the file (which
        // latches the context) and end the stream. The consumer's next
        // ReadBlock sees EOF-shaped 0 bytes and checks status().
        file_->MarkError(status);
        lock.lock();
        done_ = true;
        lock.unlock();
        cv_.notify_all();
        return;
      }
      lock.lock();
      ++filled_;
      lock.unlock();
      cv_.notify_all();
    }
  }

  BlockFile* file_;
  const std::size_t depth_;

  std::mutex mu_;
  std::condition_variable cv_;
  std::thread thread_;
  std::vector<Slot> slots_;
  std::size_t head_ = 0;        // oldest filled slot
  std::size_t filled_ = 0;      // filled slot count
  std::uint64_t next_block_ = 0;     // next block the producer reads
  std::uint64_t consume_block_ = 0;  // next block the consumer may take
  bool stop_ = false;
  bool done_ = false;  // producer reached EOF
};

BlockFile::BlockFile(IoContext* context, const std::string& path,
                     OpenMode mode)
    : context_(context),
      path_(path),
      device_(context->ResolveDevice(path)),
      block_size_(context->block_size()) {
  // Checksums cover sequential scratch streams only: user-facing files
  // must stay raw bytes, and kReadWrite random-access rewrites would
  // need read-modify-write of interior trailers.
  checksummed_ = context->checksum_blocks() &&
                 mode != OpenMode::kReadWrite &&
                 context->temp_files().DeviceForPath(path) != nullptr;
  const util::Status open_status = device_->Open(path, mode, &file_);
  if (!open_status.ok()) {
    MarkError(open_status);
    return;
  }
  size_bytes_ = checksummed_
                    ? LogicalSizeFromPhysical(file_->size_bytes(), block_size_)
                    : file_->size_bytes();
  if (mode == OpenMode::kTruncateWrite) {
    std::lock_guard<std::mutex> lock(context_->stats_mutex());
    context_->stats().files_created += 1;
    // Striped files charge their creation to the member owning block 0,
    // keeping per-device rows summing to the aggregate.
    StatsDevice(0)->stats().files_created += 1;
  }
}

BlockFile::~BlockFile() {
  // Unchecked shutdown: Close() already routed any drain error through
  // MarkError, so nothing is lost — it sits latched on the context.
  (void)Close();
}

util::Status BlockFile::Close() {
  prefetcher_.reset();
  // Unregister drains a pending async write before the handle closes,
  // so a run file reopened for merging sees every submitted block.
  if (sched_reader_ != nullptr) {
    context_->read_scheduler()->Unregister(sched_reader_);
    sched_reader_ = nullptr;
  }
  if (sched_writer_ != nullptr) {
    context_->read_scheduler()->Unregister(sched_writer_);
    sched_writer_ = nullptr;
  }
  file_.reset();
  return status();
}

util::Status BlockFile::Sync() {
  if (file_ == nullptr) return status();
  // Drain a pending overlapped write first: fsync hardens only bytes
  // the device has already accepted.
  if (sched_writer_ != nullptr) {
    context_->read_scheduler()->Unregister(sched_writer_);
    sched_writer_ = nullptr;
  }
  const util::Status sync_status = RunWithRetries(
      context_, StatsDevice(0), /*is_read=*/false,
      [&] { return file_->Sync(); });
  {
    std::lock_guard<std::mutex> lock(context_->stats_mutex());
    context_->stats().sync_calls += 1;
    StatsDevice(0)->stats().sync_calls += 1;
  }
  if (!sync_status.ok()) MarkError(sync_status);
  return sync_status;
}

util::Status BlockFile::status() const {
  std::lock_guard<std::mutex> lock(status_mu_);
  return status_;
}

void BlockFile::MarkError(const util::Status& status) {
  if (status.ok()) return;
  {
    std::lock_guard<std::mutex> lock(status_mu_);
    if (status_.ok()) status_ = status;
  }
  context_->RecordIoError(status);
}

std::uint64_t BlockFile::num_blocks() const {
  return (size_bytes_ + block_size_ - 1) / block_size_;
}

std::uint64_t BlockFile::PhysicalOffset(std::uint64_t block_index) const {
  const std::uint64_t stride =
      checksummed_ ? block_size_ + kChecksumTrailerBytes : block_size_;
  return block_index * stride;
}

void BlockFile::StartSequentialPrefetch(std::uint64_t start_block) {
  if (prefetcher_ != nullptr || sched_reader_ != nullptr) return;
  if (file_ == nullptr) return;  // dead open: nothing to read ahead
  // The shared scheduler takes precedence over the per-file prefetcher
  // when both engines are enabled: one worker per device replaces one
  // thread per file. Register degrades to nullptr (direct reads) when
  // the budget cannot cover even one ring slot.
  if (ReadScheduler* scheduler = context_->read_scheduler()) {
    if (start_block >= num_blocks()) return;  // nothing to read ahead
    sched_reader_ = scheduler->RegisterReader(this, start_block);
    return;
  }
  if (!context_->prefetch_enabled()) return;
  const std::size_t depth =
      std::max<std::size_t>(1, context_->prefetch_depth());
  // Degrade gracefully to the unprefetched path when the budget cannot
  // cover the ring. Reserved atomically here (not inside Prefetcher) so
  // two files opened from different threads cannot both pass a
  // check-then-reserve gap; the Prefetcher's destructor releases it.
  const std::uint64_t ring_bytes =
      static_cast<std::uint64_t>(depth) * block_size_;
  const std::uint64_t granted = context_->memory().ReserveUpTo(ring_bytes);
  if (granted < ring_bytes || start_block >= num_blocks()) {
    context_->memory().Release(granted);
    return;
  }
  prefetcher_ = std::make_unique<Prefetcher>(this, start_block, depth);
}

util::Status BlockFile::PreadBlock(std::uint64_t block_index, void* buf,
                                   std::size_t* bytes) {
  *bytes = 0;
  if (file_ == nullptr) return status();  // dead open
  const std::uint64_t offset = block_index * block_size_;
  if (offset >= size_bytes_) return util::Status::Ok();  // past EOF
  const std::size_t want = static_cast<std::size_t>(
      std::min<std::uint64_t>(block_size_, size_bytes_ - offset));
  if (!checksummed_) {
    // Retries (like the model I/O itself) are charged to the device
    // that owns this block's stripe.
    RETURN_IF_ERROR(RunWithRetries(context_, StatsDevice(block_index),
                                   /*is_read=*/true, [&] {
                                     return file_->ReadAt(offset, buf, want);
                                   }));
    *bytes = want;
    return util::Status::Ok();
  }
  // Checksummed: pull payload + trailer in one transfer, verify, then
  // hand the caller the payload. A mismatch is kCorruption and is NOT
  // retried — re-reading flipped bits yields the same flipped bits; the
  // point is to refuse to merge them into an answer.
  std::vector<char>& staging = ChecksumStaging(block_size_);
  const std::uint64_t phys = PhysicalOffset(block_index);
  RETURN_IF_ERROR(RunWithRetries(
      context_, StatsDevice(block_index), /*is_read=*/true, [&] {
        return file_->ReadAt(phys, staging.data(),
                             want + kChecksumTrailerBytes);
      }));
  const std::uint32_t expected = DecodeChecksumTrailer(staging.data() + want);
  const std::uint32_t actual = Crc32(staging.data(), want);
  if (expected != actual) {
    return util::Status::Corruption(
        "block checksum mismatch in " + path_ + " block " +
        std::to_string(block_index) + " (stored " + std::to_string(expected) +
        ", computed " + std::to_string(actual) + ")");
  }
  std::memcpy(buf, staging.data(), want);
  *bytes = want;
  return util::Status::Ok();
}

void BlockFile::CountRead(std::uint64_t block_index, std::size_t bytes) {
  // Sequential/random classification is per-file state (one thread per
  // open file); only the shared IoStats needs the context lock — a
  // sort_threads spill worker counts its run writes concurrently with
  // the producer's input reads.
  const bool sequential =
      static_cast<std::int64_t>(block_index) == last_read_block_ + 1;
  last_read_block_ = static_cast<std::int64_t>(block_index);
  std::lock_guard<std::mutex> lock(context_->stats_mutex());
  IoStats& stats = context_->stats();
  IoStats& device_stats = StatsDevice(block_index)->stats();
  if (sequential) {
    stats.sequential_reads += 1;
    device_stats.sequential_reads += 1;
  } else {
    stats.random_reads += 1;
    device_stats.random_reads += 1;
  }
  stats.bytes_read += bytes;
  device_stats.bytes_read += bytes;
  context_->OnIo();
}

void BlockFile::EnableOverlappedWrites() {
  if (sched_writer_ != nullptr) return;
  if (file_ == nullptr) return;  // dead open: stay on the no-op sync path
  ReadScheduler* scheduler = context_->read_scheduler();
  if (scheduler == nullptr) return;
  sched_writer_ = scheduler->RegisterWriter(this);  // nullptr: stay sync
}

std::size_t BlockFile::ReadBlock(std::uint64_t block_index, void* buf) {
  DCHECK(sched_writer_ == nullptr)
      << "read from a file with overlapped writes still open";
  if (sched_reader_ != nullptr) {
    std::size_t bytes = 0;
    if (context_->read_scheduler()->TakeBlock(sched_reader_, block_index,
                                              buf, &bytes)) {
      if (bytes == 0) return 0;  // past EOF or parked error: uncounted
      CountRead(block_index, bytes);
      return bytes;
    }
    // Off-sequence request: the stream is no longer sequential, so the
    // read-ahead is useless — drop it and serve directly from here on.
    context_->read_scheduler()->Unregister(sched_reader_);
    sched_reader_ = nullptr;
  }
  if (prefetcher_ != nullptr) {
    std::size_t bytes = 0;
    if (prefetcher_->TakeBlock(block_index, buf, &bytes)) {
      if (bytes == 0) return 0;  // past EOF or parked error: uncounted
      CountRead(block_index, bytes);
      return bytes;
    }
    // Off-sequence request: the stream is no longer sequential, so the
    // read-ahead is useless — drop it and serve directly from here on.
    prefetcher_.reset();
  }
  std::size_t bytes = 0;
  const util::Status status = PreadBlock(block_index, buf, &bytes);
  if (!status.ok()) {
    MarkError(status);
    return 0;
  }
  if (bytes == 0) return 0;
  CountRead(block_index, bytes);
  return bytes;
}

void BlockFile::CountWrite(std::uint64_t block_index, std::size_t bytes) {
  // Re-writing the same (tail) block counts as sequential append traffic.
  const bool sequential =
      static_cast<std::int64_t>(block_index) == last_write_block_ + 1 ||
      static_cast<std::int64_t>(block_index) == last_write_block_;
  last_write_block_ = static_cast<std::int64_t>(block_index);
  std::lock_guard<std::mutex> lock(context_->stats_mutex());
  IoStats& stats = context_->stats();
  IoStats& device_stats = StatsDevice(block_index)->stats();
  if (sequential) {
    stats.sequential_writes += 1;
    device_stats.sequential_writes += 1;
  } else {
    stats.random_writes += 1;
    device_stats.random_writes += 1;
  }
  stats.bytes_written += bytes;
  device_stats.bytes_written += bytes;
  context_->OnIo();
}

util::Status BlockFile::RawWriteAt(std::uint64_t block_index,
                                   const void* data, std::size_t bytes) {
  if (file_ == nullptr) return status();  // dead open
  if (!checksummed_) {
    return RunWithRetries(context_, StatsDevice(block_index),
                          /*is_read=*/false, [&] {
      return file_->WriteAt(block_index * block_size_, data, bytes);
    });
  }
  // Stage payload + CRC trailer and write them as one transfer, so a
  // torn write cannot leave a block whose trailer postdates its
  // payload. The retry re-stages nothing: the staging content is
  // deterministic in (data, bytes).
  std::vector<char>& staging = ChecksumStaging(block_size_);
  std::memcpy(staging.data(), data, bytes);
  EncodeChecksumTrailer(Crc32(data, bytes), staging.data() + bytes);
  const std::uint64_t phys = PhysicalOffset(block_index);
  return RunWithRetries(context_, StatsDevice(block_index),
                        /*is_read=*/false, [&] {
    return file_->WriteAt(phys, staging.data(),
                          bytes + kChecksumTrailerBytes);
  });
}

void BlockFile::WriteBlock(std::uint64_t block_index, const void* data,
                           std::size_t bytes) {
  CHECK_LE(bytes, block_size_);
  {
    // Once an error is parked the file is dead: stop issuing device
    // writes (one ENOSPC is information, a thousand are noise) and let
    // the caller observe status().
    std::lock_guard<std::mutex> lock(status_mu_);
    if (!status_.ok()) return;
  }
  const std::uint64_t offset = block_index * block_size_;
  if (sched_writer_ != nullptr) {
    // Advance size_bytes_ BEFORE the hand-off (RawWriteAt's off-thread
    // safety contract), then give the block to the device worker
    // (blocks while the previous write is in flight — the
    // double-buffer bound) and account it here in submission order, so
    // IoStats match the synchronous path.
    size_bytes_ = std::max(size_bytes_, offset + bytes);
    context_->read_scheduler()->SubmitWrite(sched_writer_, block_index,
                                            data, bytes);
    CountWrite(block_index, bytes);
    return;
  }
  // Writing beyond the current final partial block would leave a hole of
  // undefined record data; the streaming writers never do this.
  const util::Status status = RawWriteAt(block_index, data, bytes);
  if (!status.ok()) {
    MarkError(status);
    return;
  }
  size_bytes_ = std::max(size_bytes_, offset + bytes);
  CountWrite(block_index, bytes);
}

}  // namespace extscc::io
