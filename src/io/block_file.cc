#include "io/block_file.h"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>

#include "io/io_context.h"
#include "util/logging.h"

namespace extscc::io {

BlockFile::BlockFile(IoContext* context, const std::string& path,
                     OpenMode mode)
    : context_(context), path_(path), block_size_(context->block_size()) {
  int flags = 0;
  switch (mode) {
    case OpenMode::kRead:
      flags = O_RDONLY;
      break;
    case OpenMode::kTruncateWrite:
      flags = O_RDWR | O_CREAT | O_TRUNC;
      break;
    case OpenMode::kReadWrite:
      flags = O_RDWR | O_CREAT;
      break;
  }
  fd_ = ::open(path.c_str(), flags, 0644);
  CHECK_GE(fd_, 0) << "open(" << path << ") failed: " << std::strerror(errno);
  const off_t end = ::lseek(fd_, 0, SEEK_END);
  CHECK_GE(end, 0) << "lseek(" << path << ") failed";
  size_bytes_ = static_cast<std::uint64_t>(end);
  if (mode == OpenMode::kTruncateWrite) {
    context_->stats().files_created += 1;
  }
}

BlockFile::~BlockFile() {
  if (fd_ >= 0) ::close(fd_);
}

std::uint64_t BlockFile::num_blocks() const {
  return (size_bytes_ + block_size_ - 1) / block_size_;
}

std::size_t BlockFile::ReadBlock(std::uint64_t block_index, void* buf) {
  const std::uint64_t offset = block_index * block_size_;
  if (offset >= size_bytes_) return 0;
  const std::size_t want = static_cast<std::size_t>(
      std::min<std::uint64_t>(block_size_, size_bytes_ - offset));
  std::size_t done = 0;
  while (done < want) {
    const ssize_t n = ::pread(fd_, static_cast<char*>(buf) + done,
                              want - done, static_cast<off_t>(offset + done));
    CHECK_GT(n, 0) << "pread(" << path_ << ") failed: "
                   << std::strerror(errno);
    done += static_cast<std::size_t>(n);
  }
  IoStats& stats = context_->stats();
  if (static_cast<std::int64_t>(block_index) == last_read_block_ + 1) {
    stats.sequential_reads += 1;
  } else {
    stats.random_reads += 1;
  }
  last_read_block_ = static_cast<std::int64_t>(block_index);
  stats.bytes_read += want;
  context_->OnIo();
  return want;
}

void BlockFile::WriteBlock(std::uint64_t block_index, const void* data,
                           std::size_t bytes) {
  CHECK_LE(bytes, block_size_);
  const std::uint64_t offset = block_index * block_size_;
  // Writing beyond the current final partial block would leave a hole of
  // undefined record data; the streaming writers never do this.
  std::size_t done = 0;
  while (done < bytes) {
    const ssize_t n =
        ::pwrite(fd_, static_cast<const char*>(data) + done, bytes - done,
                 static_cast<off_t>(offset + done));
    CHECK_GT(n, 0) << "pwrite(" << path_ << ") failed: "
                   << std::strerror(errno);
    done += static_cast<std::size_t>(n);
  }
  size_bytes_ = std::max(size_bytes_, offset + bytes);
  IoStats& stats = context_->stats();
  if (static_cast<std::int64_t>(block_index) == last_write_block_ + 1 ||
      static_cast<std::int64_t>(block_index) == last_write_block_) {
    // Re-writing the same (tail) block counts as sequential append traffic.
    stats.sequential_writes += 1;
  } else {
    stats.random_writes += 1;
  }
  last_write_block_ = static_cast<std::int64_t>(block_index);
  stats.bytes_written += bytes;
  context_->OnIo();
}

}  // namespace extscc::io
