#include "io/fault_injection.h"

#include <cerrno>
#include <cstddef>
#include <utility>

namespace extscc::io {

namespace {

// SplitMix64 finalizer: a cheap, well-mixed 64-bit hash. The fault
// schedule only needs decorrelated uniform draws per (seed, op, lane),
// not cryptographic strength.
std::uint64_t Mix64(std::uint64_t x) {
  x += 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}

// Distinct decision lanes per op, so e.g. the transient-fault draw and
// the corruption draw of one op are independent.
enum FaultLane : std::uint64_t {
  kLaneTransient = 1,
  kLaneShort = 2,
  kLaneCorrupt = 3,
  kLaneSite = 4,  // which byte/bit of the payload gets hit
};

// Uniform double in [0, 1) from (seed, op ordinal, lane).
double UnitDraw(std::uint64_t seed, std::uint64_t op, std::uint64_t lane) {
  const std::uint64_t h = Mix64(seed ^ Mix64(op ^ Mix64(lane)));
  return static_cast<double>(h >> 11) * 0x1.0p-53;
}

std::uint64_t SiteDraw(std::uint64_t seed, std::uint64_t op) {
  return Mix64(seed ^ Mix64(op ^ Mix64(kLaneSite)));
}

}  // namespace

// In the enclosing namespace (not anonymous) so the friend declaration
// in fault_injection.h grants it access to the device's schedule state.
class FaultInjectingFile : public StorageFile {
 public:
  FaultInjectingFile(FaultInjectingDevice* device,
                     std::unique_ptr<StorageFile> inner, std::string path)
      : device_(device), inner_(std::move(inner)), path_(std::move(path)) {}

  util::Status ReadAt(std::uint64_t offset, void* buf,
                      std::size_t bytes) override {
    const FaultSpec& spec = device_->spec_;
    const std::uint64_t op = ClaimOp();
    if (spec.fail_reads_after > 0 && op >= spec.fail_reads_after) {
      return util::Status::IoError(
          "injected persistent read failure on " + path_ + " (op " +
              std::to_string(op) + ")",
          EIO);
    }
    if (UnitDraw(spec.seed, op, kLaneTransient) < spec.read_fault_rate) {
      return util::Status::IoError(
          "injected transient read fault on " + path_ + " (op " +
              std::to_string(op) + ")",
          EIO);
    }
    if (bytes > 1 &&
        UnitDraw(spec.seed, op, kLaneShort) < spec.short_rate) {
      // Torn read: deliver a prefix, then fail. The buffer prefix is
      // real data — a caller that ignored the status and trusted the
      // buffer would be subtly wrong, which is exactly the bug class
      // this lane exists to catch.
      const std::size_t part = 1 + SiteDraw(spec.seed, op) % (bytes - 1);
      (void)inner_->ReadAt(offset, buf, part);
      return util::Status::IoError(
          "injected short read on " + path_ + " (" + std::to_string(part) +
              "/" + std::to_string(bytes) + " bytes, op " +
              std::to_string(op) + ")",
          EIO);
    }
    RETURN_IF_ERROR(inner_->ReadAt(offset, buf, bytes));
    if (bytes > 0 &&
        UnitDraw(spec.seed, op, kLaneCorrupt) < spec.corrupt_rate) {
      // Silent corruption: flip one bit of the payload and report
      // success. Only checksums can catch this.
      const std::uint64_t site = SiteDraw(spec.seed, op) % (bytes * 8);
      static_cast<unsigned char*>(buf)[site / 8] ^=
          static_cast<unsigned char>(1u << (site % 8));
    }
    return util::Status::Ok();
  }

  util::Status WriteAt(std::uint64_t offset, const void* data,
                       std::size_t bytes) override {
    const FaultSpec& spec = device_->spec_;
    const std::uint64_t op = ClaimOp();
    if (spec.fail_writes_after > 0 && op >= spec.fail_writes_after) {
      return util::Status::IoError(
          "injected persistent write failure on " + path_ + " (op " +
              std::to_string(op) + ")",
          ENOSPC);
    }
    if (UnitDraw(spec.seed, op, kLaneTransient) < spec.write_fault_rate) {
      return util::Status::IoError(
          "injected transient write fault on " + path_ + " (op " +
              std::to_string(op) + ")",
          EIO);
    }
    if (bytes > 1 &&
        UnitDraw(spec.seed, op, kLaneShort) < spec.short_rate) {
      const std::size_t part = 1 + SiteDraw(spec.seed, op) % (bytes - 1);
      (void)inner_->WriteAt(offset, data, part);
      return util::Status::IoError(
          "injected short write on " + path_ + " (" + std::to_string(part) +
              "/" + std::to_string(bytes) + " bytes, op " +
              std::to_string(op) + ")",
          EIO);
    }
    return inner_->WriteAt(offset, data, bytes);
  }

  std::uint64_t size_bytes() const override { return inner_->size_bytes(); }

  util::Status Sync() override {
    // Never faults: durability failures are modeled by CrashPoint
    // (process death), not by this device's transient-error schedule —
    // faulting fsync here would test the injector, not recovery.
    return inner_->Sync();
  }

 private:
  std::uint64_t ClaimOp() {
    return device_->next_op_.fetch_add(1, std::memory_order_relaxed);
  }

  FaultInjectingDevice* device_;
  std::unique_ptr<StorageFile> inner_;
  std::string path_;
};

FaultInjectingDevice::FaultInjectingDevice(
    std::string name, std::unique_ptr<StorageDevice> inner, FaultSpec spec)
    : StorageDevice(std::move(name)),
      inner_(std::move(inner)),
      spec_(std::move(spec)) {}

FaultInjectingDevice::~FaultInjectingDevice() = default;

util::Status FaultInjectingDevice::Open(const std::string& path,
                                        OpenMode mode,
                                        std::unique_ptr<StorageFile>* out) {
  std::unique_ptr<StorageFile> inner_file;
  RETURN_IF_ERROR(inner_->Open(path, mode, &inner_file));
  // The tag filter decides at open time: untagged paths get the inner
  // file verbatim (zero overhead, no op ordinals consumed).
  if (!spec_.path_tag.empty() &&
      path.find(spec_.path_tag) == std::string::npos) {
    *out = std::move(inner_file);
    return util::Status::Ok();
  }
  *out = std::make_unique<FaultInjectingFile>(this, std::move(inner_file),
                                              path);
  return util::Status::Ok();
}

util::Status FaultInjectingDevice::Delete(const std::string& path) {
  return inner_->Delete(path);
}

util::Status FaultInjectingDevice::Rename(const std::string& from,
                                          const std::string& to) {
  return inner_->Rename(from, to);
}

util::Status FaultInjectingDevice::SyncDir(const std::string& dir) {
  return inner_->SyncDir(dir);
}

std::string FaultInjectingDevice::CreateSessionRoot() {
  return inner_->CreateSessionRoot();
}

void FaultInjectingDevice::RemoveTree(const std::string& root) {
  inner_->RemoveTree(root);
}

}  // namespace extscc::io
