// Seeded deterministic fault injection at the StorageDevice boundary.
// FaultInjectingDevice wraps a real device (posix or mem) and makes its
// files fail according to a FaultSpec: transient EIO on reads/writes,
// torn (short) transfers, silent bit-flip corruption of read payloads,
// and persistent failures from a given op ordinal on (ENOSPC for
// writes — the disk filled up; EIO for reads — the disk died).
//
// Every decision is a pure function of (spec.seed, device op ordinal),
// drawn from a SplitMix64-style hash: a given spec replays the same
// fault schedule on every run, so the chaos tests can assert exact
// outcomes (byte-identical output after retries, a specific device
// quarantined) instead of merely "it didn't crash". A transient fault
// consumes the op ordinal it fired on; the retry claims a fresh
// ordinal and — at any rate < 1 — almost surely succeeds, which is
// what makes bounded retry a sound recovery policy against this model.
//
// The wrapper is storage-transparent: fault-free ops delegate straight
// to the inner device, and CreateSessionRoot/RemoveTree/Delete never
// fault (failing cleanup would only mask the interesting failures).
#ifndef EXTSCC_IO_FAULT_INJECTION_H_
#define EXTSCC_IO_FAULT_INJECTION_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>

#include "io/storage.h"
#include "util/status.h"

namespace extscc::io {

class FaultInjectingDevice : public StorageDevice {
 public:
  FaultInjectingDevice(std::string name, std::unique_ptr<StorageDevice> inner,
                       FaultSpec spec);
  ~FaultInjectingDevice() override;

  util::Status Open(const std::string& path, OpenMode mode,
                    std::unique_ptr<StorageFile>* out) override;
  util::Status Delete(const std::string& path) override;
  // Rename never faults (metadata, like Delete): the publish step's
  // atomicity is the inner device's contract, and faulting it would
  // only test the fault injector, not the recovery machinery.
  util::Status Rename(const std::string& from, const std::string& to) override;
  // SyncDir delegates unfaulted for the same reason as Rename.
  util::Status SyncDir(const std::string& dir) override;
  std::string CreateSessionRoot() override;
  void RemoveTree(const std::string& root) override;

  const FaultSpec& spec() const { return spec_; }
  // Device op ordinals handed out so far (each faultable ReadAt/WriteAt
  // claims one). Exposed for tests that pin schedules to ordinals.
  std::uint64_t ops_issued() const {
    return next_op_.load(std::memory_order_relaxed);
  }

 private:
  friend class FaultInjectingFile;

  std::unique_ptr<StorageDevice> inner_;
  const FaultSpec spec_;
  std::atomic<std::uint64_t> next_op_{0};
};

}  // namespace extscc::io

#endif  // EXTSCC_IO_FAULT_INJECTION_H_
