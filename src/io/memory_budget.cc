#include "io/memory_budget.h"

#include <algorithm>

#include "util/logging.h"

namespace extscc::io {

MemoryBudget::MemoryBudget(std::uint64_t total_bytes)
    : total_bytes_(total_bytes) {
  CHECK_GT(total_bytes, 0u);
}

std::uint64_t MemoryBudget::used_bytes() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return used_bytes_;
}

std::uint64_t MemoryBudget::available_bytes() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return total_bytes_ - used_bytes_;
}

void MemoryBudget::Reserve(std::uint64_t bytes) {
  std::lock_guard<std::mutex> lock(mutex_);
  CHECK_LE(used_bytes_ + bytes, total_bytes_)
      << "memory budget oversubscribed: used=" << used_bytes_
      << " reserve=" << bytes << " total=" << total_bytes_;
  used_bytes_ += bytes;
}

void MemoryBudget::Release(std::uint64_t bytes) {
  std::lock_guard<std::mutex> lock(mutex_);
  CHECK_LE(bytes, used_bytes_);
  used_bytes_ -= bytes;
}

std::uint64_t MemoryBudget::ReserveUpTo(std::uint64_t bytes) {
  std::lock_guard<std::mutex> lock(mutex_);
  const std::uint64_t granted = std::min(bytes, total_bytes_ - used_bytes_);
  used_bytes_ += granted;
  return granted;
}

std::uint64_t MemoryBudget::MaxRecordsInMemory(std::size_t record_size) const {
  CHECK_GT(record_size, 0u);
  return std::max<std::uint64_t>(2, available_bytes() / record_size);
}

std::uint64_t MemoryBudget::MergeFanIn(std::size_t block_size) const {
  CHECK_GT(block_size, 0u);
  const std::uint64_t buffers = available_bytes() / block_size;
  // One block buffer per input run (PeekableReader decodes in place)
  // plus the output writer's block — fan-in f costs f + 1 blocks. At
  // least a binary merge must be possible (M >= 2B in the model, so
  // this is the floor).
  return std::max<std::uint64_t>(2, buffers > 1 ? buffers - 1 : 2);
}

}  // namespace extscc::io
