#include "io/io_stats.h"

#include <sstream>

namespace extscc::io {

IoStats& IoStats::operator+=(const IoStats& other) {
  sequential_reads += other.sequential_reads;
  random_reads += other.random_reads;
  sequential_writes += other.sequential_writes;
  random_writes += other.random_writes;
  bytes_read += other.bytes_read;
  bytes_written += other.bytes_written;
  files_created += other.files_created;
  read_retries += other.read_retries;
  write_retries += other.write_retries;
  sync_calls += other.sync_calls;
  checkpoint_writes += other.checkpoint_writes;
  checkpoint_reads += other.checkpoint_reads;
  return *this;
}

IoStats IoStats::operator-(const IoStats& other) const {
  IoStats out;
  out.sequential_reads = sequential_reads - other.sequential_reads;
  out.random_reads = random_reads - other.random_reads;
  out.sequential_writes = sequential_writes - other.sequential_writes;
  out.random_writes = random_writes - other.random_writes;
  out.bytes_read = bytes_read - other.bytes_read;
  out.bytes_written = bytes_written - other.bytes_written;
  out.files_created = files_created - other.files_created;
  out.read_retries = read_retries - other.read_retries;
  out.write_retries = write_retries - other.write_retries;
  out.sync_calls = sync_calls - other.sync_calls;
  out.checkpoint_writes = checkpoint_writes - other.checkpoint_writes;
  out.checkpoint_reads = checkpoint_reads - other.checkpoint_reads;
  return out;
}

std::string IoStats::ToString() const {
  std::ostringstream out;
  out << "ios=" << total_ios() << " (reads=" << total_reads() << " writes="
      << total_writes() << " random=" << random_ios() << ") bytes_read="
      << bytes_read << " bytes_written=" << bytes_written;
  if (read_retries + write_retries > 0) {
    out << " retries=" << read_retries + write_retries << " (read="
        << read_retries << " write=" << write_retries << ")";
  }
  if (sync_calls > 0) {
    out << " syncs=" << sync_calls;
  }
  if (checkpoint_writes + checkpoint_reads > 0) {
    out << " ckpt_ios=" << checkpoint_writes + checkpoint_reads
        << " (write=" << checkpoint_writes << " read=" << checkpoint_reads
        << ")";
  }
  return out.str();
}

}  // namespace extscc::io
