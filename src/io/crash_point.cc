#include "io/crash_point.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>

namespace extscc::io {

namespace {

// The armed spec. Plain globals: ArmCrashPoint is called once from
// main() before any worker thread exists, and the hit path reads the
// ordinal through an atomic so a disarmed process never takes a lock.
std::atomic<std::uint64_t> g_armed_ordinal{0};
std::string* g_armed_tag = new std::string();

std::atomic<std::uint64_t> g_hits{0};
std::atomic<std::uint64_t> g_matched{0};

}  // namespace

std::string ParseCrashSpec(const std::string& text, CrashSpec* out) {
  CrashSpec spec;
  std::string number = text;
  const std::size_t colon = text.rfind(':');
  if (colon != std::string::npos) {
    spec.tag = text.substr(0, colon);
    number = text.substr(colon + 1);
    if (spec.tag.empty()) {
      return "bad crash spec '" + text + "': empty tag before ':'";
    }
  }
  if (number.empty()) {
    return "bad crash spec '" + text + "': missing ordinal";
  }
  std::uint64_t value = 0;
  for (char c : number) {
    if (c < '0' || c > '9') {
      return "bad crash spec '" + text + "': ordinal is not a number";
    }
    value = value * 10 + static_cast<std::uint64_t>(c - '0');
  }
  if (value == 0) {
    return "bad crash spec '" + text + "': ordinal must be >= 1";
  }
  spec.ordinal = value;
  *out = spec;
  return "";
}

void ArmCrashPoint(const CrashSpec& spec) {
  *g_armed_tag = spec.tag;
  g_matched.store(0, std::memory_order_relaxed);
  g_armed_ordinal.store(spec.ordinal, std::memory_order_release);
}

void CrashPointHit(const char* tag) {
  g_hits.fetch_add(1, std::memory_order_relaxed);
  const std::uint64_t armed = g_armed_ordinal.load(std::memory_order_acquire);
  if (armed == 0) return;
  if (!g_armed_tag->empty() &&
      std::string(tag).find(*g_armed_tag) == std::string::npos) {
    return;
  }
  if (g_matched.fetch_add(1, std::memory_order_relaxed) + 1 != armed) return;
  std::fprintf(stderr, "crash injected at %s (matched hit %llu)\n", tag,
               static_cast<unsigned long long>(armed));
  std::fflush(stderr);
  // _Exit: no destructors, no atexit hooks, no buffered-IO flush — the
  // closest a test can get to SIGKILL while keeping a recognizable
  // exit code.
  std::_Exit(kCrashExitCode);
}

std::uint64_t CrashPointsPassed() {
  return g_hits.load(std::memory_order_relaxed);
}

}  // namespace extscc::io
