// Simulated main-memory budget M (the paper's problem statement:
// 2·B <= M < ||G||). The algorithms size every in-memory structure from
// this budget: external-sort run length, merge fan-in, the semi-external
// stop condition c·|V| <= M, EM-SCC partition size and the Type-2
// dictionary capacity s. Reservations are tracked so tests can assert no
// component oversubscribes M.
//
// Thread safety: all accounting is guarded by an internal mutex, so
// concurrent pipelines (sort workers, prefetchers, serve-side query
// readers) may reserve against one budget. ReserveUpTo is the atomic
// form of the "clamp to what is left, then reserve" pattern — callers
// that size a buffer from available_bytes() must use it, or two threads
// can both observe the same headroom and jointly oversubscribe.
#ifndef EXTSCC_IO_MEMORY_BUDGET_H_
#define EXTSCC_IO_MEMORY_BUDGET_H_

#include <cstddef>
#include <cstdint>
#include <mutex>

namespace extscc::io {

class MemoryBudget {
 public:
  // `total_bytes` is M. CHECK-fails unless M >= 2 * block_size is later
  // validated by the IoContext that owns it.
  explicit MemoryBudget(std::uint64_t total_bytes);

  std::uint64_t total_bytes() const { return total_bytes_; }
  std::uint64_t used_bytes() const;
  std::uint64_t available_bytes() const;

  // Accounting for long-lived in-memory structures. Reserve CHECK-fails on
  // oversubscription: the library treats exceeding M as a logic error, not
  // a runtime condition.
  void Reserve(std::uint64_t bytes);
  void Release(std::uint64_t bytes);

  // Reserves min(bytes, available) atomically and returns the granted
  // amount (possibly 0). Never CHECK-fails.
  std::uint64_t ReserveUpTo(std::uint64_t bytes);

  // Number of records of `record_size` bytes a sort run may hold,
  // using the currently-available budget. Always at least 2 so degenerate
  // budgets still make progress (mirrors the M >= 2B assumption).
  std::uint64_t MaxRecordsInMemory(std::size_t record_size) const;

  // Merge fan-in: one input block buffer per run plus one output buffer.
  std::uint64_t MergeFanIn(std::size_t block_size) const;

 private:
  const std::uint64_t total_bytes_;
  mutable std::mutex mutex_;
  std::uint64_t used_bytes_ = 0;  // guarded by mutex_
};

// RAII reservation. With `clamp`, reserves up to `bytes` (atomically
// clamped to the available budget) instead of CHECK-failing; bytes()
// reports what was actually granted.
class ScopedReservation {
 public:
  ScopedReservation(MemoryBudget* budget, std::uint64_t bytes,
                    bool clamp = false)
      : budget_(budget) {
    bytes_ = clamp ? budget_->ReserveUpTo(bytes)
                   : (budget_->Reserve(bytes), bytes);
  }
  ~ScopedReservation() { budget_->Release(bytes_); }

  std::uint64_t bytes() const { return bytes_; }

  ScopedReservation(const ScopedReservation&) = delete;
  ScopedReservation& operator=(const ScopedReservation&) = delete;

 private:
  MemoryBudget* budget_;
  std::uint64_t bytes_;
};

}  // namespace extscc::io

#endif  // EXTSCC_IO_MEMORY_BUDGET_H_
