// Scratch-file manager over a set of StorageDevices. Every intermediate
// of the external algorithms (edge lists E_in/E_out/E_del/E_pre, node
// lists V_i, SCC label files, sort runs) is a named scratch file inside
// one session root per device; session roots are removed when the
// manager is destroyed unless keep_files is set.
//
// Device assignment is the placement-aware half of the storage API:
// NewPath stripes files round-robin by sequence number (byte-identical
// to the pre-device engine), while NewFile(tag, Placement) lets the
// sorter tag a file with its merge group so the kSpreadGroup policy can
// place a group's runs on distinct devices by construction — a merge
// pass then pulls its fan-in from independent spindles.
//
// NewPath/NewFile/Remove are thread-safe: with
// IoContextOptions::sort_threads the run-formation spill worker names
// run files concurrently with the producing thread.
#ifndef EXTSCC_IO_TEMP_FILE_MANAGER_H_
#define EXTSCC_IO_TEMP_FILE_MANAGER_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "io/storage.h"

namespace extscc::io {

// Typed scratch handle: the path plus the device it was placed on.
struct ScratchFile {
  std::string path;
  StorageDevice* device = nullptr;
};

class TempFileManager {
 public:
  // Devices ctor: takes ownership of `devices` (at least one) and
  // creates one fresh session root on each. `placement` selects the
  // device-assignment policy for NewFile.
  explicit TempFileManager(
      std::vector<std::unique_ptr<StorageDevice>> devices,
      PlacementPolicy placement = PlacementPolicy::kRoundRobin);

  // Posix convenience ctor (the historical interface): one PosixDevice
  // per entry of `scratch_parents`, or a single one under `parent_dir`
  // (default: $TMPDIR or /tmp) when the list is empty. CHECK-fails if
  // any session directory cannot be created.
  explicit TempFileManager(const std::string& parent_dir = "",
                           const std::vector<std::string>& scratch_parents =
                               {});
  ~TempFileManager();

  TempFileManager(const TempFileManager&) = delete;
  TempFileManager& operator=(const TempFileManager&) = delete;

  // Returns a unique path "<root>/<seq>_<tag>", striping round-robin
  // across the devices. The file is not created.
  std::string NewPath(const std::string& tag);

  // Placement-aware variant: returns the path plus the chosen device.
  // Under kRoundRobin (the default policy) the device choice and the
  // path are byte-identical to NewPath; under kSpreadGroup a grouped
  // placement lands on device (group + member) % num_devices, so the
  // members of one merge group occupy distinct devices whenever the
  // device count covers the fan-in. Under kStriped the file is a
  // virtual path on the manager's StripedDevice whose blocks
  // round-robin across every available device (ConfigureStriping must
  // have run first); with fewer than two available devices the
  // placement falls back to round-robin on what is left, with a
  // once-per-manager stderr note — a 1-wide "stripe" is never built
  // silently.
  ScratchFile NewFile(const std::string& tag, const Placement& placement);

  // Hands the StripedDevice its physical stride geometry (block size
  // plus whether scratch blocks carry CRC32 trailers). IoContext calls
  // this right after construction; standalone managers using kStriped
  // must call it before the first NewFile. A no-op under other
  // policies.
  void ConfigureStriping(std::size_t block_size, bool checksum_blocks);

  // Fresh merge-group id for Placement::InGroup (one per run-forming
  // sort or merge pass).
  std::uint64_t NextGroupId() {
    return next_group_.fetch_add(1, std::memory_order_relaxed);
  }

  // True exactly once per manager: the merge path's ticket for the
  // spread-below-fan-in warning (WarnSpreadBelowFanIn), so each
  // machine configuration reports its own numbers without repeating
  // the message for every merge group of a multi-level solve.
  bool ClaimSpreadWarning() {
    return !spread_warned_.exchange(true, std::memory_order_relaxed);
  }

  // Deletes the file if it exists (ignores missing files), on whichever
  // device owns it. A device that fails to delete an existing file is
  // warned about but not fatal: scratch cleanup must never mask the
  // error that triggered it.
  void Remove(const std::string& path);

  // Marks a device as failed: NewFile stops placing scratch files on it
  // (existing files stay readable — a write-dead disk can still serve
  // its surviving runs during failover). Quarantining every device is
  // legal; placement then falls back to the full set, and the next I/O
  // error propagates instead of failing placement itself. Quarantining
  // the manager's StripedDevice redirects to the member device(s) whose
  // part I/O actually failed (StripedDevice::TakeFailedDevices), so a
  // striped file whose member dies costs that one member — new striped
  // placements then exclude it.
  void Quarantine(StorageDevice* device);
  bool IsQuarantined(StorageDevice* device) const;

  // Devices currently accepting new placements (total minus
  // quarantined, or total when everything is quarantined — see
  // Quarantine).
  std::size_t num_available_devices() const;

  // Stripe width a new striped placement would actually get right now:
  // the available device count under kStriped with >= 2 available,
  // else 0 (round-robin fallback, or a non-striped policy). The tools'
  // one-line placement report reads this instead of re-deriving the
  // NewFile fallback condition.
  std::size_t effective_stripe_width() const;

  // Emits the striped-fallback stderr note now (consuming the
  // once-per-manager ticket) when kStriped placement cannot stripe; a
  // no-op otherwise. The serve/update tools call this eagerly so the
  // note appears at startup instead of whenever the first scratch file
  // happens to be placed.
  void NoteStripedFallback();

  // The device whose session root contains `path`, or nullptr when the
  // path is not scratch (a user-supplied file).
  StorageDevice* DeviceForPath(const std::string& path) const;

  // The scratch devices, in configuration order.
  std::vector<StorageDevice*> devices() const;

  PlacementPolicy placement() const { return placement_; }

  // First (primary) session root.
  const std::string& dir() const { return roots_.front().root; }
  // All session roots, one per device.
  std::vector<std::string> dirs() const;

  void set_keep_files(bool keep) { keep_files_ = keep; }

 private:
  struct Root {
    std::unique_ptr<StorageDevice> device;
    std::string root;
    // Guarded by mu_ for writes; placement reads it under mu_ too.
    bool quarantined = false;
    // Slot in the process-global live-root registry (signal cleanup),
    // or -1 for roots that are not real filesystem directories.
    int live_slot = -1;
  };

  // Indices of roots accepting placements: all non-quarantined roots,
  // or every root when all are quarantined. Caller holds mu_.
  std::vector<std::size_t> AvailableRootsLocked() const;

  // Immutable after construction except the quarantined flags
  // (DeviceForPath reads paths/devices lock-free).
  std::vector<Root> roots_;
  PlacementPolicy placement_ = PlacementPolicy::kRoundRobin;
  // The composite striping device (kStriped with >= 2 devices only).
  // Not a Root: it is not listed in devices()/DeviceStats rows and its
  // own stats stay zero — block I/Os are charged to the member devices.
  std::unique_ptr<StripedDevice> striped_;
  std::string striped_root_;
  mutable std::mutex mu_;
  std::uint64_t next_id_ = 0;
  std::atomic<std::uint64_t> next_group_{0};
  std::atomic<bool> spread_warned_{false};
  std::atomic<bool> striped_fallback_noted_{false};
  bool keep_files_ = false;
};

// Installs SIGINT/SIGTERM handlers that best-effort remove every live
// on-disk scratch session root (registered by TempFileManager
// construction, released on destruction), then terminate with the
// conventional 128+signo exit status. For interactive tools
// (extscc_tool): a ^C mid-solve should not leak gigabytes of scratch.
// Roots on non-filesystem devices (mem://) die with the process and are
// never registered. Idempotent; call once from main().
void InstallScratchSignalCleanup();

}  // namespace extscc::io

#endif  // EXTSCC_IO_TEMP_FILE_MANAGER_H_
