// Scratch-file manager. Every intermediate of the external algorithms
// (edge lists E_in/E_out/E_del/E_pre, node lists V_i, SCC label files,
// sort runs) is a named scratch file under one session directory — or,
// with multi-disk striping, one session directory per configured
// scratch parent, with new files assigned round-robin so merge passes
// pull runs from independent devices. Directories are removed when the
// manager is destroyed unless keep_files is set (useful when debugging
// a failing property test).
//
// NewPath/Remove are thread-safe: with IoContextOptions::sort_threads
// the run-formation spill worker names run files concurrently with the
// producing thread.
#ifndef EXTSCC_IO_TEMP_FILE_MANAGER_H_
#define EXTSCC_IO_TEMP_FILE_MANAGER_H_

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

namespace extscc::io {

class TempFileManager {
 public:
  // Creates one fresh session directory under each entry of
  // `scratch_parents`, or a single one under `parent_dir` (default:
  // $TMPDIR or /tmp) when the list is empty. CHECK-fails if any
  // directory cannot be created.
  explicit TempFileManager(const std::string& parent_dir = "",
                           const std::vector<std::string>& scratch_parents =
                               {});
  ~TempFileManager();

  TempFileManager(const TempFileManager&) = delete;
  TempFileManager& operator=(const TempFileManager&) = delete;

  // Returns a unique path "<dir>/<seq>_<tag>", striping round-robin
  // across the session directories. The file is not created.
  std::string NewPath(const std::string& tag);

  // Deletes the file if it exists (ignores missing files).
  void Remove(const std::string& path);

  // First (primary) session directory.
  const std::string& dir() const { return dirs_.front(); }
  // All session directories, one per scratch parent.
  const std::vector<std::string>& dirs() const { return dirs_; }

  void set_keep_files(bool keep) { keep_files_ = keep; }

 private:
  std::string CreateSessionDir(const std::string& parent);

  std::vector<std::string> dirs_;
  std::mutex mu_;
  std::uint64_t next_id_ = 0;
  bool keep_files_ = false;
};

}  // namespace extscc::io

#endif  // EXTSCC_IO_TEMP_FILE_MANAGER_H_
