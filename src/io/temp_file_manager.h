// Scratch-file manager. Every intermediate of the external algorithms
// (edge lists E_in/E_out/E_del/E_pre, node lists V_i, SCC label files,
// sort runs) is a named scratch file under one session directory, removed
// when the manager is destroyed unless keep_files is set (useful when
// debugging a failing property test).
#ifndef EXTSCC_IO_TEMP_FILE_MANAGER_H_
#define EXTSCC_IO_TEMP_FILE_MANAGER_H_

#include <cstdint>
#include <string>

namespace extscc::io {

class TempFileManager {
 public:
  // Creates a fresh directory under `parent_dir` (default: $TMPDIR or
  // /tmp). CHECK-fails if the directory cannot be created.
  explicit TempFileManager(const std::string& parent_dir = "");
  ~TempFileManager();

  TempFileManager(const TempFileManager&) = delete;
  TempFileManager& operator=(const TempFileManager&) = delete;

  // Returns a unique path "<dir>/<seq>_<tag>". The file is not created.
  std::string NewPath(const std::string& tag);

  // Deletes the file if it exists (ignores missing files).
  void Remove(const std::string& path);

  const std::string& dir() const { return dir_; }

  void set_keep_files(bool keep) { keep_files_ = keep; }

 private:
  std::string dir_;
  std::uint64_t next_id_ = 0;
  bool keep_files_ = false;
};

}  // namespace extscc::io

#endif  // EXTSCC_IO_TEMP_FILE_MANAGER_H_
