// Typed record streams over BlockFile. Records are fixed-size trivially
// copyable PODs (graph::Edge, DegreeEntry, SccEntry, ...). Streaming
// readers/writers buffer exactly one block per open stream — the
// accounting the external-memory analyses in the paper assume. The
// batch APIs (NextBatch/AppendBatch) move whole block-aligned spans per
// memcpy instead of one record at a time.
#ifndef EXTSCC_IO_RECORD_STREAM_H_
#define EXTSCC_IO_RECORD_STREAM_H_

#include <algorithm>
#include <cstring>
#include <memory>
#include <string>
#include <type_traits>
#include <vector>

#include "io/block_file.h"
#include "io/io_context.h"
#include "util/logging.h"

namespace extscc::io {

// Number of T records stored in the file at `path` (by its byte size).
// The file must exist; missing files CHECK-fail (scratch discipline).
template <typename T>
std::uint64_t NumRecordsInFile(IoContext* context, const std::string& path) {
  static_assert(std::is_trivially_copyable_v<T>);
  BlockFile file(context, path, OpenMode::kRead);
  CHECK_EQ(file.size_bytes() % sizeof(T), 0u)
      << path << " is not a whole number of records";
  return file.size_bytes() / sizeof(T);
}

// Sequential append-only writer.
template <typename T>
class RecordWriter {
 public:
  static_assert(std::is_trivially_copyable_v<T>,
                "on-disk records must be PODs");

  // `overlap_output` asks for double-buffered writes through the
  // context's ReadScheduler (the device write of block N overlaps
  // production of block N+1); a no-op at io_threads == 0 or when the
  // budget cannot cover the slot. The slot is claimed lazily at the
  // first flush — after the consuming stage's own reservations are in
  // place — so requesting overlap never changes the merge fan-in or
  // run geometry, only whether spare budget buys wall-clock overlap.
  // Only use from the algorithm thread (the slot is a MemoryBudget
  // reservation).
  RecordWriter(IoContext* context, const std::string& path,
               bool overlap_output = false)
      : file_(std::make_unique<BlockFile>(context, path,
                                          OpenMode::kTruncateWrite)),
        buffer_(file_->block_size()),
        overlap_output_(overlap_output) {}

  ~RecordWriter() {
    if (file_ != nullptr) Finish();
  }

  RecordWriter(const RecordWriter&) = delete;
  RecordWriter& operator=(const RecordWriter&) = delete;

  void Append(const T& record) { AppendBatch(&record, 1); }

  // Appends `n` contiguous records with block-sized memcpy spans instead
  // of one copy per record — the fast path for spilling sort runs and
  // bulk stream rewrites. Records pack contiguously and may straddle
  // block boundaries, so the file is exactly count() * sizeof(T) bytes.
  void AppendBatch(const T* records, std::size_t n) {
    DCHECK(file_ != nullptr) << "Append after Finish";
    const char* src = reinterpret_cast<const char*>(records);
    std::size_t remaining = n * sizeof(T);
    while (remaining > 0) {
      const std::size_t chunk =
          std::min(buffer_.size() - fill_, remaining);
      std::memcpy(buffer_.data() + fill_, src, chunk);
      fill_ += chunk;
      src += chunk;
      remaining -= chunk;
      if (fill_ == buffer_.size()) Flush();
    }
    count_ += n;
  }

  // Flushes the tail block and closes the file (draining any overlapped
  // write), capturing the file's final status. Idempotent via destructor.
  void Finish() {
    if (file_ == nullptr) return;
    if (fill_ > 0) Flush();
    const util::Status closed = file_->Close();
    if (status_.ok()) status_ = closed;
    file_.reset();
  }

  // First write error this stream hit (sticky; also latched on the
  // context by BlockFile). Callers that care check it after Finish();
  // an errored writer silently drops further appends rather than
  // crashing mid-pipeline.
  util::Status status() const {
    if (!status_.ok()) return status_;
    return file_ != nullptr ? file_->status() : util::Status::Ok();
  }

  std::uint64_t count() const { return count_; }

 private:
  void Flush() {
    if (overlap_output_) {
      overlap_output_ = false;
      file_->EnableOverlappedWrites();
    }
    file_->WriteBlock(next_block_++, buffer_.data(), fill_);
    fill_ = 0;
  }

  std::unique_ptr<BlockFile> file_;
  std::vector<char> buffer_;
  std::size_t fill_ = 0;
  std::uint64_t next_block_ = 0;
  std::uint64_t count_ = 0;
  bool overlap_output_ = false;
  util::Status status_;
};

// Sequential reader.
template <typename T>
class RecordReader {
 public:
  static_assert(std::is_trivially_copyable_v<T>);

  RecordReader(IoContext* context, const std::string& path)
      : file_(std::make_unique<BlockFile>(context, path, OpenMode::kRead)),
        buffer_(file_->block_size()) {
    if (file_->size_bytes() % sizeof(T) != 0) {
      // A mid-record size means a torn final write (or the wrong file):
      // surface kCorruption and read nothing rather than hand the
      // algorithm a partial record. (An already-errored open reports
      // its own status; its size is 0 and passes this check.)
      status_ = util::Status::Corruption(
          path + " is not a whole number of records");
      return;
    }
    // Sequential scans are exactly what the read-ahead thread hides
    // latency for; a no-op unless the IoContext enables prefetch.
    file_->StartSequentialPrefetch();
  }

  RecordReader(const RecordReader&) = delete;
  RecordReader& operator=(const RecordReader&) = delete;

  // Reads the next record into *out; returns false at end of stream.
  // Records may straddle block boundaries (see RecordWriter::Append).
  bool Next(T* out) { return NextBatch(out, 1) == 1; }

  // Reads up to `max_records` records into `out` with block-sized memcpy
  // spans instead of one copy per record. Returns the number of records
  // read (< max_records only at end of stream).
  std::size_t NextBatch(T* out, std::size_t max_records) {
    if (!status_.ok()) return 0;  // corrupt-size stream reads nothing
    char* dst = reinterpret_cast<char*>(out);
    std::size_t remaining = max_records * sizeof(T);
    while (remaining > 0) {
      if (pos_ == valid_) {
        valid_ = file_->ReadBlock(next_block_++, buffer_.data());
        pos_ = 0;
        if (valid_ == 0) break;  // end of stream, or a parked error
      }
      const std::size_t chunk = std::min(valid_ - pos_, remaining);
      std::memcpy(dst, buffer_.data() + pos_, chunk);
      pos_ += chunk;
      dst += chunk;
      remaining -= chunk;
    }
    const std::size_t bytes = max_records * sizeof(T) - remaining;
    // A healthy stream can only end on a record boundary (the ctor
    // checked the size); a stream cut short by an I/O error may stop
    // mid-record — the floor drops the torn tail and status() tells
    // the caller the stream is not to be trusted.
    DCHECK(bytes % sizeof(T) == 0 || !status().ok())
        << "file ends mid-record despite the size check";
    return bytes / sizeof(T);
  }

  // First error on this stream: a mid-record file size (kCorruption), or
  // the underlying file's sticky status (open failure, exhausted
  // retries, checksum mismatch). An errored stream reports end-of-stream
  // from NextBatch; callers distinguish true EOF by checking here.
  util::Status status() const {
    return !status_.ok() ? status_ : file_->status();
  }

  std::uint64_t num_records() const { return file_->size_bytes() / sizeof(T); }

 private:
  std::unique_ptr<BlockFile> file_;
  std::vector<char> buffer_;
  std::size_t pos_ = 0;
  std::size_t valid_ = 0;
  std::uint64_t next_block_ = 0;
  util::Status status_;
};

// Record lookahead over one raw block buffer — the merge joins in
// Get-V / Get-E / Expansion and the sorter's loser tree are written
// against Peek()/Pop()/AdvanceInto(). The per-stream footprint is exactly
// one block (plus the current record): the hot path decodes the next
// record straight out of the block buffer with a single bounds check
// and a fixed-size memcpy, and only block refills and boundary-
// straddling records take the slow path. This keeps the merge fan-in
// accounting at ~one block per open run, as the external-memory
// analyses assume.
template <typename T>
class PeekableReader {
 public:
  static_assert(std::is_trivially_copyable_v<T>);

  PeekableReader(IoContext* context, const std::string& path)
      : file_(std::make_unique<BlockFile>(context, path, OpenMode::kRead)),
        raw_(file_->block_size()) {
    if (file_->size_bytes() % sizeof(T) != 0) {
      // Same contract as RecordReader: a torn file yields kCorruption
      // and an empty stream, never a partial record.
      status_ = util::Status::Corruption(
          path + " is not a whole number of records");
      return;
    }
    // Sequential scans are exactly what the read-ahead thread hides
    // latency for; a no-op unless the IoContext enables prefetch.
    file_->StartSequentialPrefetch();
    has_value_ = DecodeSlow();
  }

  bool has_value() const { return has_value_; }
  const T& Peek() const {
    DCHECK(has_value_);
    return cur_;
  }
  T Pop() {
    DCHECK(has_value_);
    T out = cur_;
    AdvanceInternal();
    return out;
  }

  // Drops the current record and decodes the next one straight into
  // *out; returns false at end of stream. The streaming fast path for
  // the sorter's loser tree: one bounds check and one fixed-size memcpy
  // from the block buffer to the caller's slot, with no intermediate
  // copy. Takes over the stream — Peek() is not refreshed by this call.
  bool AdvanceInto(T* out) {
    DCHECK(has_value_);
    if (pos_ + sizeof(T) <= valid_) {
      std::memcpy(out, raw_.data() + pos_, sizeof(T));
      pos_ += sizeof(T);
      return true;
    }
    has_value_ = DecodeSlow();
    if (!has_value_) return false;
    *out = cur_;
    return true;
  }

  std::uint64_t num_records() const { return file_->size_bytes() / sizeof(T); }

  // Mirrors RecordReader::status(): an errored stream looks exhausted
  // (has_value() false); this distinguishes exhaustion from failure.
  util::Status status() const {
    return !status_.ok() ? status_ : file_->status();
  }

 private:
  void AdvanceInternal() {
    // Hot path: the next record lies fully inside the current block.
    if (pos_ + sizeof(T) <= valid_) {
      std::memcpy(&cur_, raw_.data() + pos_, sizeof(T));
      pos_ += sizeof(T);
      return;
    }
    has_value_ = DecodeSlow();
  }

  // Assembles the next record across block refills (and block-boundary
  // straddles); returns false at end of stream.
  bool DecodeSlow() {
    char* dst = reinterpret_cast<char*>(&cur_);
    std::size_t remaining = sizeof(T);
    while (remaining > 0) {
      if (pos_ == valid_) {
        valid_ = file_->ReadBlock(next_block_++, raw_.data());
        pos_ = 0;
        if (valid_ == 0) {
          DCHECK(remaining == sizeof(T) || !status().ok())
              << "file ends mid-record despite the size check";
          return false;
        }
      }
      const std::size_t chunk = std::min(valid_ - pos_, remaining);
      std::memcpy(dst + (sizeof(T) - remaining), raw_.data() + pos_, chunk);
      pos_ += chunk;
      remaining -= chunk;
    }
    return true;
  }

  std::unique_ptr<BlockFile> file_;
  std::vector<char> raw_;
  std::size_t pos_ = 0;
  std::size_t valid_ = 0;
  std::uint64_t next_block_ = 0;
  T cur_{};
  bool has_value_ = false;
  util::Status status_;
};

// Random-access reader used only by the DFS baseline (and by nothing in
// Ext-SCC): Get(i) fetches the block containing record i, generating the
// random I/Os the paper charges external DFS for. A single-block cache
// keeps repeated hits to the same block free, which is exactly the
// M >= 2B machine: one cached block per open structure.
template <typename T>
class RandomRecordReader {
 public:
  static_assert(std::is_trivially_copyable_v<T>);

  RandomRecordReader(IoContext* context, const std::string& path)
      : file_(std::make_unique<BlockFile>(context, path, OpenMode::kRead)),
        buffer_(file_->block_size()) {
    CHECK_EQ(file_->size_bytes() % sizeof(T), 0u);
  }

  std::uint64_t num_records() const { return file_->size_bytes() / sizeof(T); }

  T Get(std::uint64_t index) {
    DCHECK_LT(index, num_records());
    // Records pack byte-contiguously, so a record may straddle two
    // blocks; fetch bytes through the one-block cache.
    T out;
    char* dst = reinterpret_cast<char*>(&out);
    std::uint64_t offset = index * sizeof(T);
    std::size_t remaining = sizeof(T);
    while (remaining > 0) {
      const std::uint64_t block = offset / file_->block_size();
      const std::size_t in_block =
          static_cast<std::size_t>(offset % file_->block_size());
      if (static_cast<std::int64_t>(block) != cached_block_) {
        valid_ = file_->ReadBlock(block, buffer_.data());
        cached_block_ = static_cast<std::int64_t>(block);
      }
      const std::size_t chunk = std::min(valid_ - in_block, remaining);
      DCHECK_GT(chunk, 0u);
      std::memcpy(dst, buffer_.data() + in_block, chunk);
      dst += chunk;
      offset += chunk;
      remaining -= chunk;
    }
    return out;
  }

 private:
  std::unique_ptr<BlockFile> file_;
  std::vector<char> buffer_;
  std::int64_t cached_block_ = -1;
  std::size_t valid_ = 0;
};

// Record count per batch for the bulk helpers below: one block's worth,
// so batched scans keep the per-stream footprint at O(B) bytes.
template <typename T>
std::size_t RecordsPerBlock(const IoContext* context) {
  return std::max<std::size_t>(1, context->block_size() / sizeof(T));
}

// Streams every record of `path` through `fn` with one block-sized
// batch buffer — the canonical batched scan loop behind the fused
// pipeline adapters and file utilities. Returns the record count.
template <typename T, typename Fn>
std::uint64_t ForEachRecord(IoContext* context, const std::string& path,
                            Fn fn) {
  RecordReader<T> reader(context, path);
  const std::size_t batch = RecordsPerBlock<T>(context);
  std::vector<T> chunk(batch);
  std::uint64_t total = 0;
  std::size_t got;
  while ((got = reader.NextBatch(chunk.data(), batch)) > 0) {
    for (std::size_t i = 0; i < got; ++i) fn(chunk[i]);
    total += got;
  }
  return total;
}

// Convenience: materializes an entire record file into memory.
// Only for tests and for in-memory base cases whose size was already
// validated against the memory budget by the caller.
template <typename T>
std::vector<T> ReadAllRecords(IoContext* context, const std::string& path) {
  RecordReader<T> reader(context, path);
  std::vector<T> out(reader.num_records());
  const std::size_t got = reader.NextBatch(out.data(), out.size());
  DCHECK(got == out.size() || !reader.status().ok());
  out.resize(got);  // an errored stream yields only what it delivered
  return out;
}

// Convenience: writes `records` to `path` sequentially.
template <typename T>
void WriteAllRecords(IoContext* context, const std::string& path,
                     const std::vector<T>& records) {
  RecordWriter<T> writer(context, path);
  writer.AppendBatch(records.data(), records.size());
  writer.Finish();
}

// Streams every record of `input_path` into `writer` block-batch-wise;
// returns the number of records appended. The workhorse behind file
// concatenation and copy-through stages.
template <typename T>
std::uint64_t AppendAllRecords(IoContext* context,
                               const std::string& input_path,
                               RecordWriter<T>* writer) {
  RecordReader<T> reader(context, input_path);
  const std::size_t batch = RecordsPerBlock<T>(context);
  std::vector<T> chunk(batch);
  std::uint64_t total = 0;
  std::size_t got;
  while ((got = reader.NextBatch(chunk.data(), batch)) > 0) {
    writer->AppendBatch(chunk.data(), got);
    total += got;
  }
  return total;
}

// Copies `input_path` to `output_path` with batched block transfers.
template <typename T>
std::uint64_t CopyAllRecords(IoContext* context, const std::string& input_path,
                             const std::string& output_path) {
  RecordWriter<T> writer(context, output_path);
  const std::uint64_t total = AppendAllRecords(context, input_path, &writer);
  writer.Finish();
  return total;
}

}  // namespace extscc::io

#endif  // EXTSCC_IO_RECORD_STREAM_H_
