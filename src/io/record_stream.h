// Typed record streams over BlockFile. Records are fixed-size trivially
// copyable PODs (graph::Edge, DegreeEntry, SccEntry, ...). Streaming
// readers/writers buffer exactly one block, so the in-memory footprint of
// a scan is B bytes per open stream — the accounting the external-memory
// analyses in the paper assume.
#ifndef EXTSCC_IO_RECORD_STREAM_H_
#define EXTSCC_IO_RECORD_STREAM_H_

#include <cstring>
#include <memory>
#include <string>
#include <type_traits>
#include <vector>

#include "io/block_file.h"
#include "io/io_context.h"
#include "util/logging.h"

namespace extscc::io {

// Number of T records stored in the file at `path` (by its byte size).
// The file must exist; missing files CHECK-fail (scratch discipline).
template <typename T>
std::uint64_t NumRecordsInFile(IoContext* context, const std::string& path) {
  static_assert(std::is_trivially_copyable_v<T>);
  BlockFile file(context, path, OpenMode::kRead);
  CHECK_EQ(file.size_bytes() % sizeof(T), 0u)
      << path << " is not a whole number of records";
  return file.size_bytes() / sizeof(T);
}

// Sequential append-only writer.
template <typename T>
class RecordWriter {
 public:
  static_assert(std::is_trivially_copyable_v<T>,
                "on-disk records must be PODs");

  RecordWriter(IoContext* context, const std::string& path)
      : file_(std::make_unique<BlockFile>(context, path,
                                          OpenMode::kTruncateWrite)),
        buffer_(file_->block_size()) {}

  ~RecordWriter() {
    if (file_ != nullptr) Finish();
  }

  RecordWriter(const RecordWriter&) = delete;
  RecordWriter& operator=(const RecordWriter&) = delete;

  void Append(const T& record) {
    DCHECK(file_ != nullptr) << "Append after Finish";
    // Records pack contiguously and may straddle block boundaries, so the
    // file is exactly count() * sizeof(T) bytes.
    const char* src = reinterpret_cast<const char*>(&record);
    std::size_t remaining = sizeof(T);
    while (remaining > 0) {
      const std::size_t chunk =
          std::min(buffer_.size() - fill_, remaining);
      std::memcpy(buffer_.data() + fill_, src, chunk);
      fill_ += chunk;
      src += chunk;
      remaining -= chunk;
      if (fill_ == buffer_.size()) Flush();
    }
    ++count_;
  }

  // Flushes the tail block and closes the file. Idempotent via destructor.
  void Finish() {
    if (file_ == nullptr) return;
    if (fill_ > 0) Flush();
    file_.reset();
  }

  std::uint64_t count() const { return count_; }

 private:
  void Flush() {
    file_->WriteBlock(next_block_++, buffer_.data(), fill_);
    fill_ = 0;
  }

  std::unique_ptr<BlockFile> file_;
  std::vector<char> buffer_;
  std::size_t fill_ = 0;
  std::uint64_t next_block_ = 0;
  std::uint64_t count_ = 0;
};

// Sequential reader.
template <typename T>
class RecordReader {
 public:
  static_assert(std::is_trivially_copyable_v<T>);

  RecordReader(IoContext* context, const std::string& path)
      : file_(std::make_unique<BlockFile>(context, path, OpenMode::kRead)),
        buffer_(file_->block_size()) {
    CHECK_EQ(file_->size_bytes() % sizeof(T), 0u)
        << path << " is not a whole number of records";
  }

  RecordReader(const RecordReader&) = delete;
  RecordReader& operator=(const RecordReader&) = delete;

  // Reads the next record into *out; returns false at end of stream.
  // Records may straddle block boundaries (see RecordWriter::Append).
  bool Next(T* out) {
    char* dst = reinterpret_cast<char*>(out);
    std::size_t remaining = sizeof(T);
    while (remaining > 0) {
      if (pos_ == valid_) {
        valid_ = file_->ReadBlock(next_block_++, buffer_.data());
        pos_ = 0;
        if (valid_ == 0) {
          DCHECK_EQ(remaining, sizeof(T))
              << "file ends mid-record despite the size check";
          return false;
        }
      }
      const std::size_t chunk = std::min(valid_ - pos_, remaining);
      std::memcpy(dst, buffer_.data() + pos_, chunk);
      pos_ += chunk;
      dst += chunk;
      remaining -= chunk;
    }
    return true;
  }

  std::uint64_t num_records() const { return file_->size_bytes() / sizeof(T); }

 private:
  std::unique_ptr<BlockFile> file_;
  std::vector<char> buffer_;
  std::size_t pos_ = 0;
  std::size_t valid_ = 0;
  std::uint64_t next_block_ = 0;
};

// One-record lookahead on top of RecordReader — the merge joins in
// Get-V / Get-E / Expansion are written against Peek()/Pop().
template <typename T>
class PeekableReader {
 public:
  PeekableReader(IoContext* context, const std::string& path)
      : reader_(context, path) {
    has_value_ = reader_.Next(&value_);
  }

  bool has_value() const { return has_value_; }
  const T& Peek() const {
    DCHECK(has_value_);
    return value_;
  }
  T Pop() {
    DCHECK(has_value_);
    T out = value_;
    has_value_ = reader_.Next(&value_);
    return out;
  }

  std::uint64_t num_records() const { return reader_.num_records(); }

 private:
  RecordReader<T> reader_;
  T value_{};
  bool has_value_ = false;
};

// Random-access reader used only by the DFS baseline (and by nothing in
// Ext-SCC): Get(i) fetches the block containing record i, generating the
// random I/Os the paper charges external DFS for. A single-block cache
// keeps repeated hits to the same block free, which is exactly the
// M >= 2B machine: one cached block per open structure.
template <typename T>
class RandomRecordReader {
 public:
  static_assert(std::is_trivially_copyable_v<T>);

  RandomRecordReader(IoContext* context, const std::string& path)
      : file_(std::make_unique<BlockFile>(context, path, OpenMode::kRead)),
        buffer_(file_->block_size()) {
    CHECK_EQ(file_->size_bytes() % sizeof(T), 0u);
  }

  std::uint64_t num_records() const { return file_->size_bytes() / sizeof(T); }

  T Get(std::uint64_t index) {
    DCHECK_LT(index, num_records());
    // Records pack byte-contiguously, so a record may straddle two
    // blocks; fetch bytes through the one-block cache.
    T out;
    char* dst = reinterpret_cast<char*>(&out);
    std::uint64_t offset = index * sizeof(T);
    std::size_t remaining = sizeof(T);
    while (remaining > 0) {
      const std::uint64_t block = offset / file_->block_size();
      const std::size_t in_block =
          static_cast<std::size_t>(offset % file_->block_size());
      if (static_cast<std::int64_t>(block) != cached_block_) {
        valid_ = file_->ReadBlock(block, buffer_.data());
        cached_block_ = static_cast<std::int64_t>(block);
      }
      const std::size_t chunk = std::min(valid_ - in_block, remaining);
      DCHECK_GT(chunk, 0u);
      std::memcpy(dst, buffer_.data() + in_block, chunk);
      dst += chunk;
      offset += chunk;
      remaining -= chunk;
    }
    return out;
  }

 private:
  std::unique_ptr<BlockFile> file_;
  std::vector<char> buffer_;
  std::int64_t cached_block_ = -1;
  std::size_t valid_ = 0;
};

// Convenience: materializes an entire record file into memory.
// Only for tests and for in-memory base cases whose size was already
// validated against the memory budget by the caller.
template <typename T>
std::vector<T> ReadAllRecords(IoContext* context, const std::string& path) {
  RecordReader<T> reader(context, path);
  std::vector<T> out;
  out.reserve(reader.num_records());
  T record;
  while (reader.Next(&record)) out.push_back(record);
  return out;
}

// Convenience: writes `records` to `path` sequentially.
template <typename T>
void WriteAllRecords(IoContext* context, const std::string& path,
                     const std::vector<T>& records) {
  RecordWriter<T> writer(context, path);
  for (const T& r : records) writer.Append(r);
  writer.Finish();
}

}  // namespace extscc::io

#endif  // EXTSCC_IO_RECORD_STREAM_H_
