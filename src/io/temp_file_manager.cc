#include "io/temp_file_manager.h"

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>

#include "util/logging.h"

namespace extscc::io {

// ---- live-root registry (signal cleanup) ----------------------------
//
// A fixed array of path slots claimed/released by TempFileManager
// construction/destruction, consumed by the SIGINT/SIGTERM handler.
// Fixed storage and atomic claim flags keep the handler free of
// allocation and locking on its read side; the removal itself uses
// std::filesystem, which is not strictly async-signal-safe — an
// accepted trade for a handler that only runs on the way to process
// death, where the alternative is leaking the scratch tree.
//
// SIGKILL (and --crash-at's _Exit) never reach this handler; those
// roots are collected by ReapOrphanScratchRoots (storage.h) the next
// time a process creates a session root under the same parent, using
// the per-root .pid liveness marker.

namespace {

constexpr int kMaxLiveRoots = 64;

struct LiveRootSlot {
  std::atomic<bool> used{false};
  // Set before `used` is published, cleared only after `used` is false.
  char path[4096];
};

LiveRootSlot g_live_roots[kMaxLiveRoots];

int ClaimLiveRootSlot(const std::string& root) {
  if (root.size() >= sizeof(LiveRootSlot::path)) return -1;
  for (int i = 0; i < kMaxLiveRoots; ++i) {
    bool expected = false;
    if (g_live_roots[i].used.compare_exchange_strong(
            expected, true, std::memory_order_acq_rel)) {
      std::memcpy(g_live_roots[i].path, root.c_str(), root.size() + 1);
      return i;
    }
  }
  return -1;  // registry full: that root just won't be signal-cleaned
}

void ReleaseLiveRootSlot(int slot) {
  if (slot < 0) return;
  g_live_roots[slot].used.store(false, std::memory_order_release);
}

extern "C" void ScratchCleanupSignalHandler(int signo) {
  for (int i = 0; i < kMaxLiveRoots; ++i) {
    if (!g_live_roots[i].used.load(std::memory_order_acquire)) continue;
    std::error_code ec;
    std::filesystem::remove_all(g_live_roots[i].path, ec);
  }
  std::_Exit(128 + signo);
}

// A root is registered only when it is a real filesystem directory:
// mem:// namespaces vanish with the process anyway.
bool IsFilesystemRoot(const std::string& root) {
  return !root.empty() && root[0] == '/';
}

}  // namespace

void InstallScratchSignalCleanup() {
  struct sigaction sa;
  std::memset(&sa, 0, sizeof(sa));
  sa.sa_handler = &ScratchCleanupSignalHandler;
  sigemptyset(&sa.sa_mask);
  ::sigaction(SIGINT, &sa, nullptr);
  ::sigaction(SIGTERM, &sa, nullptr);
}

// ---- TempFileManager -------------------------------------------------

TempFileManager::TempFileManager(
    std::vector<std::unique_ptr<StorageDevice>> devices,
    PlacementPolicy placement)
    : placement_(placement) {
  CHECK(!devices.empty()) << "TempFileManager needs at least one device";
  roots_.reserve(devices.size());
  for (auto& device : devices) {
    Root root;
    root.root = device->CreateSessionRoot();
    root.device = std::move(device);
    if (IsFilesystemRoot(root.root)) {
      root.live_slot = ClaimLiveRootSlot(root.root);
    }
    roots_.push_back(std::move(root));
  }
  if (placement_ == PlacementPolicy::kStriped && roots_.size() > 1) {
    striped_ = std::make_unique<StripedDevice>("striped");
    striped_root_ = striped_->CreateSessionRoot();
  }
}

TempFileManager::TempFileManager(
    const std::string& parent_dir,
    const std::vector<std::string>& scratch_parents)
    : TempFileManager(MakePosixScratchDevices(parent_dir, scratch_parents)) {}

TempFileManager::~TempFileManager() {
  // Drop the striped registry first; the part bytes themselves live in
  // the member roots removed below.
  if (striped_ != nullptr) striped_->RemoveTree(striped_root_);
  for (const auto& root : roots_) {
    if (keep_files_) {
      LOG_INFO << "TempFileManager: keeping scratch files in " << root.root;
    } else {
      root.device->RemoveTree(root.root);
    }
    ReleaseLiveRootSlot(root.live_slot);
  }
}

std::string TempFileManager::NewPath(const std::string& tag) {
  return NewFile(tag, Placement::Ungrouped()).path;
}

void TempFileManager::ConfigureStriping(std::size_t block_size,
                                        bool checksum_blocks) {
  if (striped_ != nullptr) striped_->SetGeometry(block_size, checksum_blocks);
}

std::vector<std::size_t> TempFileManager::AvailableRootsLocked() const {
  std::vector<std::size_t> available;
  available.reserve(roots_.size());
  for (std::size_t i = 0; i < roots_.size(); ++i) {
    if (!roots_[i].quarantined) available.push_back(i);
  }
  if (available.empty()) {
    // Everything quarantined: fall back to the full set so placement
    // still yields a path and the underlying I/O error (not a
    // placement failure) is what the caller reports.
    for (std::size_t i = 0; i < roots_.size(); ++i) available.push_back(i);
  }
  return available;
}

ScratchFile TempFileManager::NewFile(const std::string& tag,
                                     const Placement& placement) {
  std::lock_guard<std::mutex> lock(mu_);
  const std::uint64_t id = next_id_++;
  // Round-robin by sequence number: consecutive scratch files (and in
  // particular consecutive sort runs) land on distinct devices. The
  // spread policy instead derives the device from the merge group, so a
  // group's members are distinct mod the device count no matter what
  // other scratch traffic interleaves with them. Both policies index
  // into the *available* (non-quarantined) roots; with no quarantine
  // that list is all roots in order, so placement — and every scratch
  // path — is byte-identical to the fault-oblivious engine.
  const std::vector<std::size_t> available = AvailableRootsLocked();
  if (placement_ == PlacementPolicy::kStriped) {
    if (striped_ != nullptr && available.size() >= 2) {
      CHECK(striped_->has_geometry())
          << "kStriped placement before ConfigureStriping";
      const std::string leaf = std::to_string(id) + "_" + tag;
      std::vector<StorageDevice*> devices;
      std::vector<std::string> parts;
      devices.reserve(available.size());
      parts.reserve(available.size());
      for (const std::size_t index : available) {
        devices.push_back(roots_[index].device.get());
        parts.push_back(roots_[index].root + "/" + leaf);
      }
      const std::string vpath = striped_root_ + "/" + leaf;
      striped_->RegisterFile(vpath, std::move(devices), std::move(parts));
      return ScratchFile{vpath, striped_.get()};
    }
    // A 1-wide stripe is round-robin in disguise: say so once, then
    // place honestly on what is left (quarantine shrank the set, or the
    // machine only has one scratch device to begin with).
    if (!striped_fallback_noted_.exchange(true, std::memory_order_relaxed)) {
      std::fprintf(stderr,
                   "extscc: --placement=striped needs >= 2 available "
                   "scratch devices (have %zu); falling back to "
                   "round-robin placement\n",
                   available.size());
    }
  }
  std::size_t pick;
  if (placement_ == PlacementPolicy::kSpreadGroup && placement.grouped) {
    pick = static_cast<std::size_t>(
        (placement.group + placement.member) % available.size());
  } else {
    pick = static_cast<std::size_t>(id % available.size());
  }
  Root& root = roots_[available[pick]];
  return ScratchFile{root.root + "/" + std::to_string(id) + "_" + tag,
                     root.device.get()};
}

void TempFileManager::Remove(const std::string& path) {
  StorageDevice* device = DeviceForPath(path);
  if (device != nullptr) {
    const util::Status status = device->Delete(path);
    if (!status.ok()) {
      LOG_WARNING << "TempFileManager: failed to remove scratch file "
                  << path << ": " << status.ToString();
    }
    return;
  }
  // Not scratch — historical behavior is a best-effort filesystem
  // remove; kept for callers deleting user-side files.
  std::error_code ec;
  std::filesystem::remove(path, ec);
}

void TempFileManager::Quarantine(StorageDevice* device) {
  if (striped_ != nullptr && device == striped_.get()) {
    // A striped file failed: the real casualty is whichever member
    // device's part I/O broke. Quarantine exactly those members; the
    // next striped placement excludes them (or falls back to
    // round-robin when only one member survives).
    for (StorageDevice* failed : striped_->TakeFailedDevices()) {
      Quarantine(failed);
    }
    return;
  }
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& root : roots_) {
    if (root.device.get() == device && !root.quarantined) {
      root.quarantined = true;
      LOG_WARNING << "TempFileManager: quarantined scratch device "
                  << device->name()
                  << "; new scratch files avoid it from now on";
    }
  }
}

bool TempFileManager::IsQuarantined(StorageDevice* device) const {
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& root : roots_) {
    if (root.device.get() == device) return root.quarantined;
  }
  return false;
}

std::size_t TempFileManager::num_available_devices() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::size_t healthy = 0;
  for (const auto& root : roots_) {
    if (!root.quarantined) ++healthy;
  }
  return healthy > 0 ? healthy : roots_.size();
}

std::size_t TempFileManager::effective_stripe_width() const {
  std::lock_guard<std::mutex> lock(mu_);
  if (placement_ != PlacementPolicy::kStriped || striped_ == nullptr) return 0;
  const std::size_t available = AvailableRootsLocked().size();
  return available >= 2 ? available : 0;
}

void TempFileManager::NoteStripedFallback() {
  if (placement_ != PlacementPolicy::kStriped) return;
  std::size_t have;
  {
    std::lock_guard<std::mutex> lock(mu_);
    const std::size_t available = AvailableRootsLocked().size();
    if (striped_ != nullptr && available >= 2) return;
    have = available;
  }
  // Same ticket and same wording as the lazy note in NewFile, so a tool
  // that reports eagerly never double-prints when scratch files follow.
  if (!striped_fallback_noted_.exchange(true, std::memory_order_relaxed)) {
    std::fprintf(stderr,
                 "extscc: --placement=striped needs >= 2 available "
                 "scratch devices (have %zu); falling back to "
                 "round-robin placement\n",
                 have);
  }
}

StorageDevice* TempFileManager::DeviceForPath(const std::string& path) const {
  // Striped virtual paths first: their "striped://" namespace can never
  // prefix-collide with a member root, and striped_root_ is immutable
  // after construction, so this stays lock-free like the loop below.
  if (striped_ != nullptr && path.size() > striped_root_.size() + 1 &&
      path.compare(0, striped_root_.size(), striped_root_) == 0 &&
      path[striped_root_.size()] == '/') {
    return striped_.get();
  }
  for (const auto& root : roots_) {
    if (path.size() > root.root.size() + 1 &&
        path.compare(0, root.root.size(), root.root) == 0 &&
        path[root.root.size()] == '/') {
      return root.device.get();
    }
  }
  return nullptr;
}

std::vector<StorageDevice*> TempFileManager::devices() const {
  std::vector<StorageDevice*> out;
  out.reserve(roots_.size());
  for (const auto& root : roots_) out.push_back(root.device.get());
  return out;
}

std::vector<std::string> TempFileManager::dirs() const {
  std::vector<std::string> out;
  out.reserve(roots_.size());
  for (const auto& root : roots_) out.push_back(root.root);
  return out;
}

}  // namespace extscc::io
