#include "io/temp_file_manager.h"

#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <filesystem>

#include "util/logging.h"

namespace extscc::io {

namespace fs = std::filesystem;

TempFileManager::TempFileManager(const std::string& parent_dir) {
  std::string parent = parent_dir;
  if (parent.empty()) {
    const char* env = std::getenv("TMPDIR");
    parent = (env != nullptr && env[0] != '\0') ? env : "/tmp";
  }
  // Unique directory name: pid + monotonically increasing suffix probe.
  static std::uint64_t counter = 0;
  std::error_code ec;
  for (int attempt = 0; attempt < 1000; ++attempt) {
    std::string candidate = parent + "/extscc_" +
                            std::to_string(::getpid()) + "_" +
                            std::to_string(counter++);
    if (fs::create_directories(candidate, ec) && !ec) {
      dir_ = candidate;
      return;
    }
  }
  LOG_FATAL << "TempFileManager: cannot create scratch directory under "
            << parent;
}

TempFileManager::~TempFileManager() {
  if (keep_files_) {
    LOG_INFO << "TempFileManager: keeping scratch files in " << dir_;
    return;
  }
  std::error_code ec;
  fs::remove_all(dir_, ec);
  if (ec) {
    LOG_WARNING << "TempFileManager: failed to remove " << dir_ << ": "
                << ec.message();
  }
}

std::string TempFileManager::NewPath(const std::string& tag) {
  return dir_ + "/" + std::to_string(next_id_++) + "_" + tag;
}

void TempFileManager::Remove(const std::string& path) {
  std::error_code ec;
  fs::remove(path, ec);
}

}  // namespace extscc::io
