#include "io/temp_file_manager.h"

#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <filesystem>

#include "util/logging.h"

namespace extscc::io {

namespace fs = std::filesystem;

std::string TempFileManager::CreateSessionDir(const std::string& parent_dir) {
  std::string parent = parent_dir;
  if (parent.empty()) {
    const char* env = std::getenv("TMPDIR");
    parent = (env != nullptr && env[0] != '\0') ? env : "/tmp";
  }
  // Unique directory name: pid + monotonically increasing suffix probe.
  static std::uint64_t counter = 0;
  std::error_code ec;
  for (int attempt = 0; attempt < 1000; ++attempt) {
    std::string candidate = parent + "/extscc_" +
                            std::to_string(::getpid()) + "_" +
                            std::to_string(counter++);
    if (fs::create_directories(candidate, ec) && !ec) {
      return candidate;
    }
  }
  LOG_FATAL << "TempFileManager: cannot create scratch directory under "
            << parent;
  return {};
}

TempFileManager::TempFileManager(
    const std::string& parent_dir,
    const std::vector<std::string>& scratch_parents) {
  if (scratch_parents.empty()) {
    dirs_.push_back(CreateSessionDir(parent_dir));
    return;
  }
  dirs_.reserve(scratch_parents.size());
  for (const auto& parent : scratch_parents) {
    dirs_.push_back(CreateSessionDir(parent));
  }
}

TempFileManager::~TempFileManager() {
  for (const auto& dir : dirs_) {
    if (keep_files_) {
      LOG_INFO << "TempFileManager: keeping scratch files in " << dir;
      continue;
    }
    std::error_code ec;
    fs::remove_all(dir, ec);
    if (ec) {
      LOG_WARNING << "TempFileManager: failed to remove " << dir << ": "
                  << ec.message();
    }
  }
}

std::string TempFileManager::NewPath(const std::string& tag) {
  std::lock_guard<std::mutex> lock(mu_);
  const std::uint64_t id = next_id_++;
  // Round-robin by sequence number: consecutive scratch files (and in
  // particular consecutive sort runs) land on distinct devices.
  const std::string& dir = dirs_[id % dirs_.size()];
  return dir + "/" + std::to_string(id) + "_" + tag;
}

void TempFileManager::Remove(const std::string& path) {
  std::error_code ec;
  fs::remove(path, ec);
}

}  // namespace extscc::io
