#include "io/temp_file_manager.h"

#include <filesystem>

#include "util/logging.h"

namespace extscc::io {

TempFileManager::TempFileManager(
    std::vector<std::unique_ptr<StorageDevice>> devices,
    PlacementPolicy placement)
    : placement_(placement) {
  CHECK(!devices.empty()) << "TempFileManager needs at least one device";
  roots_.reserve(devices.size());
  for (auto& device : devices) {
    Root root;
    root.root = device->CreateSessionRoot();
    root.device = std::move(device);
    roots_.push_back(std::move(root));
  }
}

TempFileManager::TempFileManager(
    const std::string& parent_dir,
    const std::vector<std::string>& scratch_parents)
    : TempFileManager(MakePosixScratchDevices(parent_dir, scratch_parents)) {}

TempFileManager::~TempFileManager() {
  for (const auto& root : roots_) {
    if (keep_files_) {
      LOG_INFO << "TempFileManager: keeping scratch files in " << root.root;
      continue;
    }
    root.device->RemoveTree(root.root);
  }
}

std::string TempFileManager::NewPath(const std::string& tag) {
  return NewFile(tag, Placement::Ungrouped()).path;
}

ScratchFile TempFileManager::NewFile(const std::string& tag,
                                     const Placement& placement) {
  std::lock_guard<std::mutex> lock(mu_);
  const std::uint64_t id = next_id_++;
  // Round-robin by sequence number: consecutive scratch files (and in
  // particular consecutive sort runs) land on distinct devices. The
  // spread policy instead derives the device from the merge group, so a
  // group's members are distinct mod the device count no matter what
  // other scratch traffic interleaves with them.
  std::size_t device_index;
  if (placement_ == PlacementPolicy::kSpreadGroup && placement.grouped) {
    device_index = static_cast<std::size_t>(
        (placement.group + placement.member) % roots_.size());
  } else {
    device_index = static_cast<std::size_t>(id % roots_.size());
  }
  Root& root = roots_[device_index];
  return ScratchFile{root.root + "/" + std::to_string(id) + "_" + tag,
                     root.device.get()};
}

void TempFileManager::Remove(const std::string& path) {
  StorageDevice* device = DeviceForPath(path);
  if (device != nullptr) {
    device->Delete(path);
    return;
  }
  // Not scratch — historical behavior is a best-effort filesystem
  // remove; kept for callers deleting user-side files.
  std::error_code ec;
  std::filesystem::remove(path, ec);
}

StorageDevice* TempFileManager::DeviceForPath(const std::string& path) const {
  for (const auto& root : roots_) {
    if (path.size() > root.root.size() + 1 &&
        path.compare(0, root.root.size(), root.root) == 0 &&
        path[root.root.size()] == '/') {
      return root.device.get();
    }
  }
  return nullptr;
}

std::vector<StorageDevice*> TempFileManager::devices() const {
  std::vector<StorageDevice*> out;
  out.reserve(roots_.size());
  for (const auto& root : roots_) out.push_back(root.device.get());
  return out;
}

std::vector<std::string> TempFileManager::dirs() const {
  std::vector<std::string> out;
  out.reserve(roots_.size());
  for (const auto& root : roots_) out.push_back(root.root);
  return out;
}

}  // namespace extscc::io
