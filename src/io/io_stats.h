// I/O statistics in the Aggarwal-Vitter model: every block read/write on
// any file owned by an IoContext is counted here, classified sequential
// (the block follows the previously accessed block of the same file and
// direction) or random (anything else, including the first access after a
// reopen or a direction switch to a different position).
//
// The paper's "Number of I/Os" axis (Figs. 6(b), 7(b), 8(b/d/f), 9(b/d/f/h))
// is total_ios() of the algorithm's context.
#ifndef EXTSCC_IO_IO_STATS_H_
#define EXTSCC_IO_IO_STATS_H_

#include <cstdint>
#include <string>

namespace extscc::io {

struct IoStats {
  std::uint64_t sequential_reads = 0;
  std::uint64_t random_reads = 0;
  std::uint64_t sequential_writes = 0;
  std::uint64_t random_writes = 0;
  std::uint64_t bytes_read = 0;
  std::uint64_t bytes_written = 0;
  std::uint64_t files_created = 0;
  // Device-level retries of transient faults (fault-tolerance path).
  // Retries are NOT extra model I/Os — a block consumed once counts
  // once no matter how many device attempts it took — so they are
  // tracked separately to keep the Aggarwal-Vitter counters honest:
  // a fault-free run reports zero here.
  std::uint64_t read_retries = 0;
  std::uint64_t write_retries = 0;
  // Durability operations (crash-safety path). Like retries, these are
  // NOT model I/Os: an fsync moves no blocks in the Aggarwal-Vitter
  // model, and checkpoint-manifest bytes bypass the block layer
  // entirely. The default fault-free solve reports zero in all three,
  // which is what keeps the paper's I/O columns byte-identical.
  std::uint64_t sync_calls = 0;
  std::uint64_t checkpoint_writes = 0;
  std::uint64_t checkpoint_reads = 0;

  std::uint64_t total_reads() const { return sequential_reads + random_reads; }
  std::uint64_t total_writes() const {
    return sequential_writes + random_writes;
  }
  std::uint64_t total_ios() const { return total_reads() + total_writes(); }
  std::uint64_t random_ios() const { return random_reads + random_writes; }

  IoStats& operator+=(const IoStats& other);
  IoStats operator-(const IoStats& other) const;

  std::string ToString() const;
};

}  // namespace extscc::io

#endif  // EXTSCC_IO_IO_STATS_H_
