#include "io/storage.h"

#include <fcntl.h>
#include <signal.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <thread>

#include "io/checksum.h"
#include "io/temp_file_manager.h"
#include "util/logging.h"

namespace extscc::io {

namespace fs = std::filesystem;

// ---- PosixDevice -----------------------------------------------------

namespace {

class PosixFile : public StorageFile {
 public:
  PosixFile(int fd, std::string path, std::uint64_t size)
      : fd_(fd), path_(std::move(path)), size_bytes_(size) {}

  ~PosixFile() override {
    if (fd_ >= 0) ::close(fd_);
  }

  util::Status ReadAt(std::uint64_t offset, void* buf,
                      std::size_t bytes) override {
    std::size_t done = 0;
    while (done < bytes) {
      const ssize_t n = ::pread(fd_, static_cast<char*>(buf) + done,
                                bytes - done,
                                static_cast<off_t>(offset + done));
      if (n < 0) {
        if (errno == EINTR) continue;
        return util::Status::IoError(
            "pread(" + path_ + ") failed: " + std::strerror(errno), errno);
      }
      if (n == 0) {
        // Caller asked for bytes the size check promised exist: the
        // file was truncated underneath us. No errno — not retryable.
        return util::Status::IoError("pread(" + path_ +
                                     ") hit unexpected EOF (truncated file)");
      }
      done += static_cast<std::size_t>(n);
    }
    return util::Status::Ok();
  }

  util::Status WriteAt(std::uint64_t offset, const void* data,
                       std::size_t bytes) override {
    std::size_t done = 0;
    while (done < bytes) {
      const ssize_t n = ::pwrite(fd_, static_cast<const char*>(data) + done,
                                 bytes - done,
                                 static_cast<off_t>(offset + done));
      if (n < 0) {
        if (errno == EINTR) continue;
        return util::Status::IoError(
            "pwrite(" + path_ + ") failed: " + std::strerror(errno), errno);
      }
      if (n == 0) {
        return util::Status::IoError(
            "pwrite(" + path_ + ") made no progress", ENOSPC);
      }
      done += static_cast<std::size_t>(n);
    }
    return util::Status::Ok();
  }

  std::uint64_t size_bytes() const override { return size_bytes_; }

  util::Status Sync() override {
    // fdatasync: data plus the metadata needed to read it back (size),
    // skipping timestamp-only journal writes that fsync would force.
    while (::fdatasync(fd_) != 0) {
      if (errno == EINTR) continue;
      return util::Status::IoError(
          "fdatasync(" + path_ + ") failed: " + std::strerror(errno), errno);
    }
    return util::Status::Ok();
  }

 private:
  int fd_;
  std::string path_;
  std::uint64_t size_bytes_;
};

std::string ResolveParent(const std::string& parent_dir) {
  if (!parent_dir.empty()) return parent_dir;
  const char* env = std::getenv("TMPDIR");
  return (env != nullptr && env[0] != '\0') ? env : "/tmp";
}

}  // namespace

util::Status StorageDevice::Rename(const std::string& from,
                                   const std::string& to) {
  (void)from;
  (void)to;
  return util::Status::Unimplemented("rename not supported on device " +
                                     name());
}

util::Status StorageDevice::SyncDir(const std::string& dir) {
  (void)dir;
  return util::Status::Ok();
}

PosixDevice::PosixDevice(std::string name, std::string parent_dir)
    : StorageDevice(std::move(name)), parent_dir_(std::move(parent_dir)) {}

util::Status PosixDevice::Open(const std::string& path, OpenMode mode,
                               std::unique_ptr<StorageFile>* out) {
  int flags = 0;
  switch (mode) {
    case OpenMode::kRead:
      flags = O_RDONLY;
      break;
    case OpenMode::kTruncateWrite:
      flags = O_RDWR | O_CREAT | O_TRUNC;
      break;
    case OpenMode::kReadWrite:
      flags = O_RDWR | O_CREAT;
      break;
  }
  const int fd = ::open(path.c_str(), flags, 0644);
  if (fd < 0) {
    return util::Status::IoError(
        "open(" + path + ") failed: " + std::strerror(errno), errno);
  }
  const off_t end = ::lseek(fd, 0, SEEK_END);
  if (end < 0) {
    const int saved = errno;
    ::close(fd);
    return util::Status::IoError(
        "lseek(" + path + ") failed: " + std::strerror(saved), saved);
  }
  *out = std::make_unique<PosixFile>(fd, path,
                                     static_cast<std::uint64_t>(end));
  return util::Status::Ok();
}

util::Status PosixDevice::Delete(const std::string& path) {
  std::error_code ec;
  fs::remove(path, ec);
  if (ec) {
    return util::Status::IoError("remove(" + path +
                                 ") failed: " + ec.message());
  }
  return util::Status::Ok();
}

util::Status PosixDevice::Rename(const std::string& from,
                                 const std::string& to) {
  // POSIX rename(2): atomic replace of `to` on the same filesystem —
  // the property the artifact publish step relies on.
  if (::rename(from.c_str(), to.c_str()) != 0) {
    return util::Status::IoError("rename(" + from + " -> " + to +
                                     ") failed: " + std::strerror(errno),
                                 errno);
  }
  return util::Status::Ok();
}

util::Status PosixDevice::SyncDir(const std::string& dir) {
  const int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (fd < 0) {
    return util::Status::IoError(
        "open(" + dir + ") for fsync failed: " + std::strerror(errno), errno);
  }
  int rc;
  do {
    rc = ::fsync(fd);
  } while (rc != 0 && errno == EINTR);
  const int saved = errno;
  ::close(fd);
  if (rc != 0) {
    return util::Status::IoError(
        "fsync(" + dir + ") failed: " + std::strerror(saved), saved);
  }
  return util::Status::Ok();
}

std::string PosixDevice::CreateSessionRoot() {
  const std::string parent = ResolveParent(parent_dir_);
  // Reclaim roots left by SIGKILLed processes before adding our own —
  // once per (process, parent): liveness checks make reaping safe
  // against concurrent sessions, so repeating it would only cost scans.
  {
    static std::mutex reap_mu;
    static std::vector<std::string>* reaped_parents =
        new std::vector<std::string>();
    std::lock_guard<std::mutex> lock(reap_mu);
    if (std::find(reaped_parents->begin(), reaped_parents->end(), parent) ==
        reaped_parents->end()) {
      reaped_parents->push_back(parent);
      ReapOrphanScratchRoots(parent);
    }
  }
  // Unique directory name: pid + monotonically increasing suffix probe.
  // The counter is shared across devices so session roots never collide
  // even when several scratch parents alias the same directory.
  static std::uint64_t counter = 0;
  std::error_code ec;
  for (int attempt = 0; attempt < 1000; ++attempt) {
    std::string candidate = parent + "/extscc_" +
                            std::to_string(::getpid()) + "_" +
                            std::to_string(counter++);
    if (fs::create_directories(candidate, ec) && !ec) {
      // Ownership marker for ReapOrphanScratchRoots: the reaper trusts
      // the pid in here over the one in the directory name, so a root
      // that was (improbably) renamed still resolves to its true owner.
      std::FILE* pid_file = std::fopen((candidate + "/.pid").c_str(), "w");
      if (pid_file != nullptr) {
        std::fprintf(pid_file, "%ld\n", static_cast<long>(::getpid()));
        std::fclose(pid_file);
      }
      return candidate;
    }
  }
  LOG_FATAL << "PosixDevice: cannot create scratch directory under "
            << parent;
  return {};
}

void PosixDevice::RemoveTree(const std::string& root) {
  std::error_code ec;
  fs::remove_all(root, ec);
  if (ec) {
    LOG_WARNING << "PosixDevice: failed to remove " << root << ": "
                << ec.message();
  }
}

std::vector<std::unique_ptr<StorageDevice>> MakePosixScratchDevices(
    const std::string& parent_dir,
    const std::vector<std::string>& scratch_parents) {
  std::vector<std::unique_ptr<StorageDevice>> devices;
  if (scratch_parents.empty()) {
    devices.push_back(std::make_unique<PosixDevice>("disk0", parent_dir));
    return devices;
  }
  devices.reserve(scratch_parents.size());
  for (std::size_t i = 0; i < scratch_parents.size(); ++i) {
    devices.push_back(std::make_unique<PosixDevice>(
        "disk" + std::to_string(i), scratch_parents[i]));
  }
  return devices;
}

namespace {

// Parses the pid out of a session-root name "extscc_<pid>_<seq>";
// returns 0 when the name does not match the scheme exactly.
long SessionRootPid(const std::string& name) {
  constexpr char kPrefix[] = "extscc_";
  constexpr std::size_t kPrefixLen = sizeof(kPrefix) - 1;
  if (name.compare(0, kPrefixLen, kPrefix) != 0) return 0;
  const std::size_t sep = name.find('_', kPrefixLen);
  if (sep == std::string::npos || sep == kPrefixLen ||
      sep + 1 >= name.size()) {
    return 0;
  }
  long pid = 0;
  for (std::size_t i = kPrefixLen; i < sep; ++i) {
    if (name[i] < '0' || name[i] > '9') return 0;
    pid = pid * 10 + (name[i] - '0');
  }
  for (std::size_t i = sep + 1; i < name.size(); ++i) {
    if (name[i] < '0' || name[i] > '9') return 0;
  }
  return pid;
}

// True when `pid` definitely no longer exists. EPERM means a live
// process we cannot signal — not ours to reap.
bool PidIsDead(long pid) {
  if (pid <= 0) return false;
  return ::kill(static_cast<pid_t>(pid), 0) != 0 && errno == ESRCH;
}

}  // namespace

std::size_t ReapOrphanScratchRoots(const std::string& parent) {
  std::error_code ec;
  fs::directory_iterator it(parent, ec);
  if (ec) return 0;
  std::size_t reaped = 0;
  for (const auto& entry : it) {
    std::error_code entry_ec;
    if (!entry.is_directory(entry_ec) || entry_ec) continue;
    long pid = SessionRootPid(entry.path().filename().string());
    if (pid == 0) continue;
    // The .pid ownership marker wins over the name when readable.
    std::FILE* pid_file =
        std::fopen((entry.path() / ".pid").string().c_str(), "r");
    if (pid_file != nullptr) {
      long file_pid = 0;
      if (std::fscanf(pid_file, "%ld", &file_pid) == 1 && file_pid > 0) {
        pid = file_pid;
      }
      std::fclose(pid_file);
    }
    if (pid == static_cast<long>(::getpid()) || !PidIsDead(pid)) continue;
    std::error_code rm_ec;
    fs::remove_all(entry.path(), rm_ec);
    if (!rm_ec) ++reaped;
  }
  return reaped;
}

// ---- MemDevice -------------------------------------------------------

namespace {

class MemFile : public StorageFile {
 public:
  MemFile(std::shared_ptr<void> keepalive, std::mutex* mu,
          std::vector<char>* bytes, std::string path, bool writable)
      : keepalive_(std::move(keepalive)),
        mu_(mu),
        bytes_(bytes),
        path_(std::move(path)),
        writable_(writable) {
    std::lock_guard<std::mutex> lock(*mu_);
    size_at_open_ = bytes_->size();
  }

  util::Status ReadAt(std::uint64_t offset, void* buf,
                      std::size_t bytes) override {
    std::lock_guard<std::mutex> lock(*mu_);
    if (offset + bytes > bytes_->size()) {
      // Behavioral parity with posix's unexpected-EOF read: the file
      // shrank underneath the size check. No errno — not retryable.
      return util::Status::IoError("read past end of mem file " + path_ +
                                   " (truncated file)");
    }
    std::memcpy(buf, bytes_->data() + offset, bytes);
    return util::Status::Ok();
  }

  util::Status WriteAt(std::uint64_t offset, const void* data,
                       std::size_t bytes) override {
    // Behavioral parity with posix: pwrite on an O_RDONLY fd fails, so
    // a write through a kRead handle must fail on mem scratch too —
    // otherwise a bug would only surface on the real filesystem.
    if (!writable_) {
      return util::Status::IoError(
          "write to read-only mem file " + path_, EBADF);
    }
    std::lock_guard<std::mutex> lock(*mu_);
    if (offset + bytes > bytes_->size()) bytes_->resize(offset + bytes);
    std::memcpy(bytes_->data() + offset, data, bytes);
    return util::Status::Ok();
  }

  std::uint64_t size_bytes() const override { return size_at_open_; }

 private:
  std::shared_ptr<void> keepalive_;  // the FileData, outliving Delete()
  std::mutex* mu_;
  std::vector<char>* bytes_;
  std::string path_;
  const bool writable_;
  std::uint64_t size_at_open_ = 0;
};

}  // namespace

MemDevice::MemDevice(std::string name) : StorageDevice(std::move(name)) {}

util::Status MemDevice::Open(const std::string& path, OpenMode mode,
                             std::unique_ptr<StorageFile>* out) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = files_.find(path);
  if (mode == OpenMode::kRead) {
    if (it == files_.end()) {
      return util::Status::IoError("open(" + path +
                                       ") failed: no such mem file on "
                                       "device " + name(),
                                   ENOENT);
    }
  } else {
    if (it == files_.end()) {
      it = files_.emplace(path, std::make_shared<FileData>()).first;
    } else if (mode == OpenMode::kTruncateWrite) {
      std::lock_guard<std::mutex> file_lock(it->second->mu);
      it->second->bytes.clear();
    }
  }
  const std::shared_ptr<FileData>& data = it->second;
  *out = std::make_unique<MemFile>(data, &data->mu, &data->bytes, path,
                                   mode != OpenMode::kRead);
  return util::Status::Ok();
}

util::Status MemDevice::Delete(const std::string& path) {
  std::lock_guard<std::mutex> lock(mu_);
  files_.erase(path);
  return util::Status::Ok();
}

util::Status MemDevice::Rename(const std::string& from,
                               const std::string& to) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = files_.find(from);
  if (it == files_.end()) {
    return util::Status::IoError("rename(" + from +
                                     ") failed: no such mem file on device " +
                                     name(),
                                 ENOENT);
  }
  // Like rename(2), a replaced `to` vanishes atomically; handles opened
  // on the old contents keep their FileData alive via shared_ptr.
  files_[to] = std::move(it->second);
  files_.erase(it);
  return util::Status::Ok();
}

std::string MemDevice::CreateSessionRoot() {
  std::lock_guard<std::mutex> lock(mu_);
  return "mem://" + name() + "/s" + std::to_string(next_session_++);
}

void MemDevice::RemoveTree(const std::string& root) {
  const std::string prefix = root + "/";
  std::lock_guard<std::mutex> lock(mu_);
  for (auto it = files_.begin(); it != files_.end();) {
    if (it->first.compare(0, prefix.size(), prefix) == 0) {
      it = files_.erase(it);
    } else {
      ++it;
    }
  }
}

// ---- ThrottledDevice -------------------------------------------------

namespace {

class ThrottledFile : public StorageFile {
 public:
  ThrottledFile(std::unique_ptr<StorageFile> inner, ThrottledDevice* device)
      : inner_(std::move(inner)), device_(device) {}

  util::Status ReadAt(std::uint64_t offset, void* buf,
                      std::size_t bytes) override {
    device_->ChargeOp(bytes);
    return inner_->ReadAt(offset, buf, bytes);
  }

  util::Status WriteAt(std::uint64_t offset, const void* data,
                       std::size_t bytes) override {
    device_->ChargeOp(bytes);
    return inner_->WriteAt(offset, data, bytes);
  }

  std::uint64_t size_bytes() const override { return inner_->size_bytes(); }

  util::Status Sync() override {
    // Metadata-only in the simulation (no transfer to charge), but the
    // durability request must still reach the backing store.
    return inner_->Sync();
  }

 private:
  std::unique_ptr<StorageFile> inner_;
  ThrottledDevice* device_;
};

}  // namespace

ThrottledDevice::ThrottledDevice(std::string name,
                                 std::unique_ptr<StorageDevice> inner,
                                 std::uint64_t latency_us,
                                 std::uint64_t mb_per_sec)
    : StorageDevice(std::move(name)),
      inner_(std::move(inner)),
      latency_ns_(latency_us * 1000),
      ns_per_byte_(mb_per_sec == 0
                       ? 0.0
                       : 1e9 / (static_cast<double>(mb_per_sec) * 1024.0 *
                                1024.0)) {}

util::Status ThrottledDevice::Open(const std::string& path, OpenMode mode,
                                   std::unique_ptr<StorageFile>* out) {
  std::unique_ptr<StorageFile> inner_file;
  RETURN_IF_ERROR(inner_->Open(path, mode, &inner_file));
  *out = std::make_unique<ThrottledFile>(std::move(inner_file), this);
  return util::Status::Ok();
}

util::Status ThrottledDevice::Delete(const std::string& path) {
  // Report the inner device's verdict — swallowing it here would hide a
  // stuck scratch file behind a simulated spindle.
  return inner_->Delete(path);
}

util::Status ThrottledDevice::Rename(const std::string& from,
                                     const std::string& to) {
  // Metadata-only: no simulated transfer cost, like Delete.
  return inner_->Rename(from, to);
}

util::Status ThrottledDevice::SyncDir(const std::string& dir) {
  return inner_->SyncDir(dir);
}

std::string ThrottledDevice::CreateSessionRoot() {
  return inner_->CreateSessionRoot();
}

void ThrottledDevice::RemoveTree(const std::string& root) {
  inner_->RemoveTree(root);
}

void ThrottledDevice::ChargeOp(std::size_t bytes) {
  // Sub-quantum sleeps quantize up to the scheduler slack, so the clock
  // is allowed to run ahead of real time until >= 1 ms is owed.
  constexpr std::chrono::nanoseconds kSleepChunk(1'000'000);
  const std::chrono::nanoseconds cost(
      latency_ns_ + static_cast<std::uint64_t>(
                        ns_per_byte_ * static_cast<double>(bytes)));
  const auto now = std::chrono::steady_clock::now();
  bool sleep = false;
  std::chrono::steady_clock::time_point end;
  {
    // Reserve this operation's span of the device timeline: ops on one
    // device serialize in simulated time even when several threads
    // issue them concurrently.
    std::lock_guard<std::mutex> lock(clock_mu_);
    if (busy_until_ < now) {
      // Device idle: re-anchor the timeline at real time, carrying any
      // sub-quantum cost that was charged but never slept — a consumer
      // that computes longer than the per-op cost between operations
      // must not erode the configured rate to zero.
      busy_until_ = now + unslept_;
    }
    busy_until_ += cost;
    end = busy_until_;
    sleep = end - now >= kSleepChunk;
    // A sleeping op experiences the whole backlog through `end`; a
    // skipped one leaves exactly end - now unexperienced.
    unslept_ = sleep ? std::chrono::nanoseconds{0} : end - now;
  }
  // Sleep outside every mutex — a distinct device's operation must be
  // able to run (and sleep) concurrently with this one.
  if (sleep) std::this_thread::sleep_until(end);
}

// ---- StripedDevice ---------------------------------------------------

namespace {

// The routing composite behind StripedDevice::Open. Offsets split into
// stride-sized chunks; chunk at stride index b goes to part b % D at
// inner offset (b / D) * stride + (offset % stride). BlockFile only
// ever issues stride-aligned whole-block transfers, but the general
// split keeps the mapping correct for any caller. A part-level failure
// notes the owning member on the StripedDevice (the quarantine
// redirection seam) before propagating.
class StripedFile : public StorageFile {
 public:
  StripedFile(StripedDevice* owner, std::vector<StorageDevice*> devices,
              std::vector<std::unique_ptr<StorageFile>> parts,
              std::uint64_t stride)
      : owner_(owner),
        devices_(std::move(devices)),
        parts_(std::move(parts)),
        part_extents_(parts_.size()),
        stride_(stride) {
    // Logical size at open: the furthest byte any part implies. Part d
    // holding k full strides plus `rem` trailing bytes extends the
    // striped file to stride index k * D + d (the partial stride) or
    // (k - 1) * D + d (its last full stride).
    const std::uint64_t width = parts_.size();
    std::uint64_t size = 0;
    for (std::uint64_t d = 0; d < width; ++d) {
      const std::uint64_t part_size = parts_[d]->size_bytes();
      part_extents_[d].store(part_size, std::memory_order_relaxed);
      const std::uint64_t full = part_size / stride_;
      const std::uint64_t rem = part_size % stride_;
      std::uint64_t extent = 0;
      if (rem > 0) {
        extent = (full * width + d) * stride_ + rem;
      } else if (full > 0) {
        extent = ((full - 1) * width + d) * stride_ + stride_;
      }
      size = std::max(size, extent);
    }
    size_bytes_.store(size, std::memory_order_relaxed);
  }

  util::Status ReadAt(std::uint64_t offset, void* buf,
                      std::size_t bytes) override {
    // A linear file's extent is one number, so a positioned write past
    // a hole makes every earlier byte readable (holes read as zeros).
    // Stripe parts have independent extents: block b's part may be
    // shorter than sibling parts that hold later blocks. Reproduce the
    // linear semantics exactly — reads past the LOGICAL extent are the
    // same truncation error a linear file reports, reads inside it
    // zero-fill whatever the owning part never materialized.
    if (offset + bytes > size_bytes_.load(std::memory_order_acquire)) {
      return util::Status::IoError("read(striped) hit unexpected EOF "
                                   "(truncated striped file)");
    }
    char* p = static_cast<char*>(buf);
    while (bytes > 0) {
      const std::uint64_t block = offset / stride_;
      const std::uint64_t within = offset % stride_;
      const std::size_t chunk = static_cast<std::size_t>(
          std::min<std::uint64_t>(bytes, stride_ - within));
      const std::size_t d =
          static_cast<std::size_t>(block % parts_.size());
      const std::uint64_t inner =
          (block / parts_.size()) * stride_ + within;
      const std::uint64_t extent =
          part_extents_[d].load(std::memory_order_acquire);
      const std::size_t avail = static_cast<std::size_t>(
          extent > inner ? std::min<std::uint64_t>(chunk, extent - inner)
                         : 0);
      if (avail > 0) {
        const util::Status status = parts_[d]->ReadAt(inner, p, avail);
        if (!status.ok()) {
          owner_->NoteFailedDevice(devices_[d]);
          return status;
        }
      }
      if (avail < chunk) std::memset(p + avail, 0, chunk - avail);
      offset += chunk;
      p += chunk;
      bytes -= chunk;
    }
    return util::Status::Ok();
  }

  util::Status WriteAt(std::uint64_t offset, const void* data,
                       std::size_t bytes) override {
    const char* p = static_cast<const char*>(data);
    while (bytes > 0) {
      const std::uint64_t block = offset / stride_;
      const std::uint64_t within = offset % stride_;
      const std::size_t chunk = static_cast<std::size_t>(
          std::min<std::uint64_t>(bytes, stride_ - within));
      const std::size_t d =
          static_cast<std::size_t>(block % parts_.size());
      const std::uint64_t inner =
          (block / parts_.size()) * stride_ + within;
      const util::Status status = parts_[d]->WriteAt(inner, p, chunk);
      if (!status.ok()) {
        owner_->NoteFailedDevice(devices_[d]);
        return status;
      }
      AdvanceTo(&part_extents_[d], inner + chunk);
      AdvanceTo(&size_bytes_, offset + chunk);
      offset += chunk;
      p += chunk;
      bytes -= chunk;
    }
    return util::Status::Ok();
  }

  std::uint64_t size_bytes() const override {
    return size_bytes_.load(std::memory_order_acquire);
  }

  util::Status Sync() override {
    // The striped file is durable only when every part is.
    for (std::size_t d = 0; d < parts_.size(); ++d) {
      const util::Status status = parts_[d]->Sync();
      if (!status.ok()) {
        owner_->NoteFailedDevice(devices_[d]);
        return status;
      }
    }
    return util::Status::Ok();
  }

  const std::vector<StorageDevice*>* stripe_devices() const override {
    return &devices_;
  }

 private:
  // Monotone max-advance (concurrent member workers may write distinct
  // blocks of one striped file at once).
  static void AdvanceTo(std::atomic<std::uint64_t>* extent,
                        std::uint64_t candidate) {
    std::uint64_t current = extent->load(std::memory_order_relaxed);
    while (current < candidate &&
           !extent->compare_exchange_weak(current, candidate,
                                          std::memory_order_release,
                                          std::memory_order_relaxed)) {
    }
  }

  StripedDevice* owner_;
  std::vector<StorageDevice*> devices_;
  std::vector<std::unique_ptr<StorageFile>> parts_;
  std::vector<std::atomic<std::uint64_t>> part_extents_;
  std::uint64_t stride_;
  std::atomic<std::uint64_t> size_bytes_{0};
};

}  // namespace

StripedDevice::StripedDevice(std::string name)
    : StorageDevice(std::move(name)) {}

void StripedDevice::SetGeometry(std::size_t block_size,
                                bool checksum_blocks) {
  std::lock_guard<std::mutex> lock(mu_);
  block_size_ = block_size;
  checksum_blocks_ = checksum_blocks;
}

bool StripedDevice::has_geometry() const {
  std::lock_guard<std::mutex> lock(mu_);
  return block_size_ > 0;
}

void StripedDevice::RegisterFile(const std::string& path,
                                 std::vector<StorageDevice*> devices,
                                 std::vector<std::string> parts) {
  CHECK_EQ(devices.size(), parts.size());
  CHECK_GE(devices.size(), 2u)
      << "a 1-wide stripe is round-robin in disguise; the placement "
         "layer must fall back explicitly";
  std::lock_guard<std::mutex> lock(mu_);
  files_[path] = StripeInfo{std::move(devices), std::move(parts)};
}

void StripedDevice::NoteFailedDevice(StorageDevice* device) {
  std::lock_guard<std::mutex> lock(mu_);
  if (std::find(failed_devices_.begin(), failed_devices_.end(), device) ==
      failed_devices_.end()) {
    failed_devices_.push_back(device);
  }
}

std::vector<StorageDevice*> StripedDevice::TakeFailedDevices() {
  std::lock_guard<std::mutex> lock(mu_);
  return std::move(failed_devices_);
}

util::Status StripedDevice::Open(const std::string& path, OpenMode mode,
                                 std::unique_ptr<StorageFile>* out) {
  StripeInfo info;
  std::uint64_t stride = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = files_.find(path);
    if (it == files_.end()) {
      return util::Status::IoError("open(" + path +
                                       ") failed: no such striped file on "
                                       "device " + name(),
                                   ENOENT);
    }
    info = it->second;
    CHECK_GT(block_size_, 0u)
        << "StripedDevice::Open before SetGeometry (TempFileManager::"
           "ConfigureStriping was never called)";
    // The physical block stride — BlockFile's own stride rule, so the
    // stripe boundary and the checksummed block boundary coincide.
    stride = block_size_ + (checksum_blocks_ && mode != OpenMode::kReadWrite
                                ? kChecksumTrailerBytes
                                : 0);
  }
  // kTruncateWrite creates (or truncates) every part up front, so a
  // later kRead open never trips over a part no block landed on.
  std::vector<std::unique_ptr<StorageFile>> parts(info.parts.size());
  for (std::size_t d = 0; d < info.parts.size(); ++d) {
    const util::Status status =
        info.devices[d]->Open(info.parts[d], mode, &parts[d]);
    if (!status.ok()) {
      NoteFailedDevice(info.devices[d]);
      return status;
    }
  }
  *out = std::make_unique<StripedFile>(this, std::move(info.devices),
                                       std::move(parts), stride);
  return util::Status::Ok();
}

util::Status StripedDevice::Delete(const std::string& path) {
  StripeInfo info;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = files_.find(path);
    if (it == files_.end()) return util::Status::Ok();  // missing: fine
    info = std::move(it->second);
    files_.erase(it);
  }
  // Attempt every part even after a failure; report the first error (a
  // stuck part file must not hide behind its healthy siblings).
  util::Status first;
  for (std::size_t d = 0; d < info.parts.size(); ++d) {
    const util::Status status = info.devices[d]->Delete(info.parts[d]);
    if (!status.ok() && first.ok()) first = status;
  }
  return first;
}

std::string StripedDevice::CreateSessionRoot() {
  // Not a filesystem path on purpose: the virtual namespace must never
  // match a member root's prefix (DeviceForPath checks it first) and
  // never reach the signal-cleanup registry.
  std::lock_guard<std::mutex> lock(mu_);
  return "striped://" + name() + "/s" + std::to_string(next_session_++);
}

void StripedDevice::RemoveTree(const std::string& root) {
  // Part bytes are removed by each member's own RemoveTree (the parts
  // live inside member session roots); only the registry is ours.
  const std::string prefix = root + "/";
  std::lock_guard<std::mutex> lock(mu_);
  for (auto it = files_.begin(); it != files_.end();) {
    if (it->first.compare(0, prefix.size(), prefix) == 0) {
      it = files_.erase(it);
    } else {
      ++it;
    }
  }
}

// ---- configuration helpers -------------------------------------------

namespace {

// Strict bounded integer parse: strtoull silently negates a leading
// '-' (a typo'd "-1" latency would become a multi-century ChargeOp
// sleep) and saturates on ERANGE, and an in-range huge latency
// would overflow the *1000 ns conversion back to a tiny value — so
// reject signs, range errors, and anything above `max`.
bool ParseBoundedU64(const std::string& field, std::uint64_t max,
                     std::uint64_t* out) {
  if (field.empty() || field[0] < '0' || field[0] > '9') return false;
  errno = 0;
  char* end = nullptr;
  const std::uint64_t value = std::strtoull(field.c_str(), &end, 10);
  if (errno == ERANGE || end == nullptr || *end != '\0') return false;
  if (value > max) return false;
  *out = value;
  return true;
}

// Strict probability parse for the fault rates: a plain non-negative
// double in [0, 1] ("1e-3", "0.25"). Rejects signs other than the
// exponent's, trailing junk, inf/nan.
bool ParseRate(const std::string& field, double* out) {
  if (field.empty() || field[0] == '-' || field[0] == '+') return false;
  errno = 0;
  char* end = nullptr;
  const double value = std::strtod(field.c_str(), &end);
  if (errno == ERANGE || end == nullptr || *end != '\0') return false;
  if (!(value >= 0.0 && value <= 1.0)) return false;
  *out = value;
  return true;
}

std::string ParseFaultySpec(const std::string& text, FaultSpec* out) {
  FaultSpec fault;
  const std::string rest = text.substr(6);
  if (!rest.empty()) {
    if (rest[0] != ':') {
      return "unknown --device-model \"" + text +
             "\" (want faulty[:key=value,...])";
    }
    std::size_t start = 1;
    while (start <= rest.size()) {
      const std::size_t pos = rest.find(',', start);
      const std::string item =
          rest.substr(start, pos == std::string::npos ? pos : pos - start);
      start = pos == std::string::npos ? rest.size() + 1 : pos + 1;
      const std::size_t eq = item.find('=');
      if (eq == std::string::npos || eq == 0) {
        return "bad --device-model faulty item \"" + item +
               "\" (want key=value)";
      }
      const std::string key = item.substr(0, eq);
      const std::string value = item.substr(eq + 1);
      bool ok = true;
      if (key == "seed") {
        ok = ParseBoundedU64(value, ~0ull, &fault.seed);
      } else if (key == "rate") {
        ok = ParseRate(value, &fault.read_fault_rate);
        fault.write_fault_rate = fault.read_fault_rate;
      } else if (key == "read_rate") {
        ok = ParseRate(value, &fault.read_fault_rate);
      } else if (key == "write_rate") {
        ok = ParseRate(value, &fault.write_fault_rate);
      } else if (key == "short") {
        ok = ParseRate(value, &fault.short_rate);
      } else if (key == "corrupt") {
        ok = ParseRate(value, &fault.corrupt_rate);
      } else if (key == "wfail_after") {
        ok = ParseBoundedU64(value, ~0ull, &fault.fail_writes_after);
      } else if (key == "rfail_after") {
        ok = ParseBoundedU64(value, ~0ull, &fault.fail_reads_after);
      } else if (key == "tag") {
        fault.path_tag = value;
      } else if (key == "device") {
        std::uint64_t index = 0;
        ok = ParseBoundedU64(value, 4096, &index);
        fault.device_index = static_cast<int>(index);
      } else if (key == "inner") {
        if (value == "posix") {
          fault.inner = DeviceModel::kPosix;
        } else if (value == "mem") {
          fault.inner = DeviceModel::kMem;
        } else {
          ok = false;
        }
      } else {
        return "unknown --device-model faulty key \"" + key +
               "\" (supported: seed, rate, read_rate, write_rate, short, "
               "corrupt, wfail_after, rfail_after, tag, device, inner)";
      }
      if (!ok) {
        return "bad --device-model faulty value \"" + item +
               "\" (rates in [0,1]; counts are non-negative integers; "
               "inner is posix|mem)";
      }
    }
  }
  *out = fault;
  return {};
}

}  // namespace

std::string ParseDeviceModelSpec(const std::string& text,
                                 DeviceModelSpec* out) {
  DeviceModelSpec spec;
  if (text == "posix" || text.empty()) {
    spec.model = DeviceModel::kPosix;
  } else if (text == "mem") {
    spec.model = DeviceModel::kMem;
  } else if (text.compare(0, 9, "throttled") == 0) {
    spec.model = DeviceModel::kThrottled;
    // Split the optional ":latency_us[:mb_per_s]" tail, keeping empty
    // segments: a trailing or doubled ':' is a truncated value the
    // caller meant to supply, not a request for the default.
    std::vector<std::string> fields;
    const std::string rest = text.substr(9);
    if (!rest.empty()) {
      if (rest[0] != ':') {
        return "unknown --device-model \"" + text +
               "\" (supported: posix, mem, "
               "throttled[:latency_us[:mb_per_s]], faulty[:key=value,...])";
      }
      std::size_t start = 1;
      while (true) {
        const std::size_t pos = rest.find(':', start);
        fields.push_back(rest.substr(start, pos - start));
        if (pos == std::string::npos) break;
        start = pos + 1;
      }
    }
    if (fields.size() > 2) {
      return "bad --device-model \"" + text +
             "\" (want throttled[:latency_us[:mb_per_s]])";
    }
    // One hour per block op / 1 PB/s: far beyond any sane simulation,
    // far below the uint64 wrap in the ns conversions.
    constexpr std::uint64_t kMaxLatencyUs = 3'600'000'000ull;
    constexpr std::uint64_t kMaxMbPerSec = 1'000'000'000ull;
    if (fields.size() >= 1 &&
        !ParseBoundedU64(fields[0], kMaxLatencyUs,
                         &spec.throttle_latency_us)) {
      return "bad --device-model latency \"" + fields[0] +
             "\" (want throttled[:latency_us[:mb_per_s]], latency_us <= " +
             std::to_string(kMaxLatencyUs) + ")";
    }
    if (fields.size() == 2 &&
        !ParseBoundedU64(fields[1], kMaxMbPerSec,
                         &spec.throttle_mb_per_sec)) {
      return "bad --device-model bandwidth \"" + fields[1] +
             "\" (want throttled[:latency_us[:mb_per_s]], mb_per_s <= " +
             std::to_string(kMaxMbPerSec) + ")";
    }
  } else if (text.compare(0, 6, "faulty") == 0) {
    spec.model = DeviceModel::kFaulty;
    const std::string error = ParseFaultySpec(text, &spec.fault);
    if (!error.empty()) return error;
  } else {
    return "unknown --device-model \"" + text +
           "\" (supported: posix, mem, throttled[:latency_us[:mb_per_s]], "
           "faulty[:key=value,...])";
  }
  *out = spec;
  return {};
}

bool IsRetryableIoError(const util::Status& status) {
  if (status.code() != util::StatusCode::kIoError) return false;
  switch (status.sys_errno()) {
    case EIO:
    case EINTR:
    case EAGAIN:
    case ETIMEDOUT:
      return true;
    default:
      return false;
  }
}

std::string ParsePlacementSpec(const std::string& text,
                               PlacementPolicy* out) {
  if (text == "rr") {
    *out = PlacementPolicy::kRoundRobin;
    return {};
  }
  if (text == "spread") {
    *out = PlacementPolicy::kSpreadGroup;
    return {};
  }
  if (text == "striped") {
    *out = PlacementPolicy::kStriped;
    return {};
  }
  return "bad --placement \"" + text +
         "\" (supported: rr, spread, striped)";
}

std::string ValidateScratchParents(const std::vector<std::string>& parents) {
  for (const auto& parent : parents) {
    std::error_code ec;
    if (!fs::exists(parent, ec) || ec) {
      return "scratch directory \"" + parent + "\" does not exist";
    }
    if (!fs::is_directory(parent, ec) || ec) {
      return "scratch path \"" + parent + "\" is not a directory";
    }
    if (::access(parent.c_str(), W_OK | X_OK) != 0) {
      return "scratch directory \"" + parent + "\" is not writable";
    }
  }
  return {};
}

std::string ValidateScratchConfig(const DeviceModelSpec& model,
                                  const std::vector<std::string>& parents) {
  if (model.model == DeviceModel::kMem) return {};
  // Fault injection over RAM backing is likewise directory-free: the
  // entries only set the device count.
  if (model.model == DeviceModel::kFaulty &&
      model.fault.inner == DeviceModel::kMem) {
    return {};
  }
  return ValidateScratchParents(parents);
}

void MaybeWarnSpreadBelowFanIn(TempFileManager& temp_files,
                               std::size_t group_size) {
  // Only kSpreadGroup can under-spread a merge group. kStriped covers
  // any fan-in by construction (every stream spans all devices), and
  // kRoundRobin never promised spreading.
  if (temp_files.placement() != PlacementPolicy::kSpreadGroup) return;
  // Quarantined devices no longer receive placements, so they cannot
  // contribute to spreading a merge group.
  const std::size_t num_devices = temp_files.num_available_devices();
  if (group_size <= 1 || num_devices >= group_size) return;
  if (!temp_files.ClaimSpreadWarning()) return;
  std::fprintf(
      stderr,
      "extscc: --placement=spread requested, but %zu scratch device%s "
      "cannot hold the %zu runs of one merge group on distinct devices "
      "(need devices >= fan-in); runs will share devices\n",
      num_devices, num_devices == 1 ? "" : "s", group_size);
}

}  // namespace extscc::io
