// Software CRC32 (reflected, polynomial 0xEDB88320 — the zlib/ethernet
// CRC) for the optional per-block checksum trailers
// (IoContextOptions::checksum_blocks). A plain table-driven
// byte-at-a-time implementation: the checksum path is off by default
// and guards scratch blocks whose cost is dominated by the device
// transfer, so portability beats a carry-less-multiply fast path here.
#ifndef EXTSCC_IO_CHECKSUM_H_
#define EXTSCC_IO_CHECKSUM_H_

#include <array>
#include <cstddef>
#include <cstdint>

namespace extscc::io {

namespace internal {

inline const std::array<std::uint32_t, 256>& Crc32Table() {
  static const std::array<std::uint32_t, 256> table = [] {
    std::array<std::uint32_t, 256> t{};
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t crc = i;
      for (int bit = 0; bit < 8; ++bit) {
        crc = (crc >> 1) ^ ((crc & 1u) ? 0xEDB88320u : 0u);
      }
      t[i] = crc;
    }
    return t;
  }();
  return table;
}

}  // namespace internal

// CRC32 of `n` bytes at `data`.
inline std::uint32_t Crc32(const void* data, std::size_t n) {
  const auto& table = internal::Crc32Table();
  const auto* p = static_cast<const unsigned char*>(data);
  std::uint32_t crc = 0xFFFFFFFFu;
  for (std::size_t i = 0; i < n; ++i) {
    crc = (crc >> 8) ^ table[(crc ^ p[i]) & 0xFFu];
  }
  return crc ^ 0xFFFFFFFFu;
}

// Trailer geometry of a checksummed block: 4 little-endian CRC bytes
// appended after the payload, so a block's physical stride is
// block_size + kChecksumTrailerBytes (see docs/robustness.md).
constexpr std::size_t kChecksumTrailerBytes = 4;

inline void EncodeChecksumTrailer(std::uint32_t crc, void* out4) {
  auto* p = static_cast<unsigned char*>(out4);
  p[0] = static_cast<unsigned char>(crc);
  p[1] = static_cast<unsigned char>(crc >> 8);
  p[2] = static_cast<unsigned char>(crc >> 16);
  p[3] = static_cast<unsigned char>(crc >> 24);
}

inline std::uint32_t DecodeChecksumTrailer(const void* in4) {
  const auto* p = static_cast<const unsigned char*>(in4);
  return static_cast<std::uint32_t>(p[0]) |
         (static_cast<std::uint32_t>(p[1]) << 8) |
         (static_cast<std::uint32_t>(p[2]) << 16) |
         (static_cast<std::uint32_t>(p[3]) << 24);
}

}  // namespace extscc::io

#endif  // EXTSCC_IO_CHECKSUM_H_
