#include "util/status.h"

namespace extscc::util {

const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kIoError:
      return "IoError";
    case StatusCode::kResourceExhausted:
      return "ResourceExhausted";
    case StatusCode::kFailedPrecondition:
      return "FailedPrecondition";
    case StatusCode::kCorruption:
      return "Corruption";
    case StatusCode::kUnimplemented:
      return "Unimplemented";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeName(code_);
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

}  // namespace extscc::util
