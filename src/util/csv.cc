#include "util/csv.h"

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "util/logging.h"

namespace extscc::util {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {}

void Table::AddRow(std::vector<std::string> row) {
  CHECK_EQ(row.size(), header_.size());
  rows_.push_back(std::move(row));
}

std::string Table::ToCsv() const {
  std::ostringstream out;
  for (std::size_t i = 0; i < header_.size(); ++i) {
    if (i) out << ',';
    out << header_[i];
  }
  out << '\n';
  for (const auto& row : rows_) {
    for (std::size_t i = 0; i < row.size(); ++i) {
      if (i) out << ',';
      out << row[i];
    }
    out << '\n';
  }
  return out.str();
}

std::string Table::ToAligned() const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t i = 0; i < header_.size(); ++i) widths[i] = header_[i].size();
  for (const auto& row : rows_) {
    for (std::size_t i = 0; i < row.size(); ++i) {
      widths[i] = std::max(widths[i], row[i].size());
    }
  }
  std::ostringstream out;
  auto emit_row = [&](const std::vector<std::string>& row) {
    for (std::size_t i = 0; i < row.size(); ++i) {
      out << "  " << row[i]
          << std::string(widths[i] - row[i].size(), ' ');
    }
    out << '\n';
  };
  emit_row(header_);
  std::size_t total = 2 * header_.size();
  for (std::size_t w : widths) total += w;
  out << std::string(total, '-') << '\n';
  for (const auto& row : rows_) emit_row(row);
  return out.str();
}

bool Table::WriteCsvFile(const std::string& path) const {
  std::ofstream out(path);
  if (!out) return false;
  out << ToCsv();
  return static_cast<bool>(out);
}

std::string FormatDouble(double value, int digits) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", digits, value);
  return buf;
}

std::string FormatCount(std::uint64_t value) {
  std::string digits = std::to_string(value);
  std::string out;
  out.reserve(digits.size() + digits.size() / 3);
  int since_sep = static_cast<int>(digits.size() % 3);
  if (since_sep == 0) since_sep = 3;
  for (char c : digits) {
    if (since_sep == 0) {
      out += ',';
      since_sep = 3;
    }
    out += c;
    --since_sep;
  }
  return out;
}

std::vector<std::string> SplitCommaList(const std::string& text) {
  std::vector<std::string> out;
  std::string current;
  for (char c : text) {
    if (c == ',') {
      if (!current.empty()) out.push_back(current);
      current.clear();
    } else {
      current.push_back(c);
    }
  }
  if (!current.empty()) out.push_back(current);
  return out;
}

}  // namespace extscc::util
