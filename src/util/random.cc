#include "util/random.h"

#include <cmath>

#include "util/logging.h"

namespace extscc::util {

namespace {

std::uint64_t SplitMix64(std::uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t Rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t s = seed;
  for (auto& word : state_) word = SplitMix64(s);
}

std::uint64_t Rng::Next() {
  const std::uint64_t result = Rotl(state_[1] * 5, 7) * 9;
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = Rotl(state_[3], 45);
  return result;
}

std::uint64_t Rng::Uniform(std::uint64_t bound) {
  CHECK_GT(bound, 0u);
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t threshold = -bound % bound;
  while (true) {
    const std::uint64_t r = Next();
    if (r >= threshold) return r % bound;
  }
}

std::uint64_t Rng::UniformRange(std::uint64_t lo, std::uint64_t hi) {
  CHECK_LE(lo, hi);
  return lo + Uniform(hi - lo + 1);
}

double Rng::NextDouble() {
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

bool Rng::Bernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return NextDouble() < p;
}

std::uint64_t Rng::Zipf(std::uint64_t n, double theta) {
  CHECK_GT(n, 0u);
  if (n == 1) return 0;
  // Inverse-CDF approximation: integral of x^-theta.
  const double u = NextDouble();
  if (theta == 1.0) {
    const double r = std::pow(static_cast<double>(n), u);
    const auto idx = static_cast<std::uint64_t>(r) - 1;
    return idx < n ? idx : n - 1;
  }
  const double exp = 1.0 - theta;
  const double max_cdf = std::pow(static_cast<double>(n), exp);
  const double r = std::pow(u * (max_cdf - 1.0) + 1.0, 1.0 / exp);
  auto idx = static_cast<std::uint64_t>(r);
  if (idx >= 1) idx -= 1;
  return idx < n ? idx : n - 1;
}

}  // namespace extscc::util
