#include "util/logging.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>

namespace extscc::util {

namespace {

std::atomic<int> g_min_severity{static_cast<int>(LogSeverity::kInfo)};

const char* SeverityName(LogSeverity severity) {
  switch (severity) {
    case LogSeverity::kDebug:
      return "DEBUG";
    case LogSeverity::kInfo:
      return "INFO";
    case LogSeverity::kWarning:
      return "WARN";
    case LogSeverity::kError:
      return "ERROR";
    case LogSeverity::kFatal:
      return "FATAL";
  }
  return "?";
}

}  // namespace

void SetMinLogSeverity(LogSeverity severity) {
  g_min_severity.store(static_cast<int>(severity), std::memory_order_relaxed);
}

LogSeverity MinLogSeverity() {
  return static_cast<LogSeverity>(
      g_min_severity.load(std::memory_order_relaxed));
}

namespace internal_logging {

LogMessage::LogMessage(LogSeverity severity, const char* file, int line)
    : severity_(severity) {
  stream_ << "[" << SeverityName(severity) << " " << file << ":" << line
          << "] ";
}

LogMessage::~LogMessage() {
  const bool emit = severity_ >= MinLogSeverity() ||
                    severity_ == LogSeverity::kFatal;
  if (emit) {
    std::fprintf(stderr, "%s\n", stream_.str().c_str());
    std::fflush(stderr);
  }
  if (severity_ == LogSeverity::kFatal) {
    std::abort();
  }
}

}  // namespace internal_logging

}  // namespace extscc::util
