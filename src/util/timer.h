// Wall-clock stopwatch used by the benchmark harnesses.
#ifndef EXTSCC_UTIL_TIMER_H_
#define EXTSCC_UTIL_TIMER_H_

#include <chrono>
#include <cstdint>

namespace extscc::util {

class Timer {
 public:
  Timer() { Restart(); }

  void Restart();

  // Seconds elapsed since construction or the last Restart().
  double ElapsedSeconds() const;
  std::int64_t ElapsedMicros() const;

 private:
  std::chrono::steady_clock::time_point start_;
};

}  // namespace extscc::util

#endif  // EXTSCC_UTIL_TIMER_H_
