// Minimal logging and invariant-checking facility.
//
// The library does not use exceptions (see DESIGN.md §6). Internal
// invariants and unrecoverable environment failures (e.g. scratch-file
// write errors) abort through the CHECK family below; fallible public
// operations return util::Status instead (see util/status.h).
#ifndef EXTSCC_UTIL_LOGGING_H_
#define EXTSCC_UTIL_LOGGING_H_

#include <cstdint>
#include <sstream>
#include <string>

namespace extscc::util {

enum class LogSeverity : int {
  kDebug = 0,
  kInfo = 1,
  kWarning = 2,
  kError = 3,
  kFatal = 4,
};

// Global minimum severity that is actually printed. Defaults to kInfo.
// Fatal messages are always printed (and abort).
void SetMinLogSeverity(LogSeverity severity);
LogSeverity MinLogSeverity();

namespace internal_logging {

// Accumulates one log statement and emits it on destruction.
// A kFatal message aborts the process after emitting.
class LogMessage {
 public:
  LogMessage(LogSeverity severity, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  std::ostream& stream() { return stream_; }

 private:
  LogSeverity severity_;
  std::ostringstream stream_;
};

// Swallows the streamed expression when the statement is compiled out.
class NullStream {
 public:
  template <typename T>
  NullStream& operator<<(const T&) {
    return *this;
  }
};

}  // namespace internal_logging

}  // namespace extscc::util

#define EXTSCC_LOG_INTERNAL(severity)                                       \
  ::extscc::util::internal_logging::LogMessage(                             \
      ::extscc::util::LogSeverity::severity, __FILE__, __LINE__)            \
      .stream()

#define LOG_DEBUG EXTSCC_LOG_INTERNAL(kDebug)
#define LOG_INFO EXTSCC_LOG_INTERNAL(kInfo)
#define LOG_WARNING EXTSCC_LOG_INTERNAL(kWarning)
#define LOG_ERROR EXTSCC_LOG_INTERNAL(kError)
#define LOG_FATAL EXTSCC_LOG_INTERNAL(kFatal)

// CHECK aborts when `condition` is false. Works in all build types; the
// library's correctness arguments (vertex-cover properties, sorted-stream
// preconditions) are enforced with these.
#define CHECK(condition)                                      \
  if (!(condition)) LOG_FATAL << "Check failed: " #condition " "

#define CHECK_OP_IMPL(lhs, rhs, op)                                         \
  if (!((lhs)op(rhs)))                                                      \
  LOG_FATAL << "Check failed: " #lhs " " #op " " #rhs " (" << (lhs) << " vs " \
            << (rhs) << ") "

#define CHECK_EQ(lhs, rhs) CHECK_OP_IMPL(lhs, rhs, ==)
#define CHECK_NE(lhs, rhs) CHECK_OP_IMPL(lhs, rhs, !=)
#define CHECK_LT(lhs, rhs) CHECK_OP_IMPL(lhs, rhs, <)
#define CHECK_LE(lhs, rhs) CHECK_OP_IMPL(lhs, rhs, <=)
#define CHECK_GT(lhs, rhs) CHECK_OP_IMPL(lhs, rhs, >)
#define CHECK_GE(lhs, rhs) CHECK_OP_IMPL(lhs, rhs, >=)

// Debug-only checks for hot loops.
#ifndef NDEBUG
#define DCHECK(condition) CHECK(condition)
#define DCHECK_EQ(lhs, rhs) CHECK_EQ(lhs, rhs)
#define DCHECK_NE(lhs, rhs) CHECK_NE(lhs, rhs)
#define DCHECK_LT(lhs, rhs) CHECK_LT(lhs, rhs)
#define DCHECK_LE(lhs, rhs) CHECK_LE(lhs, rhs)
#define DCHECK_GT(lhs, rhs) CHECK_GT(lhs, rhs)
#define DCHECK_GE(lhs, rhs) CHECK_GE(lhs, rhs)
#else
#define DCHECK(condition) \
  if (false) ::extscc::util::internal_logging::NullStream()
#define DCHECK_EQ(lhs, rhs) DCHECK((lhs) == (rhs))
#define DCHECK_NE(lhs, rhs) DCHECK((lhs) != (rhs))
#define DCHECK_LT(lhs, rhs) DCHECK((lhs) < (rhs))
#define DCHECK_LE(lhs, rhs) DCHECK((lhs) <= (rhs))
#define DCHECK_GT(lhs, rhs) DCHECK((lhs) > (rhs))
#define DCHECK_GE(lhs, rhs) DCHECK((lhs) >= (rhs))
#endif

#endif  // EXTSCC_UTIL_LOGGING_H_
