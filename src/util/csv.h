// Tiny CSV / aligned-table emitters used by the benchmark harnesses to
// print paper-style result rows and to dump machine-readable series.
#ifndef EXTSCC_UTIL_CSV_H_
#define EXTSCC_UTIL_CSV_H_

#include <string>
#include <vector>

namespace extscc::util {

// Collects rows of string cells and renders either CSV or an aligned
// ASCII table (the format every bench binary prints).
class Table {
 public:
  explicit Table(std::vector<std::string> header);

  void AddRow(std::vector<std::string> row);

  std::string ToCsv() const;
  std::string ToAligned() const;

  // Writes ToCsv() to `path`. Returns false on I/O failure.
  bool WriteCsvFile(const std::string& path) const;

  std::size_t num_rows() const { return rows_.size(); }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

// Formats a double with `digits` fractional digits.
std::string FormatDouble(double value, int digits);

// 12345678 -> "12,345,678" (easier to eyeball I/O counts).
std::string FormatCount(std::uint64_t value);

// "a,b,,c" -> {"a", "b", "c"}: comma-separated list flag values
// (--scratch-dirs in the benches and extscc_tool); empty segments drop.
std::vector<std::string> SplitCommaList(const std::string& text);

}  // namespace extscc::util

#endif  // EXTSCC_UTIL_CSV_H_
