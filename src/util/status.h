// Error propagation for fallible public operations (file loading, driver
// entry points). Modeled after the Status/Result idiom used by
// LevelDB/RocksDB/Arrow; the library does not throw.
#ifndef EXTSCC_UTIL_STATUS_H_
#define EXTSCC_UTIL_STATUS_H_

#include <optional>
#include <string>
#include <utility>

#include "util/logging.h"

namespace extscc::util {

enum class StatusCode : int {
  kOk = 0,
  kInvalidArgument = 1,
  kNotFound = 2,
  kIoError = 3,
  kResourceExhausted = 4,   // e.g. DFS-SCC exceeded its I/O budget ("INF")
  kFailedPrecondition = 5,  // e.g. EM-SCC stalled without progress
  kCorruption = 6,
  kUnimplemented = 7,
};

// Human-readable name for a status code ("OK", "IoError", ...).
const char* StatusCodeName(StatusCode code);

class Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status IoError(std::string msg) {
    return Status(StatusCode::kIoError, std::move(msg));
  }
  // errno-carrying variant for device-boundary failures: the code stays
  // kIoError, but sys_errno() lets the retry policy distinguish
  // transient faults (EIO, EINTR, EAGAIN) from persistent ones (ENOSPC)
  // without parsing the message.
  static Status IoError(std::string msg, int sys_errno) {
    Status s(StatusCode::kIoError, std::move(msg));
    s.sys_errno_ = sys_errno;
    return s;
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status Corruption(std::string msg) {
    return Status(StatusCode::kCorruption, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }
  // The OS errno behind a kIoError, or 0 when none was captured (other
  // codes, truncated transfers, checksum mismatches).
  int sys_errno() const { return sys_errno_; }

  // "OK" or "<CodeName>: <message>".
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
  int sys_errno_ = 0;
};

// Result<T> is a Status or a value. Access to the value CHECKs ok().
template <typename T>
class Result {
 public:
  // Intentionally implicit so functions can `return value;` / `return status;`
  // like absl::StatusOr.
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)
  Result(Status status) : status_(std::move(status)) {  // NOLINT
    CHECK(!status_.ok()) << "Result constructed from OK status without value";
  }

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    CHECK(ok()) << status_.ToString();
    return *value_;
  }
  T& value() & {
    CHECK(ok()) << status_.ToString();
    return *value_;
  }
  T&& value() && {
    CHECK(ok()) << status_.ToString();
    return *std::move(value_);
  }

 private:
  Status status_;
  std::optional<T> value_;
};

}  // namespace extscc::util

// Propagates a non-OK status out of the enclosing function.
#define RETURN_IF_ERROR(expr)                 \
  do {                                        \
    ::extscc::util::Status _st = (expr);      \
    if (!_st.ok()) return _st;                \
  } while (false)

#endif  // EXTSCC_UTIL_STATUS_H_
