// Deterministic, fast pseudo-random generator used by the workload
// generators and the property-test suites. SplitMix64 seeding +
// xoshiro256** core: reproducible across platforms, unlike
// std::default_random_engine.
#ifndef EXTSCC_UTIL_RANDOM_H_
#define EXTSCC_UTIL_RANDOM_H_

#include <cstddef>
#include <cstdint>
#include <utility>

namespace extscc::util {

class Rng {
 public:
  explicit Rng(std::uint64_t seed);

  // Uniform over the full 64-bit range.
  std::uint64_t Next();

  // Uniform in [0, bound). bound must be > 0. Uses rejection sampling, so
  // the distribution is exactly uniform.
  std::uint64_t Uniform(std::uint64_t bound);

  // Uniform in [lo, hi] inclusive. Requires lo <= hi.
  std::uint64_t UniformRange(std::uint64_t lo, std::uint64_t hi);

  // Uniform real in [0, 1).
  double NextDouble();

  // True with probability p (clamped to [0, 1]).
  bool Bernoulli(double p);

  // Zipf-like sample in [0, n): probability of rank r proportional to
  // 1 / (r + 1)^theta. Used by the web-graph generator's preferential
  // attachment fallback. Uses the standard inverse-CDF approximation.
  std::uint64_t Zipf(std::uint64_t n, double theta);

  // Fisher-Yates shuffle of a random-access container in place.
  template <typename Container>
  void Shuffle(Container* items) {
    const std::size_t n = items->size();
    for (std::size_t i = n; i > 1; --i) {
      const std::size_t j = static_cast<std::size_t>(Uniform(i));
      using std::swap;
      swap((*items)[i - 1], (*items)[j]);
    }
  }

 private:
  std::uint64_t state_[4];
};

}  // namespace extscc::util

#endif  // EXTSCC_UTIL_RANDOM_H_
