#include "util/timer.h"

namespace extscc::util {

void Timer::Restart() { start_ = std::chrono::steady_clock::now(); }

double Timer::ElapsedSeconds() const {
  return static_cast<double>(ElapsedMicros()) * 1e-6;
}

std::int64_t Timer::ElapsedMicros() const {
  const auto now = std::chrono::steady_clock::now();
  return std::chrono::duration_cast<std::chrono::microseconds>(now - start_)
      .count();
}

}  // namespace extscc::util
