#include "core/checkpoint.h"

#include <cstring>
#include <memory>
#include <mutex>
#include <utility>

#include "io/checksum.h"
#include "io/crash_point.h"
#include "io/durability.h"
#include "io/storage.h"

namespace extscc::core {

namespace {

constexpr char kManifestMagic[8] = {'E', 'X', 'S', 'C', 'C', 'K', 'P', 'T'};
constexpr std::uint32_t kManifestVersion = 1;

void AppendBytes(std::vector<unsigned char>* out, const void* p,
                 std::size_t n) {
  const auto* bytes = static_cast<const unsigned char*>(p);
  out->insert(out->end(), bytes, bytes + n);
}

template <typename T>
void AppendPod(std::vector<unsigned char>* out, const T& value) {
  static_assert(std::is_trivially_copyable_v<T>);
  AppendBytes(out, &value, sizeof(value));
}

// Bounds-checked sequential reader over the manifest blob; any overrun
// flips ok to false and every later read is a no-op, so the caller
// checks once at the end.
struct Cursor {
  const unsigned char* p;
  std::size_t left;
  bool ok = true;

  bool Take(void* dst, std::size_t n) {
    if (!ok || n > left) {
      ok = false;
      return false;
    }
    std::memcpy(dst, p, n);
    p += n;
    left -= n;
    return true;
  }
  template <typename T>
  bool Pod(T* dst) {
    static_assert(std::is_trivially_copyable_v<T>);
    return Take(dst, sizeof(T));
  }
};

// FNV-1a, the same construction the artifact layer uses for content
// hashes — cheap, stable across platforms, and good enough to make
// accidental checkpoint/input mismatches vanishingly unlikely.
struct Fnv {
  std::uint64_t h = 1469598103934665603ull;
  void Mix(const void* p, std::size_t n) {
    const auto* bytes = static_cast<const unsigned char*>(p);
    for (std::size_t i = 0; i < n; ++i) {
      h ^= bytes[i];
      h *= 1099511628211ull;
    }
  }
  template <typename T>
  void Pod(const T& v) {
    static_assert(std::is_trivially_copyable_v<T>);
    Mix(&v, sizeof(v));
  }
  void Str(const std::string& s) {
    const std::uint64_t n = s.size();
    Pod(n);
    Mix(s.data(), s.size());
  }
};

}  // namespace

std::uint64_t SolveDataVersion(const graph::DiskGraph& input,
                               const ExtSccOptions& options,
                               std::size_t block_size) {
  // Deliberately NOT the input paths: the driver imports the edge list
  // into per-session scratch, so paths differ between the crashed run
  // and its resume even though the graph is the same. The shape hash
  // plus the manifest's exact-size file validation is what binds a
  // checkpoint to its solve.
  Fnv f;
  f.Pod(input.num_nodes);
  f.Pod(input.num_edges);
  f.Pod(static_cast<std::uint8_t>(options.type1_reduction));
  f.Pod(static_cast<std::uint8_t>(options.type2_reduction));
  f.Pod(static_cast<std::uint8_t>(options.refined_order));
  f.Pod(static_cast<std::uint8_t>(options.dedup_parallel_edges));
  f.Pod(static_cast<std::uint32_t>(options.semi_backend));
  f.Pod(static_cast<std::uint64_t>(block_size));
  return f.h;
}

CheckpointSession::CheckpointSession(io::IoContext* context, std::string dir,
                                     std::uint64_t data_version)
    : context_(context), dir_(std::move(dir)), data_version_(data_version) {}

std::string CheckpointSession::ManifestPath() const {
  return dir_ + "/MANIFEST";
}

std::string CheckpointSession::LevelPath(std::size_t level,
                                         const char* kind) const {
  return dir_ + "/l" + std::to_string(level) + "." + kind;
}

std::string CheckpointSession::SemiSccPath() const {
  return dir_ + "/scc_semi";
}

std::string CheckpointSession::ExpandSccPath(std::size_t k) const {
  return dir_ + "/scc_x" + std::to_string(k);
}

std::vector<std::string> CheckpointSession::RequiredFiles(
    const ResumeState& state) const {
  std::vector<std::string> names;
  // Expansion consumes levels outermost-last: after expand_done
  // expansions, levels [levels_done - expand_done, levels_done) are
  // folded into the labels and their files are no longer needed.
  const std::uint64_t levels_needed =
      state.phase == kExpanding ? state.levels_done - state.expand_done
                                : state.levels_done;
  for (std::uint64_t i = 0; i < levels_needed; ++i) {
    const std::string prefix = "l" + std::to_string(i);
    names.push_back(prefix + ".ein");
    names.push_back(prefix + ".eout");
    names.push_back(prefix + ".cover");
    names.push_back(prefix + ".removed");
  }
  if (state.phase == kContracting && state.levels_done > 0) {
    // Contraction (or the base case) still consumes G_L's edges.
    names.push_back("l" + std::to_string(state.levels_done - 1) + ".enext");
  }
  if (state.phase == kSemiDone) {
    names.push_back("scc_semi");
  } else if (state.phase == kExpanding) {
    names.push_back(state.expand_done == 0
                        ? std::string("scc_semi")
                        : "scc_x" + std::to_string(state.expand_done - 1));
  }
  return names;
}

util::Result<CheckpointSession::ResumeState> CheckpointSession::Load() {
  io::StorageDevice* device = context_->ResolveDevice(ManifestPath());
  std::unique_ptr<io::StorageFile> file;
  util::Status open_status = device->Open(ManifestPath(), io::OpenMode::kRead,
                                          &file);
  if (!open_status.ok()) {
    if (open_status.sys_errno() == ENOENT) {
      return util::Status::NotFound("no checkpoint manifest in " + dir_);
    }
    return open_status;
  }
  const std::uint64_t size = file->size_bytes();
  if (size < sizeof(kManifestMagic) + 2 * sizeof(std::uint32_t) +
                 sizeof(std::uint32_t)) {
    return util::Status::Corruption("checkpoint manifest too short: " +
                                    ManifestPath());
  }
  std::vector<unsigned char> blob(static_cast<std::size_t>(size));
  RETURN_IF_ERROR(file->ReadAt(0, blob.data(), blob.size()));
  file.reset();
  {
    std::lock_guard<std::mutex> lock(context_->stats_mutex());
    context_->stats().checkpoint_reads += 1;
    device->stats().checkpoint_reads += 1;
  }

  if (std::memcmp(blob.data(), kManifestMagic, sizeof(kManifestMagic)) != 0) {
    return util::Status::Corruption("not an extscc checkpoint manifest: " +
                                    ManifestPath());
  }
  std::uint32_t stored_crc;
  std::memcpy(&stored_crc, blob.data() + blob.size() - sizeof(stored_crc),
              sizeof(stored_crc));
  if (io::Crc32(blob.data(), blob.size() - sizeof(stored_crc)) != stored_crc) {
    return util::Status::Corruption("checkpoint manifest checksum mismatch: " +
                                    ManifestPath());
  }

  Cursor cur{blob.data() + sizeof(kManifestMagic),
             blob.size() - sizeof(kManifestMagic) - sizeof(stored_crc)};
  std::uint32_t version = 0;
  cur.Pod(&version);
  if (cur.ok && version != kManifestVersion) {
    return util::Status::InvalidArgument(
        "unsupported checkpoint manifest version " + std::to_string(version));
  }
  ResumeState state;
  cur.Pod(&state.phase);
  cur.Pod(&state.data_version);
  cur.Pod(&state.block_size);
  cur.Pod(&state.levels_done);
  cur.Pod(&state.expand_done);
  cur.Pod(&state.next_scc_id);
  cur.Pod(&state.semi_nodes);
  cur.Pod(&state.current_num_nodes);
  cur.Pod(&state.current_num_edges);
  cur.Pod(&state.contraction_seconds);
  cur.Pod(&state.semi_seconds);
  std::uint64_t num_iters = 0;
  cur.Pod(&num_iters);
  if (cur.ok && num_iters * sizeof(ContractionIterationStats) <= cur.left) {
    state.iterations.resize(static_cast<std::size_t>(num_iters));
    cur.Take(state.iterations.data(),
             num_iters * sizeof(ContractionIterationStats));
  } else {
    cur.ok = false;
  }
  std::uint64_t num_files = 0;
  cur.Pod(&num_files);
  std::vector<std::pair<std::string, std::uint64_t>> files;
  for (std::uint64_t i = 0; cur.ok && i < num_files; ++i) {
    std::uint32_t len = 0;
    cur.Pod(&len);
    if (!cur.ok || len > cur.left) {
      cur.ok = false;
      break;
    }
    std::string name(len, '\0');
    cur.Take(name.data(), len);
    std::uint64_t file_size = 0;
    cur.Pod(&file_size);
    files.emplace_back(std::move(name), file_size);
  }
  if (!cur.ok) {
    return util::Status::Corruption("checkpoint manifest truncated: " +
                                    ManifestPath());
  }

  // The manifest is intact; now hold it to its word. Every referenced
  // file must exist at exactly its recorded size — anything else means
  // the directory was tampered with or partially cleaned, and resuming
  // over it would corrupt the solve.
  for (const auto& [name, expected_size] : files) {
    const std::string path = dir_ + "/" + name;
    std::unique_ptr<io::StorageFile> f;
    util::Status st = device->Open(path, io::OpenMode::kRead, &f);
    if (!st.ok()) {
      return util::Status::FailedPrecondition(
          "checkpoint manifest references missing file " + path + ": " +
          st.message());
    }
    if (f->size_bytes() != expected_size) {
      return util::Status::FailedPrecondition(
          "checkpoint file " + path + " is " +
          std::to_string(f->size_bytes()) + " bytes, manifest recorded " +
          std::to_string(expected_size));
    }
  }
  return state;
}

util::Status CheckpointSession::Save(const ResumeState& state,
                                     const std::vector<std::string>& new_files) {
  io::StorageDevice* device = context_->ResolveDevice(ManifestPath());

  // 1. Harden the data files completed since the last Save. The
  // manifest must never name bytes that are still only in the page
  // cache — a power cut would then resume from files the manifest
  // vouches for but the disk never received.
  for (const std::string& path : new_files) {
    std::unique_ptr<io::StorageFile> f;
    RETURN_IF_ERROR(device->Open(path, io::OpenMode::kReadWrite, &f));
    io::CrashPointHit("ckpt.file.sync");
    RETURN_IF_ERROR(f->Sync());
    std::lock_guard<std::mutex> lock(context_->stats_mutex());
    context_->stats().sync_calls += 1;
    device->stats().sync_calls += 1;
  }

  // 2. Serialize, recording the exact size of every file a resume will
  // trust.
  std::vector<unsigned char> blob;
  AppendBytes(&blob, kManifestMagic, sizeof(kManifestMagic));
  AppendPod(&blob, kManifestVersion);
  AppendPod(&blob, state.phase);
  AppendPod(&blob, data_version_);
  AppendPod(&blob, state.block_size);
  AppendPod(&blob, state.levels_done);
  AppendPod(&blob, state.expand_done);
  AppendPod(&blob, state.next_scc_id);
  AppendPod(&blob, state.semi_nodes);
  AppendPod(&blob, state.current_num_nodes);
  AppendPod(&blob, state.current_num_edges);
  AppendPod(&blob, state.contraction_seconds);
  AppendPod(&blob, state.semi_seconds);
  AppendPod(&blob, static_cast<std::uint64_t>(state.iterations.size()));
  for (const ContractionIterationStats& iter : state.iterations) {
    AppendPod(&blob, iter);
  }
  const std::vector<std::string> names = RequiredFiles(state);
  AppendPod(&blob, static_cast<std::uint64_t>(names.size()));
  for (const std::string& name : names) {
    const std::string path = dir_ + "/" + name;
    std::unique_ptr<io::StorageFile> f;
    RETURN_IF_ERROR(device->Open(path, io::OpenMode::kRead, &f));
    AppendPod(&blob, static_cast<std::uint32_t>(name.size()));
    AppendBytes(&blob, name.data(), name.size());
    AppendPod(&blob, f->size_bytes());
  }
  AppendPod(&blob, io::Crc32(blob.data(), blob.size()));

  // 3. Durable publish: tmp, fsync, rename, fsync parent — identical
  // protocol to the serve artifact, identical crash-window guarantees.
  const std::string tmp = ManifestPath() + ".tmp";
  {
    std::unique_ptr<io::StorageFile> f;
    io::CrashPointHit("ckpt.manifest.write");
    RETURN_IF_ERROR(device->Open(tmp, io::OpenMode::kTruncateWrite, &f));
    RETURN_IF_ERROR(f->WriteAt(0, blob.data(), blob.size()));
    io::CrashPointHit("ckpt.manifest.sync");
    RETURN_IF_ERROR(f->Sync());
  }
  {
    std::lock_guard<std::mutex> lock(context_->stats_mutex());
    context_->stats().checkpoint_writes += 1;
    context_->stats().sync_calls += 1;
    device->stats().checkpoint_writes += 1;
    device->stats().sync_calls += 1;
  }
  return io::DurableRename(context_, tmp, ManifestPath());
}

void CheckpointSession::Finish(std::size_t num_levels) {
  io::StorageDevice* device = context_->ResolveDevice(ManifestPath());
  // Manifest first: once it is gone, a crash mid-cleanup leaves only
  // orphan data files, which the next run overwrites (or fsck reports),
  // never a manifest naming files that no longer exist.
  (void)device->Delete(ManifestPath());
  (void)device->Delete(ManifestPath() + ".tmp");
  (void)device->SyncDir(dir_);
  for (std::size_t i = 0; i < num_levels; ++i) {
    (void)device->Delete(LevelPath(i, "ein"));
    (void)device->Delete(LevelPath(i, "eout"));
    (void)device->Delete(LevelPath(i, "cover"));
    (void)device->Delete(LevelPath(i, "removed"));
    (void)device->Delete(LevelPath(i, "enext"));
  }
  (void)device->Delete(SemiSccPath());
  for (std::size_t k = 0; k < num_levels; ++k) {
    (void)device->Delete(ExpandSccPath(k));
  }
}

}  // namespace extscc::core
