// Get-E (Algorithm 4): builds the edge set E_{i+1} of the contracted
// graph from G_i and the cover V_{i+1}, preserving SCCs (Lemma 5.3):
//
//   E_pre — edges of E_i with both endpoints in V_{i+1};
//   E_add — for every removed node v and every (v_in, v, v_out) wedge,
//           the shortcut edge (v_in, v_out), which keeps every path
//           through v alive among the surviving nodes.
//
// Pipeline (sorts + sequential scans only; same shape as Alg. 4, with the
// in/out sides arranged so that every endpoint-membership test is an
// explicit semijoin — this also covers Op-mode Type-1 removals, whose
// incident edges are dropped rather than rewired):
//   1. From E_out ✶ V_{i+1}: split into edges with tail in the cover
//      (sorted by tail). Of those, a second semijoin by head yields
//      E_pre (head in cover too) and E_del_in = in-edges of removed
//      nodes, sorted by removed head (Alg. 4 lines 3, 9-11).
//   2. From E_in ✶ V_{i+1}: edges with head in the cover, re-sorted by
//      tail, then filtered to removed tails: E_del_out = out-edges of
//      removed nodes, sorted by removed tail (the nbr_out augmentation of
//      line 4, materialized as its own sorted stream).
//   3. Merge E_del_in and E_del_out by removed node; per node, the cross
//      product of in-tails x out-heads is appended to E_add
//      (lines 5-8). The out-list is buffered in memory; Theorem 5.3
//      bounds every removed node's degree by sqrt(2|E_i|).
//   4. E_{i+1} = E_pre ∪ E_add (line 12). Op mode drops self-loop
//      shortcuts here; parallel edges are removed lazily by the next
//      iteration's E_in/E_out sorts (§VII edge reduction).
#ifndef EXTSCC_CORE_CONTRACTION_H_
#define EXTSCC_CORE_CONTRACTION_H_

#include <cstdint>
#include <string>

#include "io/io_context.h"

namespace extscc::core {

struct ContractionOptions {
  // Self-loop shortcuts (u, u) from the cross product are ALWAYS
  // dropped: a self-loop forces its node into every later cover
  // (recoverability would need v ∈ nbr(v) ⊆ V_{i+1}), which breaks the
  // strict shrinkage of Lemma 5.2. Example 5.1 shows the paper's base
  // algorithm removing "self circles" as well.

  // Where to write E_{i+1}. Empty: a fresh scratch path (the default).
  // A checkpointed solve points this at its checkpoint directory so the
  // file survives the session — same writes either way, so the model
  // I/O count is identical.
  std::string edge_output;
};

struct ContractionResult {
  std::string edge_path;  // E_{i+1}
  std::uint64_t num_edges = 0;
  std::uint64_t preserved_edges = 0;  // |E_pre|
  std::uint64_t new_edges = 0;        // |E_add|
  std::uint64_t removed_with_edges = 0;  // removed nodes seen in step 3
};

// `ein_path` / `eout_path`: level edge file sorted by (dst, src) and
// (src, dst). `cover_path`: sorted unique V_{i+1}.
ContractionResult ContractEdges(io::IoContext* context,
                                const std::string& ein_path,
                                const std::string& eout_path,
                                const std::string& cover_path,
                                const ContractionOptions& options);

}  // namespace extscc::core

#endif  // EXTSCC_CORE_CONTRACTION_H_
