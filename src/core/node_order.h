// The paper's total order `>` over nodes, used by Get-V to pick which
// endpoint of every edge joins the vertex cover.
//
//   Definition 5.1 (base):    deg, then id.
//   Definition 7.1 (refined): deg, then deg_in x deg_out, then id.
//
// The refined order prefers keeping nodes whose removal would fan out
// many new edges (deg_in x deg_out is exactly the number of edges
// Get-E creates for a removed node), which is the §VII edge-reduction
// optimization.
//
// Also hosts the bounded dictionary T used by the Type-2 node reduction:
// it caches the `s` smallest cover members under `>` (small nodes are the
// likely Type-2 candidates per Theorem 5.3) within a fixed memory
// allowance, so membership tests never add I/O.
#ifndef EXTSCC_CORE_NODE_ORDER_H_
#define EXTSCC_CORE_NODE_ORDER_H_

#include <cstdint>
#include <set>
#include <unordered_set>

#include "graph/graph_types.h"

namespace extscc::core {

enum class OrderVariant {
  kDegreeId,        // Definition 5.1 (Ext-SCC)
  kDegreeFanoutId,  // Definition 7.1 (Ext-SCC-Op)
};

// Everything `>` looks at for one node.
struct NodeKey {
  graph::NodeId id = 0;
  std::uint32_t deg_in = 0;
  std::uint32_t deg_out = 0;

  std::uint32_t deg() const { return deg_in + deg_out; }
  std::uint64_t fanout() const {
    return static_cast<std::uint64_t>(deg_in) *
           static_cast<std::uint64_t>(deg_out);
  }
};

// True iff a > b under `variant`. A strict total order: ties always break
// on the unique node id.
bool NodeGreater(const NodeKey& a, const NodeKey& b, OrderVariant variant);

// Bounded cover-membership cache (the dictionary T of §VII). Holds at
// most `capacity` entries; when full, inserting a node smaller (under >)
// than the current maximum evicts that maximum, so T converges to the `s`
// smallest cover members.
class BoundedNodeCache {
 public:
  BoundedNodeCache(std::size_t capacity, OrderVariant variant);

  // Records that `key` joined the cover.
  void Insert(const NodeKey& key);

  // May return false negatives (evicted members), never false positives.
  bool Contains(graph::NodeId id) const { return members_.count(id) > 0; }

  std::size_t size() const { return members_.size(); }
  std::size_t capacity() const { return capacity_; }

  // Estimated bytes per cached entry, for deriving `s` from the budget.
  static constexpr std::size_t kBytesPerEntry = 64;

 private:
  struct Less {
    OrderVariant variant;
    bool operator()(const NodeKey& a, const NodeKey& b) const {
      // Strict-weak order consistent with NodeGreater: a < b iff b > a.
      return NodeGreater(b, a, variant);
    }
  };

  std::size_t capacity_;
  std::set<NodeKey, Less> ordered_;
  std::unordered_set<graph::NodeId> members_;
};

}  // namespace extscc::core

#endif  // EXTSCC_CORE_NODE_ORDER_H_
