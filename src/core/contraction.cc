#include "core/contraction.h"

#include <vector>

#include "core/membership_split.h"
#include "extsort/external_sorter.h"
#include "graph/graph_types.h"
#include "io/record_stream.h"
#include "util/logging.h"

namespace extscc::core {

namespace {

using graph::Edge;
using graph::EdgeByDst;
using graph::EdgeBySrc;
using graph::NodeId;

}  // namespace

ContractionResult ContractEdges(io::IoContext* context,
                                const std::string& ein_path,
                                const std::string& eout_path,
                                const std::string& cover_path,
                                const ContractionOptions& options) {
  (void)options;  // reserved for future Get-E variants
  ContractionResult result;

  // ---- Step 1: tail-membership split of E_out ------------------------
  // cov_tail: tail in cover (candidates for E_pre / E_del_in).
  // Edges with removed tails are only needed per removed node, i.e.
  // sorted by tail — E_out is already sorted by tail, so that side can
  // stream directly into E_del_out after a head-membership filter
  // (step 2 below needs head-in-cover, which E_in gives us instead).
  const std::string cov_tail_path = context->NewTempPath("cov_tail");
  {
    io::RecordWriter<Edge> cov_tail(context, cov_tail_path);
    SplitByMembership(
        context, eout_path, cover_path, [](const Edge& e) { return e.src; },
        [&](const Edge& e) { cov_tail.Append(e); }, [](const Edge&) {});
    cov_tail.Finish();
  }

  // Head-membership pass over cov_tail needs it sorted by head.
  const std::string cov_tail_byhead_path = context->NewTempPath("cov_tail_h");
  extsort::SortFile<Edge, EdgeByDst>(context, cov_tail_path,
                                     cov_tail_byhead_path, EdgeByDst());
  context->temp_files().Remove(cov_tail_path);

  // E_pre (both endpoints covered) and E_del_in (in-edges of removed
  // nodes with covered tails), the latter already grouped by removed head.
  const std::string epre_path = context->NewTempPath("epre");
  const std::string edel_in_path = context->NewTempPath("edel_in");
  {
    io::RecordWriter<Edge> epre(context, epre_path);
    io::RecordWriter<Edge> edel_in(context, edel_in_path);
    SplitByMembership(
        context, cov_tail_byhead_path, cover_path,
        [](const Edge& e) { return e.dst; },
        [&](const Edge& e) { epre.Append(e); },
        [&](const Edge& e) { edel_in.Append(e); });
    result.preserved_edges = epre.count();
    epre.Finish();
    edel_in.Finish();
  }
  context->temp_files().Remove(cov_tail_byhead_path);

  // ---- Step 2: E_del_out — out-edges of removed nodes, covered heads --
  // E_in is sorted by head: semijoin by head membership, keep covered
  // heads, then sort by tail and keep removed tails.
  const std::string cov_head_path = context->NewTempPath("cov_head");
  {
    io::RecordWriter<Edge> cov_head(context, cov_head_path);
    SplitByMembership(
        context, ein_path, cover_path, [](const Edge& e) { return e.dst; },
        [&](const Edge& e) { cov_head.Append(e); }, [](const Edge&) {});
    cov_head.Finish();
  }
  const std::string cov_head_bytail_path = context->NewTempPath("cov_head_t");
  extsort::SortFile<Edge, EdgeBySrc>(context, cov_head_path,
                                     cov_head_bytail_path, EdgeBySrc());
  context->temp_files().Remove(cov_head_path);

  const std::string edel_out_path = context->NewTempPath("edel_out");
  {
    io::RecordWriter<Edge> edel_out(context, edel_out_path);
    SplitByMembership(
        context, cov_head_bytail_path, cover_path,
        [](const Edge& e) { return e.src; }, [](const Edge&) {},
        [&](const Edge& e) { edel_out.Append(e); });
    edel_out.Finish();
  }
  context->temp_files().Remove(cov_head_bytail_path);

  // ---- Step 3: cross product per removed node (E_add) ----------------
  // E_del_in grouped by head (removed node), E_del_out grouped by tail
  // (removed node); merge the groups.
  result.edge_path = context->NewTempPath("enext");
  {
    io::RecordWriter<Edge> out(context, result.edge_path);
    // E_pre first (line 12's union is a concatenation).
    io::AppendAllRecords<Edge>(context, epre_path, &out);

    io::PeekableReader<Edge> del_in(context, edel_in_path);
    io::PeekableReader<Edge> del_out(context, edel_out_path);
    while (del_in.has_value() || del_out.has_value()) {
      NodeId v;
      if (!del_out.has_value()) {
        v = del_in.Peek().dst;
      } else if (!del_in.has_value()) {
        v = del_out.Peek().src;
      } else {
        v = std::min(del_in.Peek().dst, del_out.Peek().src);
      }
      ++result.removed_with_edges;
      // Buffer v's covered out-neighbours (deg bounded by Theorem 5.3).
      std::vector<NodeId> out_heads;
      while (del_out.has_value() && del_out.Peek().src == v) {
        out_heads.push_back(del_out.Pop().dst);
      }
      bool had_in = false;
      while (del_in.has_value() && del_in.Peek().dst == v) {
        const NodeId u = del_in.Pop().src;
        had_in = true;
        for (const NodeId w : out_heads) {
          if (u == w) continue;  // self-loop shortcut: see header comment
          out.Append(Edge{u, w});
          ++result.new_edges;
        }
      }
      (void)had_in;  // nodes with only one side simply add no shortcuts
    }
    result.num_edges = out.count();
    out.Finish();
  }
  context->temp_files().Remove(epre_path);
  context->temp_files().Remove(edel_in_path);
  context->temp_files().Remove(edel_out_path);
  return result;
}

}  // namespace extscc::core
