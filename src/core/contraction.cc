#include "core/contraction.h"

#include <vector>

#include "core/membership_split.h"
#include "extsort/external_sorter.h"
#include "graph/graph_types.h"
#include "io/record_stream.h"
#include "util/logging.h"

namespace extscc::core {

namespace {

using graph::Edge;
using graph::EdgeByDst;
using graph::EdgeBySrc;
using graph::NodeId;

}  // namespace

ContractionResult ContractEdges(io::IoContext* context,
                                const std::string& ein_path,
                                const std::string& eout_path,
                                const std::string& cover_path,
                                const ContractionOptions& options) {
  ContractionResult result;

  // ---- Step 1: tail-membership split of E_out ------------------------
  // cov_tail: tail in cover (candidates for E_pre / E_del_in).
  // Edges with removed tails are only needed per removed node, i.e.
  // sorted by tail — E_out is already sorted by tail, so that side can
  // stream directly into E_del_out after a head-membership filter
  // (step 2 below needs head-in-cover, which E_in gives us instead).
  //
  // The whole chain — tail split, re-sort by head, head split — is one
  // fused pipeline: the tail split feeds a SortingWriter whose final
  // merge drains into the head-membership sink, so neither cov_tail nor
  // its by-head re-sort ever materializes (two write+read passes of the
  // candidate set gone versus the file-per-stage form).
  //
  // E_pre (both endpoints covered) and E_del_in (in-edges of removed
  // nodes with covered tails), the latter already grouped by removed
  // head.
  const std::string epre_path = context->NewTempPath("epre");
  const std::string edel_in_path = context->NewTempPath("edel_in");
  {
    extsort::SortingWriter<Edge, EdgeByDst> by_head(context, EdgeByDst());
    SplitByMembership(
        context, eout_path, cover_path, [](const Edge& e) { return e.src; },
        [&](const Edge& e) { by_head.Add(e); }, [](const Edge&) {});
    io::RecordWriter<Edge> epre(context, epre_path);
    io::RecordWriter<Edge> edel_in(context, edel_in_path);
    MembershipSplitSink head_split(
        context, cover_path, [](const Edge& e) { return e.dst; },
        [&](const Edge& e) { epre.Append(e); },
        [&](const Edge& e) { edel_in.Append(e); });
    by_head.FinishInto(head_split);
    result.preserved_edges = epre.count();
    epre.Finish();
    edel_in.Finish();
  }

  // ---- Step 2: E_del_out — out-edges of removed nodes, covered heads --
  // E_in is sorted by head: semijoin by head membership, keep covered
  // heads, then re-sort by tail and keep removed tails — fused the same
  // way as step 1.
  const std::string edel_out_path = context->NewTempPath("edel_out");
  {
    extsort::SortingWriter<Edge, EdgeBySrc> by_tail(context, EdgeBySrc());
    SplitByMembership(
        context, ein_path, cover_path, [](const Edge& e) { return e.dst; },
        [&](const Edge& e) { by_tail.Add(e); }, [](const Edge&) {});
    io::RecordWriter<Edge> edel_out(context, edel_out_path);
    MembershipSplitSink tail_split(
        context, cover_path, [](const Edge& e) { return e.src; },
        [](const Edge&) {}, [&](const Edge& e) { edel_out.Append(e); });
    by_tail.FinishInto(tail_split);
    edel_out.Finish();
  }

  // ---- Step 3: cross product per removed node (E_add) ----------------
  // E_del_in grouped by head (removed node), E_del_out grouped by tail
  // (removed node); merge the groups.
  result.edge_path = options.edge_output.empty()
                         ? context->NewTempPath("enext")
                         : options.edge_output;
  {
    io::RecordWriter<Edge> out(context, result.edge_path);
    // E_pre first (line 12's union is a concatenation).
    io::AppendAllRecords<Edge>(context, epre_path, &out);

    io::PeekableReader<Edge> del_in(context, edel_in_path);
    io::PeekableReader<Edge> del_out(context, edel_out_path);
    while (del_in.has_value() || del_out.has_value()) {
      NodeId v;
      if (!del_out.has_value()) {
        v = del_in.Peek().dst;
      } else if (!del_in.has_value()) {
        v = del_out.Peek().src;
      } else {
        v = std::min(del_in.Peek().dst, del_out.Peek().src);
      }
      ++result.removed_with_edges;
      // Buffer v's covered out-neighbours (deg bounded by Theorem 5.3).
      std::vector<NodeId> out_heads;
      while (del_out.has_value() && del_out.Peek().src == v) {
        out_heads.push_back(del_out.Pop().dst);
      }
      bool had_in = false;
      while (del_in.has_value() && del_in.Peek().dst == v) {
        const NodeId u = del_in.Pop().src;
        had_in = true;
        for (const NodeId w : out_heads) {
          if (u == w) continue;  // self-loop shortcut: see header comment
          out.Append(Edge{u, w});
          ++result.new_edges;
        }
      }
      (void)had_in;  // nodes with only one side simply add no shortcuts
    }
    result.num_edges = out.count();
    out.Finish();
  }
  context->temp_files().Remove(epre_path);
  context->temp_files().Remove(edel_in_path);
  context->temp_files().Remove(edel_out_path);
  return result;
}

}  // namespace extscc::core
