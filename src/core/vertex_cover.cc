#include "core/vertex_cover.h"

#include <algorithm>
#include <memory>
#include <optional>

#include "extsort/external_sorter.h"
#include "graph/graph_types.h"
#include "io/record_stream.h"
#include "util/logging.h"

namespace extscc::core {

namespace {

using graph::DegreeEntry;
using graph::Edge;
using graph::NodeId;

// Edge with the tail's degrees attached (the intermediate E_d of
// Algorithm 3 after line 5).
struct HalfDegEdge {
  NodeId u = 0;
  std::uint32_t u_in = 0;
  std::uint32_t u_out = 0;
  NodeId v = 0;
};

// Orders by (head, tail). The normalized key (record_traits.h) omits
// the degree payload like the comparator does; (v, u) determines the
// record (u's degrees are functions of u), so the order is total on the
// records that actually occur and the fused E_d sort radix-sorts.
struct HalfDegEdgeByHead {
  static std::uint64_t KeyOf(const HalfDegEdge& e) {
    return extsort::PackKey64(e.v, e.u);
  }
  bool operator()(const HalfDegEdge& a, const HalfDegEdge& b) const {
    return KeyOf(a) < KeyOf(b);
  }
};

// Builds V_d by merging the two grouped edge streams: E_in grouped by
// head yields deg_in, E_out grouped by tail yields deg_out (Alg. 3 l.4).
std::uint64_t BuildDegreeFile(io::IoContext* context,
                              const std::string& ein_path,
                              const std::string& eout_path,
                              const std::string& vd_path, bool type1) {
  io::PeekableReader<Edge> ein(context, ein_path);
  io::PeekableReader<Edge> eout(context, eout_path);
  io::RecordWriter<DegreeEntry> writer(context, vd_path);
  std::uint64_t emitted = 0;

  auto drain_group = [](auto& reader, NodeId node, auto key_of) {
    std::uint32_t count = 0;
    while (reader.has_value() && key_of(reader.Peek()) == node) {
      reader.Pop();
      ++count;
    }
    return count;
  };
  const auto head = [](const Edge& e) { return e.dst; };
  const auto tail = [](const Edge& e) { return e.src; };

  while (ein.has_value() || eout.has_value()) {
    NodeId node;
    if (!eout.has_value()) {
      node = ein.Peek().dst;
    } else if (!ein.has_value()) {
      node = eout.Peek().src;
    } else {
      node = std::min(ein.Peek().dst, eout.Peek().src);
    }
    DegreeEntry entry;
    entry.node = node;
    if (ein.has_value() && ein.Peek().dst == node) {
      entry.deg_in = drain_group(ein, node, head);
    }
    if (eout.has_value() && eout.Peek().src == node) {
      entry.deg_out = drain_group(eout, node, tail);
    }
    if (type1 && (entry.deg_in == 0 || entry.deg_out == 0)) {
      continue;  // Lemma 7.1: source/sink — a guaranteed singleton SCC.
    }
    writer.Append(entry);
    ++emitted;
  }
  writer.Finish();
  return emitted;
}

}  // namespace

CoverResult ComputeVertexCover(io::IoContext* context,
                               const std::string& ein_path,
                               const std::string& eout_path,
                               const CoverOptions& options) {
  CoverResult result;

  // ---- V_d: degrees per node (line 4) -------------------------------
  const std::string vd_path = context->NewTempPath("vd");
  result.degree_nodes =
      BuildDegreeFile(context, ein_path, eout_path, vd_path,
                      options.type1_reduction);

  // ---- E_d build, by-head re-sort, and selection (lines 5-9, fused) --
  // The stage-per-file form wrote E_d by tail, sorted it into a by-head
  // file, and scanned that for selection. Fused, the tail-degree
  // augmentation streams E_d straight into a SortingWriter whose final
  // merge drains into the selection sink — neither E_d ordering ever
  // materializes, saving two write+read passes of E_d (the largest
  // intermediate of Get-V). Cover candidates stream into a second
  // sorting writer that dedups (line 10).
  extsort::SortingWriter<NodeId, graph::NodeIdLess> cover_writer(
      context, graph::NodeIdLess{}, /*dedup=*/true);
  {
    // Dictionary T for the Type-2 reduction, sized from (half) the free
    // budget *before* the E_d sorting writer takes its reservation, and
    // reserved for its whole lifetime — it coexists with the fused
    // sort's buffers, so the sort must size itself from the remainder.
    std::unique_ptr<BoundedNodeCache> cache;
    std::optional<io::ScopedReservation> cache_reservation;
    if (options.type2_reduction) {
      const std::uint64_t cap = std::max<std::uint64_t>(
          16, context->memory().available_bytes() /
                  (2 * BoundedNodeCache::kBytesPerEntry));
      cache = std::make_unique<BoundedNodeCache>(
          static_cast<std::size_t>(cap), options.order);
      cache_reservation.emplace(
          &context->memory(),
          std::min<std::uint64_t>(cap * BoundedNodeCache::kBytesPerEntry,
                                  context->memory().available_bytes()));
    }
    extsort::SortingWriter<HalfDegEdge, HalfDegEdgeByHead> ed_by_head(
        context, HalfDegEdgeByHead());
    {
      // ---- E_d: augment tail degrees (line 5) ------------------------
      io::PeekableReader<Edge> eout(context, eout_path);
      io::PeekableReader<DegreeEntry> vd(context, vd_path);
      while (eout.has_value()) {
        const NodeId u = eout.Peek().src;
        while (vd.has_value() && vd.Peek().node < u) vd.Pop();
        if (!vd.has_value() || vd.Peek().node != u) {
          // Tail was Type-1-dropped: its edges cannot lie on a cycle.
          eout.Pop();
          continue;
        }
        const DegreeEntry u_deg = vd.Peek();
        while (eout.has_value() && eout.Peek().src == u) {
          const Edge e = eout.Pop();
          ed_by_head.Add(HalfDegEdge{u, u_deg.deg_in, u_deg.deg_out, e.dst});
        }
      }
    }

    // ---- Augment head degrees + selection (lines 7-9) ----------------
    // Push-mode consumer of E_d in (v, u) order: v's degree lookup
    // advances a fresh V_d reader monotonically, group by group.
    io::PeekableReader<DegreeEntry> vd(context, vd_path);
    NodeId cur_v = graph::kInvalidNode;
    bool v_present = false;
    DegreeEntry v_deg;
    auto select = extsort::MakeCallbackSink<HalfDegEdge>(
        [&](const HalfDegEdge& e) {
          if (e.v != cur_v || cur_v == graph::kInvalidNode) {
            cur_v = e.v;
            while (vd.has_value() && vd.Peek().node < cur_v) vd.Pop();
            v_present = vd.has_value() && vd.Peek().node == cur_v;
            if (v_present) v_deg = vd.Peek();
          }
          if (!v_present) return;  // head was Type-1-dropped
          const NodeKey u_key{e.u, e.u_in, e.u_out};
          const NodeKey v_key{cur_v, v_deg.deg_in, v_deg.deg_out};
          const bool u_greater = NodeGreater(u_key, v_key, options.order);
          const NodeKey& winner = u_greater ? u_key : v_key;
          const NodeKey& loser = u_greater ? v_key : u_key;
          if (cache != nullptr && cache->Contains(loser.id)) {
            // Edge already covered by its smaller endpoint (§VII Type-2).
            ++result.type2_skips;
            return;
          }
          cover_writer.Add(winner.id);
          if (cache != nullptr) cache->Insert(winner);
        });
    ed_by_head.FinishInto(select);
  }
  context->temp_files().Remove(vd_path);

  // ---- Sort + dedup (line 10) ----------------------------------------
  result.cover_path = options.cover_output.empty()
                          ? context->NewTempPath("cover")
                          : options.cover_output;
  extsort::FileSink<NodeId> cover_file(context, result.cover_path);
  cover_writer.FinishInto(cover_file);
  cover_file.Finish();
  result.cover_count = cover_file.count();
  return result;
}

}  // namespace extscc::core
