#include "core/vertex_cover.h"

#include <algorithm>
#include <memory>

#include "extsort/external_sorter.h"
#include "graph/graph_types.h"
#include "io/record_stream.h"
#include "util/logging.h"

namespace extscc::core {

namespace {

using graph::DegreeEntry;
using graph::Edge;
using graph::NodeId;

// Edge with the tail's degrees attached (the intermediate E_d of
// Algorithm 3 after line 5).
struct HalfDegEdge {
  NodeId u = 0;
  std::uint32_t u_in = 0;
  std::uint32_t u_out = 0;
  NodeId v = 0;
};

struct HalfDegEdgeByHead {
  bool operator()(const HalfDegEdge& a, const HalfDegEdge& b) const {
    if (a.v != b.v) return a.v < b.v;
    return a.u < b.u;
  }
};

struct NodeLess {
  bool operator()(NodeId a, NodeId b) const { return a < b; }
};

// Builds V_d by merging the two grouped edge streams: E_in grouped by
// head yields deg_in, E_out grouped by tail yields deg_out (Alg. 3 l.4).
std::uint64_t BuildDegreeFile(io::IoContext* context,
                              const std::string& ein_path,
                              const std::string& eout_path,
                              const std::string& vd_path, bool type1) {
  io::PeekableReader<Edge> ein(context, ein_path);
  io::PeekableReader<Edge> eout(context, eout_path);
  io::RecordWriter<DegreeEntry> writer(context, vd_path);
  std::uint64_t emitted = 0;

  auto drain_group = [](auto& reader, NodeId node, auto key_of) {
    std::uint32_t count = 0;
    while (reader.has_value() && key_of(reader.Peek()) == node) {
      reader.Pop();
      ++count;
    }
    return count;
  };
  const auto head = [](const Edge& e) { return e.dst; };
  const auto tail = [](const Edge& e) { return e.src; };

  while (ein.has_value() || eout.has_value()) {
    NodeId node;
    if (!eout.has_value()) {
      node = ein.Peek().dst;
    } else if (!ein.has_value()) {
      node = eout.Peek().src;
    } else {
      node = std::min(ein.Peek().dst, eout.Peek().src);
    }
    DegreeEntry entry;
    entry.node = node;
    if (ein.has_value() && ein.Peek().dst == node) {
      entry.deg_in = drain_group(ein, node, head);
    }
    if (eout.has_value() && eout.Peek().src == node) {
      entry.deg_out = drain_group(eout, node, tail);
    }
    if (type1 && (entry.deg_in == 0 || entry.deg_out == 0)) {
      continue;  // Lemma 7.1: source/sink — a guaranteed singleton SCC.
    }
    writer.Append(entry);
    ++emitted;
  }
  writer.Finish();
  return emitted;
}

}  // namespace

CoverResult ComputeVertexCover(io::IoContext* context,
                               const std::string& ein_path,
                               const std::string& eout_path,
                               const CoverOptions& options) {
  CoverResult result;

  // ---- V_d: degrees per node (line 4) -------------------------------
  const std::string vd_path = context->NewTempPath("vd");
  result.degree_nodes =
      BuildDegreeFile(context, ein_path, eout_path, vd_path,
                      options.type1_reduction);

  // ---- E_d: augment tail degrees (line 5) ----------------------------
  const std::string ed_path = context->NewTempPath("ed_bytail");
  {
    io::PeekableReader<Edge> eout(context, eout_path);
    io::PeekableReader<DegreeEntry> vd(context, vd_path);
    io::RecordWriter<HalfDegEdge> writer(context, ed_path);
    while (eout.has_value()) {
      const NodeId u = eout.Peek().src;
      while (vd.has_value() && vd.Peek().node < u) vd.Pop();
      if (!vd.has_value() || vd.Peek().node != u) {
        // Tail was Type-1-dropped: its edges cannot lie on a cycle.
        eout.Pop();
        continue;
      }
      const DegreeEntry u_deg = vd.Peek();
      while (eout.has_value() && eout.Peek().src == u) {
        const Edge e = eout.Pop();
        writer.Append(HalfDegEdge{u, u_deg.deg_in, u_deg.deg_out, e.dst});
      }
    }
    writer.Finish();
  }

  // ---- Sort E_d by head (line 6) -------------------------------------
  const std::string ed_byhead_path = context->NewTempPath("ed_byhead");
  extsort::SortFile<HalfDegEdge, HalfDegEdgeByHead>(
      context, ed_path, ed_byhead_path, HalfDegEdgeByHead());
  context->temp_files().Remove(ed_path);

  // ---- Augment head degrees + selection scan (lines 7-9, fused) ------
  // Cover candidates stream into a sorting writer that dedups (line 10).
  extsort::SortingWriter<NodeId, NodeLess> cover_writer(context, NodeLess(),
                                                        /*dedup=*/true);
  {
    io::PeekableReader<HalfDegEdge> ed(context, ed_byhead_path);
    io::PeekableReader<DegreeEntry> vd(context, vd_path);
    // Dictionary T for the Type-2 reduction, sized from the free budget.
    std::unique_ptr<BoundedNodeCache> cache;
    if (options.type2_reduction) {
      const std::uint64_t cap = std::max<std::uint64_t>(
          16, context->memory().available_bytes() /
                  (2 * BoundedNodeCache::kBytesPerEntry));
      cache = std::make_unique<BoundedNodeCache>(
          static_cast<std::size_t>(cap), options.order);
    }
    while (ed.has_value()) {
      const NodeId v = ed.Peek().v;
      while (vd.has_value() && vd.Peek().node < v) vd.Pop();
      if (!vd.has_value() || vd.Peek().node != v) {
        // Head was Type-1-dropped.
        ed.Pop();
        continue;
      }
      const DegreeEntry v_deg = vd.Peek();
      while (ed.has_value() && ed.Peek().v == v) {
        const HalfDegEdge e = ed.Pop();
        const NodeKey u_key{e.u, e.u_in, e.u_out};
        const NodeKey v_key{v, v_deg.deg_in, v_deg.deg_out};
        const bool u_greater = NodeGreater(u_key, v_key, options.order);
        const NodeKey& winner = u_greater ? u_key : v_key;
        const NodeKey& loser = u_greater ? v_key : u_key;
        if (cache != nullptr && cache->Contains(loser.id)) {
          // Edge already covered by its smaller endpoint (§VII Type-2).
          ++result.type2_skips;
          continue;
        }
        cover_writer.Add(winner.id);
        if (cache != nullptr) cache->Insert(winner);
      }
    }
  }
  context->temp_files().Remove(ed_byhead_path);
  context->temp_files().Remove(vd_path);

  // ---- Sort + dedup (line 10) ----------------------------------------
  result.cover_path = context->NewTempPath("cover");
  extsort::SortRunInfo info = cover_writer.FinishInto(result.cover_path);
  (void)info;
  result.cover_count =
      io::NumRecordsInFile<NodeId>(context, result.cover_path);
  return result;
}

}  // namespace extscc::core
