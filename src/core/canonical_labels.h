// Canonical SCC relabeling: RunExtScc's labels are dense in
// [0, num_sccs) but their values depend on solver internals (expansion
// batch order, base-case traversal), so two runs over logically equal
// graphs can assign the same partition different label values. The
// serve artifact wants labels that are a pure function of the graph —
// that is what lets an incremental update (src/dyn/) and a full
// re-solve produce byte-identical artifacts. CanonicalizeLabels rewrites
// a node-sorted SccEntry file so that SCC ids are assigned densely by
// FIRST OCCURRENCE in node order: the SCC of the smallest node id is 0,
// the next distinct SCC seen is 1, and so on. The partition is
// untouched; only the label values change. One sequential read + one
// sequential write of the map file.
#ifndef EXTSCC_CORE_CANONICAL_LABELS_H_
#define EXTSCC_CORE_CANONICAL_LABELS_H_

#include <cstdint>
#include <string>

#include "io/io_context.h"
#include "util/status.h"

namespace extscc::core {

// Reads the node-sorted SccEntry file at `scc_path` (labels dense in
// [0, num_sccs)), writes the canonically relabeled map to `out_path`.
// Resident cost: 4 bytes per SCC (the old-label -> canonical-label
// table). Fails with kCorruption if a label is >= num_sccs or the file
// does not cover all num_sccs labels.
util::Status CanonicalizeLabels(io::IoContext* context,
                                const std::string& scc_path,
                                std::uint64_t num_sccs,
                                const std::string& out_path);

}  // namespace extscc::core

#endif  // EXTSCC_CORE_CANONICAL_LABELS_H_
