#include "core/canonical_labels.h"

#include <vector>

#include "graph/graph_types.h"
#include "io/record_stream.h"

namespace extscc::core {

util::Status CanonicalizeLabels(io::IoContext* context,
                                const std::string& scc_path,
                                std::uint64_t num_sccs,
                                const std::string& out_path) {
  std::vector<graph::SccId> canon(num_sccs, graph::kInvalidScc);
  graph::SccId next = 0;

  io::RecordReader<graph::SccEntry> reader(context, scc_path);
  io::RecordWriter<graph::SccEntry> writer(context, out_path);
  const std::size_t batch = io::RecordsPerBlock<graph::SccEntry>(context);
  std::vector<graph::SccEntry> chunk(batch);
  std::size_t got;
  while ((got = reader.NextBatch(chunk.data(), batch)) > 0) {
    for (std::size_t i = 0; i < got; ++i) {
      if (chunk[i].scc >= num_sccs) {
        return util::Status::Corruption(
            scc_path + " labels a node with SCC " +
            std::to_string(chunk[i].scc) + " >= num_sccs " +
            std::to_string(num_sccs));
      }
      graph::SccId& mapped = canon[chunk[i].scc];
      if (mapped == graph::kInvalidScc) mapped = next++;
      chunk[i].scc = mapped;
    }
    writer.AppendBatch(chunk.data(), got);
  }
  RETURN_IF_ERROR(reader.status());
  writer.Finish();
  RETURN_IF_ERROR(writer.status());
  if (next != num_sccs) {
    return util::Status::Corruption(
        scc_path + " covers only " + std::to_string(next) + " of " +
        std::to_string(num_sccs) + " SCC labels");
  }
  return util::Status::Ok();
}

}  // namespace extscc::core
