#include "core/node_order.h"

#include "util/logging.h"

namespace extscc::core {

bool NodeGreater(const NodeKey& a, const NodeKey& b, OrderVariant variant) {
  if (a.deg() != b.deg()) return a.deg() > b.deg();
  if (variant == OrderVariant::kDegreeFanoutId && a.fanout() != b.fanout()) {
    return a.fanout() > b.fanout();
  }
  return a.id > b.id;
}

BoundedNodeCache::BoundedNodeCache(std::size_t capacity, OrderVariant variant)
    : capacity_(capacity), ordered_(Less{variant}) {
  CHECK_GT(capacity, 0u);
}

void BoundedNodeCache::Insert(const NodeKey& key) {
  if (members_.count(key.id) > 0) return;
  if (ordered_.size() >= capacity_) {
    // Evict the largest cached node if `key` is smaller than it;
    // otherwise `key` is not among the s smallest and is not cached.
    auto largest = std::prev(ordered_.end());
    if (!NodeGreater(*largest, key, ordered_.key_comp().variant)) {
      return;
    }
    members_.erase(largest->id);
    ordered_.erase(largest);
  }
  ordered_.insert(key);
  members_.insert(key.id);
}

}  // namespace extscc::core
