// Batched membership semijoin shared by the contraction (Get-E) and
// expansion (augment) phases: streams an edge file — sorted so that
// key_of(edge) is non-decreasing — against a sorted cover node list and
// routes each edge to on_member / on_removed depending on whether its
// key endpoint is a cover member. The edge side moves in block-sized
// batches (one memcpy per block instead of one per edge) while the
// (much smaller) cover side stays a one-record lookahead.
#ifndef EXTSCC_CORE_MEMBERSHIP_SPLIT_H_
#define EXTSCC_CORE_MEMBERSHIP_SPLIT_H_

#include <string>
#include <vector>

#include "graph/graph_types.h"
#include "io/io_context.h"
#include "io/record_stream.h"

namespace extscc::core {

template <typename KeyOf, typename OnMember, typename OnRemoved>
void SplitByMembership(io::IoContext* context, const std::string& edge_path,
                       const std::string& cover_path, KeyOf key_of,
                       OnMember on_member, OnRemoved on_removed) {
  io::RecordReader<graph::Edge> edges(context, edge_path);
  io::PeekableReader<graph::NodeId> cover(context, cover_path);
  const std::size_t batch = io::RecordsPerBlock<graph::Edge>(context);
  std::vector<graph::Edge> chunk(batch);
  std::size_t got;
  while ((got = edges.NextBatch(chunk.data(), batch)) > 0) {
    for (std::size_t i = 0; i < got; ++i) {
      const graph::Edge& e = chunk[i];
      const graph::NodeId key = key_of(e);
      while (cover.has_value() && cover.Peek() < key) cover.Pop();
      if (cover.has_value() && cover.Peek() == key) {
        on_member(e);
      } else {
        on_removed(e);
      }
    }
  }
}

}  // namespace extscc::core

#endif  // EXTSCC_CORE_MEMBERSHIP_SPLIT_H_
