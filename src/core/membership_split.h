// Batched membership semijoin shared by the contraction (Get-E) and
// expansion (augment) phases: streams an edge file — sorted so that
// key_of(edge) is non-decreasing — against a sorted cover node list and
// routes each edge to on_member / on_removed depending on whether its
// key endpoint is a cover member. The edge side moves in block-sized
// batches (one memcpy per block instead of one per edge) while the
// (much smaller) cover side stays a one-record lookahead.
//
// Two shapes of the same join:
//  - MembershipSplitSink is the push form: an extsort RecordSink that a
//    fused sort→consumer pipeline (SortInto / SortingWriter::FinishInto)
//    drains its final merge pass into, so the semijoin's input file
//    never materializes.
//  - SplitByMembership is the pull form over an existing sorted file,
//    phrased as a batched scan feeding the same sink.
#ifndef EXTSCC_CORE_MEMBERSHIP_SPLIT_H_
#define EXTSCC_CORE_MEMBERSHIP_SPLIT_H_

#include <string>
#include <utility>
#include <vector>

#include "graph/graph_types.h"
#include "io/io_context.h"
#include "io/record_stream.h"

namespace extscc::core {

// Push-mode semijoin: Append(edge) requires key_of(edge) non-decreasing
// across calls (the sort order of the producing stage). The cover
// stream advances monotonically — one sequential scan of the cover per
// sink lifetime, exactly the pull form's cost.
template <typename KeyOf, typename OnMember, typename OnRemoved>
class MembershipSplitSink {
 public:
  MembershipSplitSink(io::IoContext* context, const std::string& cover_path,
                      KeyOf key_of, OnMember on_member, OnRemoved on_removed)
      : cover_(context, cover_path),
        key_of_(std::move(key_of)),
        on_member_(std::move(on_member)),
        on_removed_(std::move(on_removed)) {}

  void Append(const graph::Edge& e) {
    const graph::NodeId key = key_of_(e);
    while (cover_.has_value() && cover_.Peek() < key) cover_.Pop();
    if (cover_.has_value() && cover_.Peek() == key) {
      on_member_(e);
    } else {
      on_removed_(e);
    }
  }

 private:
  io::PeekableReader<graph::NodeId> cover_;
  KeyOf key_of_;
  OnMember on_member_;
  OnRemoved on_removed_;
};

template <typename KeyOf, typename OnMember, typename OnRemoved>
void SplitByMembership(io::IoContext* context, const std::string& edge_path,
                       const std::string& cover_path, KeyOf key_of,
                       OnMember on_member, OnRemoved on_removed) {
  MembershipSplitSink sink(context, cover_path, std::move(key_of),
                           std::move(on_member), std::move(on_removed));
  io::ForEachRecord<graph::Edge>(
      context, edge_path, [&](const graph::Edge& e) { sink.Append(e); });
}

}  // namespace extscc::core

#endif  // EXTSCC_CORE_MEMBERSHIP_SPLIT_H_
