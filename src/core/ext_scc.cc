#include "core/ext_scc.h"

#include <memory>
#include <utility>
#include <vector>

#include "core/checkpoint.h"
#include "core/contraction.h"
#include "core/expansion.h"
#include "core/vertex_cover.h"
#include "graph/edge_file.h"
#include "graph/node_file.h"
#include "io/record_stream.h"
#include "util/logging.h"
#include "util/timer.h"

namespace extscc::core {

namespace {

using graph::DiskGraph;
using graph::SccId;

// Everything the expansion phase needs to re-open level i.
struct LevelFiles {
  std::string ein;      // E_i by (dst, src)
  std::string eout;     // E_i by (src, dst)
  std::string cover;    // V_{i+1}
  std::string removed;  // V_i - V_{i+1}
};

// Polled between phases (and once per contraction/expansion level): the
// storage layer never aborts on an I/O failure — errors park in stream
// statuses and the context's first-error latch while the affected sort
// drains as truncated (error-as-EOF, see block_file.h) — so the driver
// is where a latched failure turns into a returned Status instead of a
// wrong answer.
util::Status BudgetCheck(io::IoContext* context, const char* where) {
  if (context->has_io_error()) return context->io_error();
  if (context->io_budget_exceeded()) {
    return util::Status::ResourceExhausted(
        std::string("Ext-SCC exceeded the I/O budget during ") + where);
  }
  return util::Status::Ok();
}

}  // namespace

util::Result<ExtSccStats> RunExtScc(io::IoContext* context,
                                    const DiskGraph& input,
                                    const std::string& scc_output,
                                    const ExtSccOptions& options) {
  ExtSccStats stats;
  util::Timer total_timer;
  const std::uint64_t start_ios = context->stats().total_ios();

  CoverOptions cover_options;
  cover_options.order = options.refined_order ? OrderVariant::kDegreeFanoutId
                                              : OrderVariant::kDegreeId;
  cover_options.type1_reduction = options.type1_reduction;
  cover_options.type2_reduction = options.type2_reduction;
  ContractionOptions contraction_options;

  const std::uint64_t data_version =
      SolveDataVersion(input, options, context->block_size());
  CheckpointSession ckpt(context, options.checkpoint_dir, data_version);

  std::vector<LevelFiles> levels;
  DiskGraph current = input;
  SccId next_scc_id = 0;
  std::string scc_path;
  std::uint32_t resume_phase = CheckpointSession::kContracting;
  std::uint64_t expand_done = 0;

  if (ckpt.enabled() && options.resume) {
    auto loaded = ckpt.Load();
    if (loaded.ok()) {
      CheckpointSession::ResumeState st = std::move(loaded.value());
      if (st.data_version != data_version ||
          st.block_size != context->block_size()) {
        return util::Status::FailedPrecondition(
            "checkpoint in " + options.checkpoint_dir +
            " was written by a different solve (input shape, options, or "
            "block size changed) — remove the directory or drop --resume");
      }
      for (std::uint64_t i = 0; i < st.levels_done; ++i) {
        levels.push_back(LevelFiles{ckpt.LevelPath(i, "ein"),
                                    ckpt.LevelPath(i, "eout"),
                                    ckpt.LevelPath(i, "cover"),
                                    ckpt.LevelPath(i, "removed")});
      }
      stats.iterations = std::move(st.iterations);
      stats.contraction_seconds = st.contraction_seconds;
      stats.semi_seconds = st.semi_seconds;
      if (st.levels_done > 0) {
        current = DiskGraph{ckpt.LevelPath(st.levels_done - 1, "cover"),
                            ckpt.LevelPath(st.levels_done - 1, "enext"),
                            st.current_num_nodes, st.current_num_edges};
      }
      resume_phase = st.phase;
      next_scc_id = static_cast<SccId>(st.next_scc_id);
      expand_done = st.expand_done;
      if (resume_phase >= CheckpointSession::kSemiDone) {
        stats.semi_nodes = st.semi_nodes;
        scc_path = expand_done == 0 ? ckpt.SemiSccPath()
                                    : ckpt.ExpandSccPath(expand_done - 1);
      }
    } else if (loaded.status().code() != util::StatusCode::kNotFound) {
      // A damaged manifest or a directory that no longer matches it:
      // refuse rather than silently starting over — the operator asked
      // to resume, and quietly discarding the checkpoint hides whatever
      // damaged it. `fsck --checkpoint-dir` diagnoses and repairs.
      return loaded.status();
    }
    // kNotFound: no checkpoint yet — a fresh run that will create one.
  }

  // ---- Contraction phase (Alg. 2 lines 1-4) ---------------------------
  util::Timer phase_timer;
  if (resume_phase == CheckpointSession::kContracting) {
    while (!scc::SemiSccFits(options.semi_backend, current.num_nodes,
                             context->memory())) {
      if (levels.size() >= options.max_iterations) {
        return util::Status::FailedPrecondition(
            "contraction did not converge within max_iterations — this "
            "contradicts Lemma 5.2 and indicates a bug or absurd budget");
      }
      util::Timer iter_timer;
      const std::uint64_t iter_start_ios = context->stats().total_ios();
      const std::size_t li = levels.size();

      LevelFiles level;
      // Self-loops carry no SCC information and would pin their nodes
      // into every cover (see contraction.h); strip them from the input
      // once, inline with the first level's E_in/E_out sorts (no
      // filtered copy of E is written). Contraction never re-creates
      // them, so later levels are clean.
      level.ein = ckpt.enabled() ? ckpt.LevelPath(li, "ein")
                                 : context->NewTempPath("ein");
      level.eout = ckpt.enabled() ? ckpt.LevelPath(li, "eout")
                                  : context->NewTempPath("eout");
      graph::SortEdgesBothOrders(context, current.edge_path, level.ein,
                                 level.eout, options.dedup_parallel_edges,
                                 /*drop_self_loops=*/levels.empty());
      const std::uint64_t level_edges = graph::CountEdges(context, level.ein);

      cover_options.cover_output =
          ckpt.enabled() ? ckpt.LevelPath(li, "cover") : std::string();
      const CoverResult cover =
          ComputeVertexCover(context, level.ein, level.eout, cover_options);
      // Checked before the Lemma 5.2 invariant: a truncated edge stream
      // can legitimately produce a non-shrinking cover, and that must
      // surface as the I/O failure it is, not as an invariant abort.
      RETURN_IF_ERROR(BudgetCheck(context, "vertex cover"));
      CHECK_LT(cover.cover_count, current.num_nodes)
          << "cover did not shrink the node set (Lemma 5.2 violated)";
      level.cover = cover.cover_path;

      // In Op mode the contraction output IS the level's edge file; in
      // basic mode it is a pre-dedup intermediate, so only the deduped
      // copy below goes to the checkpoint directory.
      contraction_options.edge_output =
          (ckpt.enabled() && options.dedup_parallel_edges)
              ? ckpt.LevelPath(li, "enext")
              : std::string();
      ContractionResult contraction = ContractEdges(
          context, level.ein, level.eout, level.cover, contraction_options);

      // Parallel-edge elimination. The cross product of Get-E multiplies
      // parallel wedges, so leaving duplicates across levels grows |E_i|
      // geometrically (Example 5.1's base run also removes them). The
      // base algorithm pays an eager dedup pass here; Op mode instead
      // folds the dedup into the next level's E_in/E_out sorts (§VII
      // "lazy" edge reduction), saving this pass — part of the measured
      // Op advantage.
      if (!options.dedup_parallel_edges) {
        const std::string deduped = ckpt.enabled()
                                        ? ckpt.LevelPath(li, "enext")
                                        : context->NewTempPath("enext_dedup");
        graph::SortEdgesBySrc(context, contraction.edge_path, deduped,
                              /*dedup=*/true);
        context->temp_files().Remove(contraction.edge_path);
        contraction.edge_path = deduped;
        contraction.num_edges = graph::CountEdges(context, deduped);
      }

      level.removed = ckpt.enabled() ? ckpt.LevelPath(li, "removed")
                                     : context->NewTempPath("removed");
      graph::NodeFileDifference(context, current.node_path, level.cover,
                                level.removed);

      ContractionIterationStats iter;
      iter.level = static_cast<std::uint32_t>(levels.size() + 1);
      iter.nodes = current.num_nodes;
      iter.edges = level_edges;
      iter.cover_nodes = cover.cover_count;
      iter.next_edges = contraction.num_edges;
      iter.new_edges = contraction.new_edges;
      iter.type2_skips = cover.type2_skips;
      iter.seconds = iter_timer.ElapsedSeconds();
      iter.ios = context->stats().total_ios() - iter_start_ios;
      stats.iterations.push_back(iter);

      levels.push_back(level);
      current = DiskGraph{level.cover, contraction.edge_path,
                          cover.cover_count, contraction.num_edges};
      RETURN_IF_ERROR(BudgetCheck(context, "graph contraction"));

      if (ckpt.enabled()) {
        CheckpointSession::ResumeState st;
        st.phase = CheckpointSession::kContracting;
        st.block_size = context->block_size();
        st.levels_done = levels.size();
        st.current_num_nodes = current.num_nodes;
        st.current_num_edges = current.num_edges;
        st.contraction_seconds =
            stats.contraction_seconds + phase_timer.ElapsedSeconds();
        st.iterations = stats.iterations;
        RETURN_IF_ERROR(ckpt.Save(st, {level.ein, level.eout, level.cover,
                                       level.removed, current.edge_path}));
      }
    }
    stats.contraction_seconds += phase_timer.ElapsedSeconds();

    // ---- Semi-external base case (Alg. 2 line 5) ----------------------
    phase_timer.Restart();
    next_scc_id = 0;
    scc_path = ckpt.enabled() ? ckpt.SemiSccPath()
                              : context->NewTempPath("scc_semi");
    stats.semi_nodes = current.num_nodes;
    stats.semi = scc::RunSemiScc(options.semi_backend, context, current,
                                 scc_path, &next_scc_id);
    stats.semi_seconds += phase_timer.ElapsedSeconds();
    RETURN_IF_ERROR(BudgetCheck(context, "semi-external base case"));

    if (ckpt.enabled()) {
      CheckpointSession::ResumeState st;
      st.phase = CheckpointSession::kSemiDone;
      st.block_size = context->block_size();
      st.levels_done = levels.size();
      st.next_scc_id = next_scc_id;
      st.semi_nodes = stats.semi_nodes;
      st.current_num_nodes = current.num_nodes;
      st.current_num_edges = current.num_edges;
      st.contraction_seconds = stats.contraction_seconds;
      st.semi_seconds = stats.semi_seconds;
      st.iterations = stats.iterations;
      RETURN_IF_ERROR(ckpt.Save(st, {scc_path}));
    }
  }

  // ---- Expansion phase (Alg. 2 lines 6-9) ------------------------------
  // The outermost level writes SCC_1 straight to `scc_output` (line 10
  // fused into the final merge) — no copy out of scratch. Intermediate
  // labels are checkpointed; the final one is not (once the outermost
  // expansion runs, the solve is one output publish from done, and a
  // re-run of just that level is cheaper than checkpointing every run).
  phase_timer.Restart();
  for (auto it = levels.rbegin() + static_cast<std::ptrdiff_t>(expand_done);
       it != levels.rend(); ++it) {
    const bool outermost = std::next(it) == levels.rend();
    std::string out;
    if (outermost) {
      out = scc_output;
    } else if (ckpt.enabled()) {
      out = ckpt.ExpandSccPath(expand_done);
    }
    const ExpansionResult expanded =
        ExpandLevel(context, it->ein, it->eout, it->cover, it->removed,
                    scc_path, &next_scc_id, out);
    if (!ckpt.enabled()) context->temp_files().Remove(scc_path);
    scc_path = expanded.scc_path;
    ++expand_done;
    RETURN_IF_ERROR(BudgetCheck(context, "graph expansion"));
    if (ckpt.enabled() && !outermost) {
      CheckpointSession::ResumeState st;
      st.phase = CheckpointSession::kExpanding;
      st.block_size = context->block_size();
      st.levels_done = levels.size();
      st.expand_done = expand_done;
      st.next_scc_id = next_scc_id;
      st.semi_nodes = stats.semi_nodes;
      st.current_num_nodes = current.num_nodes;
      st.current_num_edges = current.num_edges;
      st.contraction_seconds = stats.contraction_seconds;
      st.semi_seconds = stats.semi_seconds;
      st.iterations = stats.iterations;
      RETURN_IF_ERROR(ckpt.Save(st, {scc_path}));
    }
  }
  stats.expansion_seconds = phase_timer.ElapsedSeconds();

  // ---- Emit SCC_1 (line 10) -------------------------------------------
  if (levels.empty()) {
    // No contraction happened: the base case's labels are SCC_1.
    io::CopyAllRecords<graph::SccEntry>(context, scc_path, scc_output);
    if (!ckpt.enabled()) context->temp_files().Remove(scc_path);
  }

  RETURN_IF_ERROR(BudgetCheck(context, "SCC output"));

  if (ckpt.enabled()) ckpt.Finish(levels.size());

  stats.num_sccs = next_scc_id;
  stats.total_ios = context->stats().total_ios() - start_ios;
  stats.total_seconds = total_timer.ElapsedSeconds();
  return stats;
}

}  // namespace extscc::core
