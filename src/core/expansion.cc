#include "core/expansion.h"

#include <vector>

#include "core/membership_split.h"
#include "extsort/external_sorter.h"
#include "graph/scc_file.h"
#include "io/record_stream.h"
#include "util/logging.h"

namespace extscc::core {

namespace {

using graph::Edge;
using graph::EdgeByDst;
using graph::EdgeBySrc;
using graph::NodeId;
using graph::SccEntry;
using graph::SccEntryByNode;
using graph::SccId;

// The `augment` procedure (Alg. 5 lines 8-14) for one direction.
// `edge_path` must be sorted with the removed-node endpoint as group
// key; `removed_is_head` says which endpoint that is. Produces a
// (removed node, neighbour label) file sorted by (node, label),
// deduplicated.
//
// The four steps — membership filter, re-sort by neighbour, label
// attach, re-sort by (node, label) — run as one fused pipeline: the
// filter feeds a SortingWriter whose final merge drains into the
// label-attach callback, which feeds the output SortingWriter. Only the
// final (node, label) file materializes (the expansion intersect pulls
// from both directions at once, so it needs real files); the three
// intermediates of the stage-per-file form never exist, saving a
// write+read of the removed-side edge set three times over per
// direction.
std::string AugmentDirection(io::IoContext* context,
                             const std::string& edge_path,
                             bool removed_is_head,
                             const std::string& cover_path,
                             const std::string& scc_next_path) {
  extsort::SortingWriter<SccEntry, SccEntryByNode> labeled(
      context, SccEntryByNode(), /*dedup=*/true);
  {
    // Label attach (step 3): skip same-iteration removals — provably
    // Type-1 singletons that witness nothing. Receives edges in
    // neighbour order from the fused sort below, so the label stream
    // advances monotonically.
    io::PeekableReader<SccEntry> labels(context, scc_next_path);
    auto attach = extsort::MakeCallbackSink<Edge>([&](const Edge& e) {
      const NodeId neighbor = removed_is_head ? e.src : e.dst;
      const NodeId removed = removed_is_head ? e.dst : e.src;
      while (labels.has_value() && labels.Peek().node < neighbor) {
        labels.Pop();
      }
      if (labels.has_value() && labels.Peek().node == neighbor) {
        labeled.Add(SccEntry{removed, labels.Peek().scc});
      }
    });
    // Steps 1+2: keep only edges whose removed-side endpoint is NOT in
    // the cover, re-sorted by the *neighbour* endpoint for the lookup.
    const auto removed_key = [removed_is_head](const Edge& e) {
      return removed_is_head ? e.dst : e.src;
    };
    if (removed_is_head) {
      extsort::SortingWriter<Edge, EdgeBySrc> by_neighbor(context,
                                                          EdgeBySrc());
      SplitByMembership(context, edge_path, cover_path, removed_key,
                        [](const Edge&) {},
                        [&](const Edge& e) { by_neighbor.Add(e); });
      by_neighbor.FinishInto(attach);
    } else {
      extsort::SortingWriter<Edge, EdgeByDst> by_neighbor(context,
                                                          EdgeByDst());
      SplitByMembership(context, edge_path, cover_path, removed_key,
                        [](const Edge&) {},
                        [&](const Edge& e) { by_neighbor.Add(e); });
      by_neighbor.FinishInto(attach);
    }
  }

  // Step 4: sort by (removed node, label) and dedup (Alg. 5 line 13).
  const std::string out_path = context->NewTempPath("exp_nbrscc");
  labeled.FinishInto(out_path);
  return out_path;
}

}  // namespace

ExpansionResult ExpandLevel(io::IoContext* context,
                            const std::string& ein_path,
                            const std::string& eout_path,
                            const std::string& cover_path,
                            const std::string& removed_path,
                            const std::string& scc_next_path,
                            SccId* next_scc_id,
                            const std::string& scc_output) {
  ExpansionResult result;

  // E_in is grouped by head: removed-head edges give in-neighbour labels.
  const std::string in_labels_path = AugmentDirection(
      context, ein_path, /*removed_is_head=*/true, cover_path, scc_next_path);
  // E_out is grouped by tail: removed-tail edges give out-neighbour labels.
  const std::string out_labels_path =
      AugmentDirection(context, eout_path, /*removed_is_head=*/false,
                       cover_path, scc_next_path);

  // ---- Intersect per removed node (Alg. 5 line 4) --------------------
  const std::string scc_del_path = context->NewTempPath("scc_del");
  {
    io::PeekableReader<NodeId> removed(context, removed_path);
    io::PeekableReader<SccEntry> in_labels(context, in_labels_path);
    io::PeekableReader<SccEntry> out_labels(context, out_labels_path);
    io::RecordWriter<SccEntry> writer(context, scc_del_path);
    while (removed.has_value()) {
      const NodeId v = removed.Pop();
      // Both label streams are sorted by (node, label); intersect the two
      // sorted label groups of v with one merge pass.
      while (in_labels.has_value() && in_labels.Peek().node < v) {
        in_labels.Pop();
      }
      while (out_labels.has_value() && out_labels.Peek().node < v) {
        out_labels.Pop();
      }
      SccId common = graph::kInvalidScc;
      std::uint32_t matches = 0;
      while (in_labels.has_value() && in_labels.Peek().node == v &&
             out_labels.has_value() && out_labels.Peek().node == v) {
        const SccId a = in_labels.Peek().scc;
        const SccId b = out_labels.Peek().scc;
        if (a == b) {
          common = a;
          ++matches;
          in_labels.Pop();
          out_labels.Pop();
        } else if (a < b) {
          in_labels.Pop();
        } else {
          out_labels.Pop();
        }
      }
      // Lemma 6.2: the intersection holds at most one label.
      CHECK_LE(matches, 1u)
          << "removed node " << v
          << " intersects two distinct neighbour SCCs — SCC-preservable "
             "property violated";
      if (common != graph::kInvalidScc) {
        writer.Append(SccEntry{v, common});
        ++result.removed_in_existing_scc;
      } else {
        writer.Append(SccEntry{v, (*next_scc_id)++});
        ++result.removed_singletons;
      }
      // Drain any leftover labels of v.
      while (in_labels.has_value() && in_labels.Peek().node == v) {
        in_labels.Pop();
      }
      while (out_labels.has_value() && out_labels.Peek().node == v) {
        out_labels.Pop();
      }
    }
    writer.Finish();
  }
  context->temp_files().Remove(in_labels_path);
  context->temp_files().Remove(out_labels_path);

  // ---- SCC_i = SCC_{i+1} ∪ SCC_del, sorted by node (lines 5-6) --------
  result.scc_path =
      scc_output.empty() ? context->NewTempPath("scc_level") : scc_output;
  graph::MergeSccFiles(context, scc_next_path, scc_del_path, result.scc_path);
  context->temp_files().Remove(scc_del_path);
  return result;
}

}  // namespace extscc::core
