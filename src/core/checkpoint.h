// Checkpoint/resume for long Ext-SCC solves. A solve with a checkpoint
// directory routes its phase-boundary outputs (level files, the
// semi-external labels, intermediate expansion labels) into that
// directory instead of session scratch, and after each completed phase
// publishes a small CRC'd MANIFEST naming the phase reached and the
// exact files (with sizes) a resume needs. The manifest is published
// with the same durable protocol as serve artifacts — write
// "MANIFEST.tmp", fsync, rename, fsync the parent directory — so a
// crash at ANY instant leaves either the previous manifest or the new
// one, never a torn mix, and `extscc_tool solve --resume` re-does only
// the phases after the last completed one.
//
// The manifest carries a data_version (a hash of the input identity,
// the solve options, and the block size). A resume whose recomputed
// version differs refuses with kFailedPrecondition instead of silently
// splicing phases of two different solves together.
//
// Checkpoint writes never touch the Aggarwal-Vitter model I/O columns:
// the phase outputs cost exactly the block I/Os they always cost (same
// writes, different path), and manifest traffic + fsyncs land in the
// dedicated checkpoint_writes / checkpoint_reads / sync_calls counters
// (io_stats.h).
#ifndef EXTSCC_CORE_CHECKPOINT_H_
#define EXTSCC_CORE_CHECKPOINT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "core/ext_scc.h"
#include "graph/disk_graph.h"
#include "io/io_context.h"
#include "util/status.h"

namespace extscc::core {

// Identity hash binding a checkpoint to one (input, options, geometry)
// triple. FNV-1a over the input node/edge counts, the §VII toggles,
// the semi backend, and the block size — deliberately NOT the input
// paths, which are per-session scratch names that differ between a
// crashed solve and its resume; the manifest's exact-size file
// validation carries the binding to the bytes.
std::uint64_t SolveDataVersion(const graph::DiskGraph& input,
                               const ExtSccOptions& options,
                               std::size_t block_size);

class CheckpointSession {
 public:
  // Solve phases in completion order. kContracting with levels_done=L
  // means L contraction levels are durable; kSemiDone additionally has
  // the semi-external labels; kExpanding with expand_done=K has K
  // expansion levels folded in.
  enum Phase : std::uint32_t {
    kContracting = 0,
    kSemiDone = 1,
    kExpanding = 2,
  };

  // Everything RunExtScc needs to restart from a completed phase.
  struct ResumeState {
    std::uint32_t phase = kContracting;
    std::uint64_t data_version = 0;
    std::uint64_t block_size = 0;
    std::uint64_t levels_done = 0;
    std::uint64_t expand_done = 0;
    std::uint64_t next_scc_id = 0;
    std::uint64_t semi_nodes = 0;
    // The contracted graph G_L the next phase consumes (node/edge paths
    // are derived from the directory scheme, only the counts persist).
    std::uint64_t current_num_nodes = 0;
    std::uint64_t current_num_edges = 0;
    // Timer baselines so a resumed solve reports cumulative phase times.
    double contraction_seconds = 0;
    double semi_seconds = 0;
    std::vector<ContractionIterationStats> iterations;
  };

  // `dir` empty disables checkpointing (enabled() false, all other
  // calls must not be made).
  CheckpointSession(io::IoContext* context, std::string dir,
                    std::uint64_t data_version);

  bool enabled() const { return !dir_.empty(); }
  const std::string& dir() const { return dir_; }
  std::string ManifestPath() const;

  // The directory scheme. Level files: "l<i>.ein|.eout|.cover|.removed"
  // plus "l<i>.enext" (the contracted edge file feeding level i+1).
  std::string LevelPath(std::size_t level, const char* kind) const;
  // Semi-external base-case labels: "scc_semi".
  std::string SemiSccPath() const;
  // Labels after the k-th expansion (0-based): "scc_x<k>". The
  // outermost expansion writes straight to the caller's scc_output and
  // is never checkpointed — once it runs, the solve is one durable
  // publish from done.
  std::string ExpandSccPath(std::size_t k) const;

  // Loads and validates the manifest. kNotFound: no manifest (fresh
  // run). kCorruption: manifest damaged (magic/CRC). kFailedPrecondition:
  // manifest intact but a referenced file is missing or resized. The
  // caller still must compare data_version/block_size against its own.
  util::Result<ResumeState> Load();

  // Durably publishes `state`. `new_files` are the files completed
  // since the previous Save; they are fsynced BEFORE the manifest
  // references them (a manifest must never point at data still in the
  // page cache). All costs land in checkpoint/sync counters.
  util::Status Save(const ResumeState& state,
                    const std::vector<std::string>& new_files);

  // Solve finished: best-effort removal of the manifest (first — a
  // crash mid-cleanup must not leave a manifest naming deleted files)
  // and all checkpoint files for `num_levels` levels.
  void Finish(std::size_t num_levels);

 private:
  // The relative file names `state` obligates a resume to find,
  // matching the needs of the phase: contraction needs every level so
  // far plus the live edge file, expansion drops already-folded levels.
  std::vector<std::string> RequiredFiles(const ResumeState& state) const;

  io::IoContext* context_;
  std::string dir_;
  std::uint64_t data_version_;
};

}  // namespace extscc::core

#endif  // EXTSCC_CORE_CHECKPOINT_H_
