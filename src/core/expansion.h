// Expansion (Algorithm 5): given G_i, the cover V_{i+1}, and the SCC
// labels SCC_{i+1} of all surviving nodes, computes SCC_i — labels for
// every node of G_i.
//
// For each removed node v (Lemmas 6.1-6.4):
//   SCC(v) = the unique common label of SCC(nbr_in(v)) ∩ SCC(nbr_out(v))
//            when that intersection is non-empty (Lemma 6.2 proves it has
//            at most one element), else a fresh singleton label.
//
// Pipeline (the `augment` procedure of Alg. 5, run once per direction):
//   in-side : E_in ✶ V_{i+1} keeps in-edges of removed nodes; re-sort by
//             tail; ✶ SCC_{i+1} attaches the tail's label; re-sort by
//             (removed node, label) and dedup — a sorted stream of
//             (v, label of an in-neighbour).
//   out-side: symmetric on E_out (the paper reverses E_i and reuses
//             augment; same computation).
//   Tails/heads that are not in SCC_{i+1} were removed in the same
//   iteration; such edges are incident to Type-1 singletons and cannot
//   witness an SCC, so they are skipped (see DESIGN.md §7).
//   Finally the two streams are intersected per removed node — driven by
//   the removed-node file so nodes with no incident edges also get their
//   singleton label — and merged with SCC_{i+1} (lines 4-6).
#ifndef EXTSCC_CORE_EXPANSION_H_
#define EXTSCC_CORE_EXPANSION_H_

#include <cstdint>
#include <string>

#include "graph/graph_types.h"
#include "io/io_context.h"

namespace extscc::core {

struct ExpansionResult {
  std::string scc_path;  // SCC_i, sorted by node id
  std::uint64_t removed_in_existing_scc = 0;  // joined a surviving SCC
  std::uint64_t removed_singletons = 0;       // fresh singleton SCCs
};

// `ein_path`/`eout_path`: G_i's edges sorted by (dst,src) / (src,dst).
// `cover_path`: V_{i+1} sorted unique; `removed_path`: V_i - V_{i+1}
// sorted unique; `scc_next_path`: SCC_{i+1} sorted by node.
// Fresh singleton labels are allocated from *next_scc_id.
// `scc_output` (optional) names the file to write SCC_i to — the driver
// passes its final output path for the outermost level so SCC_1 is
// emitted in place instead of being copied out of scratch; when empty, a
// scratch path is allocated and returned in ExpansionResult::scc_path.
ExpansionResult ExpandLevel(io::IoContext* context,
                            const std::string& ein_path,
                            const std::string& eout_path,
                            const std::string& cover_path,
                            const std::string& removed_path,
                            const std::string& scc_next_path,
                            graph::SccId* next_scc_id,
                            const std::string& scc_output = "");

}  // namespace extscc::core

#endif  // EXTSCC_CORE_EXPANSION_H_
