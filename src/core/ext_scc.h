// Ext-SCC (Algorithm 2): the paper's external SCC algorithm.
//
//   contraction phase: while the node set does not fit in memory,
//     V_{i+1} = Get-V(G_i)   (vertex cover; contractible + recoverable)
//     E_{i+1} = Get-E(G_i)   (shortcut rewiring; SCC-preservable)
//   base case:          Semi-SCC on G_l (all nodes fit in M)
//   expansion phase:    re-insert removed batches in reverse order,
//                       labelling each batch from its neighbours' SCCs.
//
// ExtSccOptions::Basic() is the paper's Ext-SCC; ::Optimized() is
// Ext-SCC-Op with all §VII reductions. Individual toggles exist for the
// ablation bench.
#ifndef EXTSCC_CORE_EXT_SCC_H_
#define EXTSCC_CORE_EXT_SCC_H_

#include <cstdint>
#include <string>
#include <vector>

#include "core/node_order.h"
#include "graph/disk_graph.h"
#include "io/io_context.h"
#include "scc/br_tree_scc.h"
#include "scc/semi_external_scc.h"
#include "util/status.h"

namespace extscc::core {

struct ExtSccOptions {
  // §VII toggles. Basic() leaves all off; Optimized() turns all on.
  bool type1_reduction = false;
  bool type2_reduction = false;
  bool refined_order = false;         // Definition 7.1 instead of 5.1
  bool dedup_parallel_edges = false;  // lazy, at each level's E_in/E_out sort
  // Self-loop elimination is unconditional (both modes): a self-loop node
  // could never leave the cover, breaking Lemma 5.2's strict shrinkage.

  // Semi-external base case (Alg. 2 line 5). Both backends honour the
  // identical memory contract (16 bytes/node), so the contraction stop
  // condition — and hence the iteration structure — is backend-agnostic.
  // kBrTree is the spanning-tree family the paper plugs in (1PB-SCC
  // [26]); kColoring is this library's forward-backward default.
  scc::SemiSccBackend semi_backend = scc::SemiSccBackend::kColoring;

  // Safety valve only — Lemma 5.2 guarantees strict progress, so the
  // driver fails loudly (FailedPrecondition) if it ever trips.
  std::uint32_t max_iterations = 10000;

  // Crash-safe checkpointing (checkpoint.h). Non-empty: phase-boundary
  // outputs land in this directory and a CRC'd manifest is durably
  // published after every completed contraction level, the semi base
  // case, and every non-final expansion level. With `resume`, a solve
  // that finds a matching manifest re-does only the phases after the
  // last completed one; a manifest for a DIFFERENT input/options/block
  // size fails with kFailedPrecondition rather than splicing solves.
  // Checkpoint costs appear only in the sync_calls/checkpoint_* stats
  // counters, never in model block I/Os.
  std::string checkpoint_dir;
  bool resume = false;

  static ExtSccOptions Basic() { return {}; }
  static ExtSccOptions Optimized() {
    ExtSccOptions opt;
    opt.type1_reduction = true;
    opt.type2_reduction = true;
    opt.refined_order = true;
    opt.dedup_parallel_edges = true;
    return opt;
  }
};

struct ContractionIterationStats {
  std::uint32_t level = 0;      // i: this iteration built G_{i+1} from G_i
  std::uint64_t nodes = 0;      // |V_i|
  std::uint64_t edges = 0;      // |E_i| (after lazy dedup in Op mode)
  std::uint64_t cover_nodes = 0;  // |V_{i+1}|
  std::uint64_t next_edges = 0;   // |E_{i+1}|
  std::uint64_t new_edges = 0;    // |E_add|
  std::uint64_t type2_skips = 0;
  double seconds = 0;
  std::uint64_t ios = 0;
};

struct ExtSccStats {
  std::vector<ContractionIterationStats> iterations;
  scc::SemiSccStats semi;
  std::uint64_t semi_nodes = 0;  // |V_l| handed to Semi-SCC
  std::uint64_t num_sccs = 0;
  double contraction_seconds = 0;
  double semi_seconds = 0;
  double expansion_seconds = 0;
  std::uint64_t total_ios = 0;
  double total_seconds = 0;

  std::uint32_t num_levels() const {
    return static_cast<std::uint32_t>(iterations.size());
  }
};

// Computes all SCCs of `input`, writing the (node, scc) file sorted by
// node id to `scc_output`. Labels are dense in [0, stats.num_sccs).
//
// Returns ResourceExhausted when the context's I/O budget trips (the
// paper's INF censoring) and FailedPrecondition if the iteration safety
// valve trips.
util::Result<ExtSccStats> RunExtScc(io::IoContext* context,
                                    const graph::DiskGraph& input,
                                    const std::string& scc_output,
                                    const ExtSccOptions& options);

}  // namespace extscc::core

#endif  // EXTSCC_CORE_EXT_SCC_H_
