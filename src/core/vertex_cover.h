// Get-V (Algorithm 3): computes the node set V_{i+1} of the contracted
// graph as a vertex cover of G_i, selected edge-by-edge with the paper's
// `>` total order (adapting the external 2-approximation of Angel et al.
// [7]). By Lemma 5.1/5.2 the result is recoverable and contractible.
//
// Pipeline (sorts + sequential scans only, mirroring Alg. 3 lines 1-10):
//   1.  E_in  := edges sorted by (dst, src)     [driver provides]
//       E_out := edges sorted by (src, dst)     [driver provides]
//   2.  V_d   := per-node (deg_in, deg_out), by merging the grouped
//                E_in / E_out streams (line 4). Op-mode Type-1 reduction
//                (Lemma 7.1) drops nodes with deg_in = 0 or deg_out = 0
//                here; their incident edges drop out of the joins below,
//                which is safe because no cycle passes through them.
//   3.  E_d'  := E_out ✶ V_d, augmenting tail degrees (line 5), then
//                sorted by head (line 6).
//   4.  Final merge E_d' ✶ V_d augments head degrees (line 7) and is
//                fused with the selection scan (lines 8-9): the larger
//                endpoint under `>` joins the cover. Op-mode Type-2
//                reduction consults the bounded dictionary T: when the
//                smaller endpoint is already a cover member, the edge is
//                already covered and the larger endpoint is not added.
//   5.  Cover candidates are sorted and deduplicated (line 10).
//
// Fusing line 7's join with the line 8-9 scan saves one materialization;
// the sequence of sorts and scans — and hence the I/O complexity
// O(sort(|E_i|) + sort(|V_i|)) of Theorem 5.1 — is unchanged.
#ifndef EXTSCC_CORE_VERTEX_COVER_H_
#define EXTSCC_CORE_VERTEX_COVER_H_

#include <cstdint>
#include <string>

#include "core/node_order.h"
#include "io/io_context.h"

namespace extscc::core {

struct CoverOptions {
  OrderVariant order = OrderVariant::kDegreeId;
  bool type1_reduction = false;  // Lemma 7.1 (Op mode)
  bool type2_reduction = false;  // bounded dictionary T (Op mode)
  // Where to write the cover file. Empty: a fresh scratch path (the
  // default). A checkpointed solve points this at its checkpoint
  // directory so the file survives the session — same writes either
  // way, so the model I/O count is identical.
  std::string cover_output;
};

struct CoverResult {
  std::string cover_path;      // sorted unique NodeId file (V_{i+1})
  std::uint64_t cover_count = 0;
  std::uint64_t degree_nodes = 0;   // |V_d| after Type-1 reduction
  std::uint64_t type2_skips = 0;    // edges whose add was suppressed by T
};

// `ein_path` / `eout_path` are the level's edge file sorted by (dst, src)
// and (src, dst) respectively.
CoverResult ComputeVertexCover(io::IoContext* context,
                               const std::string& ein_path,
                               const std::string& eout_path,
                               const CoverOptions& options);

}  // namespace extscc::core

#endif  // EXTSCC_CORE_VERTEX_COVER_H_
