// Semi-DFS-SCC: the semi-external competitor of Section III — Algorithm 1
// (Kosaraju-Sharir) realized with the semi-external DFS of Sibeyn, Abello
// and Meyer [23] instead of the external BRT DFS of [8].
//
// Phase 1 (semi-external DFS): a spanning forest of G is kept in memory
// (parent pointer + preorder position per node) and repaired by
// sequential scans of the edge file. An edge (u, v) with pre(u) < pre(v)
// where u is not an ancestor of v is a "forward cross" edge — impossible
// in a DFS forest (when u was active, v was undiscovered and reachable,
// so v must have become a descendant). Each violation is repaired by
// re-hanging v's subtree under u; a scan with no violations proves the
// forest is a DFS forest, whose postorder equals DFS finish order.
//
// Phase 2 (Kosaraju second pass, as a fixpoint instead of a reverse DFS):
// comp(v) = max{ fin(u) : v reaches u }. By the Kosaraju ordering lemma
// (an edge between SCCs C -> C' implies maxfin(C) > maxfin(C')), the
// maximum finish time reachable from v is attained inside SCC(v), and
// maxfin values are distinct per SCC — so comp() labels SCCs exactly.
// The fixpoint is computed by sequential edge scans propagating
// f(src) = max(f(src), f(dst)).
//
// Why the paper still rejects this family (Section III): Algorithm 1
// needs the *total* postorder of the first DFS before the second pass can
// start, so no node can be retired or contracted early — the whole node
// array stays pinned for the full run, and the repair loop re-scans all
// of E until the forest converges. Ext-SCC's contraction avoids exactly
// that. This baseline exists for the §III comparison benches; it
// requires c·|V| <= M like any semi-external algorithm.
#ifndef EXTSCC_BASELINE_SEMI_DFS_SCC_H_
#define EXTSCC_BASELINE_SEMI_DFS_SCC_H_

#include <cstdint>
#include <string>

#include "graph/disk_graph.h"
#include "io/io_context.h"
#include "io/memory_budget.h"
#include "util/status.h"

namespace extscc::baseline {

struct SemiDfsSccStats {
  std::uint64_t dfs_passes = 0;        // phase-1 repair scans
  std::uint64_t rehangs = 0;           // subtree re-hangs during phase 1
  std::uint64_t propagate_passes = 0;  // phase-2 fixpoint scans
  std::uint64_t num_sccs = 0;
  std::uint64_t total_ios = 0;
  double total_seconds = 0;
};

class SemiDfsScc {
 public:
  // parent + preorder + finish + component word per node, plus the
  // transient children index used to re-derive orders (one parent per
  // node, so O(|V|) entries).
  static constexpr std::uint64_t kBytesPerNode = 24;

  static bool Fits(std::uint64_t num_nodes, const io::MemoryBudget& memory);

  // Writes the (node, scc) file sorted by node id to `scc_output`.
  // Returns ResourceExhausted if the context's I/O budget trips, and
  // FailedPrecondition if the DFS repair loop fails to converge within
  // its safety cap (never observed; the heuristic has no worst-case
  // bound in [23]).
  static util::Result<SemiDfsSccStats> Run(io::IoContext* context,
                                           const graph::DiskGraph& input,
                                           const std::string& scc_output);
};

}  // namespace extscc::baseline

#endif  // EXTSCC_BASELINE_SEMI_DFS_SCC_H_
