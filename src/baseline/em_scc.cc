#include "baseline/em_scc.h"

#include <algorithm>
#include <vector>

#include "extsort/external_sorter.h"
#include "graph/digraph.h"
#include "graph/node_file.h"
#include "io/record_stream.h"
#include "scc/tarjan.h"
#include "util/logging.h"
#include "util/timer.h"

namespace extscc::baseline {

namespace {

using graph::Edge;
using graph::EdgeByDst;
using graph::EdgeBySrc;
using graph::NodeId;
using graph::SccEntry;
using graph::SccId;

// Bytes charged per node / per edge for the "fits in memory" test and the
// partition size (CSR arrays + Tarjan state).
constexpr std::uint64_t kBytesPerNode = 32;
constexpr std::uint64_t kBytesPerEdge = 16;
constexpr std::uint32_t kMaxIterations = 64;

bool FitsInMemory(std::uint64_t nodes, std::uint64_t edges,
                  const io::MemoryBudget& memory) {
  return nodes * kBytesPerNode + edges * kBytesPerEdge <=
         memory.total_bytes();
}

// Applies the partial mapping `f` (Edge{node, rep} sorted by node) to one
// endpoint of every edge in `edges_in` (sorted by that endpoint).
void MapEndpoint(io::IoContext* context, const std::string& edges_in,
                 const std::string& mapping, bool map_src,
                 const std::string& edges_out) {
  io::PeekableReader<Edge> edges(context, edges_in);
  io::PeekableReader<Edge> map(context, mapping);
  io::RecordWriter<Edge> writer(context, edges_out);
  while (edges.has_value()) {
    const NodeId key = map_src ? edges.Peek().src : edges.Peek().dst;
    while (map.has_value() && map.Peek().src < key) map.Pop();
    const bool mapped = map.has_value() && map.Peek().src == key;
    Edge e = edges.Pop();
    if (mapped) {
      if (map_src) {
        e.src = map.Peek().dst;
      } else {
        e.dst = map.Peek().dst;
      }
    }
    writer.Append(e);
  }
  writer.Finish();
}

}  // namespace

util::Result<EmSccStats> RunEmScc(io::IoContext* context,
                                  const graph::DiskGraph& input,
                                  const std::string& scc_output) {
  EmSccStats stats;
  util::Timer timer;
  const std::uint64_t start_ios = context->stats().total_ios();

  // Translation table T: (original node, current contracted node), as
  // Edge records. Starts as the identity.
  std::string translation = context->NewTempPath("em_translation");
  {
    io::RecordReader<NodeId> nodes(context, input.node_path);
    io::RecordWriter<Edge> writer(context, translation);
    NodeId v;
    while (nodes.Next(&v)) writer.Append(Edge{v, v});
    writer.Finish();
  }

  std::string cur_edges = input.edge_path;
  std::uint64_t cur_edge_count = input.num_edges;
  std::uint64_t cur_node_count = input.num_nodes;

  const std::uint64_t partition_edges = std::max<std::uint64_t>(
      16, context->memory().total_bytes() / (kBytesPerEdge + kBytesPerNode));

  while (!FitsInMemory(cur_node_count, cur_edge_count, context->memory())) {
    if (stats.iterations >= kMaxIterations) {
      return util::Status::FailedPrecondition(
          "EM-SCC exceeded the iteration cap without fitting in memory");
    }
    ++stats.iterations;

    // ---- Partition pass: in-memory SCCs per chunk, emit contractions.
    const std::string mapping_raw = context->NewTempPath("em_map_raw");
    std::uint64_t mapped = 0;
    {
      io::RecordReader<Edge> reader(context, cur_edges);
      io::RecordWriter<Edge> map_writer(context, mapping_raw);
      std::vector<Edge> chunk;
      chunk.reserve(static_cast<std::size_t>(partition_edges));
      Edge e;
      bool more = true;
      while (more) {
        chunk.clear();
        while (chunk.size() < partition_edges && (more = reader.Next(&e))) {
          chunk.push_back(e);
        }
        if (chunk.empty()) break;
        const graph::Digraph g(chunk);
        SccId next = 0;
        const std::vector<SccId> label = scc::TarjanSccDense(g, &next);
        // Representative per component: the minimum node id.
        std::vector<NodeId> rep(next, graph::kInvalidNode);
        for (std::size_t i = 0; i < g.num_nodes(); ++i) {
          rep[label[i]] = std::min(rep[label[i]], g.id_of(i));
        }
        std::vector<std::uint32_t> size(next, 0);
        for (std::size_t i = 0; i < g.num_nodes(); ++i) size[label[i]] += 1;
        for (std::size_t i = 0; i < g.num_nodes(); ++i) {
          const NodeId id = g.id_of(i);
          if (size[label[i]] >= 2 && rep[label[i]] != id) {
            map_writer.Append(Edge{id, rep[label[i]]});
            ++mapped;
          }
        }
      }
      map_writer.Finish();
    }

    if (mapped == 0) {
      return util::Status::FailedPrecondition(
          "EM-SCC stalled: an iteration contracted nothing (the paper's "
          "Case-1/Case-2 non-termination)");
    }

    // A node may be contracted in several partitions; keep one mapping
    // per node (sort by (node, rep), dedup by node via first-wins scan).
    const std::string mapping = context->NewTempPath("em_map");
    {
      const std::string sorted = context->NewTempPath("em_map_sorted");
      extsort::SortFile<Edge, EdgeBySrc>(context, mapping_raw, sorted,
                                         EdgeBySrc());
      io::PeekableReader<Edge> in(context, sorted);
      io::RecordWriter<Edge> out(context, mapping);
      while (in.has_value()) {
        const Edge first = in.Pop();
        out.Append(first);
        while (in.has_value() && in.Peek().src == first.src) in.Pop();
      }
      out.Finish();
      context->temp_files().Remove(sorted);
    }
    context->temp_files().Remove(mapping_raw);

    // ---- Rewrite the edge file under the mapping.
    const std::string by_src = context->NewTempPath("em_bysrc");
    extsort::SortFile<Edge, EdgeBySrc>(context, cur_edges, by_src,
                                       EdgeBySrc());
    const std::string src_mapped = context->NewTempPath("em_srcmapped");
    MapEndpoint(context, by_src, mapping, /*map_src=*/true, src_mapped);
    context->temp_files().Remove(by_src);

    const std::string by_dst = context->NewTempPath("em_bydst");
    extsort::SortFile<Edge, EdgeByDst>(context, src_mapped, by_dst,
                                       EdgeByDst());
    context->temp_files().Remove(src_mapped);
    const std::string dst_mapped = context->NewTempPath("em_dstmapped");
    MapEndpoint(context, by_dst, mapping, /*map_src=*/false, dst_mapped);
    context->temp_files().Remove(by_dst);

    // Drop self-loops, dedup parallel edges.
    const std::string cleaned = context->NewTempPath("em_cleaned");
    {
      io::RecordReader<Edge> in(context, dst_mapped);
      io::RecordWriter<Edge> out(context, cleaned);
      Edge e;
      while (in.Next(&e)) {
        if (e.src != e.dst) out.Append(e);
      }
      out.Finish();
    }
    context->temp_files().Remove(dst_mapped);
    const std::string next_edges = context->NewTempPath("em_edges");
    extsort::SortFile<Edge, EdgeBySrc>(context, cleaned, next_edges,
                                       EdgeBySrc(), /*dedup=*/true);
    context->temp_files().Remove(cleaned);

    // ---- Compose the translation table: cur' = f(cur).
    const std::string t_by_cur = context->NewTempPath("em_t_bycur");
    extsort::SortFile<Edge, EdgeByDst>(context, translation, t_by_cur,
                                       EdgeByDst());
    context->temp_files().Remove(translation);
    translation = context->NewTempPath("em_translation");
    {
      io::PeekableReader<Edge> t_in(context, t_by_cur);
      io::PeekableReader<Edge> map(context, mapping);
      io::RecordWriter<Edge> t_out(context, translation);
      while (t_in.has_value()) {
        const NodeId cur = t_in.Peek().dst;
        while (map.has_value() && map.Peek().src < cur) map.Pop();
        const bool remapped = map.has_value() && map.Peek().src == cur;
        Edge entry = t_in.Pop();
        if (remapped) entry.dst = map.Peek().dst;
        t_out.Append(entry);
      }
      t_out.Finish();
    }
    context->temp_files().Remove(t_by_cur);
    context->temp_files().Remove(mapping);
    if (cur_edges != input.edge_path) {
      context->temp_files().Remove(cur_edges);
    }
    cur_edges = next_edges;
    cur_edge_count = io::NumRecordsInFile<Edge>(context, cur_edges);
    // Node count of the contracted graph: distinct current values in T.
    // (Cheaper proxy: endpoints of the edge file plus edgeless groups are
    // counted below at labelling time; for the fit test, distinct T.dst.)
    {
      const std::string t_sorted = context->NewTempPath("em_t_cnt");
      extsort::SortFile<Edge, EdgeByDst>(context, translation, t_sorted,
                                         EdgeByDst());
      io::PeekableReader<Edge> t(context, t_sorted);
      std::uint64_t distinct = 0;
      while (t.has_value()) {
        const NodeId cur = t.Pop().dst;
        ++distinct;
        while (t.has_value() && t.Peek().dst == cur) t.Pop();
      }
      cur_node_count = distinct;
      context->temp_files().Remove(t_sorted);
    }

    if (context->io_budget_exceeded()) {
      return util::Status::ResourceExhausted(
          "EM-SCC exceeded the I/O budget (INF)");
    }
  }

  // ---- Final in-memory solve + label propagation through T. ----------
  SccId next_label = 0;
  scc::SccResult final_labels;  // labels of current (contracted) nodes
  {
    const auto edges = io::ReadAllRecords<Edge>(context, cur_edges);
    const graph::Digraph g(edges);
    final_labels = scc::TarjanScc(g, &next_label);
  }

  const std::string t_by_cur = context->NewTempPath("em_t_final");
  extsort::SortFile<Edge, EdgeByDst>(context, translation, t_by_cur,
                                     EdgeByDst());
  context->temp_files().Remove(translation);

  const std::string labeled = context->NewTempPath("em_labeled");
  {
    io::PeekableReader<Edge> t(context, t_by_cur);
    io::RecordWriter<SccEntry> out(context, labeled);
    while (t.has_value()) {
      const NodeId cur = t.Peek().dst;
      // Contracted nodes that lost all their edges are complete SCCs.
      const SccId label = final_labels.Contains(cur)
                              ? final_labels.LabelOf(cur)
                              : next_label++;
      while (t.has_value() && t.Peek().dst == cur) {
        out.Append(SccEntry{t.Pop().src, label});
      }
    }
    out.Finish();
  }
  context->temp_files().Remove(t_by_cur);

  extsort::SortFile<SccEntry, graph::SccEntryByNode>(
      context, labeled, scc_output, graph::SccEntryByNode());
  context->temp_files().Remove(labeled);
  if (cur_edges != input.edge_path) context->temp_files().Remove(cur_edges);

  stats.num_sccs = next_label;
  stats.total_ios = context->stats().total_ios() - start_ios;
  stats.total_seconds = timer.ElapsedSeconds();
  return stats;
}

}  // namespace extscc::baseline
