// External depth-first search in the style of Buchsbaum et al. [8]:
// adjacency lists fetched from an on-disk CSR (random block reads), DFS
// frames on an external stack, and a buffered repository tree carrying
// "neighbour now visited" messages (for each newly visited v, one message
// (w, v) per in-neighbour w; the DFS extracts its current vertex's
// messages when the vertex is entered and whenever it is resumed).
//
// Simulation note (see DESIGN.md): visited decisions consult an
// in-memory oracle bitmap so that the traversal is exactly correct, but
// every I/O the real algorithm performs — adjacency fetches, stack
// traffic, BRT inserts/extracts — is physically performed and charged to
// the IoContext. The measured I/O profile is the baseline's; only its
// control flow is oracle-assisted.
#ifndef EXTSCC_BASELINE_EXTERNAL_DFS_H_
#define EXTSCC_BASELINE_EXTERNAL_DFS_H_

#include <cstdint>
#include <cstring>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "graph/disk_graph.h"
#include "graph/graph_types.h"
#include "io/io_context.h"
#include "io/record_stream.h"

namespace extscc::baseline {

// File-backed LIFO stack with a single in-memory block buffer: pushes and
// pops touch disk only when the buffer boundary is crossed, i.e. O(1/B)
// amortized I/Os per operation.
template <typename T>
class ExternalStack {
 public:
  explicit ExternalStack(io::IoContext* context)
      : context_(context),
        path_(context->NewTempPath("xstack")),
        file_(std::make_unique<io::BlockFile>(context, path_,
                                              io::OpenMode::kReadWrite)),
        per_block_(context->block_size() / sizeof(T)),
        scratch_(context->block_size()) {
    buffer_.reserve(2 * per_block_);
  }

  ~ExternalStack() { context_->temp_files().Remove(path_); }

  bool empty() const { return size_ == 0; }
  std::uint64_t size() const { return size_; }

  void Push(const T& value) {
    if (buffer_.size() == 2 * per_block_) {
      // Spill the older half as one block.
      std::memcpy(scratch_.data(), buffer_.data(), per_block_ * sizeof(T));
      file_->WriteBlock(spilled_blocks_++, scratch_.data(),
                        per_block_ * sizeof(T));
      buffer_.erase(buffer_.begin(), buffer_.begin() + per_block_);
    }
    buffer_.push_back(value);
    ++size_;
  }

  T Pop() {
    if (buffer_.empty()) {
      file_->ReadBlock(--spilled_blocks_, scratch_.data());
      buffer_.resize(per_block_);
      std::memcpy(buffer_.data(), scratch_.data(), per_block_ * sizeof(T));
    }
    T out = buffer_.back();
    buffer_.pop_back();
    --size_;
    return out;
  }

 private:
  io::IoContext* context_;
  std::string path_;
  std::unique_ptr<io::BlockFile> file_;
  std::size_t per_block_;
  std::vector<char> scratch_;
  std::vector<T> buffer_;
  std::uint64_t spilled_blocks_ = 0;
  std::uint64_t size_ = 0;
};

// On-disk CSR over dense indices 0..num_nodes-1 (positions in the
// graph's sorted node file).
struct DiskCsr {
  std::string offsets_path;  // num_nodes + 1 uint64 records
  std::string targets_path;  // num_edges uint32 records
  std::uint32_t num_nodes = 0;
  std::uint64_t num_edges = 0;
};

// Builds the CSR of `g` (or of its reverse) with external sorts and
// sequential scans.
DiskCsr BuildDiskCsr(io::IoContext* context, const graph::DiskGraph& g,
                     bool reversed);

struct ExternalDfsStats {
  std::uint64_t nodes_visited = 0;
  std::uint64_t brt_inserts = 0;
  std::uint64_t brt_extracts = 0;
};

// Runs a full-forest DFS over `forward`. Roots are tried in the order
// produced by `next_root` (returns kInvalidNode when exhausted; already
// visited candidates are skipped). `reverse` provides in-neighbour lists
// for the BRT message traffic. `on_finalize(v)` fires in postorder;
// `on_root(v)` fires when a new tree starts.
//
// Returns false if the context's I/O budget tripped mid-traversal.
bool RunExternalDfs(io::IoContext* context, const DiskCsr& forward,
                    const DiskCsr& reverse,
                    const std::function<graph::NodeId()>& next_root,
                    const std::function<void(std::uint32_t)>& on_root,
                    const std::function<void(std::uint32_t)>& on_finalize,
                    ExternalDfsStats* stats);

}  // namespace extscc::baseline

#endif  // EXTSCC_BASELINE_EXTERNAL_DFS_H_
