// DFS-SCC (Algorithm 1 / [8]): external Kosaraju-Sharir. Two external
// DFS passes — the first over G collecting decreasing postorder, the
// second over the reversed graph with roots tried in that order; every
// tree of the second forest is one SCC.
//
// This baseline's cost is dominated by random I/Os (adjacency fetches and
// BRT path walks); the paper reports it as INF on every dataset at scale.
// Callers set IoContextOptions::io_budget to censor it the same way.
#ifndef EXTSCC_BASELINE_DFS_SCC_H_
#define EXTSCC_BASELINE_DFS_SCC_H_

#include <cstdint>
#include <string>

#include "graph/disk_graph.h"
#include "io/io_context.h"
#include "util/status.h"

namespace extscc::baseline {

struct DfsSccStats {
  std::uint64_t num_sccs = 0;
  std::uint64_t brt_inserts = 0;
  std::uint64_t brt_extracts = 0;
  std::uint64_t total_ios = 0;
  double total_seconds = 0;
};

// Writes the (node, scc) file sorted by node id to `scc_output`.
// Returns ResourceExhausted if the context's I/O budget trips (INF).
util::Result<DfsSccStats> RunDfsScc(io::IoContext* context,
                                    const graph::DiskGraph& input,
                                    const std::string& scc_output);

}  // namespace extscc::baseline

#endif  // EXTSCC_BASELINE_DFS_SCC_H_
