#include "baseline/semi_dfs_scc.h"

#include <algorithm>
#include <vector>

#include "io/record_stream.h"
#include "util/logging.h"
#include "util/timer.h"

namespace extscc::baseline {

namespace {

using graph::Edge;
using graph::NodeId;
using graph::SccId;

constexpr std::uint32_t kRoot = 0xffffffffu;

// Forest orders derived from the parent array. Children are visited in
// increasing index order, so the realized DFS (and hence pre/post) is
// deterministic.
struct ForestOrders {
  std::vector<std::uint32_t> pre;
  std::vector<std::uint32_t> post;
};

ForestOrders ComputeOrders(const std::vector<std::uint32_t>& parent) {
  const std::size_t n = parent.size();
  // Children index via counting sort: one parent per node, O(n) entries.
  std::vector<std::uint32_t> child_count(n + 1, 0);
  for (std::size_t v = 0; v < n; ++v) {
    const std::size_t p = parent[v] == kRoot ? n : parent[v];
    ++child_count[p];
  }
  std::vector<std::uint32_t> child_offset(n + 2, 0);
  for (std::size_t i = 0; i <= n; ++i) {
    child_offset[i + 1] = child_offset[i] + child_count[i];
  }
  std::vector<std::uint32_t> children(n);
  {
    std::vector<std::uint32_t> fill(child_offset.begin(),
                                    child_offset.end() - 1);
    for (std::size_t v = 0; v < n; ++v) {
      const std::size_t p = parent[v] == kRoot ? n : parent[v];
      children[fill[p]++] = static_cast<std::uint32_t>(v);
    }
  }

  ForestOrders orders;
  orders.pre.assign(n, 0);
  orders.post.assign(n, 0);
  std::uint32_t pre_clock = 0;
  std::uint32_t post_clock = 0;
  // Iterative DFS; frame = (node, next child slot).
  std::vector<std::pair<std::uint32_t, std::uint32_t>> stack;
  for (std::uint32_t r = child_offset[n]; r < child_offset[n + 1]; ++r) {
    stack.emplace_back(children[r], child_offset[children[r]]);
    orders.pre[children[r]] = pre_clock++;
    while (!stack.empty()) {
      auto& [v, next] = stack.back();
      if (next < child_offset[v + 1]) {
        const std::uint32_t c = children[next++];
        orders.pre[c] = pre_clock++;
        stack.emplace_back(c, child_offset[c]);
      } else {
        orders.post[v] = post_clock++;
        stack.pop_back();
      }
    }
  }
  CHECK_EQ(pre_clock, n);
  return orders;
}

}  // namespace

bool SemiDfsScc::Fits(std::uint64_t num_nodes,
                      const io::MemoryBudget& memory) {
  return num_nodes * kBytesPerNode <= memory.total_bytes();
}

util::Result<SemiDfsSccStats> SemiDfsScc::Run(io::IoContext* context,
                                              const graph::DiskGraph& input,
                                              const std::string& scc_output) {
  CHECK(Fits(input.num_nodes, context->memory()))
      << "Semi-DFS-SCC invoked on " << input.num_nodes
      << " nodes with M=" << context->memory().total_bytes()
      << " — semi-external algorithms require c*|V| <= M";

  SemiDfsSccStats stats;
  util::Timer timer;
  const std::uint64_t start_ios = context->stats().total_ios();

  const std::vector<NodeId> ids =
      io::ReadAllRecords<NodeId>(context, input.node_path);
  const std::size_t n = ids.size();
  CHECK_EQ(n, input.num_nodes);
  io::ScopedReservation reservation(
      &context->memory(),
      std::min<std::uint64_t>(n * kBytesPerNode,
                              context->memory().available_bytes()));

  auto budget_check = [&]() -> util::Status {
    if (context->io_budget_exceeded()) {
      return util::Status::ResourceExhausted(
          "Semi-DFS-SCC exceeded the I/O budget");
    }
    return util::Status::Ok();
  };

  if (n == 0) {
    io::RecordWriter<graph::SccEntry> writer(context, scc_output);
    writer.Finish();
    stats.total_ios = context->stats().total_ios() - start_ios;
    stats.total_seconds = timer.ElapsedSeconds();
    return stats;
  }

  auto index_of = [&](NodeId id) {
    const auto it = std::lower_bound(ids.begin(), ids.end(), id);
    DCHECK(it != ids.end() && *it == id);
    return static_cast<std::uint32_t>(it - ids.begin());
  };

  // Dense-index edge copy, one sequential pass (self-loops dropped — they
  // never affect the forest or the component fixpoint).
  const std::string translated = context->NewTempPath("sdfs_edges_idx");
  {
    io::RecordReader<Edge> reader(context, input.edge_path);
    io::RecordWriter<Edge> writer(context, translated);
    Edge e;
    while (reader.Next(&e)) {
      if (e.src == e.dst) continue;
      writer.Append(Edge{index_of(e.src), index_of(e.dst)});
    }
    writer.Finish();
  }

  // ---- Phase 1: repair the forest into a DFS forest -------------------
  std::vector<std::uint32_t> parent(n, kRoot);

  // Exact ancestor test against the *current* parent array — the firing
  // condition may use a preorder that is stale within a pass, so this
  // walk is what keeps the parent pointers acyclic.
  auto is_ancestor = [&](std::uint32_t a, std::uint32_t b) {
    std::uint32_t x = b;
    std::uint64_t hops = 0;
    while (x != kRoot) {
      if (x == a) return true;
      x = parent[x];
      CHECK_LE(++hops, static_cast<std::uint64_t>(n) + 1)
          << "parent-pointer cycle — semi-DFS invariant broken";
    }
    return false;
  };

  // Safety cap; [23] gives no worst-case bound for the heuristic but
  // observes (as we do in tests) convergence in a handful of passes.
  const std::uint64_t max_passes = 8 * static_cast<std::uint64_t>(n) + 32;
  ForestOrders orders;
  // Preorders must be kept fresh across repairs: judging later edges of
  // a pass against a pre-repair order makes the loop oscillate (two
  // edges (a, c), (b, c) can flip c's parent back and forth forever).
  // The forest is in memory, so a full order recompute after each repair
  // costs O(|V|) CPU and zero I/O — the currency this baseline is
  // measured in is edge-file scans, exactly as in [23].
  bool changed = true;
  while (changed) {
    changed = false;
    if (++stats.dfs_passes > max_passes) {
      return util::Status::FailedPrecondition(
          "semi-external DFS repair did not converge within its safety cap");
    }
    orders = ComputeOrders(parent);
    io::RecordReader<Edge> reader(context, translated);
    Edge e;
    while (reader.Next(&e)) {
      const std::uint32_t u = e.src;
      const std::uint32_t v = e.dst;
      if (u == v) continue;
      // Forward-cross violation: u precedes v but v is not inside u's
      // subtree — impossible in a DFS forest. Repair and refresh.
      if (orders.pre[u] >= orders.pre[v]) continue;
      if (is_ancestor(u, v)) continue;
      parent[v] = u;
      orders = ComputeOrders(parent);
      ++stats.rehangs;
      changed = true;
    }
    RETURN_IF_ERROR(budget_check());
  }

  // Postorder of the converged DFS forest = DFS finish order.
  const std::vector<std::uint32_t>& fin = orders.post;

  // ---- Phase 2: comp(v) = max finish time reachable from v ------------
  std::vector<std::uint32_t> comp(fin);
  changed = true;
  while (changed) {
    changed = false;
    ++stats.propagate_passes;
    io::RecordReader<Edge> reader(context, translated);
    Edge e;
    while (reader.Next(&e)) {
      if (comp[e.dst] > comp[e.src]) {
        comp[e.src] = comp[e.dst];
        changed = true;
      }
    }
    RETURN_IF_ERROR(budget_check());
  }
  context->temp_files().Remove(translated);

  // Dense SCC labels in increasing node order: comp values are finish
  // times, distinct per SCC, so the value identifies the component.
  std::vector<SccId> label_of_fin(n, graph::kInvalidScc);
  SccId next_label = 0;
  io::RecordWriter<graph::SccEntry> writer(context, scc_output);
  for (std::size_t v = 0; v < n; ++v) {
    SccId& slot = label_of_fin[comp[v]];
    if (slot == graph::kInvalidScc) {
      slot = next_label++;
      ++stats.num_sccs;
    }
    writer.Append(graph::SccEntry{ids[v], slot});
  }
  writer.Finish();

  stats.total_ios = context->stats().total_ios() - start_ios;
  stats.total_seconds = timer.ElapsedSeconds();
  return stats;
}

}  // namespace extscc::baseline
