// EM-SCC (Cosgaya-Lozano & Zeh [13]): the whole-graph contraction
// heuristic. Each iteration partitions the edge file into memory-sized
// pieces, finds SCCs inside each piece with an in-memory algorithm, and
// contracts every (partial) SCC found to its minimum-id member; the
// process repeats until the whole graph fits in memory.
//
// As the paper's Section III explains, this can fail to make progress:
// (Case-1) an SCC straddles partitions in a way no partition can see a
// cycle of, or (Case-2) the graph is a DAG larger than memory — in both
// cases no iteration contracts anything. The implementation detects a
// zero-progress iteration and returns FailedPrecondition, reproducing
// the paper's "may end up an infinite loop" verdict without looping
// forever.
#ifndef EXTSCC_BASELINE_EM_SCC_H_
#define EXTSCC_BASELINE_EM_SCC_H_

#include <cstdint>
#include <string>

#include "graph/disk_graph.h"
#include "io/io_context.h"
#include "util/status.h"

namespace extscc::baseline {

struct EmSccStats {
  std::uint32_t iterations = 0;
  std::uint64_t num_sccs = 0;
  std::uint64_t total_ios = 0;
  double total_seconds = 0;
};

// Writes the (node, scc) file sorted by node id to `scc_output`.
// Returns FailedPrecondition when an iteration contracts nothing (the
// paper's non-termination cases) and ResourceExhausted on I/O-budget
// censoring.
util::Result<EmSccStats> RunEmScc(io::IoContext* context,
                                  const graph::DiskGraph& input,
                                  const std::string& scc_output);

}  // namespace extscc::baseline

#endif  // EXTSCC_BASELINE_EM_SCC_H_
