// Buffered Repository Tree (BRT) — the external structure of Buchsbaum,
// Goldwasser, Venkatasubramanian & Westbrook (SODA'00) that backs the
// DFS-SCC baseline. Supports:
//
//   Insert(key, value)  — O((1/B) log2(K/B)) amortized I/Os
//   ExtractAll(key)     — O(log2(K/B)) I/Os, returns & removes all values
//                         stored under `key`
//
// Layout: an implicit complete binary tree over the key space [0, K).
// Every tree node owns a buffer stored as a chain of blocks inside one
// BlockFile (free-list allocator). Inserts append to the root buffer;
// when an internal buffer exceeds one block it is flushed — its records
// are partitioned between the two children by key range. ExtractAll
// walks the root-leaf path of the key, removing matching records from
// each internal buffer and taking the leaf buffer whole. Chain-head
// pointers live in memory (8 bytes per tree node — the page table of the
// structure); every record access is charged block I/O.
#ifndef EXTSCC_BASELINE_BUFFERED_REPOSITORY_TREE_H_
#define EXTSCC_BASELINE_BUFFERED_REPOSITORY_TREE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "graph/graph_types.h"
#include "io/block_file.h"
#include "io/io_context.h"

namespace extscc::baseline {

class BufferedRepositoryTree {
 public:
  struct Item {
    std::uint32_t key = 0;
    std::uint32_t value = 0;
  };

  // Keys must be < num_keys.
  BufferedRepositoryTree(io::IoContext* context, std::uint32_t num_keys);
  ~BufferedRepositoryTree();

  void Insert(std::uint32_t key, std::uint32_t value);

  // Removes and returns every value stored under `key`.
  std::vector<std::uint32_t> ExtractAll(std::uint32_t key);

  std::uint64_t num_items() const { return num_items_; }

 private:
  struct Chain {
    std::int64_t head = -1;  // block index, -1 = empty
    std::uint32_t count = 0; // records in the chain
  };

  // Per-block header: next block in chain (-1 = end), record count.
  struct BlockHeader {
    std::int64_t next = -1;
    std::uint32_t count = 0;
  };

  std::uint64_t AllocateBlock();
  void FreeBlock(std::uint64_t block);

  // Reads an entire chain into memory and frees its blocks.
  std::vector<Item> TakeChain(Chain* chain);
  // Appends items to a chain (packing the tail block).
  void AppendToChain(Chain* chain, const std::vector<Item>& items);

  // Flushes internal node `node` by partitioning its buffer to children.
  void FlushNode(std::uint32_t node);

  bool IsLeaf(std::uint32_t node) const { return node >= leaf_base_; }
  std::uint32_t LeafOf(std::uint32_t key) const { return leaf_base_ + key; }

  io::IoContext* context_;
  std::unique_ptr<io::BlockFile> storage_;
  std::size_t items_per_block_;
  std::uint32_t num_keys_;
  std::uint32_t leaf_base_;     // first leaf in implicit heap numbering
  // The root buffer is memory-resident (the structure's one allowed
  // block, giving the amortized O((1/B) log) insert bound); all other
  // buffers live in `storage_`.
  std::vector<Item> root_buffer_;
  std::vector<Chain> chains_;   // indexed by heap position (1-based)
  std::vector<std::uint64_t> free_blocks_;
  std::uint64_t next_fresh_block_ = 0;
  std::uint64_t num_items_ = 0;
};

}  // namespace extscc::baseline

#endif  // EXTSCC_BASELINE_BUFFERED_REPOSITORY_TREE_H_
