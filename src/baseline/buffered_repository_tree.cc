#include "baseline/buffered_repository_tree.h"

#include <cstring>

#include "util/logging.h"

namespace extscc::baseline {

namespace {

std::uint32_t NextPowerOfTwo(std::uint32_t v) {
  std::uint32_t p = 1;
  while (p < v) p <<= 1;
  return p;
}

}  // namespace

BufferedRepositoryTree::BufferedRepositoryTree(io::IoContext* context,
                                               std::uint32_t num_keys)
    : context_(context),
      storage_(std::make_unique<io::BlockFile>(
          context, context->NewTempPath("brt"), io::OpenMode::kReadWrite)),
      num_keys_(num_keys) {
  CHECK_GT(num_keys, 0u);
  items_per_block_ =
      (context->block_size() - sizeof(BlockHeader)) / sizeof(Item);
  CHECK_GT(items_per_block_, 0u);
  leaf_base_ = NextPowerOfTwo(num_keys);
  chains_.resize(static_cast<std::size_t>(leaf_base_) * 2);
}

BufferedRepositoryTree::~BufferedRepositoryTree() {
  context_->temp_files().Remove(storage_->path());
}

std::uint64_t BufferedRepositoryTree::AllocateBlock() {
  if (!free_blocks_.empty()) {
    const std::uint64_t block = free_blocks_.back();
    free_blocks_.pop_back();
    return block;
  }
  return next_fresh_block_++;
}

void BufferedRepositoryTree::FreeBlock(std::uint64_t block) {
  free_blocks_.push_back(block);
}

std::vector<BufferedRepositoryTree::Item> BufferedRepositoryTree::TakeChain(
    Chain* chain) {
  std::vector<Item> items;
  items.reserve(chain->count);
  std::vector<char> buf(storage_->block_size());
  std::int64_t block = chain->head;
  while (block >= 0) {
    storage_->ReadBlock(static_cast<std::uint64_t>(block), buf.data());
    BlockHeader header;
    std::memcpy(&header, buf.data(), sizeof(header));
    const Item* records =
        reinterpret_cast<const Item*>(buf.data() + sizeof(header));
    items.insert(items.end(), records, records + header.count);
    FreeBlock(static_cast<std::uint64_t>(block));
    block = header.next;
  }
  CHECK_EQ(items.size(), chain->count);
  chain->head = -1;
  chain->count = 0;
  return items;
}

void BufferedRepositoryTree::AppendToChain(Chain* chain,
                                           const std::vector<Item>& items) {
  if (items.empty()) return;
  std::vector<char> buf(storage_->block_size());
  std::size_t pos = 0;
  // New blocks are prepended, so appends never rewrite existing blocks
  // except implicitly through TakeChain/flush cycles.
  while (pos < items.size()) {
    const std::size_t batch =
        std::min(items_per_block_, items.size() - pos);
    BlockHeader header;
    header.next = chain->head;
    header.count = static_cast<std::uint32_t>(batch);
    std::memcpy(buf.data(), &header, sizeof(header));
    std::memcpy(buf.data() + sizeof(header), items.data() + pos,
                batch * sizeof(Item));
    const std::uint64_t block = AllocateBlock();
    storage_->WriteBlock(block, buf.data(),
                         sizeof(header) + batch * sizeof(Item));
    chain->head = static_cast<std::int64_t>(block);
    chain->count += static_cast<std::uint32_t>(batch);
    pos += batch;
  }
}

void BufferedRepositoryTree::FlushNode(std::uint32_t node) {
  DCHECK(!IsLeaf(node));
  Chain* chain = &chains_[node];
  if (chain->count == 0) return;
  const std::vector<Item> items = TakeChain(chain);

  // Key range split: the implicit subtree of `node` covers keys
  // [lo, hi); left child covers the lower half.
  // Compute from heap position: depth d, subtree width leaf_base_ >> d.
  std::uint32_t depth = 0;
  std::uint32_t first_at_depth = 1;
  while (first_at_depth * 2 <= node) {
    first_at_depth *= 2;
    ++depth;
  }
  const std::uint32_t width = leaf_base_ >> depth;
  const std::uint32_t lo = (node - first_at_depth) * width;
  const std::uint32_t mid = lo + width / 2;

  std::vector<Item> left, right;
  left.reserve(items.size());
  right.reserve(items.size());
  for (const Item& item : items) {
    (item.key < mid ? left : right).push_back(item);
  }
  const std::uint32_t left_child = node * 2;
  const std::uint32_t right_child = node * 2 + 1;
  AppendToChain(&chains_[left_child], left);
  AppendToChain(&chains_[right_child], right);
  // Cascade: children that now overflow flush too (leaves never flush —
  // a leaf buffer is the final repository for its key).
  for (const std::uint32_t child : {left_child, right_child}) {
    if (!IsLeaf(child) &&
        chains_[child].count > items_per_block_) {
      FlushNode(child);
    }
  }
}

void BufferedRepositoryTree::Insert(std::uint32_t key, std::uint32_t value) {
  DCHECK_LT(key, num_keys_);
  root_buffer_.push_back(Item{key, value});
  ++num_items_;
  if (root_buffer_.size() <= items_per_block_) return;
  // Root overflow: partition the resident buffer between the root's
  // children (heap nodes 2 and 3), cascading flushes as needed.
  std::vector<Item> left, right;
  left.reserve(root_buffer_.size());
  right.reserve(root_buffer_.size());
  const std::uint32_t mid = leaf_base_ / 2;
  for (const Item& item : root_buffer_) {
    (item.key < mid ? left : right).push_back(item);
  }
  root_buffer_.clear();
  if (leaf_base_ == 1) {
    // Single-key tree: node 1 is the only leaf; keep items resident.
    root_buffer_ = std::move(right);
    return;
  }
  AppendToChain(&chains_[2], left);
  AppendToChain(&chains_[3], right);
  for (const std::uint32_t child : {2u, 3u}) {
    if (!IsLeaf(child) && chains_[child].count > items_per_block_) {
      FlushNode(child);
    }
  }
}

std::vector<std::uint32_t> BufferedRepositoryTree::ExtractAll(
    std::uint32_t key) {
  DCHECK_LT(key, num_keys_);
  std::vector<std::uint32_t> values;
  // Resident root buffer first.
  {
    std::vector<Item> keep;
    keep.reserve(root_buffer_.size());
    for (const Item& item : root_buffer_) {
      if (item.key == key) {
        values.push_back(item.value);
      } else {
        keep.push_back(item);
      }
    }
    root_buffer_ = std::move(keep);
  }
  if (leaf_base_ == 1) {
    num_items_ -= values.size();
    return values;
  }
  // Internal path: remove matching records, keep the rest.
  std::uint32_t node = 1;
  while (!IsLeaf(node)) {
    Chain* chain = &chains_[node];
    if (chain->count > 0) {
      std::vector<Item> items = TakeChain(chain);
      std::vector<Item> keep;
      keep.reserve(items.size());
      for (const Item& item : items) {
        if (item.key == key) {
          values.push_back(item.value);
        } else {
          keep.push_back(item);
        }
      }
      AppendToChain(chain, keep);
    }
    const std::uint32_t depth_width = [&] {
      std::uint32_t first = 1;
      while (first * 2 <= node) first *= 2;
      return leaf_base_ / first;
    }();
    std::uint32_t first = 1;
    while (first * 2 <= node) first *= 2;
    const std::uint32_t lo = (node - first) * depth_width;
    node = (key < lo + depth_width / 2) ? node * 2 : node * 2 + 1;
  }
  // Leaf: everything stored here has this key.
  Chain* leaf = &chains_[node];
  if (leaf->count > 0) {
    for (const Item& item : TakeChain(leaf)) {
      DCHECK_EQ(item.key, key);
      values.push_back(item.value);
    }
  }
  num_items_ -= values.size();
  return values;
}

}  // namespace extscc::baseline
