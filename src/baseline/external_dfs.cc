#include "baseline/external_dfs.h"

#include "baseline/buffered_repository_tree.h"
#include "extsort/external_sorter.h"
#include "util/logging.h"

namespace extscc::baseline {

namespace {

using graph::Edge;
using graph::EdgeByDst;
using graph::EdgeBySrc;
using graph::NodeId;

// Translates one endpoint of every edge to its dense index by merging the
// edge stream (sorted by that endpoint's id) with the node file; writes
// edges with the endpoint replaced by the index.
void TranslateEndpoint(io::IoContext* context, const std::string& edges_in,
                       const std::string& node_path, bool translate_src,
                       const std::string& edges_out) {
  io::PeekableReader<Edge> edges(context, edges_in);
  io::RecordReader<NodeId> nodes(context, node_path);
  io::RecordWriter<Edge> writer(context, edges_out);
  NodeId node = 0;
  std::uint32_t index = 0;
  bool has_node = nodes.Next(&node);
  while (edges.has_value()) {
    const NodeId key =
        translate_src ? edges.Peek().src : edges.Peek().dst;
    while (has_node && node < key) {
      has_node = nodes.Next(&node);
      ++index;
    }
    CHECK(has_node && node == key)
        << "edge endpoint " << key << " missing from node file";
    Edge e = edges.Pop();
    if (translate_src) {
      e.src = index;
    } else {
      e.dst = index;
    }
    writer.Append(e);
  }
  writer.Finish();
}

}  // namespace

DiskCsr BuildDiskCsr(io::IoContext* context, const graph::DiskGraph& g,
                     bool reversed) {
  DiskCsr csr;
  csr.num_nodes = static_cast<std::uint32_t>(g.num_nodes);
  csr.num_edges = g.num_edges;

  // Orient edges, then translate src and dst to dense indices with two
  // sort+merge passes.
  const std::string oriented = context->NewTempPath("csr_oriented");
  {
    io::RecordReader<Edge> reader(context, g.edge_path);
    io::RecordWriter<Edge> writer(context, oriented);
    Edge e;
    while (reader.Next(&e)) {
      writer.Append(reversed ? Edge{e.dst, e.src} : e);
    }
    writer.Finish();
  }

  const std::string by_src = context->NewTempPath("csr_bysrc");
  extsort::SortFile<Edge, EdgeBySrc>(context, oriented, by_src, EdgeBySrc());
  context->temp_files().Remove(oriented);
  const std::string src_translated = context->NewTempPath("csr_srcidx");
  TranslateEndpoint(context, by_src, g.node_path, /*translate_src=*/true,
                    src_translated);
  context->temp_files().Remove(by_src);

  const std::string by_dst = context->NewTempPath("csr_bydst");
  extsort::SortFile<Edge, EdgeByDst>(context, src_translated, by_dst,
                                     EdgeByDst());
  context->temp_files().Remove(src_translated);
  const std::string dst_translated = context->NewTempPath("csr_dstidx");
  TranslateEndpoint(context, by_dst, g.node_path, /*translate_src=*/false,
                    dst_translated);
  context->temp_files().Remove(by_dst);

  // Final layout pass: sort by (src index, dst index), emit offsets and
  // targets.
  const std::string final_order = context->NewTempPath("csr_final");
  extsort::SortFile<Edge, EdgeBySrc>(context, dst_translated, final_order,
                                     EdgeBySrc());
  context->temp_files().Remove(dst_translated);

  csr.offsets_path = context->NewTempPath("csr_offsets");
  csr.targets_path = context->NewTempPath("csr_targets");
  {
    io::PeekableReader<Edge> edges(context, final_order);
    io::RecordWriter<std::uint64_t> offsets(context, csr.offsets_path);
    io::RecordWriter<std::uint32_t> targets(context, csr.targets_path);
    std::uint64_t emitted = 0;
    for (std::uint32_t v = 0; v < csr.num_nodes; ++v) {
      offsets.Append(emitted);
      while (edges.has_value() && edges.Peek().src == v) {
        targets.Append(edges.Pop().dst);
        ++emitted;
      }
    }
    offsets.Append(emitted);
    CHECK_EQ(emitted, csr.num_edges);
    offsets.Finish();
    targets.Finish();
  }
  context->temp_files().Remove(final_order);
  return csr;
}

bool RunExternalDfs(io::IoContext* context, const DiskCsr& forward,
                    const DiskCsr& reverse,
                    const std::function<graph::NodeId()>& next_root,
                    const std::function<void(std::uint32_t)>& on_root,
                    const std::function<void(std::uint32_t)>& on_finalize,
                    ExternalDfsStats* stats) {
  const std::uint32_t n = forward.num_nodes;
  if (n == 0) return true;

  io::RandomRecordReader<std::uint64_t> fwd_offsets(context,
                                                    forward.offsets_path);
  io::RandomRecordReader<std::uint32_t> fwd_targets(context,
                                                    forward.targets_path);
  io::RandomRecordReader<std::uint64_t> rev_offsets(context,
                                                    reverse.offsets_path);
  io::RandomRecordReader<std::uint32_t> rev_targets(context,
                                                    reverse.targets_path);

  BufferedRepositoryTree brt(context, n);
  // Oracle bitmap — control flow only; all charged I/O is real (see
  // header comment).
  std::vector<bool> visited(n, false);

  struct Frame {
    std::uint32_t node;
    std::uint64_t adj_pos;  // absolute position into targets
  };
  ExternalStack<Frame> stack(context);

  auto visit = [&](std::uint32_t v) {
    visited[v] = true;
    if (stats != nullptr) ++stats->nodes_visited;
    // Announce v's visit to all its in-neighbours via the BRT
    // (the [8] mechanism that lets a real external DFS skip visited
    // neighbours without random visited-bit probes).
    const std::uint64_t begin = rev_offsets.Get(v);
    const std::uint64_t end = rev_offsets.Get(v + 1);
    for (std::uint64_t p = begin; p < end; ++p) {
      const std::uint32_t in_neighbor = rev_targets.Get(p);
      brt.Insert(in_neighbor, v);
      if (stats != nullptr) ++stats->brt_inserts;
    }
    stack.Push(Frame{v, fwd_offsets.Get(v)});
  };

  while (true) {
    if (context->io_budget_exceeded()) return false;
    if (stack.empty()) {
      // Start the next tree.
      std::uint32_t root = graph::kInvalidNode;
      while (true) {
        const graph::NodeId candidate = next_root();
        if (candidate == graph::kInvalidNode) break;
        if (!visited[candidate]) {
          root = candidate;
          break;
        }
      }
      if (root == graph::kInvalidNode) break;  // forest complete
      on_root(root);
      visit(root);
      continue;
    }

    Frame frame = stack.Pop();
    // Entering/resuming `frame.node`: drain its visited-neighbour
    // messages (their content is subsumed by the oracle bitmap; the
    // extraction I/O is the algorithm's own).
    brt.ExtractAll(frame.node);
    if (stats != nullptr) ++stats->brt_extracts;

    const std::uint64_t end = fwd_offsets.Get(frame.node + 1);
    bool descended = false;
    while (frame.adj_pos < end) {
      if (context->io_budget_exceeded()) return false;
      const std::uint32_t next = fwd_targets.Get(frame.adj_pos);
      ++frame.adj_pos;
      if (!visited[next]) {
        stack.Push(frame);  // resume here later
        visit(next);
        descended = true;
        break;
      }
    }
    if (!descended) {
      on_finalize(frame.node);
    }
  }
  return true;
}

}  // namespace extscc::baseline
