#include "baseline/dfs_scc.h"

#include <memory>
#include <vector>

#include "baseline/external_dfs.h"
#include "extsort/external_sorter.h"
#include "io/record_stream.h"
#include "util/logging.h"
#include "util/timer.h"

namespace extscc::baseline {

namespace {

using graph::NodeId;
using graph::SccEntry;
using graph::SccId;

}  // namespace

util::Result<DfsSccStats> RunDfsScc(io::IoContext* context,
                                    const graph::DiskGraph& input,
                                    const std::string& scc_output) {
  DfsSccStats stats;
  util::Timer timer;
  const std::uint64_t start_ios = context->stats().total_ios();

  // Adjacency of G and of G-reversed (Algorithm 1 line 3).
  const DiskCsr forward = BuildDiskCsr(context, input, /*reversed=*/false);
  const DiskCsr reverse = BuildDiskCsr(context, input, /*reversed=*/true);
  const std::uint32_t n = forward.num_nodes;

  // ---- First DFS: decreasing postorder (lines 1-2) --------------------
  const std::string postorder_path = context->NewTempPath("postorder");
  {
    io::RecordWriter<std::uint32_t> postorder(context, postorder_path);
    std::uint32_t next_candidate = 0;
    ExternalDfsStats dfs_stats;
    const bool ok = RunExternalDfs(
        context, forward, reverse,
        [&]() -> NodeId {
          return next_candidate < n ? next_candidate++ : graph::kInvalidNode;
        },
        [](std::uint32_t) {},
        [&](std::uint32_t v) { postorder.Append(v); }, &dfs_stats);
    stats.brt_inserts += dfs_stats.brt_inserts;
    stats.brt_extracts += dfs_stats.brt_extracts;
    postorder.Finish();
    if (!ok) {
      return util::Status::ResourceExhausted(
          "DFS-SCC exceeded the I/O budget during the first DFS (INF)");
    }
  }

  // ---- Second DFS on the reversed graph, roots in decreasing postorder.
  // The postorder file is read back last-to-first (block-reversed scan).
  const std::string label_path = context->NewTempPath("labels_by_idx");
  SccId next_scc = 0;
  {
    io::RandomRecordReader<std::uint32_t> postorder(context, postorder_path);
    CHECK_EQ(postorder.num_records(), n);
    std::int64_t cursor = static_cast<std::int64_t>(n) - 1;

    // Dense label array is written out per finalize; labels_by_idx holds
    // (index, scc) pairs in finalize order and is re-sorted below.
    io::RecordWriter<SccEntry> labels(context, label_path);
    SccId current_root_label = 0;
    ExternalDfsStats dfs_stats;
    const bool ok = RunExternalDfs(
        context, reverse, forward,
        [&]() -> NodeId {
          if (cursor < 0) return graph::kInvalidNode;
          return postorder.Get(static_cast<std::uint64_t>(cursor--));
        },
        [&](std::uint32_t) { current_root_label = next_scc++; },
        [&](std::uint32_t v) {
          labels.Append(SccEntry{v, current_root_label});
        },
        &dfs_stats);
    stats.brt_inserts += dfs_stats.brt_inserts;
    stats.brt_extracts += dfs_stats.brt_extracts;
    labels.Finish();
    if (!ok) {
      return util::Status::ResourceExhausted(
          "DFS-SCC exceeded the I/O budget during the second DFS (INF)");
    }
  }

  // ---- Translate dense indices back to node ids -----------------------
  const std::string by_index = context->NewTempPath("labels_sorted");
  extsort::SortFile<SccEntry, graph::SccEntryByNode>(
      context, label_path, by_index, graph::SccEntryByNode());
  context->temp_files().Remove(label_path);
  {
    io::PeekableReader<SccEntry> labels(context, by_index);
    io::RecordReader<NodeId> nodes(context, input.node_path);
    io::RecordWriter<SccEntry> writer(context, scc_output);
    NodeId node;
    std::uint32_t index = 0;
    while (nodes.Next(&node)) {
      CHECK(labels.has_value() && labels.Peek().node == index)
          << "second DFS did not label every node";
      writer.Append(SccEntry{node, labels.Pop().scc});
      ++index;
    }
    writer.Finish();
  }
  context->temp_files().Remove(by_index);

  stats.num_sccs = next_scc;
  stats.total_ios = context->stats().total_ios() - start_ios;
  stats.total_seconds = timer.ElapsedSeconds();
  return stats;
}

}  // namespace extscc::baseline
