#include "dyn/delta_log.h"

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <vector>

#include "io/block_file.h"
#include "io/checksum.h"
#include "io/crash_point.h"
#include "io/durability.h"

namespace extscc::dyn {

namespace {

std::uint32_t HeaderCrc(const DeltaLogHeader& header) {
  return io::Crc32(&header, sizeof(header) - sizeof(std::uint32_t));
}

std::uint32_t RecordCrc(const DeltaRecordHeader& header) {
  return io::Crc32(&header, sizeof(header) - sizeof(std::uint32_t));
}

std::uint32_t PayloadCrc(const graph::Edge* edges, std::uint64_t count) {
  // data() of an empty vector may be null; CRC of zero bytes is the
  // same for any valid pointer.
  static const char kNone = 0;
  return count == 0 ? io::Crc32(&kNone, 0)
                    : io::Crc32(edges, count * sizeof(graph::Edge));
}

// Writes `edges` as one record starting at block `first_block`,
// zero-padding the final block. Every block write is a crash-point
// site: a kill between any two of them is exactly the torn tail the
// recovery path must absorb.
void WriteRecordBlocks(io::BlockFile* file, std::uint64_t first_block,
                       const std::vector<graph::Edge>& edges) {
  const std::size_t bs = file->block_size();
  DeltaRecordHeader header{};
  header.magic = kDeltaRecordMagic;
  header.num_edges = edges.size();
  header.payload_crc = PayloadCrc(edges.data(), edges.size());
  header.crc = RecordCrc(header);

  const std::uint64_t payload_bytes = edges.size() * sizeof(graph::Edge);
  const std::uint64_t record_bytes = sizeof(header) + payload_bytes;
  const auto* src = reinterpret_cast<const unsigned char*>(edges.data());
  std::vector<unsigned char> block(bs, 0);
  std::uint64_t written = 0;
  for (std::uint64_t b = first_block; written < record_bytes; ++b) {
    std::memset(block.data(), 0, bs);
    std::size_t fill = 0;
    if (written == 0) {
      std::memcpy(block.data(), &header, sizeof(header));
      fill = sizeof(header);
    }
    const std::uint64_t payload_off = written == 0 ? 0
                                                   : written - sizeof(header);
    const std::size_t take = static_cast<std::size_t>(std::min<std::uint64_t>(
        payload_bytes - payload_off, bs - fill));
    if (take > 0) std::memcpy(block.data() + fill, src + payload_off, take);
    io::CrashPointHit("dlog.append.block");
    file->WriteBlock(b, block.data(), bs);
    written += fill + take;
  }
}

std::uint64_t RecordBlocks(std::uint64_t num_edges, std::size_t bs) {
  const std::uint64_t bytes =
      sizeof(DeltaRecordHeader) + num_edges * sizeof(graph::Edge);
  return (bytes + bs - 1) / bs;
}

}  // namespace

std::string DeltaLogPathFor(const std::string& artifact_path) {
  return artifact_path + ".dlog";
}

util::Result<DeltaLogScan> ScanDeltaLog(io::IoContext* context,
                                        const std::string& path,
                                        std::uint64_t expected_base_version) {
  DeltaLogScan scan;
  io::BlockFile file(context, path, io::OpenMode::kRead);
  if (!file.status().ok()) {
    if (file.status().sys_errno() == ENOENT) {
      // No log means nothing pending — consume the open failure the
      // BlockFile latched on the context so later phase-boundary polls
      // don't fail an unrelated solve on it.
      context->AbsorbIoError(file.status());
      return scan;
    }
    return file.status();
  }
  scan.exists = true;
  const std::size_t bs = file.block_size();
  std::vector<unsigned char> block(bs);
  const std::size_t got = file.ReadBlock(0, block.data());
  if (!file.status().ok()) return file.status();
  if (got < sizeof(DeltaLogHeader)) {
    return util::Status::Corruption("delta log " + path +
                                    ": short header read");
  }
  DeltaLogHeader header;
  std::memcpy(&header, block.data(), sizeof(header));
  if (std::memcmp(header.magic, kDeltaLogMagic, sizeof(kDeltaLogMagic)) != 0) {
    return util::Status::Corruption("not an extscc delta log (bad magic): " +
                                    path);
  }
  if (HeaderCrc(header) != header.crc) {
    return util::Status::Corruption("delta log header checksum mismatch: " +
                                    path);
  }
  if (header.format_version != kDeltaLogFormatVersion) {
    return util::Status::InvalidArgument(
        "unsupported delta log format version " +
        std::to_string(header.format_version));
  }
  if (header.block_size != bs) {
    return util::Status::InvalidArgument(
        "delta log block size " + std::to_string(header.block_size) +
        " does not match context block size " + std::to_string(bs));
  }
  scan.valid_blocks = 1;
  if (header.base_version != expected_base_version) {
    // Stale: a structural rewrite published after this log was written
    // (its edges are folded into the live artifact already), and the
    // crash window left the log behind. Honest empty, not an error.
    scan.stale = true;
    return scan;
  }

  // Record scan: stop at EOF (clean) or the first record that fails
  // any check (torn tail — the footprint of a killed appender).
  std::uint64_t b = 1;
  while (true) {
    const std::size_t head_got = file.ReadBlock(b, block.data());
    if (!file.status().ok()) return file.status();
    if (head_got == 0) break;  // clean EOF
    if (head_got < sizeof(DeltaRecordHeader)) {
      scan.torn = true;
      break;
    }
    DeltaRecordHeader record;
    std::memcpy(&record, block.data(), sizeof(record));
    if (record.magic != kDeltaRecordMagic || RecordCrc(record) != record.crc) {
      scan.torn = true;
      break;
    }
    const std::uint64_t payload_bytes =
        record.num_edges * sizeof(graph::Edge);
    std::vector<graph::Edge> edges(
        static_cast<std::size_t>(record.num_edges));
    auto* dst = reinterpret_cast<unsigned char*>(edges.data());
    // First chunk rides in the header block.
    std::uint64_t off = static_cast<std::uint64_t>(std::min<std::uint64_t>(
        payload_bytes, head_got - sizeof(DeltaRecordHeader)));
    if (off > 0) {
      std::memcpy(dst, block.data() + sizeof(DeltaRecordHeader),
                  static_cast<std::size_t>(off));
    }
    bool short_payload = off < payload_bytes && head_got < bs;
    std::uint64_t pb = b + 1;
    while (!short_payload && off < payload_bytes) {
      const std::size_t payload_got = file.ReadBlock(pb, block.data());
      if (!file.status().ok()) return file.status();
      if (payload_got == 0) {
        short_payload = true;
        break;
      }
      const std::size_t take = static_cast<std::size_t>(
          std::min<std::uint64_t>(payload_bytes - off, payload_got));
      std::memcpy(dst + off, block.data(), take);
      off += take;
      if (off < payload_bytes && payload_got < bs) short_payload = true;
      ++pb;
    }
    if (short_payload ||
        PayloadCrc(edges.data(), record.num_edges) != record.payload_crc) {
      scan.torn = true;
      break;
    }
    scan.edges.insert(scan.edges.end(), edges.begin(), edges.end());
    b += RecordBlocks(record.num_edges, bs);
    scan.valid_blocks = b;
  }
  RETURN_IF_ERROR(file.Close());
  return scan;
}

util::Result<std::vector<graph::Edge>> ReadDeltaLog(
    io::IoContext* context, const std::string& path,
    std::uint64_t expected_base_version) {
  auto scan = ScanDeltaLog(context, path, expected_base_version);
  RETURN_IF_ERROR(scan.status());
  if (scan.value().torn) {
    return util::Status::Corruption("delta log " + path +
                                    ": torn tail after " +
                                    std::to_string(scan.value().edges.size()) +
                                    " intact edges (RecoverDeltaLog repairs)");
  }
  return std::move(scan.value().edges);
}

util::Result<std::vector<graph::Edge>> RecoverDeltaLog(
    io::IoContext* context, const std::string& path,
    std::uint64_t expected_base_version, bool* recovered_torn_tail) {
  if (recovered_torn_tail != nullptr) *recovered_torn_tail = false;
  auto scan = ScanDeltaLog(context, path, expected_base_version);
  RETURN_IF_ERROR(scan.status());
  if (scan.value().torn && !scan.value().stale) {
    // Truncate to the last CRC-valid record by rewriting the valid
    // prefix through the durable-publish protocol (the log is small —
    // bounded by the structural-rewrite threshold — so a rewrite is
    // cheaper than teaching the block layer to truncate).
    RETURN_IF_ERROR(WriteDeltaLog(context, path, expected_base_version,
                                  scan.value().edges));
    if (recovered_torn_tail != nullptr) *recovered_torn_tail = true;
  }
  return std::move(scan.value().edges);
}

util::Status WriteDeltaLog(io::IoContext* context, const std::string& path,
                           std::uint64_t base_version,
                           const std::vector<graph::Edge>& edges) {
  const std::string tmp = path + ".tmp";
  {
    io::BlockFile file(context, tmp, io::OpenMode::kTruncateWrite);
    RETURN_IF_ERROR(file.status());
    const std::size_t bs = file.block_size();

    DeltaLogHeader header{};
    std::memcpy(header.magic, kDeltaLogMagic, sizeof(header.magic));
    header.format_version = kDeltaLogFormatVersion;
    header.block_size = static_cast<std::uint32_t>(bs);
    header.base_version = base_version;
    header.crc = HeaderCrc(header);

    std::vector<unsigned char> block(bs, 0);
    std::memcpy(block.data(), &header, sizeof(header));
    file.WriteBlock(0, block.data(), bs);
    if (!edges.empty()) WriteRecordBlocks(&file, 1, edges);
    io::CrashPointHit("dlog.rewrite.sync");
    RETURN_IF_ERROR(file.Sync());
    RETURN_IF_ERROR(file.Close());
  }
  return io::DurableRename(context, tmp, path);
}

util::Status AppendDeltaLog(io::IoContext* context, const std::string& path,
                            std::uint64_t base_version,
                            const std::vector<graph::Edge>& batch) {
  auto scan = ScanDeltaLog(context, path, base_version);
  RETURN_IF_ERROR(scan.status());
  if (!scan.value().exists || scan.value().stale) {
    // Fresh log (any stale one is replaced wholesale — its edges are
    // already folded into the live artifact).
    return WriteDeltaLog(context, path, base_version, batch);
  }
  if (scan.value().torn) {
    // Fold the surviving prefix and the new batch into one rewrite:
    // repairing in place and then appending would publish the repair
    // twice for no benefit.
    std::vector<graph::Edge> all = std::move(scan.value().edges);
    all.insert(all.end(), batch.begin(), batch.end());
    return WriteDeltaLog(context, path, base_version, all);
  }
  if (batch.empty()) return util::Status::Ok();
  // Clean log: append one record at the valid end. A crash between
  // here and the Sync leaves a torn tail that the next scan truncates —
  // the log never loses previously-synced records.
  io::BlockFile file(context, path, io::OpenMode::kReadWrite);
  RETURN_IF_ERROR(file.status());
  WriteRecordBlocks(&file, scan.value().valid_blocks, batch);
  io::CrashPointHit("dlog.append.sync");
  RETURN_IF_ERROR(file.Sync());
  return file.Close();
}

void RemoveDeltaLog(io::IoContext* context, const std::string& path) {
  // Delete ignores missing files on every device; a failing delete of a
  // now-stale log is survivable (readers ignore it by base_version), so
  // the publish path must not fail on it.
  (void)context->ResolveDevice(path)->Delete(path);
}

}  // namespace extscc::dyn
