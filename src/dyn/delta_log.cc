#include "dyn/delta_log.h"

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <vector>

#include "io/block_file.h"
#include "io/checksum.h"

namespace extscc::dyn {

namespace {

std::uint32_t HeaderCrc(const DeltaLogHeader& header) {
  return io::Crc32(&header, sizeof(header) - sizeof(std::uint32_t));
}

std::uint32_t PayloadCrc(const std::vector<graph::Edge>& edges) {
  // data() of an empty vector may be null; CRC of zero bytes is the
  // same for any valid pointer.
  static const char kNone = 0;
  return edges.empty()
             ? io::Crc32(&kNone, 0)
             : io::Crc32(edges.data(), edges.size() * sizeof(graph::Edge));
}

}  // namespace

std::string DeltaLogPathFor(const std::string& artifact_path) {
  return artifact_path + ".dlog";
}

util::Result<std::vector<graph::Edge>> ReadDeltaLog(
    io::IoContext* context, const std::string& path,
    std::uint64_t expected_base_version) {
  io::BlockFile file(context, path, io::OpenMode::kRead);
  if (!file.status().ok()) {
    if (file.status().sys_errno() == ENOENT) {
      // No log means nothing pending — consume the open failure the
      // BlockFile latched on the context so later phase-boundary polls
      // don't fail an unrelated solve on it.
      context->AbsorbIoError(file.status());
      return std::vector<graph::Edge>{};
    }
    return file.status();
  }
  const std::size_t bs = file.block_size();
  if (file.size_bytes() < bs || file.size_bytes() % bs != 0) {
    return util::Status::Corruption("delta log " + path +
                                    ": size is not a whole number of blocks");
  }
  std::vector<unsigned char> block(bs);
  if (file.ReadBlock(0, block.data()) != bs) {
    if (!file.status().ok()) return file.status();
    return util::Status::Corruption("delta log " + path +
                                    ": short header read");
  }
  DeltaLogHeader header;
  std::memcpy(&header, block.data(), sizeof(header));
  if (std::memcmp(header.magic, kDeltaLogMagic, sizeof(kDeltaLogMagic)) != 0) {
    return util::Status::Corruption("not an extscc delta log (bad magic): " +
                                    path);
  }
  if (HeaderCrc(header) != header.crc) {
    return util::Status::Corruption("delta log header checksum mismatch: " +
                                    path);
  }
  if (header.format_version != kDeltaLogFormatVersion) {
    return util::Status::InvalidArgument(
        "unsupported delta log format version " +
        std::to_string(header.format_version));
  }
  if (header.block_size != bs) {
    return util::Status::InvalidArgument(
        "delta log block size " + std::to_string(header.block_size) +
        " does not match context block size " + std::to_string(bs));
  }
  if (header.base_version != expected_base_version) {
    // Stale: a structural rewrite published after this log was written
    // (its edges are folded into the live artifact already), and the
    // crash window left the log behind. Honest empty, not an error.
    return std::vector<graph::Edge>{};
  }

  const std::uint64_t payload_bytes =
      header.num_edges * sizeof(graph::Edge);
  if (file.size_bytes() < bs + payload_bytes) {
    return util::Status::Corruption("delta log " + path +
                                    ": truncated edge payload");
  }
  std::vector<graph::Edge> edges(
      static_cast<std::size_t>(header.num_edges));
  auto* dst = reinterpret_cast<unsigned char*>(edges.data());
  std::uint64_t off = 0;
  for (std::uint64_t b = 1; off < payload_bytes; ++b) {
    const std::size_t got = file.ReadBlock(b, block.data());
    if (got == 0) {
      if (!file.status().ok()) return file.status();
      return util::Status::Corruption("delta log " + path +
                                      ": short payload read");
    }
    const std::size_t take = static_cast<std::size_t>(
        std::min<std::uint64_t>(payload_bytes - off, got));
    std::memcpy(dst + off, block.data(), take);
    off += take;
  }
  if (PayloadCrc(edges) != header.payload_crc) {
    return util::Status::Corruption("delta log payload checksum mismatch: " +
                                    path);
  }
  RETURN_IF_ERROR(file.Close());
  return edges;
}

util::Status WriteDeltaLog(io::IoContext* context, const std::string& path,
                           std::uint64_t base_version,
                           const std::vector<graph::Edge>& edges) {
  const std::string tmp = path + ".tmp";
  {
    io::BlockFile file(context, tmp, io::OpenMode::kTruncateWrite);
    RETURN_IF_ERROR(file.status());
    const std::size_t bs = file.block_size();

    DeltaLogHeader header{};
    std::memcpy(header.magic, kDeltaLogMagic, sizeof(header.magic));
    header.format_version = kDeltaLogFormatVersion;
    header.block_size = static_cast<std::uint32_t>(bs);
    header.base_version = base_version;
    header.num_edges = edges.size();
    header.payload_crc = PayloadCrc(edges);
    header.crc = HeaderCrc(header);

    std::vector<unsigned char> block(bs, 0);
    std::memcpy(block.data(), &header, sizeof(header));
    file.WriteBlock(0, block.data(), bs);

    const auto* src = reinterpret_cast<const unsigned char*>(edges.data());
    const std::uint64_t payload_bytes = edges.size() * sizeof(graph::Edge);
    std::uint64_t off = 0;
    for (std::uint64_t b = 1; off < payload_bytes; ++b) {
      const std::size_t take = static_cast<std::size_t>(
          std::min<std::uint64_t>(payload_bytes - off, bs));
      std::memset(block.data(), 0, bs);
      std::memcpy(block.data(), src + off, take);
      file.WriteBlock(b, block.data(), bs);
      off += take;
    }
    RETURN_IF_ERROR(file.Close());
  }
  io::StorageDevice* device = context->ResolveDevice(tmp);
  return device->Rename(tmp, path);
}

void RemoveDeltaLog(io::IoContext* context, const std::string& path) {
  // Delete ignores missing files on every device; a failing delete of a
  // now-stale log is survivable (readers ignore it by base_version), so
  // the publish path must not fail on it.
  (void)context->ResolveDevice(path)->Delete(path);
}

}  // namespace extscc::dyn
