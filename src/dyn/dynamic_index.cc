#include "dyn/dynamic_index.h"

#include <algorithm>
#include <numeric>
#include <unordered_set>
#include <utility>
#include <vector>

#include "app/bowtie.h"
#include "app/interval_labels.h"
#include "dyn/delta_log.h"
#include "extsort/external_sorter.h"
#include "extsort/record_sink.h"
#include "extsort/record_traits.h"
#include "graph/digraph.h"
#include "io/durability.h"
#include "scc/tarjan.h"
#include "serve/artifact_format.h"
#include "serve/query_engine.h"
#include "util/logging.h"

namespace extscc::dyn {

namespace {

using graph::Edge;
using graph::NodeId;
using graph::SccEntry;
using graph::SccId;
using serve::ArtifactSummary;
using serve::SectionId;

}  // namespace

util::Result<DynamicSccIndex> DynamicSccIndex::Open(
    io::IoContext* context, const std::string& artifact_path) {
  // GC a "<path>.tmp" orphaned by an updater that died between writing
  // the candidate and renaming it: it was never published, so removing
  // it is always safe — and only the updater may do this (a serving
  // process must not, or it would race a LIVE updater's publish).
  // Delete ignores missing files on every device.
  (void)context->ResolveDevice(artifact_path)->Delete(artifact_path + ".tmp");
  (void)context->ResolveDevice(artifact_path)
      ->Delete(DeltaLogPathFor(artifact_path) + ".tmp");
  auto reader = serve::ArtifactReader::Open(context, artifact_path);
  RETURN_IF_ERROR(reader.status());
  DynamicSccIndex index;
  index.context_ = context;
  index.path_ = artifact_path;
  index.reader_.emplace(std::move(reader).value());
  // Dense-label invariant the whole updater leans on: condensation node
  // ids are exactly 0..S-1 in order, so a DAG node's dense index IS its
  // SCC id (RunExtScc labels densely; canonicalization keeps density).
  const graph::Digraph& dag = index.reader_->labels().dag();
  for (std::size_t s = 0; s < dag.num_nodes(); ++s) {
    if (dag.id_of(s) != s) {
      return util::Status::Corruption(
          "artifact condensation labels are not dense");
    }
  }
  // Self-healing read: a log tail torn by a killed appender is
  // truncated to the last CRC-valid record here, not failed on.
  auto pending = RecoverDeltaLog(context, DeltaLogPathFor(artifact_path),
                                 index.reader_->data_version());
  RETURN_IF_ERROR(pending.status());
  index.delta_edges_ = std::move(pending).value();
  return index;
}

util::Result<UpdateBatchStats> DynamicSccIndex::ApplyBatch(
    const std::vector<Edge>& batch) {
  UpdateBatchStats stats;
  stats.edges_in = batch.size();
  stats.published_version = reader_->data_version();
  if (batch.empty()) return stats;
  const io::IoStats before = context_->stats();

  // 1. Translate endpoints to SCC ids — the query engine's sort-sweep:
  // probes sorted by node, resolved against ONE sequential sweep of the
  // node-sorted map section.
  std::vector<SccId> resolved(2 * batch.size(), graph::kInvalidScc);
  {
    extsort::SortingWriter<serve::NodeProbe, serve::NodeProbeByNode> sorter(
        context_, serve::NodeProbeByNode{});
    for (std::size_t i = 0; i < batch.size(); ++i) {
      sorter.Add({batch[i].src, static_cast<std::uint32_t>(2 * i)});
      sorter.Add({batch[i].dst, static_cast<std::uint32_t>(2 * i + 1)});
    }
    serve::SccMapScanner scanner = reader_->OpenNodeSccScan();
    SccEntry cur{};
    bool have = scanner.Next(&cur);
    auto sink = extsort::MakeCallbackSink<serve::NodeProbe>(
        [&](const serve::NodeProbe& probe) {
          while (have && cur.node < probe.node) have = scanner.Next(&cur);
          if (have && cur.node == probe.node) resolved[probe.slot] = cur.scc;
        });
    const auto sort_info = sorter.FinishInto(sink);
    RETURN_IF_ERROR(sort_info.status);
    RETURN_IF_ERROR(scanner.status());
    stats.swept_blocks = scanner.blocks_read();
  }

  // 2. Unseen endpoints become provisional singleton SCCs, ids
  // S_old + rank in sorted node order.
  const SccId old_sccs = static_cast<SccId>(reader_->num_sccs());
  std::vector<NodeId> new_nodes;
  for (std::size_t slot = 0; slot < resolved.size(); ++slot) {
    if (resolved[slot] != graph::kInvalidScc) continue;
    const Edge& e = batch[slot / 2];
    new_nodes.push_back(slot % 2 == 0 ? e.src : e.dst);
  }
  std::sort(new_nodes.begin(), new_nodes.end());
  new_nodes.erase(std::unique(new_nodes.begin(), new_nodes.end()),
                  new_nodes.end());
  stats.new_nodes = new_nodes.size();
  const auto provisional_of = [&](NodeId node) {
    const auto it =
        std::lower_bound(new_nodes.begin(), new_nodes.end(), node);
    DCHECK(it != new_nodes.end() && *it == node);
    return static_cast<SccId>(old_sccs + (it - new_nodes.begin()));
  };

  // 3. Classify each edge against the resident condensation.
  const graph::Digraph& dag = reader_->labels().dag();
  std::unordered_set<std::uint64_t> dag_edge_keys;
  dag_edge_keys.reserve(2 * dag.num_edges());
  for (std::size_t s = 0; s < dag.num_nodes(); ++s) {
    for (const std::uint32_t t : dag.out_neighbors(s)) {
      dag_edge_keys.insert(
          extsort::PackKey64(static_cast<std::uint32_t>(s), t));
    }
  }
  std::vector<Edge> new_inter;  // over provisional SCC ids
  for (std::size_t i = 0; i < batch.size(); ++i) {
    const SccId su = resolved[2 * i] != graph::kInvalidScc
                         ? resolved[2 * i]
                         : provisional_of(batch[i].src);
    const SccId sv = resolved[2 * i + 1] != graph::kInvalidScc
                         ? resolved[2 * i + 1]
                         : provisional_of(batch[i].dst);
    if (su == sv) {
      ++stats.intra_scc;
    } else if (dag_edge_keys.count(extsort::PackKey64(su, sv)) > 0) {
      ++stats.duplicate_dag;
    } else {
      new_inter.push_back(Edge{su, sv});
      ++stats.new_dag_edges;
    }
  }

  // 4. The cheap path: nothing structural — every edge is intra-SCC or
  // duplicates a condensation edge, so the partition, the DAG, and
  // every label are already correct. Append to the delta log (keeping
  // the union edge count reconstructible) and stop.
  if (new_nodes.empty() && new_inter.empty()) {
    RETURN_IF_ERROR(AppendDeltaLog(context_, DeltaLogPathFor(path_),
                                   reader_->data_version(), batch));
    delta_edges_.insert(delta_edges_.end(), batch.begin(), batch.end());
    stats.batch_ios = (context_->stats() - before).total_ios();
    return stats;
  }

  // 5. Localized merge pass, in memory on the condensation: Tarjan over
  // old DAG ∪ new inter-SCC edges. A new "forward" edge only appears in
  // the DAG; a "backward" one closes a cycle and its component merges.
  const SccId num_provisional =
      old_sccs + static_cast<SccId>(new_nodes.size());
  std::vector<Edge> h_edges;
  h_edges.reserve(dag.num_edges() + new_inter.size());
  for (std::size_t s = 0; s < dag.num_nodes(); ++s) {
    for (const std::uint32_t t : dag.out_neighbors(s)) {
      h_edges.push_back(Edge{static_cast<NodeId>(s), t});
    }
  }
  h_edges.insert(h_edges.end(), new_inter.begin(), new_inter.end());
  std::vector<SccId> comp;
  SccId num_comps = 0;
  {
    std::vector<NodeId> h_nodes(num_provisional);
    std::iota(h_nodes.begin(), h_nodes.end(), 0);
    const graph::Digraph merged(std::move(h_nodes), h_edges);
    // merged's ids are 0..P-1, so its dense index == provisional id.
    comp = scc::TarjanSccDense(merged, &num_comps);
  }
  {
    std::vector<std::uint32_t> members(num_comps, 0);
    for (const SccId c : comp) ++members[c];
    for (const std::uint32_t m : members) {
      if (m >= 2) {
        ++stats.merge_groups;
        stats.merged_sccs += m;
      }
    }
  }

  // 6. Rewrite every artifact section from the merged condensation,
  // into "<path>.tmp" with a bumped data version. Canonical labels are
  // assigned by first occurrence in node order during the single
  // merge-scan of the old map + sorted new nodes — exactly what
  // build-index writes for the union graph, byte for byte.
  const std::uint64_t new_version = reader_->data_version() + 1;
  const std::string tmp_path = path_ + ".tmp";
  const ArtifactSummary& old_summary = reader_->summary();
  std::vector<SccId> canon(num_comps, graph::kInvalidScc);
  std::vector<std::uint64_t> sizes;
  sizes.reserve(num_comps);

  const util::Status written = [&]() -> util::Status {
    serve::ArtifactWriter writer(context_, tmp_path, new_version);
    RETURN_IF_ERROR(writer.status());
    SccId next_canon = 0;
    {
      auto sink = writer.BeginSection<SccEntry>(SectionId::kNodeSccMap);
      serve::SccMapScanner scanner = reader_->OpenNodeSccScan();
      SccEntry cur{};
      bool have = scanner.Next(&cur);
      std::size_t new_at = 0;
      while (have || new_at < new_nodes.size()) {
        SccEntry entry;
        if (have &&
            (new_at == new_nodes.size() || cur.node < new_nodes[new_at])) {
          entry = cur;
          have = scanner.Next(&cur);
        } else {
          entry = SccEntry{new_nodes[new_at],
                           static_cast<SccId>(old_sccs + new_at)};
          ++new_at;
        }
        const SccId c = comp[entry.scc];
        SccId& mapped = canon[c];
        if (mapped == graph::kInvalidScc) {
          mapped = next_canon++;
          sizes.push_back(0);
        }
        ++sizes[mapped];
        sink.Append(SccEntry{entry.node, mapped});
      }
      RETURN_IF_ERROR(scanner.status());
      writer.EndSection();
    }
    // Every component holds at least one node, so the scan assigned
    // every canonical label.
    CHECK_EQ(next_canon, num_comps);

    // Condensation edges over canonical labels: sorted by packed
    // (src, dst), loops dropped, dedupped — BuildCondensation's exact
    // byte layout.
    std::vector<std::uint64_t> edge_keys;
    edge_keys.reserve(h_edges.size());
    for (const Edge& e : h_edges) {
      const SccId a = canon[comp[e.src]];
      const SccId b = canon[comp[e.dst]];
      if (a != b) edge_keys.push_back(extsort::PackKey64(a, b));
    }
    std::sort(edge_keys.begin(), edge_keys.end());
    edge_keys.erase(std::unique(edge_keys.begin(), edge_keys.end()),
                    edge_keys.end());
    std::vector<Edge> dag_edges;
    dag_edges.reserve(edge_keys.size());
    for (const std::uint64_t key : edge_keys) {
      dag_edges.push_back(Edge{static_cast<NodeId>(key >> 32),
                               static_cast<NodeId>(key & 0xffffffffu)});
    }
    std::vector<NodeId> dag_nodes(num_comps);
    std::iota(dag_nodes.begin(), dag_nodes.end(), 0);

    const app::IntervalLabels labels = app::IntervalLabels::Build(
        graph::Digraph(dag_nodes, dag_edges), old_summary.num_label_rounds,
        old_summary.label_seed);
    const std::size_t dag_n = labels.dag().num_nodes();

    ArtifactSummary summary{};
    summary.graph_nodes = old_summary.graph_nodes + new_nodes.size();
    // Raw (pre-dedup) union edge count: the folded delta log plus this
    // batch, matching DiskGraph::num_edges of the union edge file.
    summary.graph_edges =
        old_summary.graph_edges + delta_edges_.size() + batch.size();
    summary.num_sccs = num_comps;
    summary.dag_nodes = num_comps;
    summary.dag_edges = dag_edges.size();
    summary.num_label_rounds = old_summary.num_label_rounds;
    summary.label_seed = old_summary.label_seed;
    summary.largest_scc = graph::kInvalidScc;
    summary.core_scc = graph::kInvalidScc;
    for (std::size_t s = 0; s < sizes.size(); ++s) {
      if (sizes[s] > summary.largest_scc_size) {
        summary.largest_scc_size = sizes[s];
        summary.largest_scc = static_cast<SccId>(s);
      }
      if (sizes[s] == 1) ++summary.num_singletons;
    }
    if (old_summary.bowtie_computed != 0) {
      const app::DagBowtieSizes bowtie = app::BowtieSizesFromDag(
          labels.dag(), sizes, summary.largest_scc);
      summary.bowtie_computed = 1;
      summary.core_scc = summary.largest_scc;
      summary.core_size = bowtie.core_size;
      summary.in_size = bowtie.in_size;
      summary.out_size = bowtie.out_size;
      summary.other_size = bowtie.other_size;
    }

    {
      auto sink = writer.BeginSection<NodeId>(SectionId::kDagNodes);
      sink.AppendBatch(dag_nodes.data(), dag_nodes.size());
      writer.EndSection();
    }
    {
      auto sink = writer.BeginSection<Edge>(SectionId::kDagEdges);
      sink.AppendBatch(dag_edges.data(), dag_edges.size());
      writer.EndSection();
    }
    {
      auto sink = writer.BeginSection<std::uint32_t>(SectionId::kLabelRanks);
      for (std::uint32_t r = 0; r < summary.num_label_rounds; ++r) {
        sink.AppendBatch(labels.ranks(r).data(), dag_n);
      }
      writer.EndSection();
    }
    {
      auto sink = writer.BeginSection<std::uint32_t>(SectionId::kLabelMins);
      for (std::uint32_t r = 0; r < summary.num_label_rounds; ++r) {
        sink.AppendBatch(labels.mins(r).data(), dag_n);
      }
      writer.EndSection();
    }
    {
      auto sink = writer.BeginSection<std::uint64_t>(SectionId::kSccSizes);
      sink.AppendBatch(sizes.data(), sizes.size());
      writer.EndSection();
    }
    {
      auto sink = writer.BeginSection<ArtifactSummary>(SectionId::kSummary);
      sink.Append(summary);
      writer.EndSection();
    }
    return writer.Finish();
  }();

  // 7. Validate the candidate end to end BEFORE it can become the live
  // version: a full reader open (resident sections, CRCs, geometry,
  // cross-section consistency) plus a sweep of the one section Open
  // does not touch. A version is only ever published after it proved
  // readable — a faulted write can cost this batch, never the index.
  util::Status publishable = written;
  if (publishable.ok()) {
    auto check = serve::ArtifactReader::Open(context_, tmp_path);
    publishable = check.status();
    if (publishable.ok()) {
      serve::SccMapScanner scan = check.value().OpenNodeSccScan();
      SccEntry entry;
      while (scan.Next(&entry)) {
      }
      publishable = scan.status();
    }
  }
  io::StorageDevice* device = context_->ResolveDevice(path_);
  if (publishable.ok()) {
    // Durable publish: Finish() already fsynced the candidate's bytes;
    // the rename + parent-directory fsync make the swap itself survive
    // power loss (both halves are crash-point sites).
    publishable = io::DurableRename(context_, tmp_path, path_);
  }
  if (!publishable.ok()) {
    (void)device->Delete(tmp_path);
    return publishable;
  }

  // 8. Published. The delta log's edges are folded into the new
  // version; drop it (stale-by-version even if the delete fails) and
  // serve from the fresh artifact.
  RemoveDeltaLog(context_, DeltaLogPathFor(path_));
  auto reopened = serve::ArtifactReader::Open(context_, path_);
  RETURN_IF_ERROR(reopened.status());
  reader_.emplace(std::move(reopened).value());
  delta_edges_.clear();

  stats.rewrote_artifact = true;
  stats.published_version = new_version;
  stats.batch_ios = (context_->stats() - before).total_ios();
  return stats;
}

}  // namespace extscc::dyn
