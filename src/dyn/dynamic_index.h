// Incremental SCC maintenance under edge-insert batches (the dynamic
// subsystem — docs/dynamic.md). The persisted state is exactly the
// PR 7 serve artifact (node→SCC map on disk; condensation DAG,
// interval labels, sizes, summary resident) plus the sidecar delta
// edge log (delta_log.h). Inserts can only MERGE SCCs — the merge-only
// direction of dynamic SCC — so a batch is maintained as:
//
//   1. translate endpoints to SCC ids with the query engine's
//      sort-sweep: one sorted probe pass + ONE sequential sweep of the
//      node→SCC map section (the only I/O proportional to |V|);
//   2. classify each edge: intra-SCC or duplicating an existing
//      condensation edge → no structural change; otherwise it is a new
//      condensation edge (a "backward" one closes a cycle);
//   3. a batch with no new nodes and no new condensation edges appends
//      to the delta log and returns — no artifact rewrite;
//   4. otherwise run the localized merge pass IN MEMORY on the
//      condensation DAG (resident by construction: the artifact loads
//      it on open): Tarjan over old-DAG ∪ new edges finds the merged
//      components, a single merge-scan of the old map (+ sorted new
//      nodes) rewrites the node→SCC map with canonical
//      first-occurrence labels, and every derived section (DAG,
//      interval labels, sizes, summary, bow-tie) is recomputed from
//      the new condensation;
//   5. publish: the new artifact is written to "<path>.tmp" with a
//      bumped data version and fresh CRCs, validated by a full
//      reader open + map sweep, then swapped in with one atomic
//      StorageDevice::Rename — a crash or fault at ANY point leaves
//      the old version live, never a torn artifact.
//
// Because build-index writes canonical labels (core/canonical_labels.h)
// and every derived section is a deterministic function of the graph,
// the artifact after a rewrite is BYTE-IDENTICAL to build-index over
// the union graph — the oracle the tests pin.
//
// Cost per batch (b edges, map of m blocks): the translate sweep is
// <= m sequential block reads; a delta-log-only batch adds O(b/B)
// writes; a structural rewrite re-streams the artifact once,
// ~2m + O(resident sections) I/Os — still far below a full re-solve,
// which pays the multi-pass contraction/expansion hierarchy on the
// EDGE file (edges >> nodes on web-like graphs).
#ifndef EXTSCC_DYN_DYNAMIC_INDEX_H_
#define EXTSCC_DYN_DYNAMIC_INDEX_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "graph/graph_types.h"
#include "io/io_context.h"
#include "serve/artifact.h"
#include "util/status.h"

namespace extscc::dyn {

struct UpdateBatchStats {
  std::uint64_t edges_in = 0;
  std::uint64_t intra_scc = 0;       // endpoints already in one SCC
  std::uint64_t duplicate_dag = 0;   // (scc_u, scc_v) already a DAG edge
  std::uint64_t new_dag_edges = 0;   // edges needing a structural pass
  std::uint64_t new_nodes = 0;       // endpoints the artifact never saw
  std::uint64_t merge_groups = 0;    // cycles closed (merged components)
  std::uint64_t merged_sccs = 0;     // old/new SCCs consumed by merges
  std::uint64_t swept_blocks = 0;    // map blocks read translating endpoints
  std::uint64_t batch_ios = 0;       // total model block I/Os of the batch
  bool rewrote_artifact = false;
  std::uint64_t published_version = 0;  // live data version after the batch
};

class DynamicSccIndex {
 public:
  // Opens the artifact at `artifact_path` plus its delta log (missing
  // or stale log = nothing pending). The artifact must live on a
  // device supporting Rename (any non-striped path).
  static util::Result<DynamicSccIndex> Open(io::IoContext* context,
                                            const std::string& artifact_path);

  DynamicSccIndex(DynamicSccIndex&&) = default;
  DynamicSccIndex& operator=(DynamicSccIndex&&) = default;

  // Applies one insert batch (duplicate edges and self-loops welcome).
  // On success the on-disk state reflects the batch: either the delta
  // log grew (no structural change) or a bumped artifact version was
  // published atomically. On error the previously published version is
  // still live and intact — the failed attempt's temp file is removed.
  util::Result<UpdateBatchStats> ApplyBatch(
      const std::vector<graph::Edge>& batch);

  // The live artifact reader (reopened after every published rewrite).
  const serve::ArtifactReader& reader() const { return *reader_; }
  std::uint64_t data_version() const { return reader_->data_version(); }
  // Edges applied but not yet folded into the artifact (delta log).
  // Invariant: reader().summary().graph_edges + pending_delta_edges()
  // == edges of the union graph.
  std::uint64_t pending_delta_edges() const { return delta_edges_.size(); }
  const std::string& path() const { return path_; }

 private:
  DynamicSccIndex() = default;

  io::IoContext* context_ = nullptr;
  std::string path_;
  std::optional<serve::ArtifactReader> reader_;
  std::vector<graph::Edge> delta_edges_;
};

}  // namespace extscc::dyn

#endif  // EXTSCC_DYN_DYNAMIC_INDEX_H_
