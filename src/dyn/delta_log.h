// The delta edge log: the cheap half of incremental SCC maintenance.
// A batch of inserted edges that provably cannot change the SCC
// partition (every edge is intra-SCC or duplicates an existing
// condensation edge) does not need an artifact rewrite — the updater
// appends it to a sidecar log beside the artifact and returns. The log
// exists only so the summary's edge count stays reconstructible:
// artifact.graph_edges + log edges == edges of the union graph. The
// next STRUCTURAL batch folds the log into its rewrite and deletes it.
//
// Layout (single file, whole blocks at the context block size, written
// through BlockFile so device routing / fault injection / scratch
// checksums compose):
//
//   block 0       DeltaLogHeader (magic, versions, edge count, CRCs)
//   blocks 1..    graph::Edge records, packed contiguously
//
// The header names the artifact data version the log extends
// (`base_version`). A log whose base_version does not match the live
// artifact is STALE — a rewrite published and the log's edges are
// already folded in (the crash window between rename and log delete) —
// and reads as empty. Publication is the same protocol as the
// artifact: write "<path>.tmp", then StorageDevice::Rename over the
// old log.
#ifndef EXTSCC_DYN_DELTA_LOG_H_
#define EXTSCC_DYN_DELTA_LOG_H_

#include <cstdint>
#include <string>
#include <vector>

#include "graph/graph_types.h"
#include "io/io_context.h"
#include "util/status.h"

namespace extscc::dyn {

inline constexpr char kDeltaLogMagic[8] = {'E', 'X', 'S', 'C',
                                           'C', 'D', 'L', 'G'};
inline constexpr std::uint32_t kDeltaLogFormatVersion = 1;

struct DeltaLogHeader {
  char magic[8];  // kDeltaLogMagic
  std::uint32_t format_version;
  std::uint32_t block_size;
  std::uint64_t base_version;  // artifact data version this log extends
  std::uint64_t num_edges;
  std::uint32_t payload_crc;  // Crc32 over the packed edge records
  std::uint32_t crc;          // Crc32 over the preceding 36 bytes
};
static_assert(sizeof(DeltaLogHeader) == 40);

// The sidecar path: "<artifact>.dlog".
std::string DeltaLogPathFor(const std::string& artifact_path);

// Reads the delta log at `path`. A missing file and a stale log
// (base_version != expected_base_version) both yield an empty vector;
// bad magic, CRC mismatch, or truncation yield kCorruption; an
// unsupported format or block size yields kInvalidArgument.
util::Result<std::vector<graph::Edge>> ReadDeltaLog(
    io::IoContext* context, const std::string& path,
    std::uint64_t expected_base_version);

// Atomically replaces the log at `path` with one holding `edges` for
// artifact version `base_version` (write "<path>.tmp" + rename).
util::Status WriteDeltaLog(io::IoContext* context, const std::string& path,
                           std::uint64_t base_version,
                           const std::vector<graph::Edge>& edges);

// Best-effort removal of the log (after a structural rewrite folded it
// in). A missing log is not an error.
void RemoveDeltaLog(io::IoContext* context, const std::string& path);

}  // namespace extscc::dyn

#endif  // EXTSCC_DYN_DELTA_LOG_H_
