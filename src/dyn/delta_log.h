// The delta edge log: the cheap half of incremental SCC maintenance.
// A batch of inserted edges that provably cannot change the SCC
// partition (every edge is intra-SCC or duplicates an existing
// condensation edge) does not need an artifact rewrite — the updater
// appends it to a sidecar log beside the artifact and returns. The log
// exists only so the summary's edge count stays reconstructible:
// artifact.graph_edges + log edges == edges of the union graph. The
// next STRUCTURAL batch folds the log into its rewrite and deletes it.
//
// Format v2 is append-structured so a cheap update costs one record
// append (plus an fsync), not a whole-log rewrite, and so a killed
// appender damages at most the tail (single file, whole blocks at the
// context block size, written through BlockFile so device routing /
// fault injection compose):
//
//   block 0       DeltaLogHeader (magic, version, block size,
//                 base_version, CRC) — immutable after creation
//   then records, each starting on a block boundary:
//                 DeltaRecordHeader (magic, edge count, payload CRC,
//                 header CRC) + packed graph::Edge payload, zero-padded
//                 to the block boundary
//
// A reader scans records until EOF or the first record that fails its
// CRC/size checks; everything from that record on is a TORN TAIL — the
// footprint of an appender that died mid-write — and recovery truncates
// to the last CRC-valid record (RecoverDeltaLog) instead of failing
// the whole update. Torn tails are the ONLY self-healing damage class:
// a bad header block is real corruption and always surfaces.
//
// The header names the artifact data version the log extends
// (`base_version`). A log whose base_version does not match the live
// artifact is STALE — a rewrite published and the log's edges are
// already folded in (the crash window between rename and log delete) —
// and reads as empty. Creation and rewrite use the same durable
// publish protocol as the artifact: write "<path>.tmp", fsync, rename,
// fsync the parent directory.
#ifndef EXTSCC_DYN_DELTA_LOG_H_
#define EXTSCC_DYN_DELTA_LOG_H_

#include <cstdint>
#include <string>
#include <vector>

#include "graph/graph_types.h"
#include "io/io_context.h"
#include "util/status.h"

namespace extscc::dyn {

inline constexpr char kDeltaLogMagic[8] = {'E', 'X', 'S', 'C',
                                           'C', 'D', 'L', 'G'};
inline constexpr std::uint32_t kDeltaLogFormatVersion = 2;
inline constexpr std::uint32_t kDeltaRecordMagic = 0x52434C44;  // "DLCR"

struct DeltaLogHeader {
  char magic[8];  // kDeltaLogMagic
  std::uint32_t format_version;
  std::uint32_t block_size;
  std::uint64_t base_version;  // artifact data version this log extends
  std::uint32_t reserved;
  std::uint32_t crc;  // Crc32 over the preceding 28 bytes
};
static_assert(sizeof(DeltaLogHeader) == 32);

// One appended batch. The payload (num_edges packed graph::Edge)
// follows the header within the same block and spills into further
// whole blocks as needed; the next record starts at the next block
// boundary.
struct DeltaRecordHeader {
  std::uint32_t magic;  // kDeltaRecordMagic
  std::uint32_t reserved;
  std::uint64_t num_edges;
  std::uint32_t payload_crc;  // Crc32 over the packed edge payload
  std::uint32_t crc;          // Crc32 over the preceding 20 bytes
};
static_assert(sizeof(DeltaRecordHeader) == 24);

// The sidecar path: "<artifact>.dlog".
std::string DeltaLogPathFor(const std::string& artifact_path);

// A non-destructive structural scan of the log.
struct DeltaLogScan {
  bool exists = false;  // false: no log file (edges empty, nothing torn)
  bool stale = false;   // base_version mismatch (edges empty)
  bool torn = false;    // an invalid/incomplete tail follows the prefix
  // Whole blocks of the valid prefix (header block + intact records);
  // a recovery rewrite keeps exactly this much.
  std::uint64_t valid_blocks = 0;
  std::vector<graph::Edge> edges;  // every intact record, in append order
};

// Scans the log at `path`. Torn tails are REPORTED, not errors; a
// missing file reports exists=false. Errors: bad header magic/CRC is
// kCorruption (the log's identity is gone — no safe recovery), an
// unsupported format or block size is kInvalidArgument, and device
// failures propagate.
util::Result<DeltaLogScan> ScanDeltaLog(io::IoContext* context,
                                        const std::string& path,
                                        std::uint64_t expected_base_version);

// Strict read: like ScanDeltaLog but a torn tail is kCorruption. A
// missing file and a stale log both yield an empty vector.
util::Result<std::vector<graph::Edge>> ReadDeltaLog(
    io::IoContext* context, const std::string& path,
    std::uint64_t expected_base_version);

// Self-healing read for the update path: scans, and when a torn tail
// is found rewrites the log to its valid prefix (durable publish)
// before returning the surviving edges. *recovered_torn_tail (when
// non-null) reports whether a repair happened.
util::Result<std::vector<graph::Edge>> RecoverDeltaLog(
    io::IoContext* context, const std::string& path,
    std::uint64_t expected_base_version,
    bool* recovered_torn_tail = nullptr);

// Atomically and durably replaces the log at `path` with one holding
// `edges` (as a single record) for artifact version `base_version`:
// write "<path>.tmp", fsync, rename, fsync parent.
util::Status WriteDeltaLog(io::IoContext* context, const std::string& path,
                           std::uint64_t base_version,
                           const std::vector<graph::Edge>& edges);

// Appends `batch` as one durable record. Clean existing log with a
// matching base_version: in-place append + fsync (a crash mid-append
// leaves a torn tail the next reader truncates). Missing or stale log:
// fresh durable WriteDeltaLog. Torn log: recovery rewrite folding the
// valid prefix and the new batch together. Bad header: kCorruption.
util::Status AppendDeltaLog(io::IoContext* context, const std::string& path,
                            std::uint64_t base_version,
                            const std::vector<graph::Edge>& batch);

// Best-effort removal of the log (after a structural rewrite folded it
// in). A missing log is not an error.
void RemoveDeltaLog(io::IoContext* context, const std::string& path);

}  // namespace extscc::dyn

#endif  // EXTSCC_DYN_DELTA_LOG_H_
