#include "scc/scc_result.h"

#include <algorithm>
#include <sstream>
#include <unordered_set>

#include "util/logging.h"

namespace extscc::scc {

graph::SccId SccResult::LabelOf(graph::NodeId node) const {
  const auto it = labels_.find(node);
  CHECK(it != labels_.end()) << "node " << node << " has no SCC label";
  return it->second;
}

std::size_t SccResult::num_sccs() const {
  std::unordered_set<graph::SccId> distinct;
  distinct.reserve(labels_.size());
  for (const auto& [node, scc] : labels_) distinct.insert(scc);
  return distinct.size();
}

std::unordered_map<graph::SccId, std::uint64_t> SccResult::ComponentSizes()
    const {
  std::unordered_map<graph::SccId, std::uint64_t> sizes;
  for (const auto& [node, scc] : labels_) sizes[scc] += 1;
  return sizes;
}

std::vector<std::uint64_t> SccResult::SortedComponentSizes() const {
  std::vector<std::uint64_t> out;
  for (const auto& [scc, size] : ComponentSizes()) out.push_back(size);
  std::sort(out.rbegin(), out.rend());
  return out;
}

std::uint64_t SccResult::LargestComponent() const {
  std::uint64_t best = 0;
  for (const auto& [scc, size] : ComponentSizes()) best = std::max(best, size);
  return best;
}

bool SamePartition(const SccResult& a, const SccResult& b) {
  if (a.num_nodes() != b.num_nodes()) return false;
  std::unordered_map<graph::SccId, graph::SccId> a_to_b;
  std::unordered_map<graph::SccId, graph::SccId> b_to_a;
  for (const auto& [node, label_a] : a.labels()) {
    if (!b.Contains(node)) return false;
    const graph::SccId label_b = b.LabelOf(node);
    const auto [it_ab, inserted_ab] = a_to_b.emplace(label_a, label_b);
    if (!inserted_ab && it_ab->second != label_b) return false;
    const auto [it_ba, inserted_ba] = b_to_a.emplace(label_b, label_a);
    if (!inserted_ba && it_ba->second != label_a) return false;
  }
  return true;
}

std::string ExplainPartitionDifference(const SccResult& a,
                                       const SccResult& b) {
  if (a.num_nodes() != b.num_nodes()) {
    std::ostringstream out;
    out << "node-set sizes differ: " << a.num_nodes() << " vs "
        << b.num_nodes();
    return out.str();
  }
  std::unordered_map<graph::SccId, graph::SccId> a_to_b;
  std::unordered_map<graph::SccId, graph::SccId> b_to_a;
  for (const auto& [node, label_a] : a.labels()) {
    if (!b.Contains(node)) {
      return "node " + std::to_string(node) + " missing from second result";
    }
    const graph::SccId label_b = b.LabelOf(node);
    const auto [it_ab, inserted_ab] = a_to_b.emplace(label_a, label_b);
    if (!inserted_ab && it_ab->second != label_b) {
      return "nodes with first-label " + std::to_string(label_a) +
             " split across second-labels " + std::to_string(it_ab->second) +
             " and " + std::to_string(label_b) + " (witness node " +
             std::to_string(node) + ")";
    }
    const auto [it_ba, inserted_ba] = b_to_a.emplace(label_b, label_a);
    if (!inserted_ba && it_ba->second != label_a) {
      return "nodes with second-label " + std::to_string(label_b) +
             " split across first-labels (witness node " +
             std::to_string(node) + ")";
    }
  }
  return "partitions are identical";
}

}  // namespace extscc::scc
