#include "scc/br_tree_scc.h"

#include <algorithm>
#include <vector>

#include "io/record_stream.h"
#include "util/logging.h"

namespace extscc::scc {

namespace {

using graph::Edge;
using graph::NodeId;
using graph::SccId;

// Virtual-root sentinel in the parent array (dense indices are < n).
constexpr std::uint32_t kRoot = 0xffffffffu;

// Union-find over dense indices with path halving. Unions are directed:
// the surviving representative is always the tree-path's top node, whose
// parent/depth stay valid for the merged group.
class DirectedUnionFind {
 public:
  explicit DirectedUnionFind(std::size_t n) : parent_(n) {
    for (std::size_t i = 0; i < n; ++i) {
      parent_[i] = static_cast<std::uint32_t>(i);
    }
  }

  std::uint32_t Find(std::uint32_t x) {
    while (parent_[x] != x) {
      parent_[x] = parent_[parent_[x]];  // path halving
      x = parent_[x];
    }
    return x;
  }

  // Merges the group of `from` into the representative `into_rep`.
  void MergeInto(std::uint32_t from, std::uint32_t into_rep) {
    parent_[Find(from)] = into_rep;
  }

 private:
  std::vector<std::uint32_t> parent_;
};

}  // namespace

bool BrTreeScc::Fits(std::uint64_t num_nodes, const io::MemoryBudget& memory) {
  return num_nodes * kBytesPerNode <= memory.total_bytes();
}

BrTreeStats BrTreeScc::Run(io::IoContext* context, const graph::DiskGraph& g,
                           const std::string& scc_output,
                           SccId* next_scc_id) {
  CHECK(Fits(g.num_nodes, context->memory()))
      << "BR-tree Semi-SCC invoked on " << g.num_nodes
      << " nodes with M=" << context->memory().total_bytes()
      << " — the contraction phase must shrink the node set first";

  BrTreeStats stats;
  const std::vector<NodeId> ids =
      io::ReadAllRecords<NodeId>(context, g.node_path);
  const std::size_t n = ids.size();
  CHECK_EQ(n, g.num_nodes);
  io::ScopedReservation reservation(
      &context->memory(),
      std::min<std::uint64_t>(n * kBytesPerNode,
                              context->memory().available_bytes()));

  if (n == 0) {
    io::RecordWriter<graph::SccEntry> writer(context, scc_output);
    writer.Finish();
    return stats;
  }

  auto index_of = [&](NodeId id) {
    const auto it = std::lower_bound(ids.begin(), ids.end(), id);
    DCHECK(it != ids.end() && *it == id);
    return static_cast<std::uint32_t>(it - ids.begin());
  };

  // One-time endpoint translation to dense indices (sequential pass),
  // mirroring the colouring backend, so the fixpoint scans are
  // lookup-free.
  const std::string translated = context->NewTempPath("brt_edges_idx");
  {
    io::RecordReader<Edge> reader(context, g.edge_path);
    io::RecordWriter<Edge> writer(context, translated);
    Edge e;
    while (reader.Next(&e)) {
      writer.Append(Edge{index_of(e.src), index_of(e.dst)});
    }
    writer.Finish();
  }

  DirectedUnionFind uf(n);
  // Spanning tree: every node starts as a child of the virtual root.
  // Parent links other than kRoot are only ever created from a real edge
  // (parent -> child), which is what makes tree paths real directed
  // paths and contraction sound.
  std::vector<std::uint32_t> parent(n, kRoot);
  std::vector<std::uint32_t> depth(n, 1);

  // True ancestor test: walk rep-normalized parent links from `u` toward
  // the root, looking for `v`. Exactness matters — re-hanging v under a
  // strict descendant of v would close a parent-pointer cycle.
  auto is_ancestor = [&](std::uint32_t v_rep, std::uint32_t u_rep,
                         std::vector<std::uint32_t>* path) {
    path->clear();
    std::uint32_t x = u_rep;
    std::uint64_t hops = 0;
    while (x != kRoot) {
      if (x == v_rep) return true;
      path->push_back(x);
      const std::uint32_t p = parent[x];
      x = p == kRoot ? kRoot : uf.Find(p);
      CHECK_LE(++hops, static_cast<std::uint64_t>(n) + 1)
          << "parent-pointer cycle — BR-tree invariant broken";
    }
    return false;
  };

  // Generous safety valve. Every pass with work does a contraction
  // (<= n-1 total) or strictly increases some depth; random and web-like
  // graphs converge in a handful of passes (asserted in tests).
  const std::uint64_t max_passes = 4 * static_cast<std::uint64_t>(n) + 16;

  std::vector<std::uint32_t> path;
  bool changed = true;
  while (changed) {
    changed = false;
    ++stats.passes;
    CHECK_LE(stats.passes, max_passes)
        << "BR-tree fixpoint did not converge — invariant bug";
    io::RecordReader<Edge> reader(context, translated);
    Edge e;
    while (reader.Next(&e)) {
      const std::uint32_t u = uf.Find(e.src);
      const std::uint32_t v = uf.Find(e.dst);
      if (u == v) continue;
      // Fast path: the edge already points strictly downward. (Depths of
      // re-hung subtrees are stale within a pass; that only delays work
      // to a later pass, never unsoundly mutates the tree.)
      if (depth[v] > depth[u]) continue;
      if (is_ancestor(v, u, &path)) {
        // path = u .. child-of-v along parent links; with edge (u, v)
        // this closes a real directed cycle. Contract into v.
        for (const std::uint32_t x : path) uf.MergeInto(x, v);
        ++stats.contractions;
        changed = true;
      } else {
        parent[v] = u;
        depth[v] = depth[u] + 1;
        ++stats.rehangs;
        changed = true;
      }
    }
  }

  // Each surviving representative group is one SCC. Label densely in
  // representative order, then emit per original node (ids are sorted,
  // so the output is node-sorted as required).
  std::vector<SccId> label(n, graph::kInvalidScc);
  for (std::size_t i = 0; i < n; ++i) {
    const std::uint32_t rep = uf.Find(static_cast<std::uint32_t>(i));
    if (label[rep] == graph::kInvalidScc) {
      label[rep] = (*next_scc_id)++;
      ++stats.num_sccs;
    }
    label[i] = label[rep];
  }

  context->temp_files().Remove(translated);

  io::RecordWriter<graph::SccEntry> writer(context, scc_output);
  for (std::size_t i = 0; i < n; ++i) {
    writer.Append(graph::SccEntry{ids[i], label[i]});
  }
  writer.Finish();
  return stats;
}

// ---- backend dispatch ---------------------------------------------------

const char* SemiSccBackendName(SemiSccBackend backend) {
  switch (backend) {
    case SemiSccBackend::kColoring:
      return "coloring";
    case SemiSccBackend::kBrTree:
      return "br-tree";
  }
  return "unknown";
}

bool SemiSccFits(SemiSccBackend backend, std::uint64_t num_nodes,
                 const io::MemoryBudget& memory) {
  switch (backend) {
    case SemiSccBackend::kColoring:
      return SemiExternalScc::Fits(num_nodes, memory);
    case SemiSccBackend::kBrTree:
      return BrTreeScc::Fits(num_nodes, memory);
  }
  return false;
}

SemiSccStats RunSemiScc(SemiSccBackend backend, io::IoContext* context,
                        const graph::DiskGraph& g,
                        const std::string& scc_output, SccId* next_scc_id) {
  switch (backend) {
    case SemiSccBackend::kColoring:
      return SemiExternalScc::Run(context, g, scc_output, next_scc_id);
    case SemiSccBackend::kBrTree: {
      const BrTreeStats brt = BrTreeScc::Run(context, g, scc_output,
                                             next_scc_id);
      SemiSccStats stats;
      stats.rounds = brt.passes;
      stats.edge_scans = brt.passes;
      stats.trimmed = brt.contractions;
      stats.num_sccs = brt.num_sccs;
      return stats;
    }
  }
  LOG_FATAL << "unknown SemiSccBackend";
  return {};
}

}  // namespace extscc::scc
