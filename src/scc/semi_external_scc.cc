#include "scc/semi_external_scc.h"

#include <algorithm>
#include <unordered_map>
#include <vector>

#include "io/record_stream.h"
#include "util/logging.h"

namespace extscc::scc {

namespace {

using graph::Edge;
using graph::NodeId;
using graph::SccId;

constexpr std::uint32_t kNone = 0xffffffffu;

// Dense per-node state; index into the sorted node-id array.
struct NodeState {
  std::vector<NodeId> ids;          // sorted
  std::vector<std::uint32_t> color;
  std::vector<SccId> label;
  std::vector<bool> alive;
  std::vector<bool> marked;

  std::size_t IndexOf(NodeId id) const {
    const auto it = std::lower_bound(ids.begin(), ids.end(), id);
    DCHECK(it != ids.end() && *it == id);
    return static_cast<std::size_t>(it - ids.begin());
  }
};

}  // namespace

bool SemiExternalScc::Fits(std::uint64_t num_nodes,
                           const io::MemoryBudget& memory) {
  return num_nodes * kBytesPerNode <= memory.total_bytes();
}

SemiSccStats SemiExternalScc::Run(io::IoContext* context,
                                  const graph::DiskGraph& g,
                                  const std::string& scc_output,
                                  SccId* next_scc_id) {
  CHECK(Fits(g.num_nodes, context->memory()))
      << "Semi-SCC invoked on " << g.num_nodes
      << " nodes with M=" << context->memory().total_bytes()
      << " — the contraction phase must shrink the node set first";

  SemiSccStats stats;
  NodeState state;
  state.ids = io::ReadAllRecords<NodeId>(context, g.node_path);
  const std::size_t n = state.ids.size();
  CHECK_EQ(n, g.num_nodes);
  state.color.assign(n, kNone);
  state.label.assign(n, graph::kInvalidScc);
  state.alive.assign(n, true);
  state.marked.assign(n, false);
  io::ScopedReservation reservation(
      &context->memory(), std::min<std::uint64_t>(
                              n * kBytesPerNode,
                              context->memory().available_bytes()));

  std::uint64_t live = n;

  // One-time endpoint translation to dense indices so the fixpoint scans
  // below are lookup-free. Costs one extra sequential pass; the id->index
  // map is the node array we already hold (within the O(|V|) contract).
  const std::string translated = context->NewTempPath("semi_edges_idx");
  {
    io::RecordReader<Edge> reader(context, g.edge_path);
    io::RecordWriter<Edge> writer(context, translated);
    Edge e;
    while (reader.Next(&e)) {
      writer.Append(Edge{static_cast<NodeId>(state.IndexOf(e.src)),
                         static_cast<NodeId>(state.IndexOf(e.dst))});
    }
    writer.Finish();
  }

  auto scan_edges = [&](auto&& per_edge) {
    ++stats.edge_scans;
    io::RecordReader<Edge> reader(context, translated);
    Edge e;
    while (reader.Next(&e)) per_edge(e);
  };

  // ---- 1. Trim ------------------------------------------------------
  auto trim = [&]() {
    while (live > 0) {
      std::vector<std::uint32_t> in_deg(n, 0), out_deg(n, 0);
      scan_edges([&](const Edge& e) {
        const std::size_t s = e.src;  // already dense indices
        const std::size_t d = e.dst;
        if (state.alive[s] && state.alive[d]) {
          out_deg[s] += 1;
          in_deg[d] += 1;
        }
      });
      std::uint64_t killed = 0;
      for (std::size_t v = 0; v < n; ++v) {
        if (state.alive[v] && (in_deg[v] == 0 || out_deg[v] == 0)) {
          state.label[v] = (*next_scc_id)++;
          state.alive[v] = false;
          ++killed;
        }
      }
      stats.trimmed += killed;
      stats.num_sccs += killed;
      live -= killed;
      if (killed == 0) break;
    }
  };

  trim();

  // ---- 2-4. Colour / mark / retire rounds ---------------------------
  while (live > 0) {
    ++stats.rounds;
    // Colour propagation: colour(v) = max over ancestors (Gauss-Seidel
    // within a pass, so chains aligned with edge order converge fast).
    for (std::size_t v = 0; v < n; ++v) {
      state.color[v] = state.alive[v] ? static_cast<std::uint32_t>(v) : kNone;
    }
    bool changed = true;
    while (changed) {
      changed = false;
      scan_edges([&](const Edge& e) {
        const std::size_t s = e.src;  // already dense indices
        const std::size_t d = e.dst;
        if (!state.alive[s] || !state.alive[d]) return;
        if (state.color[s] > state.color[d]) {
          state.color[d] = state.color[s];
          changed = true;
        }
      });
    }

    // Backward mark within colour classes, seeded at the roots.
    std::fill(state.marked.begin(), state.marked.end(), false);
    for (std::size_t v = 0; v < n; ++v) {
      if (state.alive[v] && state.color[v] == static_cast<std::uint32_t>(v)) {
        state.marked[v] = true;
      }
    }
    changed = true;
    while (changed) {
      changed = false;
      scan_edges([&](const Edge& e) {
        const std::size_t s = e.src;  // already dense indices
        const std::size_t d = e.dst;
        if (!state.alive[s] || !state.alive[d]) return;
        if (state.color[s] == state.color[d] && state.marked[d] &&
            !state.marked[s]) {
          state.marked[s] = true;
          changed = true;
        }
      });
    }

    // Retire the SCC of every root.
    std::unordered_map<std::uint32_t, SccId> root_label;
    std::uint64_t killed = 0;
    for (std::size_t v = 0; v < n; ++v) {
      if (!state.alive[v] || !state.marked[v]) continue;
      const auto [it, inserted] =
          root_label.emplace(state.color[v], SccId{0});
      if (inserted) {
        it->second = (*next_scc_id)++;
        ++stats.num_sccs;
      }
      state.label[v] = it->second;
      state.alive[v] = false;
      ++killed;
    }
    CHECK_GT(killed, 0u) << "colouring round retired no node — bug";
    live -= killed;

    trim();
  }

  context->temp_files().Remove(translated);

  // ---- Output: ids are sorted, so the label file is node-sorted. -----
  io::RecordWriter<graph::SccEntry> writer(context, scc_output);
  for (std::size_t v = 0; v < n; ++v) {
    DCHECK(state.label[v] != graph::kInvalidScc);
    writer.Append(graph::SccEntry{state.ids[v], state.label[v]});
  }
  writer.Finish();
  return stats;
}

}  // namespace extscc::scc
