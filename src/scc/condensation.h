// SCC condensation and external topological sort — the paper's two
// motivating applications (§I): contracting every SCC to one node turns
// any digraph into a DAG; topological sort then ranks the DAG.
//
// Both operations are built from the same sort/scan vocabulary as the
// core algorithm: endpoint relabelling is two sort+merge passes against
// the node-sorted SCC file; topological sort is iterative peeling of
// zero-in-degree nodes where each round is one degree-count scan
// (an external Kahn — O(depth) scans, fine for the shallow DAGs
// condensation produces).
#ifndef EXTSCC_SCC_CONDENSATION_H_
#define EXTSCC_SCC_CONDENSATION_H_

#include <cstdint>
#include <string>

#include "graph/disk_graph.h"
#include "graph/graph_types.h"
#include "io/io_context.h"
#include "util/status.h"

namespace extscc::scc {

struct CondensationResult {
  // DAG over SCC labels: node file + simple (dedupped, loop-free) edges.
  graph::DiskGraph dag;
  std::uint64_t intra_scc_edges = 0;   // dropped (both endpoints same SCC)
  std::uint64_t parallel_edges = 0;    // dropped duplicates
};

// Builds the condensation of `g` under the node-sorted (node, scc)
// assignment at `scc_path` (every node of `g` must be labelled; labels
// are expected dense as produced by RunExtScc / Semi-SCC).
CondensationResult BuildCondensation(io::IoContext* context,
                                     const graph::DiskGraph& g,
                                     const std::string& scc_path);

struct TopoSortResult {
  // (node, rank) as SccEntry records sorted by node; ranks are level
  // numbers (all rank-0 nodes have no predecessors, etc.).
  std::string rank_path;
  std::uint64_t num_levels = 0;
  std::uint64_t ranked_nodes = 0;
};

// External Kahn levelling of a DAG. Returns FailedPrecondition if the
// input has a cycle (some nodes can never be peeled).
util::Result<TopoSortResult> ExternalTopoSort(io::IoContext* context,
                                              const graph::DiskGraph& dag);

}  // namespace extscc::scc

#endif  // EXTSCC_SCC_CONDENSATION_H_
