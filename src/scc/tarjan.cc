#include "scc/tarjan.h"

#include <cstdint>

#include "util/logging.h"

namespace extscc::scc {

namespace {

constexpr std::uint32_t kUnvisited = 0xffffffffu;

}  // namespace

std::vector<graph::SccId> TarjanSccDense(const graph::Digraph& g,
                                         graph::SccId* next_scc_id) {
  const std::size_t n = g.num_nodes();
  std::vector<std::uint32_t> index(n, kUnvisited);
  std::vector<std::uint32_t> lowlink(n, 0);
  std::vector<bool> on_stack(n, false);
  std::vector<std::uint32_t> scc_stack;
  std::vector<graph::SccId> label(n, graph::kInvalidScc);

  // Explicit DFS frame: node + position within its adjacency list.
  struct Frame {
    std::uint32_t node;
    std::uint32_t edge_pos;
  };
  std::vector<Frame> dfs_stack;
  std::uint32_t next_index = 0;

  for (std::uint32_t root = 0; root < n; ++root) {
    if (index[root] != kUnvisited) continue;
    dfs_stack.push_back({root, 0});
    index[root] = lowlink[root] = next_index++;
    scc_stack.push_back(root);
    on_stack[root] = true;

    while (!dfs_stack.empty()) {
      Frame& frame = dfs_stack.back();
      const auto neighbors = g.out_neighbors(frame.node);
      if (frame.edge_pos < neighbors.size()) {
        const std::uint32_t next = neighbors[frame.edge_pos++];
        if (index[next] == kUnvisited) {
          index[next] = lowlink[next] = next_index++;
          scc_stack.push_back(next);
          on_stack[next] = true;
          dfs_stack.push_back({next, 0});
        } else if (on_stack[next]) {
          lowlink[frame.node] = std::min(lowlink[frame.node], index[next]);
        }
        continue;
      }
      // Node finished: pop an SCC if this is a root, then propagate
      // lowlink to the parent.
      const std::uint32_t node = frame.node;
      dfs_stack.pop_back();
      if (lowlink[node] == index[node]) {
        const graph::SccId scc = (*next_scc_id)++;
        while (true) {
          const std::uint32_t member = scc_stack.back();
          scc_stack.pop_back();
          on_stack[member] = false;
          label[member] = scc;
          if (member == node) break;
        }
      }
      if (!dfs_stack.empty()) {
        Frame& parent = dfs_stack.back();
        lowlink[parent.node] = std::min(lowlink[parent.node], lowlink[node]);
      }
    }
  }
  return label;
}

SccResult TarjanScc(const graph::Digraph& g, graph::SccId* next_scc_id) {
  const std::vector<graph::SccId> dense = TarjanSccDense(g, next_scc_id);
  SccResult result;
  for (std::size_t i = 0; i < g.num_nodes(); ++i) {
    result.Assign(g.id_of(i), dense[i]);
  }
  return result;
}

SccResult TarjanScc(const graph::Digraph& g) {
  graph::SccId next = 0;
  return TarjanScc(g, &next);
}

}  // namespace extscc::scc
