// Iterative Kosaraju-Sharir SCC (Algorithm 1's in-memory form): one DFS
// for decreasing postorder, a second DFS on the reversed graph. Kept as
// an independent oracle to cross-check Tarjan, and as the in-memory model
// that the external DFS-SCC baseline simulates.
#ifndef EXTSCC_SCC_KOSARAJU_H_
#define EXTSCC_SCC_KOSARAJU_H_

#include "graph/digraph.h"
#include "scc/scc_result.h"

namespace extscc::scc {

SccResult KosarajuScc(const graph::Digraph& g, graph::SccId* next_scc_id);
SccResult KosarajuScc(const graph::Digraph& g);

}  // namespace extscc::scc

#endif  // EXTSCC_SCC_KOSARAJU_H_
