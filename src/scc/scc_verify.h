// Verification helpers: load a DiskGraph fully into memory, compute the
// oracle partition with Tarjan, and compare against an algorithm's
// on-disk SCC file. Test/QA utilities only — they deliberately ignore the
// memory budget.
#ifndef EXTSCC_SCC_SCC_VERIFY_H_
#define EXTSCC_SCC_SCC_VERIFY_H_

#include <string>

#include "graph/disk_graph.h"
#include "scc/scc_result.h"

namespace extscc::scc {

// In-memory oracle partition of a disk graph.
SccResult OraclePartition(io::IoContext* context, const graph::DiskGraph& g);

// Reads the (node, scc) file into an SccResult.
SccResult LoadSccResult(io::IoContext* context, const std::string& scc_path);

// True iff the on-disk assignment equals the oracle partition (up to
// relabeling). On mismatch, *explanation (if non-null) receives the first
// difference.
bool VerifySccFile(io::IoContext* context, const graph::DiskGraph& g,
                   const std::string& scc_path,
                   std::string* explanation = nullptr);

}  // namespace extscc::scc

#endif  // EXTSCC_SCC_SCC_VERIFY_H_
