#include "scc/condensation.h"

#include "extsort/external_sorter.h"
#include "graph/edge_file.h"
#include "graph/node_file.h"
#include "graph/scc_file.h"
#include "io/record_stream.h"
#include "util/logging.h"

namespace extscc::scc {

namespace {

using graph::Edge;
using graph::EdgeByDst;
using graph::EdgeBySrc;
using graph::NodeId;
using graph::SccEntry;

// Relabels one endpoint of every edge with its SCC label by merging the
// endpoint-sorted edge stream against the node-sorted label stream.
void RelabelEndpoint(io::IoContext* context, const std::string& edges_in,
                     const std::string& scc_path, bool relabel_src,
                     const std::string& edges_out) {
  io::PeekableReader<Edge> edges(context, edges_in);
  io::PeekableReader<SccEntry> labels(context, scc_path);
  io::RecordWriter<Edge> writer(context, edges_out);
  while (edges.has_value()) {
    const NodeId key = relabel_src ? edges.Peek().src : edges.Peek().dst;
    while (labels.has_value() && labels.Peek().node < key) labels.Pop();
    CHECK(labels.has_value() && labels.Peek().node == key)
        << "node " << key << " has no SCC label";
    Edge e = edges.Pop();
    if (relabel_src) {
      e.src = labels.Peek().scc;
    } else {
      e.dst = labels.Peek().scc;
    }
    writer.Append(e);
  }
  writer.Finish();
}

}  // namespace

CondensationResult BuildCondensation(io::IoContext* context,
                                     const graph::DiskGraph& g,
                                     const std::string& scc_path) {
  CondensationResult result;

  const std::string by_src = context->NewTempPath("cond_bysrc");
  graph::SortEdgesBySrc(context, g.edge_path, by_src);
  const std::string src_mapped = context->NewTempPath("cond_srcmap");
  RelabelEndpoint(context, by_src, scc_path, /*relabel_src=*/true,
                  src_mapped);
  context->temp_files().Remove(by_src);

  const std::string by_dst = context->NewTempPath("cond_bydst");
  graph::SortEdgesByDst(context, src_mapped, by_dst);
  context->temp_files().Remove(src_mapped);
  const std::string mapped = context->NewTempPath("cond_map");
  RelabelEndpoint(context, by_dst, scc_path, /*relabel_src=*/false, mapped);
  context->temp_files().Remove(by_dst);

  // Drop intra-SCC loops, then sort + dedup parallel condensation edges.
  const std::string loop_free = context->NewTempPath("cond_loopfree");
  std::uint64_t kept = 0;
  {
    io::RecordReader<Edge> reader(context, mapped);
    io::RecordWriter<Edge> writer(context, loop_free);
    Edge e;
    while (reader.Next(&e)) {
      if (e.src == e.dst) {
        ++result.intra_scc_edges;
      } else {
        writer.Append(e);
        ++kept;
      }
    }
    writer.Finish();
  }
  context->temp_files().Remove(mapped);

  const std::string dag_edges = context->NewTempPath("cond_dagedges");
  graph::SortEdgesBySrc(context, loop_free, dag_edges, /*dedup=*/true);
  context->temp_files().Remove(loop_free);
  const std::uint64_t simple = graph::CountEdges(context, dag_edges);
  result.parallel_edges = kept - simple;

  // DAG node file: every SCC label (from the label file's scc column).
  const std::string label_nodes = context->NewTempPath("cond_labels");
  {
    io::RecordReader<SccEntry> reader(context, scc_path);
    io::RecordWriter<NodeId> writer(context, label_nodes);
    SccEntry entry;
    while (reader.Next(&entry)) writer.Append(entry.scc);
    writer.Finish();
  }
  result.dag.node_path = context->NewTempPath("cond_dagnodes");
  graph::SortNodeFile(context, label_nodes, result.dag.node_path);
  context->temp_files().Remove(label_nodes);

  result.dag.edge_path = dag_edges;
  result.dag.num_nodes = graph::CountNodes(context, result.dag.node_path);
  result.dag.num_edges = simple;
  return result;
}

util::Result<TopoSortResult> ExternalTopoSort(io::IoContext* context,
                                              const graph::DiskGraph& dag) {
  TopoSortResult result;
  const std::string rank_staging = context->NewTempPath("topo_ranks_raw");

  std::string active_nodes = context->NewTempPath("topo_nodes");
  {
    // Copy so the peeling loop may consume/replace its own files.
    io::RecordReader<NodeId> reader(context, dag.node_path);
    io::RecordWriter<NodeId> writer(context, active_nodes);
    NodeId v;
    while (reader.Next(&v)) writer.Append(v);
    writer.Finish();
  }
  std::string active_edges = context->NewTempPath("topo_edges");
  {
    io::RecordReader<Edge> reader(context, dag.edge_path);
    io::RecordWriter<Edge> writer(context, active_edges);
    Edge e;
    while (reader.Next(&e)) writer.Append(e);
    writer.Finish();
  }

  io::RecordWriter<SccEntry> ranks(context, rank_staging);
  std::uint64_t active_count = graph::CountNodes(context, active_nodes);
  std::uint32_t level = 0;
  while (active_count > 0) {
    // Heads of remaining edges = nodes with in-degree > 0.
    const std::string heads = context->NewTempPath("topo_heads");
    {
      const std::string staging = context->NewTempPath("topo_heads_raw");
      io::RecordReader<Edge> reader(context, active_edges);
      io::RecordWriter<NodeId> writer(context, staging);
      Edge e;
      while (reader.Next(&e)) writer.Append(e.dst);
      writer.Finish();
      graph::SortNodeFile(context, staging, heads);
      context->temp_files().Remove(staging);
    }
    // zero = active \ heads.
    const std::string zero = context->NewTempPath("topo_zero");
    const std::uint64_t zero_count =
        graph::NodeFileDifference(context, active_nodes, heads, zero);
    context->temp_files().Remove(heads);
    if (zero_count == 0) {
      return util::Status::FailedPrecondition(
          "topological sort input has a cycle (" +
          std::to_string(active_count) + " nodes cannot be peeled)");
    }
    {
      io::RecordReader<NodeId> reader(context, zero);
      NodeId v;
      while (reader.Next(&v)) {
        ranks.Append(SccEntry{v, level});
        ++result.ranked_nodes;
      }
    }
    // Shrink the active node set and drop edges leaving peeled nodes.
    const std::string next_nodes = context->NewTempPath("topo_nodes");
    active_count =
        graph::NodeFileDifference(context, active_nodes, zero, next_nodes);
    context->temp_files().Remove(active_nodes);
    active_nodes = next_nodes;

    const std::string by_src = context->NewTempPath("topo_bysrc");
    graph::SortEdgesBySrc(context, active_edges, by_src);
    context->temp_files().Remove(active_edges);
    const std::string next_edges = context->NewTempPath("topo_edges");
    {
      io::PeekableReader<Edge> edges(context, by_src);
      io::PeekableReader<NodeId> peeled(context, zero);
      io::RecordWriter<Edge> writer(context, next_edges);
      while (edges.has_value()) {
        const NodeId src = edges.Peek().src;
        while (peeled.has_value() && peeled.Peek() < src) peeled.Pop();
        const bool drop = peeled.has_value() && peeled.Peek() == src;
        const Edge e = edges.Pop();
        if (!drop) writer.Append(e);
      }
      writer.Finish();
    }
    context->temp_files().Remove(by_src);
    context->temp_files().Remove(zero);
    active_edges = next_edges;
    ++level;
  }
  ranks.Finish();
  context->temp_files().Remove(active_nodes);
  context->temp_files().Remove(active_edges);

  result.num_levels = level;
  result.rank_path = context->NewTempPath("topo_ranks");
  graph::SortSccFileByNode(context, rank_staging, result.rank_path);
  context->temp_files().Remove(rank_staging);
  return result;
}

}  // namespace extscc::scc
