// Iterative (explicit-stack) Tarjan SCC over an in-memory Digraph.
// Linear time; the library's in-memory base case and the test oracle.
#ifndef EXTSCC_SCC_TARJAN_H_
#define EXTSCC_SCC_TARJAN_H_

#include <vector>

#include "graph/digraph.h"
#include "scc/scc_result.h"

namespace extscc::scc {

// Labels every node of `g`; component labels are allocated from
// *next_scc_id upwards (incremented per SCC found) so callers can keep a
// globally unique label space across phases.
SccResult TarjanScc(const graph::Digraph& g, graph::SccId* next_scc_id);

// Convenience with a fresh label space starting at 0.
SccResult TarjanScc(const graph::Digraph& g);

// Dense variant used by EM-SCC: returns component index per dense node
// index (no NodeId mapping), labels from *next_scc_id.
std::vector<graph::SccId> TarjanSccDense(const graph::Digraph& g,
                                         graph::SccId* next_scc_id);

}  // namespace extscc::scc

#endif  // EXTSCC_SCC_TARJAN_H_
