#include "scc/kosaraju.h"

#include <cstdint>
#include <vector>

namespace extscc::scc {

namespace {

// Iterative DFS emitting reverse postorder of the whole forest.
std::vector<std::uint32_t> ReversePostorder(const graph::Digraph& g) {
  const std::size_t n = g.num_nodes();
  std::vector<bool> visited(n, false);
  std::vector<std::uint32_t> postorder;
  postorder.reserve(n);
  struct Frame {
    std::uint32_t node;
    std::uint32_t edge_pos;
  };
  std::vector<Frame> stack;
  for (std::uint32_t root = 0; root < n; ++root) {
    if (visited[root]) continue;
    visited[root] = true;
    stack.push_back({root, 0});
    while (!stack.empty()) {
      Frame& frame = stack.back();
      const auto neighbors = g.out_neighbors(frame.node);
      if (frame.edge_pos < neighbors.size()) {
        const std::uint32_t next = neighbors[frame.edge_pos++];
        if (!visited[next]) {
          visited[next] = true;
          stack.push_back({next, 0});
        }
        continue;
      }
      postorder.push_back(frame.node);
      stack.pop_back();
    }
  }
  std::vector<std::uint32_t> out(postorder.rbegin(), postorder.rend());
  return out;
}

}  // namespace

SccResult KosarajuScc(const graph::Digraph& g, graph::SccId* next_scc_id) {
  const std::size_t n = g.num_nodes();
  const std::vector<std::uint32_t> order = ReversePostorder(g);

  // Second pass: DFS the reversed graph (in_neighbors) in decreasing
  // postorder; every tree found is one SCC.
  std::vector<bool> visited(n, false);
  SccResult result;
  std::vector<std::uint32_t> stack;
  for (const std::uint32_t root : order) {
    if (visited[root]) continue;
    const graph::SccId scc = (*next_scc_id)++;
    visited[root] = true;
    stack.push_back(root);
    while (!stack.empty()) {
      const std::uint32_t node = stack.back();
      stack.pop_back();
      result.Assign(g.id_of(node), scc);
      for (const std::uint32_t prev : g.in_neighbors(node)) {
        if (!visited[prev]) {
          visited[prev] = true;
          stack.push_back(prev);
        }
      }
    }
  }
  return result;
}

SccResult KosarajuScc(const graph::Digraph& g) {
  graph::SccId next = 0;
  return KosarajuScc(g, &next);
}

}  // namespace extscc::scc
