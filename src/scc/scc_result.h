// In-memory SCC assignment plus the partition-comparison helpers the
// tests and examples use. Disk-resident assignments use graph::SccEntry
// files; this type is for results small enough to inspect.
#ifndef EXTSCC_SCC_SCC_RESULT_H_
#define EXTSCC_SCC_SCC_RESULT_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "graph/graph_types.h"

namespace extscc::scc {

class SccResult {
 public:
  SccResult() = default;
  explicit SccResult(std::unordered_map<graph::NodeId, graph::SccId> labels)
      : labels_(std::move(labels)) {}

  void Assign(graph::NodeId node, graph::SccId scc) { labels_[node] = scc; }

  bool Contains(graph::NodeId node) const { return labels_.count(node) > 0; }
  graph::SccId LabelOf(graph::NodeId node) const;

  std::size_t num_nodes() const { return labels_.size(); }
  std::size_t num_sccs() const;

  // Size of each component, keyed by label.
  std::unordered_map<graph::SccId, std::uint64_t> ComponentSizes() const;

  // Sorted (descending) component sizes — convenient for examples.
  std::vector<std::uint64_t> SortedComponentSizes() const;

  // Size of the largest SCC.
  std::uint64_t LargestComponent() const;

  const std::unordered_map<graph::NodeId, graph::SccId>& labels() const {
    return labels_;
  }

 private:
  std::unordered_map<graph::NodeId, graph::SccId> labels_;
};

// True iff the two assignments induce the same partition of the same node
// set (labels themselves may differ — every algorithm allocates its own).
bool SamePartition(const SccResult& a, const SccResult& b);

// Human-readable first difference, for test failure messages.
std::string ExplainPartitionDifference(const SccResult& a, const SccResult& b);

}  // namespace extscc::scc

#endif  // EXTSCC_SCC_SCC_RESULT_H_
