// BR-tree semi-external SCC — the spanning-tree algorithm family of
// Zhang et al. [26] (SIGMOD'13, "1PB-SCC"), the base case the paper
// actually plugs into Ext-SCC.
//
// The algorithm keeps one spanning tree of G in memory (O(|V|) words: a
// parent pointer, a depth, and a union-find cell per node) rooted at a
// virtual node, and repeats sequential scans of the edge file. For each
// edge (u, v) between distinct partial-SCC representatives it restores
// the tree invariant "every edge points strictly downward in depth":
//
//   * v is an ancestor of u     -> the tree path v .. u plus (u, v) is a
//     real directed cycle (every parent link was created from a real
//     edge), so the whole path is contracted into one union-find group —
//     the paper's "each partial SCC can be contracted into one node".
//   * depth(v) <= depth(u)      -> re-hang v below u (parent(v) = u,
//     depth(v) = depth(u) + 1). Depths only grow, so the pass fixpoint
//     is well defined.
//
// At the fixpoint every surviving edge goes strictly downward, so no
// directed cycle can remain between representatives: each union-find
// group is exactly one SCC (groups of size one are singleton SCCs).
//
// Like SemiExternalScc (the colouring backend) this honours the Semi-SCC
// contract Ext-SCC relies on — c·|V| bytes of memory plus O(1) blocks,
// edge access by sequential scans only — so the two backends are
// interchangeable under ExtSccOptions::semi_backend.
#ifndef EXTSCC_SCC_BR_TREE_SCC_H_
#define EXTSCC_SCC_BR_TREE_SCC_H_

#include <cstdint>
#include <string>

#include "graph/disk_graph.h"
#include "graph/graph_types.h"
#include "io/io_context.h"
#include "scc/semi_external_scc.h"

namespace extscc::scc {

struct BrTreeStats {
  std::uint64_t passes = 0;        // sequential scans until fixpoint
  std::uint64_t contractions = 0;  // tree-path contractions (partial SCCs)
  std::uint64_t rehangs = 0;       // parent re-assignments
  std::uint64_t num_sccs = 0;
};

class BrTreeScc {
 public:
  // Per-node in-memory state: union-find cell + tree parent + depth +
  // label. Matches SemiExternalScc::kBytesPerNode so the Ext-SCC stop
  // condition (and hence every bench's iteration structure) is identical
  // whichever backend is selected.
  static constexpr std::uint64_t kBytesPerNode = 16;

  static bool Fits(std::uint64_t num_nodes, const io::MemoryBudget& memory);

  // Computes all SCCs of `g`, allocating labels from *next_scc_id, and
  // writes the (node, scc) file sorted by node id to `scc_output`.
  // CHECK-fails if !Fits(...) — see SemiExternalScc::Run.
  static BrTreeStats Run(io::IoContext* context, const graph::DiskGraph& g,
                         const std::string& scc_output,
                         graph::SccId* next_scc_id);
};

// ---- backend selection -----------------------------------------------

// Which semi-external algorithm Ext-SCC uses once the node set fits.
enum class SemiSccBackend {
  kColoring,  // forward-backward colouring (SemiExternalScc)
  kBrTree,    // spanning-tree contraction (BrTreeScc), as in the paper
};

const char* SemiSccBackendName(SemiSccBackend backend);

// Stop-condition probe for the selected backend (both charge the same
// bytes/node by construction; asserted in tests).
bool SemiSccFits(SemiSccBackend backend, std::uint64_t num_nodes,
                 const io::MemoryBudget& memory);

// Runs the selected backend, normalizing its stats into SemiSccStats
// (rounds <- colour rounds / BR passes, trimmed <- trims / contractions).
SemiSccStats RunSemiScc(SemiSccBackend backend, io::IoContext* context,
                        const graph::DiskGraph& g,
                        const std::string& scc_output,
                        graph::SccId* next_scc_id);

}  // namespace extscc::scc

#endif  // EXTSCC_SCC_BR_TREE_SCC_H_
