// Semi-SCC: semi-external SCC computation — all nodes in memory
// (O(|V|) words), edges streamed from disk with sequential scans only.
//
// The paper plugs in 1PB-SCC [26] (SIGMOD'13) here. This library
// substitutes a forward-backward colouring algorithm (Orzan-style) with
// iterative trimming, which honours the identical contract Ext-SCC relies
// on: memory c·|V| (c = kBytesPerNode) plus O(1) blocks, and edge-file
// access exclusively via sequential scans. See DESIGN.md §5 for why the
// substitution preserves the paper's measured behaviour.
//
// Algorithm sketch (each step is a fixpoint of sequential edge scans):
//   1. Trim: repeatedly give nodes with zero live in- or out-degree their
//      own singleton SCC (they cannot lie on any cycle).
//   2. Colour: propagate colour(v) = max id over v's live ancestors
//      (including v). Fixpoint roots r (colour(r) = r) have no larger
//      ancestor; every node on a cycle through r holds colour r exactly.
//   3. Mark: within each colour class, propagate backward reachability to
//      the root; the marked set of class r is exactly SCC(r).
//   4. Retire all marked nodes, repeat from 1 until no node is live.
#ifndef EXTSCC_SCC_SEMI_EXTERNAL_SCC_H_
#define EXTSCC_SCC_SEMI_EXTERNAL_SCC_H_

#include <cstdint>
#include <string>

#include "graph/disk_graph.h"
#include "graph/graph_types.h"
#include "io/io_context.h"

namespace extscc::scc {

struct SemiSccStats {
  std::uint64_t rounds = 0;       // outer colour/mark rounds
  std::uint64_t edge_scans = 0;   // sequential passes over the edge file
  std::uint64_t trimmed = 0;      // nodes retired by trimming
  std::uint64_t num_sccs = 0;
};

class SemiExternalScc {
 public:
  // Charged per node for the stop condition c·|V| <= M: colour + label +
  // id + flags. (The paper charges 8 bytes/node for 1PB-SCC; our constant
  // only shifts the contraction stop threshold, not the algorithm.)
  static constexpr std::uint64_t kBytesPerNode = 16;

  // True iff a graph with `num_nodes` nodes may be solved semi-externally
  // under `memory` — the Ext-SCC driver's stop condition (Alg. 2 line 2).
  static bool Fits(std::uint64_t num_nodes, const io::MemoryBudget& memory);

  // Computes all SCCs of `g`, appending labels from *next_scc_id, and
  // writes the (node, scc) file sorted by node id to `scc_output`.
  // CHECK-fails if !Fits(g.num_nodes, ...): calling this beyond the
  // budget is a driver bug, the exact situation Ext-SCC exists to avoid.
  static SemiSccStats Run(io::IoContext* context, const graph::DiskGraph& g,
                          const std::string& scc_output,
                          graph::SccId* next_scc_id);
};

}  // namespace extscc::scc

#endif  // EXTSCC_SCC_SEMI_EXTERNAL_SCC_H_
