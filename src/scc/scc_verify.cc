#include "scc/scc_verify.h"

#include "graph/digraph.h"
#include "graph/scc_file.h"
#include "io/record_stream.h"
#include "scc/tarjan.h"

namespace extscc::scc {

SccResult OraclePartition(io::IoContext* context, const graph::DiskGraph& g) {
  const auto nodes = io::ReadAllRecords<graph::NodeId>(context, g.node_path);
  const auto edges = io::ReadAllRecords<graph::Edge>(context, g.edge_path);
  graph::Digraph digraph(nodes, edges);
  return TarjanScc(digraph);
}

SccResult LoadSccResult(io::IoContext* context, const std::string& scc_path) {
  return SccResult(graph::ReadSccFile(context, scc_path));
}

bool VerifySccFile(io::IoContext* context, const graph::DiskGraph& g,
                   const std::string& scc_path, std::string* explanation) {
  const SccResult oracle = OraclePartition(context, g);
  const SccResult actual = LoadSccResult(context, scc_path);
  if (SamePartition(oracle, actual)) return true;
  if (explanation != nullptr) {
    *explanation = ExplainPartitionDifference(oracle, actual);
  }
  return false;
}

}  // namespace extscc::scc
