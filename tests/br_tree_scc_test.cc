#include "scc/br_tree_scc.h"

#include <gtest/gtest.h>

#include <tuple>
#include <vector>

#include "gen/classic_graphs.h"
#include "graph/disk_graph.h"
#include "io/record_stream.h"
#include "scc/scc_verify.h"
#include "scc/semi_external_scc.h"
#include "test_util.h"

namespace extscc {
namespace {

using graph::Edge;
using scc::BrTreeScc;
using scc::BrTreeStats;
using scc::SemiSccBackend;
using testing::MakeTestContext;

BrTreeStats RunAndVerify(const std::vector<Edge>& edges,
                         const std::vector<graph::NodeId>& extra_nodes = {}) {
  auto ctx = MakeTestContext();
  const auto g = graph::MakeDiskGraph(ctx.get(), edges, extra_nodes);
  const std::string out = ctx->NewTempPath("scc");
  graph::SccId next = 0;
  const BrTreeStats stats = BrTreeScc::Run(ctx.get(), g, out, &next);
  EXPECT_EQ(stats.num_sccs, next);
  testing::ExpectSccFileMatchesOracle(ctx.get(), g, out, "BR-tree");
  return stats;
}

TEST(BrTreeSccTest, EmptyGraph) {
  auto ctx = MakeTestContext();
  const auto g = graph::MakeDiskGraph(ctx.get(), {});
  const std::string out = ctx->NewTempPath("scc");
  graph::SccId next = 0;
  const auto stats = BrTreeScc::Run(ctx.get(), g, out, &next);
  EXPECT_EQ(stats.num_sccs, 0u);
  EXPECT_EQ(io::NumRecordsInFile<graph::SccEntry>(ctx.get(), out), 0u);
}

TEST(BrTreeSccTest, IsolatedNodesOnly) {
  const auto stats = RunAndVerify({}, {3, 7, 11});
  EXPECT_EQ(stats.num_sccs, 3u);
  EXPECT_EQ(stats.contractions, 0u);
}

TEST(BrTreeSccTest, Fig1) {
  // Paper Fig. 1: 13 nodes, SCC1 = {b..g} (6 nodes), SCC2 = {i,j,k,l},
  // plus singletons a, h, m.
  const auto stats = RunAndVerify(gen::Fig1Edges());
  EXPECT_EQ(stats.num_sccs, 5u);
}

TEST(BrTreeSccTest, PathHasNoContractions) {
  const auto stats = RunAndVerify(gen::PathEdges(50));
  EXPECT_EQ(stats.num_sccs, 50u);
  EXPECT_EQ(stats.contractions, 0u) << "a path has no cycles to contract";
}

TEST(BrTreeSccTest, CycleIsOneScc) {
  const auto stats = RunAndVerify(gen::CycleEdges(64));
  EXPECT_EQ(stats.num_sccs, 1u);
  EXPECT_GE(stats.contractions, 1u);
}

TEST(BrTreeSccTest, TwoCycleContractsOnSecondEdge) {
  const auto stats = RunAndVerify({{1, 2}, {2, 1}});
  EXPECT_EQ(stats.num_sccs, 1u);
  EXPECT_EQ(stats.contractions, 1u);
}

TEST(BrTreeSccTest, SelfLoopsAndParallelEdges) {
  RunAndVerify({{1, 1}, {2, 3}, {3, 2}, {2, 3}, {4, 4}, {4, 5}});
}

TEST(BrTreeSccTest, CycleChains) {
  RunAndVerify(gen::CycleChainEdges(6, 5));
}

TEST(BrTreeSccTest, ConvergesInFewPassesOnRandomGraphs) {
  auto ctx = MakeTestContext();
  const auto g = graph::MakeDiskGraph(
      ctx.get(), gen::RandomDigraphEdges(500, 2500, 7));
  const std::string out = ctx->NewTempPath("scc");
  graph::SccId next = 0;
  const auto stats = BrTreeScc::Run(ctx.get(), g, out, &next);
  // The fixpoint needs one clean pass to detect; anything near the
  // safety valve (4n) would make the backend useless in practice.
  EXPECT_LE(stats.passes, 50u);
}

TEST(BrTreeSccTest, LabelsStartAtProvidedCounter) {
  auto ctx = MakeTestContext();
  const auto g = graph::MakeDiskGraph(ctx.get(), gen::CycleEdges(3));
  const std::string out = ctx->NewTempPath("scc");
  graph::SccId next = 17;
  BrTreeScc::Run(ctx.get(), g, out, &next);
  EXPECT_EQ(next, 18u);
  for (const auto& e : io::ReadAllRecords<graph::SccEntry>(ctx.get(), out)) {
    EXPECT_EQ(e.scc, 17u);
  }
}

TEST(BrTreeSccTest, OutputSortedByNode) {
  auto ctx = MakeTestContext();
  const auto g = graph::MakeDiskGraph(
      ctx.get(), gen::RandomDigraphEdges(200, 600, 3));
  const std::string out = ctx->NewTempPath("scc");
  graph::SccId next = 0;
  BrTreeScc::Run(ctx.get(), g, out, &next);
  const auto entries = io::ReadAllRecords<graph::SccEntry>(ctx.get(), out);
  for (std::size_t i = 1; i < entries.size(); ++i) {
    EXPECT_LT(entries[i - 1].node, entries[i].node);
  }
}

TEST(BrTreeSccTest, MemoryContractMatchesColoringBackend) {
  // The Ext-SCC stop condition must be backend-agnostic (DESIGN.md):
  // both backends charge the same bytes per node.
  EXPECT_EQ(BrTreeScc::kBytesPerNode, scc::SemiExternalScc::kBytesPerNode);
  io::MemoryBudget small(BrTreeScc::kBytesPerNode * 10);
  EXPECT_TRUE(BrTreeScc::Fits(10, small));
  EXPECT_FALSE(BrTreeScc::Fits(11, small));
}

TEST(BrTreeSccDeathTest, RefusesOverBudgetNodeSets) {
  auto ctx = MakeTestContext(/*memory_bytes=*/16 * 1024, /*block_size=*/4096);
  const auto g = graph::MakeDiskGraph(ctx.get(), gen::CycleEdges(2000));
  const std::string out = ctx->NewTempPath("scc");
  graph::SccId next = 0;
  EXPECT_DEATH(BrTreeScc::Run(ctx.get(), g, out, &next), "contraction phase");
}

// ---- dispatch ------------------------------------------------------------

TEST(SemiSccBackendTest, Names) {
  EXPECT_STREQ(scc::SemiSccBackendName(SemiSccBackend::kColoring), "coloring");
  EXPECT_STREQ(scc::SemiSccBackendName(SemiSccBackend::kBrTree), "br-tree");
}

TEST(SemiSccBackendTest, DispatchRunsSelectedBackend) {
  for (const auto backend :
       {SemiSccBackend::kColoring, SemiSccBackend::kBrTree}) {
    auto ctx = MakeTestContext();
    const auto g = graph::MakeDiskGraph(ctx.get(), gen::Fig1Edges());
    const std::string out = ctx->NewTempPath("scc");
    graph::SccId next = 0;
    const auto stats = scc::RunSemiScc(backend, ctx.get(), g, out, &next);
    EXPECT_EQ(stats.num_sccs, 5u) << scc::SemiSccBackendName(backend);
    testing::ExpectSccFileMatchesOracle(ctx.get(), g, out,
                                        scc::SemiSccBackendName(backend));
  }
}

// ---- property sweep: BR-tree == coloring == oracle on random graphs ----

class BrTreeSweep
    : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(BrTreeSweep, MatchesOracle) {
  const auto [nodes, edges, seed] = GetParam();
  RunAndVerify(gen::RandomDigraphEdges(nodes, edges, seed,
                                       /*allow_degenerate=*/seed % 2 == 0));
}

INSTANTIATE_TEST_SUITE_P(
    RandomGraphs, BrTreeSweep,
    ::testing::Combine(::testing::Values(20, 100, 400),
                       ::testing::Values(30, 200, 1200),
                       ::testing::Values(1, 2, 3)));

}  // namespace
}  // namespace extscc
