#include <gtest/gtest.h>

#include <fstream>
#include <vector>

#include "gen/classic_graphs.h"
#include "graph/digraph.h"
#include "graph/disk_graph.h"
#include "graph/edge_file.h"
#include "graph/graph_builder.h"
#include "graph/graph_io.h"
#include "graph/node_file.h"
#include "graph/scc_file.h"
#include "io/record_stream.h"
#include "test_util.h"

namespace extscc {
namespace {

using graph::Edge;
using graph::NodeId;
using graph::SccEntry;
using testing::MakeTestContext;

// ---------------- edge_file ----------------------------------------------

TEST(EdgeFileTest, SortAndCount) {
  auto ctx = MakeTestContext();
  const std::string raw = ctx->NewTempPath("raw");
  io::WriteAllRecords<Edge>(ctx.get(), raw, {{2, 1}, {1, 3}, {1, 2}, {2, 1}});
  EXPECT_EQ(graph::CountEdges(ctx.get(), raw), 4u);

  const std::string by_src = ctx->NewTempPath("bysrc");
  graph::SortEdgesBySrc(ctx.get(), raw, by_src);
  EXPECT_EQ(io::ReadAllRecords<Edge>(ctx.get(), by_src),
            (std::vector<Edge>{{1, 2}, {1, 3}, {2, 1}, {2, 1}}));

  const std::string dedup = ctx->NewTempPath("dedup");
  graph::SortEdgesBySrc(ctx.get(), raw, dedup, /*dedup=*/true);
  EXPECT_EQ(io::ReadAllRecords<Edge>(ctx.get(), dedup),
            (std::vector<Edge>{{1, 2}, {1, 3}, {2, 1}}));
}

TEST(EdgeFileTest, ReverseAndConcat) {
  auto ctx = MakeTestContext();
  const std::string a = ctx->NewTempPath("a");
  const std::string b = ctx->NewTempPath("b");
  io::WriteAllRecords<Edge>(ctx.get(), a, {{1, 2}, {3, 4}});
  io::WriteAllRecords<Edge>(ctx.get(), b, {{5, 6}});

  const std::string reversed = ctx->NewTempPath("rev");
  graph::ReverseEdges(ctx.get(), a, reversed);
  EXPECT_EQ(io::ReadAllRecords<Edge>(ctx.get(), reversed),
            (std::vector<Edge>{{2, 1}, {4, 3}}));

  const std::string both = ctx->NewTempPath("cat");
  graph::ConcatEdges(ctx.get(), a, b, both);
  EXPECT_EQ(io::ReadAllRecords<Edge>(ctx.get(), both),
            (std::vector<Edge>{{1, 2}, {3, 4}, {5, 6}}));
}

// ---------------- node_file ----------------------------------------------

TEST(NodeFileTest, SortDedupAndCanonicalCheck) {
  auto ctx = MakeTestContext();
  const std::string raw = ctx->NewTempPath("raw");
  io::WriteAllRecords<NodeId>(ctx.get(), raw, {5, 1, 5, 3, 1});
  const std::string canonical = ctx->NewTempPath("canon");
  graph::SortNodeFile(ctx.get(), raw, canonical);
  EXPECT_EQ(io::ReadAllRecords<NodeId>(ctx.get(), canonical),
            (std::vector<NodeId>{1, 3, 5}));
  EXPECT_TRUE(graph::IsNodeFileCanonical(ctx.get(), canonical));
  EXPECT_FALSE(graph::IsNodeFileCanonical(ctx.get(), raw));
  EXPECT_EQ(graph::CountNodes(ctx.get(), canonical), 3u);
}

TEST(NodeFileTest, Difference) {
  auto ctx = MakeTestContext();
  const std::string a = ctx->NewTempPath("a");
  const std::string b = ctx->NewTempPath("b");
  const std::string out = ctx->NewTempPath("out");
  io::WriteAllRecords<NodeId>(ctx.get(), a, {1, 2, 3, 5, 8});
  io::WriteAllRecords<NodeId>(ctx.get(), b, {2, 5, 9});
  EXPECT_EQ(graph::NodeFileDifference(ctx.get(), a, b, out), 3u);
  EXPECT_EQ(io::ReadAllRecords<NodeId>(ctx.get(), out),
            (std::vector<NodeId>{1, 3, 8}));
}

TEST(NodeFileTest, DifferenceWithEmptySides) {
  auto ctx = MakeTestContext();
  const std::string a = ctx->NewTempPath("a");
  const std::string empty = ctx->NewTempPath("b");
  const std::string out = ctx->NewTempPath("out");
  io::WriteAllRecords<NodeId>(ctx.get(), a, {1, 2});
  io::WriteAllRecords<NodeId>(ctx.get(), empty, {});
  EXPECT_EQ(graph::NodeFileDifference(ctx.get(), a, empty, out), 2u);
  const std::string out2 = ctx->NewTempPath("out2");
  EXPECT_EQ(graph::NodeFileDifference(ctx.get(), empty, a, out2), 0u);
}

TEST(NodeFileTest, NodesFromEdges) {
  auto ctx = MakeTestContext();
  const std::string edges = ctx->NewTempPath("e");
  io::WriteAllRecords<Edge>(ctx.get(), edges, {{4, 2}, {2, 4}, {9, 9}});
  const std::string nodes = ctx->NewTempPath("n");
  graph::NodesFromEdges(ctx.get(), edges, nodes);
  EXPECT_EQ(io::ReadAllRecords<NodeId>(ctx.get(), nodes),
            (std::vector<NodeId>{2, 4, 9}));
}

// ---------------- scc_file -----------------------------------------------

TEST(SccFileTest, SortAndMerge) {
  auto ctx = MakeTestContext();
  const std::string raw = ctx->NewTempPath("raw");
  io::WriteAllRecords<SccEntry>(ctx.get(), raw, {{3, 0}, {1, 1}, {2, 0}});
  const std::string sorted = ctx->NewTempPath("sorted");
  graph::SortSccFileByNode(ctx.get(), raw, sorted);
  EXPECT_EQ(io::ReadAllRecords<SccEntry>(ctx.get(), sorted),
            (std::vector<SccEntry>{{1, 1}, {2, 0}, {3, 0}}));

  const std::string other = ctx->NewTempPath("other");
  io::WriteAllRecords<SccEntry>(ctx.get(), other, {{0, 5}, {4, 6}});
  const std::string merged = ctx->NewTempPath("merged");
  graph::MergeSccFiles(ctx.get(), sorted, other, merged);
  EXPECT_EQ(io::ReadAllRecords<SccEntry>(ctx.get(), merged),
            (std::vector<SccEntry>{{0, 5}, {1, 1}, {2, 0}, {3, 0}, {4, 6}}));

  const auto map = graph::ReadSccFile(ctx.get(), merged);
  EXPECT_EQ(map.size(), 5u);
  EXPECT_EQ(map.at(4), 6u);
}

TEST(SccFileDeathTest, MergeRejectsOverlappingNodeSets) {
  auto ctx = MakeTestContext();
  const std::string a = ctx->NewTempPath("a");
  const std::string b = ctx->NewTempPath("b");
  io::WriteAllRecords<SccEntry>(ctx.get(), a, {{1, 0}});
  io::WriteAllRecords<SccEntry>(ctx.get(), b, {{1, 9}});
  const std::string out = ctx->NewTempPath("out");
  EXPECT_DEATH(graph::MergeSccFiles(ctx.get(), a, b, out), "disjoint");
}

// ---------------- Digraph ------------------------------------------------

TEST(DigraphTest, CsrStructure) {
  const std::vector<Edge> edges{{10, 20}, {10, 30}, {20, 10}};
  graph::Digraph g(edges);
  ASSERT_EQ(g.num_nodes(), 3u);
  EXPECT_EQ(g.num_edges(), 3u);
  const std::size_t i10 = g.index_of(10);
  const std::size_t i20 = g.index_of(20);
  const std::size_t i30 = g.index_of(30);
  EXPECT_EQ(g.out_degree(i10), 2u);
  EXPECT_EQ(g.in_degree(i10), 1u);
  EXPECT_EQ(g.out_degree(i30), 0u);
  EXPECT_EQ(g.in_degree(i30), 1u);
  EXPECT_EQ(g.out_neighbors(i20).size(), 1u);
  EXPECT_EQ(g.out_neighbors(i20)[0], i10);
  EXPECT_EQ(g.index_of(999), g.num_nodes()) << "missing id sentinel";
  EXPECT_EQ(g.id_of(i10), 10u);
}

TEST(DigraphTest, IsolatedNodesViaExplicitList) {
  graph::Digraph g({42, 7}, {{1, 2}});
  EXPECT_EQ(g.num_nodes(), 4u);  // 1, 2, 7, 42
  EXPECT_EQ(g.out_degree(g.index_of(42)), 0u);
}

// ---------------- DiskGraph / builder / io -------------------------------

TEST(DiskGraphTest, MakeFromVectors) {
  auto ctx = MakeTestContext();
  const auto g = graph::MakeDiskGraph(ctx.get(), {{1, 2}, {2, 3}}, {99});
  EXPECT_EQ(g.num_nodes, 4u);
  EXPECT_EQ(g.num_edges, 2u);
  EXPECT_TRUE(graph::IsNodeFileCanonical(ctx.get(), g.node_path));
  EXPECT_NE(g.Describe().find("|V|=4"), std::string::npos);
}

TEST(GraphBuilderTest, StreamingBuild) {
  auto ctx = MakeTestContext();
  graph::GraphBuilder builder(ctx.get());
  for (NodeId v = 0; v < 1000; ++v) {
    builder.AddEdge(v, (v + 1) % 1000);
  }
  builder.AddNode(5000);
  const auto g = builder.Finish();
  EXPECT_EQ(g.num_edges, 1000u);
  EXPECT_EQ(g.num_nodes, 1001u);
}

TEST(GraphIoTest, TextRoundTrip) {
  auto ctx = MakeTestContext();
  // Text edge lists are user-facing files: real filesystem paths, not
  // scratch paths (which are virtual names under the mem/striped test
  // matrices).
  const std::string text_path = ::testing::TempDir() + "/extscc_graph.txt";
  {
    std::ofstream out(text_path);
    out << "# comment line\n";
    out << "1 2\n2 3\n3 1\n";
  }
  auto loaded = graph::LoadTextEdgeList(ctx.get(), text_path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded.value().num_edges, 3u);
  EXPECT_EQ(loaded.value().num_nodes, 3u);

  const std::string out_path = ::testing::TempDir() + "/extscc_out.txt";
  ASSERT_TRUE(
      graph::SaveTextEdgeList(ctx.get(), loaded.value(), out_path).ok());
  auto reloaded = graph::LoadTextEdgeList(ctx.get(), out_path);
  ASSERT_TRUE(reloaded.ok());
  EXPECT_EQ(reloaded.value().num_edges, 3u);
}

TEST(GraphIoTest, MissingFileIsNotFound) {
  auto ctx = MakeTestContext();
  const auto result =
      graph::LoadTextEdgeList(ctx.get(), "/nonexistent/really/not.txt");
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), util::StatusCode::kNotFound);
}

TEST(GraphIoTest, MalformedLineIsCorruption) {
  auto ctx = MakeTestContext();
  const std::string path = ::testing::TempDir() + "/extscc_bad.txt";
  {
    std::ofstream out(path);
    out << "1 2\nnot an edge\n";
  }
  const auto result = graph::LoadTextEdgeList(ctx.get(), path);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), util::StatusCode::kCorruption);
  EXPECT_NE(result.status().message().find("line 2"), std::string::npos);
}

TEST(GraphIoTest, BinaryEdgeFileValidation) {
  auto ctx = MakeTestContext();
  const std::string path = ctx->NewTempPath("edges.bin");
  io::WriteAllRecords<Edge>(ctx.get(), path, {{1, 2}});
  auto ok = graph::OpenBinaryEdgeFile(ctx.get(), path);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(ok.value().num_edges, 1u);

  // Truncated file: not a whole number of records.
  const std::string bad = ::testing::TempDir() + "/extscc_bad.bin";
  {
    std::ofstream out(bad, std::ios::binary);
    out << "xyz";
  }
  auto corrupt = graph::OpenBinaryEdgeFile(ctx.get(), bad);
  ASSERT_FALSE(corrupt.ok());
  EXPECT_EQ(corrupt.status().code(), util::StatusCode::kCorruption);

  auto missing = graph::OpenBinaryEdgeFile(ctx.get(), "/no/such/file.bin");
  ASSERT_FALSE(missing.ok());
  EXPECT_EQ(missing.status().code(), util::StatusCode::kNotFound);
}

}  // namespace
}  // namespace extscc
