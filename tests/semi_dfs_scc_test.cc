#include "baseline/semi_dfs_scc.h"

#include <gtest/gtest.h>

#include <tuple>
#include <vector>

#include "gen/classic_graphs.h"
#include "graph/disk_graph.h"
#include "io/record_stream.h"
#include "test_util.h"

namespace extscc {
namespace {

using baseline::SemiDfsScc;
using baseline::SemiDfsSccStats;
using graph::Edge;
using testing::MakeTestContext;

SemiDfsSccStats RunAndVerify(
    const std::vector<Edge>& edges,
    const std::vector<graph::NodeId>& extra_nodes = {}) {
  auto ctx = MakeTestContext();
  const auto g = graph::MakeDiskGraph(ctx.get(), edges, extra_nodes);
  const std::string out = ctx->NewTempPath("scc");
  auto result = SemiDfsScc::Run(ctx.get(), g, out);
  EXPECT_TRUE(result.ok()) << result.status().ToString();
  testing::ExpectSccFileMatchesOracle(ctx.get(), g, out, "Semi-DFS-SCC");
  return result.value();
}

TEST(SemiDfsSccTest, EmptyGraph) {
  auto ctx = MakeTestContext();
  const auto g = graph::MakeDiskGraph(ctx.get(), {});
  const std::string out = ctx->NewTempPath("scc");
  auto result = SemiDfsScc::Run(ctx.get(), g, out);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value().num_sccs, 0u);
  EXPECT_EQ(io::NumRecordsInFile<graph::SccEntry>(ctx.get(), out), 0u);
}

TEST(SemiDfsSccTest, IsolatedNodesOnly) {
  const auto stats = RunAndVerify({}, {2, 4, 6});
  EXPECT_EQ(stats.num_sccs, 3u);
  EXPECT_EQ(stats.rehangs, 0u);
}

TEST(SemiDfsSccTest, Fig1) {
  // Paper Fig. 1 / Example 3.1: the DFS-based algorithm finds 5 SCCs:
  // {a}, {b..g}, {h}, {i,j,k,l}, {m}.
  const auto stats = RunAndVerify(gen::Fig1Edges());
  EXPECT_EQ(stats.num_sccs, 5u);
}

TEST(SemiDfsSccTest, PathNeedsNoRepairWhenIdsFollowEdges) {
  // Path 0->1->...->k: preorder by id already realizes a DFS, so the
  // forest converges with zero re-hangs... only if edges agree with id
  // order, which PathEdges guarantees.
  const auto stats = RunAndVerify(gen::PathEdges(40));
  EXPECT_EQ(stats.num_sccs, 40u);
}

TEST(SemiDfsSccTest, CycleIsOneScc) {
  const auto stats = RunAndVerify(gen::CycleEdges(64));
  EXPECT_EQ(stats.num_sccs, 1u);
}

TEST(SemiDfsSccTest, SelfLoopsAndParallelEdges) {
  RunAndVerify({{1, 1}, {2, 3}, {3, 2}, {2, 3}, {4, 4}, {4, 5}});
}

TEST(SemiDfsSccTest, CycleChains) { RunAndVerify(gen::CycleChainEdges(6, 5)); }

TEST(SemiDfsSccTest, ConvergesInFewPasses) {
  const auto stats = RunAndVerify(gen::RandomDigraphEdges(400, 2000, 9));
  // The repair heuristic must be far from its safety cap to be usable.
  EXPECT_LE(stats.dfs_passes, 64u);
  EXPECT_GE(stats.dfs_passes, 1u);
  EXPECT_GE(stats.propagate_passes, 1u);
}

TEST(SemiDfsSccTest, OutputSortedByNode) {
  auto ctx = MakeTestContext();
  const auto g =
      graph::MakeDiskGraph(ctx.get(), gen::RandomDigraphEdges(200, 600, 3));
  const std::string out = ctx->NewTempPath("scc");
  ASSERT_TRUE(SemiDfsScc::Run(ctx.get(), g, out).ok());
  const auto entries = io::ReadAllRecords<graph::SccEntry>(ctx.get(), out);
  ASSERT_EQ(entries.size(), g.num_nodes);
  for (std::size_t i = 1; i < entries.size(); ++i) {
    EXPECT_LT(entries[i - 1].node, entries[i].node);
  }
}

TEST(SemiDfsSccTest, IoBudgetCensoring) {
  auto ctx = MakeTestContext();
  ctx->set_io_budget(1);  // trips on the first pass
  const auto g =
      graph::MakeDiskGraph(ctx.get(), gen::RandomDigraphEdges(300, 1500, 5));
  const std::string out = ctx->NewTempPath("scc");
  const auto result = SemiDfsScc::Run(ctx.get(), g, out);
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), util::StatusCode::kResourceExhausted)
      << result.status().ToString();
}

TEST(SemiDfsSccDeathTest, RefusesOverBudgetNodeSets) {
  auto ctx = MakeTestContext(/*memory_bytes=*/16 * 1024, /*block_size=*/4096);
  // 16 KB / 24 B per node ~ 682 nodes max; build 2000.
  const auto g = graph::MakeDiskGraph(ctx.get(), gen::CycleEdges(2000));
  const std::string out = ctx->NewTempPath("scc");
  EXPECT_DEATH(SemiDfsScc::Run(ctx.get(), g, out).ok(), "semi-external");
}

// Property sweep across random graphs, including degenerate families.
class SemiDfsSweep
    : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(SemiDfsSweep, MatchesOracle) {
  const auto [nodes, edges, seed] = GetParam();
  RunAndVerify(gen::RandomDigraphEdges(nodes, edges, seed,
                                       /*allow_degenerate=*/seed % 2 == 0));
}

INSTANTIATE_TEST_SUITE_P(
    RandomGraphs, SemiDfsSweep,
    ::testing::Combine(::testing::Values(20, 100, 400),
                       ::testing::Values(30, 200, 1200),
                       ::testing::Values(1, 2, 3)));

}  // namespace
}  // namespace extscc
