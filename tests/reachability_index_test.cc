#include "app/reachability_index.h"

#include <gtest/gtest.h>

#include <tuple>
#include <vector>

#include "core/ext_scc.h"
#include "gen/classic_graphs.h"
#include "graph/digraph.h"
#include "graph/disk_graph.h"
#include "io/record_stream.h"
#include "test_util.h"
#include "util/random.h"

namespace extscc {
namespace {

using app::ReachabilityIndex;
using app::ReachabilityIndexOptions;
using graph::Edge;
using graph::NodeId;
using testing::MakeTestContext;

using testing::OracleReach;  // shared BFS oracle (tests/test_util.h)

// Builds the index via Ext-SCC labels and cross-checks every node pair
// against the oracle.
void BuildAndVerifyAllPairs(const std::vector<Edge>& edges,
                            const std::vector<NodeId>& extra_nodes = {},
                            std::uint32_t num_labels = 3) {
  auto ctx = MakeTestContext();
  const auto g = graph::MakeDiskGraph(ctx.get(), edges, extra_nodes);
  const std::string scc_path = ctx->NewTempPath("scc");
  auto scc = core::RunExtScc(ctx.get(), g, scc_path,
                             core::ExtSccOptions::Optimized());
  ASSERT_TRUE(scc.ok()) << scc.status().ToString();

  ReachabilityIndexOptions options;
  options.num_labels = num_labels;
  auto built =
      ReachabilityIndex::Build(ctx.get(), g, scc_path, options);
  ASSERT_TRUE(built.ok()) << built.status().ToString();
  const ReachabilityIndex& index = built.value();

  const auto nodes = io::ReadAllRecords<NodeId>(ctx.get(), g.node_path);
  graph::Digraph oracle_graph(nodes, edges);
  for (const NodeId u : nodes) {
    for (const NodeId v : nodes) {
      EXPECT_EQ(index.Reachable(u, v), OracleReach(oracle_graph, u, v))
          << u << " -> " << v;
    }
  }
}

TEST(ReachabilityIndexTest, Fig1AllPairs) {
  BuildAndVerifyAllPairs(gen::Fig1Edges());
}

TEST(ReachabilityIndexTest, PathAllPairs) {
  BuildAndVerifyAllPairs(gen::PathEdges(24));
}

TEST(ReachabilityIndexTest, CycleEverythingReachesEverything) {
  BuildAndVerifyAllPairs(gen::CycleEdges(16));
}

TEST(ReachabilityIndexTest, IsolatedNodesReachOnlyThemselves) {
  BuildAndVerifyAllPairs(gen::PathEdges(4), /*extra_nodes=*/{90, 91});
}

TEST(ReachabilityIndexTest, CycleChainsAllPairs) {
  BuildAndVerifyAllPairs(gen::CycleChainEdges(4, 4));
}

TEST(ReachabilityIndexTest, SingleLabelStillCorrect) {
  BuildAndVerifyAllPairs(gen::RandomDigraphEdges(40, 100, 5),
                         /*extra_nodes=*/{}, /*num_labels=*/1);
}

TEST(ReachabilityIndexTest, ZeroLabelsRejected) {
  auto ctx = MakeTestContext();
  const auto g = graph::MakeDiskGraph(ctx.get(), gen::PathEdges(4));
  const std::string scc_path = ctx->NewTempPath("scc");
  ASSERT_TRUE(core::RunExtScc(ctx.get(), g, scc_path,
                              core::ExtSccOptions::Basic())
                  .ok());
  ReachabilityIndexOptions options;
  options.num_labels = 0;
  auto built = ReachabilityIndex::Build(ctx.get(), g, scc_path, options);
  EXPECT_FALSE(built.ok());
  EXPECT_EQ(built.status().code(), util::StatusCode::kInvalidArgument);
}

TEST(ReachabilityIndexTest, MismatchedLabelFileRejected) {
  auto ctx = MakeTestContext();
  const auto g = graph::MakeDiskGraph(ctx.get(), gen::PathEdges(8));
  // Labels for a *different* (smaller) graph.
  const auto g_small = graph::MakeDiskGraph(ctx.get(), gen::PathEdges(3));
  const std::string scc_path = ctx->NewTempPath("scc");
  ASSERT_TRUE(core::RunExtScc(ctx.get(), g_small, scc_path,
                              core::ExtSccOptions::Basic())
                  .ok());
  auto built = ReachabilityIndex::Build(ctx.get(), g, scc_path, {});
  EXPECT_FALSE(built.ok());
  EXPECT_EQ(built.status().code(), util::StatusCode::kInvalidArgument);
}

TEST(ReachabilityIndexTest, IntervalLabelsRefuteMostNegativeQueries) {
  // On a long path the DAG is a chain; interval containment is exact, so
  // no negative query should ever need the DFS fallback.
  auto ctx = MakeTestContext();
  const auto g = graph::MakeDiskGraph(ctx.get(), gen::PathEdges(64));
  const std::string scc_path = ctx->NewTempPath("scc");
  ASSERT_TRUE(core::RunExtScc(ctx.get(), g, scc_path,
                              core::ExtSccOptions::Basic())
                  .ok());
  auto built = ReachabilityIndex::Build(ctx.get(), g, scc_path, {});
  ASSERT_TRUE(built.ok());
  const auto& index = built.value();
  std::uint64_t negatives = 0;
  for (NodeId u = 0; u < 64; ++u) {
    for (NodeId v = 0; v < u; ++v) {
      ASSERT_FALSE(index.Reachable(u, v));  // path edges point forward
      ++negatives;
    }
  }
  EXPECT_EQ(index.stats().queries, negatives);
  EXPECT_EQ(index.stats().interval_refutations, negatives)
      << "a chain's intervals nest exactly; no fallback DFS expected";
  EXPECT_EQ(index.stats().dfs_fallbacks, 0u);
}

TEST(ReachabilityIndexTest, QueryStatsAccumulateAndReset) {
  auto ctx = MakeTestContext();
  const auto g = graph::MakeDiskGraph(ctx.get(), gen::CycleEdges(8));
  const std::string scc_path = ctx->NewTempPath("scc");
  ASSERT_TRUE(core::RunExtScc(ctx.get(), g, scc_path,
                              core::ExtSccOptions::Basic())
                  .ok());
  auto built = ReachabilityIndex::Build(ctx.get(), g, scc_path, {});
  ASSERT_TRUE(built.ok());
  const auto& index = built.value();
  EXPECT_TRUE(index.Reachable(0, 5));
  EXPECT_EQ(index.stats().queries, 1u);
  EXPECT_EQ(index.stats().same_scc_hits, 1u);
  index.ResetQueryStats();
  EXPECT_EQ(index.stats().queries, 0u);
}

TEST(ReachabilityIndexTest, DagStatsMatchCondensation) {
  auto ctx = MakeTestContext();
  // Two 4-cycles joined by one edge: condensation = 2 nodes, 1 edge.
  std::vector<Edge> edges = gen::CycleEdges(4);
  for (const auto& e : gen::CycleEdges(4)) {
    edges.push_back({e.src + 10, e.dst + 10});
  }
  edges.push_back({0, 10});
  const auto g = graph::MakeDiskGraph(ctx.get(), edges);
  const std::string scc_path = ctx->NewTempPath("scc");
  ASSERT_TRUE(core::RunExtScc(ctx.get(), g, scc_path,
                              core::ExtSccOptions::Basic())
                  .ok());
  auto built = ReachabilityIndex::Build(ctx.get(), g, scc_path, {});
  ASSERT_TRUE(built.ok());
  EXPECT_EQ(built.value().stats().dag_nodes, 2u);
  EXPECT_EQ(built.value().stats().dag_edges, 1u);
}

// Property sweep: random graphs, sampled query pairs vs oracle.
class ReachabilitySweep
    : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(ReachabilitySweep, MatchesOracleOnSampledPairs) {
  const auto [nodes, edges, seed] = GetParam();
  const auto edge_list = gen::RandomDigraphEdges(nodes, edges, seed);
  auto ctx = MakeTestContext();
  const auto g = graph::MakeDiskGraph(ctx.get(), edge_list);
  const std::string scc_path = ctx->NewTempPath("scc");
  ASSERT_TRUE(core::RunExtScc(ctx.get(), g, scc_path,
                              core::ExtSccOptions::Optimized())
                  .ok());
  auto built = ReachabilityIndex::Build(ctx.get(), g, scc_path, {});
  ASSERT_TRUE(built.ok());
  const auto& index = built.value();

  const auto node_ids = io::ReadAllRecords<graph::NodeId>(
      ctx.get(), g.node_path);
  graph::Digraph oracle_graph(node_ids, edge_list);
  util::Rng rng(seed * 1000 + 7);
  for (int q = 0; q < 300; ++q) {
    const NodeId u = node_ids[rng.Uniform(node_ids.size())];
    const NodeId v = node_ids[rng.Uniform(node_ids.size())];
    ASSERT_EQ(index.Reachable(u, v), OracleReach(oracle_graph, u, v))
        << u << " -> " << v;
  }
}

INSTANTIATE_TEST_SUITE_P(
    RandomGraphs, ReachabilitySweep,
    ::testing::Combine(::testing::Values(30, 120),
                       ::testing::Values(60, 360),
                       ::testing::Values(1, 2, 3)));

}  // namespace
}  // namespace extscc
