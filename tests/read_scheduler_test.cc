// Equivalence and accounting tests for the device-parallel I/O engine
// (read_scheduler.h, IoContextOptions::io_threads): every sorter entry
// point must produce byte-identical output at io_threads in {1, 2, 4}
// vs the serial engine, per-device IoStats must still sum exactly to
// the aggregate while concurrent merge reads are issued from device
// workers, off-sequence reads must fall back to direct service, and a
// budget too tight for the read-ahead rings must degrade instead of
// deadlock or abort.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "core/ext_scc.h"
#include "extsort/external_sorter.h"
#include "gen/synthetic_generator.h"
#include "graph/graph_types.h"
#include "io/block_file.h"
#include "io/record_stream.h"
#include "test_util.h"
#include "util/random.h"

namespace extscc {
namespace {

using graph::Edge;
using graph::NodeId;

// io_threads is this suite's subject, so the explicit parameter wins
// over EXTSCC_TEST_IO_THREADS; the other env overrides (device model,
// scratch dirs) still reach every context built here.
std::unique_ptr<io::IoContext> MakeContext(
    std::uint64_t memory, std::size_t block, std::size_t io_threads,
    std::size_t num_devices = 1,
    io::PlacementPolicy placement = io::PlacementPolicy::kRoundRobin,
    io::DeviceModel model = io::DeviceModel::kMem) {
  io::IoContextOptions options;
  options.block_size = block;
  options.memory_bytes = memory;
  options.device_model.model = model;
  // Under kMem the scratch_dirs entries only set the device count.
  for (std::size_t i = 0; i < num_devices; ++i) {
    options.scratch_dirs.push_back("dev" + std::to_string(i));
  }
  options.scratch_placement = placement;
  testing::ApplyTestEnvOptions(&options);
  options.io_threads = io_threads;
  return std::make_unique<io::IoContext>(options);
}

std::vector<Edge> RandomEdges(std::size_t n, std::uint64_t seed,
                              std::uint32_t range) {
  util::Rng rng(seed);
  std::vector<Edge> out(n);
  for (auto& e : out) {
    e.src = static_cast<NodeId>(rng.Uniform(range));
    e.dst = static_cast<NodeId>(rng.Uniform(range));
  }
  return out;
}

TEST(ReadSchedulerTest, SequentialReadMatchesDirectAndCountsIdentically) {
  // The scheduler path must return the same bytes AND the same counted
  // I/Os as the direct path for a plain sequential scan, including the
  // partial final block.
  const auto edges = RandomEdges(5'000, 7, 1u << 20);  // 40000 B: 9.77 blocks
  auto scan = [&](std::size_t io_threads) {
    auto ctx = MakeContext(1 << 20, 4096, io_threads);
    const std::string path = ctx->NewTempPath("scan");
    io::WriteAllRecords(ctx.get(), path, edges);
    const auto before = ctx->stats();
    const auto got = io::ReadAllRecords<Edge>(ctx.get(), path);
    const auto delta = ctx->stats() - before;
    return std::make_pair(got, delta);
  };
  const auto [serial, serial_stats] = scan(0);
  const auto [sched, sched_stats] = scan(2);
  ASSERT_EQ(serial.size(), sched.size());
  EXPECT_EQ(0, std::memcmp(serial.data(), sched.data(),
                           serial.size() * sizeof(Edge)));
  EXPECT_EQ(serial_stats.total_reads(), sched_stats.total_reads());
  EXPECT_EQ(serial_stats.sequential_reads, sched_stats.sequential_reads);
  EXPECT_EQ(serial_stats.bytes_read, sched_stats.bytes_read);
}

TEST(ReadSchedulerTest, OffSequenceSeekFallsBackToDirectReads) {
  auto ctx = MakeContext(1 << 20, 4096, 2);
  const std::string path = ctx->NewTempPath("seek");
  const auto edges = RandomEdges(8'192, 11, 1u << 16);  // 16 blocks exactly
  io::WriteAllRecords(ctx.get(), path, edges);

  io::BlockFile file(ctx.get(), path, io::OpenMode::kRead);
  file.StartSequentialPrefetch();
  std::vector<char> buf(4096);
  // Consume two blocks in sequence, then seek: the stream must leave
  // scheduler service and keep returning correct data directly.
  ASSERT_EQ(file.ReadBlock(0, buf.data()), 4096u);
  ASSERT_EQ(file.ReadBlock(1, buf.data()), 4096u);
  ASSERT_EQ(file.ReadBlock(9, buf.data()), 4096u);
  EXPECT_EQ(0, std::memcmp(buf.data(),
                           reinterpret_cast<const char*>(edges.data()) +
                               9 * 4096,
                           4096));
  ASSERT_EQ(file.ReadBlock(3, buf.data()), 4096u);
  EXPECT_EQ(0, std::memcmp(buf.data(),
                           reinterpret_cast<const char*>(edges.data()) +
                               3 * 4096,
                           4096));
  EXPECT_EQ(file.ReadBlock(16, buf.data()), 0u) << "past EOF stays 0";
}

TEST(ReadSchedulerTest, SortFileSerialVsIoThreadsByteIdentical) {
  // Randomized geometry sweep (mirroring run_pipeline_test's): every
  // draw forces multi-run spills, and each io_threads setting must
  // reproduce the serial engine's output file byte for byte — across
  // device counts and both placement policies.
  util::Rng rng(506);
  for (int trial = 0; trial < 6; ++trial) {
    const std::size_t block = 512u << rng.Uniform(3);
    const std::uint64_t memory = (6 + rng.Uniform(26)) * block;
    const std::size_t count = 2'000 + rng.Uniform(40'000);
    const bool dedup = rng.Uniform(2) == 1;
    const std::size_t devices = 1 + rng.Uniform(3);
    const auto placement = rng.Uniform(2) == 1
                               ? io::PlacementPolicy::kSpreadGroup
                               : io::PlacementPolicy::kRoundRobin;
    const auto edges = RandomEdges(count, rng.Next(), 1u << 12);

    auto run = [&](std::size_t io_threads) {
      auto ctx = MakeContext(memory, block, io_threads, devices, placement);
      const std::string in = ctx->NewTempPath("in");
      io::WriteAllRecords(ctx.get(), in, edges);
      const std::string out = ctx->NewTempPath("out");
      extsort::SortFile<Edge, graph::EdgeBySrc>(ctx.get(), in, out,
                                                graph::EdgeBySrc(), dedup);
      return io::ReadAllRecords<Edge>(ctx.get(), out);
    };
    const auto serial = run(0);
    for (const std::size_t threads : {1u, 2u, 4u}) {
      const auto sched = run(threads);
      ASSERT_EQ(serial.size(), sched.size())
          << "trial " << trial << " io_threads " << threads;
      ASSERT_EQ(0, std::memcmp(serial.data(), sched.data(),
                               serial.size() * sizeof(Edge)))
          << "trial " << trial << " io_threads " << threads;
    }
  }
}

TEST(ReadSchedulerTest, SortIntoSerialVsIoThreadsIdenticalSinkStream) {
  const auto edges = RandomEdges(30'000, 99, 1u << 16);
  auto collect = [&](std::size_t io_threads) {
    auto ctx = MakeContext(24 << 10, 1024, io_threads, 2,
                           io::PlacementPolicy::kSpreadGroup);
    const std::string in = ctx->NewTempPath("in");
    io::WriteAllRecords(ctx.get(), in, edges);
    std::vector<Edge> got;
    auto sink = extsort::MakeCallbackSink<Edge>(
        [&](const Edge& e) { got.push_back(e); });
    extsort::SortInto<Edge>(ctx.get(), in, sink, graph::EdgeBySrc());
    return got;
  };
  const auto serial = collect(0);
  for (const std::size_t threads : {1u, 2u, 4u}) {
    const auto sched = collect(threads);
    ASSERT_EQ(serial.size(), sched.size()) << "io_threads " << threads;
    for (std::size_t i = 0; i < serial.size(); ++i) {
      ASSERT_EQ(serial[i], sched[i])
          << "io_threads " << threads << " at " << i;
    }
  }
}

TEST(ReadSchedulerTest, PerDeviceStatsSumToAggregateUnderConcurrentReads) {
  // Three devices, spread placement, a budget small enough for several
  // runs and an intermediate merge pass: while device workers fill the
  // rings and execute overlapped output writes, every counted I/O must
  // land in exactly one device's row — the rows sum to the aggregate
  // field by field.
  auto ctx = MakeContext(16 << 10, 1024, 2, 3,
                         io::PlacementPolicy::kSpreadGroup);
  const auto edges = RandomEdges(40'000, 23, 1u << 14);
  const std::string in = ctx->NewTempPath("in");
  io::WriteAllRecords(ctx.get(), in, edges);
  const std::string out = ctx->NewTempPath("out");
  extsort::SortFile<Edge, graph::EdgeBySrc>(ctx.get(), in, out,
                                            graph::EdgeBySrc());
  const io::IoStats total = ctx->stats();
  io::IoStats summed;
  for (const auto& row : ctx->DeviceStats()) summed += row.stats;
  EXPECT_EQ(summed.sequential_reads, total.sequential_reads);
  EXPECT_EQ(summed.random_reads, total.random_reads);
  EXPECT_EQ(summed.sequential_writes, total.sequential_writes);
  EXPECT_EQ(summed.random_writes, total.random_writes);
  EXPECT_EQ(summed.bytes_read, total.bytes_read);
  EXPECT_EQ(summed.bytes_written, total.bytes_written);
  EXPECT_EQ(summed.files_created, total.files_created);
  EXPECT_GE(ctx->max_per_device_ios(), total.total_ios() / 4)
      << "critical path can never be below total / (devices + base)";
}

TEST(ReadSchedulerTest, TightBudgetDegradesWithoutDeadlockOrAbort) {
  // M = 2 blocks: no ring or write slot ever fits, so every stream must
  // silently run direct/synchronous — and still sort correctly.
  auto ctx = MakeContext(2 << 10, 1024, 2);
  auto values = RandomEdges(20'000, 17, 1u << 8);
  const std::string in = ctx->NewTempPath("in");
  io::WriteAllRecords(ctx.get(), in, values);
  const std::string out = ctx->NewTempPath("out");
  extsort::SortFile<Edge, graph::EdgeBySrc>(ctx.get(), in, out,
                                            graph::EdgeBySrc());
  auto result = io::ReadAllRecords<Edge>(ctx.get(), out);
  std::stable_sort(values.begin(), values.end(), graph::EdgeBySrc());
  ASSERT_EQ(result.size(), values.size());
  EXPECT_EQ(0, std::memcmp(result.data(), values.data(),
                           result.size() * sizeof(Edge)));
}

TEST(ReadSchedulerTest, PrefetchFlagAndIoThreadsCompose) {
  // Both engines on: the scheduler takes precedence per stream; output
  // must still match the serial engine.
  const auto edges = RandomEdges(25'000, 41, 1u << 12);
  auto run = [&](bool prefetch, std::size_t io_threads) {
    io::IoContextOptions options;
    options.block_size = 1024;
    options.memory_bytes = 24 << 10;
    options.device_model.model = io::DeviceModel::kMem;
    options.prefetch = prefetch;
    testing::ApplyTestEnvOptions(&options);
    options.io_threads = io_threads;
    auto ctx = std::make_unique<io::IoContext>(options);
    const std::string in = ctx->NewTempPath("in");
    io::WriteAllRecords(ctx.get(), in, edges);
    const std::string out = ctx->NewTempPath("out");
    extsort::SortFile<Edge, graph::EdgeByDst>(ctx.get(), in, out,
                                              graph::EdgeByDst());
    return io::ReadAllRecords<Edge>(ctx.get(), out);
  };
  const auto serial = run(false, 0);
  const auto combined = run(true, 2);
  ASSERT_EQ(serial.size(), combined.size());
  EXPECT_EQ(0, std::memcmp(serial.data(), combined.data(),
                           serial.size() * sizeof(Edge)));
}

// Striped oracle: every sorter entry point must reproduce the serial
// engine's output byte for byte when the scratch files stripe their
// blocks across several devices — the scheduler registers each striped
// stream with every member's worker and the members fill the ring out
// of order, but consumption (and therefore output) stays sequential.
TEST(ReadSchedulerTest, StripedSortFileSerialVsIoThreadsByteIdentical) {
  util::Rng rng(815);
  for (int trial = 0; trial < 4; ++trial) {
    const std::size_t block = 512u << rng.Uniform(3);
    const std::uint64_t memory = (6 + rng.Uniform(26)) * block;
    const std::size_t count = 2'000 + rng.Uniform(30'000);
    const bool dedup = rng.Uniform(2) == 1;
    const std::size_t devices = 2 + rng.Uniform(2);
    const auto edges = RandomEdges(count, rng.Next(), 1u << 12);

    auto run = [&](std::size_t io_threads) {
      auto ctx = MakeContext(memory, block, io_threads, devices,
                             io::PlacementPolicy::kStriped);
      const std::string in = ctx->NewTempPath("in");
      io::WriteAllRecords(ctx.get(), in, edges);
      const std::string out = ctx->NewTempPath("out");
      extsort::SortFile<Edge, graph::EdgeBySrc>(ctx.get(), in, out,
                                                graph::EdgeBySrc(), dedup);
      return io::ReadAllRecords<Edge>(ctx.get(), out);
    };
    const auto serial = run(0);
    for (const std::size_t threads : {1u, 2u, 4u}) {
      const auto sched = run(threads);
      ASSERT_EQ(serial.size(), sched.size())
          << "trial " << trial << " io_threads " << threads;
      ASSERT_EQ(0, std::memcmp(serial.data(), sched.data(),
                               serial.size() * sizeof(Edge)))
          << "trial " << trial << " io_threads " << threads;
    }
  }
}

TEST(ReadSchedulerTest, StripedSortIntoSerialVsIoThreadsIdenticalSinkStream) {
  const auto edges = RandomEdges(30'000, 131, 1u << 16);
  auto collect = [&](std::size_t io_threads) {
    auto ctx = MakeContext(24 << 10, 1024, io_threads, 2,
                           io::PlacementPolicy::kStriped);
    const std::string in = ctx->NewTempPath("in");
    io::WriteAllRecords(ctx.get(), in, edges);
    std::vector<Edge> got;
    auto sink = extsort::MakeCallbackSink<Edge>(
        [&](const Edge& e) { got.push_back(e); });
    extsort::SortInto<Edge>(ctx.get(), in, sink, graph::EdgeBySrc());
    return got;
  };
  const auto serial = collect(0);
  for (const std::size_t threads : {1u, 2u, 4u}) {
    const auto sched = collect(threads);
    ASSERT_EQ(serial.size(), sched.size()) << "io_threads " << threads;
    for (std::size_t i = 0; i < serial.size(); ++i) {
      ASSERT_EQ(serial[i], sched[i])
          << "io_threads " << threads << " at " << i;
    }
  }
}

TEST(ReadSchedulerTest, StripedScanCriticalPathNearTotalOverD) {
  // A striped sequential scan spreads its blocks ~evenly, so the
  // busiest device ends near total/D — the whole point of the policy.
  // Placement is the subject here, so it is forced AFTER the test-env
  // overrides.
  constexpr std::size_t kDevices = 2;
  io::IoContextOptions options;
  options.block_size = 1024;
  options.memory_bytes = 64 << 10;
  options.device_model.model = io::DeviceModel::kMem;
  for (std::size_t i = 0; i < kDevices; ++i) {
    options.scratch_dirs.push_back("dev" + std::to_string(i));
  }
  testing::ApplyTestEnvOptions(&options);
  options.scratch_placement = io::PlacementPolicy::kStriped;
  options.io_threads = 2;
  auto ctx = std::make_unique<io::IoContext>(options);
  const auto edges = RandomEdges(16'384, 53, 1u << 14);  // 128 KB: 128 blocks
  const std::string path = ctx->NewTempPath("scan");
  io::WriteAllRecords(ctx.get(), path, edges);
  const auto got = io::ReadAllRecords<Edge>(ctx.get(), path);
  ASSERT_EQ(got.size(), edges.size());
  // The env can override the device list; divide by what was built.
  const std::size_t built = ctx->temp_files().devices().size();
  ASSERT_GE(built, 2u);
  const std::uint64_t total = ctx->stats().total_ios();
  EXPECT_LE(ctx->max_per_device_ios(), total / built + 4)
      << "striped critical path must be ~total/D";
}

TEST(ReadSchedulerTest, ExtSccEndToEndStriped) {
  // Whole-system smoke at placement=striped: a multi-level solve whose
  // every scratch file fans its blocks across two devices must still
  // match the oracle partition.
  io::IoContextOptions options;
  options.block_size = 4096;
  options.memory_bytes = 96 << 10;
  options.device_model.model = io::DeviceModel::kMem;
  options.scratch_dirs = {"dev0", "dev1"};
  testing::ApplyTestEnvOptions(&options);
  options.scratch_placement = io::PlacementPolicy::kStriped;
  options.io_threads = 2;
  auto ctx = std::make_unique<io::IoContext>(options);
  gen::SyntheticParams params;
  params.num_nodes = 4'000;
  params.avg_degree = 3.0;
  params.sccs = {{20, 40}};
  params.seed = 12;
  const auto g = gen::GenerateSynthetic(ctx.get(), params);
  const std::string scc_path = ctx->NewTempPath("scc");
  auto result = core::RunExtScc(ctx.get(), g, scc_path,
                                core::ExtSccOptions::Optimized());
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  testing::ExpectSccFileMatchesOracle(ctx.get(), g, scc_path,
                                      "ext-scc striped io_threads=2");
}

TEST(ReadSchedulerTest, ExtSccEndToEndWithIoThreads) {
  // Whole-system smoke: a multi-level Ext-SCC solve with the parallel
  // I/O engine must still match the oracle partition. The suite's
  // designated Posix round trip; everything else runs on MemDevice.
  io::IoContextOptions options;
  options.block_size = 4096;
  options.memory_bytes = 96 << 10;
  testing::ApplyTestEnvOptions(&options);
  options.io_threads = 2;
  auto ctx = std::make_unique<io::IoContext>(options);
  gen::SyntheticParams params;
  params.num_nodes = 4'000;
  params.avg_degree = 3.0;
  params.sccs = {{20, 40}};
  params.seed = 12;
  const auto g = gen::GenerateSynthetic(ctx.get(), params);
  const std::string scc_path = ctx->NewTempPath("scc");
  auto result = core::RunExtScc(ctx.get(), g, scc_path,
                                core::ExtSccOptions::Optimized());
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  testing::ExpectSccFileMatchesOracle(ctx.get(), g, scc_path,
                                      "ext-scc io_threads=2");
}

}  // namespace
}  // namespace extscc
