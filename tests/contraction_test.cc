#include <gtest/gtest.h>

#include <cmath>
#include <unordered_set>
#include <vector>

#include "core/contraction.h"
#include "core/vertex_cover.h"
#include "gen/classic_graphs.h"
#include "graph/digraph.h"
#include "graph/edge_file.h"
#include "graph/disk_graph.h"
#include "io/record_stream.h"
#include "scc/tarjan.h"
#include "test_util.h"

namespace extscc {
namespace {

using graph::Edge;
using graph::NodeId;
using testing::MakeTestContext;

struct Level {
  std::string ein, eout;
  std::vector<NodeId> cover;
  std::string cover_path;
  core::ContractionResult contraction;
};

Level ContractOnce(io::IoContext* ctx, const std::vector<Edge>& edges,
                   bool op_mode) {
  const std::string raw = ctx->NewTempPath("raw");
  io::WriteAllRecords(ctx, raw, edges);
  Level level;
  level.ein = ctx->NewTempPath("ein");
  level.eout = ctx->NewTempPath("eout");
  graph::SortEdgesByDst(ctx, raw, level.ein, op_mode);
  graph::SortEdgesBySrc(ctx, raw, level.eout, op_mode);
  core::CoverOptions cover_options;
  core::ContractionOptions contraction_options;
  if (op_mode) {
    cover_options.type1_reduction = true;
    cover_options.type2_reduction = true;
    cover_options.order = core::OrderVariant::kDegreeFanoutId;
  }
  const auto cover_result =
      core::ComputeVertexCover(ctx, level.ein, level.eout, cover_options);
  level.cover_path = cover_result.cover_path;
  level.cover = io::ReadAllRecords<NodeId>(ctx, cover_result.cover_path);
  level.contraction = core::ContractEdges(ctx, level.ein, level.eout,
                                          cover_result.cover_path,
                                          contraction_options);
  return level;
}

// SCC-preservable (Lemma 5.3): for cover nodes u, v —
// same SCC in G_{i+1}  <=>  same SCC in G_i.
void ExpectSccPreservable(const std::vector<Edge>& original,
                          const std::vector<Edge>& contracted,
                          const std::vector<NodeId>& cover) {
  graph::Digraph g_orig(original);
  graph::Digraph g_next(cover, contracted);
  const auto scc_orig = scc::TarjanScc(g_orig);
  const auto scc_next = scc::TarjanScc(g_next);
  for (std::size_t a = 0; a < cover.size(); ++a) {
    for (std::size_t b = a + 1; b < cover.size(); ++b) {
      const bool same_orig =
          scc_orig.LabelOf(cover[a]) == scc_orig.LabelOf(cover[b]);
      const bool same_next =
          scc_next.LabelOf(cover[a]) == scc_next.LabelOf(cover[b]);
      EXPECT_EQ(same_orig, same_next)
          << "nodes " << cover[a] << ", " << cover[b]
          << ": SCC-preservable property violated";
    }
  }
}

TEST(ContractionTest, EndpointsStayInsideCover) {
  auto ctx = MakeTestContext();
  const auto edges = gen::Fig1Edges();
  const auto level = ContractOnce(ctx.get(), edges, /*op_mode=*/false);
  const std::unordered_set<NodeId> cover(level.cover.begin(),
                                         level.cover.end());
  const auto contracted =
      io::ReadAllRecords<Edge>(ctx.get(), level.contraction.edge_path);
  for (const Edge& e : contracted) {
    EXPECT_TRUE(cover.count(e.src)) << e.src;
    EXPECT_TRUE(cover.count(e.dst)) << e.dst;
  }
  EXPECT_EQ(contracted.size(), level.contraction.num_edges);
  EXPECT_EQ(level.contraction.preserved_edges + level.contraction.new_edges,
            level.contraction.num_edges);
}

TEST(ContractionTest, Fig1SccPreservable) {
  auto ctx = MakeTestContext();
  const auto edges = gen::Fig1Edges();
  const auto level = ContractOnce(ctx.get(), edges, /*op_mode=*/false);
  const auto contracted =
      io::ReadAllRecords<Edge>(ctx.get(), level.contraction.edge_path);
  ExpectSccPreservable(edges, contracted, level.cover);
}

TEST(ContractionTest, PathContractsToMiddleNode) {
  auto ctx = MakeTestContext();
  // 1 -> 2 -> 3: node 2 has deg 2, endpoints deg 1, so node 2 wins both
  // edges and the cover is exactly {2}. Node 1 has no in-edges and node 3
  // has no out-edges, so no shortcut edge is created.
  const auto level =
      ContractOnce(ctx.get(), {{1, 2}, {2, 3}}, /*op_mode=*/false);
  EXPECT_EQ(level.cover, (std::vector<NodeId>{2}));
  const auto contracted =
      io::ReadAllRecords<Edge>(ctx.get(), level.contraction.edge_path);
  EXPECT_TRUE(contracted.empty());
  EXPECT_EQ(level.contraction.new_edges, 0u);
}

TEST(ContractionTest, WedgeCreatesShortcut) {
  auto ctx = MakeTestContext();
  // 5 -> 1 -> 6: middle node 1 has deg 2, endpoints deg 1, so cover =
  // {1, ...}? No: per-edge winners: (5,1): deg(1)=2 > deg(5)=1 -> add 1;
  // (1,6): deg(1)=2 > deg(6)=1 -> add 1. Cover = {1}; removed = {5, 6}.
  // 5 has no in-edges and 6 has no out-edges -> no shortcut.
  // Use a shape where the removed node is internal: 2-cycle + tail.
  // a=1 <-> b=2 (cycle), plus 2 -> 0. Degrees: 1:2, 2:3, 0:1.
  // (1,2): 2 wins; (2,1): 2 wins; (2,0): 2 wins. Cover = {2};
  // removed = {0, 1}. Node 1's in-nbr = 2, out-nbr = 2 -> shortcut (2,2).
  const auto level =
      ContractOnce(ctx.get(), {{1, 2}, {2, 1}, {2, 0}}, /*op_mode=*/false);
  EXPECT_EQ(level.cover, (std::vector<NodeId>{2}));
  const auto contracted =
      io::ReadAllRecords<Edge>(ctx.get(), level.contraction.edge_path);
  // The (2,2) shortcut through removed node 1 is a self-loop and is
  // always dropped (it would pin node 2 into every later cover).
  EXPECT_TRUE(contracted.empty());
  EXPECT_EQ(level.contraction.new_edges, 0u);
}

TEST(ContractionTest, OpModeDropsSelfLoopShortcuts) {
  auto ctx = MakeTestContext();
  const auto level =
      ContractOnce(ctx.get(), {{1, 2}, {2, 1}, {2, 0}}, /*op_mode=*/true);
  const auto contracted =
      io::ReadAllRecords<Edge>(ctx.get(), level.contraction.edge_path);
  EXPECT_TRUE(contracted.empty());
}

TEST(ContractionTest, CycleContractsToSmallerCycle) {
  auto ctx = MakeTestContext();
  const auto edges = gen::CycleEdges(10);
  const auto level = ContractOnce(ctx.get(), edges, /*op_mode=*/false);
  const auto contracted =
      io::ReadAllRecords<Edge>(ctx.get(), level.contraction.edge_path);
  ExpectSccPreservable(edges, contracted, level.cover);
  // The contracted graph must still be one cycle through all cover nodes.
  graph::Digraph g(level.cover, contracted);
  const auto sccs = scc::TarjanScc(g);
  EXPECT_EQ(sccs.num_sccs(), 1u);
}

TEST(ContractionTest, EdgeBoundTheorem54) {
  // New edges <= sum over removed v of deg_in(v) * deg_out(v); in
  // particular each removed node's degree obeys Theorem 5.3's bound.
  auto ctx = MakeTestContext();
  const auto edges = gen::RandomDigraphEdges(300, 1200, 21);
  const auto level = ContractOnce(ctx.get(), edges, /*op_mode=*/false);
  const double bound = std::sqrt(2.0 * edges.size());
  graph::Digraph g(edges);
  const std::unordered_set<NodeId> cover(level.cover.begin(),
                                         level.cover.end());
  for (std::size_t i = 0; i < g.num_nodes(); ++i) {
    if (cover.count(g.id_of(i)) == 0) {
      EXPECT_LE(g.in_degree(i) + g.out_degree(i), bound + 1e-9)
          << "removed node " << g.id_of(i) << " violates Theorem 5.3";
    }
  }
}

// Property sweep: SCC-preservable + endpoint containment across random
// graphs, both modes.
class ContractionSweep
    : public ::testing::TestWithParam<std::tuple<int, int, int, bool>> {};

TEST_P(ContractionSweep, InvariantsHold) {
  const auto [nodes, edge_count, seed, op_mode] = GetParam();
  auto ctx = MakeTestContext();
  const auto edges = gen::RandomDigraphEdges(nodes, edge_count, seed,
                                             /*allow_degenerate=*/true);
  const auto level = ContractOnce(ctx.get(), edges, op_mode);
  const std::unordered_set<NodeId> cover(level.cover.begin(),
                                         level.cover.end());
  const auto contracted =
      io::ReadAllRecords<Edge>(ctx.get(), level.contraction.edge_path);
  for (const Edge& e : contracted) {
    ASSERT_TRUE(cover.count(e.src));
    ASSERT_TRUE(cover.count(e.dst));
  }
  ExpectSccPreservable(edges, contracted, level.cover);
}

INSTANTIATE_TEST_SUITE_P(
    RandomGraphs, ContractionSweep,
    ::testing::Combine(::testing::Values(30, 80), ::testing::Values(60, 240),
                       ::testing::Values(1, 2, 3),
                       ::testing::Bool()));

}  // namespace
}  // namespace extscc
